module scaldift

go 1.24

// Command benchcheck guards the checked-in benchmark baselines: it
// parses `go test -bench` output, maps benchmark names to the
// throughput numbers recorded in BENCH_store.json,
// BENCH_pipeline.json, BENCH_ontrac.json, and BENCH_lifecycle.json,
// and reports any
// benchmark whose events/s or MB/s dropped more than the threshold
// below its baseline.
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchcheck -baseline-dir .
//
// The report is a markdown table (append it to a CI job summary). By
// default regressions only set the REGRESSION status in the table and
// a warning on stderr; -strict makes them fatal (exit 1) for
// environments quiet enough to trust — CI smoke runs on shared
// runners should stay advisory, since the baselines were measured on
// a dedicated host with long benchtimes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"scaldift/internal/benchfp"
)

// metrics maps a metric unit ("events/s", "MB/s") to its value.
type metrics map[string]float64

func main() {
	benchFile := flag.String("bench", "-", "benchmark output file (- = stdin)")
	baselineDir := flag.String("baseline-dir", ".", "directory holding BENCH_*.json")
	threshold := flag.Float64("threshold", 0.30, "relative drop that counts as a regression")
	strict := flag.Bool("strict", false, "exit 1 on regression instead of warning")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *benchFile != "-" {
		f, err := os.Open(*benchFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBenchOutput(in)
	if err != nil {
		fatal(err)
	}
	baselines, hosts, err := loadBaselines(*baselineDir)
	if err != nil {
		fatal(err)
	}
	// A baseline naming a benchmark that no longer runs is a warning,
	// never a failure (even under -strict): smoke jobs select subsets,
	// and a renamed benchmark should not brick CI — it should nag until
	// the baseline file is regenerated.
	for _, name := range missingBaselines(measured, baselines) {
		fmt.Fprintf(os.Stderr, "benchcheck: warning: baseline %s has no matching benchmark in the output (renamed or removed? regenerate the BENCH_*.json)\n", name)
	}
	rows := compare(measured, baselines, *threshold)
	if len(rows) == 0 {
		fmt.Println("benchcheck: no benchmark in the output matches a checked-in baseline")
		return
	}
	fmt.Print(markdown(rows, *threshold, hosts))
	regressions := 0
	for _, r := range rows {
		if r.regressed {
			regressions++
			fmt.Fprintf(os.Stderr, "benchcheck: REGRESSION %s %s: %.4g -> %.4g (%.1f%%)\n",
				r.name, r.unit, r.baseline, r.measured, 100*r.drop)
		}
	}
	if regressions > 0 && *strict {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(2)
}

// parseBenchOutput extracts per-benchmark metric values from `go test
// -bench` output. A result line is "BenchmarkName[-P] <iters>
// <value> <unit> [<value> <unit>]...": everything after the iteration
// count comes in value/unit pairs. The -P GOMAXPROCS suffix is
// stripped; a benchmark run several times keeps its last values (the
// usual -count semantics favor neither, and the baselines are single
// numbers).
func parseBenchOutput(r io.Reader) (map[string]metrics, error) {
	out := make(map[string]metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: some other line
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := out[name]
		if m == nil {
			m = make(metrics)
			out[name] = m
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // malformed tail: keep what parsed
			}
			m[fields[i+1]] = v
		}
	}
	return out, sc.Err()
}

// Baseline JSON shapes — only the fields benchcheck reads.

type storeBench struct {
	Host  *benchfp.Host `json:"host"`
	Spill []struct {
		Mode    string  `json:"mode"`
		MBPerS  float64 `json:"mb_per_sec"`
		ChunksS float64 `json:"chunks_per_sec"`
	} `json:"spill"`
}

type lifecycleBench struct {
	Host      *benchfp.Host `json:"host"`
	Retention struct {
		MBPerS float64 `json:"mb_per_sec"`
	} `json:"retention_spill"`
	Cache struct {
		HitQueriesPS float64 `json:"hit_queries_per_sec"`
	} `json:"cache"`
}

type pipelineBench struct {
	Host    *benchfp.Host `json:"host"`
	Results []struct {
		Workload string `json:"workload"`
		Domain   string `json:"domain"`
		Inline   struct {
			EventsPerSec float64 `json:"events_per_sec"`
		} `json:"inline"`
		Offloaded []struct {
			Workers      int     `json:"workers"`
			EventsPerSec float64 `json:"events_per_sec"`
			AnalyzeEPS   float64 `json:"analyze_events_per_sec"`
		} `json:"offloaded"`
	} `json:"results"`
}

type ontracBench struct {
	Host    *benchfp.Host `json:"host"`
	Results []struct {
		Workload string `json:"workload"`
		Inline   struct {
			EventsPerSec float64 `json:"events_per_sec"`
		} `json:"inline"`
		RecordOnly struct {
			EventsPerSec float64 `json:"events_per_sec"`
		} `json:"record_only"`
		Offloaded []struct {
			Workers      int     `json:"workers"`
			EventsPerSec float64 `json:"events_per_sec"`
		} `json:"offloaded"`
	} `json:"results"`
}

// camel maps the baseline files' lowercase workload/domain names to
// the benchmark-name fragments.
var camel = map[string]string{
	"streamagg":  "StreamAgg",
	"keyedmerge": "KeyedMerge",
	"mapreduce":  "MapReduce",
	"lineage":    "Lineage",
	"bool":       "Bool",
	"pc":         "PC",
	"compress":   "Compress",
	"matmul":     "Matmul",
	"psum":       "Psum",
}

func camelName(s string) string {
	if c, ok := camel[s]; ok {
		return c
	}
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// loadBaselines derives benchmark-name → expected metrics from the
// BENCH_*.json files present in dir. Missing files are skipped: a
// repo state with only some baselines still gets the others checked.
// hosts collects the fingerprint each baseline file recorded (if any),
// so the report can show where the baselines were measured — the first
// thing to check before believing a cross-host "regression".
func loadBaselines(dir string) (out map[string]metrics, hosts []string, err error) {
	out = make(map[string]metrics)
	host := func(file string, h *benchfp.Host) {
		if h != nil {
			hosts = append(hosts, file+": "+h.String())
		}
	}
	add := func(name, unit string, v float64) {
		if v <= 0 {
			return
		}
		m := out[name]
		if m == nil {
			m = make(metrics)
			out[name] = m
		}
		m[unit] = v
	}

	var sb storeBench
	if ok, err := readJSON(filepath.Join(dir, "BENCH_store.json"), &sb); err != nil {
		return nil, nil, err
	} else if ok {
		host("BENCH_store.json", sb.Host)
		for _, sp := range sb.Spill {
			switch sp.Mode {
			case "sync":
				add("BenchmarkStoreSpillSync", "MB/s", sp.MBPerS)
			case "async":
				add("BenchmarkStoreSpillAsync", "MB/s", sp.MBPerS)
			}
		}
	}

	var lb lifecycleBench
	if ok, err := readJSON(filepath.Join(dir, "BENCH_lifecycle.json"), &lb); err != nil {
		return nil, nil, err
	} else if ok {
		host("BENCH_lifecycle.json", lb.Host)
		add("BenchmarkLifecycleRetentionSpill", "MB/s", lb.Retention.MBPerS)
		add("BenchmarkLifecycleCacheHit", "queries/s", lb.Cache.HitQueriesPS)
	}

	var pb pipelineBench
	if ok, err := readJSON(filepath.Join(dir, "BENCH_pipeline.json"), &pb); err != nil {
		return nil, nil, err
	} else if ok {
		host("BENCH_pipeline.json", pb.Host)
		for _, res := range pb.Results {
			base := "BenchmarkPipeline" + camelName(res.Workload) + camelName(res.Domain)
			add(base+"Inline", "events/s", res.Inline.EventsPerSec)
			for _, off := range res.Offloaded {
				add(fmt.Sprintf("%sW%d", base, off.Workers), "events/s", off.EventsPerSec)
				// The analyze-side rate (propagation only, record cost
				// excluded) is tracked by the BenchmarkPipelineEpoch*
				// suite, which runs the W2 configuration; the other
				// worker counts stay recorded in the JSON without a
				// benchmark counterpart.
				if off.Workers == 2 {
					add("BenchmarkPipelineEpoch"+camelName(res.Workload)+camelName(res.Domain)+"W2",
						"events/s", off.AnalyzeEPS)
				}
			}
		}
	}

	var ob ontracBench
	if ok, err := readJSON(filepath.Join(dir, "BENCH_ontrac.json"), &ob); err != nil {
		return nil, nil, err
	} else if ok {
		host("BENCH_ontrac.json", ob.Host)
		for _, res := range ob.Results {
			base := "BenchmarkOntracPipeline" + camelName(res.Workload)
			add(base+"Inline", "events/s", res.Inline.EventsPerSec)
			add(base+"RecordOnly", "events/s", res.RecordOnly.EventsPerSec)
			for _, off := range res.Offloaded {
				add(fmt.Sprintf("%sOffloadedW%d", base, off.Workers), "events/s", off.EventsPerSec)
			}
		}
	}
	return out, hosts, nil
}

// readJSON loads path into v; ok=false when the file does not exist.
func readJSON(path string, v any) (ok bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	return true, nil
}

// row is one benchmark × metric comparison.
type row struct {
	name      string
	unit      string
	baseline  float64
	measured  float64
	drop      float64 // positive = slower than baseline
	regressed bool
}

// compare joins measured output with baselines. Only metrics present
// on both sides produce rows; a benchmark that did not run leaves its
// baseline unchecked (smoke jobs select subsets).
func compare(measured, baselines map[string]metrics, threshold float64) []row {
	var rows []row
	for name, base := range baselines {
		got, ok := measured[name]
		if !ok {
			continue
		}
		for unit, bv := range base {
			gv, ok := got[unit]
			if !ok {
				continue
			}
			drop := (bv - gv) / bv
			rows = append(rows, row{
				name: name, unit: unit,
				baseline: bv, measured: gv,
				drop:      drop,
				regressed: drop > threshold,
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].name != rows[j].name {
			return rows[i].name < rows[j].name
		}
		return rows[i].unit < rows[j].unit
	})
	return rows
}

// missingBaselines returns the sorted names of baselines with no
// measured benchmark at all. (A benchmark that ran but lost a metric
// unit still compares on the units both sides share; only a fully
// absent name is reported.)
func missingBaselines(measured, baselines map[string]metrics) []string {
	var out []string
	for name := range baselines {
		if _, ok := measured[name]; !ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// markdown renders the comparison as a GitHub job-summary table,
// headed by the host each baseline file was measured on next to the
// host doing the measuring — cross-host deltas are noise until proven
// otherwise (docs/PERF.md describes the protocol).
func markdown(rows []row, threshold float64, hosts []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Benchmark baseline check (threshold: -%.0f%%)\n\n", 100*threshold)
	for _, h := range hosts {
		fmt.Fprintf(&b, "- baseline %s\n", h)
	}
	fmt.Fprintf(&b, "- this run: %s\n\n", benchfp.Current())
	b.WriteString("| benchmark | metric | baseline | measured | delta | status |\n")
	b.WriteString("|---|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		status := "ok"
		if r.regressed {
			status = "**REGRESSION**"
		}
		fmt.Fprintf(&b, "| %s | %s | %.4g | %.4g | %+.1f%% | %s |\n",
			r.name, r.unit, r.baseline, r.measured, -100*r.drop, status)
	}
	return b.String()
}

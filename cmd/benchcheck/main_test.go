package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: scaldift/internal/store
cpu: Some CPU
BenchmarkStoreSpillSync-8    	     100	  12345 ns/op	 900.00 MB/s	215716 chunks/s
BenchmarkStoreSpillAsync     	      50	  23456 ns/op	 400.00 MB/s
BenchmarkPipelineStreamAggLineageW2-8 	      10	 1000000 ns/op	 2500000 events/s	       3.100 x-native
BenchmarkOntracPipelinePsumRecordOnly-8 	       1	 2601718 ns/op	18000000 events/s
garbage line
BenchmarkBroken abc
PASS
ok  	scaldift/internal/store	1.0s
`

func TestParseBenchOutput(t *testing.T) {
	m, err := parseBenchOutput(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, unit string
		want       float64
	}{
		{"BenchmarkStoreSpillSync", "MB/s", 900},
		{"BenchmarkStoreSpillSync", "chunks/s", 215716},
		{"BenchmarkStoreSpillAsync", "MB/s", 400}, // no -P suffix
		{"BenchmarkPipelineStreamAggLineageW2", "events/s", 2.5e6},
		{"BenchmarkPipelineStreamAggLineageW2", "x-native", 3.1},
		{"BenchmarkOntracPipelinePsumRecordOnly", "events/s", 1.8e7},
	}
	for _, c := range cases {
		if got := m[c.name][c.unit]; got != c.want {
			t.Errorf("%s %s = %v, want %v", c.name, c.unit, got, c.want)
		}
	}
	if _, ok := m["BenchmarkBroken"]; ok {
		t.Error("malformed line parsed as a result")
	}
}

func TestLoadBaselinesFromRepo(t *testing.T) {
	// The real checked-in baselines must map onto real benchmark
	// names; this pins the name derivation against the JSON shapes.
	b, hosts, err := loadBaselines("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"BenchmarkStoreSpillSync",
		"BenchmarkStoreSpillAsync",
		"BenchmarkPipelineStreamAggLineageInline",
		"BenchmarkPipelineStreamAggLineageW2",
		"BenchmarkPipelineKeyedMergeLineageW2",
		"BenchmarkPipelineMapReduceLineageInline",
		"BenchmarkPipelineStreamAggBoolW2",
		"BenchmarkPipelineEpochStreamAggLineageW2",
		"BenchmarkPipelineEpochKeyedMergeLineageW2",
		"BenchmarkPipelineEpochMapReduceLineageW2",
		"BenchmarkPipelineEpochStreamAggBoolW2",
		"BenchmarkOntracPipelineCompressInline",
		"BenchmarkOntracPipelineCompressRecordOnly",
		"BenchmarkOntracPipelineCompressOffloadedW2",
		"BenchmarkOntracPipelineMatmulOffloadedW4",
		"BenchmarkOntracPipelinePsumRecordOnly",
	} {
		m, ok := b[name]
		if !ok {
			t.Errorf("baseline for %s not derived", name)
			continue
		}
		unit := "events/s"
		if strings.HasPrefix(name, "BenchmarkStore") {
			unit = "MB/s"
		}
		if m[unit] <= 0 {
			t.Errorf("%s: no positive %s baseline (%v)", name, unit, m)
		}
	}
	// The pipeline baseline records the host it was measured on.
	found := false
	for _, h := range hosts {
		if strings.HasPrefix(h, "BENCH_pipeline.json:") {
			found = true
		}
	}
	if !found {
		t.Errorf("no host fingerprint recorded for BENCH_pipeline.json (hosts: %v)", hosts)
	}
}

func TestCompareAndMarkdown(t *testing.T) {
	baselines := map[string]metrics{
		"BenchmarkA": {"events/s": 1000},
		"BenchmarkB": {"MB/s": 100},
		"BenchmarkC": {"events/s": 500}, // not run: unchecked
	}
	measured := map[string]metrics{
		"BenchmarkA": {"events/s": 900},         // -10%: ok
		"BenchmarkB": {"MB/s": 50, "ns/op": 12}, // -50%: regression
		"BenchmarkD": {"events/s": 1},           // no baseline: ignored
	}
	rows := compare(measured, baselines, 0.30)
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d: %+v", len(rows), rows)
	}
	if rows[0].name != "BenchmarkA" || rows[0].regressed {
		t.Errorf("row A wrong: %+v", rows[0])
	}
	if rows[1].name != "BenchmarkB" || !rows[1].regressed {
		t.Errorf("row B wrong: %+v", rows[1])
	}
	md := markdown(rows, 0.30, []string{"BENCH_x.json: linux/amd64 (1 cpu, GOMAXPROCS 1, go0)"})
	if !strings.Contains(md, "**REGRESSION**") || !strings.Contains(md, "| BenchmarkA |") {
		t.Errorf("markdown missing content:\n%s", md)
	}
	if !strings.Contains(md, "baseline BENCH_x.json:") || !strings.Contains(md, "this run:") {
		t.Errorf("markdown missing host fingerprints:\n%s", md)
	}

	// Exactly at the threshold is not a regression (> not >=).
	edge := compare(map[string]metrics{"BenchmarkA": {"events/s": 700}},
		map[string]metrics{"BenchmarkA": {"events/s": 1000}}, 0.30)
	if edge[0].regressed {
		t.Error("30% drop at a 30% threshold flagged")
	}
	// An improvement is never a regression.
	up := compare(map[string]metrics{"BenchmarkA": {"events/s": 5000}},
		map[string]metrics{"BenchmarkA": {"events/s": 1000}}, 0.30)
	if up[0].regressed {
		t.Error("improvement flagged as regression")
	}
}

func TestMissingBaselinesAreWarningsNotRows(t *testing.T) {
	baselines := map[string]metrics{
		"BenchmarkGone":    {"events/s": 1000}, // renamed/removed benchmark
		"BenchmarkPresent": {"events/s": 1000},
	}
	measured := map[string]metrics{
		"BenchmarkPresent": {"events/s": 950},
	}
	missing := missingBaselines(measured, baselines)
	if len(missing) != 1 || missing[0] != "BenchmarkGone" {
		t.Fatalf("missingBaselines = %v, want [BenchmarkGone]", missing)
	}
	// The stale baseline must not leak into the comparison: it neither
	// produces a row nor a regression, so -strict cannot fail on it.
	rows := compare(measured, baselines, 0.30)
	if len(rows) != 1 || rows[0].name != "BenchmarkPresent" {
		t.Fatalf("compare rows = %+v, want only BenchmarkPresent", rows)
	}
	if rows[0].regressed {
		t.Error("within-threshold run flagged")
	}
	// A fully matching run reports nothing missing.
	if m := missingBaselines(baselines, baselines); len(m) != 0 {
		t.Errorf("fully matched run reported missing baselines: %v", m)
	}
}

// Command tracequeryd is the trace query service daemon: it watches
// one or more root directories for trace stores (internal/store),
// holds open readers over the fleet, and serves slice and
// taint-provenance queries over HTTP (internal/query).
//
//	tracequeryd -addr :8733 -root /var/traces -refresh 10s
//
// Newly closed trace directories under the roots are picked up by the
// periodic refresh (or POST /v1/refresh) without a restart. With
// -live (the default), directories still being recorded register too:
// the daemon tails them on the faster -live-refresh ticker, slices
// answer against the advancing frontier with live: true, and the
// trace flips to served-complete the moment its writer closes. With
// -attach-workloads, traces whose directory name matches a built-in
// workload ("<name>" or "<name>-...") get that workload's program
// attached, enabling statement-level lines, O1 reconstruction, and
// provenance; traces recorded outside the built-in suite are served
// as raw PC sets.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"scaldift/internal/ontrac"
	"scaldift/internal/prog"
	"scaldift/internal/query"
)

// multiFlag collects a repeatable -root flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var roots multiFlag
	addr := flag.String("addr", ":8733", "listen address")
	flag.Var(&roots, "root", "trace root directory (repeatable); each root and its immediate subdirectories are scanned for stores")
	refresh := flag.Duration("refresh", 10*time.Second, "registry refresh interval (0 disables the timer; POST /v1/refresh still works)")
	live := flag.Bool("live", true, "register stores still being recorded and tail them while they run")
	liveRefresh := flag.Duration("live-refresh", time.Second, "poll interval for live traces' frontiers (needs -live; 0 disables the poller)")
	maxQueries := flag.Int("max-queries", 4, "concurrent slice/provenance query limit")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-query deadline")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "clamp on requested per-query deadlines")
	budget := flag.Int64("budget-chunks", 0, "default per-query chunk-load budget (0 = unlimited)")
	workers := flag.Int("workers", 8, "default traversal shard switch")
	cacheChunks := flag.Int("cache-chunks", 0, "per-thread decoded-chunk cache bound per trace reader (0 = store default)")
	attach := flag.Bool("attach-workloads", true, "attach built-in workload programs to traces named after them")
	flag.Parse()
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "tracequeryd: at least one -root is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := query.NewRegistry(roots, query.RegistryOptions{
		CacheChunks: *cacheChunks,
		Live:        *live,
	})
	// onAdded runs for every discovery path — the startup scan, the
	// ticker, and POST /v1/refresh (via ServerOptions.OnRefresh) — so
	// a trace gets its program no matter which refresher finds it.
	onAdded := func(added []string) {
		if *attach {
			attachWorkloads(reg, added)
		}
		if len(added) > 0 {
			log.Printf("registered %d trace(s): %s (fleet: %d)", len(added), strings.Join(added, ", "), reg.Len())
		}
	}
	refreshOnce := func() {
		added, err := reg.Refresh()
		if err != nil && !errors.Is(err, query.ErrClosed) {
			log.Printf("refresh: %v", err)
		}
		onAdded(added)
	}
	refreshOnce()
	log.Printf("serving %d trace(s) from %d root(s) on %s", reg.Len(), len(roots), *addr)

	srv := &http.Server{
		Addr: *addr,
		Handler: query.NewServer(reg, query.ServerOptions{
			MaxConcurrent:    *maxQueries,
			DefaultDeadline:  *deadline,
			MaxDeadline:      *maxDeadline,
			Workers:          *workers,
			BudgetChunkLoads: *budget,
			OnRefresh:        onAdded,
		}).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Ticker goroutines are tracked by the WaitGroup so shutdown can
	// wait out an in-flight refresh before closing the registry — a
	// refresh racing Close would otherwise open readers nobody owns.
	stop := make(chan struct{})
	var tickers sync.WaitGroup
	if *refresh > 0 {
		tickers.Add(1)
		go func() {
			defer tickers.Done()
			t := time.NewTicker(*refresh)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					refreshOnce()
				case <-stop:
					return
				}
			}
		}()
	}
	if *live && *liveRefresh > 0 {
		tickers.Add(1)
		go func() {
			defer tickers.Done()
			t := time.NewTicker(*liveRefresh)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// The fast path: only live frontiers are polled, so
					// with nothing live this is a map sweep, not I/O.
					if reg.LiveCount() == 0 {
						continue
					}
					closed, err := reg.PollLive()
					if err != nil && !errors.Is(err, query.ErrClosed) {
						log.Printf("live poll: %v", err)
					}
					if len(closed) > 0 {
						log.Printf("trace(s) finished recording: %s", strings.Join(closed, ", "))
					}
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case s := <-sig:
		log.Printf("signal %v: shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
	// Orderly teardown: stop the tickers, wait for any in-flight
	// refresh or poll to drain, then close the registry. Registry
	// methods called after this point return query.ErrClosed instead
	// of opening fresh readers into a dead process.
	close(stop)
	tickers.Wait()
	if err := reg.Close(); err != nil {
		log.Printf("registry close: %v", err)
	}
}

// attachWorkloads attaches built-in workload programs to newly added
// traces whose id is the workload name, optionally followed by a "-"
// suffix (the recording convention "<workload>-<run>") and/or the
// registry's "@tag" id-collision suffix.
func attachWorkloads(reg *query.Registry, ids []string) {
	byName := make(map[string]*prog.Workload)
	for _, w := range prog.All() {
		byName[w.Name] = w
	}
	opts := ontrac.StaticOptions()
	for _, id := range ids {
		name := id
		if i := strings.IndexByte(name, '@'); i > 0 {
			name = name[:i]
		}
		if i := strings.IndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		w, ok := byName[name]
		if !ok {
			continue
		}
		if err := reg.AttachProgram(id, w.Prog, opts); err != nil {
			log.Printf("attach %s: %v", id, err)
			continue
		}
		log.Printf("trace %s: attached program %q (O1 reconstruction on)", id, w.Name)
	}
}

// Command tracequeryd is the trace query service daemon: it watches
// one or more root directories for closed trace stores
// (internal/store), holds open readers over the fleet, and serves
// slice and taint-provenance queries over HTTP (internal/query).
//
//	tracequeryd -addr :8733 -root /var/traces -refresh 10s
//
// Newly closed trace directories under the roots are picked up by the
// periodic refresh (or POST /v1/refresh) without a restart. With
// -attach-workloads, traces whose directory name matches a built-in
// workload ("<name>" or "<name>-...") get that workload's program
// attached, enabling statement-level lines, O1 reconstruction, and
// provenance; traces recorded outside the built-in suite are served
// as raw PC sets.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scaldift/internal/ontrac"
	"scaldift/internal/prog"
	"scaldift/internal/query"
)

// multiFlag collects a repeatable -root flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var roots multiFlag
	addr := flag.String("addr", ":8733", "listen address")
	flag.Var(&roots, "root", "trace root directory (repeatable); each root and its immediate subdirectories are scanned for closed stores")
	refresh := flag.Duration("refresh", 10*time.Second, "registry refresh interval (0 disables the timer; POST /v1/refresh still works)")
	maxQueries := flag.Int("max-queries", 4, "concurrent slice/provenance query limit")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-query deadline")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "clamp on requested per-query deadlines")
	budget := flag.Int64("budget-chunks", 0, "default per-query chunk-load budget (0 = unlimited)")
	workers := flag.Int("workers", 8, "default traversal shard switch")
	cacheChunks := flag.Int("cache-chunks", 0, "per-thread decoded-chunk cache bound per trace reader (0 = store default)")
	attach := flag.Bool("attach-workloads", true, "attach built-in workload programs to traces named after them")
	flag.Parse()
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "tracequeryd: at least one -root is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := query.NewRegistry(roots, query.RegistryOptions{CacheChunks: *cacheChunks})
	// onAdded runs for every discovery path — the startup scan, the
	// ticker, and POST /v1/refresh (via ServerOptions.OnRefresh) — so
	// a trace gets its program no matter which refresher finds it.
	onAdded := func(added []string) {
		if *attach {
			attachWorkloads(reg, added)
		}
		if len(added) > 0 {
			log.Printf("registered %d trace(s): %s (fleet: %d)", len(added), strings.Join(added, ", "), reg.Len())
		}
	}
	refreshOnce := func() {
		added, err := reg.Refresh()
		if err != nil {
			log.Printf("refresh: %v", err)
		}
		onAdded(added)
	}
	refreshOnce()
	log.Printf("serving %d trace(s) from %d root(s) on %s", reg.Len(), len(roots), *addr)

	srv := &http.Server{
		Addr: *addr,
		Handler: query.NewServer(reg, query.ServerOptions{
			MaxConcurrent:    *maxQueries,
			DefaultDeadline:  *deadline,
			MaxDeadline:      *maxDeadline,
			Workers:          *workers,
			BudgetChunkLoads: *budget,
			OnRefresh:        onAdded,
		}).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan struct{})
	if *refresh > 0 {
		go func() {
			t := time.NewTicker(*refresh)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					refreshOnce()
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case s := <-sig:
		log.Printf("signal %v: shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
	close(stop)
}

// attachWorkloads attaches built-in workload programs to newly added
// traces whose id is the workload name, optionally followed by a "-"
// suffix (the recording convention "<workload>-<run>") and/or the
// registry's "@N" id-collision suffix.
func attachWorkloads(reg *query.Registry, ids []string) {
	byName := make(map[string]*prog.Workload)
	for _, w := range prog.All() {
		byName[w.Name] = w
	}
	opts := ontrac.StaticOptions()
	for _, id := range ids {
		name := id
		if i := strings.IndexByte(name, '@'); i > 0 {
			name = name[:i]
		}
		if i := strings.IndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		w, ok := byName[name]
		if !ok {
			continue
		}
		if err := reg.AttachProgram(id, w.Prog, opts); err != nil {
			log.Printf("attach %s: %v", id, err)
			continue
		}
		log.Printf("trace %s: attached program %q (O1 reconstruction on)", id, w.Name)
	}
}

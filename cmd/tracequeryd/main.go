// Command tracequeryd is the trace query service daemon: it watches
// one or more root directories for trace stores (internal/store),
// holds open readers over the fleet, and serves slice and
// taint-provenance queries over HTTP (internal/query).
//
//	tracequeryd -addr :8733 -root /var/traces -refresh 10s
//
// Newly closed trace directories under the roots are picked up by the
// periodic refresh (or POST /v1/refresh) without a restart. With
// -live (the default), directories still being recorded register too:
// the daemon tails them on the faster -live-refresh ticker, slices
// answer against the advancing frontier with live: true, and the
// trace flips to served-complete the moment its writer closes. With
// -attach-workloads, traces whose directory name matches a built-in
// workload ("<name>" or "<name>-...") get that workload's program
// attached, enabling statement-level lines, O1 reconstruction, and
// provenance; traces recorded outside the built-in suite are served
// as raw PC sets.
//
// The -janitor ticker keeps the fleet bounded: closed traces are
// trimmed down to -retain-bytes / -retain-age (whole sealed segments,
// oldest first, the trimmed window reported on every answer), and
// cold readers idle past -reader-ttl or over -max-readers are
// evicted — the trace stays registered and re-attaches on the next
// query. DELETE /v1/traces/{id} (?purge=1) retires a trace outright.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"scaldift/internal/ontrac"
	"scaldift/internal/prog"
	"scaldift/internal/query"
	"scaldift/internal/store"
)

// multiFlag collects a repeatable -root flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var roots multiFlag
	addr := flag.String("addr", ":8733", "listen address")
	flag.Var(&roots, "root", "trace root directory (repeatable); each root and its immediate subdirectories are scanned for stores")
	refresh := flag.Duration("refresh", 10*time.Second, "registry refresh interval (0 disables the timer; POST /v1/refresh still works)")
	live := flag.Bool("live", true, "register stores still being recorded and tail them while they run")
	liveRefresh := flag.Duration("live-refresh", time.Second, "poll interval for live traces' frontiers (needs -live; 0 disables the poller)")
	maxQueries := flag.Int("max-queries", 4, "concurrent slice/provenance query limit")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-query deadline")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "clamp on requested per-query deadlines")
	budget := flag.Int64("budget-chunks", 0, "default per-query chunk-load budget (0 = unlimited)")
	workers := flag.Int("workers", 8, "default traversal shard switch")
	cacheChunks := flag.Int("cache-chunks", 0, "per-thread decoded-chunk cache bound per trace reader (0 = store default)")
	attach := flag.Bool("attach-workloads", true, "attach built-in workload programs to traces named after them")
	readerTTL := flag.Duration("reader-ttl", 15*time.Minute, "evict a cold trace's reader after this much idle time (0 = never)")
	maxReaders := flag.Int("max-readers", 0, "cap on open cold-trace readers; the least-recently-used are evicted past it (0 = uncapped)")
	resultCache := flag.Int("result-cache", 0, "LRU result-cache entries for completed slice answers (0 = default 256, negative disables)")
	retainBytes := flag.Int64("retain-bytes", 0, "per-trace sealed-segment byte budget the janitor trims closed stores down to (0 = retain everything)")
	retainAge := flag.Duration("retain-age", 0, "delete sealed segments older than this (0 = no age limit)")
	janitor := flag.Duration("janitor", time.Minute, "retention-trim and reader-eviction sweep interval (0 disables)")
	flag.Parse()
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "tracequeryd: at least one -root is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := query.NewRegistry(roots, query.RegistryOptions{
		CacheChunks: *cacheChunks,
		Live:        *live,
		ReaderTTL:   *readerTTL,
		MaxReaders:  *maxReaders,
	})
	// onAdded runs for every discovery path — the startup scan, the
	// ticker, and POST /v1/refresh (via ServerOptions.OnRefresh) — so
	// a trace gets its program no matter which refresher finds it.
	onAdded := func(added []string) {
		if *attach {
			attachWorkloads(reg, added)
		}
		if len(added) > 0 {
			log.Printf("registered %d trace(s): %s (fleet: %d)", len(added), strings.Join(added, ", "), reg.Len())
		}
	}
	refreshOnce := func() {
		added, err := reg.Refresh()
		if err != nil && !errors.Is(err, query.ErrClosed) {
			log.Printf("refresh: %v", err)
		}
		onAdded(added)
	}
	refreshOnce()
	log.Printf("serving %d trace(s) from %d root(s) on %s", reg.Len(), len(roots), *addr)

	srv := &http.Server{
		Addr: *addr,
		Handler: query.NewServer(reg, query.ServerOptions{
			MaxConcurrent:      *maxQueries,
			DefaultDeadline:    *deadline,
			MaxDeadline:        *maxDeadline,
			Workers:            *workers,
			BudgetChunkLoads:   *budget,
			OnRefresh:          onAdded,
			ResultCacheEntries: *resultCache,
		}).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Ticker goroutines are tracked by the WaitGroup so shutdown can
	// wait out an in-flight refresh before closing the registry — a
	// refresh racing Close would otherwise open readers nobody owns.
	stop := make(chan struct{})
	var tickers sync.WaitGroup
	if *refresh > 0 {
		tickers.Add(1)
		go func() {
			defer tickers.Done()
			t := time.NewTicker(*refresh)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					refreshOnce()
				case <-stop:
					return
				}
			}
		}()
	}
	if *live && *liveRefresh > 0 {
		tickers.Add(1)
		go func() {
			defer tickers.Done()
			t := time.NewTicker(*liveRefresh)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// The fast path: only live frontiers are polled, so
					// with nothing live this is a map sweep, not I/O.
					if reg.LiveCount() == 0 {
						continue
					}
					closed, err := reg.PollLive()
					if err != nil && !errors.Is(err, query.ErrClosed) {
						log.Printf("live poll: %v", err)
					}
					if len(closed) > 0 {
						log.Printf("trace(s) finished recording: %s", strings.Join(closed, ", "))
					}
				case <-stop:
					return
				}
			}
		}()
	}

	if *janitor > 0 {
		ret := store.Retention{MaxBytes: *retainBytes, MaxAge: *retainAge}
		tickers.Add(1)
		go func() {
			defer tickers.Done()
			t := time.NewTicker(*janitor)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					janitorSweep(reg, ret)
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case s := <-sig:
		log.Printf("signal %v: shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
	// Orderly teardown: stop the tickers, wait for any in-flight
	// refresh or poll to drain, then close the registry. Registry
	// methods called after this point return query.ErrClosed instead
	// of opening fresh readers into a dead process.
	close(stop)
	tickers.Wait()
	if err := reg.Close(); err != nil {
		log.Printf("registry close: %v", err)
	}
}

// janitorSweep is one lifecycle pass over the fleet: trim every
// closed trace down to the retention policy (live traces skip — their
// writers own retention), then evict readers idle past the TTL or
// over the LRU cap. Trims are logged per trace; eviction is routine
// and logged only in aggregate.
func janitorSweep(reg *query.Registry, ret store.Retention) {
	if ret.MaxBytes > 0 || ret.MaxAge > 0 {
		for _, info := range reg.List() {
			if info.Live {
				continue
			}
			removed, err := reg.TrimTrace(info.ID, ret)
			if err != nil && !errors.Is(err, query.ErrClosed) && !errors.Is(err, query.ErrUnknownTrace) {
				log.Printf("janitor trim %s: %v", info.ID, err)
				continue
			}
			if removed > 0 {
				log.Printf("janitor: trimmed %d segment(s) from %s", removed, info.ID)
			}
		}
	}
	if evicted := reg.EvictCold(time.Now()); len(evicted) > 0 {
		log.Printf("janitor: evicted %d cold reader(s): %s", len(evicted), strings.Join(evicted, ", "))
	}
}

// attachWorkloads attaches built-in workload programs to newly added
// traces whose id is the workload name, optionally followed by a "-"
// suffix (the recording convention "<workload>-<run>") and/or the
// registry's "@tag" id-collision suffix.
func attachWorkloads(reg *query.Registry, ids []string) {
	byName := make(map[string]*prog.Workload)
	for _, w := range prog.All() {
		byName[w.Name] = w
	}
	opts := ontrac.StaticOptions()
	for _, id := range ids {
		name := id
		if i := strings.IndexByte(name, '@'); i > 0 {
			name = name[:i]
		}
		if i := strings.IndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		w, ok := byName[name]
		if !ok {
			continue
		}
		if err := reg.AttachProgram(id, w.Prog, opts); err != nil {
			log.Printf("attach %s: %v", id, err)
			continue
		}
		log.Printf("trace %s: attached program %q (O1 reconstruction on)", id, w.Name)
	}
}

package main_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoIsVetClean builds scaldiftvet and runs it (standalone mode)
// over the whole repo: the suite must come back clean, with no stale
// //scaldift:ignore directives. This is the same gate CI's vet-custom
// step enforces through `go vet -vettool=`; keeping a copy in the
// test suite means a finding introduced locally fails `go test ./...`
// before it ever reaches CI.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the vet binary over every package")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "scaldiftvet")

	build := exec.Command("go", "build", "-o", bin, "./cmd/scaldiftvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building scaldiftvet: %v\n%s", err, out)
	}

	vet := exec.Command(bin, "./...")
	vet.Dir = root
	var stdout, stderr bytes.Buffer
	vet.Stdout = &stdout
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Fatalf("scaldiftvet ./... reported findings: %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.Bytes(), stderr.Bytes())
	}
}

// Command scaldiftvet runs the repo's project-specific analyzer suite
// (poolescape, lockio, cancelpoll, stickyerr, trimpin, epochfence —
// see internal/analysis).
//
// Two modes:
//
//	go vet -vettool=$(which scaldiftvet) ./...   # full coverage, including _test.go
//	scaldiftvet ./...                            # standalone, non-test files only
//
// Exit code 2 means findings; suppress a deliberate exception with
// //scaldift:ignore <analyzer> <reason> on (or directly above) the
// flagged line.
package main

import (
	"os"

	"scaldift/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:]))
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the self-enforcing check: the repo this tool
// ships in must itself pass both lints. A new internal package
// without a package doc, or a doc edit that breaks a relative link,
// fails here (and in the CI docs-lint step) immediately.
func TestRepoIsClean(t *testing.T) {
	findings, err := Lint("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("docslint finding in repo: %s", f)
	}
}

func write(t *testing.T, root, rel, content string) {
	t.Helper()
	p := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPackageDocDetection(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/documented/doc.go", "// Package documented has a doc.\npackage documented\n")
	write(t, root, "internal/bare/bare.go", "package bare\n\nfunc F() {}\n")
	// A package whose only doc comment sits in a test file is still bare.
	write(t, root, "internal/testonly/x.go", "package testonly\n")
	write(t, root, "internal/testonly/x_test.go", "// Package testonly documents itself only in tests.\npackage testonly\n")
	// testdata trees are not packages of the repo.
	write(t, root, "internal/documented/testdata/fix/fix.go", "package fix\n")

	findings, err := Lint(root)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f)
	}
	if len(got) != 2 {
		t.Fatalf("findings = %v, want exactly the two undocumented packages", got)
	}
	for _, want := range []string{"internal/bare", "internal/testonly"} {
		found := false
		for _, f := range got {
			if strings.HasPrefix(f, want+":") {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding for %s in %v", want, got)
		}
	}
}

func TestRelativeLinkDetection(t *testing.T) {
	root := t.TempDir()
	write(t, root, "docs/GOOD.md", "# good\n")
	write(t, root, "README.md", strings.Join([]string{
		"[ok](docs/GOOD.md) and [anchored](docs/GOOD.md#good)",
		"[web](https://example.com/x.md) and [frag](#local) are skipped",
		"[dead](docs/MISSING.md)",
		"```",
		"[fenced](docs/ALSO_MISSING.md)",
		"```",
		"`[span](docs/ALSO_MISSING.md)` stays a code span",
		"![img](docs/missing.png)",
	}, "\n"))

	findings, err := Lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want the dead link and the dead image only", findings)
	}
	if !strings.Contains(findings[0], "docs/MISSING.md") || !strings.Contains(findings[1], "docs/missing.png") {
		t.Fatalf("findings = %v", findings)
	}
	// Links inside docs/ resolve relative to docs/.
	write(t, root, "docs/REF.md", "[up](../README.md) [sib](GOOD.md) [no](nope.md)\n")
	findings, err = Lint(root)
	if err != nil {
		t.Fatal(err)
	}
	dead := 0
	for _, f := range findings {
		if strings.Contains(f, "nope.md") {
			dead++
		}
		if strings.Contains(f, "GOOD.md\" does not resolve") || strings.Contains(f, "README.md\" does not resolve") {
			t.Errorf("resolvable link flagged: %s", f)
		}
	}
	if dead != 1 {
		t.Errorf("findings = %v, want one for nope.md", findings)
	}
}

// Command docslint keeps the repo's documentation honest with two
// checks, both pure standard library:
//
//   - Package docs: every Go package under internal/ and cmd/ must
//     carry a package doc comment in at least one non-test file.
//     These comments are where each package states its role in the
//     paper's design and its concurrency invariants (see
//     docs/ARCHITECTURE.md); a package without one is a subsystem the
//     next reader has to reverse-engineer.
//   - Relative links: every relative markdown link in README.md,
//     ROADMAP.md, CHANGES.md, and docs/*.md must resolve to a file or
//     directory in the repo. Dead relative links are how doc rot
//     starts — the CI docs-lint step fails on them.
//
// Usage:
//
//	docslint [repo-root]
//
// Exit code 1 means findings, 2 means the tool itself failed.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := Lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docslint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// Lint runs both checks under root and returns human-readable
// findings, one per problem, in walk order.
func Lint(root string) ([]string, error) {
	var findings []string
	pkg, err := lintPackageDocs(root)
	if err != nil {
		return nil, err
	}
	findings = append(findings, pkg...)
	links, err := lintRelativeLinks(root)
	if err != nil {
		return nil, err
	}
	findings = append(findings, links...)
	return findings, nil
}

// lintPackageDocs walks internal/ and cmd/ for Go package directories
// lacking a package doc comment in every non-test file.
func lintPackageDocs(root string) ([]string, error) {
	var findings []string
	for _, top := range []string{"internal", "cmd"} {
		base := filepath.Join(root, top)
		if _, err := os.Stat(base); os.IsNotExist(err) {
			continue
		}
		err := filepath.WalkDir(base, func(dir string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				return err
			}
			hasGo, hasDoc := false, false
			for _, ent := range ents {
				name := ent.Name()
				if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
					continue
				}
				hasGo = true
				f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil,
					parser.ParseComments|parser.PackageClauseOnly)
				if err != nil {
					return fmt.Errorf("%s: %w", filepath.Join(dir, name), err)
				}
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					hasDoc = true
					break
				}
			}
			if hasGo && !hasDoc {
				rel, _ := filepath.Rel(root, dir)
				findings = append(findings, fmt.Sprintf("%s: package has no package doc comment in any non-test file", rel))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return findings, nil
}

// linkRe matches markdown inline links and images: [text](target).
// Code spans are stripped before matching, so `[x](y)` in backticks
// is not a link.
var (
	linkRe     = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)
	codeSpanRe = regexp.MustCompile("`[^`]*`")
)

// lintRelativeLinks checks that relative links in the repo's top-level
// markdown files and docs/ resolve.
func lintRelativeLinks(root string) ([]string, error) {
	var files []string
	for _, name := range []string{"README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md"} {
		p := filepath.Join(root, name)
		if _, err := os.Stat(p); err == nil {
			files = append(files, p)
		}
	}
	docs, _ := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	files = append(files, docs...)

	var findings []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		rel, _ := filepath.Rel(root, file)
		inFence := false
		for i, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			line = codeSpanRe.ReplaceAllString(line, "")
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
					strings.HasPrefix(target, "mailto:") {
					continue
				}
				if h := strings.IndexByte(target, '#'); h >= 0 {
					target = target[:h]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					findings = append(findings, fmt.Sprintf("%s:%d: relative link %q does not resolve", rel, i+1, m[1]))
				}
			}
		}
	}
	return findings, nil
}

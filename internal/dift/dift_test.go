package dift

import (
	"testing"

	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

func runBool(t *testing.T, text string, inputs []int64, pol Policy) (*Engine[bool], *CollectSink[bool], *vm.Machine) {
	t.Helper()
	p, err := isa.Assemble("t", text)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, inputs)
	e := NewEngine[bool](Bool{}, pol)
	sink := &CollectSink[bool]{}
	e.AddSink(sink)
	m.AttachTool(e)
	res := m.Run()
	if res.Failed {
		t.Fatalf("run failed: %s", res.FailMsg)
	}
	return e, sink, m
}

func TestBoolTaintFlowsToOutput(t *testing.T) {
	_, sink, _ := runBool(t, `
    in r1, 0
    movi r2, 5
    add r3, r1, r2   ; tainted
    out r3, 1        ; tainted output
    out r2, 1        ; clean output
    halt
`, []int64{9}, DefaultPolicy())
	if len(sink.Outputs) != 2 || !sink.Outputs[0] || sink.Outputs[1] {
		t.Fatalf("outputs = %v, want [true false]", sink.Outputs)
	}
}

func TestTaintThroughMemory(t *testing.T) {
	e, sink, _ := runBool(t, `
    in r1, 0
    store r0, r1, 10
    load r2, r0, 10
    out r2, 1
    halt
`, []int64{3}, DefaultPolicy())
	if !sink.Outputs[0] {
		t.Fatal("taint lost through memory")
	}
	if e.MemTaint(10) != true {
		t.Fatal("memory word 10 should be tainted")
	}
	if e.TaintedWords() != 1 {
		t.Fatalf("tainted words = %d", e.TaintedWords())
	}
}

func TestConstClearsTaint(t *testing.T) {
	_, sink, _ := runBool(t, `
    in r1, 0
    movi r1, 7       ; overwrite: untaint
    out r1, 1
    halt
`, []int64{3}, DefaultPolicy())
	if sink.Outputs[0] {
		t.Fatal("MOVI should clear taint under ClearOnConst")
	}
}

func TestStickyConstPolicy(t *testing.T) {
	_, sink, _ := runBool(t, `
    in r1, 0
    movi r1, 7
    out r1, 1
    halt
`, []int64{3}, Policy{ClearOnConst: false})
	// With sticky labels MOVI writes the zero-join label, which for a
	// fresh constant is still untainted — it has no sources. Sticky
	// affects only domains where Transfer manufactures labels; for
	// Bool the result is identical.
	if sink.Outputs[0] {
		t.Fatal("constant write has no taint sources either way")
	}
}

func TestAddressTaintPolicy(t *testing.T) {
	prog := `
.data 11, 22, 33, 44
    in r1, 0          ; tainted index
    load r2, r1, 0    ; value at tainted address
    out r2, 1
    halt
`
	_, sink, _ := runBool(t, prog, []int64{2}, Policy{ClearOnConst: true})
	if sink.Outputs[0] {
		t.Fatal("without TrackAddresses the loaded value is clean")
	}
	_, sink, _ = runBool(t, prog, []int64{2}, Policy{ClearOnConst: true, TrackAddresses: true})
	if !sink.Outputs[0] {
		t.Fatal("with TrackAddresses the loaded value is tainted")
	}
}

func TestTaintAcrossThreads(t *testing.T) {
	_, sink, _ := runBool(t, `
.data 0, 0
    in r10, 0
    spawn r20, r10, child
    join r20
    load r3, r0, 1
    out r3, 1
    halt
child:
    ; r1 = tainted arg
    store r0, r1, 1
    halt
`, []int64{5}, DefaultPolicy())
	if !sink.Outputs[0] {
		t.Fatal("taint lost across spawn argument and shared memory")
	}
}

func TestIndirectBranchSink(t *testing.T) {
	p := isa.MustAssemble("t", `
.data 0
    in r1, 0        ; attacker-controlled target
    brr r1
target:
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	// Input = address of "target" so the jump lands somewhere valid.
	m.SetInput(0, []int64{int64(p.Labels["target"])})
	e := NewEngine[bool](Bool{}, DefaultPolicy())
	sink := &CollectSink[bool]{}
	e.AddSink(sink)
	m.AttachTool(e)
	res := m.Run()
	if res.Failed {
		t.Fatal(res.FailMsg)
	}
	if len(sink.Branches) != 1 || !sink.Branches[0] {
		t.Fatalf("indirect branch sink = %v, want [true]", sink.Branches)
	}
}

func TestPCTaintTracksLastWriter(t *testing.T) {
	p := isa.MustAssemble("t", `
    in r1, 0
    addi r2, r1, 1
    store r0, r2, 5
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{1})
	e := NewEngine[PCLabel](PC{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	// Memory word 5 was last written by the store on source line 4.
	want := PCLabel(p.Instrs[2].Line)
	if got := e.MemTaint(5); got != want {
		t.Fatalf("PC taint of word 5 = %d, want %d", got, want)
	}
	// r2 was last written by the addi on line 3.
	if got := e.RegTaint(0, 2); got != PCLabel(p.Instrs[1].Line) {
		t.Fatalf("PC taint of r2 = %d", got)
	}
}

// TestPCJoinPrefersFirstOperand pins PC.Join's convention: prefer a
// when non-zero, else b (not "most recent wins" — Transfer handles
// recency by rewriting to the current statement).
func TestPCJoinPrefersFirstOperand(t *testing.T) {
	cases := []struct{ a, b, want PCLabel }{
		{0, 0, 0},
		{0, 7, 7},
		{3, 0, 3},
		{3, 7, 3}, // both tainted: a wins regardless of magnitude
		{7, 3, 7},
	}
	for _, c := range cases {
		if got := (PC{}).Join(c.a, c.b); got != c.want {
			t.Errorf("PC.Join(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPCTaintZeroForClean(t *testing.T) {
	p := isa.MustAssemble("t", `
    movi r1, 10
    store r0, r1, 5
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	e := NewEngine[PCLabel](PC{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if got := e.MemTaint(5); got != 0 {
		t.Fatalf("clean store should leave label 0, got %d", got)
	}
}

func TestInputIDDomain(t *testing.T) {
	p := isa.MustAssemble("t", `
    in r1, 0
    in r2, 0
    add r3, r1, r2
    store r0, r3, 7
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{10, 20})
	e := NewEngine[InputIDLabel](InputID{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	// Join prefers the first source: input index 0 → label 1.
	if got := e.MemTaint(7); got != 1 {
		t.Fatalf("lineage label = %d, want 1", got)
	}
}

func TestEngineReset(t *testing.T) {
	e, _, _ := runBool(t, `
    in r1, 0
    store r0, r1, 3
    halt
`, []int64{1}, DefaultPolicy())
	if e.TaintedWords() != 1 {
		t.Fatalf("tainted = %d", e.TaintedWords())
	}
	e.Reset()
	if e.TaintedWords() != 0 || e.Events() != 0 {
		t.Fatal("reset did not clear state")
	}
	if e.RegTaint(0, 1) {
		t.Fatal("register taint survived reset")
	}
}

func TestCasPropagatesTaint(t *testing.T) {
	// CAS writes Imm (a constant) on success; the loaded old value
	// carries the memory label.
	p := isa.MustAssemble("t", `
.data 0
    in r2, 0            ; tainted expected value
    store r0, r2, 0     ; make mem[0] tainted and equal to r2
    cas r3, r0, r2, 9   ; r3 = old (tainted); mem[0] = 9
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{5})
	e := NewEngine[bool](Bool{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if !e.RegTaint(0, 3) {
		t.Fatal("CAS old value should carry memory taint")
	}
}

// The CAS and spawn tests below pin the engine's observed semantics
// so the pipeline refactor (and anything after it) cannot silently
// change them: Step in state.go is shared by both engines, and these
// are the behaviors the differential suite holds it to.

// TestCasFailureSemantics pins the failure path: a CAS whose expected
// value does not match still *reads* memory (the old value lands in
// Rd with the memory label joined in), but writes nothing — DstMem
// stays NoAddr, so the memory label is untouched, tainted or not.
func TestCasFailureSemantics(t *testing.T) {
	p := isa.MustAssemble("t", `
.data 0
    in r2, 0            ; tainted
    store r0, r2, 0     ; mem[0] tainted, value = input
    movi r4, 99         ; expected value that cannot match
    cas r3, r0, r4, 7   ; fails: r3 = old (tainted), mem unchanged
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{5})
	e := NewEngine[bool](Bool{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if m.Mem[0] != 5 {
		t.Fatalf("CAS unexpectedly succeeded: mem[0] = %d", m.Mem[0])
	}
	if !e.RegTaint(0, 3) {
		t.Fatal("failed CAS must still taint Rd from the memory read")
	}
	if !e.MemTaint(0) {
		t.Fatal("failed CAS must leave the memory label unchanged")
	}
}

// TestCasSuccessWritesExpectedRegLabel pins the success path: the
// stored word is the immediate (a constant), but the engine labels
// DstMem with the *expected-value register's* label — so a tainted
// expected register taints the swapped-in word, and an untainted one
// clears a previously tainted word.
func TestCasSuccessWritesExpectedRegLabel(t *testing.T) {
	// Tainted expected register → memory becomes tainted.
	p := isa.MustAssemble("t", `
.data 0
    in r2, 0            ; tainted expected value
    store r0, r2, 0     ; mem[0] = input (tainted)
    cas r3, r0, r2, 9   ; succeeds: mem[0] = 9, label = label(r2)
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{5})
	e := NewEngine[bool](Bool{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if m.Mem[0] != 9 {
		t.Fatal("CAS should have succeeded")
	}
	if !e.MemTaint(0) {
		t.Fatal("successful CAS labels DstMem from the expected register (tainted)")
	}

	// Untainted expected register → previously tainted memory cleared.
	p3 := isa.MustAssemble("t", `
.data 5
    in r2, 0            ; tainted, value 5
    store r0, r2, 0     ; mem[0] = 5, tainted
    movi r4, 5          ; untainted expected value matching mem[0]
    cas r3, r0, r4, 9   ; succeeds: label(mem[0]) = label(r4) = clean
    halt
`)
	m3 := vm.MustNew(p3, vm.Config{})
	m3.SetInput(0, []int64{5})
	e3 := NewEngine[bool](Bool{}, DefaultPolicy())
	m3.AttachTool(e3)
	if res := m3.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if m3.Mem[0] != 9 {
		t.Fatal("CAS should have succeeded")
	}
	if e3.MemTaint(0) {
		t.Fatal("successful CAS with clean expected register must clear the memory label")
	}
	if !e3.RegTaint(0, 3) {
		t.Fatal("Rd still carries the old (tainted) memory label")
	}
}

// TestSpawnSeedsChildRegisterFile pins spawn's register seeding: the
// child's r1 receives the argument's label before the child runs a
// single instruction, and the spawner's Rd (the returned tid) is
// always clean, tainted argument or not.
func TestSpawnSeedsChildRegisterFile(t *testing.T) {
	p := isa.MustAssemble("t", `
    in r10, 0           ; tainted argument
    spawn r20, r10, child
    join r20
    halt
child:
    halt                ; child never touches r1
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{5})
	e := NewEngine[bool](Bool{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if !e.RegTaint(1, 1) {
		t.Fatal("child r1 must carry the spawn argument's label")
	}
	if e.RegTaint(0, 20) {
		t.Fatal("spawner's tid register must be clean")
	}
}

func TestShadowStatsGrow(t *testing.T) {
	e, _, _ := runBool(t, `
    in r1, 0
    movi r2, 0
    movi r3, 0
loop:
    movi r4, 2000
    bge r3, r4, done
    store r3, r1, 0
    addi r3, r3, 1
    br loop
done:
    halt
`, []int64{1}, DefaultPolicy())
	if e.TaintedWords() != 2000 {
		t.Fatalf("tainted = %d, want 2000", e.TaintedWords())
	}
	if e.ShadowSizeWords() < 2000 {
		t.Fatalf("shadow size = %d", e.ShadowSizeWords())
	}
}

package dift

import (
	"testing"

	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

func runBool(t *testing.T, text string, inputs []int64, pol Policy) (*Engine[bool], *CollectSink[bool], *vm.Machine) {
	t.Helper()
	p, err := isa.Assemble("t", text)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, inputs)
	e := NewEngine[bool](Bool{}, pol)
	sink := &CollectSink[bool]{}
	e.AddSink(sink)
	m.AttachTool(e)
	res := m.Run()
	if res.Failed {
		t.Fatalf("run failed: %s", res.FailMsg)
	}
	return e, sink, m
}

func TestBoolTaintFlowsToOutput(t *testing.T) {
	_, sink, _ := runBool(t, `
    in r1, 0
    movi r2, 5
    add r3, r1, r2   ; tainted
    out r3, 1        ; tainted output
    out r2, 1        ; clean output
    halt
`, []int64{9}, DefaultPolicy())
	if len(sink.Outputs) != 2 || !sink.Outputs[0] || sink.Outputs[1] {
		t.Fatalf("outputs = %v, want [true false]", sink.Outputs)
	}
}

func TestTaintThroughMemory(t *testing.T) {
	e, sink, _ := runBool(t, `
    in r1, 0
    store r0, r1, 10
    load r2, r0, 10
    out r2, 1
    halt
`, []int64{3}, DefaultPolicy())
	if !sink.Outputs[0] {
		t.Fatal("taint lost through memory")
	}
	if e.MemTaint(10) != true {
		t.Fatal("memory word 10 should be tainted")
	}
	if e.TaintedWords() != 1 {
		t.Fatalf("tainted words = %d", e.TaintedWords())
	}
}

func TestConstClearsTaint(t *testing.T) {
	_, sink, _ := runBool(t, `
    in r1, 0
    movi r1, 7       ; overwrite: untaint
    out r1, 1
    halt
`, []int64{3}, DefaultPolicy())
	if sink.Outputs[0] {
		t.Fatal("MOVI should clear taint under ClearOnConst")
	}
}

func TestStickyConstPolicy(t *testing.T) {
	_, sink, _ := runBool(t, `
    in r1, 0
    movi r1, 7
    out r1, 1
    halt
`, []int64{3}, Policy{ClearOnConst: false})
	// With sticky labels MOVI writes the zero-join label, which for a
	// fresh constant is still untainted — it has no sources. Sticky
	// affects only domains where Transfer manufactures labels; for
	// Bool the result is identical.
	if sink.Outputs[0] {
		t.Fatal("constant write has no taint sources either way")
	}
}

func TestAddressTaintPolicy(t *testing.T) {
	prog := `
.data 11, 22, 33, 44
    in r1, 0          ; tainted index
    load r2, r1, 0    ; value at tainted address
    out r2, 1
    halt
`
	_, sink, _ := runBool(t, prog, []int64{2}, Policy{ClearOnConst: true})
	if sink.Outputs[0] {
		t.Fatal("without TrackAddresses the loaded value is clean")
	}
	_, sink, _ = runBool(t, prog, []int64{2}, Policy{ClearOnConst: true, TrackAddresses: true})
	if !sink.Outputs[0] {
		t.Fatal("with TrackAddresses the loaded value is tainted")
	}
}

func TestTaintAcrossThreads(t *testing.T) {
	_, sink, _ := runBool(t, `
.data 0, 0
    in r10, 0
    spawn r20, r10, child
    join r20
    load r3, r0, 1
    out r3, 1
    halt
child:
    ; r1 = tainted arg
    store r0, r1, 1
    halt
`, []int64{5}, DefaultPolicy())
	if !sink.Outputs[0] {
		t.Fatal("taint lost across spawn argument and shared memory")
	}
}

func TestIndirectBranchSink(t *testing.T) {
	p := isa.MustAssemble("t", `
.data 0
    in r1, 0        ; attacker-controlled target
    brr r1
target:
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	// Input = address of "target" so the jump lands somewhere valid.
	m.SetInput(0, []int64{int64(p.Labels["target"])})
	e := NewEngine[bool](Bool{}, DefaultPolicy())
	sink := &CollectSink[bool]{}
	e.AddSink(sink)
	m.AttachTool(e)
	res := m.Run()
	if res.Failed {
		t.Fatal(res.FailMsg)
	}
	if len(sink.Branches) != 1 || !sink.Branches[0] {
		t.Fatalf("indirect branch sink = %v, want [true]", sink.Branches)
	}
}

func TestPCTaintTracksLastWriter(t *testing.T) {
	p := isa.MustAssemble("t", `
    in r1, 0
    addi r2, r1, 1
    store r0, r2, 5
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{1})
	e := NewEngine[PCLabel](PC{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	// Memory word 5 was last written by the store on source line 4.
	want := PCLabel(p.Instrs[2].Line)
	if got := e.MemTaint(5); got != want {
		t.Fatalf("PC taint of word 5 = %d, want %d", got, want)
	}
	// r2 was last written by the addi on line 3.
	if got := e.RegTaint(0, 2); got != PCLabel(p.Instrs[1].Line) {
		t.Fatalf("PC taint of r2 = %d", got)
	}
}

// TestPCJoinPrefersFirstOperand pins PC.Join's convention: prefer a
// when non-zero, else b (not "most recent wins" — Transfer handles
// recency by rewriting to the current statement).
func TestPCJoinPrefersFirstOperand(t *testing.T) {
	cases := []struct{ a, b, want PCLabel }{
		{0, 0, 0},
		{0, 7, 7},
		{3, 0, 3},
		{3, 7, 3}, // both tainted: a wins regardless of magnitude
		{7, 3, 7},
	}
	for _, c := range cases {
		if got := (PC{}).Join(c.a, c.b); got != c.want {
			t.Errorf("PC.Join(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPCTaintZeroForClean(t *testing.T) {
	p := isa.MustAssemble("t", `
    movi r1, 10
    store r0, r1, 5
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	e := NewEngine[PCLabel](PC{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if got := e.MemTaint(5); got != 0 {
		t.Fatalf("clean store should leave label 0, got %d", got)
	}
}

func TestInputIDDomain(t *testing.T) {
	p := isa.MustAssemble("t", `
    in r1, 0
    in r2, 0
    add r3, r1, r2
    store r0, r3, 7
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{10, 20})
	e := NewEngine[InputIDLabel](InputID{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	// Join prefers the first source: input index 0 → label 1.
	if got := e.MemTaint(7); got != 1 {
		t.Fatalf("lineage label = %d, want 1", got)
	}
}

func TestEngineReset(t *testing.T) {
	e, _, _ := runBool(t, `
    in r1, 0
    store r0, r1, 3
    halt
`, []int64{1}, DefaultPolicy())
	if e.TaintedWords() != 1 {
		t.Fatalf("tainted = %d", e.TaintedWords())
	}
	e.Reset()
	if e.TaintedWords() != 0 || e.Events() != 0 {
		t.Fatal("reset did not clear state")
	}
	if e.RegTaint(0, 1) {
		t.Fatal("register taint survived reset")
	}
}

func TestCasPropagatesTaint(t *testing.T) {
	// CAS writes Imm (a constant) on success; the loaded old value
	// carries the memory label.
	p := isa.MustAssemble("t", `
.data 0
    in r2, 0            ; tainted expected value
    store r0, r2, 0     ; make mem[0] tainted and equal to r2
    cas r3, r0, r2, 9   ; r3 = old (tainted); mem[0] = 9
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{5})
	e := NewEngine[bool](Bool{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if !e.RegTaint(0, 3) {
		t.Fatal("CAS old value should carry memory taint")
	}
}

// The CAS and spawn tests below pin the engine's observed semantics
// so the pipeline refactor (and anything after it) cannot silently
// change them: Step in state.go is shared by both engines, and these
// are the behaviors the differential suite holds it to.

// TestCasFailureSemantics pins the failure path: a CAS whose expected
// value does not match still *reads* memory (the old value lands in
// Rd with the memory label joined in), but writes nothing — DstMem
// stays NoAddr, so the memory label is untouched, tainted or not.
func TestCasFailureSemantics(t *testing.T) {
	p := isa.MustAssemble("t", `
.data 0
    in r2, 0            ; tainted
    store r0, r2, 0     ; mem[0] tainted, value = input
    movi r4, 99         ; expected value that cannot match
    cas r3, r0, r4, 7   ; fails: r3 = old (tainted), mem unchanged
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{5})
	e := NewEngine[bool](Bool{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if m.Mem[0] != 5 {
		t.Fatalf("CAS unexpectedly succeeded: mem[0] = %d", m.Mem[0])
	}
	if !e.RegTaint(0, 3) {
		t.Fatal("failed CAS must still taint Rd from the memory read")
	}
	if !e.MemTaint(0) {
		t.Fatal("failed CAS must leave the memory label unchanged")
	}
}

// TestCasSuccessStoresConstant pins the success path: the stored word
// is the immediate — a constant — so under ClearOnConst the cell's
// label is cleared exactly like a MOVI destination, tainted expected
// register or not. (The engine used to label the cell from the
// expected-value register unconditionally, over-tainting a constant
// store.)
func TestCasSuccessStoresConstant(t *testing.T) {
	// Tainted expected register → memory still cleared: the swapped-in
	// word is the constant 9, not the register.
	p := isa.MustAssemble("t", `
.data 0
    in r2, 0            ; tainted expected value
    store r0, r2, 0     ; mem[0] = input (tainted)
    cas r3, r0, r2, 9   ; succeeds: mem[0] = 9 (a constant)
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{5})
	e := NewEngine[bool](Bool{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if m.Mem[0] != 9 {
		t.Fatal("CAS should have succeeded")
	}
	if e.MemTaint(0) {
		t.Fatal("successful CAS stores a constant: ClearOnConst must clear the cell")
	}
	if !e.RegTaint(0, 3) {
		t.Fatal("Rd still carries the old (tainted) memory label")
	}
}

// TestCasSuccessStickyKeepsGateDependence pins the sticky ablation
// (ClearOnConst off): the cell keeps a conservative dependence on the
// expected-value register whose comparison gated the swap — its label
// read BEFORE the Rd update, so Rd == Rs2 does not leak the old
// value's label into the cell (the aliasing bug fixed in Step).
func TestCasSuccessStickyKeepsGateDependence(t *testing.T) {
	sticky := Policy{ClearOnConst: false}

	// Tainted expected register: the swapped cell depends on the gate.
	p := isa.MustAssemble("t", `
.data 0
    in r2, 0            ; tainted expected value
    store r0, r2, 0     ; mem[0] = input (tainted)
    cas r3, r0, r2, 9   ; succeeds
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{5})
	e := NewEngine[bool](Bool{}, sticky)
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if !e.MemTaint(0) {
		t.Fatal("sticky CAS must keep the expected register's label on the cell")
	}

	// Rd == Rs2 with a clean expected register over tainted memory:
	// the cell must take the register's PRE-update (clean) label, not
	// the tainted old value that lands in Rd by the same instruction.
	p2 := isa.MustAssemble("t", `
.data 0
    in r3, 0            ; tainted, value 5
    store r0, r3, 0     ; mem[0] = 5, tainted
    movi r2, 5          ; clean expected value
    cas r2, r0, r2, 9   ; Rd == Rs2, succeeds
    halt
`)
	m2 := vm.MustNew(p2, vm.Config{})
	m2.SetInput(0, []int64{5})
	e2 := NewEngine[bool](Bool{}, sticky)
	m2.AttachTool(e2)
	if res := m2.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if m2.Mem[0] != 9 {
		t.Fatal("CAS should have succeeded")
	}
	if !e2.RegTaint(0, 2) {
		t.Fatal("Rd must carry the old (tainted) memory label")
	}
	if e2.MemTaint(0) {
		t.Fatal("Rd == Rs2 aliasing: cell took the post-update label instead of the clean pre-CAS one")
	}
}

// TestDiscardRegisterNeverTainted pins the r0 rule: the machine
// discards writes to r0 and it always reads 0, so the engine must not
// label it — a discarded tainted computation used to leave a sticky
// label on r0 that falsely tainted every later use of the constant 0.
func TestDiscardRegisterNeverTainted(t *testing.T) {
	p := isa.MustAssemble("t", `
    in r2, 0            ; tainted
    add r0, r2, r2      ; discarded computation over tainted data
    add r5, r0, r0      ; r5 = 0 + 0, a constant
    out r5, 1
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{5})
	e := NewEngine[bool](Bool{}, DefaultPolicy())
	sink := &CollectSink[bool]{}
	e.AddSink(sink)
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if e.RegTaint(0, 0) {
		t.Fatal("discard register r0 carries a label")
	}
	if e.RegTaint(0, 5) {
		t.Fatal("constant computed from r0 is tainted")
	}
	if len(sink.Outputs) != 1 || sink.Outputs[0] {
		t.Fatalf("output of a constant reported tainted: %v", sink.Outputs)
	}
}

// TestSpawnSeedsChildRegisterFile pins spawn's register seeding: the
// child's r1 receives the argument's label before the child runs a
// single instruction, and the spawner's Rd (the returned tid) is
// always clean, tainted argument or not.
func TestSpawnSeedsChildRegisterFile(t *testing.T) {
	p := isa.MustAssemble("t", `
    in r10, 0           ; tainted argument
    spawn r20, r10, child
    join r20
    halt
child:
    halt                ; child never touches r1
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{5})
	e := NewEngine[bool](Bool{}, DefaultPolicy())
	m.AttachTool(e)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if !e.RegTaint(1, 1) {
		t.Fatal("child r1 must carry the spawn argument's label")
	}
	if e.RegTaint(0, 20) {
		t.Fatal("spawner's tid register must be clean")
	}
}

func TestShadowStatsGrow(t *testing.T) {
	e, _, _ := runBool(t, `
    in r1, 0
    movi r2, 0
    movi r3, 0
loop:
    movi r4, 2000
    bge r3, r4, done
    store r3, r1, 0
    addi r3, r3, 1
    br loop
done:
    halt
`, []int64{1}, DefaultPolicy())
	if e.TaintedWords() != 2000 {
		t.Fatalf("tainted = %d, want 2000", e.TaintedWords())
	}
	if e.ShadowSizeWords() < 2000 {
		t.Fatalf("shadow size = %d", e.ShadowSizeWords())
	}
}

package dift

import "scaldift/internal/vm"

// Bool is the boolean taint domain used for attack detection: a label
// is true iff the value is derived from program input.
type Bool struct{}

// Source marks input words tainted.
func (Bool) Source(*vm.Event) bool { return true }

// Join is logical or.
func (Bool) Join(a, b bool) bool { return a || b }

// Transfer propagates the joined source label unchanged.
func (Bool) Transfer(_ *vm.Event, src bool) bool { return src }

// PC is the program-counter taint domain of §3.3: instead of a
// boolean, a tainted location carries the statement id (source line)
// of the most recent instruction that wrote to it; zero means
// untainted. When an attack is detected, the label of the offending
// location directly names the statement that last modified it — the
// paper reports this usually is the root cause of the exploited bug.
type PC struct{}

// PCLabel is the PC-taint label: a statement id, 0 = untainted.
type PCLabel int32

// Source labels an input word with the reading statement.
func (PC) Source(ev *vm.Event) PCLabel { return PCLabel(ev.Instr.Line) }

// Join prefers a when it is non-zero, else b. It does NOT pick the
// most recent writer — recency is unknowable at join time — and it
// does not need to: Transfer rewrites every non-zero result to the
// current statement, so Join only has to preserve "some source was
// tainted". The a-then-b preference is a fixed convention pinned by
// TestPCJoinPrefersFirstOperand.
func (PC) Join(a, b PCLabel) PCLabel {
	if a != 0 {
		return a
	}
	return b
}

// Transfer rewrites any tainted value to the current statement id:
// "the PC value corresponding to a tainted location is the PC of the
// most recent instruction that wrote to the location".
func (PC) Transfer(ev *vm.Event, src PCLabel) PCLabel {
	if src == 0 {
		return 0
	}
	return PCLabel(ev.Instr.Line)
}

// InputID is a diagnostic domain that carries the global index of the
// single most recent input influencing a value (approximate single-
// source lineage; the exact multi-source version is the roBDD domain
// in internal/lineage). Zero means untainted, so stored indices are
// offset by one.
type InputID struct{}

// InputIDLabel is 1+the input index, 0 = untainted.
type InputIDLabel int64

// Source labels the word with its global input index + 1.
func (InputID) Source(ev *vm.Event) InputIDLabel { return InputIDLabel(ev.InputIdx + 1) }

// Join prefers the first non-zero label.
func (InputID) Join(a, b InputIDLabel) InputIDLabel {
	if a != 0 {
		return a
	}
	return b
}

// Transfer propagates unchanged.
func (InputID) Transfer(_ *vm.Event, src InputIDLabel) InputIDLabel { return src }

// NopSink is a Sink that ignores everything; embed it to implement
// only the hooks you need.
type NopSink[L comparable] struct{}

// OnOutput ignores the observation.
func (NopSink[L]) OnOutput(*vm.Event, L) {}

// OnIndirectBranch ignores the observation.
func (NopSink[L]) OnIndirectBranch(*vm.Event, L) {}

// CollectSink records every sink observation; tests use it.
type CollectSink[L comparable] struct {
	NopSink[L]
	Outputs  []L
	Branches []L
}

// OnOutput appends the label.
func (c *CollectSink[L]) OnOutput(_ *vm.Event, l L) { c.Outputs = append(c.Outputs, l) }

// OnIndirectBranch appends the label.
func (c *CollectSink[L]) OnIndirectBranch(_ *vm.Event, l L) { c.Branches = append(c.Branches, l) }

// Package dift implements the core dynamic information flow tracking
// engine of the paper: a VM tool that maintains a taint label for
// every register and memory word and propagates labels along dynamic
// data dependences from program inputs to computed values.
//
// The engine is generic over a taint Domain. The paper instantiates
// the same framework three ways, and so do we:
//
//   - boolean taint (security; §3.3) — Bool domain,
//   - program-counter taint (bug location; §3.3) — PC domain, where a
//     tainted location carries the PC of the most recent instruction
//     that wrote it,
//   - lineage-set taint (data validation; §3.4) — lineage.Domain, the
//     roBDD-backed domain in internal/lineage; labels are bdd.Ref
//     handles and its Recorder sink answers per-output provenance
//     queries after the run.
//
// A domain plugs in by implementing Domain[L] for a comparable label
// type whose zero value means "untainted" and instantiating the
// engine with NewEngine[L]; register and memory labels live in the
// generic shadow.Mem[L], so adding a domain needs no engine changes.
package dift

import (
	"scaldift/internal/isa"
	"scaldift/internal/shadow"
	"scaldift/internal/vm"
)

// Domain defines a taint label algebra. The zero value of L must mean
// "untainted"; Join must be commutative and associative with zero as
// identity.
type Domain[L comparable] interface {
	// Source returns the label for a fresh input word (IN).
	Source(ev *vm.Event) L
	// Join combines two labels.
	Join(a, b L) L
	// Transfer maps the joined source label to the destination label
	// for an executed instruction. Plain domains return src
	// unchanged; the PC domain rewrites any non-zero src to the
	// current statement.
	Transfer(ev *vm.Event, src L) L
}

// Policy selects propagation rules that the paper treats as
// application-specific choices.
type Policy struct {
	// TrackAddresses also propagates taint from the address register
	// of loads and stores into the accessed value (pointer taint).
	TrackAddresses bool
	// ClearOnConst treats constant writes (MOVI) as untainting, the
	// conventional rule. Disable to keep labels sticky for ablation.
	ClearOnConst bool
}

// DefaultPolicy is the propagation rule set used by the paper's
// security application.
func DefaultPolicy() Policy { return Policy{ClearOnConst: true} }

// Sink receives taint observations at information-flow sinks.
type Sink[L comparable] interface {
	// OnOutput fires for each OUT with the label of the value.
	OnOutput(ev *vm.Event, label L)
	// OnIndirectBranch fires for BRR/CALLR with the label of the
	// target register — the attack-detection hook.
	OnIndirectBranch(ev *vm.Event, label L)
}

// Engine is the taint-propagation tool. Attach it to a vm.Machine.
type Engine[L comparable] struct {
	dom    Domain[L]
	pol    Policy
	regs   [][isa.NumRegs]L
	mem    *shadow.Mem[L]
	sinks  []Sink[L]
	zero   L
	events uint64
}

// NewEngine creates a DIFT engine over the given domain and policy.
func NewEngine[L comparable](dom Domain[L], pol Policy) *Engine[L] {
	return &Engine[L]{dom: dom, pol: pol, mem: shadow.NewMem[L]()}
}

// AddSink registers a sink.
func (e *Engine[L]) AddSink(s Sink[L]) { e.sinks = append(e.sinks, s) }

// RegTaint returns the label of register r in thread tid.
func (e *Engine[L]) RegTaint(tid int, r int) L {
	if tid >= len(e.regs) || r < 0 || r >= isa.NumRegs {
		return e.zero
	}
	return e.regs[tid][r]
}

// MemTaint returns the label of memory word addr.
func (e *Engine[L]) MemTaint(addr int64) L { return e.mem.Get(addr) }

// SetMemTaint force-sets a memory label (used by tests and by tools
// that seed taint at non-IN boundaries).
func (e *Engine[L]) SetMemTaint(addr int64, l L) { e.mem.Set(addr, l) }

// TaintedWords returns the number of memory words currently tainted.
func (e *Engine[L]) TaintedWords() int { return e.mem.Tainted() }

// ShadowSizeWords returns the allocated shadow memory size in cells,
// for memory-overhead reporting.
func (e *Engine[L]) ShadowSizeWords() int { return e.mem.SizeWords() }

// Events returns how many instruction events the engine processed.
func (e *Engine[L]) Events() uint64 { return e.events }

// Reset clears all taint state.
func (e *Engine[L]) Reset() {
	e.regs = nil
	e.mem.Clear()
	e.events = 0
}

// Regs implements RegBank, growing the per-thread file on demand.
func (e *Engine[L]) Regs(tid int) *[isa.NumRegs]L {
	for tid >= len(e.regs) {
		e.regs = append(e.regs, [isa.NumRegs]L{})
	}
	return &e.regs[tid]
}

// OnEvent implements vm.Tool: propagate taint for one instruction.
// The propagation semantics live in Step, which the offloaded
// pipeline workers (internal/pipeline) share.
func (e *Engine[L]) OnEvent(m *vm.Machine, ev *vm.Event) {
	if ev.Blocked {
		return
	}
	e.events++
	Step(e.dom, e.pol, e, e.mem, e.sinks, ev)
}

var _ vm.Tool = (*Engine[bool])(nil)

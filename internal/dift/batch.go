package dift

import (
	"scaldift/internal/vm"
)

// StepBatch applies Step's label effects to a slice of events,
// batching per-event overhead over runs of same-shape work: the
// register file is resolved once per thread run instead of per event,
// and runs of the same event kind execute in tight per-kind loops
// with the policy checks hoisted, instead of re-entering the Step
// dispatch switch for every instruction. On loop-heavy traces —
// exactly what the offloaded pipeline's windows contain — most events
// arrive in long single-kind runs, so the per-event cost drops to the
// domain operations themselves.
//
// Semantics are identical to calling Step on each event in order (the
// differential test in batch_test.go pins this); the per-kind loops
// below are specializations of Step's cases, relying on the event
// shapes the VM actually emits (EvCompute never carries memory
// operands — exec.go populates SrcMem/DstMem only for loads, stores,
// CAS, and flag ops).
//
// The bank must return stable per-tid pointers, which the RegBank
// contract already requires.
func StepBatch[L comparable](dom Domain[L], pol Policy, bank RegBank[L], mem Store[L], sinks []Sink[L], evs []vm.Event) {
	var zero L
	n := len(evs)
	for i := 0; i < n; {
		tid := evs[i].TID
		kind := evs[i].Kind
		j := i + 1
		for j < n && evs[j].Kind == kind && evs[j].TID == tid {
			j++
		}
		regs := bank.Regs(tid)
		switch kind {
		case vm.EvCompute:
			// Step's EvCompute case with the EvCas-only memory-operand
			// branches removed: computes never read or write memory.
			for k := i; k < j; k++ {
				ev := &evs[k]
				if ev.DstReg <= 0 {
					continue // r0 discard or no destination: no label effect
				}
				if ev.NSrc == 0 && pol.ClearOnConst {
					regs[ev.DstReg] = zero
				} else {
					regs[ev.DstReg] = dom.Transfer(ev, joinSrc(dom, regs, ev))
				}
			}
		case vm.EvLoad:
			if pol.TrackAddresses {
				for k := i; k < j; k++ {
					ev := &evs[k]
					src := mem.Get(ev.SrcMem)
					if ev.AddrReg >= 0 {
						src = dom.Join(src, regs[ev.AddrReg])
					}
					if ev.DstReg > 0 {
						regs[ev.DstReg] = dom.Transfer(ev, src)
					}
				}
			} else {
				for k := i; k < j; k++ {
					ev := &evs[k]
					if ev.DstReg > 0 {
						regs[ev.DstReg] = dom.Transfer(ev, mem.Get(ev.SrcMem))
					}
				}
			}
		case vm.EvStore:
			for k := i; k < j; k++ {
				ev := &evs[k]
				src := joinSrc(dom, regs, ev)
				if pol.TrackAddresses && ev.AddrReg >= 0 {
					src = dom.Join(src, regs[ev.AddrReg])
				}
				mem.Set(ev.DstMem, dom.Transfer(ev, src))
			}
		default:
			// Rarer kinds (inputs, CAS, sinks, spawn, flags) keep the
			// shared transfer function.
			for k := i; k < j; k++ {
				Step(dom, pol, bank, mem, sinks, &evs[k])
			}
		}
		i = j
	}
}

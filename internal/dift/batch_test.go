package dift_test

// StepBatch must be observationally identical to calling Step on each
// event in order — it is an amortization of dispatch, not a second
// transfer function. This differential suite replays real recorded
// event streams (every prog workload plus progen-generated concurrent
// programs) through both, under multiple domains and policies, and
// compares every register file, the full shadow memory, and the sink
// observation sequence. The test lives in an external package so it
// can use progen (which imports dift).

import (
	"fmt"
	"testing"

	"scaldift/internal/dift"
	"scaldift/internal/isa"
	"scaldift/internal/prog"
	"scaldift/internal/progen"
	"scaldift/internal/shadow"
	"scaldift/internal/vm"
)

// bank is a minimal RegBank with the stable per-tid pointers the
// contract requires.
type bank[L comparable] struct{ files []*[isa.NumRegs]L }

func (b *bank[L]) Regs(tid int) *[isa.NumRegs]L {
	for tid >= len(b.files) {
		b.files = append(b.files, new([isa.NumRegs]L))
	}
	return b.files[tid]
}

// obs is one sink observation, comparable across replays.
type obs[L comparable] struct {
	seq    uint64
	label  L
	branch bool
}

type obsSink[L comparable] struct{ got []obs[L] }

func (s *obsSink[L]) OnOutput(ev *vm.Event, l L) {
	s.got = append(s.got, obs[L]{seq: ev.Seq, label: l})
}

func (s *obsSink[L]) OnIndirectBranch(ev *vm.Event, l L) {
	s.got = append(s.got, obs[L]{seq: ev.Seq, label: l, branch: true})
}

// record runs m with a relevance-filtered recorder and returns the
// batches' event slices (copied, so pooling cannot alias them).
func record(t *testing.T, m *vm.Machine) [][]vm.Event {
	t.Helper()
	var out [][]vm.Event
	rec := vm.NewRecorder(vm.DefaultBatchEvents, dift.Relevant, func(b *vm.Batch) {
		evs := make([]vm.Event, len(b.Events))
		copy(evs, b.Events)
		out = append(out, evs)
	})
	m.AttachTool(rec)
	if res := m.Run(); res.Failed {
		t.Fatalf("run failed: %s", res.FailMsg)
	}
	rec.Flush()
	return out
}

// diffReplay feeds the same batch stream through Step (event by
// event) and StepBatch (batch at a time) and fails on any divergence
// in registers, memory, or sink observations.
func diffReplay[L comparable](t *testing.T, dom dift.Domain[L], pol dift.Policy, batches [][]vm.Event) {
	t.Helper()
	stepBank, batchBank := &bank[L]{}, &bank[L]{}
	stepMem, batchMem := shadow.NewMem[L](), shadow.NewMem[L]()
	stepSink, batchSink := &obsSink[L]{}, &obsSink[L]{}
	stepSinks := []dift.Sink[L]{stepSink}
	batchSinks := []dift.Sink[L]{batchSink}
	for _, evs := range batches {
		for i := range evs {
			dift.Step(dom, pol, stepBank, stepMem, stepSinks, &evs[i])
		}
		dift.StepBatch(dom, pol, batchBank, batchMem, batchSinks, evs)
	}
	if len(stepSink.got) != len(batchSink.got) {
		t.Fatalf("sink observations: Step %d, StepBatch %d", len(stepSink.got), len(batchSink.got))
	}
	for i := range stepSink.got {
		if stepSink.got[i] != batchSink.got[i] {
			t.Fatalf("sink obs %d: Step %+v, StepBatch %+v", i, stepSink.got[i], batchSink.got[i])
		}
	}
	for tid := range stepBank.files {
		sf, bf := stepBank.Regs(tid), batchBank.Regs(tid)
		for r := 0; r < isa.NumRegs; r++ {
			if sf[r] != bf[r] {
				t.Fatalf("tid %d r%d: Step %v, StepBatch %v", tid, r, sf[r], bf[r])
			}
		}
	}
	if sw, bw := stepMem.Tainted(), batchMem.Tainted(); sw != bw {
		t.Fatalf("tainted words: Step %d, StepBatch %d", sw, bw)
	}
	stepMem.Range(func(addr int64, l L) bool {
		if got := batchMem.Get(addr); got != l {
			t.Fatalf("mem[%d]: Step %v, StepBatch %v", addr, l, got)
		}
		return true
	})
}

// policies exercises both fast-loop specializations in StepBatch: the
// default rules and the address-tracking/sticky ablation.
var policies = []struct {
	name string
	pol  dift.Policy
}{
	{"default", dift.DefaultPolicy()},
	{"track-addr-sticky", dift.Policy{TrackAddresses: true, ClearOnConst: false}},
}

func TestStepBatchMatchesStepOnWorkloads(t *testing.T) {
	for _, w := range prog.All() {
		batches := record(t, w.NewMachine())
		for _, pc := range policies {
			t.Run(w.Name+"/bool/"+pc.name, func(t *testing.T) {
				diffReplay[bool](t, dift.Bool{}, pc.pol, batches)
			})
			t.Run(w.Name+"/pc/"+pc.name, func(t *testing.T) {
				diffReplay[dift.PCLabel](t, dift.PC{}, pc.pol, batches)
			})
		}
	}
}

func TestStepBatchMatchesStepOnGenerated(t *testing.T) {
	cfg := progen.DefaultGenConfig()
	for seed := uint64(1); seed <= 25; seed++ {
		g := progen.Generate(seed, cfg)
		p := g.Par
		m := vm.MustNew(g.Prog, vm.Config{
			MemWords:   p.MemWords,
			StackWords: p.StackWords,
			MaxThreads: p.MaxThreads,
			Quantum:    p.Quantum,
			Seed:       p.Seed,
			MaxSteps:   p.MaxSteps,
		})
		for ch, words := range g.Inputs {
			m.SetInput(ch, words)
		}
		batches := record(t, m)
		for _, pc := range policies {
			t.Run(fmt.Sprintf("seed%d/%s", seed, pc.name), func(t *testing.T) {
				diffReplay[bool](t, dift.Bool{}, pc.pol, batches)
			})
		}
	}
}

package dift

import (
	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

// Store abstracts the memory-label container a propagation step reads
// and writes: the paged shadow.Mem inline, or the sharded variant the
// offloaded pipeline's workers share (internal/pipeline).
type Store[L comparable] interface {
	Get(addr int64) L
	Set(addr int64, l L)
}

// RegBank hands out per-thread register label files. Implementations
// must return a stable pointer for a given tid; Step only asks for
// the executing thread and, on spawn, the child thread.
type RegBank[L comparable] interface {
	Regs(tid int) *[isa.NumRegs]L
}

// joinSrc folds the labels of the event's source registers.
func joinSrc[L comparable](dom Domain[L], regs *[isa.NumRegs]L, ev *vm.Event) L {
	var l L
	for i := 0; i < ev.NSrc; i++ {
		l = dom.Join(l, regs[ev.SrcRegs[i]])
	}
	return l
}

// Step applies the label effects of one non-blocked event to the
// given register bank and memory store, firing sinks as it goes. It
// is the DIFT propagation transfer function — the single place the
// semantics live — shared verbatim by the inline Engine and by the
// offloaded pipeline's workers, so the two cannot drift apart (the
// differential suite in internal/pipeline checks that they do not).
//
// Step is pure with respect to everything except (regs, mem, sinks):
// for a fixed domain and policy, the labels it writes depend only on
// the event and the labels it reads.
func Step[L comparable](dom Domain[L], pol Policy, bank RegBank[L], mem Store[L], sinks []Sink[L], ev *vm.Event) {
	var zero L
	regs := bank.Regs(ev.TID)
	// Register label writes are guarded with DstReg > 0: r0 is the
	// discard register — the machine drops writes to it and it always
	// reads 0 — so labeling it would let a discarded computation
	// over-taint every later use of the constant 0 (regs[0] stays at
	// the zero label forever, matching the value).
	switch ev.Kind {
	case vm.EvInput:
		if ev.DstReg > 0 && ev.Instr.Op == isa.IN {
			regs[ev.DstReg] = dom.Transfer(ev, dom.Source(ev))
		} else if ev.DstReg > 0 {
			regs[ev.DstReg] = zero // INAVAIL is not a source
		}
	case vm.EvCompute, vm.EvCas:
		if ev.DstReg < 0 {
			return
		}
		src := joinSrc(dom, regs, ev)
		if ev.SrcMem != vm.NoAddr { // CAS reads memory too
			src = dom.Join(src, mem.Get(ev.SrcMem))
		}
		// Read the expected-value register's label BEFORE the Rd
		// update: when Rd == Rs2 the memory write below must see the
		// pre-CAS label, not the label of the old value that just
		// landed in Rd (a former aliasing bug, pinned by the Rd == Rs2
		// CAS tests).
		var srcM L
		if ev.DstMem != vm.NoAddr {
			srcM = regs[int(ev.Instr.Rs2)]
		}
		if ev.DstReg > 0 {
			if ev.NSrc == 0 && ev.SrcMem == vm.NoAddr && pol.ClearOnConst {
				regs[ev.DstReg] = zero
			} else {
				regs[ev.DstReg] = dom.Transfer(ev, src)
			}
		}
		if ev.DstMem != vm.NoAddr {
			// CAS success swapped the *constant* Imm into the cell
			// (exec.go stores ins.Imm). Under ClearOnConst the cell is
			// therefore cleared, exactly like a MOVI destination; with
			// sticky labels the cell keeps a conservative dependence on
			// the expected-value register whose comparison gated the
			// swap. Labeling the cell with Rs2's label unconditionally
			// (the old rule) over-tainted a constant store.
			if pol.ClearOnConst {
				mem.Set(ev.DstMem, zero)
			} else {
				mem.Set(ev.DstMem, dom.Transfer(ev, srcM))
			}
		}
	case vm.EvLoad:
		src := mem.Get(ev.SrcMem)
		if pol.TrackAddresses && ev.AddrReg >= 0 {
			src = dom.Join(src, regs[ev.AddrReg])
		}
		if ev.DstReg > 0 {
			regs[ev.DstReg] = dom.Transfer(ev, src)
		}
	case vm.EvStore:
		src := joinSrc(dom, regs, ev)
		if pol.TrackAddresses && ev.AddrReg >= 0 {
			src = dom.Join(src, regs[ev.AddrReg])
		}
		mem.Set(ev.DstMem, dom.Transfer(ev, src))
	case vm.EvOutput:
		l := joinSrc(dom, regs, ev)
		for _, s := range sinks {
			s.OnOutput(ev, l)
		}
	case vm.EvBranch, vm.EvCall:
		if ev.Instr.Op == isa.BRR || ev.Instr.Op == isa.CALLR {
			l := regs[int(ev.Instr.Rs1)]
			for _, s := range sinks {
				s.OnIndirectBranch(ev, l)
			}
		}
	case vm.EvSpawn:
		// The spawned thread's r1 receives the argument; propagate
		// its label to the new thread's register file.
		child := int(ev.DstVal)
		arg := regs[int(ev.Instr.Rs1)]
		if ev.DstReg > 0 {
			regs[ev.DstReg] = zero // tid is not input-derived
		}
		bank.Regs(child)[1] = arg
	case vm.EvFlag:
		if ev.DstMem != vm.NoAddr {
			mem.Set(ev.DstMem, zero) // flag constants are untainted
		}
	}
}

// Relevant reports whether Step does anything for ev: whether the
// event can read or write a label or reach a sink. The pipeline's
// recorder uses it to drop the rest of the stream (plain branches,
// sync operations with no label effect, blocked retries) before
// copying, which is most of the volume on control-heavy code.
func Relevant(ev *vm.Event) bool {
	if ev.Blocked {
		return false
	}
	switch ev.Kind {
	case vm.EvInput:
		return ev.DstReg >= 0
	case vm.EvCompute, vm.EvCas:
		return ev.DstReg >= 0
	case vm.EvLoad, vm.EvStore, vm.EvOutput, vm.EvSpawn:
		return true
	case vm.EvFlag:
		return ev.DstMem != vm.NoAddr
	case vm.EvBranch, vm.EvCall:
		return ev.Instr.Op == isa.BRR || ev.Instr.Op == isa.CALLR
	}
	return false
}

package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"scaldift/internal/ddg"
)

// ReaderOptions tunes a Reader.
type ReaderOptions struct {
	// CacheChunks bounds the decoded-chunk cache per thread (default
	// 8 chunks, matching Compact's in-memory cache): slicing over a
	// store far larger than RAM keeps only this working set decoded.
	CacheChunks int
}

// Reader reopens a store directory as a ddg.Source. Opening reads
// the manifest and lists the directory (a crashed writer never got to
// write its final manifest, so segment files not yet listed are
// discovered by scan); each thread's chunk index loads lazily on
// first access (sealed segments via their footer, unsealed or
// damaged segments via a CRC-checked prefix scan), and chunk
// payloads load and decode on demand through a bounded per-thread
// cache. No file handles are held between calls, so a store of many
// thousands of segments never exhausts the fd limit.
//
// Reads are safe for concurrent use: threads are sharded into
// independently locked states, so slicing.ParallelBackward's workers
// proceed in parallel as long as they touch different threads.
type Reader struct {
	dir  string
	opts ReaderOptions

	threads map[int]*threadState
	tids    []int

	mu        sync.Mutex
	recovered bool
	err       error // first unexpected I/O error (not crash damage)
}

// threadState is one thread's lazily loaded index and cache.
type threadState struct {
	tid    int
	mu     sync.Mutex
	segs   []readerSeg
	loaded bool
	chunks []tChunk // across segments, ascending baseN
	cache  map[int]map[uint64][]ddg.Dep
	fifo   []int
}

// readerSeg is one segment file of a thread.
type readerSeg struct {
	path   string
	seq    int  // per-thread creation index from the filename
	sealed bool // manifest says sealed (footer expected)
}

// tChunk locates one chunk for a thread.
type tChunk struct {
	seg int // index into threadState.segs
	chunkMeta
}

// errDamage marks on-disk corruption (vs an environmental I/O
// error): callers degrade to recovery instead of surfacing it.
var errDamage = errors.New("store: damaged chunk")

// Open opens the store at dir for reading. The writer must have been
// closed (or have crashed): segment files the manifest never listed
// and unsealed tails are recovered up to their last intact chunk.
func Open(dir string, opts ReaderOptions) (*Reader, error) {
	if opts.CacheChunks <= 0 {
		opts.CacheChunks = 8
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{dir: dir, opts: opts, threads: make(map[int]*threadState)}
	listed := make(map[string]bool, len(man.Segments))
	addSeg := func(tid, seq int, file string, sealed bool) {
		ts, ok := r.threads[tid]
		if !ok {
			ts = &threadState{tid: tid}
			r.threads[tid] = ts
			r.tids = append(r.tids, tid)
		}
		ts.segs = append(ts.segs, readerSeg{
			path:   filepath.Join(dir, file),
			seq:    seq,
			sealed: sealed,
		})
	}
	for _, ms := range man.Segments {
		tid, seq, ok := parseSegName(ms.File)
		if !ok || tid != ms.TID {
			tid, seq = ms.TID, len(listed)
		}
		listed[ms.File] = true
		addSeg(tid, seq, ms.File, ms.Sealed)
	}
	// Directory scan: a crashed run's segments are on disk but not in
	// the manifest (which is only written at Create and Close).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	strays := false
	for _, e := range entries {
		name := e.Name()
		if listed[name] {
			continue
		}
		if tid, seq, ok := parseSegName(name); ok {
			addSeg(tid, seq, name, false)
			strays = true
		}
	}
	if strays && !man.Closed {
		r.recovered = true
	}
	for _, ts := range r.threads {
		sort.Slice(ts.segs, func(i, j int) bool { return ts.segs[i].seq < ts.segs[j].seq })
	}
	sort.Ints(r.tids)
	return r, nil
}

// parseSegName decodes a t<tid>-<seq>.seg segment filename.
func parseSegName(name string) (tid, seq int, ok bool) {
	var tail string
	if n, err := fmt.Sscanf(name, "t%d-%d.seg%s", &tid, &seq, &tail); err == nil && n == 3 {
		return 0, 0, false // trailing garbage
	} else if n, err := fmt.Sscanf(name, "t%d-%d.seg", &tid, &seq); err != nil || n != 2 {
		return 0, 0, false
	}
	return tid, seq, tid >= 0 && seq >= 0
}

// Close is a no-op today (the reader holds no file handles between
// calls); it exists so callers can treat Reader as a resource.
func (r *Reader) Close() error { return nil }

// Recovered reports whether any segment accessed so far was truncated
// or corrupt and served a recovered prefix instead of its full index.
func (r *Reader) Recovered() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recovered
}

// Err returns the first unexpected I/O error (permissions, fd
// limits, read failures on intact files). Crash damage — missing,
// truncated, or corrupt segments — is NOT an error: it is reported
// through Recovered.
func (r *Reader) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *Reader) markRecovered() {
	r.mu.Lock()
	r.recovered = true
	r.mu.Unlock()
}

func (r *Reader) markErr(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.recovered = true
	r.mu.Unlock()
}

// ensureLoaded builds the thread's chunk index on first access
// (ts.mu held). Each segment file is opened, indexed, and closed.
func (r *Reader) ensureLoaded(ts *threadState) {
	if ts.loaded {
		return
	}
	ts.loaded = true
	for i := range ts.segs {
		f, err := os.Open(ts.segs[i].path)
		if err != nil {
			// A missing segment is crash loss (only its own chunks are
			// gone); anything else is a real I/O problem worth
			// surfacing, not silently serving a partial graph.
			if os.IsNotExist(err) {
				r.markRecovered()
			} else {
				r.markErr(err)
			}
			continue
		}
		// Footer first (sealed segments, and strays that were sealed
		// before the crash); fall back to the CRC-checked prefix scan.
		metas, ok := readFooterIndex(f)
		if !ok {
			if ts.segs[i].sealed {
				r.markRecovered() // promised footer is gone/corrupt
			}
			var truncated bool
			metas, truncated = scanSegment(f)
			if truncated {
				r.markRecovered()
			}
		}
		f.Close()
		for _, cm := range metas {
			ts.chunks = append(ts.chunks, tChunk{seg: i, chunkMeta: cm})
		}
	}
	ts.cache = make(map[int]map[uint64][]ddg.Dep, r.opts.CacheChunks)
}

// readFooterIndex parses a sealed segment's trailing footer block.
func readFooterIndex(f *os.File) ([]chunkMeta, bool) {
	st, err := f.Stat()
	if err != nil || st.Size() < int64(8+len(ftrMagic)) {
		return nil, false
	}
	var tail [12]byte // uint32 total length + 8-byte magic
	if _, err := f.ReadAt(tail[:], st.Size()-12); err != nil {
		return nil, false
	}
	if string(tail[4:]) != ftrMagic {
		return nil, false
	}
	total := int64(binary.LittleEndian.Uint32(tail[:4]))
	if total <= 12 || total > st.Size() {
		return nil, false
	}
	block := make([]byte, total)
	if _, err := f.ReadAt(block, st.Size()-total); err != nil {
		return nil, false
	}
	// block = 0x00 | flen | ftr | crc | len | magic
	if block[0] != 0 {
		return nil, false
	}
	flen, k := binary.Uvarint(block[1:])
	// Bounds-check before int conversion: a corrupt varint near 2^64
	// would overflow the arithmetic below into a passing guard and a
	// panicking slice expression.
	if k <= 0 || flen > uint64(len(block)) {
		return nil, false
	}
	ftrStart := 1 + k
	if ftrStart+int(flen)+4 > len(block) {
		return nil, false
	}
	ftr := block[ftrStart : ftrStart+int(flen)]
	crc := binary.LittleEndian.Uint32(block[ftrStart+int(flen):])
	if crc32.ChecksumIEEE(ftr) != crc {
		return nil, false
	}
	metas, err := parseFooter(ftr)
	if err != nil {
		return nil, false
	}
	return metas, true
}

// scanSegment reads chunk records sequentially, stopping at the
// footer sentinel, EOF, or the first CRC/framing failure. truncated
// reports that the scan ended on damage rather than a clean end.
func scanSegment(f *os.File) (metas []chunkMeta, truncated bool) {
	data, err := readAll(f)
	if err != nil {
		return nil, true
	}
	_, pos, err := parseSegHeader(data)
	if err != nil {
		return nil, true
	}
	for int(pos) < len(data) {
		plen, k := binary.Uvarint(data[pos:])
		if k <= 0 || plen > uint64(len(data)) {
			// Unreadable or absurd length (a corrupt varint near 2^64
			// would overflow the end arithmetic below): damage.
			return metas, true
		}
		if plen == 0 {
			return metas, false // footer sentinel: clean end
		}
		start := pos + int64(k)
		end := start + int64(plen) + 4
		if end > int64(len(data)) {
			return metas, true // truncated mid-chunk
		}
		payload := data[start : start+int64(plen)]
		crc := binary.LittleEndian.Uint32(data[start+int64(plen) : end])
		if crc32.ChecksumIEEE(payload) != crc {
			return metas, true
		}
		gseq, baseN, lastN, count, _, err := parseChunkPayload(payload)
		if err != nil {
			return metas, true
		}
		metas = append(metas, chunkMeta{
			off: pos, plen: int(plen),
			gseq: gseq, baseN: baseN, lastN: lastN, count: count,
		})
		pos = end
	}
	return metas, false
}

func readAll(f *os.File) ([]byte, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}

// readChunk opens, reads, verifies, and decodes one chunk. It takes
// everything it needs by value so callers can run it WITHOUT ts.mu:
// chunk loads are the expensive read-side unit (file I/O + CRC +
// decode), and holding the thread lock across them would serialize
// every concurrent query touching the thread behind the disk. The
// segment file is opened and closed per load: the cache makes reloads
// rare, and the reader stays fd-free between calls.
func readChunk(path string, tid int, tc tChunk) (map[uint64][]ddg.Dep, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Skip the leading plen varint: the index records the payload
	// offset indirectly via off (start of the record) and plen.
	head := uvarintLen(uint64(tc.plen))
	payload := make([]byte, tc.plen+4)
	if _, err := f.ReadAt(payload, tc.off+int64(head)); err != nil {
		return nil, fmt.Errorf("store: chunk read: %w", err)
	}
	crc := binary.LittleEndian.Uint32(payload[tc.plen:])
	payload = payload[:tc.plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("%w: CRC mismatch at %s+%d", errDamage, path, tc.off)
	}
	_, baseN, lastN, count, buf, err := parseChunkPayload(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errDamage, err)
	}
	if baseN != tc.baseN || lastN != tc.lastN {
		return nil, fmt.Errorf("%w: chunk header disagrees with index at %s+%d", errDamage, path, tc.off)
	}
	return ddg.RawChunk{TID: tid, BaseN: baseN, Count: count, Buf: buf}.Decode(), nil
}

// cachePut inserts a decoded chunk (ts.mu held), evicting FIFO past
// the bound.
func (ts *threadState) cachePut(idx int, m map[uint64][]ddg.Dep, bound int) {
	if len(ts.fifo) >= bound {
		old := ts.fifo[0]
		ts.fifo = ts.fifo[1:]
		delete(ts.cache, old)
	}
	ts.cache[idx] = m
	ts.fifo = append(ts.fifo, idx)
}

// findChunk locates the chunk holding instance n (ts.mu held, index
// loaded).
func (ts *threadState) findChunk(n uint64) int {
	i := sort.Search(len(ts.chunks), func(i int) bool { return ts.chunks[i].lastN >= n })
	if i < len(ts.chunks) && ts.chunks[i].baseN <= n && n <= ts.chunks[i].lastN && ts.chunks[i].count > 0 {
		return i
	}
	return -1
}

// Threads implements ddg.Source.
func (r *Reader) Threads() []int {
	out := make([]int, 0, len(r.tids))
	for _, tid := range r.tids {
		ts := r.threads[tid]
		ts.mu.Lock()
		r.ensureLoaded(ts)
		n := len(ts.chunks)
		ts.mu.Unlock()
		if n > 0 {
			out = append(out, tid)
		}
	}
	return out
}

// Window implements ddg.Source: the whole recovered on-disk range.
func (r *Reader) Window(tid int) (uint64, uint64) {
	ts, ok := r.threads[tid]
	if !ok {
		return 0, 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	r.ensureLoaded(ts)
	if len(ts.chunks) == 0 {
		return 0, 0
	}
	return ts.chunks[0].baseN, ts.chunks[len(ts.chunks)-1].lastN
}

// DepsOf implements ddg.Source.
func (r *Reader) DepsOf(id ddg.ID, yield func(ddg.Dep)) {
	deps := r.depsAt(id, nil)
	for _, d := range deps {
		yield(d)
	}
}

// depsAt returns the stored deps of id (possibly nil). Chunk loads
// are charged to budget (nil: unlimited) and run with ts.mu RELEASED:
// the lock covers only index/cache state, so concurrent traversals of
// one thread overlap their I/O instead of convoying behind it. Two
// goroutines missing on the same chunk may both decode it; the second
// result is dropped in favor of the cached first — duplicate work,
// never inconsistent state.
func (r *Reader) depsAt(id ddg.ID, budget *Budget) []ddg.Dep {
	ts, ok := r.threads[id.TID()]
	if !ok {
		return nil
	}
	ts.mu.Lock()
	r.ensureLoaded(ts)
	idx := ts.findChunk(id.N())
	if idx < 0 {
		ts.mu.Unlock()
		return nil
	}
	if m, ok := ts.cache[idx]; ok {
		ts.mu.Unlock()
		return m[id.N()]
	}
	// Cache miss: snapshot what the load needs (segs and chunks are
	// immutable once loaded) and decode outside the lock.
	tc := ts.chunks[idx]
	path := ts.segs[tc.seg].path
	ts.mu.Unlock()

	if !budget.charge() {
		// Out of budget: behave like a dead end. The shared cache is
		// left alone so other queries are unaffected.
		return nil
	}
	m, err := readChunk(path, ts.tid, tc)
	if err != nil {
		// A chunk that indexed cleanly but fails its payload CRC (or
		// vanished) is damage past the index's guarantees: serve what
		// remains. Other I/O failures additionally surface via Err.
		if os.IsNotExist(err) || errors.Is(err, errDamage) ||
			errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			r.markRecovered()
		} else {
			r.markErr(err)
		}
		// Negative-cache the chunk: without this, a slice walking the
		// hundreds of instances a damaged chunk covers would re-open,
		// re-read, and re-CRC it once per query.
		m = nil
	}
	ts.mu.Lock()
	if prev, ok := ts.cache[idx]; ok {
		m = prev // another loader won the race: serve its copy
	} else {
		ts.cachePut(idx, m, r.opts.CacheChunks)
	}
	ts.mu.Unlock()
	return m[id.N()]
}

// NodePC implements ddg.Source (recorded nodes only).
func (r *Reader) NodePC(id ddg.ID) (int32, bool) {
	deps := r.depsAt(id, nil)
	if len(deps) == 0 {
		return 0, false
	}
	return deps[0].UsePC, true
}

// Chunks returns the total indexed chunk count (loading every
// thread's index).
func (r *Reader) Chunks() int {
	n := 0
	for _, tid := range r.tids {
		ts := r.threads[tid]
		ts.mu.Lock()
		r.ensureLoaded(ts)
		n += len(ts.chunks)
		ts.mu.Unlock()
	}
	return n
}

var _ ddg.Source = (*Reader)(nil)

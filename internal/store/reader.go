package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"scaldift/internal/ddg"
)

// ReaderOptions tunes a Reader.
type ReaderOptions struct {
	// CacheChunks bounds the decoded-chunk cache per thread (default
	// 8 chunks, matching Compact's in-memory cache): slicing over a
	// store far larger than RAM keeps only this working set decoded.
	CacheChunks int
	// Follow attaches to a store whose writer may still be running:
	// an unclosed manifest means "live", not crash damage, and Poll
	// picks up newly landed chunks, new segments, and the final
	// close. The reader's windows are then a monotone frontier — the
	// prefix of each thread's stream that has durably landed — rather
	// than the whole recorded range.
	Follow bool
	// Pins, when shared with the writer's Retention, advertises which
	// segment file this follower currently holds an open tail fd for,
	// so retention never unlinks it out from under the scan. Only
	// meaningful in follow mode; nil is fine for stores without
	// retention.
	Pins *PinSet
}

// Reader reopens a store directory as a ddg.Source. Opening reads
// the manifest and lists the directory (segments created since the
// last manifest write are discovered by scan); each thread's chunk
// index loads lazily on first access (sealed segments via their
// footer, unsealed or damaged segments via a CRC-checked prefix
// scan), and chunk payloads load and decode on demand through a
// bounded per-thread cache. No file handles are held between calls,
// so a store of many thousands of segments never exhausts the fd
// limit.
//
// With ReaderOptions.Follow, the reader attaches to a store that is
// still recording: Window reports the frontier of CRC-valid chunks
// on disk, and Poll advances it incrementally — only bytes past the
// last known-good offset of each tail segment are re-read.
//
// Reads are safe for concurrent use: threads are sharded into
// independently locked states, so slicing.ParallelBackward's workers
// proceed in parallel as long as they touch different threads. Poll
// may run concurrently with queries (it is serialized against
// itself).
type Reader struct {
	dir  string
	opts ReaderOptions

	pollMu sync.Mutex // serializes Poll

	mu         sync.Mutex
	threads    map[int]*threadState
	tids       []int
	known      map[string]bool // segment basenames already adopted
	live       bool
	generation uint64
	recovered  bool
	trimLo     map[int]uint64 // per-tid retention floor from the manifest
	err        error          // first unexpected I/O error (not crash damage)

	tailScanned atomic.Int64 // bytes read by incremental tail scans
}

// threadState is one thread's lazily loaded index and cache.
type threadState struct {
	tid       int
	mu        sync.Mutex
	segs      []readerSeg
	loaded    bool
	nextSeg   int      // first segment not yet fully indexed
	segOff    int64    // scan resume offset in segs[nextSeg] (0 = header unread)
	segChunks int      // chunks already indexed from segs[nextSeg]
	chunks    []tChunk // across segments, ascending baseN
	cache     map[int]map[uint64][]ddg.Dep
	fifo      []int
	// Negative entries (structurally damaged chunks) live in their own
	// bounded set so a burst of damage can never FIFO-evict healthy
	// decoded chunks out of cache.
	neg     map[int]bool
	negFifo []int
	// epoch fences in-flight chunk loads across index rewrites: a
	// retention prune rewrites ts.chunks, so a loader that released
	// ts.mu before the prune must not cache its result under a stale
	// index.
	epoch int
	// Follow mode caches the open tail segment's fd across polls (and
	// pins its file against retention) instead of reopening it once per
	// poll; closed again the moment the segment completes or the store
	// flips live→closed, so a non-live reader is always fd-free
	// between calls.
	tailF    *os.File
	tailFile string // basename pinned in ReaderOptions.Pins
}

// closeTail drops the cached tail fd and its retention pin, if any
// (ts.mu held).
func (ts *threadState) closeTail(pins *PinSet) {
	if ts.tailF == nil {
		return
	}
	ts.tailF.Close()
	ts.tailF = nil
	pins.Unpin(ts.tailFile)
	ts.tailFile = ""
}

// readerSeg is one segment file of a thread.
type readerSeg struct {
	path    string
	file    string // basename
	seq     int    // per-thread creation index from the filename
	sealed  bool   // manifest says sealed (footer expected)
	trimmed bool   // retention deleted it; skip, don't treat as crash loss
}

// tChunk locates one chunk for a thread.
type tChunk struct {
	seg int // index into threadState.segs
	chunkMeta
}

// errDamage marks on-disk corruption (vs an environmental I/O
// error): callers degrade to recovery instead of surfacing it.
var errDamage = errors.New("store: damaged chunk")

// Open opens the store at dir for reading. Without Follow the writer
// must have been closed (or have crashed): segment files the
// manifest never listed and unsealed tails are recovered up to their
// last intact chunk. With Follow, an unclosed store is live and the
// same prefix is the current frontier, advanced by Poll.
func Open(dir string, opts ReaderOptions) (*Reader, error) {
	if opts.CacheChunks <= 0 {
		opts.CacheChunks = 8
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{
		dir:        dir,
		opts:       opts,
		threads:    make(map[int]*threadState),
		known:      make(map[string]bool),
		live:       opts.Follow && !man.Closed,
		generation: man.Generation,
		trimLo:     make(map[int]uint64),
	}
	minSeq := make(map[int]int)
	for _, tr := range man.Trimmed {
		minSeq[tr.TID] = tr.MinSeq
		r.trimLo[tr.TID] = tr.Lo
	}
	addSeg := func(tid, seq int, file string, sealed bool) {
		ts, ok := r.threads[tid]
		if !ok {
			ts = &threadState{tid: tid}
			r.threads[tid] = ts
			r.tids = append(r.tids, tid)
		}
		ts.segs = append(ts.segs, readerSeg{
			path:   filepath.Join(dir, file),
			file:   file,
			seq:    seq,
			sealed: sealed,
		})
	}
	for _, ms := range man.Segments {
		tid, seq, ok := parseSegName(ms.File)
		if !ok || tid != ms.TID {
			tid, seq = ms.TID, len(r.known)
		}
		r.known[ms.File] = true
		addSeg(tid, seq, ms.File, ms.Sealed)
	}
	// Directory scan: segments created since the last manifest write
	// are on disk but not yet listed (and a crashed run never gets to
	// list its tail at all).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if r.known[name] {
			continue
		}
		if tid, seq, ok := parseSegName(name); ok {
			r.known[name] = true
			if seq < minSeq[tid] {
				// A stray below the thread's trim floor is a crash
				// orphan: retention journaled its deletion in the
				// manifest but died before the unlink. Its chunks are
				// officially trimmed — adopting it would resurrect them.
				continue
			}
			addSeg(tid, seq, name, false)
		}
	}
	if !man.Closed && !opts.Follow {
		// Cold-opening an unclosed store is crash recovery: the
		// reader serves the longest valid prefix of whatever landed.
		r.recovered = true
	}
	for _, ts := range r.threads {
		sort.Slice(ts.segs, func(i, j int) bool { return ts.segs[i].seq < ts.segs[j].seq })
	}
	sort.Ints(r.tids)
	return r, nil
}

// parseSegName decodes a t<tid>-<seq>.seg segment filename.
func parseSegName(name string) (tid, seq int, ok bool) {
	var tail string
	if n, err := fmt.Sscanf(name, "t%d-%d.seg%s", &tid, &seq, &tail); err == nil && n == 3 {
		return 0, 0, false // trailing garbage
	} else if n, err := fmt.Sscanf(name, "t%d-%d.seg", &tid, &seq); err != nil || n != 2 {
		return 0, 0, false
	}
	return tid, seq, tid >= 0 && seq >= 0
}

// Close releases any cached tail fds (follow mode holds one per
// thread while the store is live) and their retention pins. A
// non-follow reader holds no handles between calls, so Close is then
// a no-op; either way the reader stays usable for queries afterwards
// (the next access reopens what it needs).
func (r *Reader) Close() error {
	for _, ts := range r.allThreads() {
		ts.mu.Lock()
		ts.closeTail(r.opts.Pins)
		ts.mu.Unlock()
	}
	return nil
}

// TrimmedLo returns tid's retention floor: every instance below it
// may have been deleted by retention, so a slice that walks past the
// floor reports truncation exactly like the old in-memory ring did at
// its window edge. ok is false when the thread has never been
// trimmed.
func (r *Reader) TrimmedLo(tid int) (lo uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lo, ok = r.trimLo[tid]
	return lo, ok
}

// Trimmed returns a copy of every thread's retention floor (empty
// when the store has never been trimmed).
func (r *Reader) Trimmed() map[int]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.trimLo) == 0 {
		return nil
	}
	out := make(map[int]uint64, len(r.trimLo))
	for tid, lo := range r.trimLo {
		out[tid] = lo
	}
	return out
}

// Recovered reports whether any segment accessed so far was truncated
// or corrupt and served a recovered prefix instead of its full index.
// A live follower does not count the in-flight tail as recovery.
func (r *Reader) Recovered() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recovered
}

// Live reports whether the reader is following a writer that has not
// closed yet. It transitions to false on the Poll that observes the
// final manifest.
func (r *Reader) Live() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live
}

// Generation returns the last manifest generation the reader
// observed. The writer bumps it on every seal and at close, so an
// unchanged generation means the segment roster is unchanged (tail
// chunks may still have landed — only Poll detects those).
func (r *Reader) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.generation
}

// Err returns the first unexpected I/O error (permissions, fd
// limits, read failures on intact files). Crash damage — missing,
// truncated, or corrupt segments — is NOT an error: it is reported
// through Recovered.
func (r *Reader) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *Reader) markRecovered() {
	r.mu.Lock()
	r.recovered = true
	r.mu.Unlock()
}

func (r *Reader) markErr(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.recovered = true
	r.mu.Unlock()
}

func (r *Reader) isLive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live
}

// thread returns tid's state under r.mu (Poll may grow the map
// concurrently with queries).
func (r *Reader) thread(tid int) *threadState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.threads[tid]
}

// allThreads snapshots every thread state in tid order.
func (r *Reader) allThreads() []*threadState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*threadState, 0, len(r.tids))
	for _, tid := range r.tids {
		out = append(out, r.threads[tid])
	}
	return out
}

// Poll re-examines a live store: it re-reads the manifest (a bumped
// generation means segments sealed or the writer closed), discovers
// newly created segment files, and extends each thread's index by
// scanning only bytes past the previous frontier. It reports whether
// anything advanced — new chunks landed, or the store transitioned
// to closed. On a reader that is not live, Poll is a no-op.
func (r *Reader) Poll() (advanced bool, err error) {
	r.pollMu.Lock()
	defer r.pollMu.Unlock()

	r.mu.Lock()
	wasLive := r.live
	r.mu.Unlock()
	if !wasLive {
		return false, nil
	}

	man, err := readManifest(r.dir)
	if err != nil {
		return false, err
	}
	//scaldift:ignore lockio pollMu only single-flights Poll itself; the read path locks ts.mu, never this
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return false, err
	}
	sealedNow := make(map[string]bool)
	for _, ms := range man.Segments {
		if ms.Sealed {
			sealedNow[ms.File] = true
		}
	}
	minSeq := make(map[int]int)
	for _, tr := range man.Trimmed {
		minSeq[tr.TID] = tr.MinSeq
	}

	// Adopt newly appeared segments (manifest-listed and strays).
	// The writer names segments with monotonically increasing
	// per-thread seqs, so sorting the batch keeps each thread's segs
	// slice ordered without disturbing existing entries (indexed
	// chunks hold positions into it).
	type newSeg struct {
		tid, seq int
		file     string
		sealed   bool
	}
	var fresh []newSeg
	r.mu.Lock()
	for _, ms := range man.Segments {
		if r.known[ms.File] {
			continue
		}
		tid, seq, ok := parseSegName(ms.File)
		if !ok || tid != ms.TID {
			tid, seq = ms.TID, len(r.known)
		}
		r.known[ms.File] = true
		fresh = append(fresh, newSeg{tid, seq, ms.File, ms.Sealed})
	}
	for _, e := range entries {
		name := e.Name()
		if r.known[name] {
			continue
		}
		if tid, seq, ok := parseSegName(name); ok {
			r.known[name] = true
			if seq < minSeq[tid] {
				continue // trim orphan awaiting unlink, not new data
			}
			fresh = append(fresh, newSeg{tid, seq, name, false})
		}
	}
	sort.Slice(fresh, func(i, j int) bool {
		if fresh[i].tid != fresh[j].tid {
			return fresh[i].tid < fresh[j].tid
		}
		return fresh[i].seq < fresh[j].seq
	})
	perTid := make(map[int][]newSeg)
	for _, ns := range fresh {
		if _, ok := r.threads[ns.tid]; !ok {
			r.threads[ns.tid] = &threadState{tid: ns.tid}
			r.tids = append(r.tids, ns.tid)
		}
		perTid[ns.tid] = append(perTid[ns.tid], ns)
	}
	sort.Ints(r.tids)
	nowLive := !man.Closed
	r.live = nowLive
	r.generation = man.Generation
	for _, tr := range man.Trimmed {
		if tr.Lo > r.trimLo[tr.TID] {
			r.trimLo[tr.TID] = tr.Lo
		}
	}
	states := make([]*threadState, 0, len(r.tids))
	for _, tid := range r.tids {
		states = append(states, r.threads[tid])
	}
	r.mu.Unlock()

	for _, ts := range states {
		ts.mu.Lock()
		for _, ns := range perTid[ts.tid] {
			ts.segs = append(ts.segs, readerSeg{
				path:   filepath.Join(r.dir, ns.file),
				file:   ns.file,
				seq:    ns.seq,
				sealed: ns.sealed,
			})
		}
		for i := ts.nextSeg; i < len(ts.segs); i++ {
			if sealedNow[ts.segs[i].file] {
				ts.segs[i].sealed = true
			}
		}
		if ts.pruneTrimmed(minSeq[ts.tid]) {
			advanced = true // the window's lo edge moved up
		}
		before := len(ts.chunks)
		if !ts.loaded {
			r.ensureLoaded(ts)
		} else {
			r.advanceThread(ts, nowLive)
		}
		if len(ts.chunks) > before {
			advanced = true
		}
		ts.mu.Unlock()
	}
	if !nowLive {
		advanced = true // live → closed is itself an advance
	}
	return advanced, nil
}

// pruneTrimmed drops segments below the thread's trim floor (ts.mu
// held): retention deleted their files, so their indexed chunks must
// leave the window rather than resurface as crash loss on the next
// read. Rewriting ts.chunks shifts every cache index, so both caches
// are dropped wholesale and the epoch fences out in-flight loaders.
func (ts *threadState) pruneTrimmed(minSeq int) (pruned bool) {
	if minSeq <= 0 {
		return false
	}
	for i := range ts.segs {
		if ts.segs[i].seq < minSeq && !ts.segs[i].trimmed {
			ts.segs[i].trimmed = true
			pruned = true
		}
	}
	if !pruned || !ts.loaded {
		return pruned
	}
	kept := ts.chunks[:0]
	for _, tc := range ts.chunks {
		if !ts.segs[tc.seg].trimmed {
			kept = append(kept, tc)
		}
	}
	if len(kept) != len(ts.chunks) {
		ts.chunks = kept
		ts.cache = make(map[int]map[uint64][]ddg.Dep)
		ts.fifo = nil
		ts.neg = make(map[int]bool)
		ts.negFifo = nil
		ts.epoch++
	}
	return pruned
}

// ensureLoaded builds the thread's chunk index on first access
// (ts.mu held).
func (r *Reader) ensureLoaded(ts *threadState) {
	if ts.loaded {
		return
	}
	ts.loaded = true
	ts.cache = make(map[int]map[uint64][]ddg.Dep, r.opts.CacheChunks)
	ts.neg = make(map[int]bool)
	r.advanceThread(ts, r.isLive())
}

// advanceThread indexes newly available chunks for one thread (ts.mu
// held). Sealed segments go through their footer; the unsealed tail
// is scanned incrementally from the last known-good offset, so each
// poll pays only for bytes appended since the previous one. With
// live, an incomplete tail record means "still being written" and
// the scan simply stops at the frontier; without it, the same bytes
// are crash damage and the thread recovers its valid prefix.
//
// In follow mode the open tail's fd is kept (and its file pinned
// against retention) between polls instead of reopened every time;
// the moment the segment completes — it seals, its scan finishes, or
// the store flips live→closed — the fd is closed, so only a live
// frontier ever holds descriptors.
func (r *Reader) advanceThread(ts *threadState, live bool) {
	for ts.nextSeg < len(ts.segs) {
		seg := &ts.segs[ts.nextSeg]
		if seg.trimmed {
			// Retention deleted this segment (or is about to; the
			// manifest already journaled it). Not crash loss: its
			// chunks are officially below the trim floor.
			ts.closeTail(r.opts.Pins)
			ts.finishSeg()
			continue
		}
		var f *os.File
		if ts.tailF != nil && ts.tailFile == seg.file {
			f = ts.tailF // resume the cached tail fd
		} else {
			ts.closeTail(r.opts.Pins)
			var err error
			f, err = os.Open(seg.path)
			if err != nil {
				// A missing segment is crash loss (only its own chunks
				// are gone); anything else is a real I/O problem worth
				// surfacing, not silently serving a partial graph.
				if os.IsNotExist(err) {
					r.markRecovered()
				} else {
					r.markErr(err)
				}
				ts.finishSeg()
				continue
			}
		}
		closeF := func() {
			if f == ts.tailF {
				ts.closeTail(r.opts.Pins)
			} else {
				f.Close()
			}
		}
		if seg.sealed {
			// Footer fast path. A partially scanned tail that sealed
			// between polls lands here too: the footer lists every
			// chunk, so only the suffix past segChunks is new.
			if metas, ok := readFooterIndex(f); ok {
				closeF()
				if ts.segChunks < len(metas) {
					ts.appendChunks(metas[ts.segChunks:])
				}
				ts.finishSeg()
				continue
			}
			r.markRecovered() // promised footer is gone/corrupt
		}
		metas, newOff, scanned, status := scanSegmentFrom(f, ts.segOff)
		r.tailScanned.Add(scanned)
		ts.appendChunks(metas)
		ts.segOff = newOff
		switch status {
		case scanDone:
			closeF()
			ts.finishSeg()
		case scanBoundary, scanPartial:
			if live && !seg.sealed {
				// The frontier: everything up to segOff is served; the
				// rest is still in flight. Later segments of this
				// thread cannot hold earlier instances, so stop here —
				// and keep the fd for the next poll's incremental scan.
				if ts.tailF == nil {
					ts.tailF = f
					ts.tailFile = seg.file
					r.opts.Pins.Pin(seg.file)
				}
				return
			}
			closeF()
			if status == scanPartial {
				r.markRecovered() // torn record: crash prefix
			}
			ts.finishSeg()
		case scanDamage:
			closeF()
			r.markRecovered()
			ts.finishSeg()
		}
	}
	// Every segment is fully indexed (the usual way here is the poll
	// that observed the writer's close): nothing is in flight, so the
	// thread must be fd-free again.
	ts.closeTail(r.opts.Pins)
}

// appendChunks adopts freshly indexed chunks of segs[nextSeg]
// (ts.mu held).
func (ts *threadState) appendChunks(metas []chunkMeta) {
	for _, cm := range metas {
		ts.chunks = append(ts.chunks, tChunk{seg: ts.nextSeg, chunkMeta: cm})
	}
	ts.segChunks += len(metas)
}

// finishSeg advances past the current segment (ts.mu held).
func (ts *threadState) finishSeg() {
	ts.nextSeg++
	ts.segOff = 0
	ts.segChunks = 0
}

// readFooterIndex parses a sealed segment's trailing footer block.
func readFooterIndex(f *os.File) ([]chunkMeta, bool) {
	st, err := f.Stat()
	if err != nil || st.Size() < int64(8+len(ftrMagic)) {
		return nil, false
	}
	var tail [12]byte // uint32 total length + 8-byte magic
	if _, err := f.ReadAt(tail[:], st.Size()-12); err != nil {
		return nil, false
	}
	if string(tail[4:]) != ftrMagic {
		return nil, false
	}
	total := int64(binary.LittleEndian.Uint32(tail[:4]))
	if total <= 12 || total > st.Size() {
		return nil, false
	}
	block := make([]byte, total)
	if _, err := f.ReadAt(block, st.Size()-total); err != nil {
		return nil, false
	}
	// block = 0x00 | flen | ftr | crc | len | magic
	if block[0] != 0 {
		return nil, false
	}
	flen, k := binary.Uvarint(block[1:])
	// Bounds-check before int conversion: a corrupt varint near 2^64
	// would overflow the arithmetic below into a passing guard and a
	// panicking slice expression.
	if k <= 0 || flen > uint64(len(block)) {
		return nil, false
	}
	ftrStart := 1 + k
	if ftrStart+int(flen)+4 > len(block) {
		return nil, false
	}
	ftr := block[ftrStart : ftrStart+int(flen)]
	crc := binary.LittleEndian.Uint32(block[ftrStart+int(flen):])
	if crc32.ChecksumIEEE(ftr) != crc {
		return nil, false
	}
	metas, err := parseFooter(ftr)
	if err != nil {
		return nil, false
	}
	return metas, true
}

// scanStatus reports how a segment scan ended.
type scanStatus int

const (
	scanDone     scanStatus = iota // footer sentinel: segment complete
	scanBoundary                   // clean EOF exactly at a record boundary
	scanPartial                    // EOF mid-record: in-flight write or torn tail
	scanDamage                     // definite corruption (bad magic, CRC fail, absurd framing)
)

// scanSegmentFrom parses chunk records from off (0 = start of file,
// header unread), returning their metas, the offset of the first
// unconsumed byte (always a record boundary), the number of bytes
// read, and how the scan ended. It is the incremental half of live
// tail-following: a poll resumes at the previous newOff and pays
// only for bytes appended since. scanPartial vs scanDamage is the
// load-bearing distinction — a record cut off by EOF may simply not
// have finished landing (the writer appends each record with one
// write, so a concurrent reader sees a clean prefix), while a CRC
// mismatch on a fully present record can only be corruption.
func scanSegmentFrom(f *os.File, off int64) (metas []chunkMeta, newOff int64, scanned int64, status scanStatus) {
	data, err := readAllFrom(f, off)
	scanned = int64(len(data))
	if err != nil {
		return nil, off, scanned, scanDamage
	}
	pos := int64(0)
	if off == 0 {
		n := len(data)
		if n > len(segMagic) {
			n = len(segMagic)
		}
		if string(data[:n]) != segMagic[:n] {
			return nil, 0, scanned, scanDamage
		}
		if len(data) <= len(segMagic) {
			return nil, 0, scanned, scanPartial // header not fully landed
		}
		_, k := binary.Uvarint(data[len(segMagic):])
		if k == 0 {
			return nil, 0, scanned, scanPartial
		}
		if k < 0 {
			return nil, 0, scanned, scanDamage
		}
		pos = int64(len(segMagic) + k)
	}
	for pos < int64(len(data)) {
		plen, k := binary.Uvarint(data[pos:])
		if k == 0 {
			return metas, off + pos, scanned, scanPartial // varint cut off
		}
		if k < 0 || plen >= 1<<31 {
			// Unreadable or absurd length (a corrupt varint near 2^64
			// would overflow the end arithmetic below): damage, not a
			// chunk still in flight.
			return metas, off + pos, scanned, scanDamage
		}
		if plen == 0 {
			return metas, off + pos, scanned, scanDone // footer sentinel
		}
		start := pos + int64(k)
		end := start + int64(plen) + 4
		if end > int64(len(data)) {
			return metas, off + pos, scanned, scanPartial // record cut off
		}
		payload := data[start : start+int64(plen)]
		crc := binary.LittleEndian.Uint32(data[start+int64(plen) : end])
		if crc32.ChecksumIEEE(payload) != crc {
			return metas, off + pos, scanned, scanDamage
		}
		gseq, baseN, lastN, count, _, err := parseChunkPayload(payload)
		if err != nil {
			return metas, off + pos, scanned, scanDamage
		}
		metas = append(metas, chunkMeta{
			off: off + pos, plen: int(plen),
			gseq: gseq, baseN: baseN, lastN: lastN, count: count,
		})
		pos = end
	}
	return metas, off + pos, scanned, scanBoundary
}

func readAllFrom(f *os.File, off int64) ([]byte, error) {
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}

// readChunk opens, reads, verifies, and decodes one chunk. It takes
// everything it needs by value so callers can run it WITHOUT ts.mu:
// chunk loads are the expensive read-side unit (file I/O + CRC +
// decode), and holding the thread lock across them would serialize
// every concurrent query touching the thread behind the disk. The
// segment file is opened and closed per load: the cache makes reloads
// rare, and the reader stays fd-free between calls.
//
//scaldift:io
func readChunk(path string, tid int, tc tChunk) (map[uint64][]ddg.Dep, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Skip the leading plen varint: the index records the payload
	// offset indirectly via off (start of the record) and plen.
	head := uvarintLen(uint64(tc.plen))
	payload := make([]byte, tc.plen+4)
	if _, err := f.ReadAt(payload, tc.off+int64(head)); err != nil {
		return nil, fmt.Errorf("store: chunk read: %w", err)
	}
	crc := binary.LittleEndian.Uint32(payload[tc.plen:])
	payload = payload[:tc.plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("%w: CRC mismatch at %s+%d", errDamage, path, tc.off)
	}
	_, baseN, lastN, count, buf, err := parseChunkPayload(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errDamage, err)
	}
	if baseN != tc.baseN || lastN != tc.lastN {
		return nil, fmt.Errorf("%w: chunk header disagrees with index at %s+%d", errDamage, path, tc.off)
	}
	return ddg.RawChunk{TID: tid, BaseN: baseN, Count: count, Buf: buf}.Decode(), nil
}

// cachePut inserts a decoded chunk (ts.mu held), evicting FIFO past
// the bound. Only healthy decoded chunks go here — negative entries
// have their own bounded set (putNegative), so damage bursts cannot
// crowd hot data out of the decode cache.
func (ts *threadState) cachePut(idx int, m map[uint64][]ddg.Dep, bound int) {
	if len(ts.fifo) >= bound {
		old := ts.fifo[0]
		ts.fifo = ts.fifo[1:]
		delete(ts.cache, old)
	}
	ts.cache[idx] = m
	ts.fifo = append(ts.fifo, idx)
}

// putNegative records a negative entry for a chunk whose payload is
// structurally damaged (ts.mu held). Negatives are bounded separately
// from the decode cache: a negative costs a map slot, not a decoded
// chunk's worth of memory, and sharing the FIFO used to let a burst
// of damaged-chunk probes evict every healthy hot chunk. This is the
// ONLY sanctioned way to make a chunk invisible: callers must first
// classify the load error with errors.Is(err, errDamage) — the
// stickyerr analyzer enforces it — because negative-caching a
// transient failure (a short read racing an in-flight append, a
// momentary open error) would keep serving a hole for the chunk's
// whole instance range after the writer completes it.
func (ts *threadState) putNegative(idx int, bound int) {
	if ts.neg[idx] {
		return
	}
	if len(ts.negFifo) >= bound {
		old := ts.negFifo[0]
		ts.negFifo = ts.negFifo[1:]
		delete(ts.neg, old)
	}
	ts.neg[idx] = true
	ts.negFifo = append(ts.negFifo, idx)
}

// findChunk locates the chunk holding instance n (ts.mu held, index
// loaded).
func (ts *threadState) findChunk(n uint64) int {
	i := sort.Search(len(ts.chunks), func(i int) bool { return ts.chunks[i].lastN >= n })
	if i < len(ts.chunks) && ts.chunks[i].baseN <= n && n <= ts.chunks[i].lastN && ts.chunks[i].count > 0 {
		return i
	}
	return -1
}

// Threads implements ddg.Source.
func (r *Reader) Threads() []int {
	states := r.allThreads()
	out := make([]int, 0, len(states))
	for _, ts := range states {
		ts.mu.Lock()
		r.ensureLoaded(ts)
		n := len(ts.chunks)
		ts.mu.Unlock()
		if n > 0 {
			out = append(out, ts.tid)
		}
	}
	return out
}

// Window implements ddg.Source: the whole recovered on-disk range —
// or, on a live follower, the current frontier.
func (r *Reader) Window(tid int) (uint64, uint64) {
	ts := r.thread(tid)
	if ts == nil {
		return 0, 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	r.ensureLoaded(ts)
	if len(ts.chunks) == 0 {
		return 0, 0
	}
	return ts.chunks[0].baseN, ts.chunks[len(ts.chunks)-1].lastN
}

// DepsOf implements ddg.Source.
func (r *Reader) DepsOf(id ddg.ID, yield func(ddg.Dep)) {
	deps := r.depsAt(id, nil)
	for _, d := range deps {
		yield(d)
	}
}

// depsAt returns the stored deps of id (possibly nil). Chunk loads
// are charged to budget (nil: unlimited) and run with ts.mu RELEASED:
// the lock covers only index/cache state, so concurrent traversals of
// one thread overlap their I/O instead of convoying behind it. Two
// goroutines missing on the same chunk may both decode it; the second
// result is dropped in favor of the cached first — duplicate work,
// never inconsistent state.
func (r *Reader) depsAt(id ddg.ID, budget *Budget) []ddg.Dep {
	ts := r.thread(id.TID())
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	r.ensureLoaded(ts)
	idx := ts.findChunk(id.N())
	if idx < 0 {
		ts.mu.Unlock()
		return nil
	}
	if m, ok := ts.cache[idx]; ok {
		ts.mu.Unlock()
		return m[id.N()]
	}
	if ts.neg[idx] {
		ts.mu.Unlock()
		return nil // known-damaged chunk
	}
	// Cache miss: snapshot what the load needs and decode outside the
	// lock. Indexed segs and chunks only ever append — except when a
	// retention prune rewrites them, which bumps ts.epoch; the epoch
	// check on re-lock keeps this loader from caching under an index
	// that moved underneath it.
	epoch := ts.epoch
	tc := ts.chunks[idx]
	path := ts.segs[tc.seg].path
	ts.mu.Unlock()

	if !budget.charge() {
		// Out of budget: behave like a dead end. The shared cache is
		// left alone so other queries are unaffected.
		return nil
	}
	m, err := readChunk(path, ts.tid, tc)
	if err != nil {
		if !errors.Is(err, errDamage) {
			// Missing files and short reads can be transient — an fs
			// blip, or a racing writer the index got ahead of — so
			// record the condition but leave the cache alone: the next
			// access retries the load instead of serving a permanent
			// hole for the chunk's whole instance range.
			if os.IsNotExist(err) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				r.markRecovered()
			} else {
				r.markErr(err)
			}
			return nil
		}
		// A chunk that indexed cleanly but fails its payload CRC is
		// damage past the index's guarantees: serve what remains.
		// Negative-cache it — without that, a slice walking the
		// hundreds of instances a damaged chunk covers would re-open,
		// re-read, and re-CRC it once per query.
		r.markRecovered()
		ts.mu.Lock()
		if ts.epoch == epoch {
			if prev, ok := ts.cache[idx]; ok {
				// Another loader raced us in: serve its entry rather
				// than overwriting it.
				deps := prev[id.N()]
				ts.mu.Unlock()
				return deps
			}
			ts.putNegative(idx, r.opts.CacheChunks)
		}
		ts.mu.Unlock()
		return nil
	}
	ts.mu.Lock()
	if ts.epoch == epoch {
		if prev, ok := ts.cache[idx]; ok {
			m = prev // another loader won the race: serve its copy
		} else {
			ts.cachePut(idx, m, r.opts.CacheChunks)
		}
	}
	ts.mu.Unlock()
	return m[id.N()]
}

// NodePC implements ddg.Source (recorded nodes only).
func (r *Reader) NodePC(id ddg.ID) (int32, bool) {
	deps := r.depsAt(id, nil)
	if len(deps) == 0 {
		return 0, false
	}
	return deps[0].UsePC, true
}

// Chunks returns the total indexed chunk count (loading every
// thread's index).
func (r *Reader) Chunks() int {
	n := 0
	for _, ts := range r.allThreads() {
		ts.mu.Lock()
		r.ensureLoaded(ts)
		n += len(ts.chunks)
		ts.mu.Unlock()
	}
	return n
}

var _ ddg.Source = (*Reader)(nil)

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Retention bounds how much sealed history a store keeps on disk.
// Retention only ever deletes whole sealed segments, oldest first in
// global append order, and only a per-thread prefix of them — so a
// thread's retained range is always a contiguous suffix [lo, hi] of
// what was recorded, exactly the shape the in-memory ring exposed.
// The zero value retains everything.
type Retention struct {
	// MaxBytes caps the total sealed-segment bytes on disk; once
	// exceeded, the oldest sealed segments are deleted until the store
	// is back under the cap. 0 means no byte budget.
	MaxBytes int64
	// MaxAge deletes sealed segments whose seal time is older than
	// this. 0 means no age limit.
	MaxAge time.Duration
	// Pins, when set, protects segments a live follower currently
	// holds open: a pinned segment is never selected as a trim victim,
	// and (belt and braces, since a pin can land between planning and
	// unlink) never unlinked. Share one PinSet between the writer's
	// Options and the followers' ReaderOptions.
	Pins *PinSet
}

func (r Retention) enabled() bool { return r.MaxBytes > 0 || r.MaxAge > 0 }

// PinSet is a shared, reference-counted set of segment basenames that
// must not be unlinked: live followers pin the segment whose tail fd
// they hold across polls, and retention skips pinned victims until
// the follower moves on. The zero value is usable; a nil *PinSet
// pins nothing.
type PinSet struct {
	mu sync.Mutex
	n  map[string]int
}

// NewPinSet returns an empty pin set.
func NewPinSet() *PinSet { return &PinSet{} }

// Pin adds one reference to file (a segment basename).
func (p *PinSet) Pin(file string) {
	if p == nil || file == "" {
		return
	}
	p.mu.Lock()
	if p.n == nil {
		p.n = make(map[string]int)
	}
	p.n[file]++
	p.mu.Unlock()
}

// Unpin drops one reference to file.
func (p *PinSet) Unpin(file string) {
	if p == nil || file == "" {
		return
	}
	p.mu.Lock()
	if p.n[file] > 1 {
		p.n[file]--
	} else {
		delete(p.n, file)
	}
	p.mu.Unlock()
}

// Pinned reports whether file holds at least one pin.
func (p *PinSet) Pinned(file string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n[file] > 0
}

// Len returns the number of distinct pinned files.
func (p *PinSet) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.n)
}

// planTrim selects sealed manifest entries to delete under ret,
// oldest first in global append order (FirstSeq). The selection keeps
// two invariants: victims form a per-thread prefix of the segment
// sequence (a pinned or retained segment blocks trimming everything
// after it on its thread, so retained ranges never grow holes), and
// pinned segments are never selected. Returns indexes into
// man.Segments, ascending.
func planTrim(man *manifest, ret Retention, now time.Time) []int {
	if !ret.enabled() {
		return nil
	}
	type cand struct {
		idx      int
		firstSeq uint64
	}
	var sealedBytes int64
	var cands []cand
	for i, ms := range man.Segments {
		if ms.Sealed {
			sealedBytes += ms.Bytes
			cands = append(cands, cand{i, ms.FirstSeq})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].firstSeq < cands[j].firstSeq })

	var cutoff int64
	if ret.MaxAge > 0 {
		cutoff = now.Add(-ret.MaxAge).Unix()
	}
	var over int64
	if ret.MaxBytes > 0 && sealedBytes > ret.MaxBytes {
		over = sealedBytes - ret.MaxBytes
	}
	blocked := make(map[int]bool)
	var victims []int
	for _, c := range cands {
		ms := &man.Segments[c.idx]
		aged := cutoff > 0 && ms.SealedAt > 0 && ms.SealedAt < cutoff
		if over <= 0 && !aged {
			continue
		}
		if blocked[ms.TID] {
			continue
		}
		if ret.Pins.Pinned(ms.File) {
			blocked[ms.TID] = true
			continue
		}
		victims = append(victims, c.idx)
		over -= ms.Bytes
	}
	sort.Ints(victims)
	return victims
}

// applyTrim removes the victim entries from the manifest and folds
// them into its Trimmed records: per thread, MinSeq rises past the
// deleted segment files (so a reader never re-adopts an orphan a
// crash left behind) and Lo rises to the first instance that may
// still be retained. It mutates only the in-memory manifest — the
// journaled on-disk sequence (manifest rewrite first, unlink second)
// is the caller's job. Returns the removed entries for the unlink
// step.
func applyTrim(man *manifest, victims []int) []manifestSeg {
	if len(victims) == 0 {
		return nil
	}
	trimIdx := make(map[int]int, len(man.Trimmed))
	for i, tr := range man.Trimmed {
		trimIdx[tr.TID] = i
	}
	vset := make(map[int]bool, len(victims))
	removed := make([]manifestSeg, 0, len(victims))
	for _, i := range victims {
		vset[i] = true
		ms := man.Segments[i]
		removed = append(removed, ms)
		ti, ok := trimIdx[ms.TID]
		if !ok {
			man.Trimmed = append(man.Trimmed, manifestTrim{TID: ms.TID})
			ti = len(man.Trimmed) - 1
			trimIdx[ms.TID] = ti
		}
		tr := &man.Trimmed[ti]
		if _, seq, ok := parseSegName(ms.File); ok && seq+1 > tr.MinSeq {
			tr.MinSeq = seq + 1
		}
		if ms.Chunks > 0 && ms.LastN+1 > tr.Lo {
			tr.Lo = ms.LastN + 1
		}
		tr.Chunks += ms.Chunks
		tr.Bytes += ms.Bytes
	}
	kept := make([]manifestSeg, 0, len(man.Segments)-len(victims))
	for i, ms := range man.Segments {
		if !vset[i] {
			kept = append(kept, ms)
		}
	}
	man.Segments = kept
	sort.Slice(man.Trimmed, func(i, j int) bool { return man.Trimmed[i].TID < man.Trimmed[j].TID })
	return removed
}

// unlinkTrimmed deletes trimmed segment files. It runs strictly after
// the manifest rewrite has landed (Sia-style journaling: metadata
// first, then the destructive step), so a crash in between leaves
// orphan files the reader skips via the manifest's Trimmed records —
// never a manifest pointing at vanished data. Each victim re-consults
// the pin set right before its unlink: a follower can pin a segment
// between planning and this loop, and an unlink it loses the race to
// just becomes such an orphan, swept by a later trim.
func unlinkTrimmed(dir string, victims []manifestSeg, pins *PinSet) {
	for _, ms := range victims {
		if pins.Pinned(ms.File) {
			continue
		}
		// Best-effort: a failed unlink leaves an orphan the manifest no
		// longer references; readers skip it and the next trim retries.
		_ = os.Remove(filepath.Join(dir, ms.File))
	}
}

// Trim applies a retention policy to a closed store on disk — the
// janitor path for stores whose writer is long gone. The live path is
// Options.Retain, applied by the writer itself. Trimming follows the
// same journaled order as the writer: rewrite the manifest (victims
// removed, trimmed windows recorded, generation bumped), sync the
// directory, then unlink. Returns how many segments were removed.
func Trim(dir string, ret Retention) (removed int, err error) {
	man, err := readManifest(dir)
	if err != nil {
		return 0, err
	}
	if !man.Closed {
		return 0, fmt.Errorf("store: trim %s: writer has not closed (live retention belongs to the writer)", dir)
	}
	victims := planTrim(man, ret, time.Now())
	if len(victims) > 0 {
		segs := applyTrim(man, victims)
		man.Generation++
		if err := writeManifest(dir, man); err != nil {
			return 0, err
		}
		if err := syncDir(dir); err != nil {
			return 0, err
		}
		unlinkTrimmed(dir, segs, ret.Pins)
		removed = len(segs)
	}
	sweepOrphans(dir, man, ret.Pins)
	return removed, nil
}

// sweepOrphans unlinks segment files a crashed trim journaled out of
// the manifest but never got to delete: anything on disk below a
// thread's trimmed MinSeq and absent from the segment list. Readers
// already skip these, so the sweep is pure disk reclamation and every
// failure is ignorable.
func sweepOrphans(dir string, man *manifest, pins *PinSet) {
	if len(man.Trimmed) == 0 {
		return
	}
	minSeq := make(map[int]int, len(man.Trimmed))
	for _, tr := range man.Trimmed {
		minSeq[tr.TID] = tr.MinSeq
	}
	listed := make(map[string]bool, len(man.Segments))
	for _, ms := range man.Segments {
		listed[ms.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		tid, seq, ok := parseSegName(name)
		if !ok || listed[name] || seq >= minSeq[tid] {
			continue
		}
		if pins.Pinned(name) {
			continue
		}
		_ = os.Remove(filepath.Join(dir, name))
	}
}

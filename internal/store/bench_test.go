package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"scaldift/internal/benchfp"
	"scaldift/internal/ddg"
	"scaldift/internal/isa"
	"scaldift/internal/ontrac"
	"scaldift/internal/prog"
	"scaldift/internal/slicing"
)

// The BenchmarkStore* suite measures the persistence layer: spill
// throughput (sync and async writers over a pre-recorded chunk
// stream), cold-reopen backward-slice latency, and the parallel
// offline slicer's speedup over sequential traversal of the same
// reopened store.
//
// TestWriteBenchStoreJSON (env STORE_BENCH_JSON=1) writes
// BENCH_store.json at the repo root.

// benchWorkload is the multi-thread trace the benches slice: parallel
// partial sums whose backward closure from the final output crosses
// every worker thread's full add chain.
func benchWorkload() *prog.Workload { return prog.PSum(4, 30000, 7) }

// chunkSink retains spilled chunks (bench-local mirror of the test
// sink in ddg).
type chunkSink struct{ chunks []ddg.RawChunk }

func (s *chunkSink) SpillChunk(ch ddg.RawChunk) { s.chunks = append(s.chunks, ch) }

var benchOnce struct {
	sync.Once
	chunks []ddg.RawChunk // the workload's spilled chunk stream
	bytes  uint64
	events uint64
}

// benchChunks records the bench workload once and captures its chunk
// stream (unoptimized: every dependence stored).
func benchChunks(b testing.TB) ([]ddg.RawChunk, uint64) {
	benchOnce.Do(func() {
		w := benchWorkload()
		m := w.NewMachine()
		tr := ontrac.New(w.Prog, ontrac.Unoptimized())
		var sink chunkSink
		tr.Buffer().SetSpill(&sink)
		m.AttachTool(tr.Tool())
		if res := m.Run(); res.Failed {
			b.Fatal(res.FailMsg)
		}
		tr.Buffer().Flush()
		benchOnce.chunks = sink.chunks
		benchOnce.bytes = tr.Buffer().BytesWritten()
		benchOnce.events = m.Steps()
	})
	return benchOnce.chunks, benchOnce.bytes
}

// spillChunks writes the chunk stream through a fresh writer.
func spillChunks(b testing.TB, dir string, async bool, chunks []ddg.RawChunk) {
	w, err := Create(Options{Dir: dir, Async: async})
	if err != nil {
		b.Fatal(err)
	}
	for _, ch := range chunks {
		w.SpillChunk(ch)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

func benchSpill(b *testing.B, async bool) {
	chunks, bytes := benchChunks(b)
	dir := b.TempDir()
	b.SetBytes(int64(bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spillChunks(b, filepath.Join(dir, fmt.Sprint(i)), async, chunks)
	}
}

func BenchmarkStoreSpillSync(b *testing.B)  { benchSpill(b, false) }
func BenchmarkStoreSpillAsync(b *testing.B) { benchSpill(b, true) }

// benchStoreDir lazily materializes one spilled store for the read
// benches; TestMain removes it.
var benchStoreDir struct {
	sync.Once
	dir string
}

func TestMain(m *testing.M) {
	code := m.Run()
	if benchStoreDir.dir != "" {
		os.RemoveAll(benchStoreDir.dir)
	}
	os.Exit(code)
}

func benchStore(b testing.TB) string {
	benchStoreDir.Do(func() {
		chunks, _ := benchChunks(b)
		dir, err := os.MkdirTemp("", "scaldift-bench-store")
		if err != nil {
			b.Fatal(err)
		}
		spillChunks(b, dir, false, chunks)
		benchStoreDir.dir = dir
	})
	return benchStoreDir.dir
}

// benchCriterion returns the slicing start: the newest recorded
// instance of the main thread (the final output, whose closure spans
// all worker threads).
func benchCriterion(b testing.TB, r *Reader) slicing.Criterion {
	_, hi := r.Window(0)
	id := ddg.MakeID(0, hi)
	pc, ok := r.NodePC(id)
	if !ok {
		b.Fatal("no record at window top")
	}
	return slicing.Criterion{ID: id, PC: pc}
}

// coldSlice reopens the store from disk and runs one backward slice
// (workers <= 1: sequential).
func coldSlice(b testing.TB, dir string, workers int) *slicing.Slice {
	r, err := Open(dir, ReaderOptions{CacheChunks: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	w := benchWorkload()
	crit := benchCriterion(b, r)
	opts := slicing.Options{FollowControl: true}
	var s *slicing.Slice
	if workers <= 1 {
		s = slicing.Backward(r, w.Prog, []slicing.Criterion{crit}, opts)
	} else {
		s = slicing.ParallelBackward(r, w.Prog, []slicing.Criterion{crit}, opts, workers)
	}
	if s.Nodes < 1000 {
		b.Fatalf("closure too small to mean anything: %d nodes", s.Nodes)
	}
	return s
}

func benchReopenSlice(b *testing.B, workers int) {
	dir := benchStore(b)
	b.ResetTimer()
	var nodes int
	for i := 0; i < b.N; i++ {
		nodes = coldSlice(b, dir, workers).Nodes
	}
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(nodes*b.N)/el, "nodes/s")
	}
}

func BenchmarkStoreReopenBackwardSeq(b *testing.B) { benchReopenSlice(b, 1) }
func BenchmarkStoreParallelBackward(b *testing.B)  { benchReopenSlice(b, 2) }

// --- BENCH_store.json ---

type storeBenchReport struct {
	GoMaxProcs int                  `json:"gomaxprocs"`
	Host       benchfp.Host         `json:"host"`
	Note       string               `json:"note"`
	Workload   storeBenchWorkload   `json:"workload"`
	Spill      []storeBenchSpill    `json:"spill"`
	Reopen     storeBenchReopen     `json:"cold_reopen"`
	Parallel   []storeBenchParallel `json:"parallel_backward"`
}

type storeBenchWorkload struct {
	Name       string  `json:"name"`
	Events     uint64  `json:"events"`
	TraceBytes uint64  `json:"trace_bytes"`
	Chunks     int     `json:"chunks"`
	BytesInstr float64 `json:"bytes_per_instr"`
}

type storeBenchSpill struct {
	Mode       string  `json:"mode"`
	WallS      float64 `json:"wall_s"`
	MBPerSec   float64 `json:"mb_per_sec"`
	ChunksPerS float64 `json:"chunks_per_sec"`
}

type storeBenchReopen struct {
	WallS      float64 `json:"wall_s"`
	SliceNodes int     `json:"slice_nodes"`
	SliceEdges int     `json:"slice_edges"`
}

type storeBenchParallel struct {
	Trace            string  `json:"trace"`
	Mode             string  `json:"mode"` // sequential | parallel
	Shards           int     `json:"shards"`
	WallS            float64 `json:"wall_s"`
	SpeedupVsSeq     float64 `json:"speedup_vs_seq,omitempty"`
	CriticalPathS    float64 `json:"critical_path_s,omitempty"`
	SustainedSpeedup float64 `json:"sustained_speedup,omitempty"`
}

func bestOf(reps int, f func()) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		runtime.GC() // start each rep from the same heap state
		start := time.Now()
		f()
		if el := time.Since(start).Seconds(); best == 0 || el < best {
			best = el
		}
	}
	return best
}

// benchSyntheticStore spills a balanced 8-thread dependence stream:
// symmetric per-thread chains (two register deps per record, a
// cross-thread link every 64th record — the sparse cross-dependence
// shape of real per-thread traces), the workload ParallelBackward's
// per-thread sharding is built for. PSum's closure, by contrast, is
// dominated by the main thread's input loop — an Amdahl tail no
// traversal can parallelize away.
func benchSyntheticStore(t *testing.T) (string, *isa.Program) {
	const threads, perThread = 8, 60000
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewSharded(0)
	c.SetSpill(w)
	for tid := 0; tid < threads; tid++ {
		for n := uint64(1); n <= uint64(perThread); n++ {
			use := ddg.MakeID(tid, n)
			pc := int32((n % 97) + 1)
			var deps []ddg.Dep
			if n > 1 {
				deps = append(deps, ddg.Dep{Use: use, UsePC: pc,
					Def: ddg.MakeID(tid, n-1), DefPC: pc - 1, Kind: ddg.Data})
			}
			if n > 3 {
				deps = append(deps, ddg.Dep{Use: use, UsePC: pc,
					Def: ddg.MakeID(tid, n-3), DefPC: 2, Kind: ddg.Data})
			}
			if n > 5 && n%64 == 0 {
				deps = append(deps, ddg.Dep{Use: use, UsePC: pc,
					Def: ddg.MakeID((tid+1)%threads, n-5), DefPC: 3, Kind: ddg.Data})
			}
			c.Append(use, pc, deps, 0)
		}
	}
	c.Flush()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Any program works for the line mapping; the synthetic PCs fall
	// inside the PSum program's range.
	return dir, benchWorkload().Prog
}

// coldSliceAll reopens dir cold and slices from every listed thread's
// newest recorded instance at once.
func coldSliceAll(t testing.TB, dir string, p *isa.Program, tids []int, workers int) *slicing.Slice {
	r, err := Open(dir, ReaderOptions{CacheChunks: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if tids == nil {
		tids = r.Threads()
	}
	var crits []slicing.Criterion
	for _, tid := range tids {
		_, hi := r.Window(tid)
		id := ddg.MakeID(tid, hi)
		pc, ok := r.NodePC(id)
		if !ok {
			t.Fatalf("tid %d: no record at window top", tid)
		}
		crits = append(crits, slicing.Criterion{ID: id, PC: pc})
	}
	opts := slicing.Options{FollowControl: true}
	if workers <= 1 {
		return slicing.Backward(r, p, crits, opts)
	}
	return slicing.ParallelBackward(r, p, crits, opts, workers)
}

// shardWorkWalls measures each thread shard's slice work in
// isolation: first a plain traversal collects the closure's node set
// per thread, then every thread's nodes are re-expanded on a fresh
// cold reader, timed alone. The walls are what each ParallelBackward
// worker would spend on dedicated hardware, free of the 1-CPU
// scheduler's interleaving — the per-stage measurement convention of
// the other BENCH files.
func shardWorkWalls(t *testing.T, dir string, p *isa.Program) map[int]float64 {
	r, err := Open(dir, ReaderOptions{CacheChunks: 64})
	if err != nil {
		t.Fatal(err)
	}
	perTid := make(map[int][]ddg.ID)
	visited := make(map[ddg.ID]bool)
	var stack []ddg.ID
	for _, tid := range r.Threads() {
		_, hi := r.Window(tid)
		id := ddg.MakeID(tid, hi)
		visited[id] = true
		stack = append(stack, id)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		perTid[id.TID()] = append(perTid[id.TID()], id)
		r.DepsOf(id, func(d ddg.Dep) {
			if d.Def != 0 && !visited[d.Def] {
				visited[d.Def] = true
				stack = append(stack, d.Def)
			}
		})
	}
	r.Close()

	walls := make(map[int]float64, len(perTid))
	for tid, ids := range perTid {
		rc, err := Open(dir, ReaderOptions{CacheChunks: 64})
		if err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		start := time.Now()
		for _, id := range ids {
			rc.DepsOf(id, func(ddg.Dep) {})
		}
		walls[tid] = time.Since(start).Seconds()
		rc.Close()
	}
	return walls
}

// measureParallel runs the cold whole-store slice sequentially and
// through ParallelBackward (one worker goroutine per thread shard),
// recording the measured wall speedup, and derives the sustained
// speedup from per-shard work measured in isolation: sum over max is
// the bottleneck-shard ratio a parallel host converges to.
func measureParallel(t *testing.T, reps int, trace, dir string, p *isa.Program) []storeBenchParallel {
	seqWall := bestOf(reps, func() { coldSliceAll(t, dir, p, nil, 1) })
	wall := bestOf(reps, func() { coldSliceAll(t, dir, p, nil, 2) })
	walls := shardWorkWalls(t, dir, p)
	var sum, max float64
	for _, w := range walls {
		sum += w
		if w > max {
			max = w
		}
	}
	return []storeBenchParallel{
		{Trace: trace, Mode: "sequential", Shards: 1, WallS: seqWall},
		{
			Trace:            trace,
			Mode:             "parallel",
			Shards:           len(walls),
			WallS:            wall,
			SpeedupVsSeq:     seqWall / wall,
			CriticalPathS:    max,
			SustainedSpeedup: sum / max,
		},
	}
}

func TestWriteBenchStoreJSON(t *testing.T) {
	if os.Getenv("STORE_BENCH_JSON") == "" {
		t.Skip("set STORE_BENCH_JSON=1 to generate BENCH_store.json")
	}
	const reps = 5
	chunks, bytes := benchChunks(t)
	report := storeBenchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Host:       benchfp.Current(),
		Note: "Persistent segmented trace store. spill = writing the workload's pre-recorded " +
			"chunk stream through a fresh store (async adds the writer goroutine hand-off); " +
			"cold_reopen = Open from disk + one whole-execution backward slice with a cold " +
			"chunk cache; parallel_backward = cold whole-store slices from every thread's " +
			"newest instance, sequential Backward vs ParallelBackward (one goroutine per " +
			"thread shard). speedup_vs_seq is measured wall clock ON THIS 1-CPU HOST " +
			"(gomaxprocs 1): concurrent workers cannot beat wall clock here, so any win is " +
			"sharded-visited-set locality. sustained_speedup is the bottleneck-shard ratio " +
			"sum/max of per-shard slice work, each shard's closure expansion measured in " +
			"ISOLATION on a cold reader (critical_path_s = the slowest shard) — the " +
			"per-stage measurement convention BENCH_ontrac/BENCH_pipeline use on this " +
			"1-CPU host; it excludes cross-shard handoff, which the differential suite's " +
			"ParallelBackward-equality checks keep honest. psum4's closure is ~62% " +
			"main-thread (input loop: an Amdahl tail); synthetic8 is the balanced 8-chain " +
			"shape the per-thread sharding targets.",
		Workload: storeBenchWorkload{
			Name:       "psum4",
			Events:     benchOnce.events,
			TraceBytes: bytes,
			Chunks:     len(chunks),
			BytesInstr: float64(bytes) / float64(benchOnce.events),
		},
	}

	for _, mode := range []string{"sync", "async"} {
		dir := t.TempDir()
		i := 0
		wall := bestOf(reps, func() {
			spillChunks(t, filepath.Join(dir, fmt.Sprint(i)), mode == "async", chunks)
			i++
		})
		report.Spill = append(report.Spill, storeBenchSpill{
			Mode:       mode,
			WallS:      wall,
			MBPerSec:   float64(bytes) / (1 << 20) / wall,
			ChunksPerS: float64(len(chunks)) / wall,
		})
	}

	dir := benchStore(t)
	var s *slicing.Slice
	seqWall := bestOf(reps, func() { s = coldSlice(t, dir, 1) })
	report.Reopen = storeBenchReopen{WallS: seqWall, SliceNodes: s.Nodes, SliceEdges: s.Edges}

	report.Parallel = measureParallel(t, reps, "psum4", dir, benchWorkload().Prog)
	synDir, synProg := benchSyntheticStore(t)
	report.Parallel = append(report.Parallel, measureParallel(t, reps, "synthetic8", synDir, synProg)...)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_store.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_store.json: %s", data)
}

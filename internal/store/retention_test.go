package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"scaldift/internal/ddg"
)

// Retention suite: byte/age budgets delete whole sealed segments
// oldest-first, the manifest journals the trimmed window BEFORE any
// unlink (Sia persist style), readers report the trim floor exactly
// like the old ring reported its window edge, and pinned segments are
// never unlinked.

// checkTrimmedWindows asserts r serves exactly the model's deps over
// each surviving window, that surviving windows are a suffix [lo, hi]
// of the recorded range, and that lo sits at the manifest's trim
// floor. Returns the number of instances verified.
func checkTrimmedWindows(t *testing.T, model *ddg.Full, r *Reader) int {
	t.Helper()
	verified := 0
	survivors := make(map[int]bool)
	for _, tid := range r.Threads() {
		survivors[tid] = true
	}
	for _, tid := range model.Threads() {
		mlo, mhi := model.Window(tid)
		if !survivors[tid] {
			// Fully trimmed: the floor must cover the whole recorded
			// range, else the reader lost data retention never deleted.
			if lo, ok := r.TrimmedLo(tid); !ok || lo <= mhi {
				t.Fatalf("tid %d served nothing but trim floor is (%d,%v), recorded [%d,%d]", tid, lo, ok, mlo, mhi)
			}
			continue
		}
		lo, hi := r.Window(tid)
		if hi != mhi {
			t.Fatalf("tid %d window hi %d, want %d (trim must only eat the oldest prefix)", tid, hi, mhi)
		}
		if tlo, ok := r.TrimmedLo(tid); ok {
			if lo != tlo {
				t.Fatalf("tid %d window lo %d, manifest trim floor %d", tid, lo, tlo)
			}
		} else if lo != mlo {
			t.Fatalf("tid %d window lo %d with no trim record, want %d", tid, lo, mlo)
		}
		for n := lo; n <= hi; n++ {
			id := ddg.MakeID(tid, n)
			want := ddg.CountDeps(model, id)
			got := ddg.CountDeps(r, id)
			if len(want) != len(got) {
				t.Fatalf("deps of %v: model %d, got %d", id, len(want), len(got))
			}
			verified++
		}
	}
	return verified
}

// segFiles lists the .seg basenames currently on disk.
func segFiles(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			out[e.Name()] = true
		}
	}
	return out
}

func TestStoreRetentionByteBudget(t *testing.T) {
	dir := t.TempDir()
	const budget = 8 << 10
	w, err := Create(Options{Dir: dir, SegmentBytes: 2048, Retain: Retention{MaxBytes: budget}})
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewShardedSized(0, 256)
	c.SetSpill(w)
	model := appendSynthetic(c, 3, 400)
	c.Flush()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.SegmentsTrimmed() == 0 {
		t.Fatal("store stayed under an 8KB budget — scenario needs more data")
	}

	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, ms := range man.Segments {
		total += ms.Bytes
	}
	if total > budget {
		t.Fatalf("closed store holds %d bytes over the %d budget", total, budget)
	}
	if len(man.Trimmed) == 0 {
		t.Fatal("manifest has no trimmed-window records")
	}
	// Disk and manifest agree exactly: every listed file present, no
	// orphans left behind.
	onDisk := segFiles(t, dir)
	for _, ms := range man.Segments {
		if !onDisk[ms.File] {
			t.Fatalf("manifest lists %s but it is not on disk", ms.File)
		}
		delete(onDisk, ms.File)
	}
	for name := range onDisk {
		t.Fatalf("orphan segment %s on disk after clean close", name)
	}

	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovered() {
		t.Fatal("trimmed store read as crash recovery")
	}
	if n := checkTrimmedWindows(t, model, r); n == 0 {
		t.Fatal("nothing survived the trim — budget too tight to test the surviving window")
	}
	if len(r.Trimmed()) == 0 {
		t.Fatal("reader did not surface the trimmed windows")
	}
}

func TestStoreRetentionAge(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir, SegmentBytes: 1024, Retain: Retention{MaxAge: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	w.now = func() time.Time { return base }
	c := ddg.NewShardedSized(0, 128)
	c.SetSpill(w)
	model := ddg.NewFull()
	appendPhase(c, model, 2, 1, 300)
	c.Flush()
	man0, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	agedSeals := len(man0.Segments) // published manifests list sealed only
	if agedSeals == 0 {
		t.Fatal("phase 1 sealed nothing — nothing can age out")
	}

	// Two hours pass; everything sealed in phase 1 is now beyond
	// MaxAge, everything sealed from here on is fresh.
	w.now = func() time.Time { return base.Add(2 * time.Hour) }
	appendPhase(c, model, 2, 301, 600)
	c.Flush()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.SegmentsTrimmed(); got != uint64(agedSeals) {
		t.Fatalf("trimmed %d segments, want the %d sealed before the clock jump", got, agedSeals)
	}

	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	trimmedSomething := false
	for tid := 0; tid < 2; tid++ {
		if lo, ok := r.TrimmedLo(tid); ok && lo > 1 {
			trimmedSomething = true
		}
	}
	if !trimmedSomething {
		t.Fatal("age trim left every window starting at 1")
	}
	checkTrimmedWindows(t, model, r)
}

func TestStoreTrimClosedStore(t *testing.T) {
	dir := t.TempDir()
	model := spillAll(t, dir, Options{SegmentBytes: 2048}, 2, 400, 256)
	man0, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}

	removed, err := Trim(dir, Retention{MaxBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("janitor trim removed nothing")
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Generation <= man0.Generation {
		t.Fatalf("trim did not bump generation: %d -> %d", man0.Generation, man.Generation)
	}
	if !man.Closed {
		t.Fatal("trim un-closed the store")
	}

	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovered() {
		t.Fatal("trimmed store read as crash recovery")
	}
	checkTrimmedWindows(t, model, r)

	// Idempotent: the store is under budget now.
	if again, err := Trim(dir, Retention{MaxBytes: 4 << 10}); err != nil || again != 0 {
		t.Fatalf("second trim = (%d, %v), want (0, nil)", again, err)
	}

	// Trimming a live store is the writer's job, not the janitor's.
	liveDir := t.TempDir()
	lw, err := Create(Options{Dir: liveDir})
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Close()
	if _, err := Trim(liveDir, Retention{MaxBytes: 1}); err == nil {
		t.Fatal("Trim accepted a store whose writer has not closed")
	}
}

func TestStoreRetentionSkipsPinnedSegments(t *testing.T) {
	dir := t.TempDir()
	spillAll(t, dir, Options{SegmentBytes: 1024}, 1, 800, 128)
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) < 3 {
		t.Fatal("need several segments")
	}
	oldest := man.Segments[0].File

	// A pin on the oldest segment blocks the whole thread (trims are
	// prefix-only: deleting around a pin would punch a hole in the
	// retained range).
	pins := NewPinSet()
	pins.Pin(oldest)
	removed, err := Trim(dir, Retention{MaxBytes: 2048, Pins: pins})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("trim removed %d segments around a pinned prefix", removed)
	}
	if !segFiles(t, dir)[oldest] {
		t.Fatal("pinned segment unlinked")
	}

	// Unpinned, the same policy trims.
	pins.Unpin(oldest)
	removed, err = Trim(dir, Retention{MaxBytes: 2048, Pins: pins})
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("unpinned trim removed nothing")
	}
	if segFiles(t, dir)[oldest] {
		t.Fatal("oldest segment survived an unpinned trim")
	}
}

// TestStoreRetentionUnlinkRechecksPins covers the plan→unlink race:
// a pin that lands after victim selection must still keep its file on
// disk (the manifest no longer lists it, which is fine — the reader
// skips it as a trim orphan and a later sweep reclaims it).
func TestStoreRetentionUnlinkRechecksPins(t *testing.T) {
	dir := t.TempDir()
	spillAll(t, dir, Options{SegmentBytes: 1024}, 1, 800, 128)
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victims := planTrim(man, Retention{MaxBytes: 2048}, time.Now())
	if len(victims) < 2 {
		t.Fatal("need at least two victims")
	}
	segs := applyTrim(man, victims)

	pins := NewPinSet()
	pins.Pin(segs[0].File) // the race: pinned after planning
	unlinkTrimmed(dir, segs, pins)

	onDisk := segFiles(t, dir)
	if !onDisk[segs[0].File] {
		t.Fatal("segment pinned between plan and unlink was deleted anyway")
	}
	for _, ms := range segs[1:] {
		if onDisk[ms.File] {
			t.Fatalf("unpinned victim %s survived", ms.File)
		}
	}
}

// TestStoreRetentionCrashBeforeUnlink is the retention crash suite:
// the trim journals its manifest rewrite first and dies before any
// unlink. Reopening must serve a manifest-consistent prefix — the
// orphaned files are invisible, the trimmed window is reported, and
// nothing reads as crash damage. A later janitor pass sweeps the
// orphans.
func TestStoreRetentionCrashBeforeUnlink(t *testing.T) {
	dir := t.TempDir()
	model := spillAll(t, dir, Options{SegmentBytes: 2048}, 2, 400, 256)

	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victims := planTrim(man, Retention{MaxBytes: 4 << 10}, time.Now())
	if len(victims) == 0 {
		t.Fatal("nothing to trim")
	}
	orphans := applyTrim(man, victims)
	man.Generation++
	if err := writeManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	// "Crash": unlinkTrimmed never runs. The deleted-from-manifest
	// files are all still on disk.
	onDisk := segFiles(t, dir)
	for _, ms := range orphans {
		if !onDisk[ms.File] {
			t.Fatalf("test setup: %s should still exist", ms.File)
		}
	}

	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Recovered() {
		t.Fatal("trim orphans misread as crash damage")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(r.Trimmed()) == 0 {
		t.Fatal("reopen lost the trimmed-window records")
	}
	checkTrimmedWindows(t, model, r)
	r.Close()

	// The janitor reclaims the orphans even though the current state
	// needs no further trimming.
	removed, err := Trim(dir, Retention{MaxBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("sweep re-trimmed %d live segments", removed)
	}
	onDisk = segFiles(t, dir)
	for _, ms := range orphans {
		if onDisk[ms.File] {
			t.Fatalf("orphan %s not swept", ms.File)
		}
	}
}

func TestStoreLiveFollowAcrossTrim(t *testing.T) {
	dir := t.TempDir()
	pins := NewPinSet()
	w, err := Create(Options{Dir: dir, SegmentBytes: 1024, Retain: Retention{MaxBytes: 4 << 10, Pins: pins}})
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewShardedSized(0, 128)
	c.SetSpill(w)
	model := ddg.NewFull()
	const threads = 2
	appendPhase(c, model, threads, 1, 100)
	c.Flush()

	r, err := Open(dir, ReaderOptions{Follow: true, Pins: pins})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	gen := r.Generation()

	lo := uint64(101)
	for _, hi := range []uint64{400, 800, 1200} {
		appendPhase(c, model, threads, lo, hi)
		c.Flush()
		lo = hi + 1
		if _, err := r.Poll(); err != nil {
			t.Fatalf("poll: %v", err)
		}
		if g := r.Generation(); g < gen {
			t.Fatalf("generation went backwards: %d -> %d", gen, g)
		} else {
			gen = g
		}
	}
	if w.SegmentsTrimmed() == 0 {
		t.Fatal("live run never trimmed — scenario needs more data")
	}
	// The follower must have picked the trims up mid-run: its windows
	// start at the trim floor, not at 1.
	floored := false
	for tid := 0; tid < threads; tid++ {
		wlo, whi := r.Window(tid)
		if wlo > 1 && whi >= wlo {
			floored = true
		}
	}
	if !floored {
		t.Fatal("follower windows never moved off instance 1 despite trims")
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Poll(); err != nil {
		t.Fatalf("poll after close: %v", err)
	}
	if r.Live() {
		t.Fatal("still live after final manifest")
	}
	if r.Recovered() {
		t.Fatal("trimmed live run read as recovery")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if pins.Len() != 0 {
		t.Fatalf("%d pins leaked after the live→closed flip", pins.Len())
	}
	if n := checkTrimmedWindows(t, model, r); n == 0 {
		t.Fatal("nothing survived to verify")
	}
}

// countFDs returns this process's open descriptor count.
func countFDs(t *testing.T) int {
	t.Helper()
	entries, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(entries)
}

// TestStoreFollowerClosesTailFDsOnFlip is the fd-pinning regression:
// a follower caches one open tail fd per thread while the store is
// live, and the poll that observes the writer's close must release
// every one of them — a closed trace is fd-free between calls,
// exactly like a cold reader.
func TestStoreFollowerClosesTailFDsOnFlip(t *testing.T) {
	baseline := countFDs(t)

	dir := t.TempDir()
	pins := NewPinSet()
	w, err := Create(Options{Dir: dir, SegmentBytes: 1 << 20}) // tails never seal mid-run
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewShardedSized(0, 64)
	c.SetSpill(w)
	model := ddg.NewFull()
	const threads = 3
	appendPhase(c, model, threads, 1, 200)
	c.Flush()

	r, err := Open(dir, ReaderOptions{Follow: true, Pins: pins})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Threads() // load every index: tail fds get cached here
	if got := pins.Len(); got != threads {
		t.Fatalf("%d tail pins while live, want %d", got, threads)
	}
	withTails := countFDs(t)
	if withTails < baseline+threads {
		t.Fatalf("expected ≥%d cached tail fds (fds %d -> %d)", threads, baseline, withTails)
	}

	// Polls reuse the cached fds instead of stacking new ones.
	appendPhase(c, model, threads, 201, 400)
	c.Flush()
	if _, err := r.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := countFDs(t); got != withTails {
		t.Fatalf("poll changed fd count %d -> %d; tail fds must be reused", withTails, got)
	}

	// The flip: writer closes, next poll observes it, every tail fd
	// and pin must be gone.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := countFDs(t); got != baseline {
		t.Fatalf("fd count %d after live→closed flip, want the pre-store baseline %d (tail fds leaked)", got, baseline)
	}
	if got := pins.Len(); got != 0 {
		t.Fatalf("%d pins survived the flip", got)
	}
	for _, ts := range r.allThreads() {
		ts.mu.Lock()
		leaked := ts.tailF != nil
		ts.mu.Unlock()
		if leaked {
			t.Fatalf("tid %d still caches a tail fd after the flip", ts.tid)
		}
	}
	diffSource(t, model, r)

	// Close on an already fd-free reader stays a no-op.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreDamageBurstKeepsHealthyCache is the negative-cache
// crowding regression: damaged-chunk (negative) entries used to share
// the decoded-chunk FIFO, so a burst of damage probes evicted every
// healthy hot chunk. Negatives now live in their own bounded set: a
// healthy cached chunk must survive the burst — provably served from
// memory, because its on-disk bytes are corrupted before the burst.
func TestStoreDamageBurstKeepsHealthyCache(t *testing.T) {
	dir := t.TempDir()
	spillAll(t, dir, Options{SegmentBytes: 1 << 20}, 1, 1200, 64)

	const cacheBound = 2
	r, err := Open(dir, ReaderOptions{CacheChunks: cacheBound})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Threads() // index while intact

	ts := r.thread(0)
	ts.mu.Lock()
	chunks := append([]tChunk(nil), ts.chunks...)
	path := ts.segs[0].path
	ts.mu.Unlock()
	if len(chunks) < 8 {
		t.Fatal("need a longer chunk run")
	}

	hot := ddg.MakeID(0, chunks[0].lastN)
	if deps := ddg.CountDeps(r, hot); len(deps) == 0 {
		t.Fatal("test id has no deps")
	}

	// Corrupt the hot chunk AND a burst of others on disk. From here
	// on, only the in-memory cache can serve the hot chunk.
	flip := func(tc tChunk) {
		off := tc.off + int64(uvarintLen(uint64(tc.plen)))
		buf := make([]byte, 1)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.ReadAt(buf, off); err != nil {
			f.Close()
			t.Fatal(err)
		}
		f.Close()
		overwriteAt(t, path, off, []byte{buf[0] ^ 0x5A})
	}
	burst := chunks[1 : 1+2*cacheBound+1]
	flip(chunks[0])
	for _, tc := range burst {
		flip(tc)
	}
	for _, tc := range burst {
		if deps := ddg.CountDeps(r, ddg.MakeID(0, tc.lastN)); len(deps) != 0 {
			t.Fatalf("damaged chunk at %d served %d deps", tc.off, len(deps))
		}
	}
	if !r.Recovered() {
		t.Fatal("damage burst not reported as recovery")
	}

	// The regression: before negatives were bounded separately, the
	// burst above FIFO-evicted the healthy chunk, and this re-read the
	// now-corrupt bytes and served a hole.
	if deps := ddg.CountDeps(r, hot); len(deps) == 0 {
		t.Fatal("healthy hot chunk evicted by damage negatives")
	}

	ts.mu.Lock()
	negs, negFifo := len(ts.neg), len(ts.negFifo)
	ts.mu.Unlock()
	if negs > cacheBound || negFifo > cacheBound {
		t.Fatalf("negative set unbounded: %d entries / %d fifo over bound %d", negs, negFifo, cacheBound)
	}
}

// Package store is the persistent segmented trace store: sealed
// compact chunks (ddg.RawChunk) spill into per-thread append-only
// segment files, a manifest records the segments in global append
// order, and Reader reopens the whole execution from disk as a
// ddg.Source with lazy segment loading and a bounded decoded-chunk
// cache. It replaces the circular trace buffer's lossy ring eviction
// (§2.1's window-length limit): memory caps become cache bounds, and
// the on-disk stream retains every chunk, so whole-execution backward
// slices work on runs far larger than RAM.
//
// Layout of one segment file (all integers uvarint unless noted):
//
//	header:  magic "SCLDSEG1" | tid
//	chunk*:  plen(>0) | payload | crc32(payload) [4B LE]
//	           payload = gseq | baseN | lastN | count | chunk bytes
//	footer:  0x00 | flen(ftr) | ftr | crc32(ftr) [4B LE]
//	           | uint32 LE total footer length | magic "SCLDFTR1"
//	           ftr = nchunks, then per chunk:
//	                 file offset of its plen | gseq | baseN | lastN
//	                 | count | plen
//
// The zero plen sentinel ends the chunk stream, so a sequential scan
// and the footer index describe the same records; the trailing fixed
// block lets a reader seek straight to the footer of a sealed
// segment. Every payload carries its own CRC: a reader that finds a
// segment without a valid footer (crash mid-write, truncation)
// recovers the longest valid chunk prefix instead of erroring.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"scaldift/internal/ddg"
)

const (
	segMagic = "SCLDSEG1"
	ftrMagic = "SCLDFTR1"

	manifestName    = "manifest.json"
	manifestHeader  = "scaldift segmented trace store"
	manifestVersion = "1"
)

// chunkMeta locates one chunk inside a segment file, mirroring a
// footer index entry.
type chunkMeta struct {
	off   int64 // file offset of the chunk's plen varint
	plen  int   // payload length in bytes
	gseq  uint64
	baseN uint64
	lastN uint64
	count int
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:k]...)
}

// appendChunkRecord appends the wire form of one spilled chunk and
// returns the grown dst plus the payload length (the footer index
// records it). The chunk bytes are copied once, straight into dst;
// the CRC is computed incrementally over header + Buf.
func appendChunkRecord(dst []byte, gseq uint64, ch ddg.RawChunk) ([]byte, int) {
	var hdr [4 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], gseq)
	n += binary.PutUvarint(hdr[n:], ch.BaseN)
	n += binary.PutUvarint(hdr[n:], ch.LastN)
	n += binary.PutUvarint(hdr[n:], uint64(ch.Count))
	plen := n + len(ch.Buf)

	dst = appendUvarint(dst, uint64(plen))
	dst = append(dst, hdr[:n]...)
	dst = append(dst, ch.Buf...)
	crc := crc32.Update(crc32.ChecksumIEEE(hdr[:n]), crc32.IEEETable, ch.Buf)
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], crc)
	return append(dst, cb[:]...), plen
}

// parseChunkPayload decodes a chunk payload (CRC already verified)
// into its metadata; the remaining bytes are the raw chunk buf.
func parseChunkPayload(payload []byte) (gseq, baseN, lastN uint64, count int, buf []byte, err error) {
	pos := 0
	read := func() uint64 {
		v, k := binary.Uvarint(payload[pos:])
		if k <= 0 {
			err = fmt.Errorf("store: short chunk payload")
			return 0
		}
		pos += k
		return v
	}
	gseq = read()
	baseN = read()
	lastN = read()
	count = int(read())
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	return gseq, baseN, lastN, count, payload[pos:], nil
}

// appendFooter appends the footer block for the given chunk index.
func appendFooter(dst []byte, chunks []chunkMeta) []byte {
	var ftr []byte
	ftr = appendUvarint(ftr, uint64(len(chunks)))
	for _, cm := range chunks {
		ftr = appendUvarint(ftr, uint64(cm.off))
		ftr = appendUvarint(ftr, cm.gseq)
		ftr = appendUvarint(ftr, cm.baseN)
		ftr = appendUvarint(ftr, cm.lastN)
		ftr = appendUvarint(ftr, uint64(cm.count))
		ftr = appendUvarint(ftr, uint64(cm.plen))
	}

	start := len(dst)
	dst = append(dst, 0) // zero plen: end of chunk stream
	dst = appendUvarint(dst, uint64(len(ftr)))
	dst = append(dst, ftr...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(ftr))
	dst = append(dst, crc[:]...)
	var total [4]byte
	binary.LittleEndian.PutUint32(total[:], uint32(len(dst)-start+4+len(ftrMagic)))
	dst = append(dst, total[:]...)
	return append(dst, ftrMagic...)
}

// parseFooter decodes a footer's ftr bytes (CRC already verified).
func parseFooter(ftr []byte) ([]chunkMeta, error) {
	pos := 0
	var perr error
	read := func() uint64 {
		v, k := binary.Uvarint(ftr[pos:])
		if k <= 0 {
			perr = fmt.Errorf("store: short footer")
			return 0
		}
		pos += k
		return v
	}
	n := read()
	if perr != nil {
		return nil, perr
	}
	chunks := make([]chunkMeta, 0, n)
	for i := uint64(0); i < n; i++ {
		cm := chunkMeta{
			off:   int64(read()),
			gseq:  read(),
			baseN: read(),
			lastN: read(),
			count: int(read()),
			plen:  int(read()),
		}
		if perr != nil {
			return nil, perr
		}
		chunks = append(chunks, cm)
	}
	return chunks, nil
}

// segHeader renders a segment file header.
func segHeader(tid int) []byte {
	dst := []byte(segMagic)
	return appendUvarint(dst, uint64(tid))
}

// parseSegHeader validates a header and returns the tid and the
// offset of the first chunk record.
func parseSegHeader(b []byte) (tid int, off int64, err error) {
	if len(b) < len(segMagic) || string(b[:len(segMagic)]) != segMagic {
		return 0, 0, fmt.Errorf("store: bad segment magic")
	}
	v, k := binary.Uvarint(b[len(segMagic):])
	if k <= 0 {
		return 0, 0, fmt.Errorf("store: bad segment header")
	}
	return int(v), int64(len(segMagic) + k), nil
}

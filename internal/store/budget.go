package store

import (
	"sync/atomic"

	"scaldift/internal/ddg"
)

// Budget caps the chunk-decode work one traversal may trigger against
// a Reader. Chunk loads (cache misses: a file read, a CRC check, and
// a full decode) are the expensive unit of read-side work, so a
// long-lived service gives each query its own Budget and the shared
// Reader charges every decode against it; cache hits are free. When
// the budget runs out the reader stops expanding — DepsOf yields
// nothing for instances whose chunk would need a fresh load — and the
// traversal degrades exactly like a window truncation: the slice is a
// valid under-approximation and Exhausted reports why.
//
// A nil *Budget means unlimited. Budgets are safe for concurrent use
// by the parallel slicers' workers.
type Budget struct {
	maxLoads  int64
	loads     atomic.Int64
	exhausted atomic.Bool
}

// NewBudget returns a budget allowing at most maxChunkLoads chunk
// decodes; maxChunkLoads <= 0 means unlimited (charges are counted
// but never refused).
func NewBudget(maxChunkLoads int) *Budget {
	return &Budget{maxLoads: int64(maxChunkLoads)}
}

// charge consumes one chunk load, reporting false (and latching
// Exhausted) once past the cap. Nil-safe.
func (b *Budget) charge() bool {
	if b == nil {
		return true
	}
	n := b.loads.Add(1)
	if b.maxLoads > 0 && n > b.maxLoads {
		b.exhausted.Store(true)
		return false
	}
	return true
}

// Exhausted reports whether any charge was refused.
func (b *Budget) Exhausted() bool { return b != nil && b.exhausted.Load() }

// ChunkLoads returns the number of chunk decodes charged so far
// (including refused ones).
func (b *Budget) ChunkLoads() int64 {
	if b == nil {
		return 0
	}
	return b.loads.Load()
}

// Budgeted returns a view of the reader whose chunk loads are charged
// against b: the ddg.Source a service hands one query so it cannot
// drag the whole store through the cache. Views share the reader's
// chunk cache and are safe for concurrent use.
func (r *Reader) Budgeted(b *Budget) *BudgetedReader {
	return &BudgetedReader{r: r, b: b}
}

// BudgetedReader is a per-query view of a Reader; see
// Reader.Budgeted.
type BudgetedReader struct {
	r *Reader
	b *Budget
}

// Threads implements ddg.Source (index loads are metadata, not
// charged).
func (v *BudgetedReader) Threads() []int { return v.r.Threads() }

// Window implements ddg.Source.
func (v *BudgetedReader) Window(tid int) (uint64, uint64) { return v.r.Window(tid) }

// DepsOf implements ddg.Source, charging chunk loads to the budget.
func (v *BudgetedReader) DepsOf(id ddg.ID, yield func(ddg.Dep)) {
	for _, d := range v.r.depsAt(id, v.b) {
		yield(d)
	}
}

// NodePC implements ddg.Source, charging chunk loads to the budget.
func (v *BudgetedReader) NodePC(id ddg.ID) (int32, bool) {
	deps := v.r.depsAt(id, v.b)
	if len(deps) == 0 {
		return 0, false
	}
	return deps[0].UsePC, true
}

var _ ddg.Source = (*BudgetedReader)(nil)

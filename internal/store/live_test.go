package store

import (
	"os"
	"path/filepath"
	"testing"

	"scaldift/internal/ddg"
)

// Live following: a Reader opened with Follow attaches to a store
// whose writer is still appending. Poll advances a monotone frontier
// of CRC-valid chunks — re-reading only bytes past the last
// known-good offset — and observes seals, new segments, and the
// final close.

// TestStoreLiveFollowTail drives a writer and an attached follower
// in lockstep phases: every poll must extend the frontier to exactly
// what has landed, the incremental scan must never re-read bytes it
// already parsed, and the final close must hand over the complete
// store without ever reporting recovery.
func TestStoreLiveFollowTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewShardedSized(0, 128)
	c.SetSpill(w)
	model := ddg.NewFull()

	const threads = 2
	appendPhase(c, model, threads, 1, 100)
	c.Flush()

	r, err := Open(dir, ReaderOptions{Follow: true, CacheChunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Live() {
		t.Fatal("follower of an unclosed store not live")
	}
	gen0 := r.Generation()

	phases := []uint64{300, 700, 1200}
	lo := uint64(101)
	for _, hi := range phases {
		appendPhase(c, model, threads, lo, hi)
		c.Flush()
		lo = hi + 1

		advanced, err := r.Poll()
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if !advanced {
			t.Fatalf("poll after landing instances up to %d did not advance", hi)
		}
		for tid := 0; tid < threads; tid++ {
			flo, fhi := r.Window(tid)
			if flo != 1 || fhi != hi {
				t.Fatalf("tid %d frontier [%d,%d] after phase, want [1,%d]", tid, flo, fhi, hi)
			}
		}
		// A no-op poll must not re-scan the tail: all bytes up to the
		// frontier were already parsed.
		before := r.tailScanned.Load()
		advanced, err = r.Poll()
		if err != nil {
			t.Fatalf("no-op poll: %v", err)
		}
		if advanced {
			t.Fatal("no-op poll claimed advance")
		}
		if delta := r.tailScanned.Load() - before; delta != 0 {
			t.Fatalf("no-op poll re-scanned %d tail bytes", delta)
		}
	}

	// Mid-run seals must have published the manifest under bumped
	// generations, and the follower must have crossed into the sealed
	// segments without trouble.
	if w.SegmentsSealed() == 0 {
		t.Fatal("no segment sealed mid-run — rollover path untested")
	}
	if r.Generation() <= gen0 {
		t.Fatalf("generation did not advance across seals: %d -> %d", gen0, r.Generation())
	}

	// Every byte of the tail scans at most once: the incremental scan
	// plus footer fast paths must not add up to re-reading the store.
	var onDisk int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".seg" {
			continue
		}
		st, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		onDisk += st.Size()
	}
	if scanned := r.tailScanned.Load(); scanned > onDisk {
		t.Fatalf("tail scans read %d bytes over a %d-byte store: not incremental", scanned, onDisk)
	}

	// Close transition: the poll that sees the final manifest flips
	// the reader out of live mode and serves the whole store.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	advanced, err := r.Poll()
	if err != nil {
		t.Fatalf("poll after close: %v", err)
	}
	if !advanced {
		t.Fatal("live -> closed transition not reported as an advance")
	}
	if r.Live() {
		t.Fatal("follower still live after observing the final manifest")
	}
	diffSource(t, model, r)
	if r.Recovered() {
		t.Fatal("clean live run reported recovery")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("clean live run surfaced an error: %v", err)
	}

	// Poll on a closed reader is a no-op.
	if advanced, err := r.Poll(); err != nil || advanced {
		t.Fatalf("poll on closed reader = (%v, %v), want (false, nil)", advanced, err)
	}
}

// TestStoreLiveCrashMidChunk attaches a follower, then crashes the
// writer mid-chunk: the frontier must stop at the last CRC-valid
// prefix, never serve the torn record, and agree exactly with what a
// cold reopen recovers.
func TestStoreLiveCrashMidChunk(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewCompactSized(0, 64)
	c.SetSpill(w)
	model := ddg.NewFull()
	appendPhase(singleTID{c}, model, 1, 1, 200)
	c.Flush()

	r, err := Open(dir, ReaderOptions{Follow: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Poll(); err != nil {
		t.Fatal(err)
	}
	if _, hi := r.Window(0); hi != 200 {
		t.Fatalf("frontier %d before crash, want 200", hi)
	}

	// More records land intact...
	appendPhase(singleTID{c}, model, 1, 201, 350)
	c.Flush()
	// ...then the writer "crashes" mid-append: a torn record — a
	// plausible length varint and half a payload, no CRC — lands on
	// the open tail, exactly what a power cut mid-write leaves.
	tail := filepath.Join(dir, "t0-0.seg")
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{0xC8, 0x01}, make([]byte, 100)...) // plen=200, 100 bytes present
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	advanced, err := r.Poll()
	if err != nil {
		t.Fatalf("poll over torn tail: %v", err)
	}
	if !advanced {
		t.Fatal("intact records behind the torn one not picked up")
	}
	if _, hi := r.Window(0); hi != 350 {
		t.Fatalf("frontier %d after torn tail, want 350 (every intact record, nothing torn)", hi)
	}
	if !r.Live() {
		t.Fatal("crashed-but-unclosed store must still read as live")
	}
	live := recordedIDs(r)

	// A second poll must not advance (the torn record never heals)
	// and must keep the frontier pinned.
	if advanced, err := r.Poll(); err != nil || advanced {
		t.Fatalf("poll on a dead tail = (%v, %v), want (false, nil)", advanced, err)
	}

	// Cold reopen recovers exactly the follower's frontier.
	cold, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	if _, hi := cold.Window(0); hi != 350 {
		t.Fatalf("cold reopen recovered to %d, want 350", hi)
	}
	coldIDs := recordedIDs(cold)
	if len(coldIDs) != len(live) {
		t.Fatalf("live frontier has %d records, cold reopen %d", len(live), len(coldIDs))
	}
	for id, deps := range live {
		if coldIDs[id] != deps {
			t.Fatalf("record %v differs between live follower and cold reopen:\nlive %s\ncold %s", id, deps, coldIDs[id])
		}
	}
	if !cold.Recovered() {
		t.Fatal("cold reopen of a crashed store not reported as recovery")
	}
	_ = w.Close() // release fds for tempdir cleanup
}

// TestReaderTransientChunkReadRetried pins the negative-cache fix: a
// chunk load that fails with a short read (transient truncation, NFS
// blip, or a racing tail) must be retried on the next access, not
// negative-cached forever. Before the fix the second query returned
// nothing: the first failure poisoned the cache for the reader's
// lifetime.
func TestReaderTransientChunkReadRetried(t *testing.T) {
	dir := t.TempDir()
	spillAll(t, dir, Options{SegmentBytes: 1 << 20}, 1, 200, 64)

	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Threads() // load the index while the file is intact

	path, metas := lastSegment(t, dir)
	last := metas[len(metas)-1]
	victim := ddg.MakeID(0, last.lastN)

	// Cut the file mid-way through the last chunk's payload, keeping
	// the original bytes to "heal" the fault afterwards.
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := last.off + int64(uvarintLen(uint64(last.plen))) + int64(last.plen)/2
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	if deps := ddg.CountDeps(r, victim); len(deps) != 0 {
		t.Fatalf("torn chunk served %d deps", len(deps))
	}
	if !r.Recovered() {
		t.Fatal("short chunk read not reported as recovery")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("short read surfaced as an I/O error: %v", err)
	}

	// Fault heals: the very next access must retry the load and serve
	// the chunk.
	if err := os.WriteFile(path, intact, 0o644); err != nil {
		t.Fatal(err)
	}
	if deps := ddg.CountDeps(r, victim); len(deps) == 0 {
		t.Fatal("healed chunk still served as a hole: transient failure was negative-cached")
	}
}

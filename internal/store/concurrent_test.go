package store

import (
	"fmt"
	"sync"
	"testing"

	"scaldift/internal/ddg"
	"scaldift/internal/ontrac"
	"scaldift/internal/prog"
	"scaldift/internal/slicing"
)

// TestConcurrentReaderStress hammers ONE reopened store with many
// simultaneous slice queries — the query service's steady state. The
// reader's chunk cache is kept tiny so goroutines constantly miss,
// evict, and race on the same chunks, exercising the
// decode-outside-the-lock path; every query's result is held to the
// sequentially computed expectation. Run under -race by the CI test
// job.
func TestConcurrentReaderStress(t *testing.T) {
	w := prog.PSum(4, 2000, 7)
	_, r := runSpilled(t, w, ontrac.Unoptimized(), 1)
	sopts := slicing.Options{FollowControl: true}

	// Sequential ground truth per thread, computed before the storm.
	type expectation struct {
		tid      int
		crit     slicing.Criterion
		start    ddg.ID
		backward *slicing.Slice
		forward  *slicing.Slice
	}
	var exps []expectation
	for _, tid := range r.Threads() {
		lo, hi := r.Window(tid)
		if lo == 0 {
			continue
		}
		pc, ok := r.NodePC(ddg.MakeID(tid, hi))
		if !ok {
			pc = -1
		}
		e := expectation{
			tid:   tid,
			crit:  slicing.Criterion{ID: ddg.MakeID(tid, hi), PC: pc},
			start: ddg.MakeID(tid, lo),
		}
		e.backward = slicing.Backward(r, w.Prog, []slicing.Criterion{e.crit}, sopts)
		e.forward = slicing.Forward(r, w.Prog, []ddg.ID{e.start}, sopts)
		exps = append(exps, e)
	}
	if len(exps) < 2 {
		t.Fatal("need a multi-thread trace for a meaningful stress test")
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		gi := gi
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi, e := range exps {
				check := func(kind string, got *slicing.Slice, want *slicing.Slice) bool {
					if fmt.Sprint(got.Lines) != fmt.Sprint(want.Lines) ||
						got.Nodes != want.Nodes || got.Edges != want.Edges {
						errc <- fmt.Errorf("g%d tid %d: concurrent %s diverged: %d/%d nodes, %d/%d edges",
							gi, e.tid, kind, got.Nodes, want.Nodes, got.Edges, want.Edges)
						return false
					}
					return true
				}
				// Rotate query shapes so sequential, parallel, and
				// budgeted traversals overlap on the same chunks.
				switch (gi + qi) % 4 {
				case 0:
					if !check("Backward", slicing.Backward(r, w.Prog, []slicing.Criterion{e.crit}, sopts), e.backward) {
						return
					}
				case 1:
					if !check("ParallelBackward", slicing.ParallelBackward(r, w.Prog, []slicing.Criterion{e.crit}, sopts, 4), e.backward) {
						return
					}
				case 2:
					if !check("ParallelForward", slicing.ParallelForward(r, w.Prog, []ddg.ID{e.start}, sopts, 4), e.forward) {
						return
					}
				case 3:
					// A roomy budget must not change results; its
					// accounting races with every other query here.
					b := NewBudget(1 << 20)
					if !check("budgeted Backward", slicing.Backward(r.Budgeted(b), w.Prog, []slicing.Criterion{e.crit}, sopts), e.backward) {
						return
					}
					if b.Exhausted() {
						errc <- fmt.Errorf("g%d: roomy budget reported exhausted", gi)
						return
					}
				}
			}
			// One starved query per goroutine: budget accounting under
			// contention, result discarded (a tiny budget makes the
			// slice an under-approximation by design).
			b := NewBudget(1)
			sl := slicing.Backward(r.Budgeted(b), w.Prog, []slicing.Criterion{exps[0].crit}, sopts)
			if sl.Nodes > exps[0].backward.Nodes {
				errc <- fmt.Errorf("g%d: budgeted slice larger than unbudgeted", gi)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader surfaced I/O error under concurrency: %v", err)
	}
}

// TestBudgetExhaustion pins the budget contract on a cold reader:
// a one-load budget cuts the traversal short and latches Exhausted;
// an unlimited budget (and a nil one) reproduces the full slice.
func TestBudgetExhaustion(t *testing.T) {
	w := prog.Compress(1500, 1)
	_, r := runSpilled(t, w, ontrac.Unoptimized(), 0)
	tid := r.Threads()[0]
	_, hi := r.Window(tid)
	pc, _ := r.NodePC(ddg.MakeID(tid, hi))
	crits := []slicing.Criterion{{ID: ddg.MakeID(tid, hi), PC: pc}}
	sopts := slicing.Options{FollowControl: true}
	full := slicing.Backward(r, w.Prog, crits, sopts)
	if r.Chunks() < 3 {
		t.Fatalf("trace too small (%d chunks) to exhaust a budget", r.Chunks())
	}

	// Cold reader so cache hits cannot mask the budget.
	r2, err := Open(r.dir, ReaderOptions{CacheChunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBudget(1)
	starved := slicing.Backward(r2.Budgeted(b), w.Prog, crits, sopts)
	if !b.Exhausted() {
		t.Fatal("one-load budget never exhausted")
	}
	if starved.Nodes >= full.Nodes {
		t.Fatalf("starved slice visited %d nodes, full %d", starved.Nodes, full.Nodes)
	}

	unlimited := NewBudget(0)
	again := slicing.Backward(r2.Budgeted(unlimited), w.Prog, crits, sopts)
	if fmt.Sprint(again.Lines) != fmt.Sprint(full.Lines) || again.Nodes != full.Nodes || again.Edges != full.Edges {
		t.Fatal("unlimited budget diverged from direct reader")
	}
	if unlimited.Exhausted() {
		t.Fatal("unlimited budget reported exhausted")
	}
	if unlimited.ChunkLoads() == 0 {
		t.Fatal("unlimited budget counted no loads")
	}
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"scaldift/internal/ddg"
)

// appendSynthetic writes a deterministic multi-thread dependence
// stream into dst and returns a Full graph model of it.
func appendSynthetic(dst interface {
	Append(use ddg.ID, usePC int32, deps []ddg.Dep, rlDelta uint64)
}, threads, perThread int) *ddg.Full {
	model := ddg.NewFull()
	appendPhase(dst, model, threads, 1, uint64(perThread))
	return model
}

// appendPhase extends the synthetic stream by instances [lo,hi] per
// thread, growing model to match, so a live writer can land the same
// stream appendSynthetic produces in stages.
func appendPhase(dst interface {
	Append(use ddg.ID, usePC int32, deps []ddg.Dep, rlDelta uint64)
}, model *ddg.Full, threads int, lo, hi uint64) {
	for tid := 0; tid < threads; tid++ {
		for n := lo; n <= hi; n++ {
			use := ddg.MakeID(tid, n)
			pc := int32((n % 97) + 1)
			var deps []ddg.Dep
			if n > 1 {
				deps = append(deps, ddg.Dep{Use: use, UsePC: pc,
					Def: ddg.MakeID(tid, n-1), DefPC: pc - 1, Kind: ddg.Data})
			}
			if n > 5 && n%7 == 0 {
				deps = append(deps, ddg.Dep{Use: use, UsePC: pc,
					Def: ddg.MakeID((tid+1)%threads, n-5), DefPC: 3, Kind: ddg.Data})
			}
			if n > 2 && n%5 == 0 {
				deps = append(deps, ddg.Dep{Use: use, UsePC: pc,
					Def: ddg.MakeID(tid, n-2), DefPC: pc - 2, Kind: ddg.Control})
			}
			model.AddNode(use, pc)
			for _, d := range deps {
				model.AddDep(d)
			}
			dst.Append(use, pc, deps, 0)
		}
	}
}

// diffSource asserts got serves exactly the deps/NodePC the model
// has, over the model's full windows.
func diffSource(t *testing.T, model *ddg.Full, got ddg.Source) {
	t.Helper()
	if fmt.Sprint(model.Threads()) != fmt.Sprint(got.Threads()) {
		t.Fatalf("threads: model %v, got %v", model.Threads(), got.Threads())
	}
	for _, tid := range model.Threads() {
		mlo, mhi := model.Window(tid)
		for n := mlo; n <= mhi; n++ {
			id := ddg.MakeID(tid, n)
			want := ddg.CountDeps(model, id)
			have := ddg.CountDeps(got, id)
			if fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", have) {
				t.Fatalf("deps of %v:\nmodel %+v\ngot   %+v", id, want, have)
			}
			// NodePC: recorded nodes only (nodes with stored deps).
			if len(want) > 0 {
				gpc, ok := got.NodePC(id)
				if !ok || gpc != want[0].UsePC {
					t.Fatalf("NodePC of %v = (%d,%v), want %d", id, gpc, ok, want[0].UsePC)
				}
			}
		}
	}
}

func spillAll(t *testing.T, dir string, opts Options, threads, perThread, chunkSize int) *ddg.Full {
	t.Helper()
	opts.Dir = dir
	w, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewShardedSized(0, chunkSize)
	c.SetSpill(w)
	model := appendSynthetic(c, threads, perThread)
	c.Flush()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.ChunksSpilled() == 0 || w.BytesSpilled() == 0 {
		t.Fatal("nothing spilled")
	}
	if got := c.SpilledChunks(); got != w.ChunksSpilled() {
		t.Fatalf("spill accounting: shards %d, writer %d", got, w.ChunksSpilled())
	}
	return model
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	model := spillAll(t, dir, Options{SegmentBytes: 2048}, 3, 400, 256)
	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	diffSource(t, model, r)
	if r.Recovered() {
		t.Fatal("clean store reported recovery")
	}
	for _, tid := range model.Threads() {
		mlo, mhi := model.Window(tid)
		lo, hi := r.Window(tid)
		if lo != mlo || hi != mhi {
			t.Fatalf("tid %d window [%d,%d], want [%d,%d]", tid, lo, hi, mlo, mhi)
		}
	}
}

func TestStoreRoundTripAsync(t *testing.T) {
	dir := t.TempDir()
	model := spillAll(t, dir, Options{SegmentBytes: 4096, Async: true, QueueDepth: 4}, 4, 300, 128)
	r, err := Open(dir, ReaderOptions{CacheChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	diffSource(t, model, r)
}

// TestStoreSmallCache forces heavy cache churn: correctness must not
// depend on the decoded working set fitting the cache.
func TestStoreSmallCache(t *testing.T) {
	dir := t.TempDir()
	model := spillAll(t, dir, Options{SegmentBytes: 1024}, 2, 600, 64)
	r, err := Open(dir, ReaderOptions{CacheChunks: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	diffSource(t, model, r)
}

// TestStoreSegmentRollover checks that multiple sealed segments per
// thread appear and reload in order.
func TestStoreSegmentRollover(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentBytes: 512}
	w, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewCompactSized(0, 64)
	c.SetSpill(w)
	model := appendSynthetic(singleTID{c}, 1, 2000)
	c.Flush()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.SegmentsSealed() < 3 {
		t.Fatalf("expected several sealed segments, got %d", w.SegmentsSealed())
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !man.Closed {
		t.Fatal("closed store's manifest not marked closed")
	}
	var lastSeq uint64
	for i, ms := range man.Segments {
		if !ms.Sealed {
			t.Fatalf("segment %d not sealed after Close", i)
		}
		if i > 0 && ms.FirstSeq <= lastSeq {
			t.Fatalf("global append order broken at segment %d", i)
		}
		lastSeq = ms.LastSeq
	}
	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	diffSource(t, model, r)
}

// singleTID adapts a lone Compact to the Append interface used by
// appendSynthetic (threads=1 only).
type singleTID struct{ c *ddg.Compact }

func (s singleTID) Append(use ddg.ID, usePC int32, deps []ddg.Dep, rl uint64) {
	s.c.Append(use, usePC, deps, rl)
}

// TestStoreEvictionLosesNothing: a capped in-memory ring over a
// spilling store evicts from memory but the reopened store serves the
// whole history — the lossy window becomes a cache bound.
func TestStoreEvictionLosesNothing(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewCompactSized(4*1024, 256) // tiny ring
	c.SetSpill(w)
	model := appendSynthetic(singleTID{c}, 1, 5000)
	c.Flush()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if c.EvictedChunks() == 0 {
		t.Fatal("ring never evicted — test is vacuous")
	}
	lo, _ := c.Window(0)
	if lo <= 1 {
		t.Fatal("memory window should have lost the oldest records")
	}
	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	diffSource(t, model, r) // includes records the ring dropped
}

func TestOpenMissingManifest(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), ReaderOptions{}); err == nil {
		t.Fatal("expected error opening a non-store directory")
	}
}

// TestSpillAfterCloseDropped: a chunk spilled after Close must be
// silently dropped in both modes — never a panic (async used to send
// on a closed channel), never a partial write.
func TestSpillAfterCloseDropped(t *testing.T) {
	for _, async := range []bool{false, true} {
		dir := t.TempDir()
		w, err := Create(Options{Dir: dir, Async: async})
		if err != nil {
			t.Fatal(err)
		}
		c := ddg.NewCompactSized(0, 64)
		c.SetSpill(w)
		appendSynthetic(singleTID{c}, 1, 50)
		c.Flush()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		before := w.ChunksSpilled()
		c.Append(ddg.MakeID(0, 1000), 3,
			[]ddg.Dep{{Use: ddg.MakeID(0, 1000), UsePC: 3, Def: ddg.MakeID(1, 9), DefPC: 2, Kind: ddg.Data}}, 0)
		c.Flush() // seals + spills into the closed writer
		if err := w.Close(); err != nil {
			t.Fatalf("async=%v: second Close: %v", async, err)
		}
		if got := w.ChunksSpilled(); got != before {
			t.Fatalf("async=%v: late chunk written after Close (%d -> %d)", async, before, got)
		}
	}
}

// TestCreateScrubsManifestTemps: Create over a reused directory must
// remove orphaned manifest temp files from a crashed atomic rewrite.
func TestCreateScrubsManifestTemps(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, manifestName+".tmp123")
	if err := os.WriteFile(orphan, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Create(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned manifest temp file survived Create")
	}
}

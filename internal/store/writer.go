package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"scaldift/internal/ddg"
)

// Options shapes a Writer.
type Options struct {
	// Dir is the store directory (created if missing).
	Dir string
	// SegmentBytes seals a segment once its chunk records reach this
	// size; <= 0 selects the 1MB default.
	SegmentBytes int
	// Async moves file I/O onto a dedicated writer goroutine:
	// SpillChunk only enqueues, so recording throughput is not gated
	// on the disk. Close drains the queue.
	Async bool
	// QueueDepth bounds the async queue (default 256 chunks).
	QueueDepth int
	// SyncOnSeal fsyncs a segment before the manifest marks it
	// sealed, making sealed data crash-durable at the cost of
	// throughput.
	SyncOnSeal bool
	// Retain bounds on-disk history. After every seal (and once more
	// at Close) the writer deletes aged-out or over-budget sealed
	// segments, records the trimmed per-thread windows in the
	// manifest, and bumps the generation — slicers then report
	// truncation at the trimmed edge exactly like the old in-memory
	// ring did at its window edge. The zero value retains everything.
	Retain Retention
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
}

// Writer spills sealed compact chunks into per-thread segment files
// under one directory. It implements ddg.ChunkSink and is safe for
// concurrent SpillChunk calls (the offloaded stage's per-thread
// append workers all feed one Writer). I/O errors are sticky: the
// first one stops further writes and surfaces from Err and Close.
type Writer struct {
	opts Options

	mu       sync.Mutex
	segs     map[int]*openSeg
	segCount map[int]int // per-tid segment name counter
	man      manifest
	gseq     uint64
	chunks   uint64
	bytes    uint64 // chunk payload bytes spilled
	sealed   uint64 // segments sealed
	trimmed  uint64 // segments deleted by retention
	now      func() time.Time
	err      error
	closed   bool

	// Async plumbing. sendMu (not mu) guards the in-channel lifecycle:
	// senders hold it shared around the send, Close takes it exclusive
	// after setting closing, so a late SpillChunk degrades to the sync
	// path's silent no-op instead of panicking on a closed channel.
	// The writer goroutine never touches sendMu, so a sender blocked
	// on a full queue always drains.
	sendMu  sync.RWMutex
	closing bool
	in      chan ddg.RawChunk
	done    chan struct{}
}

// openSeg is one thread's active segment file.
type openSeg struct {
	tid    int
	file   string // basename
	f      *os.File
	size   int64 // bytes written so far
	index  []chunkMeta
	manIdx int // index of this segment's manifest entry
	buf    []byte
}

// Create opens (or creates) the store directory and returns a writer.
// An existing store in the directory is replaced: stale segment files
// and manifest are removed so the new run's manifest never references
// another run's segments.
func Create(opts Options) (*Writer, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		// Manifest, orphaned manifest temp files from a crashed
		// atomic rewrite, and segment files.
		if strings.HasPrefix(name, manifestName) || filepath.Ext(name) == ".seg" {
			if err := os.Remove(filepath.Join(opts.Dir, name)); err != nil {
				return nil, err
			}
		}
	}
	w := &Writer{
		opts:     opts,
		segs:     make(map[int]*openSeg),
		segCount: make(map[int]int),
		man:      manifest{Header: manifestHeader, Version: manifestVersion},
		now:      time.Now,
	}
	if err := writeManifest(opts.Dir, &w.man); err != nil {
		return nil, err
	}
	if opts.Async {
		w.in = make(chan ddg.RawChunk, opts.QueueDepth)
		w.done = make(chan struct{})
		go func() {
			for ch := range w.in {
				w.mu.Lock()
				w.spill(ch)
				w.mu.Unlock()
			}
			close(w.done)
		}()
	}
	return w, nil
}

// SpillChunk implements ddg.ChunkSink. Safe for concurrent use; in
// async mode it only enqueues. The chunk's Buf must be immutable
// (sealed Compact chunks are). Chunks spilled after Close are
// dropped.
func (w *Writer) SpillChunk(ch ddg.RawChunk) {
	if w.in != nil {
		w.sendMu.RLock()
		if !w.closing {
			w.in <- ch
		}
		w.sendMu.RUnlock()
		return
	}
	w.mu.Lock()
	w.spill(ch)
	w.mu.Unlock()
}

// spill writes one chunk record (w.mu held).
func (w *Writer) spill(ch ddg.RawChunk) {
	if w.err != nil || w.closed {
		return
	}
	seg, err := w.segFor(ch.TID)
	if err != nil {
		w.err = err
		return
	}
	rec, plen := appendChunkRecord(seg.buf[:0], w.gseq, ch)
	seg.buf = rec[:0]
	if _, err := seg.f.Write(rec); err != nil {
		w.err = err
		return
	}
	seg.index = append(seg.index, chunkMeta{
		off:   seg.size,
		plen:  plen,
		gseq:  w.gseq,
		baseN: ch.BaseN,
		lastN: ch.LastN,
		count: ch.Count,
	})
	seg.size += int64(len(rec))
	w.gseq++
	w.chunks++
	w.bytes += uint64(len(ch.Buf))
	if seg.size >= int64(w.opts.SegmentBytes) {
		w.sealSeg(seg, true)
	}
}

// segFor returns tid's active segment, creating its file and
// in-memory manifest entry on first use (w.mu held). The manifest is
// written at Create, on each seal, and at Close — but not per chunk
// or per segment creation: a crashed run's unsealed tail files are
// discovered by the reader's directory scan, so crash safety never
// depends on a per-append manifest rewrite.
func (w *Writer) segFor(tid int) (*openSeg, error) {
	if seg, ok := w.segs[tid]; ok {
		return seg, nil
	}
	name := fmt.Sprintf("t%d-%d.seg", tid, w.segCount[tid])
	w.segCount[tid]++
	f, err := os.OpenFile(filepath.Join(w.opts.Dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if w.opts.SyncOnSeal {
		// Make the new directory entry durable, so a sealed-and-synced
		// segment cannot vanish with its directory entry on power loss.
		if err := syncDir(w.opts.Dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	hdr := segHeader(tid)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	seg := &openSeg{tid: tid, file: name, f: f, size: int64(len(hdr)), manIdx: len(w.man.Segments)}
	w.man.Segments = append(w.man.Segments, manifestSeg{File: name, TID: tid})
	w.segs[tid] = seg
	return seg, nil
}

// sealSeg writes the footer, optionally fsyncs, closes the file, and
// marks the in-memory manifest entry sealed (w.mu held). With
// publish, the manifest is rewritten under a bumped generation so
// live followers learn of the sealed segment without waiting for
// Close; Close passes false and publishes once for all its seals.
// Errors are sticky.
func (w *Writer) sealSeg(seg *openSeg, publish bool) {
	ftr := appendFooter(nil, seg.index)
	if _, err := seg.f.Write(ftr); err != nil {
		w.err = err
		return
	}
	if w.opts.SyncOnSeal {
		if err := seg.f.Sync(); err != nil {
			w.err = err
			return
		}
	}
	if err := seg.f.Close(); err != nil {
		w.err = err
		return
	}
	m := &w.man.Segments[seg.manIdx]
	m.Sealed = true
	m.Chunks = len(seg.index)
	m.Bytes = seg.size + int64(len(ftr))
	m.SealedAt = w.now().Unix()
	if n := len(seg.index); n > 0 {
		m.BaseN = seg.index[0].baseN
		m.LastN = seg.index[n-1].lastN
		m.FirstSeq = seg.index[0].gseq
		m.LastSeq = seg.index[n-1].gseq
	}
	delete(w.segs, seg.tid)
	w.sealed++
	if publish {
		// Retention runs at seal granularity: the manifest rewrite
		// below journals the trim (victims gone from Segments, Trimmed
		// updated) before any file is unlinked, Sia persist style.
		victims := w.retainLocked()
		// Mid-run manifests list sealed segments only, so "listed"
		// always implies "footer present": open tails stay unlisted
		// until their own seal (a follower finds them by directory
		// scan, exactly like crash recovery does).
		w.man.Generation++
		pub := w.man
		pub.Segments = make([]manifestSeg, 0, len(w.man.Segments))
		for _, ms := range w.man.Segments {
			if ms.Sealed {
				pub.Segments = append(pub.Segments, ms)
			}
		}
		if err := writeManifest(w.opts.Dir, &pub); err != nil {
			w.err = err
			return
		}
		w.unlinkLocked(victims)
	}
}

// retainLocked plans and applies Options.Retain against the in-memory
// manifest (w.mu held). It only mutates metadata; the caller must
// rewrite the manifest before passing the returned victims to
// unlinkLocked. Open segments' manifest indexes are re-pointed after
// the segment list compacts.
func (w *Writer) retainLocked() []manifestSeg {
	victims := planTrim(&w.man, w.opts.Retain, w.now())
	if len(victims) == 0 {
		return nil
	}
	removed := applyTrim(&w.man, victims)
	for i := range w.man.Segments {
		if seg, ok := w.segs[w.man.Segments[i].TID]; ok && seg.file == w.man.Segments[i].File {
			seg.manIdx = i
		}
	}
	return removed
}

// unlinkLocked deletes trimmed segment files after their removal has
// been journaled in the manifest (w.mu held — the unlinks are cheap
// and ordering them inside the lock keeps trim atomic with respect to
// a concurrent Close).
func (w *Writer) unlinkLocked(victims []manifestSeg) {
	if len(victims) == 0 {
		return
	}
	unlinkTrimmed(w.opts.Dir, victims, w.opts.Retain.Pins)
	w.trimmed += uint64(len(victims))
}

// syncDir fsyncs a directory, making renames and entry creations in
// it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Close drains the async queue, seals every open segment, and writes
// the final manifest. Idempotent; returns the first sticky error.
func (w *Writer) Close() error {
	if w.in != nil {
		w.sendMu.Lock()
		already := w.closing
		w.closing = true
		w.sendMu.Unlock()
		if !already {
			close(w.in)
		}
		<-w.done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	for _, seg := range w.segs {
		if w.err != nil {
			seg.f.Close() //scaldift:ignore lockio Close is the cold shutdown path; w.mu guards it against concurrent Append teardown
			continue
		}
		w.sealSeg(seg, false)
	}
	w.segs = nil
	w.closed = true
	if w.err == nil {
		victims := w.retainLocked()
		w.man.Closed = true
		w.man.Generation++
		w.err = writeManifest(w.opts.Dir, &w.man)
		if w.err == nil && w.opts.SyncOnSeal {
			w.err = syncDir(w.opts.Dir)
		}
		if w.err == nil {
			w.unlinkLocked(victims)
		}
	}
	return w.err
}

// Err returns the sticky I/O error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// ChunksSpilled returns the number of chunk records written.
func (w *Writer) ChunksSpilled() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.chunks
}

// BytesSpilled returns the cumulative raw chunk bytes written
// (excluding framing), comparable to Compact.BytesWritten.
func (w *Writer) BytesSpilled() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// SegmentsSealed returns the number of sealed segment files.
func (w *Writer) SegmentsSealed() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sealed
}

// SegmentsTrimmed returns the number of segment files retention has
// deleted.
func (w *Writer) SegmentsTrimmed() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.trimmed
}

var _ ddg.ChunkSink = (*Writer)(nil)

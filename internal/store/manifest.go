package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// manifestSeg is one segment's manifest entry. Entries are appended
// in segment-creation order; FirstSeq/LastSeq record where the
// segment's chunks sit in the store's global append order. The sizing
// fields are written at seal time and are zero while Sealed is false
// (a reader learns an unsealed segment's contents by scanning it).
type manifestSeg struct {
	File     string `json:"file"`
	TID      int    `json:"tid"`
	Sealed   bool   `json:"sealed"`
	Chunks   int    `json:"chunks"`
	BaseN    uint64 `json:"base_n"`
	LastN    uint64 `json:"last_n"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	Bytes    int64  `json:"bytes"`
	// SealedAt is the seal wall-clock time (unix seconds); age-based
	// retention keys off it. Zero on unsealed entries and on stores
	// written before retention existed (which MaxAge then never trims).
	SealedAt int64 `json:"sealed_at,omitempty"`
}

// manifestTrim records, per thread, what retention has deleted: every
// segment file with seq < MinSeq is gone (readers must not adopt a
// stray with a smaller seq — it is a crash orphan awaiting unlink),
// and every instance below Lo may be gone (slicers report hitting Lo
// exactly like the old ring's window edge). Chunks/Bytes accumulate
// across trims for observability.
type manifestTrim struct {
	TID    int    `json:"tid"`
	MinSeq int    `json:"min_seq"`
	Lo     uint64 `json:"lo"`
	Chunks int    `json:"chunks"`
	Bytes  int64  `json:"bytes"`
}

// manifest is the store's root metadata document, in the
// header/version-guarded style of Sia's persist layer.
type manifest struct {
	Header  string `json:"header"`
	Version string `json:"version"`
	Closed  bool   `json:"closed"`
	// Generation counts manifest rewrites: 0 at Create, bumped on
	// every seal and at Close. A follower compares generations to
	// detect structural change (new or sealed segments) without
	// diffing the segment list.
	Generation uint64        `json:"generation,omitempty"`
	Segments   []manifestSeg `json:"segments"`
	// Trimmed holds the per-thread retention records, sorted by TID.
	// Generation is bumped on every trim, so a follower that sees the
	// same generation may assume Trimmed is unchanged too.
	Trimmed []manifestTrim `json:"trimmed,omitempty"`
}

// writeManifest atomically replaces dir's manifest (temp file +
// rename), so a crash mid-update leaves the previous manifest intact.
func writeManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, manifestName+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, manifestName))
}

// IsClosed reports whether dir holds a trace store whose writer
// closed cleanly (final manifest written). A missing or foreign
// manifest returns ok=false with a nil error — "not a closed store
// here" is an answer, not a failure — so pollers can cheaply skip
// directories still being written.
func IsClosed(dir string) (closed bool, err error) {
	_, closed, err = Status(dir)
	return closed, err
}

// Status reports whether dir holds a trace store at all (a valid
// manifest exists) and, if so, whether its writer has closed. The
// distinction lets a live-following registry tell "still recording"
// (isStore, !closed) apart from "not a store here" (!isStore); a
// missing or foreign manifest is the latter, not a failure.
func Status(dir string) (isStore, closed bool, err error) {
	m, err := readManifest(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, false, nil
		}
		// Corrupt or foreign manifests are "not a store", but surface
		// genuine I/O problems (permissions etc).
		var perr *os.PathError
		if errors.As(err, &perr) {
			return false, false, err
		}
		return false, false, nil
	}
	return true, m.Closed, nil
}

// readManifest loads and validates dir's manifest.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt manifest: %w", err)
	}
	if m.Header != manifestHeader {
		return nil, fmt.Errorf("store: wrong manifest header %q", m.Header)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: unsupported manifest version %q", m.Version)
	}
	return &m, nil
}

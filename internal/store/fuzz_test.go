package store

import (
	"fmt"
	"testing"

	"scaldift/internal/ddg"
)

// FuzzCompactRoundTrip drives arbitrary append streams through
// Compact → seal → spill → Writer → reopen, holding the reopened
// store to a Full-graph model of exactly what was appended: Threads,
// Window, NodePC, and every record's dependence list byte-for-byte
// (same order, same fields). Chunk and segment geometry come from the
// fuzzer too, so seams land everywhere.
func FuzzCompactRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(16), uint16(128))
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x41, 0x41, 0x41, 0x41}, uint8(1), uint16(1))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(200), uint16(4096))

	f.Fuzz(func(t *testing.T, data []byte, chunkSize uint8, segBytes uint16) {
		dir := t.TempDir()
		w, err := Create(Options{Dir: dir, SegmentBytes: int(segBytes)})
		if err != nil {
			t.Fatal(err)
		}
		shards := ddg.NewShardedSized(0, int(chunkSize))
		shards.SetSpill(w)
		model := ddg.NewFull()

		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		var counts [3]uint64 // per-tid instance counters (Full is dense)
		for pos < len(data) {
			tid := int(next() % 3)
			counts[tid]++
			n := counts[tid]
			use := ddg.MakeID(tid, n)
			usePC := int32(next()%251) + 1

			// Up to 7 data deps (the record flag field's limit), at
			// most one control dep, sometimes a redundant-load delta.
			var deps []ddg.Dep
			nData := int(next() % 8)
			for i := 0; i < nData; i++ {
				sel := next()
				var def ddg.ID
				if sel%2 == 0 && n > 1 {
					delta := 1 + uint64(next())%(n-1)
					def = ddg.MakeID(tid, n-delta)
				} else {
					def = ddg.MakeID(int(sel%3), 1+uint64(next()))
				}
				deps = append(deps, ddg.Dep{Use: use, UsePC: usePC,
					Def: def, DefPC: int32(next()%249) + 1, Kind: ddg.Data})
			}
			if next()%4 == 0 && n > 1 {
				delta := 1 + uint64(next())%(n-1)
				deps = append(deps, ddg.Dep{Use: use, UsePC: usePC,
					Def: ddg.MakeID(tid, n-delta), DefPC: int32(next()%249) + 1, Kind: ddg.Control})
			}
			var rlDelta uint64
			if next()%5 == 0 && n > 1 {
				rlDelta = 1 + uint64(next())%(n-1)
			}
			// Every node enters the model (Full is dense); only nodes
			// with a record enter the compact stream, like the tracer.
			model.AddNode(use, usePC)
			if len(deps) == 0 && rlDelta == 0 {
				continue
			}

			shards.Append(use, usePC, deps, rlDelta)
			// The model stores what decode must yield: data deps in
			// order, then the control dep, then the SameAs marker.
			for _, d := range deps {
				if d.Kind == ddg.Data {
					model.AddDep(d)
				}
			}
			for _, d := range deps {
				if d.Kind == ddg.Control {
					model.AddDep(d)
				}
			}
			if rlDelta != 0 {
				model.AddDep(ddg.Dep{Use: use, UsePC: usePC,
					Def: ddg.MakeID(tid, n-rlDelta), DefPC: usePC, Kind: ddg.SameAs})
			}
		}
		shards.Flush()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := Open(dir, ReaderOptions{CacheChunks: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if r.Recovered() {
			t.Fatal("clean store reported recovery")
		}

		// The store records only nodes with deps (the tracer's
		// contract), so its thread set is a subset of the model's and
		// its per-thread window must span exactly the recorded range.
		modelTids := make(map[int]bool)
		for _, tid := range model.Threads() {
			modelTids[tid] = true
		}
		for _, tid := range r.Threads() {
			if !modelTids[tid] {
				t.Fatalf("store invented thread %d", tid)
			}
		}
		for _, tid := range model.Threads() {
			mlo, mhi := model.Window(tid)
			var wantLo, wantHi uint64 // recorded range in the model
			for n := mlo; n <= mhi; n++ {
				if len(ddg.CountDeps(model, ddg.MakeID(tid, n))) > 0 {
					if wantLo == 0 {
						wantLo = n
					}
					wantHi = n
				}
			}
			slo, shi := r.Window(tid)
			if slo != wantLo || shi != wantHi {
				t.Fatalf("tid %d: store window [%d,%d], recorded range [%d,%d]",
					tid, slo, shi, wantLo, wantHi)
			}
			for n := mlo; n <= mhi; n++ {
				id := ddg.MakeID(tid, n)
				want := ddg.CountDeps(model, id)
				got := ddg.CountDeps(r, id)
				if len(want) == 0 {
					if len(got) != 0 {
						t.Fatalf("store invented deps for %v: %+v", id, got)
					}
					continue
				}
				if fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", got) {
					t.Fatalf("deps of %v:\nmodel %+v\nstore %+v", id, want, got)
				}
				pc, ok := r.NodePC(id)
				if !ok || pc != want[0].UsePC {
					t.Fatalf("NodePC of %v = (%d,%v), want %d", id, pc, ok, want[0].UsePC)
				}
			}
		}
	})
}

package store

import (
	"fmt"
	"testing"

	"scaldift/internal/ddg"
	"scaldift/internal/ontrac"
	"scaldift/internal/pipeline"
	"scaldift/internal/prog"
	"scaldift/internal/slicing"
)

// The on-disk differential suite: every prog.All() workload × 4
// randomized schedules, traced through the offloaded stage while
// spilling to a store, then REOPENED FROM DISK and held to the
// in-memory results — identical windows, identical backward and
// forward slices, over both the raw sources and the reconstructing
// ontrac readers, sequential and parallel.

const diffSchedules = 4

func runSpilled(t *testing.T, w *prog.Workload, opts ontrac.Options, seed uint64) (*ontrac.Offloaded, *Reader) {
	t.Helper()
	w.Cfg.Seed = seed
	w.Cfg.RandomPreempt = true
	if w.Cfg.Quantum == 0 {
		w.Cfg.Quantum = 11
	}
	dir := t.TempDir()
	// Async + small segments: exercise the writer goroutine and
	// multi-segment layout on every workload.
	wr, err := Create(Options{Dir: dir, SegmentBytes: 8 << 10, Async: true, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	m := w.NewMachine()
	off := ontrac.NewOffloaded(w.Prog, opts, pipeline.Options{Workers: 1 + int(seed)%4})
	off.SpillTo(wr)
	if res := ontrac.Trace(m, off); res.Failed {
		t.Fatalf("seed %d: run failed: %s", seed, res.FailMsg)
	}
	if err := wr.Close(); err != nil {
		t.Fatalf("seed %d: writer close: %v", seed, err)
	}
	if off.Shards().SpilledChunks() != wr.ChunksSpilled() {
		t.Fatalf("seed %d: %d chunks sealed, %d written", seed,
			off.Shards().SpilledChunks(), wr.ChunksSpilled())
	}
	r, err := Open(dir, ReaderOptions{CacheChunks: 4})
	if err != nil {
		t.Fatalf("seed %d: reopen: %v", seed, err)
	}
	t.Cleanup(func() { r.Close() })
	return off, r
}

// diffSlices compares backward and forward slices between an
// in-memory source and its on-disk reopen, both raw and through the
// reconstructing readers, and holds ParallelBackward over the store
// to the sequential result.
func diffSlices(t *testing.T, seed uint64, w *prog.Workload, opts ontrac.Options, off *ontrac.Offloaded, r *Reader) {
	t.Helper()
	mem := off.Shards()
	memR, diskR := off.Reader(), off.ReaderOver(r)
	if fmt.Sprint(mem.Threads()) != fmt.Sprint(r.Threads()) {
		t.Fatalf("seed %d: threads diverged: mem %v, disk %v", seed, mem.Threads(), r.Threads())
	}
	sopts := slicing.Options{FollowControl: opts.ControlDeps}
	sliceLines := 0
	for _, tid := range mem.Threads() {
		mlo, mhi := mem.Window(tid)
		dlo, dhi := r.Window(tid)
		if mlo != dlo || mhi != dhi {
			t.Fatalf("seed %d tid %d: windows diverged: mem [%d,%d], disk [%d,%d]",
				seed, tid, mlo, mhi, dlo, dhi)
		}
		crit := ddg.MakeID(tid, mhi)
		pcM, okM := mem.NodePC(crit)
		pcD, okD := r.NodePC(crit)
		if okM != okD || pcM != pcD {
			t.Fatalf("seed %d tid %d: NodePC diverged: (%d,%v) vs (%d,%v)",
				seed, tid, pcM, okM, pcD, okD)
		}
		if !okM {
			pcM, pcD = -1, -1
		}

		// Raw backward slices (no reconstruction).
		bm := slicing.Backward(mem, w.Prog, []slicing.Criterion{{ID: crit, PC: pcM}}, sopts)
		bd := slicing.Backward(r, w.Prog, []slicing.Criterion{{ID: crit, PC: pcD}}, sopts)
		if fmt.Sprint(bm.Lines) != fmt.Sprint(bd.Lines) || bm.Nodes != bd.Nodes || bm.Edges != bd.Edges {
			t.Fatalf("seed %d tid %d: raw backward diverged:\nmem  %v (%d/%d)\ndisk %v (%d/%d)",
				seed, tid, bm.Lines, bm.Nodes, bm.Edges, bd.Lines, bd.Nodes, bd.Edges)
		}

		// Reconstructing backward slices (O1/O2 edges re-synthesized
		// over the on-disk records).
		rm := slicing.Backward(memR, w.Prog, []slicing.Criterion{{ID: crit, PC: pcM}}, sopts)
		rd := slicing.Backward(diskR, w.Prog, []slicing.Criterion{{ID: crit, PC: pcD}}, sopts)
		if fmt.Sprint(rm.Lines) != fmt.Sprint(rd.Lines) || rm.Nodes != rd.Nodes || rm.Edges != rd.Edges {
			t.Fatalf("seed %d tid %d: reconstructed backward diverged:\nmem  %v\ndisk %v",
				seed, tid, rm.Lines, rd.Lines)
		}
		sliceLines += len(rd.Lines)

		// The parallel traversal over the on-disk store must agree
		// with the sequential one. Raw source only: O2 reconstruction
		// can attach different PC hints to a node depending on which
		// edge discovers it first, so hinted traversals are only
		// order-stable for exact sources.
		pd := slicing.ParallelBackward(r, w.Prog, []slicing.Criterion{{ID: crit, PC: pcD}}, sopts, 4)
		if fmt.Sprint(pd.Lines) != fmt.Sprint(bd.Lines) || pd.Nodes != bd.Nodes || pd.Edges != bd.Edges {
			t.Fatalf("seed %d tid %d: ParallelBackward diverged from Backward over the store",
				seed, tid)
		}

		// Forward slices over the raw sources.
		start := []ddg.ID{ddg.MakeID(tid, 1)}
		fm := slicing.Forward(mem, w.Prog, start, sopts)
		fd := slicing.Forward(r, w.Prog, start, sopts)
		if fmt.Sprint(fm.Lines) != fmt.Sprint(fd.Lines) {
			t.Fatalf("seed %d tid %d: forward diverged:\nmem  %v\ndisk %v",
				seed, tid, fm.Lines, fd.Lines)
		}
		sliceLines += len(fd.Lines)
	}
	if len(mem.Threads()) > 0 && sliceLines == 0 {
		t.Fatalf("seed %d: every slice came back empty — vacuous comparison", seed)
	}
}

func TestStoreDifferentialAllWorkloads(t *testing.T) {
	opts := ontrac.AllOptimizations()
	opts.BufferBytes = 0 // memory reference must be unbounded
	for _, w := range prog.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for seed := uint64(0); seed < diffSchedules; seed++ {
				off, r := runSpilled(t, w, opts, seed)
				diffSlices(t, seed, w, opts, off, r)
			}
		})
	}
}

// TestStoreDifferentialUnoptimized repeats the check with every
// dependence stored, so the on-disk records carry the whole graph
// with no reconstruction masking encoding bugs.
func TestStoreDifferentialUnoptimized(t *testing.T) {
	for _, w := range []*prog.Workload{prog.Compress(200, 1), prog.MatMul(5, 3)} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for seed := uint64(0); seed < diffSchedules; seed++ {
				off, r := runSpilled(t, w, ontrac.Unoptimized(), seed)
				diffSlices(t, seed, w, ontrac.Unoptimized(), off, r)
			}
		})
	}
}

// TestStoreBeyondMemoryCap is the whole-execution payoff: a run whose
// trace exceeds the in-memory cap rings in memory (backward slices
// truncate at the window) while the store retains everything — the
// reopened slice is identical to an unbounded in-memory run's and is
// NOT truncated.
func TestStoreBeyondMemoryCap(t *testing.T) {
	mk := func() *prog.Workload { return prog.Compress(3000, 1) }
	opts := ontrac.Unoptimized() // store everything: maximum pressure

	// Reference: unbounded inline tracer.
	ref := mk()
	mRef := ref.NewMachine()
	trRef := ontrac.New(ref.Prog, opts)
	mRef.AttachTool(trRef.Tool())
	if res := mRef.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}

	// Capped inline tracer, spilling to a store.
	capped := mk()
	cOpts := opts
	cOpts.BufferBytes = 8 << 10 // far below the trace size
	dir := t.TempDir()
	wr, err := Create(Options{Dir: dir, SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	mCap := capped.NewMachine()
	trCap := ontrac.New(capped.Prog, cOpts)
	trCap.Buffer().SetSpill(wr)
	mCap.AttachTool(trCap.Tool())
	if res := mCap.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	trCap.Buffer().Flush()
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	if trCap.Buffer().EvictedChunks() == 0 {
		t.Fatal("cap never evicted — raise the workload size")
	}

	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Same deterministic schedule → same trace: windows must agree
	// between the unbounded memory run and the capped run's store.
	lo, hi := trRef.Buffer().Window(0)
	slo, shi := r.Window(0)
	if lo != slo || hi != shi {
		t.Fatalf("windows: unbounded mem [%d,%d], reopened store [%d,%d]", lo, hi, slo, shi)
	}
	mlo, _ := trCap.Buffer().Window(0)
	if mlo <= lo {
		t.Fatal("capped memory window should have lost the oldest records")
	}

	crit := ddg.MakeID(0, hi)
	pc, ok := trRef.Buffer().NodePC(crit)
	if !ok {
		t.Fatal("no record at window top")
	}
	crits := []slicing.Criterion{{ID: crit, PC: pc}}
	sopts := slicing.Options{FollowControl: true}

	// Note: even an unbounded Compact reports TruncatedAtWindow when
	// an edge points below the first RECORDED instance (defs that
	// stored no record), so the flag is compared, not asserted off.
	want := slicing.Backward(trRef.Buffer(), ref.Prog, crits, sopts)
	gotMem := slicing.Backward(trCap.Buffer(), capped.Prog, crits, sopts)
	gotDisk := slicing.Backward(r, capped.Prog, crits, sopts)
	if fmt.Sprint(want.Lines) != fmt.Sprint(gotDisk.Lines) ||
		want.Nodes != gotDisk.Nodes || want.Edges != gotDisk.Edges ||
		want.TruncatedAtWindow != gotDisk.TruncatedAtWindow {
		t.Fatalf("whole-execution slice diverged:\nunbounded mem %v (%d/%d)\nreopened disk %v (%d/%d)",
			want.Lines, want.Nodes, want.Edges, gotDisk.Lines, gotDisk.Nodes, gotDisk.Edges)
	}
	// The ring-bounded traversal must have been cut short: history
	// the ring dropped is sliceable only through the store.
	if gotMem.Nodes >= want.Nodes {
		t.Fatalf("truncated slice visited %d nodes, whole-execution %d", gotMem.Nodes, want.Nodes)
	}
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"scaldift/internal/ddg"
)

// Crash-safety: a segment truncated mid-chunk (power cut, partial
// flush) must not error or serve garbage — the reader recovers every
// earlier segment in full plus the valid chunk prefix of the damaged
// one, and reports recovery.

// lastSegment returns the path of the manifest's last segment and
// that segment's indexed chunks.
func lastSegment(t *testing.T, dir string) (string, []chunkMeta) {
	t.Helper()
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) == 0 {
		t.Fatal("no segments")
	}
	ms := man.Segments[len(man.Segments)-1]
	path := filepath.Join(dir, ms.File)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	metas, ok := readFooterIndex(f)
	if !ok {
		t.Fatalf("segment %s has no valid footer before the test truncates it", ms.File)
	}
	return path, metas
}

// recordedIDs lists every (id, deps) the source serves inside its
// windows, sorted for comparison.
func recordedIDs(src ddg.Source) map[ddg.ID]string {
	out := make(map[ddg.ID]string)
	for _, tid := range src.Threads() {
		lo, hi := src.Window(tid)
		for n := lo; n <= hi && lo != 0; n++ {
			id := ddg.MakeID(tid, n)
			if deps := ddg.CountDeps(src, id); len(deps) > 0 {
				out[id] = fmt.Sprintf("%+v", deps)
			}
		}
	}
	return out
}

func TestStoreCrashTruncatedMidChunk(t *testing.T) {
	dir := t.TempDir()
	spillAll(t, dir, Options{SegmentBytes: 1024}, 2, 800, 128)

	// Intact baseline.
	r0, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := recordedIDs(r0)
	r0.Close()

	// Truncate the last segment mid-chunk: keep the header and the
	// first chunk record, cut into the middle of the second.
	path, metas := lastSegment(t, dir)
	if len(metas) < 2 {
		t.Skip("last segment too small to cut mid-chunk")
	}
	cut := metas[1].off + int64(uvarintLen(uint64(metas[1].plen))) + int64(metas[1].plen)/2
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatalf("reopen after truncation must not error: %v", err)
	}
	defer r.Close()
	after := recordedIDs(r)
	if !r.Recovered() {
		t.Fatal("truncation not reported as recovery")
	}

	// The survivors must be a strict prefix of the intact store: no
	// invented records, no altered deps, and exactly the damaged
	// segment's tail missing.
	if len(after) >= len(before) {
		t.Fatalf("nothing lost? before %d, after %d", len(before), len(after))
	}
	for id, deps := range after {
		if before[id] != deps {
			t.Fatalf("record %v changed after truncation:\nbefore %s\nafter  %s", id, before[id], deps)
		}
	}
	// Lost records are only the truncated thread's newest: every
	// other thread is complete.
	var lost []ddg.ID
	for id := range before {
		if _, ok := after[id]; !ok {
			lost = append(lost, id)
		}
	}
	lostTID := lost[0].TID()
	var lostNs []uint64
	for _, id := range lost {
		if id.TID() != lostTID {
			t.Fatalf("records lost across threads: %v", lost)
		}
		lostNs = append(lostNs, id.N())
	}
	sort.Slice(lostNs, func(i, j int) bool { return lostNs[i] < lostNs[j] })
	_, hiAfter := r.Window(lostTID)
	if lostNs[0] <= hiAfter {
		t.Fatalf("lost instance %d inside the recovered window (hi %d)", lostNs[0], hiAfter)
	}
}

// TestStoreCrashTruncatedFooter cuts a sealed segment inside its
// footer: the chunk records are all intact, so the fallback scan must
// recover every one of them.
func TestStoreCrashTruncatedFooter(t *testing.T) {
	dir := t.TempDir()
	spillAll(t, dir, Options{SegmentBytes: 1024}, 1, 500, 128)

	r0, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := recordedIDs(r0)
	r0.Close()

	path, _ := lastSegment(t, dir)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-10); err != nil { // into the footer magic
		t.Fatal(err)
	}

	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatalf("reopen after footer loss must not error: %v", err)
	}
	defer r.Close()
	after := recordedIDs(r)
	if !r.Recovered() { // recovery is detected on (lazy) index load
		t.Fatal("footer loss not reported as recovery")
	}
	if len(after) != len(before) {
		t.Fatalf("footer-only damage lost records: before %d, after %d", len(before), len(after))
	}
	for id, deps := range after {
		if before[id] != deps {
			t.Fatalf("record %v changed: %s vs %s", id, before[id], deps)
		}
	}
}

// hugeVarint is an all-set 10-byte uvarint (~2^64): the worst-case
// corrupt length field, which used to overflow the reader's bounds
// arithmetic into a slice panic.
var hugeVarint = []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}

// overwriteAt patches raw bytes into a file.
func overwriteAt(t *testing.T, path string, off int64, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// TestStoreCrashCorruptChunkLength: a chunk record whose length
// varint rots to ~2^64 in a footer-less segment must end the prefix
// scan as damage — not panic with slice bounds out of range.
func TestStoreCrashCorruptChunkLength(t *testing.T) {
	dir := t.TempDir()
	spillAll(t, dir, Options{SegmentBytes: 1024}, 1, 800, 128)
	path, metas := lastSegment(t, dir)
	if len(metas) < 2 {
		t.Fatal("segment too small for the scenario")
	}
	// Drop the footer (forcing the scan path), then rot the second
	// chunk's length varint.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-10); err != nil {
		t.Fatal(err)
	}
	overwriteAt(t, path, metas[1].off, hugeVarint)

	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatalf("reopen must not error: %v", err)
	}
	defer r.Close()
	got := recordedIDs(r) // would panic before the bounds check
	if !r.Recovered() {
		t.Fatal("corruption not reported as recovery")
	}
	if len(got) == 0 {
		t.Fatal("valid prefix not served")
	}
}

// TestStoreCrashCorruptFooterLength: a sealed segment whose footer
// length varint rots (trailing magic intact) must fall back to the
// prefix scan — the chunk records are untouched, so recovery is
// total.
func TestStoreCrashCorruptFooterLength(t *testing.T) {
	dir := t.TempDir()
	spillAll(t, dir, Options{SegmentBytes: 1024}, 1, 500, 128)

	r0, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := recordedIDs(r0)
	r0.Close()

	path, _ := lastSegment(t, dir)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Trailer: ... | crc32 | uint32 total | 8-byte magic. Rot the
	// flen varint just after the footer's 0x00 sentinel.
	var tail [12]byte
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(tail[:], st.Size()-12); err != nil {
		t.Fatal(err)
	}
	f.Close()
	total := int64(tail[0]) | int64(tail[1])<<8 | int64(tail[2])<<16 | int64(tail[3])<<24
	blockStart := st.Size() - total
	overwriteAt(t, path, blockStart+1, hugeVarint)

	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatalf("reopen must not error: %v", err)
	}
	defer r.Close()
	after := recordedIDs(r) // would panic before the bounds check
	if !r.Recovered() {
		t.Fatal("footer corruption not reported as recovery")
	}
	if len(after) != len(before) {
		t.Fatalf("scan fallback lost records: %d -> %d", len(before), len(after))
	}
}

// TestStoreCrashWriterNeverClosed models a hard crash: chunks were
// spilled but Close never ran. The mid-run manifest lists sealed
// segments (each seal publishes it) but not the open tails, which
// also never got their footers. The reader must discover those tail
// files by directory scan and serve every spilled chunk.
func TestStoreCrashWriterNeverClosed(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewShardedSized(0, 128)
	c.SetSpill(w)
	model := appendSynthetic(c, 2, 600)
	c.Flush()
	// No w.Close(): the manifest must not claim a clean shutdown, and
	// the open tail segments are not yet listed.
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Closed {
		t.Fatalf("manifest closed mid-run: %+v", man)
	}
	for _, ms := range man.Segments {
		if !ms.Sealed {
			t.Fatalf("mid-run manifest lists unsealed segment %q", ms.File)
		}
	}

	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatalf("reopen of a crashed store must not error: %v", err)
	}
	defer r.Close()
	diffSource(t, model, r)
	if !r.Recovered() {
		t.Fatal("stray segments not reported as recovery")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("crash damage must not surface as an I/O error: %v", err)
	}
	_ = w.Close() // release the writer's fds for the tempdir cleanup
}

// TestStoreCrashMissingSegment deletes one thread's only segment
// entirely: the other threads stay readable.
func TestStoreCrashMissingSegment(t *testing.T) {
	dir := t.TempDir()
	spillAll(t, dir, Options{SegmentBytes: 1 << 20}, 2, 200, 128)
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := man.Segments[0]
	if err := os.Remove(filepath.Join(dir, victim.File)); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, ReaderOptions{})
	if err != nil {
		t.Fatalf("reopen with a missing segment must not error: %v", err)
	}
	defer r.Close()
	survivors := recordedIDs(r)
	if len(survivors) == 0 {
		t.Fatal("everything lost with one missing segment")
	}
	for id := range survivors {
		if id.TID() == victim.TID {
			t.Fatalf("victim thread %d still has records", victim.TID)
		}
	}
	if !r.Recovered() {
		t.Fatal("missing segment not reported as recovery")
	}
}

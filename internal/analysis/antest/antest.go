// Package antest is a miniature analysistest: it loads a fixture
// package from a testdata tree, type-checks it offline (fixture-local
// imports resolve inside testdata/src, standard-library imports
// compile from GOROOT source), runs one analyzer through the full
// driver — directive suppression included — and matches diagnostics
// against `// want "regexp"` comments in the fixtures.
package antest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"scaldift/internal/analysis"
)

// srcImporter compiles stdlib packages from GOROOT source; it needs no
// export data and no network, but is slow, so it is shared and cached
// across all fixture tests in the process.
var (
	srcOnce sync.Once
	srcFset *token.FileSet
	srcImp  types.Importer
)

func stdlibImporter() (*token.FileSet, types.Importer) {
	srcOnce.Do(func() {
		srcFset = token.NewFileSet()
		srcImp = importer.ForCompiler(srcFset, "source", nil)
	})
	return srcFset, srcImp
}

// fixtureImporter resolves fixture-local import paths (bare names like
// "ddg" or "vm") from the testdata src root first, then falls back to
// the stdlib source importer.
type fixtureImporter struct {
	srcroot string
	fset    *token.FileSet
	std     types.Importer
	loaded  map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.loaded[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.srcroot, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, _, _, err := loadDir(fi.fset, dir, path, fi)
		if err != nil {
			return nil, fmt.Errorf("fixture import %q: %w", path, err)
		}
		fi.loaded[path] = pkg
		return pkg, nil
	}
	return fi.std.Import(path)
}

// loadDir parses and type-checks every .go file in dir as one package.
func loadDir(fset *token.FileSet, dir, path string, imp types.Importer) (*types.Package, []*ast.File, *types.Info, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, ent.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}

var wantRe = regexp.MustCompile(`// want (".*")\s*$`)

// expectation is one `// want "re"` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads testdata/src/<pkgpath>, runs the analyzer over it via the
// full driver (so ignore directives and staleness checks behave as in
// production), and asserts that diagnostics and `// want` expectations
// match one-to-one.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	stdFset, std := stdlibImporter()
	_ = stdFset // stdlib packages live in their own fset; positions unused here

	fset := token.NewFileSet()
	srcroot := filepath.Join(testdata, "src")
	fi := &fixtureImporter{srcroot: srcroot, fset: fset, std: std, loaded: map[string]*types.Package{}}
	dir := filepath.Join(srcroot, pkgpath)
	pkg, files, info, err := loadDir(fset, dir, pkgpath, fi)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}

	wants := collectWants(t, fset, files)
	diags := analysis.RunPackage(fset, files, pkg, info, []*analysis.Analyzer{a})

	var unexpected []string
	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != p.Filename || w.line != p.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, fmt.Sprintf("%s:%d: [%s] %s", filepath.Base(p.Filename), p.Line, d.Analyzer, d.Message))
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Errorf("unexpected diagnostic: %s", u)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// collectWants extracts `// want "re"` expectations from fixture
// comments. A want trailing other content (code, or another directive
// in the same comment) applies to its own line; a pure want comment
// alone on its line applies to the line below it — the only way to
// attach an expectation to a line that is itself a comment, e.g. a
// malformed //scaldift:ignore.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	lineCache := map[string][]string{}
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				var pat string
				if _, err := fmt.Sscanf(m[1], "%q", &pat); err != nil {
					t.Fatalf("bad want pattern %s: %v", m[1], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", pat, err)
				}
				p := fset.Position(c.Pos())
				line := p.Line
				if strings.HasPrefix(c.Text, "// want") && standsAlone(t, lineCache, p) {
					line++
				}
				wants = append(wants, &expectation{file: p.Filename, line: line, re: re})
			}
		}
	}
	return wants
}

// standsAlone reports whether only whitespace precedes position p on
// its source line.
func standsAlone(t *testing.T, cache map[string][]string, p token.Position) bool {
	t.Helper()
	lines, ok := cache[p.Filename]
	if !ok {
		data, err := os.ReadFile(p.Filename)
		if err != nil {
			t.Fatalf("rereading fixture %s: %v", p.Filename, err)
		}
		lines = strings.Split(string(data), "\n")
		cache[p.Filename] = lines
	}
	if p.Line-1 >= len(lines) || p.Column-1 > len(lines[p.Line-1]) {
		return false
	}
	return strings.TrimSpace(lines[p.Line-1][:p.Column-1]) == ""
}

package analysis

import (
	"go/ast"
	"strings"
)

// StickyErr pins the PR 7 negative-cache rule: only errors classified
// as structural damage (errors.Is(err, errDamage)) may be recorded in
// the store's negative chunk cache. Caching a transient failure — a
// short read racing an in-flight append, a temporary open error —
// makes the chunk permanently invisible to that reader even after the
// writer completes it, which is exactly the bug the transient/damage
// split was introduced to fix.
//
// Statically enforced shapes, in any package that uses the store's
// naming (putNegative / cachePut / a `cache` field):
//
//  1. Every call to putNegative or cacheNegative must be dominated by
//     a damage check: either the call sits in the then-branch of
//     `if errors.Is(err, errDamage)` (or the else-branch of the
//     negated test), or an earlier statement in the same block returns
//     when the error is NOT damage.
//  2. cachePut must never be called with a literal nil deps value —
//     the negative entry is putNegative's business, where rule 1
//     applies.
//  3. `x.cache[...] = nil` outside putNegative is a hand-rolled
//     negative entry that bypasses the classification; use putNegative.
var StickyErr = &Analyzer{
	Name: "stickyerr",
	Doc:  "restricts the store's negative chunk cache to errDamage-classified errors",
	Run:  runStickyErr,
}

func runStickyErr(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			se := &stickyErr{pass: pass, fn: fd.Name.Name}
			se.block(fd.Body, false)
		}
	}
}

type stickyErr struct {
	pass *Pass
	fn   string
}

// block scans a statement list. guarded reports whether every path
// into this block established errors.Is(err, errDamage).
func (se *stickyErr) block(b *ast.BlockStmt, guarded bool) {
	g := guarded
	for _, s := range b.List {
		se.stmt(s, g)
		// An early `if !errors.Is(err, errDamage) { ... return/continue }`
		// guards everything after it in this block.
		if ifs, ok := s.(*ast.IfStmt); ok && se.negDamageCond(ifs.Cond) && terminates(ifs.Body) {
			g = true
		}
	}
}

func (se *stickyErr) stmt(s ast.Stmt, guarded bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		se.block(s, guarded)
	case *ast.IfStmt:
		se.block(s.Body, guarded || se.posDamageCond(s.Cond))
		switch els := s.Else.(type) {
		case *ast.BlockStmt:
			se.block(els, guarded || se.negDamageCond(s.Cond))
		case *ast.IfStmt:
			se.stmt(els, guarded)
		}
	case *ast.ForStmt:
		se.block(s.Body, guarded)
	case *ast.RangeStmt:
		se.block(s.Body, guarded)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					se.stmt(cs, guarded)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					se.stmt(cs, guarded)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, cs := range cc.Body {
					se.stmt(cs, guarded)
				}
			}
		}
	case *ast.LabeledStmt:
		se.stmt(s.Stmt, guarded)
	default:
		se.exprs(s, guarded)
	}
}

// exprs checks the calls and assignments inside one simple statement.
func (se *stickyErr) exprs(s ast.Stmt, guarded bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			se.checkCall(n, guarded)
		case *ast.AssignStmt:
			se.checkAssign(n)
		}
		return true
	})
}

func (se *stickyErr) checkCall(call *ast.CallExpr, guarded bool) {
	name := calleeName(call)
	switch name {
	case "putNegative", "cacheNegative":
		if !guarded {
			se.pass.Reportf(call.Pos(), "%s called without an errors.Is(err, errDamage) guard; transient errors must not be negative-cached", name)
		}
	case "cachePut":
		if se.fn == "putNegative" || se.fn == "cacheNegative" {
			return // putNegative IS the sanctioned nil writer
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && id.Name == "nil" {
				se.pass.Reportf(call.Pos(), "cachePut called with nil deps creates a negative entry outside putNegative; use putNegative so the errDamage classification applies")
			}
		}
	}
}

// checkAssign flags `x.cache[...] = nil` outside putNegative itself.
func (se *stickyErr) checkAssign(n *ast.AssignStmt) {
	if se.fn == "putNegative" || se.fn == "cacheNegative" {
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		rid, ok := ast.Unparen(n.Rhs[i]).(*ast.Ident)
		if !ok || rid.Name != "nil" {
			continue
		}
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "cache" {
			continue
		}
		se.pass.Reportf(lhs.Pos(), "nil stored directly into %s bypasses the errDamage classification; call putNegative instead", exprString(ix.X))
	}
}

// posDamageCond reports conditions that positively establish damage:
// errors.Is(err, errDamage), possibly &&-combined with others.
func (se *stickyErr) posDamageCond(cond ast.Expr) bool {
	cond = ast.Unparen(cond)
	if b, ok := cond.(*ast.BinaryExpr); ok && b.Op.String() == "&&" {
		return se.posDamageCond(b.X) || se.posDamageCond(b.Y)
	}
	return isDamageIsCall(cond)
}

// negDamageCond reports conditions of the form !errors.Is(err, errDamage).
func (se *stickyErr) negDamageCond(cond ast.Expr) bool {
	u, ok := ast.Unparen(cond).(*ast.UnaryExpr)
	if !ok || u.Op.String() != "!" {
		return false
	}
	return isDamageIsCall(ast.Unparen(u.X))
}

// isDamageIsCall matches errors.Is(_, errDamage) (second argument's
// printed form contains "errDamage" or "ErrDamage").
func isDamageIsCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Is" {
		return false
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); !ok || id.Name != "errors" {
		return false
	}
	target := exprString(call.Args[1])
	return strings.Contains(target, "errDamage") || strings.Contains(target, "ErrDamage")
}

// terminates reports whether a block's last statement leaves the
// enclosing flow: return, continue, break, goto, or panic.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// calleeName returns the bare called-function name for ident and
// selector callees.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

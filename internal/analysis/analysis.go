// Package analysis is the repo's project-specific static-analysis
// suite: a set of analyzers that machine-check the hard-won
// concurrency and I/O invariants this codebase keeps re-learning from
// bugs (pooled-event pointer retention in PR 3, chunk I/O under ts.mu
// in PR 5, negative-caching transient read errors in PR 7, the
// shadow.Epoch ownership-fence contract that replaced mutex sharding),
// plus the
// driver machinery to run them as a `go vet -vettool=` unitchecker
// (cmd/scaldiftvet) and as in-repo fixture tests (antest).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer owns a Run function over a type-checked Pass — but is
// built on the standard library alone (go/ast, go/types, go/importer)
// because this module is dependency-free by policy.
//
// # Directives
//
// Three comment directives steer the analyzers:
//
//	//scaldift:io
//	    In a function's doc comment: marks the function as performing
//	    file I/O or another operation too heavy to run under a mutex.
//	    lockio flags calls to tagged functions (and to a built-in set
//	    of os/io primitives) made while a sync.Mutex or sync.RWMutex
//	    is held.
//
//	//scaldift:pooled
//	    In a type declaration's doc comment: values of this type are
//	    recycled through a pool, so pointers into them must not
//	    outlive the processing callback. vm.Batch and vm.Event are
//	    pooled by definition (the recorder recycles batches).
//
//	//scaldift:ignore <analyzer> <reason>
//	    On the flagged line, or alone on the line directly above it:
//	    suppresses that analyzer's diagnostic there. The reason is
//	    mandatory, and the driver verifies every ignore still
//	    suppresses something — a stale ignore is itself a diagnostic,
//	    so the build fails until it is deleted.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	dirs   *directives
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// IsIOTagged reports whether the function object is declared in this
// package with a //scaldift:io directive on its declaration.
func (p *Pass) IsIOTagged(fn *types.Func) bool {
	if fn == nil || p.dirs == nil {
		return false
	}
	return p.dirs.ioFuncs[fn]
}

// IsPooledType reports whether the named type is pool-recycled: either
// declared in this package with //scaldift:pooled, or one of the
// built-in pooled types (vm.Batch, vm.Event — recycled by
// vm.Recorder's sync.Pool and the machine's reused inline event).
func (p *Pass) IsPooledType(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Name() == "vm" && (obj.Name() == "Batch" || obj.Name() == "Event") {
		return true
	}
	if p.dirs == nil {
		return false
	}
	return p.dirs.pooledTypes[obj.Name()] && obj.Pkg() == p.Pkg
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= 8 && name[len(name)-8:] == "_test.go"
}

package analysis

import (
	"go/ast"
	"go/types"
)

// PoolEscape generalizes the PR 3 pooled-batch retention bug: a value
// fetched from a sync.Pool, or a pointer into a pool-recycled type
// (vm.Batch, vm.Event, or any type tagged //scaldift:pooled), must
// not be stored anywhere that outlives the processing callback — a
// struct field, a package-level variable, a field-rooted container,
// or a channel. Once the batch returns to the pool, such a pointer
// silently watches its memory be overwritten by an unrelated event
// (the hazard TestSinkEventsSurvivePoolReuse pins at runtime; this
// check pins it at build time).
//
// The analysis is per function and flow-insensitive in the small:
//
//   - roots: results of (*sync.Pool).Get, plus any variable,
//     parameter, or range binding whose type is a pointer to (or
//     slice of pointers into) a pooled type;
//   - a "pooled pointer expression" is a root itself, &root.Field,
//     &root.Slice[i], or a selector of slice type rooted at one
//     (b.Events aliases the pooled batch's storage);
//   - locals that receive pooled pointers (by assignment, append, or
//     element store) become pooled-holding; storing a root, a pooled
//     pointer expression, or a pooled-holding local into a field,
//     global, field-rooted element, or channel is the violation.
//
// Passing pooled pointers DOWN (call arguments) is fine — the callee
// runs inside the batch's lifetime. Copying the pointed-to value
// (ev := *pev, rec.ev = *pev) is the sanctioned way to retain one.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "flags pool-recycled values (sync.Pool, vm.Batch/vm.Event, //scaldift:pooled) retained past their recycle",
	Run:  runPoolEscape,
}

func runPoolEscape(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var ftype *ast.FuncType
			switch n := n.(type) {
			case *ast.FuncDecl:
				body, ftype = n.Body, n.Type
			case *ast.FuncLit:
				body, ftype = n.Body, n.Type
			default:
				return true
			}
			if body != nil {
				pe := &poolEscape{pass: pass, pooled: map[types.Object]bool{}, holders: map[types.Object]bool{}}
				pe.scan(ftype, body)
			}
			return true // nested literals get their own (additional) scan
		})
	}
}

type poolEscape struct {
	pass    *Pass
	pooled  map[types.Object]bool // vars bound to pooled pointers/slices
	holders map[types.Object]bool // locals holding pooled pointers inside
}

// scan walks the function body in source order so taints are recorded
// before later statements use them.
func (pe *poolEscape) scan(ftype *ast.FuncType, body *ast.BlockStmt) {
	// Seed roots from the function scope (receiver and parameters of
	// pooled pointer/slice type); go/types records it at the FuncType.
	if scope, ok := pe.pass.TypesInfo.Scopes[ftype]; ok {
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if obj != nil && pe.pooledValueType(obj.Type()) {
				pe.pooled[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own unit
		case *ast.Ident:
			// Any local binding of pooled pointer/slice type is a root
			// regardless of provenance (:=, var, range): a *vm.Event is
			// treated as aliasing pooled storage wherever it came from.
			if obj := pe.pass.TypesInfo.Defs[n]; obj != nil && pe.pooledValueType(obj.Type()) {
				pe.pooled[obj] = true
			}
		case *ast.AssignStmt:
			pe.assign(n)
		case *ast.SendStmt:
			if pe.pooledPtr(n.Value) || pe.holderExpr(n.Value) {
				pe.pass.Reportf(n.Value.Pos(), "pooled value sent on a channel outlives its recycle; copy the value or hand off ownership explicitly")
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) && pe.taintSource(n.Values[i]) {
					if obj := pe.pass.TypesInfo.Defs[name]; obj != nil {
						pe.pooled[obj] = true
					}
				}
			}
		}
		return true
	})
}

func (pe *poolEscape) assign(n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break // x, y = f() — function results are not pooled exprs
		}
		rhs := n.Rhs[i]
		hazard := pe.pooledPtr(rhs) || pe.holderExpr(rhs) || pe.taintSource(rhs) ||
			pe.compositeHoldsPooled(rhs)
		if !hazard {
			continue
		}
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			obj := pe.pass.TypesInfo.Defs[lhs]
			if obj == nil {
				obj = pe.pass.TypesInfo.Uses[lhs]
			}
			if obj == nil {
				continue
			}
			if isPackageLevel(obj) {
				pe.pass.Reportf(rhs.Pos(), "pooled value stored in package-level variable %s outlives its recycle", lhs.Name)
				continue
			}
			// Local: remember that it now holds pooled pointers.
			if pe.taintSource(rhs) || pe.pooledValueType(obj.Type()) {
				pe.pooled[obj] = true
			} else {
				pe.holders[obj] = true
			}
		case *ast.SelectorExpr:
			if pe.rootPooled(lhs.X) {
				continue // storing into the pooled object itself is pool-internal
			}
			pe.pass.Reportf(rhs.Pos(), "pooled value stored in field %s outlives the batch's recycle; store a copy of the event instead of the pointer", exprString(lhs))
		case *ast.IndexExpr:
			// An element store into a plain local container taints the
			// container; into anything field- or global-rooted it escapes.
			if id := baseLocalIdent(lhs.X); id != nil {
				if obj := pe.pass.TypesInfo.Uses[id]; obj != nil && !isPackageLevel(obj) {
					if !pe.pooled[obj] {
						pe.holders[obj] = true
					}
					continue
				}
			}
			pe.pass.Reportf(rhs.Pos(), "pooled value stored in %s outlives the batch's recycle", exprString(lhs))
		case *ast.StarExpr:
			// *p = pooledptr — storing through a pointer whose target
			// is unknown; conservatively allow (copying *values* is the
			// common legitimate shape here).
		}
	}
}

// taintSource reports expressions that mint pooled values: a
// sync.Pool Get call (with or without a type assertion).
func (pe *poolEscape) taintSource(e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pe.pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Get" {
		return false
	}
	recv := recvType(fn)
	return recv != nil && isPkgType(recv, "sync", "Pool")
}

// pooledPtr reports whether e evaluates to a pointer into pooled
// storage: a pooled root, &root.Sel..., &root.Sel[i], or a selector
// of slice type rooted at one.
func (pe *poolEscape) pooledPtr(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return pe.rootPooled(e.X)
		}
	case *ast.Ident, *ast.SelectorExpr:
		if pe.rootPooled(e) {
			t := pe.pass.TypesInfo.Types[e].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Pointer, *types.Slice:
					return true
				}
			}
		}
	case *ast.SliceExpr:
		return pe.pooledPtr(e.X)
	case *ast.CallExpr:
		// append(x, pooled...) keeps the pooled pointers in the result.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			for _, arg := range e.Args {
				if pe.pooledPtr(arg) || pe.holderExpr(arg) || pe.compositeHoldsPooled(arg) {
					return true
				}
			}
		}
	}
	return false
}

// holderExpr reports whether e is (a slice of) a pooled-holding local.
func (pe *poolEscape) holderExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if se, ok := e.(*ast.SliceExpr); ok {
		return pe.holderExpr(se.X)
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			for _, arg := range call.Args {
				if pe.holderExpr(arg) || pe.pooledPtr(arg) {
					return true
				}
			}
		}
		return false
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pe.pass.TypesInfo.Uses[id]; obj != nil {
			return pe.holders[obj]
		}
	}
	return false
}

// compositeHoldsPooled reports composite literals embedding pooled
// pointers (T{ev: ptr}).
func (pe *poolEscape) compositeHoldsPooled(e ast.Expr) bool {
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range cl.Elts {
		v := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if pe.pooledPtr(v) || pe.holderExpr(v) {
			return true
		}
	}
	return false
}

// rootPooled walks selector/index chains to the base object and
// reports whether it is a pooled root.
func (pe *poolEscape) rootPooled(e ast.Expr) bool {
	obj := rootObj(pe.pass.TypesInfo, e)
	return obj != nil && pe.pooled[obj]
}

// baseLocalIdent unwraps index/slice/paren chains and returns the base
// identifier if the expression is rooted directly at one (m[k],
// m[i][j]); selector-rooted chains (s.m[k]) return nil.
func baseLocalIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// pooledValueType reports pointer-to-pooled and slice-of-pointer-to-
// pooled types (the shapes that alias pooled storage when copied).
func (pe *poolEscape) pooledValueType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch tt := t.Underlying().(type) {
	case *types.Pointer:
		return pe.pooledNamed(tt.Elem())
	case *types.Slice:
		if p, ok := tt.Elem().Underlying().(*types.Pointer); ok {
			return pe.pooledNamed(p.Elem())
		}
	}
	return false
}

func (pe *poolEscape) pooledNamed(t types.Type) bool {
	obj := namedObj(t)
	if obj == nil {
		return false
	}
	return pe.pass.IsPooledType(obj)
}

// rootObj resolves the base identifier of a selector/index/slice
// chain to its object.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isPackageLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

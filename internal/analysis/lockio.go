package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockIO codifies the PR 5 "decode outside ts.mu" rule: no file I/O,
// chunk decode, or //scaldift:io-tagged call may execute while a
// sync.Mutex or sync.RWMutex is held. The read path's locks cover
// index and cache state only; holding one across a disk read or chunk
// decode serializes every concurrent query touching that state behind
// the disk (the exact regression store.Reader.depsAt was rebuilt to
// avoid).
//
// The analysis is lexical per function: a region is "locked" between
// a `x.Lock()` / `x.RLock()` statement and the matching `x.Unlock()` /
// `x.RUnlock()` in the same block structure (a deferred unlock keeps
// the lock held to the end of the function). Branches see the held
// set of their entry point; lock state changed inside a nested block
// does not leak out of it, except at the top level of the function
// body where statements are sequential. Calls made by spawned
// goroutines (func literals) run without the caller's locks and are
// skipped. Cross-function lock holding (a helper called with a lock
// already held) is out of scope — tag the helper //scaldift:io so its
// call sites are checked instead.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "flags file I/O, chunk decode, and //scaldift:io calls made while a sync mutex is held",
	Run:  runLockIO,
}

func runLockIO(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lw := &lockWalker{pass: pass}
			lw.stmts(fd.Body.List, map[string]bool{})
		}
		// Function literals are their own analysis units, entered with
		// no locks held (goroutine bodies run without the spawner's
		// locks; the rare immediately-invoked closure under a lock is a
		// documented blind spot).
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
				lw := &lockWalker{pass: pass}
				lw.stmts(lit.Body.List, map[string]bool{})
			}
			return true
		})
	}
}

type lockWalker struct {
	pass *Pass
}

// stmts scans a statement sequence, threading the held-lock set
// through it. Nested blocks get a copy: a lock taken (or released)
// inside an if/for/switch arm is scoped to that arm.
func (lw *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		lw.stmt(s, held)
	}
}

func (lw *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if lock, name, ok := lw.lockOp(call); ok {
				if lock {
					held[name] = true
				} else {
					delete(held, name)
				}
				return
			}
		}
		lw.check(s, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the rest of the
		// function; the deferred call itself runs after the body, so
		// nothing inside it is checked against the current held set.
		if _, _, ok := lw.lockOp(s.Call); ok {
			return
		}
		for _, arg := range s.Call.Args {
			lw.checkExpr(arg, held)
		}
	case *ast.GoStmt:
		// The goroutine body runs without the caller's locks.
		for _, arg := range s.Call.Args {
			lw.checkExpr(arg, held)
		}
	case *ast.BlockStmt:
		lw.stmts(s.List, copyHeld(held))
	case *ast.IfStmt:
		if s.Init != nil {
			lw.stmt(s.Init, held)
		}
		lw.checkExpr(s.Cond, held)
		lw.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			lw.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lw.stmt(s.Init, held)
		}
		if s.Cond != nil {
			lw.checkExpr(s.Cond, held)
		}
		inner := copyHeld(held)
		if s.Post != nil {
			lw.stmt(s.Post, inner)
		}
		lw.stmts(s.Body.List, inner)
	case *ast.RangeStmt:
		lw.checkExpr(s.X, held)
		lw.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			lw.stmt(s.Init, held)
		}
		if s.Tag != nil {
			lw.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					lw.checkExpr(e, held)
				}
				lw.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lw.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lw.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lw.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		lw.stmt(s.Stmt, held)
	default:
		lw.check(s, held)
	}
}

// lockOp classifies a call as Lock/RLock (true) or Unlock/RUnlock
// (false) on a sync.Mutex or sync.RWMutex, returning the receiver's
// printed name as the lock identity.
func (lw *lockWalker) lockOp(call *ast.CallExpr) (lock bool, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return false, "", false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return false, "", false
	}
	recv := lw.pass.TypesInfo.Types[sel.X].Type
	if recv == nil {
		return false, "", false
	}
	if !isPkgType(recv, "sync", "Mutex") && !isPkgType(recv, "sync", "RWMutex") {
		return false, "", false
	}
	return method == "Lock" || method == "RLock", exprString(sel.X), true
}

// check scans a statement's expressions (skipping nested func
// literals) for I/O calls while locks are held.
func (lw *lockWalker) check(s ast.Stmt, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			lw.checkCall(n, held)
		}
		return true
	})
}

func (lw *lockWalker) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			lw.checkCall(n, held)
		}
		return true
	})
}

func (lw *lockWalker) checkCall(call *ast.CallExpr, held map[string]bool) {
	what, ok := lw.ioCall(call)
	if !ok {
		return
	}
	locks := make([]string, 0, len(held))
	for name := range held {
		locks = append(locks, name)
	}
	sortStrings(locks)
	lw.pass.Reportf(call.Pos(), "%s called while %s is held; do the I/O outside the lock (snapshot under the lock, load after unlocking)",
		what, strings.Join(locks, ", "))
}

// osIOFuncs is the built-in I/O set: package os functions that hit
// the filesystem.
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true, "ReadLink": true,
	"Stat": true, "Lstat": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Truncate": true, "Chmod": true, "Chtimes": true, "Symlink": true, "Link": true,
}

// fileIOMethods is the built-in I/O set on *os.File.
var fileIOMethods = map[string]bool{
	"Read": true, "ReadAt": true, "ReadFrom": true,
	"Write": true, "WriteAt": true, "WriteString": true, "WriteTo": true,
	"Seek": true, "Sync": true, "Stat": true, "Truncate": true, "Close": true,
}

// ioPkgFuncs is the built-in I/O set in package io.
var ioPkgFuncs = map[string]bool{
	"ReadAll": true, "ReadFull": true, "Copy": true, "CopyN": true,
	"CopyBuffer": true, "WriteString": true, "ReadAtLeast": true,
}

// ioCall reports whether the call is I/O-like: a built-in filesystem
// or stream primitive, a chunk decode, or a //scaldift:io-tagged
// function of this package.
func (lw *lockWalker) ioCall(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(lw.pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	if lw.pass.IsIOTagged(fn) {
		return fn.Name() + " (//scaldift:io)", true
	}
	pkg := fn.Pkg()
	recv := recvType(fn)
	switch {
	case pkg != nil && pkg.Name() == "os" && recv == nil && osIOFuncs[fn.Name()]:
		return "os." + fn.Name(), true
	case recv != nil && isPkgType(recv, "os", "File") && fileIOMethods[fn.Name()]:
		return "(*os.File)." + fn.Name(), true
	case pkg != nil && pkg.Name() == "io" && recv == nil && ioPkgFuncs[fn.Name()]:
		return "io." + fn.Name(), true
	case recv != nil && (isPkgType(recv, "bufio", "Reader") || isPkgType(recv, "bufio", "Writer")):
		return "bufio." + fn.Name(), true
	case recv != nil && isPkgType(recv, "ddg", "RawChunk") && fn.Name() == "Decode":
		return "ddg.RawChunk.Decode", true
	}
	return "", false
}

// recvType returns the method receiver type, or nil for plain funcs.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

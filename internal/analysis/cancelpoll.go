package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CancelPoll enforces the slicing package's cooperative-cancellation
// contract: every loop that traverses shards or dependency chains —
// anything whose per-iteration work is proportional to the trace, not
// to a fixed constant — must observe Options.Done. A traversal loop
// that never polls cancellation turns WithCancel/deadline slicing into
// a fiction: the caller's Done fires and the slicer keeps burning
// through millions of chunk rows anyway (the exact gap ParallelForward's
// merge phase shipped with).
//
// Heuristic, scoped to packages named "slicing" and non-test files: a
// loop "traverses" if its body (excluding nested func literals, which
// are their own analysis unit) calls a DepsOf/DepsOfHinted method or
// ranges over []ddg.Dep values. The enclosing function-like body must
// contain a cancellation observation: a doneFired(...) call, a read of
// a done/Done atomic (.Load() on an expression containing "done"), or
// a <-Done receive. The check is per enclosing function, not per loop
// nest, so a masked poll (donePollMask) hoisted out of the innermost
// loop still counts.
var CancelPoll = &Analyzer{
	Name: "cancelpoll",
	Doc:  "requires shard/chain traversal loops in internal/slicing to poll Options.Done cancellation",
	Run:  runCancelPoll,
}

func runCancelPoll(pass *Pass) {
	if pass.Pkg == nil || pass.Pkg.Name() != "slicing" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body == nil || pass.IsTestFile(body.Pos()) {
				return true
			}
			cp := &cancelPoll{pass: pass}
			cp.checkBody(body)
			return true
		})
	}
}

type cancelPoll struct {
	pass *Pass
}

// checkBody flags traversal loops in one function-like body that lacks
// any cancellation observation.
func (cp *cancelPoll) checkBody(body *ast.BlockStmt) {
	if cp.observesCancel(body) {
		return
	}
	inBody(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		var pos = n.Pos()
		switch n := n.(type) {
		case *ast.ForStmt:
			loopBody = n.Body
		case *ast.RangeStmt:
			loopBody = n.Body
			if cp.traversalRange(n) {
				cp.pass.Reportf(pos, "traversal loop does not poll cancellation; check Options.Done (doneFired or a done flag) each iteration")
				return true
			}
		default:
			return true
		}
		if cp.callsTraversal(loopBody) {
			cp.pass.Reportf(pos, "traversal loop does not poll cancellation; check Options.Done (doneFired or a done flag) each iteration")
		}
		return true
	})
}

// observesCancel reports whether the body (excluding nested func
// literals) reads cancellation state in any recognized form.
func (cp *cancelPoll) observesCancel(body *ast.BlockStmt) bool {
	found := false
	inBody(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if strings.EqualFold(fun.Name, "donefired") {
					found = true
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if strings.EqualFold(name, "donefired") {
					found = true
				}
				if name == "Load" && strings.Contains(strings.ToLower(exprString(fun.X)), "done") {
					found = true
				}
			}
		case *ast.UnaryExpr:
			// <-opts.Done / <-done
			if n.Op.String() == "<-" && strings.Contains(strings.ToLower(exprString(n.X)), "done") {
				found = true
			}
		}
		return true
	})
	return found
}

// traversalRange reports ranges over dependency data: []ddg.Dep, or a
// map whose values are []ddg.Dep.
func (cp *cancelPoll) traversalRange(n *ast.RangeStmt) bool {
	t := cp.pass.TypesInfo.Types[n.X].Type
	if t == nil {
		return false
	}
	return isDepSlice(t) || isDepValuedMap(t)
}

func isDepSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isPkgType(s.Elem(), "ddg", "Dep")
}

func isDepValuedMap(t types.Type) bool {
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	return isDepSlice(m.Elem())
}

// callsTraversal reports whether the loop body (excluding nested func
// literals) calls a chain-walking source method.
func (cp *cancelPoll) callsTraversal(body *ast.BlockStmt) bool {
	found := false
	inBody(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "DepsOf", "DepsOfHinted":
				found = true
			}
		}
		return true
	})
	return found
}

// inBody walks a block's statements, skipping nested func literals
// (they are analyzed as their own bodies).
func inBody(body *ast.BlockStmt, fn func(ast.Node) bool) {
	for _, s := range body.List {
		ast.Inspect(s, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			return fn(n)
		})
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ignoreDir is one //scaldift:ignore directive.
type ignoreDir struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

// directives indexes a package's scaldift comment directives.
type directives struct {
	ioFuncs     map[*types.Func]bool
	pooledTypes map[string]bool
	ignores     []*ignoreDir
	malformed   []Diagnostic
}

const (
	dirIgnore = "//scaldift:ignore"
	dirIO     = "//scaldift:io"
	dirPooled = "//scaldift:pooled"
)

// parseDirectives scans every comment in the package. Directive
// grammar errors (unknown directive, missing analyzer or reason) are
// collected as diagnostics of the pseudo-analyzer "directive" so they
// fail the vet gate like any other finding.
func parseDirectives(fset *token.FileSet, files []*ast.File, info *types.Info, known map[string]bool) *directives {
	d := &directives{
		ioFuncs:     make(map[*types.Func]bool),
		pooledTypes: make(map[string]bool),
	}
	bad := func(pos token.Pos, format string, args ...any) {
		d.malformed = append(d.malformed, Diagnostic{
			Pos: pos, Analyzer: "directive",
			Message: sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				switch {
				case strings.HasPrefix(text, dirIgnore):
					rest := strings.TrimPrefix(text, dirIgnore)
					if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
						// Some other token, e.g. //scaldift:ignored.
						bad(c.Pos(), "unknown scaldift directive %q", strings.Fields(text)[0])
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						bad(c.Pos(), "//scaldift:ignore needs an analyzer name and a reason")
						continue
					}
					name := fields[0]
					if !known[name] {
						bad(c.Pos(), "//scaldift:ignore names unknown analyzer %q", name)
						continue
					}
					if len(fields) < 2 {
						bad(c.Pos(), "//scaldift:ignore %s needs a reason", name)
						continue
					}
					p := fset.Position(c.Pos())
					d.ignores = append(d.ignores, &ignoreDir{
						pos: c.Pos(), file: p.Filename, line: p.Line,
						analyzer: name,
						reason:   strings.Join(fields[1:], " "),
					})
				case text == dirIO, text == dirPooled:
					// Validated against their attachment below.
				case strings.HasPrefix(text, "//scaldift:"):
					bad(c.Pos(), "unknown scaldift directive %q", strings.Fields(text)[0])
				}
			}
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if hasDirective(decl.Doc, dirIO) {
					if obj, ok := info.Defs[decl.Name].(*types.Func); ok {
						d.ioFuncs[obj] = true
					}
				}
			case *ast.GenDecl:
				pooledAll := hasDirective(decl.Doc, dirPooled)
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if pooledAll || hasDirective(ts.Doc, dirPooled) || hasDirective(ts.Comment, dirPooled) {
						d.pooledTypes[ts.Name.Name] = true
					}
				}
			}
		}
	}
	return d
}

func hasDirective(cg *ast.CommentGroup, dir string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == dir {
			return true
		}
	}
	return false
}

// suppressed reports whether an ignore directive covers the
// diagnostic: same analyzer, same file, and the directive sits on the
// diagnostic's line or alone on the line directly above it. A match
// marks the directive used.
func (d *directives) suppressed(fset *token.FileSet, diag Diagnostic) bool {
	if diag.Analyzer == "directive" {
		return false // the directive checks themselves cannot be ignored
	}
	p := fset.Position(diag.Pos)
	hit := false
	for _, ig := range d.ignores {
		if ig.analyzer != diag.Analyzer || ig.file != p.Filename {
			continue
		}
		if ig.line == p.Line || ig.line == p.Line-1 {
			ig.used = true
			hit = true
		}
	}
	return hit
}

// stale returns a diagnostic for every ignore that suppressed
// nothing: either the flagged code was fixed (delete the directive)
// or the directive never matched a finding (it was misplaced).
func (d *directives) stale() []Diagnostic {
	var out []Diagnostic
	for _, ig := range d.ignores {
		if !ig.used {
			out = append(out, Diagnostic{
				Pos: ig.pos, Analyzer: "directive",
				Message: sprintf("stale //scaldift:ignore %s: it suppresses no diagnostic; delete it or move it to the flagged line", ig.analyzer),
			})
		}
	}
	return out
}

func sprintf(format string, args ...any) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}

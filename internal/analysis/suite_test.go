package analysis_test

import (
	"testing"

	"scaldift/internal/analysis"
	"scaldift/internal/analysis/antest"
)

func TestPoolEscape(t *testing.T) {
	antest.Run(t, "testdata/poolescape", analysis.PoolEscape, "a")
}

func TestLockIO(t *testing.T) {
	antest.Run(t, "testdata/lockio", analysis.LockIO, "a")
}

func TestCancelPoll(t *testing.T) {
	antest.Run(t, "testdata/cancelpoll", analysis.CancelPoll, "slicing")
}

func TestStickyErr(t *testing.T) {
	antest.Run(t, "testdata/stickyerr", analysis.StickyErr, "store")
}

func TestTrimPin(t *testing.T) {
	antest.Run(t, "testdata/trimpin", analysis.TrimPin, "store")
}

func TestEpochFence(t *testing.T) {
	antest.Run(t, "testdata/epochfence", analysis.EpochFence, "a")
}

func TestSuiteNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 5 {
		t.Errorf("suite has %d analyzers, want at least 5", len(seen))
	}
}

package analysis

import (
	"go/ast"
	"strings"
)

// TrimPin pins the fleet-lifecycle invariant from PR 9: retention
// never unlinks a segment a live follower has pinned. A follower in
// follow mode holds the segment at its frontier open (the cached tail
// fd) and registers it in the shared PinSet; if a trim deletes that
// file out from under it, the next read on the pinned fd silently
// serves unlinked data on Linux and hard-fails elsewhere — and either
// way the pin-set contract is gone.
//
// Statically enforced shape: inside any function on a trim path (its
// lowercased name contains "trim" or "sweep" — unlinkTrimmed,
// sweepOrphans, and whatever future trim helpers grow), every call to
// os.Remove / os.RemoveAll must be dominated by a pin check:
//
//   - the call sits in the then-branch of `if !pins.Pinned(file)`
//     (or the else-branch of the positive test), or
//   - an earlier statement in the same block skips pinned files:
//     `if pins.Pinned(file) { continue/return/break }`.
//
// The guard is matched by method name (Pinned), so the rule holds for
// any pin-set-shaped value without importing the store package here.
// I/O helpers that are not on a trim path are LockIO's business, not
// TrimPin's.
var TrimPin = &Analyzer{
	Name: "trimpin",
	Doc:  "requires trim paths to consult the pin set before unlinking segment files",
	Run:  runTrimPin,
}

func runTrimPin(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := strings.ToLower(fd.Name.Name)
			if !strings.Contains(name, "trim") && !strings.Contains(name, "sweep") {
				continue
			}
			tp := &trimPin{pass: pass, fn: fd.Name.Name}
			tp.block(fd.Body, false)
		}
	}
}

type trimPin struct {
	pass *Pass
	fn   string
}

// block scans a statement list. guarded reports whether every path
// into this block established that the victim is not pinned.
func (tp *trimPin) block(b *ast.BlockStmt, guarded bool) {
	g := guarded
	for _, s := range b.List {
		tp.stmt(s, g)
		// An early `if pins.Pinned(f) { continue/return }` guards
		// everything after it in this block.
		if ifs, ok := s.(*ast.IfStmt); ok && tp.posPinnedCond(ifs.Cond) && terminates(ifs.Body) {
			g = true
		}
	}
}

func (tp *trimPin) stmt(s ast.Stmt, guarded bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		tp.block(s, guarded)
	case *ast.IfStmt:
		tp.block(s.Body, guarded || tp.negPinnedCond(s.Cond))
		switch els := s.Else.(type) {
		case *ast.BlockStmt:
			tp.block(els, guarded || tp.posPinnedCond(s.Cond))
		case *ast.IfStmt:
			tp.stmt(els, guarded)
		}
	case *ast.ForStmt:
		tp.block(s.Body, guarded)
	case *ast.RangeStmt:
		tp.block(s.Body, guarded)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					tp.stmt(cs, guarded)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					tp.stmt(cs, guarded)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, cs := range cc.Body {
					tp.stmt(cs, guarded)
				}
			}
		}
	case *ast.LabeledStmt:
		tp.stmt(s.Stmt, guarded)
	default:
		tp.exprs(s, guarded)
	}
}

// exprs checks the calls inside one simple statement.
func (tp *trimPin) exprs(s ast.Stmt, guarded bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if name, ok := osUnlinkCall(n); ok && !guarded {
				tp.pass.Reportf(n.Pos(), "os.%s on a trim path without a Pinned check; retention must never unlink a segment a live follower has pinned", name)
			}
		}
		return true
	})
}

// posPinnedCond reports conditions that positively establish the file
// is pinned: pins.Pinned(f), possibly ||-combined with other skips
// (`if !ok || pins.Pinned(f) { continue }` guards the rest either
// way).
func (tp *trimPin) posPinnedCond(cond ast.Expr) bool {
	cond = ast.Unparen(cond)
	if b, ok := cond.(*ast.BinaryExpr); ok && b.Op.String() == "||" {
		return tp.posPinnedCond(b.X) || tp.posPinnedCond(b.Y)
	}
	return isPinnedCall(cond)
}

// negPinnedCond reports conditions of the form !pins.Pinned(f),
// possibly &&-combined with others.
func (tp *trimPin) negPinnedCond(cond ast.Expr) bool {
	cond = ast.Unparen(cond)
	if b, ok := cond.(*ast.BinaryExpr); ok && b.Op.String() == "&&" {
		return tp.negPinnedCond(b.X) || tp.negPinnedCond(b.Y)
	}
	u, ok := cond.(*ast.UnaryExpr)
	if !ok || u.Op.String() != "!" {
		return false
	}
	return isPinnedCall(ast.Unparen(u.X))
}

// isPinnedCall matches any method call named Pinned — the pin-set
// membership test, whatever the receiver is called at the use site.
func isPinnedCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Pinned"
}

// osUnlinkCall matches os.Remove / os.RemoveAll and returns the
// function name.
func osUnlinkCall(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Remove" && sel.Sel.Name != "RemoveAll") {
		return "", false
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); !ok || id.Name != "os" {
		return "", false
	}
	return sel.Sel.Name, true
}

// Package store exercises the trimpin analyzer: trim paths must
// consult the pin set before unlinking segment files.
package store

import (
	"os"
	"path/filepath"
)

type PinSet struct{ n map[string]int }

func (p *PinSet) Pinned(file string) bool { return p != nil && p.n[file] > 0 }

type manifestSeg struct {
	File string
	TID  int
}

// unlinkTrimmedGood mirrors the real shape: skip pinned victims with
// an early continue, then unlink.
func unlinkTrimmedGood(dir string, victims []manifestSeg, pins *PinSet) {
	for _, ms := range victims {
		if pins.Pinned(ms.File) {
			continue
		}
		_ = os.Remove(filepath.Join(dir, ms.File))
	}
}

// unlinkTrimmedBad deletes without ever consulting the pin set — the
// exact bug the analyzer exists to stop.
func unlinkTrimmedBad(dir string, victims []manifestSeg) {
	for _, ms := range victims {
		_ = os.Remove(filepath.Join(dir, ms.File)) // want "os.Remove on a trim path without a Pinned check"
	}
}

// trimDirBad reaches for the bigger hammer, still unguarded.
func trimDirBad(dir string) {
	_ = os.RemoveAll(dir) // want "os.RemoveAll on a trim path without a Pinned check"
}

// trimThenBranch guards with the negated membership test.
func trimThenBranch(dir string, ms manifestSeg, pins *PinSet) {
	if !pins.Pinned(ms.File) {
		_ = os.Remove(filepath.Join(dir, ms.File))
	}
}

// trimElseBranch guards through the positive test's else arm.
func trimElseBranch(dir string, ms manifestSeg, pins *PinSet) {
	if pins.Pinned(ms.File) {
		_ = ms.TID
	} else {
		_ = os.Remove(filepath.Join(dir, ms.File))
	}
}

// sweepOrphansGood mirrors the real orphan sweep: the pin check may
// share its early-continue with other skip conditions.
func sweepOrphansGood(dir string, names []string, listed map[string]bool, pins *PinSet) {
	for _, name := range names {
		if listed[name] || pins.Pinned(name) {
			continue
		}
		_ = os.Remove(filepath.Join(dir, name))
	}
}

// sweepWrongBlock checks the pin in one loop and unlinks in another:
// the guard does not dominate the unlink, so it must flag.
func sweepWrongBlock(dir string, names []string, pins *PinSet) {
	for _, name := range names {
		if pins.Pinned(name) {
			continue
		}
	}
	for _, name := range names {
		_ = os.Remove(filepath.Join(dir, name)) // want "os.Remove on a trim path without a Pinned check"
	}
}

// trimSuppressed documents a sanctioned exception.
func trimSuppressed(dir string) {
	//scaldift:ignore trimpin fixture: whole-store teardown, no follower can hold pins here
	_ = os.RemoveAll(dir)
}

// compactSegments is not on a trim path (no "trim"/"sweep" in the
// name): unguarded unlinks here are some other analyzer's business.
func compactSegments(dir string, name string) {
	_ = os.Remove(filepath.Join(dir, name))
}

// Package slicing exercises the cancelpoll analyzer: traversal loops
// must observe cooperative cancellation. The analyzer only fires in
// packages named "slicing", mirroring the real internal/slicing.
package slicing

import (
	"sync/atomic"

	"ddg"
)

type source struct{}

func (s *source) DepsOf(addr uint64) []ddg.Dep { return nil }

type options struct {
	done func() bool
}

func (o *options) doneFired() bool {
	return o.done != nil && o.done()
}

func badWalk(src *source, worklist []uint64) int {
	n := 0
	for len(worklist) > 0 { // want "traversal loop does not poll cancellation"
		addr := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		n += len(src.DepsOf(addr))
	}
	return n
}

func goodWalk(src *source, o *options, worklist []uint64) int {
	n := 0
	for len(worklist) > 0 {
		if o.doneFired() {
			return n
		}
		addr := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		n += len(src.DepsOf(addr))
	}
	return n
}

func badMerge(buckets []map[int][]ddg.Dep, tid int) map[uint64][]ddg.Dep {
	rev := map[uint64][]ddg.Dep{}
	for _, b := range buckets {
		for _, d := range b[tid] { // want "traversal loop does not poll cancellation"
			rev[d.Def] = append(rev[d.Def], d)
		}
	}
	return rev
}

// goodAtomic polls a done flag once per bucket; the masked-poll
// allowance means one observation anywhere in the function covers its
// loops.
func goodAtomic(buckets []map[int][]ddg.Dep, tid int, done *atomic.Bool) map[uint64][]ddg.Dep {
	rev := map[uint64][]ddg.Dep{}
	for _, b := range buckets {
		if done.Load() {
			return rev
		}
		for _, d := range b[tid] {
			rev[d.Def] = append(rev[d.Def], d)
		}
	}
	return rev
}

// goodSelect observes cancellation through a channel receive.
func goodSelect(src *source, done chan struct{}, worklist []uint64) int {
	n := 0
	for _, addr := range worklist {
		select {
		case <-done:
			return n
		default:
		}
		n += len(src.DepsOf(addr))
	}
	return n
}

// badInLit: a function literal is its own analysis unit, so the
// enclosing function's (absent) polling does not excuse it.
func badInLit(src *source, worklist []uint64) func() int {
	return func() int {
		n := 0
		for _, addr := range worklist { // want "traversal loop does not poll cancellation"
			n += len(src.DepsOf(addr))
		}
		return n
	}
}

// ignoredScan documents a deliberate exception: a bounded scan over a
// fixed-size shard header.
func ignoredScan(src *source, heads []uint64) int {
	n := 0
	for _, addr := range heads { //scaldift:ignore cancelpoll bounded header scan, at most one entry per shard
		n += len(src.DepsOf(addr))
	}
	return n
}

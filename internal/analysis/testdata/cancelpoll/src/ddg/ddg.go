// Package ddg is a fixture stand-in for scaldift/internal/ddg;
// cancelpoll matches []Dep traversals by package name.
package ddg

// Dep models one dependency edge.
type Dep struct {
	Def uint64
	Use uint64
}

// Package ddg is a fixture stand-in for scaldift/internal/ddg; lockio
// matches RawChunk.Decode by package name.
package ddg

// Dep models one dependency edge.
type Dep struct {
	Def uint64
}

// RawChunk models an undecoded chunk.
type RawChunk struct {
	Data []byte
}

// Decode models the expensive chunk decode.
func (c *RawChunk) Decode() ([]Dep, error) {
	return nil, nil
}

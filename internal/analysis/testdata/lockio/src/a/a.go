// Package a exercises the lockio analyzer: no file I/O or chunk
// decode while a sync mutex is held.
package a

import (
	"os"
	"sync"

	"ddg"
)

type state struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	segs []string
}

func badReadUnderLock(s *state, path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile(path) // want "os.ReadFile called while s.mu is held"
}

func badDecodeUnderRLock(s *state, c *ddg.RawChunk) ([]ddg.Dep, error) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return c.Decode() // want "ddg.RawChunk.Decode called while s.rw is held"
}

// goodSnapshot is the sanctioned shape: snapshot under the lock, do
// the I/O after unlocking.
func goodSnapshot(s *state, path string) ([]byte, error) {
	s.mu.Lock()
	p := s.segs[0] + path
	s.mu.Unlock()
	return os.ReadFile(p)
}

// branchScoped is allowed: the lock is released inside the branch that
// took it, so nothing is held at the read.
func branchScoped(s *state, cond bool, path string) {
	if cond {
		s.mu.Lock()
		s.mu.Unlock()
	}
	os.ReadFile(path)
}

// loadIndex is too heavy to run under a mutex; the tag makes every
// call site checkable.
//
//scaldift:io
func loadIndex(path string) error {
	_, err := os.Stat(path)
	return err
}

func badTagged(s *state, path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return loadIndex(path) // want "loadIndex .//scaldift:io. called while s.mu is held"
}

// spawned is allowed: the goroutine body runs without the spawner's
// lock.
func spawned(s *state, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		os.ReadFile(path)
	}()
}

// lockInsideGoroutine: the literal takes its own lock, so its own I/O
// is checked against it.
func lockInsideGoroutine(s *state, path string) {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		os.ReadFile(path) // want "os.ReadFile called while s.mu is held"
	}()
}

// pollStyle documents a deliberate exception: the poll path serializes
// directory scans on purpose.
func pollStyle(s *state, dir string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.ReadDir(dir) //scaldift:ignore lockio poll path trades latency for single-flight scans
}

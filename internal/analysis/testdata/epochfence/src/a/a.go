// Package a exercises the epochfence analyzer: shadow.Epoch ownership
// and quiescent accessors are coordinator-only, and shadow.View values
// must not escape their epoch.
package a

import (
	"shadow"
)

// pool models pipeline.Pool: the closures it runs are worker context.
type pool struct{}

func (p *pool) Run(tasks []func()) {
	for _, t := range tasks {
		t()
	}
}

var globalView *shadow.View

type coord struct {
	mem   *shadow.Epoch
	views []*shadow.View
	view  *shadow.View
	pool  *pool
}

// dispatch is the coordinator: every ownership call, the quiescent
// accessor between windows, and the field-cached views are all legal.
func (c *coord) dispatch() {
	c.mem.BeginEpoch()
	c.mem.Claim(0, 1)
	c.views = append(c.views, c.mem.View(1))
	c.view = c.mem.View(2)
	v := c.mem.ClaimAll()
	v.Set(8, 1)
	_ = c.mem.Tainted()
}

func (c *coord) workerOwnership() {
	c.pool.Run([]func(){
		func() {
			c.mem.BeginEpoch() // want "BeginEpoch called from a worker context"
			v := c.mem.View(2) // want "View called from a worker context"
			v.Set(8, 1)        // View access from a worker is the entire point: allowed
		},
	})
}

func (c *coord) workerQuiescent() {
	go func() {
		c.mem.Claim(1, 2)   // want "Claim called from a worker context"
		_ = c.mem.Tainted() // want "quiescent-only accessor shadow.Epoch.Tainted"
		c.mem.Set(8, 1)     // want "quiescent-only accessor shadow.Epoch.Set"
	}()
}

func retainGlobal(v *shadow.View) {
	globalView = v // want "package-level variable globalView outlives its epoch"
}

func sendView(ch chan *shadow.View, v *shadow.View) {
	ch <- v // want "sent on a channel escapes its epoch"
}

type worker struct {
	view *shadow.View
}

func (w *worker) retainInWorker(v *shadow.View) {
	go func() {
		w.view = v // want "retained past the window barrier"
		_ = v.Get(0)
	}()
}

// coordField caches a view outside any worker context — the
// coordinator revalidates ownership each epoch, so this is legal.
func (w *worker) coordField(v *shadow.View) {
	w.view = v
}

// nestedWorker stays worker context all the way down.
func (c *coord) nestedWorker() {
	go func() {
		inner := func() {
			c.mem.ClaimAll() // want "ClaimAll called from a worker context"
		}
		inner()
	}()
}

// suppressed documents a closure that provably runs on the
// coordinating goroutine; the ignore directive keeps the diagnostic
// out (and the driver would flag the ignore itself if it went stale).
func (c *coord) suppressed() {
	run := func() {
		c.mem.BeginEpoch() //scaldift:ignore epochfence called synchronously below on the coordinating goroutine
	}
	run()
}

// Package shadow is a fixture stand-in for scaldift/internal/shadow:
// the epochfence analyzer matches Epoch and View by package name, so
// this minimal non-generic model exercises it without importing the
// real shadow memory.
package shadow

// Epoch models the epoch-sharded shadow memory.
type Epoch struct {
	owners []int32
}

// NewEpoch returns a model epoch with the given shard count.
func NewEpoch(shards int) *Epoch { return &Epoch{owners: make([]int32, shards)} }

// BeginEpoch models the ownership reset.
func (e *Epoch) BeginEpoch() {
	for i := range e.owners {
		e.owners[i] = -1
	}
}

// Claim models per-shard ownership assignment.
func (e *Epoch) Claim(shard int, owner int32) { e.owners[shard] = owner }

// ClaimAll models exclusive claiming for sequential propagation.
func (e *Epoch) ClaimAll() *View { return &View{} }

// View models minting an owner's access capability.
func (e *Epoch) View(owner int32) *View { return &View{id: owner} }

// Get models a quiescent-only whole-memory read.
func (e *Epoch) Get(addr int64) int64 { return 0 }

// Set models a quiescent-only whole-memory write.
func (e *Epoch) Set(addr int64, val int64) {}

// Tainted models a quiescent-only aggregate.
func (e *Epoch) Tainted() int { return 0 }

// Range models quiescent-only iteration.
func (e *Epoch) Range(f func(addr int64, v int64) bool) {}

// View models one owner's window-scoped access capability.
type View struct {
	id int32
}

// Get models an owned-shard read (worker-legal).
func (v *View) Get(addr int64) int64 { return 0 }

// Set models an owned-shard write (worker-legal).
func (v *View) Set(addr int64, val int64) {}

// Package vm is a fixture stand-in for scaldift/internal/vm: the
// analyzers match its pooled types by package name, so this minimal
// model exercises them without importing the real machine.
package vm

// Event models one recorded taint event.
type Event struct {
	Seq uint64
	Op  int
}

// Batch models a pool-recycled batch of events.
type Batch struct {
	Tid    int
	Events []Event
}

// Package a exercises the poolescape analyzer: pointers into
// pool-recycled values must not be retained past the recycle.
package a

import (
	"sync"

	"vm"
)

var pool = sync.Pool{New: func() any { return new(vm.Batch) }}

var global *vm.Event

type sink struct {
	evs  []*vm.Event
	last *vm.Event
	m    map[uint64]*vm.Event
}

type record struct {
	ev *vm.Event
}

var records []record

func (s *sink) retainPointer(b *vm.Batch) {
	s.last = &b.Events[0] // want "stored in field s.last"
}

func (s *sink) retainSlice(evs []*vm.Event) {
	s.evs = append(s.evs, evs...) // want "stored in field s.evs"
}

func (s *sink) retainMap(b *vm.Batch) {
	s.m[b.Events[0].Seq] = &b.Events[0] // want "stored in s.m"
}

func storeGlobal(b *vm.Batch) {
	global = &b.Events[0] // want "package-level variable global"
}

func sendPooled(ch chan *vm.Batch) {
	b := pool.Get().(*vm.Batch)
	ch <- b // want "sent on a channel"
}

func storeComposite(b *vm.Batch) {
	records = append(records, record{ev: &b.Events[0]}) // want "package-level variable records"
}

func viaHolder(s *sink, b *vm.Batch) {
	var keep []*vm.Event
	for i := range b.Events {
		keep = append(keep, &b.Events[i])
	}
	s.evs = keep // want "stored in field s.evs"
}

// arena is recycled by a pool elsewhere; the directive opts it into
// the same escape rules as vm.Batch.
//
//scaldift:pooled
type arena struct {
	bytes []byte
}

var globalArena *arena

func storeArena(a *arena) {
	globalArena = a // want "package-level variable globalArena"
}

// copyValue is allowed: copying the event by value is the sanctioned
// way to retain one.
func copyValue(b *vm.Batch) vm.Event {
	ev := b.Events[0]
	return ev
}

// deliverCopies is allowed: values are copied out element by element.
func deliverCopies(evs []*vm.Event) []vm.Event {
	out := make([]vm.Event, len(evs))
	for i, ev := range evs {
		out[i] = *ev
	}
	return out
}

// localMapOK is allowed: the container is itself loop-local, so the
// pointers die with it.
func localMapOK(b *vm.Batch) int {
	m := map[uint64]*vm.Event{}
	for i := range b.Events {
		m[b.Events[i].Seq] = &b.Events[i]
	}
	return len(m)
}

// ignoredRetain shows a deliberate, documented exception.
func ignoredRetain(s *sink, b *vm.Batch) {
	s.last = &b.Events[0] //scaldift:ignore poolescape test double is drained before the batch recycles
}

// staleIgnore's directive suppresses nothing, which is itself an
// error.
func staleIgnore(b *vm.Batch) vm.Event {
	//scaldift:ignore poolescape nothing on the next line is flagged // want "stale //scaldift:ignore poolescape"
	return b.Events[0]
}

func missingReason(b *vm.Batch) vm.Event {
	// want "needs a reason"
	//scaldift:ignore poolescape
	return b.Events[0]
}

func unknownAnalyzer(b *vm.Batch) vm.Event {
	// want "unknown analyzer"
	//scaldift:ignore nosuchcheck because reasons
	return b.Events[0]
}

func unknownDirective(b *vm.Batch) vm.Event {
	// want "unknown scaldift directive"
	//scaldift:frobnicate
	return b.Events[0]
}

// Package store exercises the stickyerr analyzer: only
// errDamage-classified errors may enter the negative chunk cache.
package store

import "errors"

var errDamage = errors.New("damaged chunk")

type threadState struct {
	cache map[int]map[uint64][]int
}

func (ts *threadState) cachePut(idx int, m map[uint64][]int) {}

// putNegative is the one sanctioned place a nil (negative) entry is
// written — by either shape; stickyerr checks its call sites instead.
func (ts *threadState) putNegative(idx int, err error, bound int) {
	ts.cache[idx] = nil
	ts.cachePut(idx, nil)
}

func (ts *threadState) badUnguarded(idx int, err error) {
	ts.putNegative(idx, err, 0) // want "putNegative called without an errors.Is"
}

func (ts *threadState) goodGuarded(idx int, err error) {
	if errors.Is(err, errDamage) {
		ts.putNegative(idx, err, 0)
	}
}

func (ts *threadState) goodEarlyReturn(idx int, err error) {
	if !errors.Is(err, errDamage) {
		return
	}
	ts.putNegative(idx, err, 0)
}

func (ts *threadState) goodElse(idx int, err error) {
	if !errors.Is(err, errDamage) {
		_ = idx
	} else {
		ts.putNegative(idx, err, 0)
	}
}

func (ts *threadState) goodCombined(idx int, err error, bound int) {
	if err != nil && errors.Is(err, errDamage) {
		ts.putNegative(idx, err, bound)
	}
}

// badSibling: the guard must dominate the call; a check in an
// unrelated branch does not.
func (ts *threadState) badSibling(idx int, err error) {
	if errors.Is(err, errDamage) {
		_ = idx
	}
	ts.putNegative(idx, err, 0) // want "putNegative called without an errors.Is"
}

func (ts *threadState) badNilCachePut(idx int, err error) {
	if errors.Is(err, errDamage) {
		ts.cachePut(idx, nil) // want "cachePut called with nil deps"
	}
}

func (ts *threadState) badDirectNil(idx int) {
	ts.cache[idx] = nil // want "nil stored directly into ts.cache"
}

// quarantine documents a deliberate exception.
func (ts *threadState) quarantine(idx int, err error) {
	ts.putNegative(idx, err, 0) //scaldift:ignore stickyerr quarantine path pins every error by design
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// This file implements `scaldiftvet ./...` without go vet: it shells
// out to `go list -deps -export -json` for the package graph and the
// compiled export data of every dependency, then typechecks the
// matched packages from source and runs the suite. Test files are not
// loaded in this mode (go list's GoFiles excludes them); the go vet
// path is the one that covers _test.go.

// listPkg is the subset of `go list -json` output the driver reads.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

func runStandalone(patterns []string) int {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "scaldiftvet: go list: %v\n", err)
		return 1
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "scaldiftvet: decoding go list output: %v\n", err)
			return 1
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "scaldiftvet: %s: %s\n", p.ImportPath, p.Error.Err)
			return 1
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	exit := 0
	for _, p := range targets {
		code := checkFromSource(p, exports)
		if code > exit {
			exit = code
		}
	}
	return exit
}

func checkFromSource(p *listPkg, exports map[string]string) int {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scaldiftvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := p.ImportMap[path]; ok {
			path = canon
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := NewInfo()
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scaldiftvet: typechecking %s: %v\n", p.ImportPath, err)
		return 1
	}
	return reportDiags(fset, RunPackage(fset, files, pkg, info, Suite()))
}

package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool=` side of the driver: the
// unitchecker protocol. cmd/go interrogates the tool with -V=full (for
// the build cache key) and -flags (for supported flags), then invokes
// it once per package with a single *.cfg argument describing the
// compilation unit: file lists, the import map, and the export-data
// files of every dependency. The tool typechecks the unit with the gc
// importer, runs the analyzer suite, prints findings to stderr, and
// exits 2 when there are any — exactly the contract go vet expects.

// vetConfig mirrors the JSON cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the scaldiftvet entry point; it returns the process exit
// code. It dispatches between the three unitchecker calls and the
// standalone `scaldiftvet ./...` mode.
func Main(args []string) int {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return 0
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnit(args[0])
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	return runStandalone(args)
}

// printVersion emits the -V=full line cmd/go hashes into its build
// cache key. The buildID is the executable's content hash, so
// rebuilding the tool invalidates cached vet results.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", progname, h.Sum(nil))
}

func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scaldiftvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "scaldiftvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// cmd/go requires the vetx (facts) output to exist on success even
	// though this suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "scaldiftvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: facts only, no analysis requested
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "scaldiftvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "scaldiftvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := RunPackage(fset, files, pkg, info, Suite())
	return reportDiags(fset, diags)
}

// reportDiags prints findings in the file:line:col form go vet
// surfaces, returning the exit code (2 = findings, matching vet).
func reportDiags(fset *token.FileSet, diags []Diagnostic) int {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

package analysis

import (
	"go/ast"
	"go/types"
)

// EpochFence machine-checks the shadow.Epoch concurrency contract
// (see the type comment in internal/shadow/epoch.go): epoch-sharded
// shadow writes never cross an ownership boundary without a fence,
// and the only fence is the coordinator's dispatch/barrier pair.
// Statically that splits into three rules:
//
//   - Ownership coordination (BeginEpoch, Claim, ClaimAll, View) is
//     coordinator-only. A call on a shadow.Epoch receiver from a
//     worker context — a goroutine body or a function literal, the
//     shapes handed to pipeline.Pool.Run — mutates or mints ownership
//     concurrently with views that were published under the old
//     assignment.
//   - The whole-memory accessors (Get, Set, Clear, Tainted, Pages,
//     SizeWords, Range) are quiescent-only, so the same worker-context
//     restriction applies to them.
//   - A shadow.View is valid for one epoch. Storing one in a
//     package-level variable or sending it on a channel escapes the
//     epoch unconditionally; storing one into a struct field from a
//     worker context retains it past the barrier on a goroutine the
//     coordinator cannot revalidate. (Coordinator-side field caching —
//     pipeline.ensureOwners — is allowed: the coordinator re-claims
//     ownership under the cached views before every dispatch.)
//
// The worker-context test is a syntactic approximation: any function
// literal counts, because the analysis cannot see which closures a
// pool executes. A literal that provably runs on the coordinating
// goroutine can carry //scaldift:ignore epochfence with the proof as
// its reason. View.Get/Set are deliberately NOT restricted — worker
// access through an owned view is the entire point, and each access
// re-verifies ownership at runtime anyway. Test files are skipped:
// tests exercise the API from t.Run closures and deliberately broken
// shapes that the runtime ownership check already covers.
var EpochFence = &Analyzer{
	Name: "epochfence",
	Doc:  "flags shadow.Epoch ownership/quiescent calls from worker contexts and shadow.View values escaping their epoch",
	Run:  runEpochFence,
}

// epochOwnership are the coordinator-only ownership methods.
var epochOwnership = map[string]bool{
	"BeginEpoch": true, "Claim": true, "ClaimAll": true, "View": true,
}

// epochQuiescent are the whole-memory accessors legal only while no
// View is in flight.
var epochQuiescent = map[string]bool{
	"Get": true, "Set": true, "Clear": true, "Tainted": true,
	"Pages": true, "SizeWords": true, "Range": true,
}

func runEpochFence(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ef := &epochFence{pass: pass}
		ef.walk(f, false)
	}
}

type epochFence struct {
	pass *Pass
}

// walk inspects the subtree rooted at n with the given worker-context
// flag, re-entering with worker=true at goroutine and closure
// boundaries.
func (ef *epochFence) walk(n ast.Node, worker bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !worker {
				ef.walk(n.Call, true)
				return false
			}
		case *ast.FuncLit:
			if !worker {
				ef.walk(n.Body, true)
				return false
			}
		case *ast.CallExpr:
			ef.call(n, worker)
		case *ast.AssignStmt:
			ef.assign(n, worker)
		case *ast.SendStmt:
			if ef.isViewExpr(n.Value) {
				ef.pass.Reportf(n.Value.Pos(), "shadow.View sent on a channel escapes its epoch: the receiver has no fence ordering it against the next ownership assignment")
			}
		}
		return true
	})
}

// call flags shadow.Epoch method calls that are illegal in a worker
// context.
func (ef *epochFence) call(n *ast.CallExpr, worker bool) {
	if !worker {
		return
	}
	fn := calleeFunc(ef.pass.TypesInfo, n)
	if fn == nil || !isPkgType(recvType(fn), "shadow", "Epoch") {
		return
	}
	switch name := fn.Name(); {
	case epochOwnership[name]:
		ef.pass.Reportf(n.Pos(), "shadow.Epoch.%s called from a worker context (goroutine or closure): ownership is coordinator-only and may change only across a dispatch/barrier fence", name)
	case epochQuiescent[name]:
		ef.pass.Reportf(n.Pos(), "quiescent-only accessor shadow.Epoch.%s called from a worker context: whole-memory access is legal only while no View is in flight", name)
	}
}

// assign flags View values stored where they outlive their epoch.
func (ef *epochFence) assign(n *ast.AssignStmt, worker bool) {
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break // x, y = f(): function results lose the view identity
		}
		if !ef.isViewExpr(n.Rhs[i]) {
			continue
		}
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := ef.pass.TypesInfo.Defs[lhs]
			if obj == nil {
				obj = ef.pass.TypesInfo.Uses[lhs]
			}
			if isPackageLevel(obj) {
				ef.pass.Reportf(n.Rhs[i].Pos(), "shadow.View stored in package-level variable %s outlives its epoch", lhs.Name)
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			if worker {
				ef.pass.Reportf(n.Rhs[i].Pos(), "shadow.View stored in %s from a worker context is retained past the window barrier; only the coordinator may cache views, because only it revalidates ownership before the next dispatch", exprString(lhs))
			}
		}
	}
}

// isViewExpr reports whether e's static type carries shadow.View
// identity: a View, a pointer to one, or a slice of either (append
// results included).
func (ef *epochFence) isViewExpr(e ast.Expr) bool {
	tv, ok := ef.pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if s, ok := t.Underlying().(*types.Slice); ok {
		t = s.Elem()
	}
	return isPkgType(t, "shadow", "View")
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RunPackage runs the analyzers over one type-checked package,
// applies //scaldift:ignore suppression, and appends the directive
// checks (malformed directives, stale ignores). Diagnostics come back
// sorted by position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	dirs := parseDirectives(fset, files, info, known)

	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			dirs:      dirs,
		}
		pass.report = func(d Diagnostic) {
			if !dirs.suppressed(fset, d) {
				out = append(out, d)
			}
		}
		a.Run(pass)
	}
	out = append(out, dirs.malformed...)
	out = append(out, dirs.stale()...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// Suite returns the full scaldift analyzer suite in a stable order.
func Suite() []*Analyzer {
	return []*Analyzer{
		PoolEscape,
		LockIO,
		CancelPoll,
		StickyErr,
		TrimPin,
		EpochFence,
	}
}

// NewInfo allocates a types.Info with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// calleeFunc resolves a call expression to the called function or
// method object, seeing through parentheses. Calls to func values and
// builtins return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// namedObj unwraps pointers and aliases down to the defining object
// of a named type, or nil.
func namedObj(t types.Type) *types.TypeName {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt.Obj()
		default:
			return nil
		}
	}
}

// isPkgType reports whether t (through pointers) is the named type
// pkgName.typeName. Matching is by package NAME, not full path, so
// analyzers behave identically over the real packages and over test
// fixtures that model them under short import paths.
func isPkgType(t types.Type, pkgName, typeName string) bool {
	obj := namedObj(t)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// exprString renders a (small) expression for lock identity and
// messages: selectors and identifiers only, everything else opaque.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return "&" + exprString(e.X)
		}
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "<expr>"
}

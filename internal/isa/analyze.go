package isa

// Static analysis over programs: control-flow graph construction,
// basic blocks, and intra-block statically inferable dependences.
// ONTRAC's optimization O1 ("eliminate the storage of dependences
// within a basic block that can be directly inferred by static
// examination of the binary") consumes these results; the dynamic
// slicer re-infers the elided edges from them.

// BasicBlock is a maximal straight-line sequence of instructions.
type BasicBlock struct {
	ID    int
	Start int // first instruction index
	End   int // one past the last instruction index
	Succs []int
	Preds []int
}

// CFG is the static control-flow graph of a program.
type CFG struct {
	Prog    *Program
	Blocks  []BasicBlock
	BlockOf []int // instruction index -> block id
}

// BuildCFG computes basic blocks and their edges.
func BuildCFG(p *Program) *CFG {
	n := len(p.Instrs)
	leader := make([]bool, n+1)
	if n > 0 {
		leader[0] = true
	}
	markTarget := func(t int) {
		if t >= 0 && t < n {
			leader[t] = true
		}
	}
	for idx, ins := range p.Instrs {
		if ins.Op.HasTarget() {
			markTarget(ins.Target)
		}
		switch {
		case ins.Op.IsBranch(), ins.Op == HALT, ins.Op == FAIL:
			markTarget(idx + 1)
		}
	}
	// Label targets from the label map as well (indirect entries).
	for _, idx := range p.Labels {
		markTarget(idx)
	}
	cfg := &CFG{Prog: p, BlockOf: make([]int, n)}
	start := 0
	for idx := 1; idx <= n; idx++ {
		if idx == n || leader[idx] {
			id := len(cfg.Blocks)
			cfg.Blocks = append(cfg.Blocks, BasicBlock{ID: id, Start: start, End: idx})
			for j := start; j < idx; j++ {
				cfg.BlockOf[j] = id
			}
			start = idx
		}
	}
	// Edges.
	addEdge := func(from, to int) {
		cfg.Blocks[from].Succs = append(cfg.Blocks[from].Succs, to)
		cfg.Blocks[to].Preds = append(cfg.Blocks[to].Preds, from)
	}
	for bi := range cfg.Blocks {
		blk := &cfg.Blocks[bi]
		last := p.Instrs[blk.End-1]
		switch {
		case last.Op == BR:
			addEdge(bi, cfg.BlockOf[last.Target])
		case last.Op == HALT, last.Op == FAIL:
			// no successors
		case last.Op == RET, last.Op == BRR, last.Op == CALLR:
			// indirect/return edges are dynamic; none statically
		case last.Op.IsConditional():
			addEdge(bi, cfg.BlockOf[last.Target])
			if blk.End < n {
				addEdge(bi, cfg.BlockOf[blk.End])
			}
		case last.Op == CALL:
			addEdge(bi, cfg.BlockOf[last.Target])
			// The fall-through after return is a dynamic edge; we
			// conservatively add it so forward reachability holds.
			if blk.End < n {
				addEdge(bi, cfg.BlockOf[blk.End])
			}
		case last.Op == SPAWN:
			addEdge(bi, cfg.BlockOf[last.Target])
			if blk.End < n {
				addEdge(bi, cfg.BlockOf[blk.End])
			}
		default:
			if blk.End < n {
				addEdge(bi, cfg.BlockOf[blk.End])
			}
		}
	}
	return cfg
}

// StaticDep records that within one basic block, the instruction at
// index Use reads a register whose most recent writer inside the same
// block is the instruction at index Def. Such dependences are fully
// determined by the binary, so ONTRAC need not log them dynamically.
type StaticDep struct {
	Use int // instruction index of the reader
	Def int // instruction index of the in-block definer
	Reg uint8
}

// BlockStaticDeps computes, per basic block, the register dependences
// that static examination resolves. Memory dependences are never
// static (addresses are dynamic), and registers defined before block
// entry are unresolved statically.
//
// The returned map is keyed by block ID.
func BlockStaticDeps(cfg *CFG) map[int][]StaticDep {
	out := make(map[int][]StaticDep, len(cfg.Blocks))
	p := cfg.Prog
	for bi := range cfg.Blocks {
		blk := &cfg.Blocks[bi]
		lastDef := map[uint8]int{} // register -> defining instr index
		var deps []StaticDep
		for idx := blk.Start; idx < blk.End; idx++ {
			ins := p.Instrs[idx]
			record := func(r uint8) {
				if def, ok := lastDef[r]; ok {
					deps = append(deps, StaticDep{Use: idx, Def: def, Reg: r})
				}
			}
			if ins.Op.ReadsRs1() {
				record(ins.Rs1)
			}
			if ins.Op.ReadsRs2() && (!ins.Op.ReadsRs1() || ins.Rs2 != ins.Rs1) {
				record(ins.Rs2)
			}
			if ins.Op.WritesRd() && ins.Rd != 0 {
				lastDef[ins.Rd] = idx
			}
		}
		if deps != nil {
			out[bi] = deps
		}
	}
	return out
}

// StaticallyResolvedReads returns, for each instruction index, a
// bitmask over {Rs1, Rs2} of register reads whose defining write is
// statically known (same basic block). Bit 0 = Rs1, bit 1 = Rs2.
// ONTRAC uses this to skip dynamic logging for those operands.
func StaticallyResolvedReads(cfg *CFG) []uint8 {
	res := make([]uint8, len(cfg.Prog.Instrs))
	p := cfg.Prog
	for bi := range cfg.Blocks {
		blk := &cfg.Blocks[bi]
		lastDef := map[uint8]bool{}
		for idx := blk.Start; idx < blk.End; idx++ {
			ins := p.Instrs[idx]
			if ins.Op.ReadsRs1() && lastDef[ins.Rs1] {
				res[idx] |= 1
			}
			if ins.Op.ReadsRs2() && lastDef[ins.Rs2] {
				res[idx] |= 2
			}
			if ins.Op.WritesRd() && ins.Rd != 0 {
				lastDef[ins.Rd] = true
			}
		}
	}
	return res
}

// ImmediatePostdominators computes, per basic block, the immediate
// postdominator block id (-1 for exit blocks / no postdominator).
// Dynamic control-dependence detection (internal/cdep) uses this to
// know where a predicate's region of influence ends.
func ImmediatePostdominators(cfg *CFG) []int {
	n := len(cfg.Blocks)
	const none = -1
	ipdom := make([]int, n)
	// postdom sets via iterative dataflow (small programs; fine).
	post := make([][]bool, n)
	exits := []int{}
	for i := range post {
		post[i] = make([]bool, n)
	}
	for i := range cfg.Blocks {
		if len(cfg.Blocks[i].Succs) == 0 {
			exits = append(exits, i)
			post[i][i] = true
		} else {
			for j := 0; j < n; j++ {
				post[i][j] = true
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			blk := &cfg.Blocks[i]
			if len(blk.Succs) == 0 {
				continue
			}
			newSet := make([]bool, n)
			for j := 0; j < n; j++ {
				newSet[j] = true
			}
			for _, s := range blk.Succs {
				for j := 0; j < n; j++ {
					newSet[j] = newSet[j] && post[s][j]
				}
			}
			newSet[i] = true
			for j := 0; j < n; j++ {
				if newSet[j] != post[i][j] {
					post[i] = newSet
					changed = true
					break
				}
			}
		}
	}
	_ = exits
	// Immediate postdominator: the postdominator (other than the
	// block itself) that is postdominated by all other postdominators.
	for i := 0; i < n; i++ {
		ipdom[i] = none
		var cands []int
		for j := 0; j < n; j++ {
			if j != i && post[i][j] {
				cands = append(cands, j)
			}
		}
		for _, c := range cands {
			immediate := true
			for _, d := range cands {
				if d != c && !post[d][c] {
					immediate = false
					break
				}
			}
			if immediate {
				ipdom[i] = c
				break
			}
		}
	}
	return ipdom
}

// Package isa defines the instruction set of the scaldift virtual
// machine: a 64-bit, word-addressed RISC-style ISA with explicit
// input/output, thread, and synchronization instructions.
//
// The ISA stands in for native x86 in the original paper: dynamic
// information flow tracking only needs a stream of dataflow events
// (destination ← sources) over registers and memory, plus control
// transfers and input/output boundaries. Programs are either built
// programmatically (Builder) or assembled from text (Assemble).
package isa

import "fmt"

// Op identifies an instruction opcode.
type Op uint8

// Opcodes. Arithmetic and comparison instructions write Rd from
// Rs1/Rs2 (or Imm for the -I forms). Memory instructions compute the
// effective address Rs1+Imm. Control instructions use Target (a label
// resolved to an instruction index by the assembler/builder).
const (
	NOP  Op = iota
	HALT    // stop the current thread
	FAIL    // stop the whole machine, marking the run as failed

	// Data movement.
	MOVI // Rd = Imm
	MOV  // Rd = Rs1

	// Arithmetic / logic: Rd = Rs1 op Rs2.
	ADD
	SUB
	MUL
	DIV // division by zero faults the thread
	MOD
	AND
	OR
	XOR
	SHL
	SHR
	ADDI // Rd = Rs1 + Imm
	MULI // Rd = Rs1 * Imm
	ANDI // Rd = Rs1 & Imm

	// Comparisons: Rd = (Rs1 op Rs2) ? 1 : 0.
	CMPEQ
	CMPNE
	CMPLT
	CMPLE
	CMPGT
	CMPGE

	// Memory: word addressed. Effective address = Rs1 + Imm.
	LOAD  // Rd = Mem[Rs1+Imm]
	STORE // Mem[Rs1+Imm] = Rs2
	ALLOC // Rd = address of a fresh block of Rs1 words (bump allocator)

	// Control flow.
	BR    // PC = Target
	BEQ   // if Rs1 == Rs2: PC = Target
	BNE   // if Rs1 != Rs2: PC = Target
	BLT   // if Rs1 <  Rs2: PC = Target
	BGE   // if Rs1 >= Rs2: PC = Target
	BEQZ  // if Rs1 == 0:   PC = Target
	BNEZ  // if Rs1 != 0:   PC = Target
	CALL  // push return PC on the call stack; PC = Target
	RET   // pop the call stack
	BRR   // PC = Rs1 (indirect jump; the attack-detection target)
	CALLR // push return PC; PC = Rs1 (indirect call)

	// Input/output. IN is the canonical taint source, OUT the sink.
	IN      // Rd = next word from input channel Imm
	INAVAIL // Rd = number of words remaining on input channel Imm
	OUT     // append Rs1 to output channel Imm

	// Threads.
	SPAWN // Rd = tid of a new thread started at Target with arg Rs1 in r1
	JOIN  // block until thread Rs1 halts

	// Synchronization. Lock/barrier/flag objects live in memory at
	// the effective address Rs1+Imm so tools can observe their
	// addresses.
	LOCK    // acquire
	UNLOCK  // release
	BARRIER // block until Rs2 threads have arrived at this barrier
	FLAGSET // Mem[Rs1+Imm] = 1 (release-style flag publication)
	FLAGCLR // Mem[Rs1+Imm] = 0
	FLAGWT  // block until Mem[Rs1+Imm] != 0 (acquire-style spin wait)
	CAS     // Rd = old value; if Mem[Rs1+Imm]==Rs2old(Imm2)... see doc
	YIELD   // voluntarily end the scheduling quantum

	// ASSERT faults the thread (and marks the run failed) if Rs1 == 0.
	ASSERT

	opCount
)

// CAS semantics: Rd = Mem[Rs1]; if Rd == Rs2 then Mem[Rs1] = Imm.
// (Compare value comes from Rs2, the swapped-in value from Imm.)

// opInfo describes the operand usage of each opcode, which drives both
// the assembler and the generic dataflow event construction in the VM.
type opInfo struct {
	name     string
	readsR1  bool // reads Rs1
	readsR2  bool // reads Rs2
	writesRd bool // writes Rd
	loads    bool // reads Mem[Rs1+Imm]
	stores   bool // writes Mem[Rs1+Imm]
	branch   bool // conditional or unconditional control transfer
	hasImm   bool
	hasTgt   bool // uses Target
}

var opTable = [opCount]opInfo{
	NOP:     {name: "nop"},
	HALT:    {name: "halt"},
	FAIL:    {name: "fail"},
	MOVI:    {name: "movi", writesRd: true, hasImm: true},
	MOV:     {name: "mov", readsR1: true, writesRd: true},
	ADD:     {name: "add", readsR1: true, readsR2: true, writesRd: true},
	SUB:     {name: "sub", readsR1: true, readsR2: true, writesRd: true},
	MUL:     {name: "mul", readsR1: true, readsR2: true, writesRd: true},
	DIV:     {name: "div", readsR1: true, readsR2: true, writesRd: true},
	MOD:     {name: "mod", readsR1: true, readsR2: true, writesRd: true},
	AND:     {name: "and", readsR1: true, readsR2: true, writesRd: true},
	OR:      {name: "or", readsR1: true, readsR2: true, writesRd: true},
	XOR:     {name: "xor", readsR1: true, readsR2: true, writesRd: true},
	SHL:     {name: "shl", readsR1: true, readsR2: true, writesRd: true},
	SHR:     {name: "shr", readsR1: true, readsR2: true, writesRd: true},
	ADDI:    {name: "addi", readsR1: true, writesRd: true, hasImm: true},
	MULI:    {name: "muli", readsR1: true, writesRd: true, hasImm: true},
	ANDI:    {name: "andi", readsR1: true, writesRd: true, hasImm: true},
	CMPEQ:   {name: "cmpeq", readsR1: true, readsR2: true, writesRd: true},
	CMPNE:   {name: "cmpne", readsR1: true, readsR2: true, writesRd: true},
	CMPLT:   {name: "cmplt", readsR1: true, readsR2: true, writesRd: true},
	CMPLE:   {name: "cmple", readsR1: true, readsR2: true, writesRd: true},
	CMPGT:   {name: "cmpgt", readsR1: true, readsR2: true, writesRd: true},
	CMPGE:   {name: "cmpge", readsR1: true, readsR2: true, writesRd: true},
	LOAD:    {name: "load", readsR1: true, writesRd: true, loads: true, hasImm: true},
	STORE:   {name: "store", readsR1: true, readsR2: true, stores: true, hasImm: true},
	ALLOC:   {name: "alloc", readsR1: true, writesRd: true},
	BR:      {name: "br", branch: true, hasTgt: true},
	BEQ:     {name: "beq", readsR1: true, readsR2: true, branch: true, hasTgt: true},
	BNE:     {name: "bne", readsR1: true, readsR2: true, branch: true, hasTgt: true},
	BLT:     {name: "blt", readsR1: true, readsR2: true, branch: true, hasTgt: true},
	BGE:     {name: "bge", readsR1: true, readsR2: true, branch: true, hasTgt: true},
	BEQZ:    {name: "beqz", readsR1: true, branch: true, hasTgt: true},
	BNEZ:    {name: "bnez", readsR1: true, branch: true, hasTgt: true},
	CALL:    {name: "call", branch: true, hasTgt: true},
	RET:     {name: "ret", branch: true},
	BRR:     {name: "brr", readsR1: true, branch: true},
	CALLR:   {name: "callr", readsR1: true, branch: true},
	IN:      {name: "in", writesRd: true, hasImm: true},
	INAVAIL: {name: "inavail", writesRd: true, hasImm: true},
	OUT:     {name: "out", readsR1: true, hasImm: true},
	SPAWN:   {name: "spawn", readsR1: true, writesRd: true, hasTgt: true},
	JOIN:    {name: "join", readsR1: true},
	LOCK:    {name: "lock", readsR1: true, hasImm: true},
	UNLOCK:  {name: "unlock", readsR1: true, hasImm: true},
	BARRIER: {name: "barrier", readsR1: true, readsR2: true, hasImm: true},
	FLAGSET: {name: "flagset", readsR1: true, stores: true, hasImm: true},
	FLAGCLR: {name: "flagclr", readsR1: true, stores: true, hasImm: true},
	FLAGWT:  {name: "flagwt", readsR1: true, loads: true, hasImm: true},
	CAS:     {name: "cas", readsR1: true, readsR2: true, writesRd: true, loads: true, stores: true, hasImm: true},
	YIELD:   {name: "yield"},
	ASSERT:  {name: "assert", readsR1: true},
}

// String returns the assembler mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opTable) && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < opCount && opTable[op].name != "" }

// ReadsRs1 reports whether the opcode reads register operand Rs1.
func (op Op) ReadsRs1() bool { return opTable[op].readsR1 }

// ReadsRs2 reports whether the opcode reads register operand Rs2.
func (op Op) ReadsRs2() bool { return opTable[op].readsR2 }

// WritesRd reports whether the opcode writes register operand Rd.
func (op Op) WritesRd() bool { return opTable[op].writesRd }

// Loads reports whether the opcode reads memory at Rs1+Imm.
func (op Op) Loads() bool { return opTable[op].loads }

// Stores reports whether the opcode writes memory at Rs1+Imm.
func (op Op) Stores() bool { return opTable[op].stores }

// IsBranch reports whether the opcode may transfer control.
func (op Op) IsBranch() bool { return opTable[op].branch }

// HasTarget reports whether the opcode carries a Target label.
func (op Op) HasTarget() bool { return opTable[op].hasTgt }

// HasImm reports whether the opcode carries an immediate operand.
func (op Op) HasImm() bool { return opTable[op].hasImm }

// IsConditional reports whether the opcode is a conditional branch
// (its outcome depends on register values).
func (op Op) IsConditional() bool {
	switch op {
	case BEQ, BNE, BLT, BGE, BEQZ, BNEZ:
		return true
	}
	return false
}

// IsSync reports whether the opcode is a synchronization operation.
func (op Op) IsSync() bool {
	switch op {
	case LOCK, UNLOCK, BARRIER, FLAGSET, FLAGCLR, FLAGWT, CAS, JOIN, SPAWN:
		return true
	}
	return false
}

// opByName maps assembler mnemonics to opcodes.
var opByName = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for op := Op(0); op < opCount; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	return m
}()

// OpByName returns the opcode for an assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

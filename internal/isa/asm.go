package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembly text into a Program.
//
// Syntax, one item per line:
//
//	; comment                 (also # comment)
//	label:
//	.func name                begin a function section
//	.endfunc                  end it
//	.data 1, 2, 3             append words to the data segment
//	.reserve 16               append 16 zero words
//	.equ NAME value           define an assemble-time constant
//	op operands               e.g.  add r3, r1, r2
//	                                load r4, r2, 8
//	                                beq r1, r2, loop
//	                                movi r5, 42
//
// Operand order is uniform: Rd, then Rs1, then Rs2, then immediate,
// then label, including for memory ops — so a store is written
// "store base, value, offset" and a barrier "barrier base, count,
// offset". Numeric immediates may be decimal or 0x-hex and may name a
// .equ constant.
func Assemble(name, text string) (*Program, error) {
	a := &assembler{
		b:      NewBuilder(name),
		consts: make(map[string]int64),
	}
	lines := strings.Split(text, "\n")
	for ln, raw := range lines {
		if err := a.line(ln+1, raw); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, ln+1, err)
		}
	}
	p, err := a.b.Build()
	if err != nil {
		return nil, err
	}
	p.Source = lines
	// Builder assigned sequential statement ids; replace with real
	// source line numbers recorded during parsing.
	for i := range p.Instrs {
		p.Instrs[i].Line = a.srcLines[i]
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error, for constant program
// text in workloads and tests.
func MustAssemble(name, text string) *Program {
	p, err := Assemble(name, text)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	b        *Builder
	consts   map[string]int64
	srcLines []int
}

func (a *assembler) line(ln int, raw string) error {
	s := raw
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	// Labels, possibly followed by an instruction on the same line.
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		lbl := strings.TrimSpace(s[:i])
		if !isIdent(lbl) {
			return fmt.Errorf("invalid label %q", lbl)
		}
		a.b.Label(lbl)
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return a.b.err
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	return a.instr(ln, s)
}

func (a *assembler) directive(s string) error {
	fields := strings.Fields(s)
	switch fields[0] {
	case ".func":
		if len(fields) != 2 {
			return fmt.Errorf(".func wants a name")
		}
		a.b.Func(fields[1])
		return a.b.err
	case ".endfunc":
		a.b.EndFunc()
		return a.b.err
	case ".data":
		rest := strings.TrimSpace(strings.TrimPrefix(s, ".data"))
		for _, tok := range splitOperands(rest) {
			v, err := a.imm(tok)
			if err != nil {
				return err
			}
			a.b.Data(v)
		}
		return nil
	case ".reserve":
		if len(fields) != 2 {
			return fmt.Errorf(".reserve wants a count")
		}
		n, err := a.imm(fields[1])
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf(".reserve count must be >= 0")
		}
		a.b.Reserve(int(n))
		return nil
	case ".equ":
		if len(fields) != 3 {
			return fmt.Errorf(".equ wants NAME VALUE")
		}
		v, err := a.imm(fields[2])
		if err != nil {
			return err
		}
		a.consts[fields[1]] = v
		return nil
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

func (a *assembler) instr(ln int, s string) error {
	mnemonic := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	op, ok := OpByName(strings.ToLower(mnemonic))
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	operands := splitOperands(rest)
	ins := Instr{Op: op}
	want := 0
	next := func() (string, error) {
		if want >= len(operands) {
			return "", fmt.Errorf("%s: missing operand %d", op, want+1)
		}
		tok := operands[want]
		want++
		return tok, nil
	}
	var label string
	info := opTable[op]
	if info.writesRd {
		tok, err := next()
		if err != nil {
			return err
		}
		r, err := a.reg(tok)
		if err != nil {
			return err
		}
		ins.Rd = r
	}
	if info.readsR1 {
		tok, err := next()
		if err != nil {
			return err
		}
		r, err := a.reg(tok)
		if err != nil {
			return err
		}
		ins.Rs1 = r
	}
	if info.readsR2 {
		tok, err := next()
		if err != nil {
			return err
		}
		r, err := a.reg(tok)
		if err != nil {
			return err
		}
		ins.Rs2 = r
	}
	if info.hasImm {
		tok, err := next()
		if err != nil {
			return err
		}
		v, err := a.imm(tok)
		if err != nil {
			return err
		}
		ins.Imm = v
	}
	if info.hasTgt {
		tok, err := next()
		if err != nil {
			return err
		}
		if !isIdent(tok) {
			return fmt.Errorf("%s: invalid target label %q", op, tok)
		}
		label = tok
	}
	if want != len(operands) {
		return fmt.Errorf("%s: too many operands (%d given)", op, len(operands))
	}
	if label != "" {
		a.b.emitTo(ins, label)
	} else {
		a.b.emit(ins)
	}
	a.srcLines = append(a.srcLines, ln)
	return nil
}

func (a *assembler) reg(tok string) (uint8, error) {
	if len(tok) < 2 || (tok[0] != 'r' && tok[0] != 'R') {
		return 0, fmt.Errorf("invalid register %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("invalid register %q", tok)
	}
	return uint8(n), nil
}

func (a *assembler) imm(tok string) (int64, error) {
	if v, ok := a.consts[tok]; ok {
		return v, nil
	}
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid immediate %q", tok)
	}
	return v, nil
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		for _, f := range strings.Fields(p) {
			out = append(out, f)
		}
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpMetadata(t *testing.T) {
	if !ADD.ReadsRs1() || !ADD.ReadsRs2() || !ADD.WritesRd() {
		t.Fatal("ADD metadata wrong")
	}
	if LOAD.Stores() || !LOAD.Loads() || !LOAD.WritesRd() {
		t.Fatal("LOAD metadata wrong")
	}
	if !STORE.Stores() || STORE.WritesRd() {
		t.Fatal("STORE metadata wrong")
	}
	if !BEQ.IsBranch() || !BEQ.IsConditional() || !BEQ.HasTarget() {
		t.Fatal("BEQ metadata wrong")
	}
	if BR.IsConditional() {
		t.Fatal("BR should be unconditional")
	}
	if !LOCK.IsSync() || ADD.IsSync() {
		t.Fatal("IsSync wrong")
	}
	if Op(200).Valid() {
		t.Fatal("out-of-range opcode should be invalid")
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		name := op.String()
		got, ok := OpByName(name)
		if !ok {
			t.Fatalf("OpByName(%q) missing", name)
		}
		if got != op {
			t.Fatalf("OpByName(%q) = %v, want %v", name, got, op)
		}
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 10).
		Movi(2, 20).
		Add(3, 1, 2).
		Out(3, 0).
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 5 {
		t.Fatalf("got %d instrs", len(p.Instrs))
	}
	if p.Instrs[2].Op != ADD || p.Instrs[2].Rd != 3 {
		t.Fatalf("instr 2 = %v", p.Instrs[2])
	}
	if p.Instrs[0].Line != 1 || p.Instrs[4].Line != 5 {
		t.Fatal("builder statement ids not sequential")
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Movi(1, 0).
		Br("end").
		Movi(1, 99).
		Label("end").
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[1].Target != 3 {
		t.Fatalf("forward label target = %d, want 3", p.Instrs[1].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Br("nowhere").Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected undefined-label error")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected duplicate-label error")
	}
}

func TestBuilderFuncRanges(t *testing.T) {
	b := NewBuilder("t")
	b.Br("main")
	b.Func("helper").Addi(2, 1, 1).Ret().EndFunc()
	b.Label("main").Movi(1, 5).Call("helper").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fr, ok := p.Funcs["helper"]
	if !ok || fr.Start != 1 || fr.End != 3 {
		t.Fatalf("helper range = %+v", fr)
	}
	if name, ok := p.FuncAt(1); !ok || name != "helper" {
		t.Fatalf("FuncAt(1) = %q, %v", name, ok)
	}
	if _, ok := p.FuncAt(4); ok {
		t.Fatal("FuncAt outside any function should report false")
	}
}

func TestBuilderDataSegment(t *testing.T) {
	b := NewBuilder("t")
	a0 := b.Data(7, 8, 9)
	a1 := b.Reserve(4)
	b.Halt()
	p := b.MustBuild()
	if a0 != 0 || a1 != 3 {
		t.Fatalf("data addrs: %d %d", a0, a1)
	}
	if len(p.Data) != 7 || p.Data[2] != 9 || p.Data[5] != 0 {
		t.Fatalf("data segment = %v", p.Data)
	}
}

const asmExample = `
; sum the first n input words
.equ CH_IN 0
.equ CH_OUT 1
.data 0, 0
start:
    in r1, CH_IN        ; n
    movi r2, 0          ; sum
    movi r3, 0          ; i
loop:
    bge r3, r1, done
    in r4, CH_IN
    add r2, r2, r4
    addi r3, r3, 1
    br loop
done:
    out r2, CH_OUT
    halt
`

func TestAssembleExample(t *testing.T) {
	p, err := Assemble("sum", asmExample)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Instrs); got != 10 {
		t.Fatalf("got %d instrs:\n%s", got, p.Disassemble())
	}
	if p.Labels["loop"] != 3 || p.Labels["done"] != 8 {
		t.Fatalf("labels = %v", p.Labels)
	}
	if p.Instrs[3].Op != BGE || p.Instrs[3].Target != 8 {
		t.Fatalf("bge = %v", p.Instrs[3])
	}
	if p.Instrs[8].Imm != 1 || p.Instrs[6].Imm != 1 {
		t.Fatal(".equ constants not substituted")
	}
	if len(p.Data) != 2 {
		t.Fatalf("data = %v", p.Data)
	}
	// Statement ids should be true source lines.
	if p.Instrs[0].Line == 0 || p.SourceLine(p.Instrs[0].Line) != "in r1, CH_IN        ; n" {
		t.Fatalf("line mapping wrong: %d %q", p.Instrs[0].Line, p.SourceLine(p.Instrs[0].Line))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"badmnemonic", "frobnicate r1"},
		{"badreg", "movi r99, 1"},
		{"missingoperand", "add r1, r2"},
		{"toomany", "halt r1"},
		{"badlabelref", "br 123"},
		{"undefinedlabel", "br nowhere"},
		{"baddirective", ".bogus 1"},
		{"badimm", "movi r1, xyz"},
		{"badequ", ".equ OnlyName"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.name, c.text+"\nhalt"); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAssembleFuncDirectives(t *testing.T) {
	p, err := Assemble("f", `
    br main
.func double
    add r2, r1, r1
    ret
.endfunc
main:
    movi r1, 21
    call double
    out r2, 0
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	fr, ok := p.Funcs["double"]
	if !ok || fr.Start != 1 || fr.End != 3 {
		t.Fatalf("double = %+v", fr)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p := MustAssemble("sum", asmExample)
	d := p.Disassemble()
	for _, want := range []string{"loop:", "done:", "bge r3, r1, @8", "in r1, 0"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestBuildCFG(t *testing.T) {
	p := MustAssemble("sum", asmExample)
	cfg := BuildCFG(p)
	// Blocks: [0..3) header, [3,4) bge, [4,7) body, [7,9) done.
	if len(cfg.Blocks) != 4 {
		t.Fatalf("got %d blocks: %+v", len(cfg.Blocks), cfg.Blocks)
	}
	bge := cfg.Blocks[cfg.BlockOf[3]]
	if len(bge.Succs) != 2 {
		t.Fatalf("bge succs = %v", bge.Succs)
	}
	body := cfg.Blocks[cfg.BlockOf[4]]
	if len(body.Succs) != 1 || body.Succs[0] != cfg.BlockOf[3] {
		t.Fatalf("body succs = %v", body.Succs)
	}
	done := cfg.Blocks[cfg.BlockOf[8]]
	if len(done.Succs) != 0 {
		t.Fatalf("done succs = %v", done.Succs)
	}
}

func TestBlockStaticDeps(t *testing.T) {
	p := MustAssemble("s", `
    movi r1, 1
    movi r2, 2
    add r3, r1, r2
    add r4, r3, r1
    halt
`)
	cfg := BuildCFG(p)
	deps := BlockStaticDeps(cfg)
	blk := cfg.BlockOf[2]
	var got []StaticDep
	for _, d := range deps[blk] {
		got = append(got, d)
	}
	// add r3 reads r1 (def 0) and r2 (def 1); add r4 reads r3 (def 2) and r1 (def 0).
	if len(got) != 4 {
		t.Fatalf("deps = %+v", got)
	}
	found := map[[3]int]bool{}
	for _, d := range got {
		found[[3]int{d.Use, d.Def, int(d.Reg)}] = true
	}
	for _, want := range [][3]int{{2, 0, 1}, {2, 1, 2}, {3, 2, 3}, {3, 0, 1}} {
		if !found[want] {
			t.Errorf("missing static dep %v in %+v", want, got)
		}
	}
}

func TestStaticallyResolvedReads(t *testing.T) {
	p := MustAssemble("s", `
    movi r1, 1
    add r3, r1, r2   ; r1 resolved, r2 not
loop:
    add r3, r3, r1   ; nothing resolved: block entry kills
    br loop
`)
	cfg := BuildCFG(p)
	res := StaticallyResolvedReads(cfg)
	if res[1] != 1 {
		t.Fatalf("instr 1 resolved mask = %b, want 1", res[1])
	}
	if res[2] != 0 {
		t.Fatalf("instr 2 resolved mask = %b, want 0 (cross-block)", res[2])
	}
}

func TestImmediatePostdominators(t *testing.T) {
	// Diamond: entry -> (then|else) -> join -> exit
	p := MustAssemble("d", `
    beqz r1, elseb
    movi r2, 1
    br join
elseb:
    movi r2, 2
join:
    out r2, 0
    halt
`)
	cfg := BuildCFG(p)
	ipdom := ImmediatePostdominators(cfg)
	entry := cfg.BlockOf[0]
	join := cfg.BlockOf[p.Labels["join"]]
	if ipdom[entry] != join {
		t.Fatalf("ipdom(entry)=%d want %d (blocks %+v)", ipdom[entry], join, cfg.Blocks)
	}
	thenB := cfg.BlockOf[1]
	elseB := cfg.BlockOf[p.Labels["elseb"]]
	if ipdom[thenB] != join || ipdom[elseB] != join {
		t.Fatalf("ipdom(then)=%d ipdom(else)=%d want %d", ipdom[thenB], ipdom[elseB], join)
	}
	if ipdom[join] != -1 {
		t.Fatalf("ipdom(join)=%d want -1", ipdom[join])
	}
}

// Property: every assembled program validates, and disassembly of each
// instruction mentions its mnemonic.
func TestInstrStringProperty(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int64) bool {
		o := Op(op % uint8(opCount))
		if !o.Valid() {
			return true
		}
		ins := Instr{Op: o, Rd: rd % NumRegs, Rs1: rs1 % NumRegs, Rs2: rs2 % NumRegs, Imm: imm}
		s := ins.String()
		return strings.HasPrefix(s, o.String())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: labels in assembled programs always resolve inside the
// instruction range.
func TestAssembledTargetsInRange(t *testing.T) {
	p := MustAssemble("sum", asmExample)
	for i, ins := range p.Instrs {
		if ins.Op.HasTarget() && (ins.Target < 0 || ins.Target >= len(p.Instrs)) {
			t.Fatalf("instr %d target out of range: %v", i, ins)
		}
	}
}

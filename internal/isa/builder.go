package isa

import "fmt"

// Builder constructs programs programmatically. Labels may be
// referenced before they are defined; Build resolves them.
//
// Each emitted instruction is assigned a monotonically increasing
// statement id (Line), so builder-made programs work with the
// statement-oriented analyses (slicing, fault location) the same way
// assembled programs do.
type Builder struct {
	name    string
	instrs  []Instr
	labels  map[string]int
	pending map[string][]int // label -> instr indices awaiting resolution
	data    []int64
	funcs   map[string]FuncRange
	curFn   string
	fnStart int
	err     error
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int),
		pending: make(map[string][]int),
		funcs:   make(map[string]FuncRange),
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("isa builder %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.instrs)
	return b
}

// Func opens a named function section; EndFunc closes it.
func (b *Builder) Func(name string) *Builder {
	if b.curFn != "" {
		b.fail("nested function %q inside %q", name, b.curFn)
		return b
	}
	b.curFn = name
	b.fnStart = len(b.instrs)
	b.Label(name)
	return b
}

// EndFunc closes the current function section.
func (b *Builder) EndFunc() *Builder {
	if b.curFn == "" {
		b.fail("EndFunc without Func")
		return b
	}
	b.funcs[b.curFn] = FuncRange{Start: b.fnStart, End: len(b.instrs)}
	b.curFn = ""
	return b
}

// Data appends words to the initial data segment and returns the word
// address of the first appended word.
func (b *Builder) Data(words ...int64) int64 {
	addr := int64(len(b.data))
	b.data = append(b.data, words...)
	return addr
}

// Reserve appends n zero words to the data segment and returns the
// word address of the block.
func (b *Builder) Reserve(n int) int64 {
	addr := int64(len(b.data))
	b.data = append(b.data, make([]int64, n)...)
	return addr
}

// emit appends an instruction, assigning its statement id.
func (b *Builder) emit(ins Instr) *Builder {
	ins.Line = len(b.instrs) + 1
	b.instrs = append(b.instrs, ins)
	return b
}

// emitTo appends a control transfer to a (possibly forward) label.
func (b *Builder) emitTo(ins Instr, label string) *Builder {
	if idx, ok := b.labels[label]; ok {
		ins.Target = idx
	} else {
		ins.Target = -1
		b.pending[label] = append(b.pending[label], len(b.instrs))
	}
	return b.emit(ins)
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: NOP}) }

// Halt stops the current thread.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: HALT}) }

// Failure stops the machine marking the run failed.
func (b *Builder) Failure() *Builder { return b.emit(Instr{Op: FAIL}) }

// Movi sets rd = imm.
func (b *Builder) Movi(rd uint8, imm int64) *Builder {
	return b.emit(Instr{Op: MOVI, Rd: rd, Imm: imm})
}

// Mov sets rd = rs.
func (b *Builder) Mov(rd, rs uint8) *Builder {
	return b.emit(Instr{Op: MOV, Rd: rd, Rs1: rs})
}

// Op3 emits a three-register ALU instruction rd = rs1 op rs2.
func (b *Builder) Op3(op Op, rd, rs1, rs2 uint8) *Builder {
	if !op.ReadsRs2() || !op.WritesRd() {
		b.fail("Op3 with non-3-register opcode %s", op)
	}
	return b.emit(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 uint8) *Builder { return b.Op3(ADD, rd, rs1, rs2) }

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 uint8) *Builder { return b.Op3(SUB, rd, rs1, rs2) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 uint8) *Builder { return b.Op3(MUL, rd, rs1, rs2) }

// Div emits rd = rs1 / rs2.
func (b *Builder) Div(rd, rs1, rs2 uint8) *Builder { return b.Op3(DIV, rd, rs1, rs2) }

// Mod emits rd = rs1 % rs2.
func (b *Builder) Mod(rd, rs1, rs2 uint8) *Builder { return b.Op3(MOD, rd, rs1, rs2) }

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 uint8) *Builder { return b.Op3(AND, rd, rs1, rs2) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 uint8) *Builder { return b.Op3(OR, rd, rs1, rs2) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 uint8) *Builder { return b.Op3(XOR, rd, rs1, rs2) }

// Shl emits rd = rs1 << rs2.
func (b *Builder) Shl(rd, rs1, rs2 uint8) *Builder { return b.Op3(SHL, rd, rs1, rs2) }

// Shr emits rd = rs1 >> rs2.
func (b *Builder) Shr(rd, rs1, rs2 uint8) *Builder { return b.Op3(SHR, rd, rs1, rs2) }

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 uint8, imm int64) *Builder {
	return b.emit(Instr{Op: ADDI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Muli emits rd = rs1 * imm.
func (b *Builder) Muli(rd, rs1 uint8, imm int64) *Builder {
	return b.emit(Instr{Op: MULI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 uint8, imm int64) *Builder {
	return b.emit(Instr{Op: ANDI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Cmp emits a comparison rd = (rs1 op rs2) ? 1 : 0.
func (b *Builder) Cmp(op Op, rd, rs1, rs2 uint8) *Builder { return b.Op3(op, rd, rs1, rs2) }

// Load emits rd = Mem[rs1+off].
func (b *Builder) Load(rd, rs1 uint8, off int64) *Builder {
	return b.emit(Instr{Op: LOAD, Rd: rd, Rs1: rs1, Imm: off})
}

// Store emits Mem[rs1+off] = rs2.
func (b *Builder) Store(rs1 uint8, off int64, rs2 uint8) *Builder {
	return b.emit(Instr{Op: STORE, Rs1: rs1, Rs2: rs2, Imm: off})
}

// Alloc emits rd = address of a fresh rs1-word block.
func (b *Builder) Alloc(rd, rs1 uint8) *Builder {
	return b.emit(Instr{Op: ALLOC, Rd: rd, Rs1: rs1})
}

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) *Builder { return b.emitTo(Instr{Op: BR}, label) }

// CondBr emits a two-register conditional branch to label.
func (b *Builder) CondBr(op Op, rs1, rs2 uint8, label string) *Builder {
	return b.emitTo(Instr{Op: op, Rs1: rs1, Rs2: rs2}, label)
}

// Beq emits if rs1 == rs2 goto label.
func (b *Builder) Beq(rs1, rs2 uint8, label string) *Builder { return b.CondBr(BEQ, rs1, rs2, label) }

// Bne emits if rs1 != rs2 goto label.
func (b *Builder) Bne(rs1, rs2 uint8, label string) *Builder { return b.CondBr(BNE, rs1, rs2, label) }

// Blt emits if rs1 < rs2 goto label.
func (b *Builder) Blt(rs1, rs2 uint8, label string) *Builder { return b.CondBr(BLT, rs1, rs2, label) }

// Bge emits if rs1 >= rs2 goto label.
func (b *Builder) Bge(rs1, rs2 uint8, label string) *Builder { return b.CondBr(BGE, rs1, rs2, label) }

// Beqz emits if rs1 == 0 goto label.
func (b *Builder) Beqz(rs1 uint8, label string) *Builder {
	return b.emitTo(Instr{Op: BEQZ, Rs1: rs1}, label)
}

// Bnez emits if rs1 != 0 goto label.
func (b *Builder) Bnez(rs1 uint8, label string) *Builder {
	return b.emitTo(Instr{Op: BNEZ, Rs1: rs1}, label)
}

// Call emits a call to label.
func (b *Builder) Call(label string) *Builder { return b.emitTo(Instr{Op: CALL}, label) }

// Ret emits a return.
func (b *Builder) Ret() *Builder { return b.emit(Instr{Op: RET}) }

// Brr emits an indirect jump to the address in rs1.
func (b *Builder) Brr(rs1 uint8) *Builder { return b.emit(Instr{Op: BRR, Rs1: rs1}) }

// Callr emits an indirect call to the address in rs1.
func (b *Builder) Callr(rs1 uint8) *Builder { return b.emit(Instr{Op: CALLR, Rs1: rs1}) }

// In emits rd = next word from input channel ch.
func (b *Builder) In(rd uint8, ch int64) *Builder {
	return b.emit(Instr{Op: IN, Rd: rd, Imm: ch})
}

// InAvail emits rd = words remaining on input channel ch.
func (b *Builder) InAvail(rd uint8, ch int64) *Builder {
	return b.emit(Instr{Op: INAVAIL, Rd: rd, Imm: ch})
}

// Out emits rs1 to output channel ch.
func (b *Builder) Out(rs1 uint8, ch int64) *Builder {
	return b.emit(Instr{Op: OUT, Rs1: rs1, Imm: ch})
}

// Spawn emits rd = tid of a new thread at label with argument rs1.
func (b *Builder) Spawn(rd, rs1 uint8, label string) *Builder {
	return b.emitTo(Instr{Op: SPAWN, Rd: rd, Rs1: rs1}, label)
}

// Join emits a join on thread id rs1.
func (b *Builder) Join(rs1 uint8) *Builder { return b.emit(Instr{Op: JOIN, Rs1: rs1}) }

// Lock emits an acquire of the lock at rs1+off.
func (b *Builder) Lock(rs1 uint8, off int64) *Builder {
	return b.emit(Instr{Op: LOCK, Rs1: rs1, Imm: off})
}

// Unlock emits a release of the lock at rs1+off.
func (b *Builder) Unlock(rs1 uint8, off int64) *Builder {
	return b.emit(Instr{Op: UNLOCK, Rs1: rs1, Imm: off})
}

// Barrier emits a barrier at rs1+off with rs2 participants.
func (b *Builder) Barrier(rs1 uint8, off int64, rs2 uint8) *Builder {
	return b.emit(Instr{Op: BARRIER, Rs1: rs1, Rs2: rs2, Imm: off})
}

// FlagSet emits Mem[rs1+off] = 1.
func (b *Builder) FlagSet(rs1 uint8, off int64) *Builder {
	return b.emit(Instr{Op: FLAGSET, Rs1: rs1, Imm: off})
}

// FlagClr emits Mem[rs1+off] = 0.
func (b *Builder) FlagClr(rs1 uint8, off int64) *Builder {
	return b.emit(Instr{Op: FLAGCLR, Rs1: rs1, Imm: off})
}

// FlagWait emits a blocking wait for Mem[rs1+off] != 0.
func (b *Builder) FlagWait(rs1 uint8, off int64) *Builder {
	return b.emit(Instr{Op: FLAGWT, Rs1: rs1, Imm: off})
}

// Cas emits rd = Mem[rs1]; if rd == rs2 { Mem[rs1] = newVal }.
func (b *Builder) Cas(rd, rs1, rs2 uint8, newVal int64) *Builder {
	return b.emit(Instr{Op: CAS, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: newVal})
}

// Yield emits a voluntary quantum end.
func (b *Builder) Yield() *Builder { return b.emit(Instr{Op: YIELD}) }

// Assert emits a check that rs1 != 0.
func (b *Builder) Assert(rs1 uint8) *Builder { return b.emit(Instr{Op: ASSERT, Rs1: rs1}) }

// Build resolves labels and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.curFn != "" {
		return nil, fmt.Errorf("isa builder %q: unterminated function %q", b.name, b.curFn)
	}
	for label, sites := range b.pending {
		idx, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("isa builder %q: undefined label %q", b.name, label)
		}
		for _, site := range sites {
			b.instrs[site].Target = idx
		}
	}
	p := &Program{
		Name:   b.name,
		Instrs: b.instrs,
		Labels: b.labels,
		Data:   b.data,
		Funcs:  b.funcs,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for tests and workload
// construction where the program text is a compile-time constant.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

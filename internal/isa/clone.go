package isa

// Clone returns a deep copy of the program sharing no mutable state
// with the original, so callers can rewrite instructions, labels, or
// data without affecting it (the progen shrinker edits candidate
// copies this way).
func (p *Program) Clone() *Program {
	q := &Program{
		Name:   p.Name,
		Instrs: append([]Instr(nil), p.Instrs...),
		Data:   append([]int64(nil), p.Data...),
		Source: append([]string(nil), p.Source...),
	}
	if p.Labels != nil {
		q.Labels = make(map[string]int, len(p.Labels))
		for k, v := range p.Labels {
			q.Labels[k] = v
		}
	}
	if p.Funcs != nil {
		q.Funcs = make(map[string]FuncRange, len(p.Funcs))
		for k, v := range p.Funcs {
			q.Funcs[k] = v
		}
	}
	return q
}

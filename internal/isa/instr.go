package isa

import (
	"fmt"
	"strings"
)

// NumRegs is the number of general-purpose registers per thread.
// By convention r0 is the zero register (writes to it are discarded),
// r1 carries the thread argument, and r31 is the stack pointer for
// programs that maintain one.
const NumRegs = 32

// Instr is a single decoded instruction. Instructions are stored
// decoded (no binary encoding) — the VM interprets them directly.
type Instr struct {
	Op     Op
	Rd     uint8 // destination register
	Rs1    uint8 // first source register / address base
	Rs2    uint8 // second source register
	Imm    int64 // immediate / address displacement / CAS new value
	Target int   // resolved instruction index for control transfers

	// Line is the statement identifier: the source line number in
	// the assembly text (or the builder-assigned statement id).
	// Fault-location results are reported in terms of Line.
	Line int
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	info := opTable[i.Op]
	parts := []string{i.Op.String()}
	add := func(s string) { parts = append(parts, s) }
	if info.writesRd {
		add(fmt.Sprintf("r%d", i.Rd))
	}
	if info.readsR1 {
		add(fmt.Sprintf("r%d", i.Rs1))
	}
	if info.readsR2 {
		add(fmt.Sprintf("r%d", i.Rs2))
	}
	if info.hasImm {
		add(fmt.Sprintf("%d", i.Imm))
	}
	if info.hasTgt {
		add(fmt.Sprintf("@%d", i.Target))
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return parts[0] + " " + strings.Join(parts[1:], ", ")
}

// Program is an executable unit: code, initial data image, and
// metadata used by analyses and reporting.
type Program struct {
	Name   string
	Instrs []Instr
	// Labels maps label names to instruction indices.
	Labels map[string]int
	// Data is the initial data segment, loaded at word address 0.
	Data []int64
	// Source holds the original assembly lines (1-based via Line),
	// when the program came from the assembler; may be nil.
	Source []string
	// Funcs maps function names to [start,end) instruction ranges,
	// populated by the assembler from .func/.endfunc directives and
	// by the builder from Func sections. Used by selective tracing.
	Funcs map[string]FuncRange
}

// FuncRange is a half-open range of instruction indices forming a
// function body.
type FuncRange struct {
	Start, End int
}

// Contains reports whether instruction index pc lies in the range.
func (fr FuncRange) Contains(pc int) bool { return pc >= fr.Start && pc < fr.End }

// FuncAt returns the name of the function containing pc, if any.
func (p *Program) FuncAt(pc int) (string, bool) {
	for name, fr := range p.Funcs {
		if fr.Contains(pc) {
			return name, true
		}
	}
	return "", false
}

// LineOf returns the statement id of instruction index pc, or -1.
func (p *Program) LineOf(pc int) int {
	if pc < 0 || pc >= len(p.Instrs) {
		return -1
	}
	return p.Instrs[pc].Line
}

// SourceLine returns the source text for a statement id, if known.
func (p *Program) SourceLine(line int) string {
	if line >= 1 && line <= len(p.Source) {
		return strings.TrimSpace(p.Source[line-1])
	}
	return ""
}

// Validate checks structural invariants: opcodes defined, register
// indices in range, and branch targets within the code.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("isa: program %q has no instructions", p.Name)
	}
	for idx, ins := range p.Instrs {
		if !ins.Op.Valid() {
			return fmt.Errorf("isa: %q instr %d: invalid opcode %d", p.Name, idx, ins.Op)
		}
		if ins.Rd >= NumRegs || ins.Rs1 >= NumRegs || ins.Rs2 >= NumRegs {
			return fmt.Errorf("isa: %q instr %d (%s): register out of range", p.Name, idx, ins)
		}
		if ins.Op.HasTarget() && (ins.Target < 0 || ins.Target >= len(p.Instrs)) {
			return fmt.Errorf("isa: %q instr %d (%s): target %d out of range", p.Name, idx, ins, ins.Target)
		}
	}
	return nil
}

// Disassemble renders the whole program with instruction indices and
// label annotations, one instruction per line.
func (p *Program) Disassemble() string {
	byIndex := make(map[int][]string)
	for name, idx := range p.Labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	var b strings.Builder
	for idx, ins := range p.Instrs {
		for _, lbl := range byIndex[idx] {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		fmt.Fprintf(&b, "  %4d  %s\n", idx, ins.String())
	}
	return b.String()
}

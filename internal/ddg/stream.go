package ddg

import (
	"scaldift/internal/cdep"
	"scaldift/internal/isa"
	"scaldift/internal/shadow"
	"scaldift/internal/vm"
)

// This file splits the Extractor's work into the two halves the
// offloaded tracing stage (internal/ontrac) needs:
//
//   - ThreadExtractor: the thread-private part — register definition
//     tags and the online control-dependence stack. One extractor per
//     thread; distinct threads' extractors may run concurrently in
//     worker goroutines over a recorded batch stream.
//   - MemResolver: the shared part — last-writer tags for memory
//     words. Memory dependences cross threads, so they are resolved
//     at window boundaries by one goroutine walking the window's
//     events in global Seq order, which reproduces the inline
//     extractor's answers exactly.
//
// The inline Extractor (track.go) and this split front end implement
// the same dependence semantics; the differential suite in
// internal/ontrac holds them to identical output.

// TraceRelevant is the tracing-relevance filter for vm.Recorder,
// beside dift.Relevant: it selects the events dependence extraction
// consumes. Unlike taint propagation, tracing needs every completed
// instruction — the control-dependence tracker closes predicate
// regions by watching each executed PC, and bytes-per-instruction
// accounting counts them all — so only blocked retries are dropped.
func TraceRelevant(ev *vm.Event) bool { return !ev.Blocked }

// Extracted is one instruction instance after thread-local
// extraction: its identity, the dependences resolvable from
// thread-private state (register defs, in order, and the control
// parent), and the event itself for the window-boundary memory merge.
// Ev points into a recorder batch: it is valid only until the batch
// is freed, so Extracted values must not outlive their window.
type Extracted struct {
	ID   ID
	PC   int32
	Ev   *vm.Event
	Deps []Dep // register data dependences, source order
	Ctrl cdep.Parent
}

// ThreadExtractor extracts one thread's thread-local dependences from
// a recorded event stream. It is NOT a vm.Tool: the offloaded stage
// drives it with each of the thread's events in program order,
// potentially from a different worker goroutine per window (windows
// are barriered, so the state needs no locking).
type ThreadExtractor struct {
	tid     int
	regTags [isa.NumRegs]tag
	ctrl    *cdep.ThreadTracker // nil when control deps are off
}

// NewThreadExtractor builds the extractor for one thread. ctrl may be
// nil to skip control dependences.
func NewThreadExtractor(tid int, ctrl *cdep.ThreadTracker) *ThreadExtractor {
	return &ThreadExtractor{tid: tid, ctrl: ctrl}
}

// Extract processes one non-blocked event of this thread, appending
// its register dependences to arena and returning the extracted
// record (whose Deps alias the appended region) plus the grown arena.
// Size the arena for 2·events to keep earlier records' aliases valid.
// The instance number is taken from ev.ThreadSeq.
func (x *ThreadExtractor) Extract(ev *vm.Event, arena []Dep) (Extracted, []Dep) {
	n := ev.ThreadSeq
	id := MakeID(x.tid, n)
	pc := int32(ev.PC)

	var parent cdep.Parent
	if x.ctrl != nil {
		parent = x.ctrl.Observe(ev.PC, n, ev.Instr.Op, ev.Taken)
	}

	start := len(arena)
	seen := [2]int{-1, -1}
	for i := 0; i < ev.NSrc; i++ {
		r := ev.SrcRegs[i]
		if r == seen[0] || r == seen[1] {
			continue // same register twice: one edge
		}
		seen[i] = r
		if tg := x.regTags[r]; tg.id != 0 {
			arena = append(arena, Dep{Use: id, UsePC: pc, Def: tg.id, DefPC: tg.pc, Kind: Data})
		}
	}
	if ev.DstReg > 0 { // r0 is the discard register
		x.regTags[ev.DstReg] = tag{id: id, pc: pc}
	}
	return Extracted{ID: id, PC: pc, Ev: ev, Deps: arena[start:len(arena):len(arena)], Ctrl: parent}, arena
}

// SeedSpawnArg records that this thread's r1 was defined by a spawn
// instance in another thread. The offloaded stage calls it while
// applying a solo spawn batch — a global ordering point, so no other
// goroutine touches the state.
func (x *ThreadExtractor) SeedSpawnArg(def ID, defPC int32) {
	x.regTags[1] = tag{id: def, pc: defPC}
}

// MemResolver owns the last-writer (and, with WAR/WAW tracking, the
// last-reader) tags of memory words — the one piece of extraction
// state shared across threads. Resolve must be called for the
// window's events in global Seq order, on a single goroutine; it then
// reproduces exactly the memory dependences the inline Extractor used
// to compute itself (the inline Extractor is now built from this
// resolver plus per-thread extractors, so the semantics exist once).
type MemResolver struct {
	memTags  *shadow.Mem[tag]
	readTags *shadow.Mem[tag] // last reader per word; nil without WAR/WAW
}

// NewMemResolver returns an empty resolver. trackWAR additionally
// resolves write-after-read and write-after-write edges on memory,
// the extension that makes slicing usable for race detection (§3.1).
func NewMemResolver(trackWAR bool) *MemResolver {
	r := &MemResolver{memTags: shadow.NewMem[tag]()}
	if trackWAR {
		r.readTags = shadow.NewMem[tag]()
	}
	return r
}

// Resolve completes rec's dependence list in the extractor's order —
// register deps, then the memory dependence, then the control parent,
// then WAW/WAR when tracked — appending into buf (reused by the
// caller per event), and applies the event's memory reads and writes
// to the shared tags.
func (r *MemResolver) Resolve(rec *Extracted, buf []Dep) []Dep {
	buf = append(buf, rec.Deps...)
	ev := rec.Ev
	if ev.SrcMem != vm.NoAddr {
		if tg := r.memTags.Get(ev.SrcMem); tg.id != 0 {
			buf = append(buf, Dep{Use: rec.ID, UsePC: rec.PC, Def: tg.id, DefPC: tg.pc, Kind: Data})
		}
		if r.readTags != nil {
			r.readTags.Set(ev.SrcMem, tag{id: rec.ID, pc: rec.PC})
		}
	}
	if rec.Ctrl.N != 0 {
		buf = append(buf, Dep{Use: rec.ID, UsePC: rec.PC,
			Def: MakeID(rec.ID.TID(), rec.Ctrl.N), DefPC: rec.Ctrl.PC, Kind: Control})
	}
	if ev.DstMem != vm.NoAddr {
		if r.readTags != nil {
			if tg := r.memTags.Get(ev.DstMem); tg.id != 0 {
				buf = append(buf, Dep{Use: rec.ID, UsePC: rec.PC, Def: tg.id, DefPC: tg.pc, Kind: WAW})
			}
			if tg := r.readTags.Get(ev.DstMem); tg.id != 0 && tg.id != rec.ID {
				buf = append(buf, Dep{Use: rec.ID, UsePC: rec.PC, Def: tg.id, DefPC: tg.pc, Kind: WAR})
			}
		}
		r.memTags.Set(ev.DstMem, tag{id: rec.ID, pc: rec.PC})
	}
	return buf
}

// Reset clears the shared memory tags.
func (r *MemResolver) Reset() {
	r.memTags.Clear()
	if r.readTags != nil {
		r.readTags.Clear()
	}
}

package ddg

import (
	"scaldift/internal/cdep"
	"scaldift/internal/isa"
	"scaldift/internal/shadow"
	"scaldift/internal/vm"
)

// Sink consumes the dependence stream the Extractor produces. Node is
// called once per executed instruction (in per-thread order); Deps is
// called with that instance's dependences (possibly empty).
type Sink interface {
	Node(id ID, pc int32, ev *vm.Event)
	Deps(id ID, pc int32, deps []Dep)
}

// tag records the last definition of a location.
type tag struct {
	id ID
	pc int32
}

// Extractor is a vm.Tool that converts the instruction event stream
// into dynamic dependences: it shadows every register and memory word
// with its most recent definer, consults the online control-
// dependence tracker, and reports (use ← def) edges to a Sink. It is
// the common front end of both ONTRAC (online, optimized) and the
// offline full tracer.
type Extractor struct {
	prog *isa.Program
	ctrl *cdep.Tracker
	sink Sink

	regTags  [][isa.NumRegs]tag
	memTags  *shadow.Mem[tag]
	counts   []uint64
	depBuf   []Dep
	instrs   uint64
	trackWAR bool
	readTags *shadow.Mem[tag] // last reader per word (WAR edges)
}

// ExtractorOpts configures optional dependence classes.
type ExtractorOpts struct {
	// ControlDeps enables dynamic control dependence edges.
	ControlDeps bool
	// WARWAW additionally emits write-after-read and write-after-
	// write edges on memory, the extension that makes slicing usable
	// for data race detection (§3.1).
	WARWAW bool
}

// NewExtractor builds an extractor for prog reporting to sink.
func NewExtractor(prog *isa.Program, sink Sink, opts ExtractorOpts) *Extractor {
	e := &Extractor{
		prog:     prog,
		sink:     sink,
		memTags:  shadow.NewMem[tag](),
		trackWAR: opts.WARWAW,
	}
	if opts.ControlDeps {
		e.ctrl = cdep.New(prog)
	}
	if opts.WARWAW {
		e.readTags = shadow.NewMem[tag]()
	}
	return e
}

// Instrs returns the number of instructions observed (the denominator
// of bytes-per-instruction).
func (e *Extractor) Instrs() uint64 { return e.instrs }

// LastID returns the id of the most recent instruction of a thread.
func (e *Extractor) LastID(tid int) ID {
	if tid >= len(e.counts) {
		return 0
	}
	return MakeID(tid, e.counts[tid])
}

func (e *Extractor) grow(tid int) {
	for tid >= len(e.counts) {
		e.counts = append(e.counts, 0)
		e.regTags = append(e.regTags, [isa.NumRegs]tag{})
	}
}

// OnEvent implements vm.Tool.
func (e *Extractor) OnEvent(m *vm.Machine, ev *vm.Event) {
	if ev.Blocked {
		return
	}
	e.instrs++
	tid := ev.TID
	e.grow(tid)
	e.counts[tid]++
	n := e.counts[tid]
	id := MakeID(tid, n)
	pc := int32(ev.PC)
	regs := &e.regTags[tid]

	var parent cdep.Parent
	if e.ctrl != nil {
		parent = e.ctrl.Observe(tid, ev.PC, n, ev.Instr.Op, ev.Taken)
	}
	e.sink.Node(id, pc, ev)

	deps := e.depBuf[:0]
	seen := [2]int{-1, -1}
	for i := 0; i < ev.NSrc; i++ {
		r := ev.SrcRegs[i]
		if r == seen[0] || r == seen[1] {
			continue // same register twice: one edge
		}
		seen[i] = r
		if tg := regs[r]; tg.id != 0 {
			deps = append(deps, Dep{Use: id, UsePC: pc, Def: tg.id, DefPC: tg.pc, Kind: Data})
		}
	}
	if ev.SrcMem != vm.NoAddr {
		if tg := e.memTags.Get(ev.SrcMem); tg.id != 0 {
			deps = append(deps, Dep{Use: id, UsePC: pc, Def: tg.id, DefPC: tg.pc, Kind: Data})
		}
		if e.trackWAR {
			e.readTags.Set(ev.SrcMem, tag{id: id, pc: pc})
		}
	}
	if parent.N != 0 {
		deps = append(deps, Dep{Use: id, UsePC: pc,
			Def: MakeID(tid, parent.N), DefPC: parent.PC, Kind: Control})
	}
	if ev.DstMem != vm.NoAddr {
		if e.trackWAR {
			if tg := e.memTags.Get(ev.DstMem); tg.id != 0 {
				deps = append(deps, Dep{Use: id, UsePC: pc, Def: tg.id, DefPC: tg.pc, Kind: WAW})
			}
			if tg := e.readTags.Get(ev.DstMem); tg.id != 0 && tg.id != id {
				deps = append(deps, Dep{Use: id, UsePC: pc, Def: tg.id, DefPC: tg.pc, Kind: WAR})
			}
		}
		e.memTags.Set(ev.DstMem, tag{id: id, pc: pc})
	}
	if ev.DstReg > 0 { // r0 is the discard register
		regs[ev.DstReg] = tag{id: id, pc: pc}
	}
	if ev.Kind == vm.EvSpawn {
		// The child's r1 receives the argument: its definition site
		// is this spawn instance.
		child := int(ev.DstVal)
		e.grow(child)
		e.regTags[child][1] = tag{id: id, pc: pc}
	}

	e.sink.Deps(id, pc, deps)
	e.depBuf = deps[:0]
}

// Reset clears all shadow state (between runs on one machine).
func (e *Extractor) Reset() {
	e.regTags = nil
	e.counts = nil
	e.memTags.Clear()
	if e.readTags != nil {
		e.readTags.Clear()
	}
	if e.ctrl != nil {
		e.ctrl.Reset()
	}
	e.instrs = 0
}

var _ vm.Tool = (*Extractor)(nil)

// FullSink builds a Full graph from the extractor stream.
type FullSink struct {
	G *Full
}

// NewFullSink wraps an empty Full graph.
func NewFullSink() *FullSink { return &FullSink{G: NewFull()} }

// Node implements Sink.
func (s *FullSink) Node(id ID, pc int32, _ *vm.Event) { s.G.AddNode(id, pc) }

// Deps implements Sink.
func (s *FullSink) Deps(_ ID, _ int32, deps []Dep) {
	for _, d := range deps {
		s.G.AddDep(d)
	}
}

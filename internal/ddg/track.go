package ddg

import (
	"scaldift/internal/cdep"
	"scaldift/internal/vm"

	"scaldift/internal/isa"
)

// Sink consumes the dependence stream the Extractor produces. Node is
// called once per executed instruction (in per-thread order); Deps is
// called with that instance's dependences (possibly empty).
type Sink interface {
	Node(id ID, pc int32, ev *vm.Event)
	Deps(id ID, pc int32, deps []Dep)
}

// tag records the last definition (or read) of a location.
type tag struct {
	id ID
	pc int32
}

// Extractor is a vm.Tool that converts the instruction event stream
// into dynamic dependences, reporting (use ← def) edges to a Sink. It
// is the common front end of both ONTRAC (online, optimized) and the
// offline full tracer.
//
// It is a composition of the two split halves in stream.go — a
// ThreadExtractor per thread (register tags, control-dependence
// stacks) and one MemResolver (memory tags) — driven inline, event by
// event. The offloaded tracing stage (internal/ontrac) drives the
// same halves decoupled: extractors in parallel workers, the resolver
// in a global-Seq merge. The dependence semantics therefore exist
// exactly once.
type Extractor struct {
	prog *isa.Program
	ctrl *cdep.Tracker
	sink Sink

	threads []*ThreadExtractor
	res     *MemResolver
	counts  []uint64
	arena   []Dep
	depBuf  []Dep
	instrs  uint64
}

// ExtractorOpts configures optional dependence classes.
type ExtractorOpts struct {
	// ControlDeps enables dynamic control dependence edges.
	ControlDeps bool
	// WARWAW additionally emits write-after-read and write-after-
	// write edges on memory, the extension that makes slicing usable
	// for data race detection (§3.1).
	WARWAW bool
}

// NewExtractor builds an extractor for prog reporting to sink.
func NewExtractor(prog *isa.Program, sink Sink, opts ExtractorOpts) *Extractor {
	e := &Extractor{
		prog: prog,
		sink: sink,
		res:  NewMemResolver(opts.WARWAW),
	}
	if opts.ControlDeps {
		e.ctrl = cdep.New(prog)
	}
	return e
}

// Instrs returns the number of instructions observed (the denominator
// of bytes-per-instruction).
func (e *Extractor) Instrs() uint64 { return e.instrs }

// LastID returns the id of the most recent instruction of a thread;
// the zero ID means the thread never executed one (covering threads
// only known through a spawn that seeded their registers).
func (e *Extractor) LastID(tid int) ID {
	if tid >= len(e.counts) || e.counts[tid] == 0 {
		return 0
	}
	return MakeID(tid, e.counts[tid])
}

// thread returns (creating if needed) tid's per-thread extractor.
func (e *Extractor) thread(tid int) *ThreadExtractor {
	for tid >= len(e.threads) {
		e.threads = append(e.threads, nil)
		e.counts = append(e.counts, 0)
	}
	if e.threads[tid] == nil {
		var ct *cdep.ThreadTracker
		if e.ctrl != nil {
			ct = e.ctrl.Thread(tid)
		}
		e.threads[tid] = NewThreadExtractor(tid, ct)
	}
	return e.threads[tid]
}

// OnEvent implements vm.Tool.
func (e *Extractor) OnEvent(m *vm.Machine, ev *vm.Event) {
	if ev.Blocked {
		return
	}
	e.instrs++
	tid := ev.TID
	x := e.thread(tid)
	var rec Extracted
	rec, e.arena = x.Extract(ev, e.arena[:0])
	e.counts[tid] = ev.ThreadSeq
	e.sink.Node(rec.ID, rec.PC, ev)
	deps := e.res.Resolve(&rec, e.depBuf[:0])
	if ev.Kind == vm.EvSpawn {
		// The child's r1 receives the argument: its definition site
		// is this spawn instance.
		e.thread(int(ev.DstVal)).SeedSpawnArg(rec.ID, rec.PC)
	}
	e.sink.Deps(rec.ID, rec.PC, deps)
	e.depBuf = deps[:0]
}

// Reset clears all shadow state (between runs on one machine).
func (e *Extractor) Reset() {
	e.threads = nil
	e.counts = nil
	e.res.Reset()
	if e.ctrl != nil {
		e.ctrl.Reset()
	}
	e.instrs = 0
}

var _ vm.Tool = (*Extractor)(nil)

// FullSink builds a Full graph from the extractor stream.
type FullSink struct {
	G *Full
}

// NewFullSink wraps an empty Full graph.
func NewFullSink() *FullSink { return &FullSink{G: NewFull()} }

// Node implements Sink.
func (s *FullSink) Node(id ID, pc int32, _ *vm.Event) { s.G.AddNode(id, pc) }

// Deps implements Sink.
func (s *FullSink) Deps(_ ID, _ int32, deps []Dep) {
	for _, d := range deps {
		s.G.AddDep(d)
	}
}

package ddg

import "sort"

// Full is the uncompressed dynamic dependence graph: every executed
// instruction is a node, every dependence an explicit edge. It is the
// representation the paper's offline baseline materializes and the
// one whose size makes whole-execution tracing intractable for long
// runs.
type Full struct {
	threads map[int]*fullThread
}

type fullThread struct {
	pcs  []int32 // pcs[n-1] = static PC of instance n
	deps [][]Dep // deps[n-1] = edges with Use = n
}

// NewFull returns an empty full graph.
func NewFull() *Full { return &Full{threads: make(map[int]*fullThread)} }

func (g *Full) thread(tid int) *fullThread {
	ft, ok := g.threads[tid]
	if !ok {
		ft = &fullThread{}
		g.threads[tid] = ft
	}
	return ft
}

// AddNode records instance id executing static instruction pc. Nodes
// must be added in per-thread order (n = 1, 2, ...).
func (g *Full) AddNode(id ID, pc int32) {
	ft := g.thread(id.TID())
	if want := uint64(len(ft.pcs)) + 1; id.N() != want {
		panic("ddg: out-of-order AddNode")
	}
	ft.pcs = append(ft.pcs, pc)
	ft.deps = append(ft.deps, nil)
}

// AddDep records an edge; its Use node must already exist.
func (g *Full) AddDep(d Dep) {
	ft := g.thread(d.Use.TID())
	n := d.Use.N()
	if n == 0 || n > uint64(len(ft.deps)) {
		panic("ddg: AddDep for unknown node")
	}
	ft.deps[n-1] = append(ft.deps[n-1], d)
}

// Threads implements Source.
func (g *Full) Threads() []int {
	out := make([]int, 0, len(g.threads))
	for tid := range g.threads {
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}

// Window implements Source: a full graph keeps everything.
func (g *Full) Window(tid int) (uint64, uint64) {
	ft, ok := g.threads[tid]
	if !ok || len(ft.pcs) == 0 {
		return 0, 0
	}
	return 1, uint64(len(ft.pcs))
}

// DepsOf implements Source.
func (g *Full) DepsOf(id ID, yield func(Dep)) {
	ft, ok := g.threads[id.TID()]
	if !ok {
		return
	}
	n := id.N()
	if n == 0 || n > uint64(len(ft.deps)) {
		return
	}
	for _, d := range ft.deps[n-1] {
		yield(d)
	}
}

// NodePC implements Source.
func (g *Full) NodePC(id ID) (int32, bool) {
	ft, ok := g.threads[id.TID()]
	if !ok {
		return 0, false
	}
	n := id.N()
	if n == 0 || n > uint64(len(ft.pcs)) {
		return 0, false
	}
	return ft.pcs[n-1], true
}

// Nodes returns the total node count.
func (g *Full) Nodes() uint64 {
	var n uint64
	for _, ft := range g.threads {
		n += uint64(len(ft.pcs))
	}
	return n
}

// Edges returns the total edge count.
func (g *Full) Edges() uint64 {
	var n uint64
	for _, ft := range g.threads {
		for _, ds := range ft.deps {
			n += uint64(len(ds))
		}
	}
	return n
}

// SizeBytes estimates the in-memory footprint: 4 bytes per node PC,
// 24 bytes per edge-slice header, and the 40-byte Dep per edge. This
// is the figure the storage experiments report for the naive graph.
func (g *Full) SizeBytes() uint64 {
	var b uint64
	for _, ft := range g.threads {
		b += 4 * uint64(len(ft.pcs))
		b += 24 * uint64(len(ft.deps))
		for _, ds := range ft.deps {
			b += 40 * uint64(cap(ds))
		}
	}
	return b
}

var _ Source = (*Full)(nil)

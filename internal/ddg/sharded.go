package ddg

import "sort"

// Sharded is a per-thread-sharded Compact: one independent compact
// store per thread, so the offloaded tracing stage's workers can
// append different threads' records concurrently (Compact itself is
// single-writer). Records of one thread are encoded exactly as a lone
// Compact would encode them — chunking and delta encoding are
// per-thread in both — so total BytesWritten matches the inline
// tracer byte for byte.
//
// When capBytes > 0 each shard evicts independently over capBytes:
// the retained execution window is bounded per thread rather than
// globally (a lone Compact rings over the global append order).
type Sharded struct {
	capBytes  int
	chunkSize int
	spill     ChunkSink
	shards    map[int]*Compact
}

// NewSharded creates an empty sharded store; capBytes <= 0 disables
// eviction, otherwise each per-thread shard rings over capBytes.
func NewSharded(capBytes int) *Sharded { return NewShardedSized(capBytes, 0) }

// NewShardedSized is NewSharded with an explicit per-shard chunk size
// (chunkSize <= 0 selects the 4KB default).
func NewShardedSized(capBytes, chunkSize int) *Sharded {
	return &Sharded{capBytes: capBytes, chunkSize: chunkSize, shards: make(map[int]*Compact)}
}

// SetSpill attaches the sink every shard (existing and future) spills
// sealed chunks into. Shards append concurrently, so the sink must
// tolerate concurrent SpillChunk calls; set it on a single goroutine
// before concurrent appends begin.
func (s *Sharded) SetSpill(sink ChunkSink) {
	s.spill = sink
	for _, c := range s.shards {
		c.SetSpill(sink)
	}
}

// Flush seals and spills every shard's open chunks (single goroutine,
// after all appends have completed).
func (s *Sharded) Flush() {
	for _, c := range s.shards {
		c.Flush()
	}
}

// Shard returns (creating if needed) the store for one thread. Create
// shards on a single goroutine before concurrent appends; the
// returned Compact is single-writer.
func (s *Sharded) Shard(tid int) *Compact {
	c, ok := s.shards[tid]
	if !ok {
		c = NewCompactSized(s.capBytes, s.chunkSize)
		if s.spill != nil {
			c.SetSpill(s.spill)
		}
		s.shards[tid] = c
	}
	return c
}

// Append stores one record into the owning thread's shard (single
// goroutine; use Shard for concurrent per-thread writers).
func (s *Sharded) Append(use ID, usePC int32, deps []Dep, rlDelta uint64) {
	s.Shard(use.TID()).Append(use, usePC, deps, rlDelta)
}

// Threads implements Source.
func (s *Sharded) Threads() []int {
	out := make([]int, 0, len(s.shards))
	for tid, c := range s.shards {
		if len(c.Threads()) > 0 {
			out = append(out, tid)
		}
	}
	sort.Ints(out)
	return out
}

// Window implements Source.
func (s *Sharded) Window(tid int) (uint64, uint64) {
	if c, ok := s.shards[tid]; ok {
		return c.Window(tid)
	}
	return 0, 0
}

// DepsOf implements Source.
func (s *Sharded) DepsOf(id ID, yield func(Dep)) {
	if c, ok := s.shards[id.TID()]; ok {
		c.DepsOf(id, yield)
	}
}

// NodePC implements Source.
func (s *Sharded) NodePC(id ID) (int32, bool) {
	if c, ok := s.shards[id.TID()]; ok {
		return c.NodePC(id)
	}
	return 0, false
}

// BytesWritten sums cumulative encoded bytes across shards.
func (s *Sharded) BytesWritten() uint64 {
	var n uint64
	for _, c := range s.shards {
		n += c.BytesWritten()
	}
	return n
}

// CurrentBytes sums the retained encoded size across shards.
func (s *Sharded) CurrentBytes() int {
	n := 0
	for _, c := range s.shards {
		n += c.CurrentBytes()
	}
	return n
}

// Records sums stored records across shards.
func (s *Sharded) Records() uint64 {
	var n uint64
	for _, c := range s.shards {
		n += c.Records()
	}
	return n
}

// EvictedChunks sums ring evictions across shards.
func (s *Sharded) EvictedChunks() uint64 {
	var n uint64
	for _, c := range s.shards {
		n += c.EvictedChunks()
	}
	return n
}

// SpilledChunks sums sink-spilled chunks across shards.
func (s *Sharded) SpilledChunks() uint64 {
	var n uint64
	for _, c := range s.shards {
		n += c.SpilledChunks()
	}
	return n
}

var _ Source = (*Sharded)(nil)

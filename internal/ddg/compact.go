package ddg

import (
	"encoding/binary"
	"sort"
)

// Compact is the delta/varint-encoded dependence store. Records are
// appended per thread into ~4KB chunks; when a byte capacity is set,
// the oldest sealed chunks are evicted ring-buffer style — this is
// ONTRAC's fixed-size circular trace buffer, whose capacity bounds
// the execution-history window usable for slicing.
//
// With a ChunkSink attached (SetSpill), every chunk is handed to the
// sink the moment it seals, before eviction can touch it: the cap
// then bounds only the in-memory working set, and the spilled stream
// (internal/store) retains the whole execution.
//
// Only instruction instances with at least one stored dependence (or
// a redundant-load marker) produce a record; the optimizations in
// internal/ontrac elide the rest, which is where the bytes-per-
// instruction savings come from.
type Compact struct {
	capBytes  int
	chunkSize int

	perTid  map[int][]*chunk
	open    map[int]*chunk
	order   []*chunk // global append order for eviction
	bytes   int
	written uint64 // cumulative bytes ever appended
	records uint64
	deps    uint64
	evicted uint64 // chunks dropped
	spilled uint64 // chunks handed to the spill sink

	spill ChunkSink

	cache map[*chunk]map[uint64][]Dep
}

// RawChunk is one sealed chunk in wire form: the per-thread
// delta/varint byte stream plus the metadata needed to decode it.
// The Buf of a sealed chunk is immutable, so sinks may retain it
// without copying.
type RawChunk struct {
	TID   int
	BaseN uint64 // useN of the first record
	LastN uint64 // useN of the last record
	Count int    // records in the chunk
	Buf   []byte
}

// ChunkSink receives sealed chunks as they close. Compact is
// single-writer, but shards spill concurrently (ddg.Sharded under the
// offloaded stage), so implementations must be safe for concurrent
// calls from multiple goroutines.
type ChunkSink interface {
	SpillChunk(ch RawChunk)
}

type chunk struct {
	tid    int
	baseN  uint64 // useN of the first record
	lastN  uint64 // useN of the last record
	buf    []byte
	count  int
	sealed bool
}

// NewCompact creates a compact store with the 4KB default chunk size.
// capBytes <= 0 means unbounded (no eviction).
func NewCompact(capBytes int) *Compact { return NewCompactSized(capBytes, 0) }

// NewCompactSized creates a compact store with an explicit chunk
// size (chunkSize <= 0 selects the 4KB default). Small chunk sizes
// exist for tests that exercise chunk-seam behavior and for spill
// workloads that want finer-grained segments.
func NewCompactSized(capBytes, chunkSize int) *Compact {
	if chunkSize <= 0 {
		chunkSize = 4096
	}
	return &Compact{
		capBytes:  capBytes,
		chunkSize: chunkSize,
		perTid:    make(map[int][]*chunk),
		open:      make(map[int]*chunk),
		cache:     make(map[*chunk]map[uint64][]Dep),
	}
}

// SetSpill attaches the sink that receives every chunk sealed from
// now on. Attach it before the first Append: chunks sealed earlier
// are not retroactively spilled.
func (c *Compact) SetSpill(s ChunkSink) { c.spill = s }

// seal closes a chunk: no more appends land in it, eviction may drop
// it, and the spill sink (if any) receives it first.
func (c *Compact) seal(ch *chunk) {
	ch.sealed = true
	delete(c.open, ch.tid)
	if c.spill != nil && ch.count > 0 {
		c.spill.SpillChunk(RawChunk{TID: ch.tid, BaseN: ch.baseN, LastN: ch.lastN, Count: ch.count, Buf: ch.buf})
		c.spilled++
	}
}

// Flush seals every open chunk (spilling each to the attached sink),
// so the spilled stream covers the whole recorded execution. Call it
// once at the end of a run; records appended afterwards start fresh
// chunks.
func (c *Compact) Flush() {
	for _, ch := range c.open {
		c.seal(ch)
	}
}

// Append stores one record: instance use at usePC with the given
// dependences (Data and Control kinds; Def of a Control dep must be
// in the same thread). rlDelta, when non-zero, stores a redundant-
// load marker pointing rlDelta instances back to the previous
// instance of the same static load.
func (c *Compact) Append(use ID, usePC int32, deps []Dep, rlDelta uint64) {
	tid := use.TID()
	n := use.N()
	ch := c.open[tid]
	if ch == nil {
		ch = &chunk{tid: tid, baseN: n}
		c.open[tid] = ch
		c.perTid[tid] = append(c.perTid[tid], ch)
		c.order = append(c.order, ch)
	}
	var tmp [10]byte
	var rec []byte
	// useDelta from previous record in this chunk.
	prev := ch.lastN
	if ch.count == 0 {
		prev = ch.baseN
	}
	rec = appendUvarint(rec, tmp[:], n-prev)
	rec = appendUvarint(rec, tmp[:], uint64(usePC))
	nData := 0
	var ctrl *Dep
	for i := range deps {
		switch deps[i].Kind {
		case Control:
			ctrl = &deps[i]
		default:
			nData++
		}
	}
	flags := byte(nData)
	if ctrl != nil {
		flags |= 1 << 3
	}
	if rlDelta != 0 {
		flags |= 1 << 4
	}
	rec = append(rec, flags)
	for i := range deps {
		d := &deps[i]
		if d.Kind == Control {
			continue
		}
		if d.Def.TID() == tid {
			rec = appendUvarint(rec, tmp[:], (n-d.Def.N())<<1)
		} else {
			rec = appendUvarint(rec, tmp[:], uint64(d.Def)<<1|1)
		}
		rec = appendUvarint(rec, tmp[:], uint64(d.DefPC))
	}
	if ctrl != nil {
		rec = appendUvarint(rec, tmp[:], n-ctrl.Def.N())
		rec = appendUvarint(rec, tmp[:], uint64(ctrl.DefPC))
	}
	if rlDelta != 0 {
		rec = appendUvarint(rec, tmp[:], rlDelta)
	}

	ch.buf = append(ch.buf, rec...)
	ch.lastN = n
	ch.count++
	c.bytes += len(rec)
	c.written += uint64(len(rec))
	c.records++
	c.deps += uint64(len(deps))
	if len(ch.buf) >= c.chunkSize {
		c.seal(ch)
	}
	c.evict()
}

// evict drops the oldest sealed chunks while over capacity.
func (c *Compact) evict() {
	if c.capBytes <= 0 {
		return
	}
	for c.bytes > c.capBytes {
		// Find the oldest sealed chunk.
		idx := -1
		for i, ch := range c.order {
			if ch.sealed {
				idx = i
				break
			}
		}
		if idx < 0 {
			return // only open chunks remain
		}
		ch := c.order[idx]
		c.order = append(c.order[:idx:idx], c.order[idx+1:]...)
		lst := c.perTid[ch.tid]
		for i, e := range lst {
			if e == ch {
				c.perTid[ch.tid] = append(lst[:i:i], lst[i+1:]...)
				break
			}
		}
		c.bytes -= len(ch.buf)
		c.evicted++
		delete(c.cache, ch)
	}
}

// appendUvarint appends v to dst using scratch.
func appendUvarint(dst, scratch []byte, v uint64) []byte {
	k := binary.PutUvarint(scratch, v)
	return append(dst, scratch[:k]...)
}

// Decode materializes the chunk's records into a use-N-keyed
// dependence map. It is the one decoder for the compact wire format:
// Compact uses it for in-memory chunks and internal/store for chunks
// reloaded from segment files, so the two can never drift.
func (rc RawChunk) Decode() map[uint64][]Dep {
	m := make(map[uint64][]Dep, rc.Count)
	buf := rc.Buf
	pos := 0
	read := func() uint64 {
		v, k := binary.Uvarint(buf[pos:])
		pos += k
		return v
	}
	n := rc.BaseN
	first := true
	for pos < len(buf) {
		delta := read()
		if first {
			n = rc.BaseN + delta
			first = false
		} else {
			n += delta
		}
		usePC := int32(read())
		flags := buf[pos]
		pos++
		nData := int(flags & 7)
		hasCtrl := flags&(1<<3) != 0
		hasRL := flags&(1<<4) != 0
		use := MakeID(rc.TID, n)
		var deps []Dep
		for i := 0; i < nData; i++ {
			enc := read()
			defPC := int32(read())
			var def ID
			if enc&1 == 1 {
				def = ID(enc >> 1)
			} else {
				def = MakeID(rc.TID, n-enc>>1)
			}
			deps = append(deps, Dep{Use: use, UsePC: usePC, Def: def, DefPC: defPC, Kind: Data})
		}
		if hasCtrl {
			delta := read()
			defPC := int32(read())
			deps = append(deps, Dep{Use: use, UsePC: usePC,
				Def: MakeID(rc.TID, n-delta), DefPC: defPC, Kind: Control})
		}
		if hasRL {
			delta := read()
			deps = append(deps, Dep{Use: use, UsePC: usePC,
				Def: MakeID(rc.TID, n-delta), DefPC: usePC, Kind: SameAs})
		}
		m[n] = deps
	}
	return m
}

// decode materializes a chunk's records into a use-N-keyed map. Only
// sealed (immutable) chunks enter the cache: caching an open chunk
// would hide records appended to it after the first query.
func (c *Compact) decode(ch *chunk) map[uint64][]Dep {
	if m, ok := c.cache[ch]; ok {
		return m
	}
	m := RawChunk{TID: ch.tid, BaseN: ch.baseN, Count: ch.count, Buf: ch.buf}.Decode()
	if !ch.sealed {
		return m
	}
	if len(c.cache) >= 8 {
		for k := range c.cache {
			delete(c.cache, k)
			break
		}
	}
	c.cache[ch] = m
	return m
}

// find locates the chunk holding instance n for a thread.
func (c *Compact) find(tid int, n uint64) *chunk {
	lst := c.perTid[tid]
	i := sort.Search(len(lst), func(i int) bool { return lst[i].lastN >= n })
	if i < len(lst) && lst[i].baseN <= n && n <= lst[i].lastN && lst[i].count > 0 {
		return lst[i]
	}
	return nil
}

// DepsOf implements Source.
func (c *Compact) DepsOf(id ID, yield func(Dep)) {
	ch := c.find(id.TID(), id.N())
	if ch == nil {
		return
	}
	for _, d := range c.decode(ch)[id.N()] {
		yield(d)
	}
}

// NodePC implements Source (recorded nodes only).
func (c *Compact) NodePC(id ID) (int32, bool) {
	ch := c.find(id.TID(), id.N())
	if ch == nil {
		return 0, false
	}
	deps := c.decode(ch)[id.N()]
	if len(deps) == 0 {
		return 0, false
	}
	return deps[0].UsePC, true
}

// Threads implements Source.
func (c *Compact) Threads() []int {
	out := make([]int, 0, len(c.perTid))
	for tid := range c.perTid {
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}

// Window implements Source: [oldest retained record, newest record].
func (c *Compact) Window(tid int) (uint64, uint64) {
	lst := c.perTid[tid]
	if len(lst) == 0 || lst[0].count == 0 {
		return 0, 0
	}
	last := lst[len(lst)-1]
	if last.count == 0 && len(lst) > 1 {
		last = lst[len(lst)-2]
	}
	return lst[0].baseN, last.lastN
}

// CurrentBytes returns the retained encoded size.
func (c *Compact) CurrentBytes() int { return c.bytes }

// BytesWritten returns cumulative bytes ever encoded (pre-eviction),
// the numerator of the bytes-per-instruction metric.
func (c *Compact) BytesWritten() uint64 { return c.written }

// Records returns the number of stored records.
func (c *Compact) Records() uint64 { return c.records }

// Deps returns the number of stored dependences.
func (c *Compact) Deps() uint64 { return c.deps }

// EvictedChunks returns how many chunks the ring dropped.
func (c *Compact) EvictedChunks() uint64 { return c.evicted }

// SpilledChunks returns how many sealed chunks went to the sink.
func (c *Compact) SpilledChunks() uint64 { return c.spilled }

var _ Source = (*Compact)(nil)

package ddg

import (
	"testing"
	"testing/quick"

	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

func TestIDRoundTrip(t *testing.T) {
	f := func(tid uint8, n uint32) bool {
		id := MakeID(int(tid), uint64(n))
		return id.TID() == int(tid) && id.N() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if MakeID(3, 17).String() != "3:17" {
		t.Fatal("String format")
	}
}

func extract(t *testing.T, text string, inputs []int64, opts ExtractorOpts) (*Full, *Extractor, *isa.Program) {
	t.Helper()
	p := isa.MustAssemble("t", text)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, inputs)
	sink := NewFullSink()
	ex := NewExtractor(p, sink, opts)
	m.AttachTool(ex)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	return sink.G, ex, p
}

func TestExtractorRegisterDeps(t *testing.T) {
	g, _, _ := extract(t, `
    movi r1, 1
    movi r2, 2
    add r3, r1, r2
    halt
`, nil, ExtractorOpts{})
	// Node 3 (add) depends on nodes 1 and 2.
	deps := CountDeps(g, MakeID(0, 3))
	if len(deps) != 2 {
		t.Fatalf("deps = %+v", deps)
	}
	got := map[uint64]bool{}
	for _, d := range deps {
		if d.Kind != Data {
			t.Fatalf("kind = %v", d.Kind)
		}
		got[d.Def.N()] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("defs = %v", got)
	}
}

func TestExtractorMemoryDeps(t *testing.T) {
	g, _, _ := extract(t, `
    movi r1, 9
    store r0, r1, 50
    load r2, r0, 50
    halt
`, nil, ExtractorOpts{})
	deps := CountDeps(g, MakeID(0, 3)) // load
	// load depends on the store (mem) — store value reg r1 dep is on
	// the store node, not the load.
	found := false
	for _, d := range deps {
		if d.Def.N() == 2 && d.Kind == Data {
			found = true
		}
	}
	if !found {
		t.Fatalf("load deps = %+v", deps)
	}
}

func TestExtractorControlDeps(t *testing.T) {
	g, _, _ := extract(t, `
    in r1, 0
    beqz r1, skip
    movi r2, 7
skip:
    halt
`, []int64{1}, ExtractorOpts{ControlDeps: true})
	deps := CountDeps(g, MakeID(0, 3)) // movi under the branch
	var ctrl *Dep
	for i, d := range deps {
		if d.Kind == Control {
			ctrl = &deps[i]
		}
	}
	if ctrl == nil || ctrl.Def.N() != 2 || ctrl.DefPC != 1 {
		t.Fatalf("control dep = %+v", deps)
	}
}

func TestExtractorWARWAW(t *testing.T) {
	g, _, _ := extract(t, `
    movi r1, 1
    store r0, r1, 10   ; n2: write
    load r2, r0, 10    ; n3: read
    movi r3, 2
    store r0, r3, 10   ; n5: write again -> WAW to n2, WAR to n3
    halt
`, nil, ExtractorOpts{WARWAW: true})
	deps := CountDeps(g, MakeID(0, 5))
	var war, waw bool
	for _, d := range deps {
		switch d.Kind {
		case WAR:
			if d.Def.N() == 3 {
				war = true
			}
		case WAW:
			if d.Def.N() == 2 {
				waw = true
			}
		}
	}
	if !war || !waw {
		t.Fatalf("war=%v waw=%v deps=%+v", war, waw, deps)
	}
}

func TestExtractorSpawnArgDep(t *testing.T) {
	g, _, _ := extract(t, `
    in r10, 0
    spawn r20, r10, child
    join r20
    halt
child:
    addi r2, r1, 1
    halt
`, []int64{5}, ExtractorOpts{})
	// Child's first instruction uses r1, defined by the spawn (node
	// 0:2).
	deps := CountDeps(g, MakeID(1, 1))
	found := false
	for _, d := range deps {
		if d.Def == MakeID(0, 2) {
			found = true
		}
	}
	if !found {
		t.Fatalf("child arg deps = %+v", deps)
	}
}

func TestExtractorDupSrcRegsOneEdge(t *testing.T) {
	g, _, _ := extract(t, `
    movi r1, 2
    add r2, r1, r1
    halt
`, nil, ExtractorOpts{})
	deps := CountDeps(g, MakeID(0, 2))
	if len(deps) != 1 {
		t.Fatalf("want one edge for add r2,r1,r1; got %+v", deps)
	}
}

func TestFullGraphWindowAndSize(t *testing.T) {
	g, ex, _ := extract(t, `
    movi r1, 1
    addi r1, r1, 1
    addi r1, r1, 1
    halt
`, nil, ExtractorOpts{})
	lo, hi := g.Window(0)
	if lo != 1 || hi != 4 {
		t.Fatalf("window = [%d,%d]", lo, hi)
	}
	if g.Nodes() != 4 || ex.Instrs() != 4 {
		t.Fatalf("nodes=%d instrs=%d", g.Nodes(), ex.Instrs())
	}
	if g.Edges() != 2 {
		t.Fatalf("edges = %d", g.Edges())
	}
	if g.SizeBytes() == 0 {
		t.Fatal("size should be positive")
	}
	if pc, ok := g.NodePC(MakeID(0, 2)); !ok || pc != 1 {
		t.Fatalf("NodePC = %d,%v", pc, ok)
	}
	if _, ok := g.NodePC(MakeID(0, 99)); ok {
		t.Fatal("phantom node")
	}
}

func TestCompactRoundTrip(t *testing.T) {
	c := NewCompact(0)
	use := MakeID(0, 10)
	deps := []Dep{
		{Use: use, UsePC: 5, Def: MakeID(0, 7), DefPC: 2, Kind: Data},
		{Use: use, UsePC: 5, Def: MakeID(0, 9), DefPC: 4, Kind: Control},
	}
	c.Append(use, 5, deps, 0)
	use2 := MakeID(0, 12)
	c.Append(use2, 6, []Dep{{Use: use2, UsePC: 6, Def: MakeID(1, 3), DefPC: 9, Kind: Data}}, 0)
	c.Append(MakeID(0, 15), 5, nil, 3) // redundant-load marker

	got := CountDeps(c, use)
	if len(got) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got[0].Def != MakeID(0, 7) || got[0].DefPC != 2 || got[0].Kind != Data {
		t.Fatalf("data dep = %+v", got[0])
	}
	if got[1].Def != MakeID(0, 9) || got[1].Kind != Control {
		t.Fatalf("ctrl dep = %+v", got[1])
	}
	got = CountDeps(c, use2)
	if len(got) != 1 || got[0].Def != MakeID(1, 3) || got[0].DefPC != 9 {
		t.Fatalf("cross-thread dep = %+v", got)
	}
	got = CountDeps(c, MakeID(0, 15))
	if len(got) != 1 || got[0].Kind != SameAs || got[0].Def != MakeID(0, 12) {
		t.Fatalf("rl = %+v", got)
	}
	if pc, ok := c.NodePC(use); !ok || pc != 5 {
		t.Fatalf("NodePC = %d %v", pc, ok)
	}
	lo, hi := c.Window(0)
	if lo != 10 || hi != 15 {
		t.Fatalf("window = [%d,%d]", lo, hi)
	}
}

func TestCompactEviction(t *testing.T) {
	c := NewCompact(16 * 1024)
	// Write far more than 16KB of records.
	for n := uint64(1); n <= 200000; n++ {
		use := MakeID(0, n)
		var deps []Dep
		if n > 1 {
			deps = []Dep{{Use: use, UsePC: 3, Def: MakeID(0, n-1), DefPC: 3, Kind: Data}}
		}
		c.Append(use, 3, deps, 0)
	}
	if c.CurrentBytes() > 17*1024 {
		t.Fatalf("ring over capacity: %d", c.CurrentBytes())
	}
	if c.EvictedChunks() == 0 {
		t.Fatal("nothing evicted")
	}
	lo, hi := c.Window(0)
	if hi != 200000 {
		t.Fatalf("hi = %d", hi)
	}
	if lo <= 1 {
		t.Fatal("oldest records should be gone")
	}
	// Old instance unavailable, recent available.
	if deps := CountDeps(c, MakeID(0, 5)); deps != nil {
		t.Fatalf("evicted node still readable: %+v", deps)
	}
	if deps := CountDeps(c, MakeID(0, 199999)); len(deps) != 1 {
		t.Fatalf("recent node unreadable: %+v", deps)
	}
	if c.BytesWritten() < uint64(c.CurrentBytes()) {
		t.Fatal("written < retained")
	}
}

func TestCompactManyThreads(t *testing.T) {
	c := NewCompact(0)
	for tid := 0; tid < 5; tid++ {
		for n := uint64(1); n <= 100; n++ {
			use := MakeID(tid, n*2) // sparse instance numbers
			var deps []Dep
			if n > 1 {
				deps = []Dep{{Use: use, UsePC: int32(tid), Def: MakeID(tid, (n-1)*2), DefPC: int32(tid), Kind: Data}}
			}
			c.Append(use, int32(tid), deps, 0)
		}
	}
	if got := c.Threads(); len(got) != 5 {
		t.Fatalf("threads = %v", got)
	}
	for tid := 0; tid < 5; tid++ {
		deps := CountDeps(c, MakeID(tid, 100))
		if len(deps) != 1 || deps[0].Def != MakeID(tid, 98) {
			t.Fatalf("tid %d: %+v", tid, deps)
		}
	}
}

// Property: compact round-trips arbitrary same-thread dep chains.
func TestCompactRoundTripProperty(t *testing.T) {
	f := func(pcs []uint16, deltas []uint8) bool {
		c := NewCompact(0)
		n := uint64(1)
		type rec struct {
			use  ID
			deps []Dep
		}
		var recs []rec
		for i, pc := range pcs {
			n += uint64(i%3) + 1
			use := MakeID(0, n)
			var deps []Dep
			if i < len(deltas) && uint64(deltas[i])%n != 0 && uint64(deltas[i]) < n {
				deps = append(deps, Dep{Use: use, UsePC: int32(pc % 1000),
					Def: MakeID(0, n-uint64(deltas[i])), DefPC: int32(pc % 997), Kind: Data})
			}
			c.Append(use, int32(pc%1000), deps, 0)
			recs = append(recs, rec{use: use, deps: deps})
		}
		for _, r := range recs {
			got := CountDeps(c, r.use)
			if len(got) != len(r.deps) {
				return false
			}
			for i := range got {
				if got[i] != r.deps[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactIsSmallerThanFull(t *testing.T) {
	// The whole point: the same dependence stream must cost far less
	// in the compact encoding than in the full graph.
	prog := `
    movi r1, 0
    movi r2, 0
loop:
    addi r2, r2, 3
    addi r1, r1, 1
    movi r3, 5000
    blt r1, r3, loop
    halt
`
	p := isa.MustAssemble("t", prog)
	m := vm.MustNew(p, vm.Config{})
	full := NewFullSink()
	compact := NewCompact(0)
	ex := NewExtractor(p, &teeSink{full: full, compact: compact}, ExtractorOpts{ControlDeps: true})
	m.AttachTool(ex)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	fullB := full.G.SizeBytes()
	compB := uint64(compact.CurrentBytes())
	if compB*4 > fullB {
		t.Fatalf("compact %dB should be <1/4 of full %dB", compB, fullB)
	}
}

type teeSink struct {
	full    *FullSink
	compact *Compact
}

func (s *teeSink) Node(id ID, pc int32, ev *vm.Event) { s.full.Node(id, pc, ev) }
func (s *teeSink) Deps(id ID, pc int32, deps []Dep) {
	s.full.Deps(id, pc, deps)
	if len(deps) > 0 {
		s.compact.Append(id, pc, deps, 0)
	}
}

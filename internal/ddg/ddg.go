// Package ddg defines dynamic dependence graphs: the nodes are
// executed instruction instances, the edges dynamic data, control,
// and (for race detection) WAR/WAW dependences.
//
// Two representations are provided, mirroring the paper's storage
// study (§2.1): Full is the naive in-memory graph (the "16 bytes per
// instruction" end of the spectrum) and Compact is the delta/varint
// encoded stream with optional ring eviction that ONTRAC's circular
// trace buffer uses (the "0.8 bytes per instruction" end).
package ddg

import "fmt"

// ID identifies an executed instruction instance: the owning thread
// in the top 16 bits and the 1-based per-thread dynamic instruction
// number in the low 48. The zero ID is "no node".
type ID uint64

// MakeID builds an instance id from thread and per-thread number.
func MakeID(tid int, n uint64) ID { return ID(uint64(tid)<<48 | n&(1<<48-1)) }

// TID returns the owning thread.
func (id ID) TID() int { return int(id >> 48) }

// N returns the per-thread dynamic instruction number.
func (id ID) N() uint64 { return uint64(id) & (1<<48 - 1) }

// String renders the id as tid:n.
func (id ID) String() string { return fmt.Sprintf("%d:%d", id.TID(), id.N()) }

// Kind classifies a dependence edge.
type Kind uint8

// Dependence kinds.
const (
	// Data is a read-after-write (flow) dependence.
	Data Kind = iota
	// Control links an instance to the predicate instance governing
	// its execution.
	Control
	// WAR is a write-after-read anti-dependence (race detection).
	WAR
	// WAW is a write-after-write output dependence (race detection).
	WAW
	// SameAs marks a redundant-load elision (ONTRAC O3): this load's
	// memory dependence equals that of the referenced earlier
	// instance of the same static load. Traversals follow it like a
	// data edge; the referenced node has the same static PC.
	SameAs
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Control:
		return "control"
	case WAR:
		return "war"
	case WAW:
		return "waw"
	case SameAs:
		return "same-as"
	}
	return "kind(?)"
}

// Dep is one dependence edge. DefPC is carried on the edge so that
// statement-level slices can include the defining statement even when
// the def node itself stored no record.
type Dep struct {
	Use   ID
	UsePC int32
	Def   ID
	DefPC int32
	Kind  Kind
}

// Source is the read interface dynamic slicing consumes. Both graph
// representations and ONTRAC's reconstructing reader implement it.
type Source interface {
	// Threads lists thread ids with any recorded nodes.
	Threads() []int
	// Window returns the inclusive per-thread range [lo,hi] of
	// dynamic instruction numbers still available (ring buffers
	// evict the oldest). lo=hi=0 means nothing available.
	Window(tid int) (lo, hi uint64)
	// DepsOf calls yield for every dependence whose Use is id.
	DepsOf(id ID, yield func(Dep))
	// NodePC returns the static PC of a recorded instance.
	NodePC(id ID) (int32, bool)
}

// CountDeps is a convenience that materializes DepsOf.
func CountDeps(s Source, id ID) []Dep {
	var out []Dep
	s.DepsOf(id, func(d Dep) { out = append(out, d) })
	return out
}

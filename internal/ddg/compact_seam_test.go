package ddg

import (
	"fmt"
	"testing"
)

// Regression tests for Compact behavior at exact chunk seams: records
// whose encoding straddles the chunkSize threshold, singleton chunks
// (baseN == lastN), and Window/eviction right at chunk boundaries.
// These boundaries were previously untested; the persistent store
// spills whole chunks, so their geometry is now load-bearing.

// bigRecord returns a dep list whose encoding is guaranteed to exceed
// small chunk sizes (7 data deps is the flag field's maximum).
func bigRecord(use ID, pc int32) []Dep {
	var deps []Dep
	for i := 0; i < 7; i++ {
		deps = append(deps, Dep{Use: use, UsePC: pc,
			Def: MakeID(use.TID(), use.N()-uint64(i)-1), DefPC: int32(1000 + i), Kind: Data})
	}
	return deps
}

// TestCompactSingletonChunk: a record larger than chunkSize seals a
// one-record chunk immediately, with baseN == lastN.
func TestCompactSingletonChunk(t *testing.T) {
	c := NewCompactSized(0, 8) // any record overflows 8 bytes
	use := MakeID(0, 10)
	c.Append(use, 5, bigRecord(use, 5), 0)

	lo, hi := c.Window(0)
	if lo != 10 || hi != 10 {
		t.Fatalf("window = [%d,%d], want [10,10]", lo, hi)
	}
	got := CountDeps(c, use)
	if len(got) != 7 {
		t.Fatalf("deps = %d, want 7", len(got))
	}
	// The chunk is sealed: the next record must start a fresh chunk
	// with its own base, and both stay readable.
	use2 := MakeID(0, 11)
	c.Append(use2, 6, bigRecord(use2, 6), 0)
	if got := CountDeps(c, use2); len(got) != 7 {
		t.Fatalf("second singleton: %d deps", len(got))
	}
	if got := CountDeps(c, use); len(got) != 7 {
		t.Fatalf("first singleton lost after seal: %d deps", len(got))
	}
	lo, hi = c.Window(0)
	if lo != 10 || hi != 11 {
		t.Fatalf("window = [%d,%d], want [10,11]", lo, hi)
	}
}

// TestCompactRecordStraddlesChunkSize: a chunk seals only after the
// append that crosses chunkSize, so the straddling record lands
// entirely in the sealing chunk — never split, never duplicated.
func TestCompactRecordStraddlesChunkSize(t *testing.T) {
	const chunkSize = 32
	c := NewCompactSized(0, chunkSize)
	type rec struct {
		use  ID
		deps []Dep
	}
	var recs []rec
	// Small records until just under the threshold, then one big
	// record that straddles it.
	n := uint64(1)
	for c.CurrentBytes() < chunkSize-2 {
		use := MakeID(0, n)
		deps := []Dep{{Use: use, UsePC: 3, Def: MakeID(1, 7), DefPC: 4, Kind: Data}}
		c.Append(use, 3, deps, 0)
		recs = append(recs, rec{use, deps})
		n++
	}
	use := MakeID(0, n)
	deps := bigRecord(use, 9)
	c.Append(use, 9, deps, 0)
	recs = append(recs, rec{use, deps})
	n++
	// And one more record, landing in the next chunk.
	use2 := MakeID(0, n)
	deps2 := []Dep{{Use: use2, UsePC: 4, Def: MakeID(0, 1), DefPC: 3, Kind: Data}}
	c.Append(use2, 4, deps2, 0)
	recs = append(recs, rec{use2, deps2})

	for _, r := range recs {
		got := CountDeps(c, r.use)
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", r.deps) {
			t.Fatalf("record %v:\nwant %+v\ngot  %+v", r.use, r.deps, got)
		}
	}
	lo, hi := c.Window(0)
	if lo != 1 || hi != n {
		t.Fatalf("window = [%d,%d], want [1,%d]", lo, hi, n)
	}
}

// TestCompactWindowAtEvictionSeam: evicting exactly the first chunk
// moves the window's lo to the second chunk's base, and lookups in
// the evicted range return nothing while the seam's survivor is
// intact.
func TestCompactWindowAtEvictionSeam(t *testing.T) {
	const chunkSize = 64
	// Fill chunk 1 exactly, note its last record, fill further.
	c := NewCompactSized(0, chunkSize)
	n := uint64(1)
	appendOne := func() ID {
		use := MakeID(0, n)
		c.Append(use, 3, []Dep{{Use: use, UsePC: 3, Def: MakeID(1, 9), DefPC: 2, Kind: Data}}, 0)
		n++
		return use
	}
	for !chunkSealed(c) {
		appendOne()
	}
	firstChunkLast := n - 1 // last record of the sealed first chunk
	secondChunkFirst := appendOne().N()

	// Shrink capacity so exactly the sealed chunk must go: capacity
	// below current retained bytes forces the evictor to drop sealed
	// chunks; only the open chunk survives.
	c.capBytes = 1
	c.evict()

	lo, hi := c.Window(0)
	if lo != secondChunkFirst {
		t.Fatalf("lo = %d, want second chunk base %d", lo, secondChunkFirst)
	}
	if hi != n-1 {
		t.Fatalf("hi = %d, want %d", hi, n-1)
	}
	if deps := CountDeps(c, MakeID(0, firstChunkLast)); deps != nil {
		t.Fatalf("evicted seam record still readable: %+v", deps)
	}
	if deps := CountDeps(c, MakeID(0, secondChunkFirst)); len(deps) != 1 {
		t.Fatalf("seam survivor unreadable: %+v", deps)
	}
	if c.EvictedChunks() != 1 {
		t.Fatalf("evicted %d chunks, want 1", c.EvictedChunks())
	}
}

// chunkSealed reports whether any chunk of the store is sealed
// (test-only peek).
func chunkSealed(c *Compact) bool {
	for _, ch := range c.order {
		if ch.sealed {
			return true
		}
	}
	return false
}

// TestCompactSealFlushSpill: Flush seals open chunks exactly once
// into the sink, spilled chunk metadata matches the retained
// encoding, and appends after Flush start fresh chunks that spill on
// their own seal.
func TestCompactSealFlushSpill(t *testing.T) {
	var sink collectSink
	c := NewCompactSized(0, 64)
	c.SetSpill(&sink)
	n := uint64(1)
	for i := 0; i < 40; i++ {
		use := MakeID(0, n)
		c.Append(use, 3, []Dep{{Use: use, UsePC: 3, Def: MakeID(1, 9), DefPC: 2, Kind: Data}}, 0)
		n++
	}
	sealed := len(sink.chunks)
	if sealed == 0 {
		t.Fatal("no chunk sealed during appends")
	}
	c.Flush()
	if len(sink.chunks) != sealed+1 {
		t.Fatalf("flush spilled %d chunks, want 1", len(sink.chunks)-sealed)
	}
	c.Flush() // idempotent: nothing open
	if len(sink.chunks) != sealed+1 {
		t.Fatal("second Flush re-spilled")
	}
	if c.SpilledChunks() != uint64(len(sink.chunks)) {
		t.Fatalf("SpilledChunks = %d, sink has %d", c.SpilledChunks(), len(sink.chunks))
	}

	// The spilled stream must decode to exactly the same records the
	// in-memory store serves, and cover the whole window contiguously.
	var total int
	prevLast := uint64(0)
	for i, rc := range sink.chunks {
		if rc.TID != 0 || rc.Count <= 0 || rc.BaseN > rc.LastN {
			t.Fatalf("chunk %d: bad meta %+v", i, rc)
		}
		if rc.BaseN <= prevLast {
			t.Fatalf("chunk %d overlaps predecessor", i)
		}
		prevLast = rc.LastN
		m := rc.Decode()
		total += len(m)
		for useN, deps := range m {
			got := CountDeps(c, MakeID(0, useN))
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", deps) {
				t.Fatalf("record %d diverged between memory and spill", useN)
			}
		}
	}
	if total != 40 {
		t.Fatalf("spilled stream has %d records, want 40", total)
	}

	// Post-Flush appends open a fresh chunk and spill again on seal.
	// Cross-thread defs encode as wide absolute varints, so 7 of them
	// overflow the 64-byte chunk and seal it immediately.
	use := MakeID(0, n)
	var wide []Dep
	for i := 0; i < 7; i++ {
		wide = append(wide, Dep{Use: use, UsePC: 9,
			Def: MakeID(40+i, 1<<40), DefPC: int32(2000 + i), Kind: Data})
	}
	c.Append(use, 9, wide, 0)
	if c.SpilledChunks() != uint64(sealed)+2 {
		t.Fatalf("post-flush append did not spill on seal: %d", c.SpilledChunks())
	}
}

// TestCompactOpenChunkNotStaleCached: querying an open chunk must
// not freeze its decode — records appended afterwards stay visible.
func TestCompactOpenChunkNotStaleCached(t *testing.T) {
	c := NewCompact(0) // large chunk: stays open throughout
	u1 := MakeID(0, 1)
	c.Append(u1, 3, []Dep{{Use: u1, UsePC: 3, Def: MakeID(1, 9), DefPC: 2, Kind: Data}}, 0)
	if got := CountDeps(c, u1); len(got) != 1 {
		t.Fatalf("first record: %+v", got)
	}
	// Decode above may have touched the cache; this append goes into
	// the same still-open chunk.
	u2 := MakeID(0, 2)
	c.Append(u2, 4, []Dep{{Use: u2, UsePC: 4, Def: u1, DefPC: 3, Kind: Data}}, 0)
	if got := CountDeps(c, u2); len(got) != 1 || got[0].Def != u1 {
		t.Fatalf("record appended after a query is invisible: %+v", got)
	}
}

// collectSink retains spilled chunks in order.
type collectSink struct{ chunks []RawChunk }

func (s *collectSink) SpillChunk(ch RawChunk) { s.chunks = append(s.chunks, ch) }

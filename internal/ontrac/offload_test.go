package ontrac

import (
	"fmt"
	"testing"

	"scaldift/internal/ddg"
	"scaldift/internal/pipeline"
	"scaldift/internal/prog"
	"scaldift/internal/slicing"
)

// The offloaded-tracer differential suite: every prog.All() workload,
// traced inline and through the offloaded stage, across >= 4
// randomized VM schedules, asserting identical stats (instructions,
// dependences seen/stored, per-optimization elisions, bytes written —
// hence identical bytes/instruction) and identical backward and
// forward slices. The two runs of a (workload, seed) pair use the
// same deterministic schedule — tools never perturb execution — so
// any divergence is the offloaded stage's fault.

const offSchedules = 4

// offOpts varies the pipeline shape with the schedule seed so the
// suite also sweeps worker counts and batch sizes.
func offOpts(seed uint64) pipeline.Options {
	return pipeline.Options{
		Workers:     1 + int(seed)%4,
		BatchEvents: []int{32, 64, 256}[int(seed)%3],
	}
}

func runOffDiff(t *testing.T, w *prog.Workload, opts Options, seed uint64) (*Tracer, *Offloaded) {
	t.Helper()
	w.Cfg.Seed = seed
	w.Cfg.RandomPreempt = true
	if w.Cfg.Quantum == 0 {
		w.Cfg.Quantum = 11
	}

	mi := w.NewMachine()
	tr := New(w.Prog, opts)
	mi.AttachTool(tr.Tool())
	if res := mi.Run(); res.Failed {
		t.Fatalf("seed %d: inline run failed: %s", seed, res.FailMsg)
	}

	mp := w.NewMachine()
	off := NewOffloaded(w.Prog, opts, offOpts(seed))
	if res := Trace(mp, off); res.Failed {
		t.Fatalf("seed %d: offloaded run failed: %s", seed, res.FailMsg)
	}
	return tr, off
}

func diffStats(t *testing.T, seed uint64, tr *Tracer, off *Offloaded) {
	t.Helper()
	si, so := tr.Stats(), off.Stats()
	if si != so {
		t.Fatalf("seed %d: stats diverged:\ninline    %+v\noffloaded %+v", seed, si, so)
	}
	if si.Instrs == 0 || si.DepsSeen == 0 {
		t.Fatalf("seed %d: vacuous run: %+v", seed, si)
	}
	if si.BytesPerInstr() != so.BytesPerInstr() {
		t.Fatalf("seed %d: bytes/instr diverged: %f vs %f", seed, si.BytesPerInstr(), so.BytesPerInstr())
	}
}

func diffSlices(t *testing.T, seed uint64, w *prog.Workload, opts Options, tr *Tracer, off *Offloaded) {
	t.Helper()
	ri, ro := tr.Reader(), off.Reader()
	ti, to := ri.Threads(), ro.Threads()
	if fmt.Sprint(ti) != fmt.Sprint(to) {
		t.Fatalf("seed %d: thread sets diverged: %v vs %v", seed, ti, to)
	}
	sopts := slicing.Options{FollowControl: opts.ControlDeps}
	sliceLines := 0
	for _, tid := range ti {
		idI, idO := tr.LastID(tid), off.LastID(tid)
		if idI != idO {
			t.Fatalf("seed %d tid %d: LastID diverged: %v vs %v", seed, tid, idI, idO)
		}
		// Slice from the thread's newest RECORDED instance (LastID is
		// usually the HALT, which stores nothing and slices empty):
		// the stored windows must agree, and its slice is non-trivial.
		loI, hiI := ri.Window(tid)
		loO, hiO := ro.Window(tid)
		if loI != loO || hiI != hiO {
			t.Fatalf("seed %d tid %d: windows diverged: [%d,%d] vs [%d,%d]", seed, tid, loI, hiI, loO, hiO)
		}
		crit := ddg.MakeID(tid, hiI)
		pcI, okI := ri.NodePC(crit)
		pcO, okO := ro.NodePC(crit)
		if okI != okO || pcI != pcO {
			t.Fatalf("seed %d tid %d: NodePC diverged: (%d,%v) vs (%d,%v)", seed, tid, pcI, okI, pcO, okO)
		}
		if !okI {
			pcI, pcO = -1, -1
		}
		bi := slicing.Backward(ri, w.Prog, []slicing.Criterion{{ID: crit, PC: pcI}}, sopts)
		bo := slicing.Backward(ro, w.Prog, []slicing.Criterion{{ID: crit, PC: pcO}}, sopts)
		if fmt.Sprint(bi.Lines) != fmt.Sprint(bo.Lines) {
			t.Fatalf("seed %d tid %d: backward slices diverged:\ninline    %v\noffloaded %v",
				seed, tid, bi.Lines, bo.Lines)
		}
		if bi.Nodes != bo.Nodes || bi.Edges != bo.Edges {
			t.Fatalf("seed %d tid %d: backward traversal diverged: %d/%d nodes, %d/%d edges",
				seed, tid, bi.Nodes, bo.Nodes, bi.Edges, bo.Edges)
		}
		sliceLines += len(bo.Lines)

		// Forward slice of the thread's first instance, over the raw
		// stored graphs (Forward consumes any ddg.Source).
		start := []ddg.ID{ddg.MakeID(tid, 1)}
		fi := slicing.Forward(ri, w.Prog, start, sopts)
		fo := slicing.Forward(ro, w.Prog, start, sopts)
		if fmt.Sprint(fi.Lines) != fmt.Sprint(fo.Lines) {
			t.Fatalf("seed %d tid %d: forward slices diverged:\ninline    %v\noffloaded %v",
				seed, tid, fi.Lines, fo.Lines)
		}
		sliceLines += len(fo.Lines)
	}
	// A workload with no stored records (e.g. input-free programs
	// under T2) legitimately has no threads to slice; otherwise empty
	// slices everywhere would make the comparison vacuous.
	if len(ti) > 0 && sliceLines == 0 {
		t.Fatalf("seed %d: every slice came back empty — vacuous comparison", seed)
	}
}

func TestOffloadedDifferentialAllWorkloads(t *testing.T) {
	opts := AllOptimizations()
	opts.BufferBytes = 0 // unbounded: eviction policies differ by design
	elided := uint64(0)
	for _, w := range prog.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for seed := uint64(0); seed < offSchedules; seed++ {
				tr, off := runOffDiff(t, w, opts, seed)
				diffStats(t, seed, tr, off)
				diffSlices(t, seed, w, opts, tr, off)
				s := off.Stats()
				elided += s.ElidedO1 + s.ElidedO2 + s.ElidedO3
			}
		})
	}
	if !t.Failed() && elided == 0 {
		t.Fatal("O1-O3 never elided anything through the offloaded stage")
	}
}

// TestOffloadedDifferentialUnoptimized repeats the check with every
// dependence stored (no elision, control deps on) on a couple of
// representative workloads, so storage equivalence is pinned without
// the optimizations masking anything.
func TestOffloadedDifferentialUnoptimized(t *testing.T) {
	for _, w := range []*prog.Workload{prog.Compress(200, 1), prog.MatMul(5, 3)} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for seed := uint64(0); seed < offSchedules; seed++ {
				tr, off := runOffDiff(t, w, Unoptimized(), seed)
				diffStats(t, seed, tr, off)
				diffSlices(t, seed, w, Unoptimized(), tr, off)
			}
		})
	}
}

// TestOffloadedSelectiveAndT2 covers the targeted (lossy-by-design)
// T1/T2 filters through the offloaded stage.
func TestOffloadedSelectiveAndT2(t *testing.T) {
	opts := Options{ForwardSliceOfInputs: true, ControlDeps: true}
	for _, w := range []*prog.Workload{prog.Parser(100, 2), prog.Sort(24, 4)} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for seed := uint64(0); seed < offSchedules; seed++ {
				tr, off := runOffDiff(t, w, opts, seed)
				diffStats(t, seed, tr, off)
				if off.Stats().ElidedT2 == 0 {
					t.Fatalf("seed %d: T2 elided nothing", seed)
				}
				diffSlices(t, seed, w, opts, tr, off)
			}
		})
	}
}

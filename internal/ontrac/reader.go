package ontrac

import "scaldift/internal/ddg"

// Reader adapts a dependence store into a ddg.Source for slicing,
// re-synthesizing the edges O1 and O2 elided. It reads raw records
// from any ddg.Source — the inline tracer's circular buffer or the
// offloaded stage's per-thread shards — plus the owning tracer's
// reconstruction tables. Because fully elided instances have no
// record at all, reconstruction needs the node's static PC from the
// traversal context; DepsOfHinted supplies it (the slicer learns each
// def's PC from the incoming edge).
type Reader struct {
	t   *Tracer
	src ddg.Source
}

// Reader returns the reconstructing view of the tracer's buffer.
func (t *Tracer) Reader() *Reader { return &Reader{t: t, src: t.buf} }

// ReaderOver returns the reconstructing view over any raw record
// source carrying this tracer's records (e.g. a store.Reader over
// the directory the inline buffer spilled into).
func (t *Tracer) ReaderOver(src ddg.Source) *Reader { return &Reader{t: t, src: src} }

// Threads implements ddg.Source.
func (r *Reader) Threads() []int { return r.src.Threads() }

// Window implements ddg.Source.
func (r *Reader) Window(tid int) (uint64, uint64) { return r.src.Window(tid) }

// NodePC implements ddg.Source.
func (r *Reader) NodePC(id ddg.ID) (int32, bool) { return r.src.NodePC(id) }

// DepsOf implements ddg.Source using the stored PC when available.
func (r *Reader) DepsOf(id ddg.ID, yield func(ddg.Dep)) {
	pc, ok := r.src.NodePC(id)
	if !ok {
		pc = -1
	}
	r.DepsOfHinted(id, pc, yield)
}

// DepsOfHinted yields the stored dependences of id plus the O1/O2
// reconstructions valid for an instance of static instruction pcHint
// (-1: unknown, reconstruct nothing).
//
// A stored same-thread data dependence suppresses reconstruction of
// patterns with the same def PC: the writer only elides a dependence
// when the dynamic instance distance matches the pattern, so a stored
// edge to that def site means this instance deviated (a blocking sync
// retry skewed the thread sequence) and the pattern names the wrong
// instance. Replaying it anyway would fabricate an edge whose Def id
// belongs to a different static instruction — poisoning downstream
// hint propagation in the slicer and losing real statements. Fully
// elided instances need no such check: every elided dependence passed
// the writer's distance test, so their reconstruction is exact.
func (r *Reader) DepsOfHinted(id ddg.ID, pcHint int32, yield func(ddg.Dep)) {
	var storedDef map[int32]bool
	r.src.DepsOf(id, func(d ddg.Dep) {
		if d.Kind == ddg.Data && d.Def != 0 && d.Def.TID() == id.TID() {
			if storedDef == nil {
				storedDef = make(map[int32]bool, 4)
			}
			storedDef[d.DefPC] = true
		}
		yield(d)
	})
	if pcHint < 0 {
		return
	}
	n := id.N()
	// O1: in-block static dependences hold at id-distance
	// usePC-defPC, except for instances whose true edge was stored.
	if r.t.staticByUse != nil {
		for _, sd := range r.t.staticByUse[pcHint] {
			dist := uint64(sd.Use - sd.Def)
			if dist == 0 || dist >= n || storedDef[int32(sd.Def)] {
				continue
			}
			yield(ddg.Dep{
				Use: id, UsePC: pcHint,
				Def:   ddg.MakeID(id.TID(), n-dist),
				DefPC: int32(sd.Def),
				Kind:  ddg.Data,
			})
		}
	}
	// O2: learned patterns for this use site. These may slightly
	// over-approximate (an instance may match a pattern its own
	// stores never confirmed), which only ever grows the slice.
	for _, k := range r.t.dictByUse[pcHint] {
		if k.delta >= n || (k.kind == ddg.Data && storedDef[k.defPC]) {
			continue
		}
		yield(ddg.Dep{
			Use: id, UsePC: pcHint,
			Def:   ddg.MakeID(id.TID(), n-k.delta),
			DefPC: k.defPC,
			Kind:  k.kind,
		})
	}
}

var _ ddg.Source = (*Reader)(nil)

// Package ontrac implements ONTRAC (§2.1, [4]): online construction
// of the dynamic dependence graph in a fixed-size circular buffer,
// with the optimizations that cut the paper's trace rate from 16
// bytes per executed instruction to under one:
//
//	O1 — dependences within a basic block that static examination of
//	     the binary resolves are never stored (re-inferred at slicing
//	     time),
//	O2 — the same idea extended to frequently recurring dependence
//	     patterns spanning several blocks (a dynamically learned
//	     trace dictionary),
//	O3 — dynamically detected redundant loads store a one-byte
//	     "same as previous instance" marker instead of the full edge,
//	T1 — selective tracing of user-specified functions that keeps
//	     dependence chains intact (definitions in untraced code are
//	     still tracked, so stored edges point through them),
//	T2 — only dependences in the forward slice of the program inputs
//	     are stored (an online boolean-taint computation).
//
// O1–O3 are lossless: the Reader re-synthesizes the elided edges.
// T1/T2 are targeted (lossy by design): the paper argues the bug is
// in the traced functions / input's forward slice respectively.
package ontrac

import (
	"scaldift/internal/ddg"
	"scaldift/internal/dift"
	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

// Options selects buffer capacity and optimizations.
type Options struct {
	// BufferBytes is the circular trace buffer capacity; 0 means
	// unbounded (no eviction). The paper's configuration is 16MB.
	BufferBytes int
	// ControlDeps records dynamic control dependences.
	ControlDeps bool
	// ElideStaticBlockDeps enables O1.
	ElideStaticBlockDeps bool
	// TraceDictionary enables O2. A dependence pattern enters the
	// dictionary after DictThreshold occurrences (default 2).
	TraceDictionary bool
	DictThreshold   int
	// ElideRedundantLoads enables O3.
	ElideRedundantLoads bool
	// TraceFuncs, when non-empty, enables T1: only dependences whose
	// use lies in one of the named functions are stored.
	TraceFuncs []string
	// ForwardSliceOfInputs enables T2.
	ForwardSliceOfInputs bool
}

// AllOptimizations returns the full optimization stack with a 16MB
// buffer, the paper's headline configuration (minus T1, which needs a
// function list from the user).
func AllOptimizations() Options {
	return Options{
		BufferBytes:          16 << 20,
		ControlDeps:          true,
		ElideStaticBlockDeps: true,
		TraceDictionary:      true,
		ElideRedundantLoads:  true,
		ForwardSliceOfInputs: true,
	}
}

// Unoptimized returns a configuration that stores every dependence
// (the 16-bytes-per-instruction end of the spectrum).
func Unoptimized() Options {
	return Options{ControlDeps: true}
}

// Stats reports what the tracer stored and what each optimization
// elided.
type Stats struct {
	Instrs       uint64 // instructions executed
	DepsSeen     uint64 // dependences produced by the extractor
	DepsStored   uint64
	ElidedO1     uint64 // static in-block
	ElidedO2     uint64 // trace dictionary
	ElidedO3     uint64 // redundant loads (markers written instead)
	ElidedT1     uint64 // outside traced functions
	ElidedT2     uint64 // outside the input's forward slice
	BytesWritten uint64
	DictSize     int
}

// BytesPerInstr is the headline trace-rate metric.
func (s Stats) BytesPerInstr() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.BytesWritten) / float64(s.Instrs)
}

type dictKey struct {
	usePC int32
	defPC int32
	delta uint64
	kind  ddg.Kind
}

type loadState struct {
	lastN uint64 // previous retained instance of this load
	def   ddg.ID // its memory dependence def
}

// depAppender is where Deps sends the records that survive elision:
// the circular buffer inline, or the offloaded stage's per-window
// staging area (which later writes per-thread ddg.Sharded shards).
type depAppender interface {
	Append(use ddg.ID, usePC int32, deps []ddg.Dep, rlDelta uint64)
}

// Tracer is the ONTRAC elision/storage core. Inline (New) it is
// driven by its own extractor — attach via Tool() to a vm.Machine;
// offloaded (NewOffloaded) the batched pipeline drives Node/Deps
// downstream of the execution thread, with ex and buf nil.
type Tracer struct {
	prog *isa.Program
	opts Options
	buf  *ddg.Compact // inline circular buffer; nil when offloaded
	out  depAppender
	ex   *ddg.Extractor // inline front end; nil when offloaded

	// O1 state.
	staticPairs map[[2]int32]bool
	staticByUse map[int32][]isa.StaticDep
	// O2 state.
	dictCounts map[dictKey]int
	dict       map[dictKey]bool
	dictByUse  map[int32][]dictKey
	// O3 state: per (tid, pc).
	loads map[[2]int32]*loadState
	// T1 state.
	traced []bool
	// T2 state.
	taint    *dift.Engine[bool]
	affected bool

	stats Stats
}

// New builds an inline tracer for prog.
func New(prog *isa.Program, opts Options) *Tracer {
	t := newTracer(prog, opts)
	t.buf = ddg.NewCompact(opts.BufferBytes)
	t.out = t.buf
	t.ex = ddg.NewExtractor(prog, t, ddg.ExtractorOpts{ControlDeps: opts.ControlDeps})
	return t
}

// newTracer builds the elision/filter state shared by the inline and
// offloaded front ends; the caller wires buf/out/ex.
func newTracer(prog *isa.Program, opts Options) *Tracer {
	if opts.DictThreshold <= 0 {
		opts.DictThreshold = 2
	}
	t := &Tracer{
		prog:       prog,
		opts:       opts,
		dictCounts: make(map[dictKey]int),
		dict:       make(map[dictKey]bool),
		dictByUse:  make(map[int32][]dictKey),
		loads:      make(map[[2]int32]*loadState),
	}
	if opts.ElideStaticBlockDeps {
		cfg := isa.BuildCFG(prog)
		t.staticPairs = make(map[[2]int32]bool)
		t.staticByUse = make(map[int32][]isa.StaticDep)
		for _, deps := range isa.BlockStaticDeps(cfg) {
			for _, d := range deps {
				t.staticPairs[[2]int32{int32(d.Use), int32(d.Def)}] = true
				t.staticByUse[int32(d.Use)] = append(t.staticByUse[int32(d.Use)], d)
			}
		}
	}
	if len(opts.TraceFuncs) > 0 {
		t.traced = make([]bool, len(prog.Instrs))
		for _, name := range opts.TraceFuncs {
			if fr, ok := prog.Funcs[name]; ok {
				for pc := fr.Start; pc < fr.End; pc++ {
					t.traced[pc] = true
				}
			}
		}
	}
	if opts.ForwardSliceOfInputs {
		t.taint = dift.NewEngine[bool](dift.Bool{}, dift.DefaultPolicy())
	}
	return t
}

// Tool returns the vm.Tool to attach (the underlying extractor).
// Inline tracers only.
func (t *Tracer) Tool() vm.Tool { return t.ex }

// Buffer exposes the circular buffer (statistics, window). Inline
// tracers only; the offloaded stage exposes Shards instead.
func (t *Tracer) Buffer() *ddg.Compact { return t.buf }

// LastID returns the most recent instance id of a thread, usable as
// a slicing criterion.
func (t *Tracer) LastID(tid int) ddg.ID { return t.ex.LastID(tid) }

// Stats returns a snapshot of the tracer's counters. The offloaded
// stage fills Instrs and BytesWritten from its own accounting.
func (t *Tracer) Stats() Stats {
	s := t.stats
	if t.ex != nil {
		s.Instrs = t.ex.Instrs()
	}
	if t.buf != nil {
		s.BytesWritten = t.buf.BytesWritten()
	}
	s.DictSize = len(t.dict)
	return s
}

// Node implements ddg.Sink: runs the T2 taint engine and computes
// whether this instance is input-affected.
func (t *Tracer) Node(id ddg.ID, pc int32, ev *vm.Event) {
	if t.taint == nil {
		return
	}
	// Source-operand taint before the engine updates shadow state:
	// used for instructions with no destination (branches, outputs).
	srcTainted := false
	for i := 0; i < ev.NSrc; i++ {
		if t.taint.RegTaint(ev.TID, ev.SrcRegs[i]) {
			srcTainted = true
		}
	}
	if ev.SrcMem != vm.NoAddr && t.taint.MemTaint(ev.SrcMem) {
		srcTainted = true
	}
	t.taint.OnEvent(nil, ev)
	switch {
	case ev.Kind == vm.EvInput:
		t.affected = true
	case ev.DstReg >= 0:
		t.affected = t.taint.RegTaint(ev.TID, ev.DstReg) || srcTainted
	case ev.DstMem != vm.NoAddr:
		t.affected = t.taint.MemTaint(ev.DstMem) || srcTainted
	default:
		t.affected = srcTainted
	}
}

// Deps implements ddg.Sink: applies T1/T2/O1/O2/O3 and stores what
// survives into the circular buffer.
func (t *Tracer) Deps(id ddg.ID, pc int32, deps []ddg.Dep) {
	t.stats.DepsSeen += uint64(len(deps))
	if len(deps) == 0 {
		return
	}
	// T1: only uses inside traced functions are stored. Definitions
	// elsewhere were still tracked by the extractor, so chains are
	// unbroken.
	if t.traced != nil && !t.traced[pc] {
		t.stats.ElidedT1 += uint64(len(deps))
		return
	}
	// T2: only input-affected instances are stored.
	if t.taint != nil && !t.affected {
		t.stats.ElidedT2 += uint64(len(deps))
		return
	}

	keep := deps[:0]
	var rlDelta uint64
	for _, d := range deps {
		// O1: statically inferable in-block dependence.
		if t.staticPairs != nil && d.Kind == ddg.Data && d.Def.TID() == id.TID() &&
			t.staticPairs[[2]int32{d.UsePC, d.DefPC}] &&
			id.N()-d.Def.N() == uint64(d.UsePC-d.DefPC) {
			t.stats.ElidedO1++
			continue
		}
		// O3: redundant load — same memory def as the previous
		// instance of this static load. The memory dependence is the
		// edge whose definer is a store-class instruction (the
		// address-register edge's definer writes a register).
		if t.opts.ElideRedundantLoads && d.Kind == ddg.Data &&
			t.prog.Instrs[pc].Op == isa.LOAD && d.Def != 0 &&
			t.prog.Instrs[d.DefPC].Op.Stores() {
			key := [2]int32{int32(id.TID()), pc}
			if st, ok := t.loads[key]; ok && st.def == d.Def && st.lastN < id.N() {
				rlDelta = id.N() - st.lastN
				st.lastN = id.N()
				t.stats.ElidedO3++
				continue
			}
			if st, ok := t.loads[key]; ok {
				st.lastN = id.N()
				st.def = d.Def
			} else {
				t.loads[key] = &loadState{lastN: id.N(), def: d.Def}
			}
		}
		// O2: learned dependence pattern.
		if t.opts.TraceDictionary && d.Def.TID() == id.TID() {
			key := dictKey{usePC: d.UsePC, defPC: d.DefPC,
				delta: id.N() - d.Def.N(), kind: d.Kind}
			if t.dict[key] {
				t.stats.ElidedO2++
				continue
			}
			t.dictCounts[key]++
			if t.dictCounts[key] >= t.opts.DictThreshold {
				t.dict[key] = true
				t.dictByUse[d.UsePC] = append(t.dictByUse[d.UsePC], key)
				delete(t.dictCounts, key)
			}
		}
		keep = append(keep, d)
	}
	if len(keep) == 0 && rlDelta == 0 {
		return
	}
	t.stats.DepsStored += uint64(len(keep))
	t.out.Append(id, pc, keep, rlDelta)
}

var _ ddg.Sink = (*Tracer)(nil)

package ontrac

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"scaldift/internal/benchfp"
	"scaldift/internal/ddg"
	"scaldift/internal/pipeline"
	"scaldift/internal/prog"
	"scaldift/internal/vm"
)

// The BenchmarkOntracPipeline* suite measures inline vs. offloaded
// ONTRAC tracing on prog workloads: events/s of the execution thread
// (VM instructions over wall time). RecordOnly is the paper's
// headline comparison — what the execution thread pays when tracing
// is offloaded (one filter check + one struct copy per instruction)
// versus carrying the full extractor inline.
//
// TestWriteBenchOntracJSON (env ONTRAC_BENCH_JSON=1) times the record
// and trace stages separately via CollectWith/Consume and writes
// BENCH_ontrac.json at the repo root.

func benchWorkloads() map[string]func() *prog.Workload {
	return map[string]func() *prog.Workload{
		"compress": func() *prog.Workload { return prog.Compress(12000, 1) },
		"matmul":   func() *prog.Workload { return prog.MatMul(14, 3) },
		"psum":     func() *prog.Workload { return prog.PSum(4, 4000, 7) },
	}
}

// runOntracInline executes w's machine under the inline tracer and
// returns the steps traced.
func runOntracInline(b testing.TB, w *prog.Workload, opts Options) uint64 {
	m := w.NewMachine()
	tr := New(w.Prog, opts)
	m.AttachTool(tr.Tool())
	if res := m.Run(); res.Failed {
		b.Fatal(res.FailMsg)
	}
	return m.Steps()
}

// runOntracRecordOnly executes w's machine with only the batching
// recorder attached (the offloaded design's execution-thread cost).
func runOntracRecordOnly(b testing.TB, w *prog.Workload) uint64 {
	m := w.NewMachine()
	var rec *vm.Recorder
	rec = vm.NewRecorder(vm.DefaultBatchEvents, ddg.TraceRelevant, func(bt *vm.Batch) { rec.Free(bt) })
	m.AttachTool(rec)
	if res := m.Run(); res.Failed {
		b.Fatal(res.FailMsg)
	}
	rec.Flush()
	return m.Steps()
}

// runOntracOffloaded executes w's machine with the full concurrent
// offloaded stage attached.
func runOntracOffloaded(b testing.TB, w *prog.Workload, opts Options, workers int) uint64 {
	m := w.NewMachine()
	off := NewOffloaded(w.Prog, opts, pipeline.Options{Workers: workers})
	if res := Trace(m, off); res.Failed {
		b.Fatal(res.FailMsg)
	}
	return m.Steps()
}

func benchOntrac(b *testing.B, name, mode string, workers int) {
	mk := benchWorkloads()[name]
	opts := AllOptimizations()
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		w := mk()
		switch mode {
		case "inline":
			steps += runOntracInline(b, w, opts)
		case "record":
			steps += runOntracRecordOnly(b, w)
		case "offloaded":
			steps += runOntracOffloaded(b, w, opts, workers)
		}
	}
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(steps)/el, "events/s")
	}
}

func BenchmarkOntracPipelineCompressInline(b *testing.B) { benchOntrac(b, "compress", "inline", 0) }
func BenchmarkOntracPipelineCompressRecordOnly(b *testing.B) {
	benchOntrac(b, "compress", "record", 0)
}
func BenchmarkOntracPipelineCompressOffloadedW2(b *testing.B) {
	benchOntrac(b, "compress", "offloaded", 2)
}
func BenchmarkOntracPipelineCompressOffloadedW4(b *testing.B) {
	benchOntrac(b, "compress", "offloaded", 4)
}
func BenchmarkOntracPipelineMatmulInline(b *testing.B)     { benchOntrac(b, "matmul", "inline", 0) }
func BenchmarkOntracPipelineMatmulRecordOnly(b *testing.B) { benchOntrac(b, "matmul", "record", 0) }
func BenchmarkOntracPipelineMatmulOffloadedW2(b *testing.B) {
	benchOntrac(b, "matmul", "offloaded", 2)
}
func BenchmarkOntracPipelinePsumInline(b *testing.B)     { benchOntrac(b, "psum", "inline", 0) }
func BenchmarkOntracPipelinePsumRecordOnly(b *testing.B) { benchOntrac(b, "psum", "record", 0) }
func BenchmarkOntracPipelinePsumOffloadedW2(b *testing.B) {
	benchOntrac(b, "psum", "offloaded", 2)
}

// --- BENCH_ontrac.json ---------------------------------------------

type ontracBenchStage struct {
	WallS        float64 `json:"wall_s"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type ontracBenchOffloaded struct {
	Workers int `json:"workers"`
	// Stage walls measured separately on an offline trace; the
	// concurrent end-to-end wall alongside.
	RecordS      float64 `json:"record_s"`
	TraceS       float64 `json:"trace_s"`
	ConcurrentS  float64 `json:"concurrent_s"`
	EventsPerSec float64 `json:"events_per_sec"` // events / max(record, trace)
}

type ontracBenchRow struct {
	Workload   string                 `json:"workload"`
	Events     uint64                 `json:"events"`
	NativeS    float64                `json:"native_s"`
	BytesInstr float64                `json:"bytes_per_instr"`
	Inline     ontracBenchStage       `json:"inline"`
	RecordOnly ontracBenchStage       `json:"record_only"`
	Offloaded  []ontracBenchOffloaded `json:"offloaded"`
}

type ontracBenchReport struct {
	GoMaxProcs int              `json:"gomaxprocs"`
	Host       benchfp.Host     `json:"host"`
	Note       string           `json:"note"`
	Results    []ontracBenchRow `json:"results"`
}

func bestOf(reps int, f func()) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if s := time.Since(t0).Seconds(); i == 0 || s < best {
			best = s
		}
	}
	return best
}

// TestWriteBenchOntracJSON generates BENCH_ontrac.json:
//
//	ONTRAC_BENCH_JSON=1 go test -run TestWriteBenchOntracJSON ./internal/ontrac/
func TestWriteBenchOntracJSON(t *testing.T) {
	if os.Getenv("ONTRAC_BENCH_JSON") == "" {
		t.Skip("set ONTRAC_BENCH_JSON=1 to generate BENCH_ontrac.json")
	}
	const reps = 3
	opts := AllOptimizations()
	report := ontracBenchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Host:       benchfp.Current(),
		Note: "events = VM instructions executed. record_only is the execution-thread cost of " +
			"the offloaded design (batching recorder, ddg.TraceRelevant filter); inline carries " +
			"the full ONTRAC extractor on the execution thread. Offloaded events_per_sec is " +
			"sustained pipeline throughput events/max(record_s, trace_s); concurrent_s is the " +
			"end-to-end wall of the live pipeline on this host.",
	}
	for _, name := range []string{"compress", "matmul", "psum"} {
		mk := benchWorkloads()[name]
		var steps uint64
		nativeS := bestOf(reps, func() {
			w := mk()
			m := w.NewMachine()
			if res := m.Run(); res.Failed {
				t.Fatal(res.FailMsg)
			}
			steps = m.Steps()
		})
		inlineS := bestOf(reps, func() { runOntracInline(t, mk(), opts) })
		recordS := bestOf(reps, func() { runOntracRecordOnly(t, mk()) })

		// Bytes/instr from one inline run (identical offloaded, pinned
		// by the differential suite).
		trw := mk()
		trm := trw.NewMachine()
		tr := New(trw.Prog, opts)
		trm.AttachTool(tr.Tool())
		if res := trm.Run(); res.Failed {
			t.Fatal(res.FailMsg)
		}

		// One offline trace, reused across trace-stage reps.
		wTrace := mk()
		mTrace := wTrace.NewMachine()
		trace, res := pipeline.CollectWith(mTrace, vm.DefaultBatchEvents, ddg.TraceRelevant)
		if res.Failed {
			t.Fatal(res.FailMsg)
		}

		row := ontracBenchRow{
			Workload: name, Events: steps, NativeS: nativeS,
			BytesInstr: tr.Stats().BytesPerInstr(),
			Inline:     ontracBenchStage{WallS: inlineS, EventsPerSec: float64(steps) / inlineS},
			RecordOnly: ontracBenchStage{WallS: recordS, EventsPerSec: float64(steps) / recordS},
		}
		for _, workers := range []int{1, 2, 4} {
			traceS := bestOf(reps, func() {
				off := NewOffloaded(wTrace.Prog, opts, pipeline.Options{Workers: workers})
				off.Consume(trace)
				off.Close()
			})
			concurrentS := bestOf(reps, func() { runOntracOffloaded(t, mk(), opts, workers) })
			bottleneck := recordS
			if traceS > bottleneck {
				bottleneck = traceS
			}
			row.Offloaded = append(row.Offloaded, ontracBenchOffloaded{
				Workers: workers, RecordS: recordS, TraceS: traceS,
				ConcurrentS: concurrentS, EventsPerSec: float64(steps) / bottleneck,
			})
		}
		report.Results = append(report.Results, row)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_ontrac.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range report.Results {
		if r.RecordOnly.EventsPerSec <= r.Inline.EventsPerSec {
			t.Errorf("%s: record-only (%.0f ev/s) did not beat inline tracing (%.0f ev/s)",
				r.Workload, r.RecordOnly.EventsPerSec, r.Inline.EventsPerSec)
		}
		fmt.Printf("%s: native %.3fs, inline %.0f ev/s, record-only %.0f ev/s, offloaded-w2 sustained %.0f ev/s, %.2f bytes/instr\n",
			r.Workload, r.NativeS, r.Inline.EventsPerSec, r.RecordOnly.EventsPerSec,
			r.Offloaded[1].EventsPerSec, r.BytesInstr)
	}
}

package ontrac

import (
	"sort"

	"scaldift/internal/cdep"
	"scaldift/internal/ddg"
	"scaldift/internal/isa"
	"scaldift/internal/pipeline"
	"scaldift/internal/vm"
)

// Offloaded is ONTRAC's dependence tracing run downstream of the
// execution thread, on the same batched recorder/consumer machinery
// as the DIFT pipeline (internal/pipeline): execution pays one struct
// copy per instruction, and the dependence work happens on the
// consumer goroutine plus a worker pool. Per window:
//
//  1. extract (workers, one per thread chain): register dependences
//     and control parents come from thread-private state
//     (ddg.ThreadExtractor over cdep per-thread stacks), safely in
//     parallel across threads;
//  2. merge (consumer): the window's events walk in global Seq order
//     through the shared memory-tag resolver — cross-thread memory
//     dependences resolve exactly as inline — and through the
//     unchanged Tracer elision core (T1/T2/O1/O2/O3), whose
//     surviving records stage per thread;
//  3. append (workers): each thread's staged records encode into its
//     own ddg.Sharded compact shard in parallel.
//
// Because the elision core runs in the inline tracer's event order
// and per-thread chunk encoding is identical, the offloaded stage
// produces the same stats, bytes, and slices as the inline tracer —
// the differential suite in offload_test.go holds it to exactly that.
//
// One semantic gap versus a lone Compact: with BufferBytes > 0 each
// per-thread shard rings over the full capacity independently,
// instead of one global ring over cross-thread append order.
type Offloaded struct {
	prog *isa.Program
	opts Options
	popt pipeline.Options

	tr      *Tracer
	staging *staging
	shards  *ddg.Sharded
	res     *ddg.MemResolver
	ctrl    *cdep.Tracker

	cons *pipeline.Consumer
	pool *pipeline.Pool

	threads map[int]*ddg.ThreadExtractor
	scratch map[int]*chainScratch
	counts  map[int]uint64 // per-thread instance high-water mark

	merged    []ddg.Extracted
	depBuf    []ddg.Dep
	extracted [][]ddg.Extracted
	tasks     []func()
}

// chainScratch is one thread's reusable extraction storage: the Dep
// arena its records alias and the record list itself. Owned by the
// thread's extraction worker during phase 1, read by the consumer in
// phase 2, reused window after window.
type chainScratch struct {
	arena []ddg.Dep
	out   []ddg.Extracted
}

// NewOffloaded builds the offloaded stage for prog. opts selects the
// ONTRAC configuration (same knobs as the inline tracer); popt shapes
// the pipeline (workers, batch size, window, queue).
func NewOffloaded(prog *isa.Program, opts Options, popt pipeline.Options) *Offloaded {
	popt.Fill()
	o := &Offloaded{
		prog:    prog,
		opts:    opts,
		popt:    popt,
		staging: newStaging(),
		shards:  ddg.NewSharded(opts.BufferBytes),
		res:     ddg.NewMemResolver(false),
		threads: make(map[int]*ddg.ThreadExtractor),
		scratch: make(map[int]*chainScratch),
		counts:  make(map[int]uint64),
		pool:    pipeline.NewPool(popt.Workers),
	}
	o.tr = newTracer(prog, opts)
	o.tr.out = o.staging
	if opts.ControlDeps {
		o.ctrl = cdep.New(prog)
	}
	o.cons = pipeline.NewConsumer(offHandler{o}, popt.WindowBatches)
	return o
}

// Attach connects the stage to m via a batching recorder (filter:
// ddg.TraceRelevant) and starts the consumer. Call Close after the
// run.
func (o *Offloaded) Attach(m *vm.Machine) {
	o.cons.Attach(m, o.popt.BatchEvents, o.popt.QueueDepth, ddg.TraceRelevant)
}

// SpillTo attaches a chunk sink (store.Writer) that every per-thread
// shard spills sealed chunks into, making the whole execution
// persistent instead of window-bounded. Call before Attach/Consume;
// an async sink keeps shard appends (and so the pipeline) from
// gating on disk I/O. Close flushes the still-open chunks through
// the sink; the caller closes the sink itself afterwards.
func (o *Offloaded) SpillTo(sink ddg.ChunkSink) { o.shards.SetSpill(sink) }

// Close flushes and drains the consumer, stops the worker pool, and
// seals the shards' open chunks through the spill sink (if any).
// Results are stable once Close returns. Idempotent.
func (o *Offloaded) Close() {
	o.cons.Close()
	o.pool.Close()
	o.shards.Flush()
}

// Consume traces an offline batch stream (from pipeline.CollectWith
// with ddg.TraceRelevant) synchronously on the calling goroutine.
func (o *Offloaded) Consume(batches []*vm.Batch) { o.cons.Consume(batches) }

// Trace attaches o to m, runs the machine, and closes the stage: the
// one-call entry point for an offloaded tracing run.
func Trace(m *vm.Machine, o *Offloaded) *vm.Result {
	o.Attach(m)
	res := m.Run()
	o.Close()
	return res
}

// Reader returns the reconstructing ddg.Source over the sharded
// buffers, for slicing.
func (o *Offloaded) Reader() *Reader { return &Reader{t: o.tr, src: o.shards} }

// ReaderOver returns the reconstructing view over any raw record
// source carrying this stage's chunks — typically a store.Reader
// reopened from the directory the stage spilled into — so O1/O2
// reconstruction works over the on-disk trace too.
func (o *Offloaded) ReaderOver(src ddg.Source) *Reader { return &Reader{t: o.tr, src: src} }

// Shards exposes the per-thread compact stores.
func (o *Offloaded) Shards() *ddg.Sharded { return o.shards }

// LastID returns the most recent traced instance id of a thread,
// usable as a slicing criterion; the zero ID means the thread never
// traced an instruction (matching the inline extractor's convention).
func (o *Offloaded) LastID(tid int) ddg.ID {
	n := o.counts[tid]
	if n == 0 {
		return 0
	}
	return ddg.MakeID(tid, n)
}

// Stats returns the tracer counters with the stage's own instruction
// and byte accounting.
func (o *Offloaded) Stats() Stats {
	s := o.tr.Stats()
	var n uint64
	for _, c := range o.counts {
		n += c
	}
	s.Instrs = n
	s.BytesWritten = o.shards.BytesWritten()
	return s
}

// offHandler adapts Offloaded to pipeline.BatchHandler.
type offHandler struct{ o *Offloaded }

func (h offHandler) Window(w []*vm.Batch) { h.o.window(w) }

// Sync batches (spawn) arrive solo after a drain; the window path
// handles the single-chain case on the consumer goroutine, where the
// cross-thread register seeding is safe.
func (h offHandler) Sync(b *vm.Batch) { h.o.window([]*vm.Batch{b}) }

// thread returns (creating on the consumer goroutine) tid's
// extractor and scratch.
func (o *Offloaded) thread(tid int) *ddg.ThreadExtractor {
	x, ok := o.threads[tid]
	if !ok {
		var ct *cdep.ThreadTracker
		if o.ctrl != nil {
			ct = o.ctrl.Thread(tid)
		}
		x = ddg.NewThreadExtractor(tid, ct)
		o.threads[tid] = x
		o.scratch[tid] = &chainScratch{}
	}
	return x
}

// window runs the three phases over one window.
func (o *Offloaded) window(w []*vm.Batch) {
	chains, _ := pipeline.GroupChains(w)
	for _, ch := range chains {
		o.thread(ch[0].TID) // consumer-side map writes before dispatch
	}

	// Phase 1: thread-local extraction, parallel across chains. The
	// per-window slices are reused fields, like the arenas they carry.
	extracted := o.extracted[:0]
	tasks := o.tasks[:0]
	for i, ch := range chains {
		i, ch := i, ch
		extracted = append(extracted, nil)
		tasks = append(tasks, func() { extracted[i] = o.extractChain(ch) })
	}
	o.pool.Run(tasks)
	o.tasks = tasks[:0]

	// Phase 2: global-Seq merge through the memory resolver and the
	// elision core — the exact inline event order. A lone chain is
	// already globally ordered: walk it in place, no copy, no sort.
	var all []ddg.Extracted
	if len(chains) == 1 {
		all = extracted[0]
	} else {
		all = o.merged[:0]
		for _, recs := range extracted {
			all = append(all, recs...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Ev.Seq < all[j].Ev.Seq })
	}
	for i := range all {
		rec := &all[i]
		deps := o.res.Resolve(rec, o.depBuf[:0])
		o.tr.Node(rec.ID, rec.PC, rec.Ev)
		o.tr.Deps(rec.ID, rec.PC, deps)
		o.depBuf = deps[:0]
		tid := rec.ID.TID()
		if n := rec.ID.N(); n > o.counts[tid] {
			o.counts[tid] = n
		}
		if rec.Ev.Kind == vm.EvSpawn {
			// Solo sync window: seeding the child's register tags from
			// the consumer goroutine is race-free.
			o.thread(int(rec.Ev.DstVal)).SeedSpawnArg(rec.ID, rec.PC)
		}
	}
	// Drop batch-event pointers — from the merge buffer and from the
	// per-thread scratch the records came from (a lone chain's `all`
	// aliases its scratch): the Consumer recycles the window's batches
	// as soon as we return.
	if len(chains) > 1 {
		for i := range all {
			all[i].Ev = nil
			all[i].Deps = nil
		}
		o.merged = all[:0]
	}
	for j, recs := range extracted {
		for i := range recs {
			recs[i].Ev = nil
			recs[i].Deps = nil
		}
		extracted[j] = nil
	}
	o.extracted = extracted[:0]

	// Phase 3: per-thread appends into the shards, parallel across
	// threads.
	o.flushStaging()
}

// extractChain runs thread-local extraction over one thread's batch
// chain (worker goroutine; the chain's thread state and scratch are
// owned by this call for the window).
func (o *Offloaded) extractChain(ch []*vm.Batch) []ddg.Extracted {
	tid := ch[0].TID
	x := o.threads[tid]
	sc := o.scratch[tid]
	total := 0
	for _, b := range ch {
		total += len(b.Events)
	}
	// 2 register sources max per event: sizing the arena up front
	// keeps every record's dep slice aliased into one allocation; the
	// scratch persists across windows, so steady state allocates
	// nothing.
	if cap(sc.arena) < 2*total {
		sc.arena = make([]ddg.Dep, 0, 2*total)
	}
	if cap(sc.out) < total {
		sc.out = make([]ddg.Extracted, 0, total)
	}
	arena, out := sc.arena[:0], sc.out[:0]
	var rec ddg.Extracted
	for _, b := range ch {
		for i := range b.Events {
			rec, arena = x.Extract(&b.Events[i], arena)
			out = append(out, rec)
		}
	}
	sc.arena, sc.out = arena, out
	return out
}

// flushStaging appends the window's surviving records into the
// per-thread shards, in parallel when several threads staged work.
func (o *Offloaded) flushStaging() {
	tids := o.staging.tids()
	if len(tids) == 0 {
		return
	}
	tasks := o.tasks[:0]
	for _, tid := range tids {
		tid := tid
		o.shards.Shard(tid) // consumer-side map writes before dispatch
		tasks = append(tasks, func() { o.appendStaged(tid) })
	}
	o.pool.Run(tasks)
	o.tasks = tasks[:0]
	o.staging.reset()
}

func (o *Offloaded) appendStaged(tid int) {
	shard := o.shards.Shard(tid)
	for _, r := range o.staging.perTid[tid] {
		shard.Append(r.id, r.pc, r.deps, r.rl)
	}
}

// stagedRec is one post-elision record awaiting its shard append.
type stagedRec struct {
	id   ddg.ID
	pc   int32
	deps []ddg.Dep
	rl   uint64
}

// staging collects the records Tracer.Deps emits during a window
// merge. It implements depAppender; the dep list is copied because
// the tracer reuses its buffer per event.
type staging struct {
	perTid map[int][]stagedRec
	arena  []ddg.Dep
	tidBuf []int
}

func newStaging() *staging {
	return &staging{perTid: make(map[int][]stagedRec)}
}

// Append implements depAppender (consumer goroutine only).
func (s *staging) Append(use ddg.ID, usePC int32, deps []ddg.Dep, rlDelta uint64) {
	start := len(s.arena)
	s.arena = append(s.arena, deps...)
	tid := use.TID()
	s.perTid[tid] = append(s.perTid[tid], stagedRec{
		id: use, pc: usePC, deps: s.arena[start:len(s.arena):len(s.arena)], rl: rlDelta,
	})
}

// tids lists threads with staged records (into a reused buffer,
// valid until the next call).
func (s *staging) tids() []int {
	out := s.tidBuf[:0]
	for tid, recs := range s.perTid {
		if len(recs) > 0 {
			out = append(out, tid)
		}
	}
	sort.Ints(out)
	s.tidBuf = out
	return out
}

// reset clears staged work, keeping storage for the next window.
func (s *staging) reset() {
	for tid, recs := range s.perTid {
		s.perTid[tid] = recs[:0]
	}
	s.arena = s.arena[:0]
}

package ontrac

import (
	"fmt"
	"testing"

	"scaldift/internal/ddg"
	"scaldift/internal/pipeline"
	"scaldift/internal/prog"
	"scaldift/internal/slicing"
)

// TestStaticReconstructorMatchesRecordingReader: a Reconstructor
// built from the program alone must reconstruct exactly what the
// recording run's own Reader reconstructs, for traces recorded under
// StaticOptions (no learned dictionary to lose).
func TestStaticReconstructorMatchesRecordingReader(t *testing.T) {
	for _, w := range prog.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			w.Cfg.Seed = 11
			w.Cfg.RandomPreempt = true
			if w.Cfg.Quantum == 0 {
				w.Cfg.Quantum = 17
			}
			m := w.NewMachine()
			off := NewOffloaded(w.Prog, StaticOptions(), pipeline.Options{Workers: 2})
			if res := Trace(m, off); res.Failed {
				t.Fatal(res.FailMsg)
			}
			live := off.Reader()
			static := NewStaticReconstructor(w.Prog, StaticOptions()).ReaderOver(off.Shards())
			sopts := slicing.Options{FollowControl: true}
			checked := 0
			for _, tid := range off.Shards().Threads() {
				crit := off.LastID(tid)
				if crit == 0 {
					continue
				}
				pc, ok := off.Shards().NodePC(crit)
				if !ok {
					pc = -1
				}
				crits := []slicing.Criterion{{ID: crit, PC: pc}}
				want := slicing.Backward(live, w.Prog, crits, sopts)
				got := slicing.Backward(static, w.Prog, crits, sopts)
				if fmt.Sprint(want.Lines) != fmt.Sprint(got.Lines) ||
					want.Nodes != got.Nodes || want.Edges != got.Edges {
					t.Fatalf("tid %d: static reconstruction diverged:\nlive   %v (%d/%d)\nstatic %v (%d/%d)",
						tid, want.Lines, want.Nodes, want.Edges, got.Lines, got.Nodes, got.Edges)
				}
				// Reconstruction must actually fire for the comparison to
				// mean anything: the raw source alone yields a smaller
				// closure whenever O1 elided edges on this chain.
				var rawSrc ddg.Source = off.Shards()
				raw := slicing.Backward(rawSrc, w.Prog, crits, sopts)
				if raw.Edges > want.Edges {
					t.Fatalf("tid %d: raw slice larger than reconstructed", tid)
				}
				checked++
			}
			if checked == 0 {
				t.Skip("no traced instances")
			}
		})
	}
}

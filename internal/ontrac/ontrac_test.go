package ontrac

import (
	"testing"

	"scaldift/internal/ddg"
	"scaldift/internal/isa"
	"scaldift/internal/slicing"
	"scaldift/internal/vm"
)

// runBoth executes prog under both ONTRAC (with opts) and a full
// extractor, returning tracer, full graph, and the machine.
func runBoth(t *testing.T, prog *isa.Program, inputs []int64, opts Options) (*Tracer, *ddg.Full, *vm.Machine) {
	t.Helper()
	m := vm.MustNew(prog, vm.Config{})
	m.SetInput(0, inputs)
	tr := New(prog, opts)
	fullSink := ddg.NewFullSink()
	fullEx := ddg.NewExtractor(prog, fullSink, ddg.ExtractorOpts{ControlDeps: opts.ControlDeps})
	m.AttachTool(tr.Tool())
	m.AttachTool(fullEx)
	if res := m.Run(); res.Failed {
		t.Fatalf("run failed: %s", res.FailMsg)
	}
	return tr, fullSink.G, m
}

const loopProg = `
    in r1, 0          ; n
    movi r2, 0        ; sum
    movi r3, 0        ; i
loop:
    bge r3, r1, done
    add r4, r2, r3    ; intra-block chain: r4 defined...
    muli r4, r4, 3    ; ...used and redefined...
    add r2, r2, r4    ; ...and used again (O1 food)
    addi r3, r3, 1
    br loop
done:
    out r2, 1
    halt
`

func sliceLines(t *testing.T, src ddg.Source, prog *isa.Program, id ddg.ID, pc int32, ctrl bool) []int {
	t.Helper()
	s := slicing.Backward(src, prog, []slicing.Criterion{{ID: id, PC: pc}},
		slicing.Options{FollowControl: ctrl})
	return s.Lines
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// outCriterion finds the instance id of the final OUT instruction.
func outCriterion(prog *isa.Program, g *ddg.Full) (ddg.ID, int32) {
	var outPC int32 = -1
	for pc, ins := range prog.Instrs {
		if ins.Op == isa.OUT {
			outPC = int32(pc)
		}
	}
	lo, hi := g.Window(0)
	for n := hi; n >= lo; n-- {
		id := ddg.MakeID(0, n)
		if pc, ok := g.NodePC(id); ok && pc == outPC {
			return id, outPC
		}
	}
	return 0, outPC
}

func TestOptimizedSliceMatchesFull(t *testing.T) {
	prog := isa.MustAssemble("loop", loopProg)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"O1", Options{ControlDeps: true, ElideStaticBlockDeps: true}},
		{"O2", Options{ControlDeps: true, TraceDictionary: true}},
		{"O3", Options{ControlDeps: true, ElideRedundantLoads: true}},
		{"O1O2O3", Options{ControlDeps: true, ElideStaticBlockDeps: true,
			TraceDictionary: true, ElideRedundantLoads: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, full, _ := runBoth(t, prog, []int64{10}, tc.opts)
			id, pc := outCriterion(prog, full)
			if id == 0 {
				t.Fatal("criterion not found")
			}
			want := sliceLines(t, full, prog, id, pc, true)
			got := sliceLines(t, tr.Reader(), prog, id, pc, true)
			// O1/O2/O3 are lossless (O2 may over-approximate, never
			// under-approximate): the optimized slice must contain
			// every statement of the exact slice.
			wantSet := map[int]bool{}
			for _, l := range want {
				wantSet[l] = true
			}
			for _, l := range want {
				found := false
				for _, g := range got {
					if g == l {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("optimized slice missing line %d: got %v want %v", l, got, want)
				}
			}
			// And not be wildly larger.
			if len(got) > len(want)+3 {
				t.Fatalf("optimized slice too large: got %v want %v", got, want)
			}
		})
	}
}

func TestOptimizationsReduceBytes(t *testing.T) {
	prog := isa.MustAssemble("loop", loopProg)
	trNone, _, _ := runBoth(t, prog, []int64{2000}, Unoptimized())
	trAll, _, _ := runBoth(t, prog, []int64{2000}, Options{
		ControlDeps: true, ElideStaticBlockDeps: true,
		TraceDictionary: true, ElideRedundantLoads: true,
	})
	none, all := trNone.Stats(), trAll.Stats()
	if none.BytesPerInstr() <= all.BytesPerInstr() {
		t.Fatalf("optimizations did not reduce trace rate: %.2f vs %.2f",
			none.BytesPerInstr(), all.BytesPerInstr())
	}
	if all.ElidedO1 == 0 || all.ElidedO2 == 0 {
		t.Fatalf("stats = %+v", all)
	}
	if none.DepsStored != none.DepsSeen {
		t.Fatal("unoptimized tracer should store everything")
	}
}

func TestDictionaryLearnsHotDeps(t *testing.T) {
	prog := isa.MustAssemble("loop", loopProg)
	tr, _, _ := runBoth(t, prog, []int64{100}, Options{TraceDictionary: true})
	st := tr.Stats()
	if st.DictSize == 0 {
		t.Fatal("dictionary stayed empty on a hot loop")
	}
	// After the threshold, nearly every loop iteration's deps are
	// covered: elisions should dominate stores for the loop.
	if st.ElidedO2 < st.DepsStored {
		t.Fatalf("dictionary barely used: %+v", st)
	}
}

func TestRedundantLoadElision(t *testing.T) {
	// A loop that re-loads the same never-rewritten location: all
	// but the first mem dep are redundant.
	prog := isa.MustAssemble("rl", `
.data 0
    movi r5, 7
    store r0, r5, 0   ; define the location so loads have a mem dep
    movi r1, 0
    movi r3, 0
loop:
    load r2, r0, 0
    add r3, r3, r2
    addi r1, r1, 1
    movi r4, 50
    blt r1, r4, loop
    out r3, 1
    halt
`)
	tr, full, _ := runBoth(t, prog, nil, Options{ControlDeps: true, ElideRedundantLoads: true})
	st := tr.Stats()
	if st.ElidedO3 == 0 {
		t.Fatalf("no redundant loads detected: %+v", st)
	}
	// Slice through the SameAs chain still reaches everything.
	id, pc := outCriterion(prog, full)
	want := sliceLines(t, full, prog, id, pc, true)
	got := sliceLines(t, tr.Reader(), prog, id, pc, true)
	if !equalInts(got, want) {
		t.Fatalf("slice through RL chain: got %v want %v", got, want)
	}
}

func TestSelectiveTracingKeepsChains(t *testing.T) {
	// Value flows: input -> helper (untraced) -> target (traced).
	// With T1 on "target", deps inside target must still reach back
	// to definitions made inside helper.
	prog := isa.MustAssemble("sel", `
    br main
.func helper
    addi r2, r1, 5     ; defines r2 from input
    ret
.endfunc
.func target
    addi r3, r2, 1     ; uses r2 (defined in helper)
    out r3, 1
    ret
.endfunc
main:
    in r1, 0
    call helper
    call target
    halt
`)
	tr, full, _ := runBoth(t, prog, []int64{9},
		Options{ControlDeps: false, TraceFuncs: []string{"target"}})
	st := tr.Stats()
	if st.ElidedT1 == 0 {
		t.Fatalf("nothing elided outside target: %+v", st)
	}
	// Find the OUT instance and slice: the helper's addi statement
	// must appear (chain preserved), even though helper wasn't traced.
	id, pc := outCriterion(prog, full)
	got := sliceLines(t, tr.Reader(), prog, id, pc, false)
	helperLine := prog.Instrs[1].Line // addi inside helper
	found := false
	for _, l := range got {
		if l == helperLine {
			found = true
		}
	}
	if !found {
		t.Fatalf("chain broken: slice %v missing helper line %d", got, helperLine)
	}
}

func TestForwardSliceOfInputsFilter(t *testing.T) {
	// Two independent computations; only one touches input.
	prog := isa.MustAssemble("t2", `
    in r1, 0
    movi r5, 0
    movi r6, 0
    movi r7, 0
loop:
    add r5, r5, r6      ; input-independent churn
    addi r6, r6, 1
    movi r8, 200
    blt r6, r8, loop
    addi r2, r1, 3      ; input-affected
    out r2, 1
    out r5, 1
    halt
`)
	tr, _, _ := runBoth(t, prog, []int64{4}, Options{ForwardSliceOfInputs: true})
	st := tr.Stats()
	if st.ElidedT2 == 0 {
		t.Fatalf("T2 elided nothing: %+v", st)
	}
	// The input-affected dep (addi r2,r1) must be stored.
	if st.DepsStored == 0 {
		t.Fatal("T2 dropped everything including input flows")
	}
	// The stored fraction should be small: the churn dominates.
	if st.DepsStored*4 > st.DepsSeen {
		t.Fatalf("T2 stored too much: %+v", st)
	}
}

func TestCircularBufferWindow(t *testing.T) {
	prog := isa.MustAssemble("loop", loopProg)
	tr, _, _ := runBoth(t, prog, []int64{20000}, Options{
		ControlDeps: true, BufferBytes: 8 * 1024,
	})
	buf := tr.Buffer()
	if buf.EvictedChunks() == 0 {
		t.Fatal("small buffer should have evicted")
	}
	if buf.CurrentBytes() > 9*1024 {
		t.Fatalf("buffer over capacity: %d", buf.CurrentBytes())
	}
	lo, hi := buf.Window(0)
	if lo <= 1 || hi <= lo {
		t.Fatalf("window = [%d,%d]", lo, hi)
	}
	// Slicing from the newest record works; from before the window it
	// reports truncation.
	id, pc := ddg.MakeID(0, hi), int32(0)
	if p, ok := buf.NodePC(id); ok {
		pc = p
	}
	s := slicing.Backward(tr.Reader(), prog, []slicing.Criterion{{ID: id, PC: pc}},
		slicing.Options{FollowControl: true})
	if s.Nodes == 0 {
		t.Fatal("empty slice from newest record")
	}
}

func TestStatsBytesPerInstr(t *testing.T) {
	prog := isa.MustAssemble("loop", loopProg)
	tr, _, _ := runBoth(t, prog, []int64{1000}, AllOptimizations())
	st := tr.Stats()
	if st.Instrs == 0 || st.BytesWritten == 0 {
		t.Fatalf("stats = %+v", st)
	}
	bpi := st.BytesPerInstr()
	if bpi <= 0 || bpi > 16 {
		t.Fatalf("bytes/instr = %.2f out of plausible range", bpi)
	}
}

package ontrac

import (
	"scaldift/internal/ddg"
	"scaldift/internal/isa"
)

// Reconstructor rebuilds O1 reconstruction state for a program
// WITHOUT the recording run's Tracer: the static in-block dependence
// tables derive from the binary alone, so a service that reopens a
// trace directory long after (and in a different process than) the
// recording can still serve reconstructing slices. Build it once per
// program and compose ReaderOver per source; the tables are immutable
// after construction, so one Reconstructor serves concurrent queries.
//
// What cannot be rebuilt offline: O2's learned dictionary and O3's
// per-load chain heads are run state that lived in the recording
// Tracer. O3 survives anyway (its markers are stored in the chunks as
// SameAs edges), but a trace recorded with TraceDictionary needs the
// original Tracer's Reader for exact O2 reconstruction — a static
// Reconstructor over such a trace under-approximates. Record service
// traces with TraceDictionary off (see StaticOptions).
type Reconstructor struct {
	t *Tracer
}

// NewStaticReconstructor builds reconstruction tables for prog. Only
// the option fields that shape reconstruction matter (principally
// ElideStaticBlockDeps); TraceDictionary is forced off since no
// learned dictionary exists, and the T2 taint engine is never built
// (reconstruction reads, it does not record).
func NewStaticReconstructor(prog *isa.Program, opts Options) *Reconstructor {
	opts.TraceDictionary = false
	opts.ForwardSliceOfInputs = false
	return &Reconstructor{t: newTracer(prog, opts)}
}

// StaticOptions is the recording configuration whose traces a static
// Reconstructor reconstructs exactly: every lossless optimization
// that does not need run state carried out of the recording process
// (O1 and O3, with control dependences), dictionary off.
func StaticOptions() Options {
	return Options{
		ControlDeps:          true,
		ElideStaticBlockDeps: true,
		ElideRedundantLoads:  true,
	}
}

// ReaderOver returns the reconstructing ddg.Source view over any raw
// record source carrying a trace of this program — typically a
// store.Reader (or a per-query budgeted view of one) reopened from a
// trace directory.
func (r *Reconstructor) ReaderOver(src ddg.Source) *Reader {
	return &Reader{t: r.t, src: src}
}

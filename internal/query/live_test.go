package query

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"scaldift/internal/ddg"
	"scaldift/internal/store"
)

// appendChain lands instances [lo,hi] on tid, each data-depending on
// its predecessor — enough structure to slice against.
func appendChain(c *ddg.Compact, tid int, lo, hi uint64) {
	for n := lo; n <= hi; n++ {
		use := ddg.MakeID(tid, n)
		pc := int32((n % 31) + 1)
		var deps []ddg.Dep
		if n > 1 {
			deps = append(deps, ddg.Dep{Use: use, UsePC: pc,
				Def: ddg.MakeID(tid, n-1), DefPC: int32((n-1)%31) + 1, Kind: ddg.Data})
		}
		c.Append(use, pc, deps, 0)
	}
}

// closedStore creates dir as a minimal sealed trace store.
func closedStore(t *testing.T, dir string) {
	t.Helper()
	wr, err := store.Create(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewCompactSized(0, 16)
	c.SetSpill(wr)
	appendChain(c, 0, 1, 10)
	c.Flush()
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryDeterministicIDs pins the id-collision fix: two stores
// with the same basename must get the same public ids no matter
// which root is scanned first, and the collision suffix must derive
// from the directory itself, not from registration order. Before the
// fix the "@2" counter went to whichever directory the scan reached
// first, so restarting the daemon with reordered -root flags renamed
// traces out from under clients.
func TestRegistryDeterministicIDs(t *testing.T) {
	rootA, rootB := t.TempDir(), t.TempDir()
	dirA := filepath.Join(rootA, "run")
	dirB := filepath.Join(rootB, "run")
	closedStore(t, dirA)
	closedStore(t, dirB)

	assign := func(roots ...string) map[string]string { // dir -> id
		t.Helper()
		reg := NewRegistry(roots, RegistryOptions{})
		added, err := reg.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		if len(added) != 2 {
			t.Fatalf("registered %v, want both colliding stores", added)
		}
		m := make(map[string]string)
		for _, id := range added {
			tr, ok := reg.Get(id)
			if !ok {
				t.Fatalf("added id %q not gettable", id)
			}
			m[tr.Dir] = id
		}
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
		return m
	}

	fwd := assign(rootA, rootB)
	rev := assign(rootB, rootA)
	if fmt.Sprint(fwd) != fmt.Sprint(rev) {
		t.Fatalf("id assignment depends on root order:\n[A,B] %v\n[B,A] %v", fwd, rev)
	}

	// The canonically-smaller path keeps the bare name; the other gets
	// a tag derived from its own path, so it is stable across every
	// future rescan.
	ca, err := filepath.Abs(dirA)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := filepath.Abs(dirB)
	if err != nil {
		t.Fatal(err)
	}
	bare, suffixed, suffixedCanon := dirA, dirB, cb
	if cb < ca {
		bare, suffixed, suffixedCanon = dirB, dirA, ca
	}
	if fwd[bare] != "run" {
		t.Fatalf("canonically-first store got id %q, want bare %q", fwd[bare], "run")
	}
	if want := "run@" + dirTag(suffixedCanon); fwd[suffixed] != want {
		t.Fatalf("collision suffix %q, want content-derived %q", fwd[suffixed], want)
	}
}

// TestRegistryCloseRefreshRace hammers Refresh and PollLive from
// several goroutines while Close tears the registry down (run under
// -race in CI): a refresh must never open readers a concurrent
// shutdown has already swept past, and every call after Close
// returns ErrClosed instead of resurrecting the fleet.
func TestRegistryCloseRefreshRace(t *testing.T) {
	root := t.TempDir()
	for i := 0; i < 3; i++ {
		closedStore(t, filepath.Join(root, fmt.Sprintf("s%d", i)))
	}
	wr, err := store.Create(store.Options{Dir: filepath.Join(root, "rec")})
	if err != nil {
		t.Fatal(err)
	}
	defer wr.Close()

	reg := NewRegistry([]string{root}, RegistryOptions{Live: true})
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 1000; j++ {
				if _, err := reg.Refresh(); errors.Is(err, ErrClosed) {
					return
				}
				if _, err := reg.PollLive(); errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
	}
	close(start)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// A store landing after shutdown stays unregistered: the periodic
	// refresh ticker racing process exit must not open readers nobody
	// will ever close.
	closedStore(t, filepath.Join(root, "late"))
	if _, err := reg.Refresh(); !errors.Is(err, ErrClosed) {
		t.Fatalf("refresh after close = %v, want ErrClosed", err)
	}
	if _, err := reg.PollLive(); !errors.Is(err, ErrClosed) {
		t.Fatalf("poll after close = %v, want ErrClosed", err)
	}
	if err := reg.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestServeLiveTrace follows a trace end to end over HTTP while its
// writer is still recording: registration mid-run, live info and
// stats, slices answered at the advancing frontier with live: true,
// and the flip to served-complete (no live fields) once the writer
// closes.
func TestServeLiveTrace(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "hot")
	wr, err := store.Create(store.Options{Dir: dir, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewCompactSized(0, 32)
	c.SetSpill(wr)
	appendChain(c, 0, 1, 120)
	c.Flush()

	reg := NewRegistry([]string{root}, RegistryOptions{Live: true})
	added, err := reg.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || added[0] != "hot" {
		t.Fatalf("live store not registered: %v", added)
	}
	defer reg.Close()

	srv := httptest.NewServer(NewServer(reg, ServerOptions{}).Handler())
	defer srv.Close()
	cl := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	traces, err := cl.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || !traces[0].Live {
		t.Fatalf("trace not reported live: %+v", traces)
	}
	if len(traces[0].Threads) != 1 || traces[0].Threads[0].Hi != 120 {
		t.Fatalf("frontier %+v, want tid 0 up to 120", traces[0].Threads)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveTraces != 1 {
		t.Fatalf("stats report %d live traces, want 1", st.LiveTraces)
	}

	// A slice mid-recording: criterion N=0 resolves to the frontier's
	// newest instance, and the response declares the window it was
	// answered against.
	req := &SliceRequest{Trace: "hot", Direction: DirBackward, Criteria: []Criterion{{TID: 0}}}
	sl, err := cl.Slice(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.Live {
		t.Fatalf("slice of a recording trace not marked live: %+v", sl)
	}
	if len(sl.Frontier) != 1 || sl.Frontier[0].TID != 0 || sl.Frontier[0].Hi != 120 {
		t.Fatalf("slice frontier %+v, want tid 0 up to 120", sl.Frontier)
	}
	if sl.Nodes != 120 {
		t.Fatalf("backward chain closure hit %d nodes at frontier 120", sl.Nodes)
	}

	// More of the execution lands; the poll advances the frontier and
	// the same query now covers it.
	appendChain(c, 0, 121, 250)
	c.Flush()
	closed, err := reg.PollLive()
	if err != nil {
		t.Fatal(err)
	}
	if len(closed) != 0 {
		t.Fatalf("poll flagged %v closed while the writer is still open", closed)
	}
	sl, err = cl.Slice(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.Live || len(sl.Frontier) != 1 || sl.Frontier[0].Hi != 250 || sl.Nodes != 250 {
		t.Fatalf("slice did not advance with the frontier: %+v", sl)
	}

	// The writer closes: the next poll reports the transition, and the
	// trace serves complete — responses drop the live fields so closed
	// traces stay wire-identical to ones registered after the fact.
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	closed, err = reg.PollLive()
	if err != nil {
		t.Fatal(err)
	}
	if len(closed) != 1 || closed[0] != "hot" {
		t.Fatalf("close transition reported %v, want [hot]", closed)
	}
	if n := reg.LiveCount(); n != 0 {
		t.Fatalf("%d traces still live after the writer closed", n)
	}
	sl, err = cl.Slice(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if sl.Live || sl.Frontier != nil {
		t.Fatalf("closed trace still reports live fields: %+v", sl)
	}
	if sl.Nodes != 250 {
		t.Fatalf("closed trace slice hit %d nodes, want 250", sl.Nodes)
	}
	st, err = cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveTraces != 0 {
		t.Fatalf("stats report %d live traces after close, want 0", st.LiveTraces)
	}
}

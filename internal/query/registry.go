package query

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scaldift/internal/ddg"
	"scaldift/internal/isa"
	"scaldift/internal/ontrac"
	"scaldift/internal/store"
)

// RegistryOptions shapes a Registry.
type RegistryOptions struct {
	// CacheChunks is each reader's per-thread decoded-chunk cache
	// bound (store.ReaderOptions.CacheChunks); 0 takes the store
	// default. The cache is shared by every query against the trace;
	// per-query budgets bound how much of it one query may churn.
	CacheChunks int
	// Live registers stores whose writer has not closed yet: the
	// reader attaches in follow mode, the trace reports live: true
	// with a monotone frontier, and PollLive advances it until the
	// final manifest lands. Off, Refresh keeps today's behavior of
	// skipping directories still being written.
	Live bool
	// ReaderTTL evicts a trace's reader (its loaded indexes and
	// caches, not its registration) after this much idle time; the
	// next query re-attaches cold. 0 disables TTL eviction.
	ReaderTTL time.Duration
	// MaxReaders caps how many cold traces keep an open reader; past
	// it, EvictCold drops the least-recently-used first. Live traces
	// never count against the cap and are never evicted. 0 means no
	// cap.
	MaxReaders int
}

// ErrClosed reports an operation against a registry that Close has
// already torn down.
var ErrClosed = errors.New("query: registry closed")

// ErrUnknownTrace reports an id the registry has never seen (or has
// deleted).
var ErrUnknownTrace = errors.New("query: unknown trace")

// regStats counts reader-lifecycle events across the fleet.
type regStats struct {
	evicted    atomic.Int64
	reattached atomic.Int64
}

// Registry discovers and holds open store.Readers over a fleet of
// trace directories. Refresh scans the roots and registers each
// store exactly once, so a recording box can keep dropping new trace
// directories under a root and a periodic refresh publishes them
// without a restart. A directory still being written (no final
// manifest yet) is skipped — unless RegistryOptions.Live is set, in
// which case it registers in follow mode and PollLive tails it while
// it records.
//
// All methods are safe for concurrent use; reads take a shared lock,
// so queries never wait on a refresh's directory scan. Refresh,
// PollLive, and Close serialize against each other: a shutdown can
// never race an in-flight refresh into opening readers it will not
// release.
type Registry struct {
	roots []string
	opts  RegistryOptions

	refreshMu sync.Mutex // serializes Refresh / PollLive / EvictCold / lifecycle ops / Close

	stats regStats

	mu     sync.RWMutex
	closed bool
	traces map[string]*Trace
	byDir  map[string]string // canonical dir -> assigned trace id
}

// Trace is one registered trace directory plus the metadata the
// service reports. ID and Dir are fixed at registration; the
// published snapshot (windows, chunk count, liveness, generation,
// trimmed floors) advances under its own lock as PollLive tails a
// live store or retention trims it. The reader is a cache: eviction
// drops it (indexes and all) and the next query re-attaches cold
// through acquire. The program attachment swaps in atomically.
type Trace struct {
	ID  string
	Dir string

	stats *regStats

	// rmu guards the reader's lifecycle. A query that acquired the
	// reader keeps using its own pointer even if eviction drops the
	// registry's — store.Reader stays queryable after Close (it holds
	// no fds between calls), so in-flight work is never cut off.
	rmu        sync.Mutex
	reader     *store.Reader
	readerOpts store.ReaderOptions // re-attach options (never follow: only closed traces evict)

	lastUsed atomic.Int64 // unix nanos of the last acquire

	mu         sync.RWMutex
	live       bool
	generation uint64
	threads    []ThreadWindow
	chunks     int
	recovered  bool
	trimmed    []TrimmedWindow

	attached atomic.Pointer[progAttachment]
}

// acquire returns the trace's reader, re-attaching a cold one, and
// stamps the LRU clock.
func (t *Trace) acquire() (*store.Reader, error) {
	t.lastUsed.Store(time.Now().UnixNano())
	t.rmu.Lock()
	defer t.rmu.Unlock()
	if t.reader != nil {
		return t.reader, nil
	}
	r, err := store.Open(t.Dir, t.readerOpts)
	if err != nil {
		return nil, fmt.Errorf("query: re-attach %s: %w", t.ID, err)
	}
	t.reader = r
	if t.stats != nil {
		t.stats.reattached.Add(1)
	}
	t.refreshSnapshot(r)
	return r, nil
}

// currentReader returns the open reader without re-attaching (nil
// when evicted).
func (t *Trace) currentReader() *store.Reader {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	return t.reader
}

// dropReader detaches and closes the trace's reader, reporting
// whether one was open.
func (t *Trace) dropReader() bool {
	t.rmu.Lock()
	r := t.reader
	t.reader = nil
	t.rmu.Unlock()
	if r == nil {
		return false
	}
	r.Close()
	return true
}

// progAttachment pairs a program with its O1 reconstructor.
type progAttachment struct {
	prog  *isa.Program
	recon *ontrac.Reconstructor
}

// NewRegistry builds an empty registry over the root directories.
// Call Refresh to populate it.
func NewRegistry(roots []string, opts RegistryOptions) *Registry {
	return &Registry{
		roots:  append([]string(nil), roots...),
		opts:   opts,
		traces: make(map[string]*Trace),
		byDir:  make(map[string]string),
	}
}

// Refresh scans every root for trace stores not yet registered,
// opens them, and returns the new trace ids. Candidate directories
// are each root itself and its immediate subdirectories; they are
// processed in sorted (basename, canonical path) order, so the same
// fleet on disk always yields the same id assignment regardless of
// root order or scan timing. The first error opening a store is
// returned after the scan completes (other candidates still
// register); "not a store" — and, without RegistryOptions.Live,
// "not closed yet" — are not errors.
func (g *Registry) Refresh() ([]string, error) {
	g.refreshMu.Lock()
	defer g.refreshMu.Unlock()
	if g.isClosed() {
		return nil, ErrClosed
	}

	type candidate struct {
		base, canon, dir string
	}
	var cands []candidate
	var firstErr error
	seen := make(map[string]bool)
	add := func(dir string) {
		canon := dir
		if abs, err := filepath.Abs(dir); err == nil {
			canon = abs
		}
		if seen[canon] {
			return
		}
		seen[canon] = true
		cands = append(cands, candidate{filepath.Base(canon), canon, dir})
	}
	for _, root := range g.roots {
		add(root)
		//scaldift:ignore lockio refreshMu serializes whole refreshes by design; readers use registryMu, never this lock
		entries, err := os.ReadDir(root)
		if err != nil {
			if !os.IsNotExist(err) && firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				add(filepath.Join(root, e.Name()))
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].base != cands[j].base {
			return cands[i].base < cands[j].base
		}
		return cands[i].canon < cands[j].canon
	})

	var added []string
	for _, c := range cands {
		id, ok, err := g.register(c.dir, c.canon, c.base)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if ok {
			added = append(added, id)
		}
	}
	sort.Strings(added)
	return added, firstErr
}

// register opens dir if it is an unregistered store (closed, or any
// store in live mode). ok reports a new registration.
func (g *Registry) register(dir, canon, base string) (id string, ok bool, err error) {
	g.mu.RLock()
	_, seen := g.byDir[canon]
	g.mu.RUnlock()
	if seen {
		return "", false, nil
	}
	isStore, closed, err := store.Status(dir)
	if err != nil || !isStore {
		return "", false, err
	}
	if !closed && !g.opts.Live {
		return "", false, nil
	}
	r, err := store.Open(dir, store.ReaderOptions{
		CacheChunks: g.opts.CacheChunks,
		Follow:      !closed,
	})
	if err != nil {
		return "", false, fmt.Errorf("query: open %s: %w", dir, err)
	}
	// Load indexes now: queries start against a warm index, and a
	// live trace's first frontier is published before it is visible.
	t := &Trace{
		Dir:   dir,
		stats: &g.stats,
		// Re-attach after eviction is always cold: only closed traces
		// evict, so follow mode never outlives the first reader.
		readerOpts: store.ReaderOptions{CacheChunks: g.opts.CacheChunks},
		reader:     r,
	}
	t.lastUsed.Store(time.Now().UnixNano())
	t.refreshSnapshot(r)

	g.mu.Lock()
	defer g.mu.Unlock()
	if _, raced := g.byDir[canon]; raced {
		return "", false, nil
	}
	id = base
	if _, taken := g.traces[id]; taken {
		// Deterministic collision suffix: derived from the canonical
		// path, never from registration order, so a trace keeps the
		// same public id across restarts and refreshes (the old @2
		// counter handed out whichever number the scan order reached
		// first).
		id = base + "@" + dirTag(canon)
		if _, taken := g.traces[id]; taken {
			return "", false, fmt.Errorf("query: trace id collision for %s", canon)
		}
	}
	t.ID = id
	g.traces[id] = t
	g.byDir[canon] = id
	return id, true, nil
}

// dirTag derives a stable 8-hex tag from a canonical directory path.
func dirTag(canon string) string {
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:4])
}

// PollLive advances every live trace (store.Reader.Poll) and
// republishes its snapshot: new chunks extend the frontier, and a
// writer that closed flips its trace to served-complete mode — those
// ids are returned. Serialized against Refresh and Close; cheap when
// nothing is live.
func (g *Registry) PollLive() (closedIDs []string, err error) {
	g.refreshMu.Lock()
	defer g.refreshMu.Unlock()
	if g.isClosed() {
		return nil, ErrClosed
	}
	g.mu.RLock()
	live := make([]*Trace, 0)
	for _, t := range g.traces {
		if t.Live() {
			live = append(live, t)
		}
	}
	g.mu.RUnlock()

	var firstErr error
	for _, t := range live {
		r := t.currentReader()
		if r == nil {
			continue // live traces are never evicted; defensive
		}
		advanced, perr := r.Poll()
		if perr != nil && firstErr == nil {
			firstErr = fmt.Errorf("query: poll %s: %w", t.ID, perr)
		}
		if advanced {
			t.refreshSnapshot(r)
		}
		if !t.Live() {
			closedIDs = append(closedIDs, t.ID)
		}
	}
	sort.Strings(closedIDs)
	return closedIDs, firstErr
}

// EvictCold demotes idle cold readers to save index memory and fds:
// first every reader idle past ReaderTTL, then — if more than
// MaxReaders remain open — the least-recently-used down to the cap.
// Live follow-mode traces are exempt on both passes: their pinned
// tail fds are never force-closed, they simply age into eligibility
// when the writer closes and the trace goes cold. An evicted trace
// stays registered and queryable — the next query re-attaches, which
// is the demote-to-cold-re-attach contract from ROADMAP item 1.
// Returns the evicted ids, sorted.
func (g *Registry) EvictCold(now time.Time) []string {
	g.refreshMu.Lock()
	defer g.refreshMu.Unlock()
	if g.isClosed() {
		return nil
	}
	g.mu.RLock()
	traces := make([]*Trace, 0, len(g.traces))
	for _, t := range g.traces {
		traces = append(traces, t)
	}
	g.mu.RUnlock()

	type cold struct {
		t    *Trace
		used int64
	}
	var open []cold
	for _, t := range traces {
		if t.Live() || t.currentReader() == nil {
			continue
		}
		open = append(open, cold{t, t.lastUsed.Load()})
	}
	var evicted []string
	evict := func(c cold) {
		if c.t.dropReader() {
			g.stats.evicted.Add(1)
			evicted = append(evicted, c.t.ID)
		}
	}
	if ttl := g.opts.ReaderTTL; ttl > 0 {
		remaining := open[:0]
		for _, c := range open {
			if now.Sub(time.Unix(0, c.used)) > ttl {
				evict(c)
			} else {
				remaining = append(remaining, c)
			}
		}
		open = remaining
	}
	if maxOpen := g.opts.MaxReaders; maxOpen > 0 && len(open) > maxOpen {
		sort.Slice(open, func(i, j int) bool { return open[i].used < open[j].used })
		for _, c := range open[:len(open)-maxOpen] {
			evict(c)
		}
	}
	sort.Strings(evicted)
	return evicted
}

// TrimTrace applies a retention policy to a closed trace's on-disk
// store (the janitor path — a live trace's writer owns its own
// retention and this refuses it), then republishes the snapshot under
// the store's bumped generation, which naturally invalidates result
// caches keyed on it.
func (g *Registry) TrimTrace(id string, ret store.Retention) (removed int, err error) {
	g.refreshMu.Lock()
	defer g.refreshMu.Unlock()
	if g.isClosed() {
		return 0, ErrClosed
	}
	t, ok := g.Get(id)
	if !ok {
		return 0, ErrUnknownTrace
	}
	if t.Live() {
		return 0, fmt.Errorf("query: trace %s is still recording; its writer owns retention", id)
	}
	removed, err = store.Trim(t.Dir, ret)
	if err != nil {
		return 0, err
	}
	if removed == 0 {
		return 0, nil
	}
	// Swap in a reader over the trimmed store. In-flight queries
	// finish against the old reader's index; its trimmed segments read
	// as holes at worst, never as wrong data.
	t.dropReader()
	if _, err := t.acquire(); err != nil {
		return removed, err
	}
	return removed, nil
}

// Delete unregisters a trace: it leaves the fleet listing, its reader
// closes, and — with purge — its directory is removed from disk. The
// canonical-dir tombstone is kept, so a later Refresh will not
// resurrect a non-purged directory under the same or a new id.
func (g *Registry) Delete(id string, purge bool) error {
	g.refreshMu.Lock()
	defer g.refreshMu.Unlock()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	t, ok := g.traces[id]
	if !ok {
		g.mu.Unlock()
		return ErrUnknownTrace
	}
	delete(g.traces, id)
	g.mu.Unlock()
	t.dropReader()
	if purge {
		//scaldift:ignore lockio refreshMu serializes lifecycle ops by design; the query read path never takes it
		if err := os.RemoveAll(t.Dir); err != nil {
			return err
		}
	}
	return nil
}

// OpenReaders counts traces currently holding an attached reader.
func (g *Registry) OpenReaders() int {
	g.mu.RLock()
	traces := make([]*Trace, 0, len(g.traces))
	for _, t := range g.traces {
		traces = append(traces, t)
	}
	g.mu.RUnlock()
	n := 0
	for _, t := range traces {
		if t.currentReader() != nil {
			n++
		}
	}
	return n
}

// EvictedReaders returns how many readers EvictCold has dropped.
func (g *Registry) EvictedReaders() int64 { return g.stats.evicted.Load() }

// ReattachedReaders returns how many cold re-attaches queries have
// paid for.
func (g *Registry) ReattachedReaders() int64 { return g.stats.reattached.Load() }

// LiveCount returns how many registered traces are still recording.
func (g *Registry) LiveCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, t := range g.traces {
		if t.Live() {
			n++
		}
	}
	return n
}

// Close marks the registry closed and releases every reader. It
// serializes against in-flight Refresh and PollLive — a racing
// refresh can never open readers a shutdown has already swept past —
// and later calls to either return ErrClosed. Idempotent.
func (g *Registry) Close() error {
	g.refreshMu.Lock()
	defer g.refreshMu.Unlock()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	traces := make([]*Trace, 0, len(g.traces))
	for _, t := range g.traces {
		traces = append(traces, t)
	}
	g.mu.Unlock()
	for _, t := range traces {
		t.dropReader()
	}
	return nil
}

func (g *Registry) isClosed() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.closed
}

// Get returns the trace by id.
func (g *Registry) Get(id string) (*Trace, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	t, ok := g.traces[id]
	return t, ok
}

// Len returns the fleet size.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.traces)
}

// List returns every registered trace's info, sorted by id.
func (g *Registry) List() []TraceInfo {
	g.mu.RLock()
	traces := make([]*Trace, 0, len(g.traces))
	for _, t := range g.traces {
		traces = append(traces, t)
	}
	g.mu.RUnlock()
	sort.Slice(traces, func(i, j int) bool { return traces[i].ID < traces[j].ID })
	out := make([]TraceInfo, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.Info())
	}
	return out
}

// AttachProgram associates a program with a trace, enabling
// statement-level lines, provenance queries, and O1 reconstruction
// (composed via ontrac.NewStaticReconstructor over the stored
// records). opts should be the recording configuration; see
// ontrac.StaticOptions.
func (g *Registry) AttachProgram(id string, p *isa.Program, opts ontrac.Options) error {
	t, ok := g.Get(id)
	if !ok {
		return fmt.Errorf("query: unknown trace %q", id)
	}
	t.attached.Store(&progAttachment{
		prog:  p,
		recon: ontrac.NewStaticReconstructor(p, opts),
	})
	return nil
}

// refreshSnapshot republishes the trace's windows, chunk count,
// liveness, generation, recovery flag, and trimmed floors from r.
// Runs at registration, on cold re-attach, and after every poll that
// advanced the store.
func (t *Trace) refreshSnapshot(r *store.Reader) {
	chunks := r.Chunks()
	var threads []ThreadWindow
	for _, tid := range r.Threads() {
		lo, hi := r.Window(tid)
		threads = append(threads, ThreadWindow{TID: tid, Lo: lo, Hi: hi})
	}
	live := r.Live()
	gen := r.Generation()
	recovered := r.Recovered()
	var trimmed []TrimmedWindow
	for tid, lo := range r.Trimmed() {
		trimmed = append(trimmed, TrimmedWindow{TID: tid, Lo: lo})
	}
	sort.Slice(trimmed, func(i, j int) bool { return trimmed[i].TID < trimmed[j].TID })
	t.mu.Lock()
	t.chunks = chunks
	t.threads = threads
	t.live = live
	t.generation = gen
	t.recovered = recovered
	t.trimmed = trimmed
	t.mu.Unlock()
}

// Live reports whether the trace's writer had not yet closed as of
// the last poll.
func (t *Trace) Live() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Frontier returns the last published per-thread windows: for a live
// trace, the monotone frontier of instances that have landed; for a
// closed one, the full retained range.
func (t *Trace) Frontier() []ThreadWindow {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]ThreadWindow(nil), t.threads...)
}

// Info reports the trace's registry metadata (from the published
// snapshot — an evicted trace answers without re-attaching).
func (t *Trace) Info() TraceInfo {
	t.mu.RLock()
	info := TraceInfo{
		ID:         t.ID,
		Dir:        t.Dir,
		Threads:    append([]ThreadWindow(nil), t.threads...),
		Chunks:     t.chunks,
		Live:       t.live,
		Generation: t.generation,
		Recovered:  t.recovered,
		Trimmed:    append([]TrimmedWindow(nil), t.trimmed...),
	}
	t.mu.RUnlock()
	if a := t.attached.Load(); a != nil {
		info.Program = a.prog.Name
		info.Reconstructing = true
	}
	return info
}

// Generation returns the trace's last published manifest generation.
// It advances on every seal and trim, so it is the cache-invalidation
// token for anything derived from the trace's contents.
func (t *Trace) Generation() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.generation
}

// Program returns the attached program, if any.
func (t *Trace) Program() *isa.Program {
	if a := t.attached.Load(); a != nil {
		return a.prog
	}
	return nil
}

// Source builds the ddg.Source one query traverses: the shared
// reader (re-attached if evicted), viewed through the query's budget
// (nil = unlimited), with O1 reconstruction composed on top unless
// raw or no program is attached.
func (t *Trace) Source(b *store.Budget, raw bool) (ddg.Source, error) {
	r, err := t.acquire()
	if err != nil {
		return nil, err
	}
	var src ddg.Source = r
	if b != nil {
		src = r.Budgeted(b)
	}
	if a := t.attached.Load(); a != nil && !raw {
		return a.recon.ReaderOver(src), nil
	}
	return src, nil
}

// Window returns the thread's last published range (lo = hi = 0 for
// unknown threads). For a live trace this is the frontier, so "the
// newest instance" criteria resolve against what has landed.
func (t *Trace) Window(tid int) (lo, hi uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, w := range t.threads {
		if w.TID == tid {
			return w.Lo, w.Hi
		}
	}
	return 0, 0
}

package query

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"scaldift/internal/ddg"
	"scaldift/internal/isa"
	"scaldift/internal/ontrac"
	"scaldift/internal/store"
)

// RegistryOptions shapes a Registry.
type RegistryOptions struct {
	// CacheChunks is each reader's per-thread decoded-chunk cache
	// bound (store.ReaderOptions.CacheChunks); 0 takes the store
	// default. The cache is shared by every query against the trace;
	// per-query budgets bound how much of it one query may churn.
	CacheChunks int
}

// Registry discovers and holds open store.Readers over a fleet of
// trace directories. Refresh scans the roots for stores whose writer
// has closed (manifest Closed) and registers each exactly once, so a
// recording box can keep dropping new trace directories under a root
// and a periodic refresh publishes them without a restart. A
// directory still being written (no final manifest yet) is skipped
// until its writer closes.
//
// All methods are safe for concurrent use; reads take a shared lock,
// so queries never wait on a refresh's directory scan.
type Registry struct {
	roots []string
	opts  RegistryOptions

	mu     sync.RWMutex
	traces map[string]*Trace
	byDir  map[string]bool // canonical dirs already registered
}

// Trace is one registered trace directory: the open reader plus the
// metadata the service reports. Immutable after registration except
// the program attachment, which swaps in atomically.
type Trace struct {
	ID  string
	Dir string

	reader  *store.Reader
	threads []ThreadWindow
	chunks  int

	attached atomic.Pointer[progAttachment]
}

// progAttachment pairs a program with its O1 reconstructor.
type progAttachment struct {
	prog  *isa.Program
	recon *ontrac.Reconstructor
}

// NewRegistry builds an empty registry over the root directories.
// Call Refresh to populate it.
func NewRegistry(roots []string, opts RegistryOptions) *Registry {
	return &Registry{
		roots:  append([]string(nil), roots...),
		opts:   opts,
		traces: make(map[string]*Trace),
		byDir:  make(map[string]bool),
	}
}

// Refresh scans every root for closed trace stores not yet
// registered, opens them, and returns the new trace ids. Candidate
// directories are each root itself and its immediate subdirectories.
// The first error opening a store is returned after the scan
// completes (other candidates still register); "not a store" and
// "not closed yet" are not errors.
func (g *Registry) Refresh() ([]string, error) {
	var added []string
	var firstErr error
	for _, root := range g.roots {
		cands := []string{root}
		entries, err := os.ReadDir(root)
		if err != nil {
			if !os.IsNotExist(err) && firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				cands = append(cands, filepath.Join(root, e.Name()))
			}
		}
		for _, dir := range cands {
			id, ok, err := g.register(dir)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if ok {
				added = append(added, id)
			}
		}
	}
	sort.Strings(added)
	return added, firstErr
}

// register opens dir if it is an unregistered closed store. ok
// reports a new registration.
func (g *Registry) register(dir string) (id string, ok bool, err error) {
	canon := dir
	if abs, err := filepath.Abs(dir); err == nil {
		canon = abs
	}
	g.mu.RLock()
	seen := g.byDir[canon]
	g.mu.RUnlock()
	if seen {
		return "", false, nil
	}
	closed, err := store.IsClosed(dir)
	if err != nil || !closed {
		return "", false, err
	}
	r, err := store.Open(dir, store.ReaderOptions{CacheChunks: g.opts.CacheChunks})
	if err != nil {
		return "", false, fmt.Errorf("query: open %s: %w", dir, err)
	}
	// Load indexes now: windows and chunk counts are fixed for a
	// closed trace, and queries start against a warm index.
	t := &Trace{Dir: dir, reader: r, chunks: r.Chunks()}
	for _, tid := range r.Threads() {
		lo, hi := r.Window(tid)
		t.threads = append(t.threads, ThreadWindow{TID: tid, Lo: lo, Hi: hi})
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.byDir[canon] { // raced with another refresh
		return "", false, nil
	}
	base := filepath.Base(canon)
	id = base
	for n := 2; ; n++ {
		if _, taken := g.traces[id]; !taken {
			break
		}
		id = fmt.Sprintf("%s@%d", base, n)
	}
	t.ID = id
	g.traces[id] = t
	g.byDir[canon] = true
	return id, true, nil
}

// Get returns the trace by id.
func (g *Registry) Get(id string) (*Trace, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	t, ok := g.traces[id]
	return t, ok
}

// Len returns the fleet size.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.traces)
}

// List returns every registered trace's info, sorted by id.
func (g *Registry) List() []TraceInfo {
	g.mu.RLock()
	traces := make([]*Trace, 0, len(g.traces))
	for _, t := range g.traces {
		traces = append(traces, t)
	}
	g.mu.RUnlock()
	sort.Slice(traces, func(i, j int) bool { return traces[i].ID < traces[j].ID })
	out := make([]TraceInfo, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.Info())
	}
	return out
}

// AttachProgram associates a program with a trace, enabling
// statement-level lines, provenance queries, and O1 reconstruction
// (composed via ontrac.NewStaticReconstructor over the stored
// records). opts should be the recording configuration; see
// ontrac.StaticOptions.
func (g *Registry) AttachProgram(id string, p *isa.Program, opts ontrac.Options) error {
	t, ok := g.Get(id)
	if !ok {
		return fmt.Errorf("query: unknown trace %q", id)
	}
	t.attached.Store(&progAttachment{
		prog:  p,
		recon: ontrac.NewStaticReconstructor(p, opts),
	})
	return nil
}

// Info reports the trace's registry metadata.
func (t *Trace) Info() TraceInfo {
	info := TraceInfo{
		ID:        t.ID,
		Dir:       t.Dir,
		Threads:   append([]ThreadWindow(nil), t.threads...),
		Chunks:    t.chunks,
		Recovered: t.reader.Recovered(),
	}
	if a := t.attached.Load(); a != nil {
		info.Program = a.prog.Name
		info.Reconstructing = true
	}
	return info
}

// Program returns the attached program, if any.
func (t *Trace) Program() *isa.Program {
	if a := t.attached.Load(); a != nil {
		return a.prog
	}
	return nil
}

// Source builds the ddg.Source one query traverses: the shared
// reader, viewed through the query's budget (nil = unlimited), with
// O1 reconstruction composed on top unless raw or no program is
// attached.
func (t *Trace) Source(b *store.Budget, raw bool) ddg.Source {
	var src ddg.Source = t.reader
	if b != nil {
		src = t.reader.Budgeted(b)
	}
	if a := t.attached.Load(); a != nil && !raw {
		return a.recon.ReaderOver(src)
	}
	return src
}

// Window returns the thread's retained range from the registration
// snapshot (lo = hi = 0 for unknown threads).
func (t *Trace) Window(tid int) (lo, hi uint64) {
	for _, w := range t.threads {
		if w.TID == tid {
			return w.Lo, w.Hi
		}
	}
	return 0, 0
}

package query

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Client is the thin typed client over the service's wire model: the
// same JSON types the server speaks, plus error unwrapping. Safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for a service base URL (e.g.
// "http://127.0.0.1:8733"). httpClient nil uses
// http.DefaultClient; per-query deadlines are carried in the request
// body and enforced server-side, so most callers need no client
// timeout beyond the context they pass.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// do performs one JSON round trip. in nil sends no body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("query: %s %s: %s (http %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("query: %s %s: http %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Traces lists the registered fleet.
func (c *Client) Traces(ctx context.Context) ([]TraceInfo, error) {
	var resp TracesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/traces", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// Slice runs one slice query.
func (c *Client) Slice(ctx context.Context, req *SliceRequest) (*SliceResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	var resp SliceResponse
	if err := c.do(ctx, http.MethodPost, "/v1/slice", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Provenance runs one taint-provenance query.
func (c *Client) Provenance(ctx context.Context, req *ProvenanceRequest) (*ProvenanceResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	var resp ProvenanceResponse
	if err := c.do(ctx, http.MethodPost, "/v1/provenance", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Delete unregisters a trace; purge also removes its directory from
// disk.
func (c *Client) Delete(ctx context.Context, id string, purge bool) (*DeleteResponse, error) {
	path := "/v1/traces/" + url.PathEscape(id)
	if purge {
		path += "?purge=1"
	}
	var resp DeleteResponse
	if err := c.do(ctx, http.MethodDelete, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Refresh asks the service to rescan its roots.
func (c *Client) Refresh(ctx context.Context) (*RefreshResponse, error) {
	var resp RefreshResponse
	if err := c.do(ctx, http.MethodPost, "/v1/refresh", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

package query

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"unicode/utf8"
)

// FuzzQueryCodec fuzzes the query/response JSON codec two ways:
//
//  1. raw bytes through the strict request decoders — must never
//     panic, and anything that decodes must survive an
//     encode/decode round trip unchanged (codec stability);
//  2. a fuzzed in-memory request/response model through
//     encode→decode — must come back DeepEqual, and the decoder's
//     accept/reject verdict must agree with the model's Validate.
func FuzzQueryCodec(f *testing.F) {
	f.Add([]byte(`{"trace":"t","direction":"backward","criteria":[{"tid":0}]}`),
		"t", "backward", 0, uint64(0), false, int32(0), true, false, 10, 4, int64(100), int64(5), false, 1.5)
	f.Add([]byte(`{"trace":"x","direction":"forward","criteria":[{"tid":3,"n":17,"pc":42}],"follow_control":true}`),
		"x", "forward", 3, uint64(17), true, int32(42), false, true, 0, 0, int64(0), int64(0), true, 0.0)
	f.Add([]byte(`{"trace":"t","direction":"backward","criteria":[{"tid":0}],"bogus":1}`),
		"", "sideways", -1, uint64(1)<<60, true, int32(-7), false, false, -1, 999, int64(-2), int64(-3), false, math.Inf(1))

	f.Fuzz(func(t *testing.T, raw []byte,
		trace, direction string, tid int, n uint64, hasPC bool, pc int32,
		followControl, followAnti bool, maxNodes, workers int,
		deadlineMillis, budget int64, rawFlag bool, wall float64) {

		// Part 1: arbitrary bytes through the strict decoders.
		if req, err := DecodeSliceRequest(bytes.NewReader(raw)); err == nil {
			data, err := json.Marshal(req)
			if err != nil {
				t.Fatalf("decoded request failed to re-encode: %v", err)
			}
			again, err := DecodeSliceRequest(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("re-encoded request rejected: %v\n%s", err, data)
			}
			if !reflect.DeepEqual(req, again) {
				t.Fatalf("request round trip drifted:\n1st %+v\n2nd %+v", req, again)
			}
		}
		if preq, err := DecodeProvenanceRequest(bytes.NewReader(raw)); err == nil {
			data, _ := json.Marshal(preq)
			again, err := DecodeProvenanceRequest(bytes.NewReader(data))
			if err != nil || !reflect.DeepEqual(preq, again) {
				t.Fatalf("provenance round trip drifted (%v)", err)
			}
		}

		// Part 2: the in-memory model through the codec. Invalid
		// UTF-8 ids are in scope: Validate must reject them before
		// Marshal can silently rewrite them to U+FFFD.
		model := &SliceRequest{
			Trace:            trace,
			Direction:        direction,
			Criteria:         []Criterion{{TID: tid, N: n}},
			FollowControl:    followControl,
			FollowAnti:       followAnti,
			MaxNodes:         maxNodes,
			Workers:          workers,
			DeadlineMillis:   deadlineMillis,
			BudgetChunkLoads: budget,
			Raw:              rawFlag,
		}
		if hasPC {
			model.Criteria[0].PC = &pc
		}
		data, err := json.Marshal(model)
		if err != nil {
			t.Fatalf("model failed to encode: %v", err)
		}
		decoded, err := DecodeSliceRequest(bytes.NewReader(data))
		if verr := model.Validate(); verr != nil {
			// An invalid model must never survive the wire verbatim:
			// the decoder either rejects the bytes, or it accepted a
			// different (Marshal-sanitized) request. If it hands back
			// the original model unchanged, the two ends disagree
			// with Validate and the bound is dead letter.
			if err == nil && reflect.DeepEqual(model, decoded) {
				t.Fatalf("decoder accepted a request Validate rejects (%v):\n%s", verr, data)
			}
			return
		}
		if err != nil {
			t.Fatalf("decoder rejected a valid model: %v\n%s", err, data)
		}
		if !reflect.DeepEqual(model, decoded) {
			t.Fatalf("model round trip drifted:\nsent %+v\ngot  %+v", model, decoded)
		}

		// Response model: numeric fields must survive the wire exactly
		// (JSON numbers are emitted as digits, not floats). Responses
		// echo fields of an already-validated request, so invalid
		// UTF-8 never reaches them in operation; skip those inputs.
		if !math.IsNaN(wall) && !math.IsInf(wall, 0) &&
			utf8.ValidString(trace) && utf8.ValidString(direction) {
			resp := &SliceResponse{
				Trace:           trace,
				Direction:       direction,
				PCs:             []int32{pc, pc + 1},
				Nodes:           maxNodes,
				Edges:           workers,
				ChunkLoads:      budget,
				WallMillis:      wall,
				BudgetExhausted: followAnti,
				Interrupted:     rawFlag,
				ShardBusyMillis: map[string]float64{"0": wall},
			}
			data, err := json.Marshal(resp)
			if err != nil {
				t.Fatalf("response failed to encode: %v", err)
			}
			var back SliceResponse
			if err := decodeStrict(bytes.NewReader(data), &back); err != nil {
				t.Fatalf("response rejected by strict decode: %v\n%s", err, data)
			}
			if !reflect.DeepEqual(resp, &back) {
				t.Fatalf("response round trip drifted:\nsent %+v\ngot  %+v", resp, &back)
			}
		}
	})
}

// TestInvalidUTF8TraceRejected pins the wire-codec fix: before
// Validate checked UTF-8, a trace id like "t\xff" passed validation,
// json.Marshal silently rewrote it to U+FFFD on the way out, and the
// server answered for a *different* trace id than the caller named.
// Validate now rejects the id on the client before it can be encoded.
func TestInvalidUTF8TraceRejected(t *testing.T) {
	req := &SliceRequest{
		Trace:     "t\xff",
		Direction: DirBackward,
		Criteria:  []Criterion{{TID: 0, N: 1}},
	}
	if err := req.Validate(); err == nil {
		t.Fatal("Validate accepted an invalid-UTF-8 trace id")
	}

	// The hazard being pinned: one Marshal trip renames the trace, so
	// without the Validate rejection both ends would happily agree on
	// the wrong id.
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := DecodeSliceRequest(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode of sanitized bytes: %v", err)
	}
	if got.Trace == req.Trace {
		t.Fatalf("Marshal no longer rewrites invalid UTF-8 (%q): this regression test is stale", got.Trace)
	}

	// The client refuses to send it at all — no HTTP round trip.
	c := NewClient("http://127.0.0.1:0", nil)
	if _, err := c.Slice(context.Background(), req); err == nil {
		t.Fatal("client sent a request with an invalid-UTF-8 trace id")
	}
	preq := &ProvenanceRequest{Trace: "t\xff", Criteria: req.Criteria}
	if err := preq.Validate(); err == nil {
		t.Fatal("provenance Validate accepted an invalid-UTF-8 trace id")
	}
}

package query

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"scaldift/internal/ddg"
	"scaldift/internal/ontrac"
	"scaldift/internal/prog"
	"scaldift/internal/store"
)

// newService records one workload and serves it; returns the client,
// the trace id, the registry, and the server.
func newService(t *testing.T, w *prog.Workload, attach bool, sopts ServerOptions) (*Client, string, *Registry, *Server) {
	t.Helper()
	opts := ontrac.StaticOptions()
	root := t.TempDir()
	dir := recordTrace(t, root, w, opts, 1)
	reg := NewRegistry([]string{root}, RegistryOptions{CacheChunks: 4})
	if _, err := reg.Refresh(); err != nil {
		t.Fatal(err)
	}
	id := filepath.Base(dir)
	if attach {
		if err := reg.AttachProgram(id, w.Prog, opts); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(reg, sopts)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL, srv.Client()), id, reg, s
}

// TestRegistryRefreshPicksUpClosedTraces: only directories whose
// writer has closed appear, and a later refresh publishes new ones
// without a restart.
func TestRegistryRefreshPicksUpClosedTraces(t *testing.T) {
	w := prog.Compress(200, 1)
	cl, _, _, _ := newService(t, w, false, ServerOptions{})
	ctx := context.Background()

	traces, err := cl.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("expected 1 trace, got %d", len(traces))
	}
	if len(traces[0].Threads) == 0 || traces[0].Chunks == 0 {
		t.Fatalf("trace info incomplete: %+v", traces[0])
	}

	// A store still being written must NOT register...
	root2 := t.TempDir()
	reg2 := NewRegistry([]string{root2}, RegistryOptions{})
	wr, err := store.Create(store.Options{Dir: filepath.Join(root2, "live")})
	if err != nil {
		t.Fatal(err)
	}
	if added, _ := reg2.Refresh(); len(added) != 0 {
		t.Fatalf("unclosed store registered: %v", added)
	}
	// ...until its writer closes.
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	added, err := reg2.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || added[0] != "live" {
		t.Fatalf("closed store not picked up: %v", added)
	}
	// Refresh is idempotent.
	if added, _ := reg2.Refresh(); len(added) != 0 {
		t.Fatalf("second refresh re-registered: %v", added)
	}
}

// TestServerRefreshEndpoint exercises pickup over HTTP: record a
// second trace after the server is live, POST /v1/refresh, slice the
// newcomer, and require the OnRefresh hook to have seen it (the
// daemon attaches programs there — both discovery paths must fire
// it).
func TestServerRefreshEndpoint(t *testing.T) {
	w := prog.Compress(200, 1)
	var hookMu sync.Mutex
	var hooked []string
	cl, _, reg, _ := newService(t, w, false, ServerOptions{
		OnRefresh: func(added []string) {
			hookMu.Lock()
			hooked = append(hooked, added...)
			hookMu.Unlock()
		},
	})
	ctx := context.Background()

	w2 := prog.MatMul(4, 3)
	dir2 := recordTrace(t, reg.roots[0], w2, ontrac.StaticOptions(), 2)
	resp, err := cl.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	id2 := filepath.Base(dir2)
	if len(resp.Added) != 1 || resp.Added[0] != id2 || resp.Traces != 2 {
		t.Fatalf("refresh: %+v", resp)
	}
	hookMu.Lock()
	hookedNow := append([]string(nil), hooked...)
	hookMu.Unlock()
	if len(hookedNow) != 1 || hookedNow[0] != id2 {
		t.Fatalf("OnRefresh hook saw %v, want [%s]", hookedNow, id2)
	}
	sl, err := cl.Slice(ctx, &SliceRequest{
		Trace: id2, Direction: DirBackward,
		Criteria: []Criterion{{TID: 0}}, FollowControl: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sl.Nodes == 0 || len(sl.PCs) == 0 {
		t.Fatalf("empty slice from refreshed trace: %+v", sl)
	}
}

// TestServerErrorPaths covers the client-visible failure modes.
func TestServerErrorPaths(t *testing.T) {
	w := prog.Compress(150, 1)
	cl, id, _, _ := newService(t, w, false, ServerOptions{})
	ctx := context.Background()

	cases := []struct {
		name string
		req  *SliceRequest
		frag string
	}{
		{"unknown trace", &SliceRequest{Trace: "nope", Direction: DirBackward,
			Criteria: []Criterion{{TID: 0}}}, "unknown trace"},
		{"no records", &SliceRequest{Trace: id, Direction: DirBackward,
			Criteria: []Criterion{{TID: 77}}}, "no recorded instances"},
	}
	for _, c := range cases {
		if _, err := cl.Slice(ctx, c.req); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Fatalf("%s: error %v, want %q", c.name, err, c.frag)
		}
	}

	// Client-side validation rejects malformed requests before any
	// network I/O.
	if _, err := cl.Slice(ctx, &SliceRequest{Trace: id, Direction: "sideways",
		Criteria: []Criterion{{TID: 0}}}); err == nil {
		t.Fatal("bad direction accepted")
	}
	if _, err := cl.Slice(ctx, &SliceRequest{Trace: id, Direction: DirBackward}); err == nil {
		t.Fatal("empty criteria accepted")
	}

	// Provenance without an attached program is a clean 422.
	if _, err := cl.Provenance(ctx, &ProvenanceRequest{Trace: id,
		Criteria: []Criterion{{TID: 0}}}); err == nil ||
		!strings.Contains(err.Error(), "program") {
		t.Fatalf("provenance without program: %v", err)
	}
}

// TestServerQueryLimit: with the semaphore already full, a query
// whose deadline expires in line is rejected 503 and counted.
func TestServerQueryLimit(t *testing.T) {
	w := prog.Compress(150, 1)
	cl, id, _, s := newService(t, w, false, ServerOptions{MaxConcurrent: 1})
	ctx := context.Background()

	s.sem <- struct{}{} // occupy the only slot
	_, err := cl.Slice(ctx, &SliceRequest{
		Trace: id, Direction: DirBackward,
		Criteria:       []Criterion{{TID: 0}},
		DeadlineMillis: 50,
	})
	if err == nil || !strings.Contains(err.Error(), "query limit") {
		t.Fatalf("full queue: %v", err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 1 || st.MaxConcurrent != 1 {
		t.Fatalf("stats after rejection: %+v", st)
	}
	<-s.sem
	if _, err := cl.Slice(ctx, &SliceRequest{Trace: id, Direction: DirBackward,
		Criteria: []Criterion{{TID: 0}}, FollowControl: true}); err != nil {
		t.Fatalf("freed queue still failing: %v", err)
	}
}

// TestServerBudget: a starved per-query budget truncates the served
// slice and says so; the server-wide default applies when the request
// names none.
func TestServerBudget(t *testing.T) {
	w := prog.Compress(1500, 1)
	cl, id, _, _ := newService(t, w, false, ServerOptions{BudgetChunkLoads: 1})
	ctx := context.Background()

	full, err := cl.Slice(ctx, &SliceRequest{
		Trace: id, Direction: DirBackward,
		Criteria: []Criterion{{TID: 0}}, FollowControl: true,
		BudgetChunkLoads: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.BudgetExhausted || full.Nodes == 0 {
		t.Fatalf("roomy budget: %+v", full)
	}
	if full.ChunkLoads == 0 {
		t.Fatal("no chunk loads counted")
	}

	// No budget in the request: the server default (1 load) bites.
	starved, err := cl.Slice(ctx, &SliceRequest{
		Trace: id, Direction: DirBackward,
		Criteria: []Criterion{{TID: 0}}, FollowControl: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !starved.BudgetExhausted {
		t.Fatal("server-default budget never exhausted")
	}
	if starved.Nodes >= full.Nodes {
		t.Fatalf("starved slice (%d nodes) not smaller than full (%d)", starved.Nodes, full.Nodes)
	}
}

// TestServerConveniencesAndRaw: N=0 resolves to the newest instance,
// an omitted PC resolves from the stored record, and Raw strips O1
// reconstruction (a strictly-not-larger slice on an optimized trace).
func TestServerConveniencesAndRaw(t *testing.T) {
	w := prog.Compress(400, 1)
	cl, id, reg, _ := newService(t, w, true, ServerOptions{})
	ctx := context.Background()

	tr, _ := reg.Get(id)
	_, hi := tr.Window(0)
	pc, ok := tr.reader.NodePC(ddg.MakeID(0, hi))
	if !ok {
		t.Fatal("window top stored no record")
	}
	implicit, err := cl.Slice(ctx, &SliceRequest{Trace: id, Direction: DirBackward,
		Criteria: []Criterion{{TID: 0}}, FollowControl: true})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := cl.Slice(ctx, &SliceRequest{Trace: id, Direction: DirBackward,
		Criteria: []Criterion{{TID: 0, N: hi, PC: &pc}}, FollowControl: true})
	if err != nil {
		t.Fatal(err)
	}
	if implicit.Nodes != explicit.Nodes || implicit.Edges != explicit.Edges {
		t.Fatalf("implicit criterion diverged: %d/%d vs %d/%d",
			implicit.Nodes, implicit.Edges, explicit.Nodes, explicit.Edges)
	}
	if len(implicit.Lines) == 0 {
		t.Fatal("attached program produced no lines")
	}

	raw, err := cl.Slice(ctx, &SliceRequest{Trace: id, Direction: DirBackward,
		Criteria: []Criterion{{TID: 0}}, FollowControl: true, Raw: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Edges > implicit.Edges {
		t.Fatalf("raw slice has more edges (%d) than reconstructed (%d)", raw.Edges, implicit.Edges)
	}
	if raw.Edges == implicit.Edges {
		t.Log("note: O1 elided nothing on this chain (raw == reconstructed)")
	}

	info, err := cl.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(info) != 1 || !info[0].Reconstructing || info[0].Program != w.Prog.Name {
		t.Fatalf("trace info: %+v", info[0])
	}
}

// TestServerDeadline: an effectively-zero deadline interrupts (or
// outright rejects) the query rather than hanging; generous deadlines
// don't perturb results.
func TestServerDeadline(t *testing.T) {
	w := prog.Compress(1500, 1)
	cl, id, _, _ := newService(t, w, false, ServerOptions{DefaultDeadline: time.Minute})
	ctx := context.Background()

	req := &SliceRequest{Trace: id, Direction: DirForward,
		Criteria: []Criterion{{TID: 0, N: 1}}, FollowControl: true}
	full, err := cl.Slice(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if full.Interrupted {
		t.Fatalf("generous deadline interrupted: %+v", full)
	}

	tight := *req
	tight.DeadlineMillis = 1
	got, err := cl.Slice(ctx, &tight)
	if err != nil {
		// The deadline can also fire while queued: a 503 is a valid
		// outcome for a 1ms budget.
		if !strings.Contains(err.Error(), "query limit") {
			t.Fatalf("tight deadline: %v", err)
		}
		return
	}
	if !got.Interrupted {
		// A fast machine can finish inside 1ms; the strict
		// interruption contract is pinned deterministically in
		// slicing's TestSliceCancellation. Here just require the
		// response stayed a valid under-approximation.
		t.Logf("note: 1ms deadline not hit (wall %.2fms)", got.WallMillis)
	}
	if got.Nodes > full.Nodes || got.Edges > full.Edges {
		t.Fatalf("deadline-limited slice larger than full: %d/%d vs %d/%d",
			got.Nodes, got.Edges, full.Nodes, full.Edges)
	}
}

package query

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scaldift/internal/ddg"
	"scaldift/internal/store"
)

// bigClosedStore records a single-thread chain long enough to seal
// several small segments — the shape retention needs to have victims.
func bigClosedStore(t *testing.T, dir string) {
	t.Helper()
	wr, err := store.Create(store.Options{Dir: dir, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewCompactSized(0, 32)
	c.SetSpill(wr)
	appendChain(c, 0, 1, 600)
	c.Flush()
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryEvictColdTTL: readers idle past ReaderTTL are dropped,
// the trace stays registered and queryable (Info answers from the
// snapshot, a query re-attaches cold), and the churn counters move.
func TestRegistryEvictColdTTL(t *testing.T) {
	root := t.TempDir()
	closedStore(t, filepath.Join(root, "a"))
	closedStore(t, filepath.Join(root, "b"))
	reg := NewRegistry([]string{root}, RegistryOptions{ReaderTTL: time.Minute})
	if _, err := reg.Refresh(); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if n := reg.OpenReaders(); n != 2 {
		t.Fatalf("after refresh: %d open readers, want 2", n)
	}

	// Nothing is idle yet.
	if ev := reg.EvictCold(time.Now()); len(ev) != 0 {
		t.Fatalf("evicted fresh readers: %v", ev)
	}
	// Everything is idle from two TTLs in the future.
	ev := reg.EvictCold(time.Now().Add(2 * time.Minute))
	if len(ev) != 2 {
		t.Fatalf("TTL pass evicted %v, want both traces", ev)
	}
	if n := reg.OpenReaders(); n != 0 {
		t.Fatalf("after eviction: %d open readers, want 0", n)
	}
	if n := reg.EvictedReaders(); n != 2 {
		t.Fatalf("evicted counter %d, want 2", n)
	}

	// An evicted trace still answers Info from its snapshot without
	// re-attaching...
	tr, ok := reg.Get("a")
	if !ok {
		t.Fatal("trace a unregistered by eviction")
	}
	if info := tr.Info(); info.Chunks == 0 || len(info.Threads) == 0 {
		t.Fatalf("snapshot info lost after eviction: %+v", info)
	}
	if n := reg.ReattachedReaders(); n != 0 {
		t.Fatalf("Info re-attached a reader: counter %d", n)
	}
	// ...and a real query re-attaches transparently.
	src, err := tr.Source(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.NodePC(ddg.MakeID(0, 10)); !ok {
		t.Fatal("re-attached source missing recorded node")
	}
	if n := reg.ReattachedReaders(); n != 1 {
		t.Fatalf("reattach counter %d, want 1", n)
	}
	if n := reg.OpenReaders(); n != 1 {
		t.Fatalf("after re-attach: %d open readers, want 1", n)
	}
}

// TestRegistryEvictColdLRU: with MaxReaders set and no TTL, the
// least-recently-used readers are dropped down to the cap.
func TestRegistryEvictColdLRU(t *testing.T) {
	root := t.TempDir()
	closedStore(t, filepath.Join(root, "a"))
	closedStore(t, filepath.Join(root, "b"))
	closedStore(t, filepath.Join(root, "c"))
	reg := NewRegistry([]string{root}, RegistryOptions{MaxReaders: 1})
	if _, err := reg.Refresh(); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// Touch "b" last so it is the most recently used.
	tb, _ := reg.Get("b")
	time.Sleep(time.Millisecond)
	if _, err := tb.Source(nil, false); err != nil {
		t.Fatal(err)
	}
	ev := reg.EvictCold(time.Now())
	if len(ev) != 2 || ev[0] != "a" || ev[1] != "c" {
		t.Fatalf("LRU pass evicted %v, want [a c]", ev)
	}
	if tb.currentReader() == nil {
		t.Fatal("most-recently-used reader was evicted")
	}
	if n := reg.OpenReaders(); n != 1 {
		t.Fatalf("%d open readers after LRU pass, want 1", n)
	}
}

// TestRegistryEvictSkipsLive: a follow-mode trace's reader pins tail
// fds and owns poll state — eviction must never force-close it, no
// matter how idle. Once the writer closes and the poll observes it,
// the same trace becomes evictable.
func TestRegistryEvictSkipsLive(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "hot")
	wr, err := store.Create(store.Options{Dir: dir, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	c := ddg.NewCompactSized(0, 32)
	c.SetSpill(wr)
	appendChain(c, 0, 1, 100)
	c.Flush()

	reg := NewRegistry([]string{root}, RegistryOptions{Live: true, ReaderTTL: time.Nanosecond})
	if _, err := reg.Refresh(); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	if ev := reg.EvictCold(time.Now().Add(time.Hour)); len(ev) != 0 {
		t.Fatalf("evicted a live trace: %v", ev)
	}
	if n := reg.OpenReaders(); n != 1 {
		t.Fatalf("live reader closed under eviction: %d open", n)
	}

	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	closed, err := reg.PollLive()
	if err != nil {
		t.Fatal(err)
	}
	if len(closed) != 1 {
		t.Fatalf("poll missed the close: %v", closed)
	}
	ev := reg.EvictCold(time.Now().Add(time.Hour))
	if len(ev) != 1 || ev[0] != "hot" {
		t.Fatalf("closed trace not evictable: %v", ev)
	}
}

// TestRegistryDeleteAndPurge: Delete unregisters; the directory
// tombstone keeps Refresh from silently re-adopting it; purge also
// removes the bytes.
func TestRegistryDeleteAndPurge(t *testing.T) {
	root := t.TempDir()
	dirA := filepath.Join(root, "a")
	dirB := filepath.Join(root, "b")
	closedStore(t, dirA)
	closedStore(t, dirB)
	reg := NewRegistry([]string{root}, RegistryOptions{})
	if _, err := reg.Refresh(); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	if err := reg.Delete("a", false); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("a"); ok {
		t.Fatal("deleted trace still registered")
	}
	if reg.Len() != 1 {
		t.Fatalf("registry len %d after delete, want 1", reg.Len())
	}
	if _, err := os.Stat(dirA); err != nil {
		t.Fatalf("non-purge delete touched the directory: %v", err)
	}
	// The tombstone holds across rescans.
	if added, err := reg.Refresh(); err != nil || len(added) != 0 {
		t.Fatalf("refresh re-adopted deleted trace: %v %v", added, err)
	}
	if err := reg.Delete("a", false); !errors.Is(err, ErrUnknownTrace) {
		t.Fatalf("double delete: %v, want ErrUnknownTrace", err)
	}

	if err := reg.Delete("b", true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dirB); !os.IsNotExist(err) {
		t.Fatalf("purge left the directory behind: %v", err)
	}
}

// TestServerDeleteEndpoint drives DELETE /v1/traces/{id} end to end
// through the typed client.
func TestServerDeleteEndpoint(t *testing.T) {
	root := t.TempDir()
	closedStore(t, filepath.Join(root, "run"))
	reg := NewRegistry([]string{root}, RegistryOptions{})
	if _, err := reg.Refresh(); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := httptest.NewServer(NewServer(reg, ServerOptions{}).Handler())
	defer srv.Close()
	cl := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	if _, err := cl.Delete(ctx, "nope", false); err == nil || !strings.Contains(err.Error(), "http 404") {
		t.Fatalf("delete of unknown trace: %v, want 404", err)
	}
	resp, err := cl.Delete(ctx, "run", false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Deleted != "run" || resp.Purged {
		t.Fatalf("delete response %+v", resp)
	}
	traces, err := cl.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 0 {
		t.Fatalf("fleet still lists deleted trace: %+v", traces)
	}
}

// TestServerResultCache: a repeated identical query on a closed trace
// is served from the result cache (Cached flag + hit counter), a trim
// bumps the manifest generation and invalidates it naturally, and the
// post-trim answer reports the trimmed window truncation.
func TestServerResultCache(t *testing.T) {
	root := t.TempDir()
	bigClosedStore(t, filepath.Join(root, "big"))
	reg := NewRegistry([]string{root}, RegistryOptions{})
	if _, err := reg.Refresh(); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := httptest.NewServer(NewServer(reg, ServerOptions{}).Handler())
	defer srv.Close()
	cl := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	req := &SliceRequest{Trace: "big", Direction: DirBackward, Criteria: []Criterion{{TID: 0}}}
	resp1, err := cl.Slice(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp1.Cached {
		t.Fatal("first query claims a cache hit")
	}
	if resp1.Nodes != 600 {
		t.Fatalf("chain closure %d nodes, want 600", resp1.Nodes)
	}
	resp2, err := cl.Slice(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("repeat query missed the result cache")
	}
	if resp2.Nodes != resp1.Nodes || len(resp2.PCs) != len(resp1.PCs) {
		t.Fatalf("cached answer diverged: %d/%d nodes, %d/%d pcs",
			resp2.Nodes, resp1.Nodes, len(resp2.PCs), len(resp1.PCs))
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.ResultCacheHits != 1 || st.ResultCacheMisses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", st.ResultCacheHits, st.ResultCacheMisses)
	}

	// Trim the store via the registry's janitor path: the generation
	// bump must invalidate the cached answer without any explicit
	// flush.
	tr, _ := reg.Get("big")
	genBefore := tr.Generation()
	removed, err := reg.TrimTrace("big", store.Retention{MaxBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("trim removed nothing; retention budget not exercised")
	}
	if tr.Generation() <= genBefore {
		t.Fatalf("generation %d not bumped past %d by trim", tr.Generation(), genBefore)
	}
	resp3, err := cl.Slice(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Cached {
		t.Fatal("trimmed store served a stale cached answer")
	}
	if !resp3.TruncatedAtWindow {
		t.Fatal("post-trim slice did not report window truncation")
	}
	if resp3.Nodes >= resp1.Nodes {
		t.Fatalf("post-trim closure %d nodes, want fewer than %d", resp3.Nodes, resp1.Nodes)
	}
	// The fleet listing now reports the trimmed floor.
	traces, err := cl.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || len(traces[0].Trimmed) == 0 || traces[0].Trimmed[0].Lo <= 1 {
		t.Fatalf("trace info missing trimmed window: %+v", traces)
	}
	// And the recomputed answer caches again under the new generation.
	resp4, err := cl.Slice(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp4.Cached || resp4.Nodes != resp3.Nodes {
		t.Fatalf("post-trim repeat not cached correctly: cached=%v nodes=%d/%d",
			resp4.Cached, resp4.Nodes, resp3.Nodes)
	}
}

// TestRegistryTrimTraceRefusesLive: the janitor must never trim under
// a live writer — the writer owns retention for its own store.
func TestRegistryTrimTraceRefusesLive(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "hot")
	wr, err := store.Create(store.Options{Dir: dir, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer wr.Close()
	c := ddg.NewCompactSized(0, 32)
	c.SetSpill(wr)
	appendChain(c, 0, 1, 50)
	c.Flush()

	reg := NewRegistry([]string{root}, RegistryOptions{Live: true})
	if _, err := reg.Refresh(); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	if _, err := reg.TrimTrace("hot", store.Retention{MaxBytes: 1}); err == nil || !strings.Contains(err.Error(), "still recording") {
		t.Fatalf("trim of live trace: %v, want refusal", err)
	}
	if _, err := reg.TrimTrace("nope", store.Retention{MaxBytes: 1}); !errors.Is(err, ErrUnknownTrace) {
		t.Fatalf("trim of unknown trace: %v, want ErrUnknownTrace", err)
	}
}

package query

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scaldift/internal/ddg"
	"scaldift/internal/isa"
	"scaldift/internal/slicing"
	"scaldift/internal/store"
)

// ServerOptions tunes the query service.
type ServerOptions struct {
	// MaxConcurrent bounds simultaneously executing slice/provenance
	// queries (default 4). Excess queries wait in line until their
	// deadline, then get 503.
	MaxConcurrent int
	// DefaultDeadline applies when a request names none (default 30s).
	DefaultDeadline time.Duration
	// MaxDeadline clamps requested deadlines (default 2m).
	MaxDeadline time.Duration
	// Workers is the default traversal shard switch handed to
	// slicing.ParallelBackward / ParallelForward (default 8; the Go
	// scheduler multiplexes shards over the machine).
	Workers int
	// BudgetChunkLoads is the default per-query chunk-decode budget;
	// 0 means unlimited unless the request asks for a budget.
	BudgetChunkLoads int64
	// ResultCacheEntries bounds the LRU result cache for completed
	// slice answers, keyed on (trace id, manifest generation, criteria,
	// options). Dashboard-style repeat queries are served in O(1); any
	// trim or seal bumps the generation and invalidates naturally.
	// 0 means the default (256); negative disables caching.
	ResultCacheEntries int
	// OnRefresh, when non-nil, runs after every successful POST
	// /v1/refresh that registered new traces, with their ids — the
	// same hook a daemon's periodic refresh uses (e.g. attaching
	// workload programs), so both discovery paths behave identically.
	OnRefresh func(added []string)
}

func (o *ServerOptions) fill() {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 30 * time.Second
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 2 * time.Minute
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.ResultCacheEntries == 0 {
		o.ResultCacheEntries = 256
	}
}

// resultCache memoizes completed slice responses under an LRU bound.
// Keys fold in the trace's manifest generation, so entries for a
// trimmed or newly-sealed store simply stop being reachable — no
// explicit expiry needed beyond trace deletion.
type resultCache struct {
	mu    sync.Mutex
	max   int
	items map[string]*list.Element
	order *list.List // front = most recent

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key   string
	trace string
	resp  *SliceResponse
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		return nil
	}
	return &resultCache{max: max, items: make(map[string]*list.Element), order: list.New()}
}

// get returns a copy of the cached response for key, if present. A
// nil cache misses everything (and counts nothing).
func (c *resultCache) get(key string) *SliceResponse {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if ok {
		c.order.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	resp := *el.Value.(*cacheEntry).resp
	return &resp
}

func (c *resultCache) put(key, trace string, resp *SliceResponse) {
	if c == nil {
		return
	}
	cp := *resp
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).resp = &cp
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, trace: trace, resp: &cp})
	for len(c.items) > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}

// invalidateTrace drops every entry for a trace id — the DELETE
// endpoint's hook, so a re-registered trace under the same id can
// never be answered from its predecessor's results.
func (c *resultCache) invalidateTrace(trace string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*cacheEntry); ent.trace == trace {
			c.order.Remove(el)
			delete(c.items, ent.key)
		}
		el = next
	}
}

// sliceCacheKey hashes everything that determines a slice answer: the
// trace id, its manifest generation (bumped by every trim and seal),
// the traversal options, and the resolved criteria. Workers and
// deadline are deliberately excluded — they shape wall time, not the
// answer.
func sliceCacheKey(trace string, gen uint64, req *SliceRequest, crits []slicing.Criterion) string {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(trace))
	h.Write([]byte{0})
	writeU64(gen)
	h.Write([]byte(req.Direction))
	h.Write([]byte{0, b2b(req.FollowControl), b2b(req.FollowAnti), b2b(req.Raw)})
	writeU64(uint64(req.MaxNodes))
	writeU64(uint64(req.BudgetChunkLoads))
	for _, c := range crits {
		writeU64(uint64(c.ID))
		writeU64(uint64(uint32(c.PC)))
	}
	return string(h.Sum(nil))
}

func b2b(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Server is the HTTP layer over a Registry. Endpoints:
//
//	GET    /v1/healthz      liveness
//	GET    /v1/stats        query counters
//	GET    /v1/traces       the registered fleet
//	DELETE /v1/traces/{id}  unregister a trace (?purge=1 removes its dir)
//	POST   /v1/refresh      rescan roots for newly closed traces
//	POST   /v1/slice        SliceRequest -> SliceResponse
//	POST   /v1/provenance   ProvenanceRequest -> ProvenanceResponse
//
// Every query runs under a deadline (cancelling the traversal
// cooperatively), inside the concurrency limit, against its own
// chunk-load budget.
type Server struct {
	reg   *Registry
	opts  ServerOptions
	sem   chan struct{}
	cache *resultCache

	active   atomic.Int64
	served   atomic.Int64
	rejected atomic.Int64
}

// NewServer builds the service over the registry.
func NewServer(reg *Registry, opts ServerOptions) *Server {
	opts.fill()
	return &Server{
		reg:   reg,
		opts:  opts,
		sem:   make(chan struct{}, opts.MaxConcurrent),
		cache: newResultCache(opts.ResultCacheEntries),
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("DELETE /v1/traces/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/refresh", s.handleRefresh)
	mux.HandleFunc("POST /v1/slice", s.handleSlice)
	mux.HandleFunc("POST /v1/provenance", s.handleProvenance)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the connection is the only failure mode here
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "traces": s.reg.Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Traces:        s.reg.Len(),
		LiveTraces:    s.reg.LiveCount(),
		ActiveQueries: s.active.Load(),
		QueriesServed: s.served.Load(),
		Rejected:      s.rejected.Load(),
		MaxConcurrent: s.opts.MaxConcurrent,

		OpenReaders:       s.reg.OpenReaders(),
		EvictedReaders:    s.reg.EvictedReaders(),
		ReattachedReaders: s.reg.ReattachedReaders(),
		ResultCacheHits:   s.cacheHits(),
		ResultCacheMisses: s.cacheMisses(),
	})
}

func (s *Server) cacheHits() int64 {
	if s.cache == nil {
		return 0
	}
	return s.cache.hits.Load()
}

func (s *Server) cacheMisses() int64 {
	if s.cache == nil {
		return 0
	}
	return s.cache.misses.Load()
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	purge := r.URL.Query().Get("purge") == "1"
	if err := s.reg.Delete(id, purge); err != nil {
		switch {
		case errors.Is(err, ErrUnknownTrace):
			writeErr(w, http.StatusNotFound, "unknown trace %q", id)
		case errors.Is(err, ErrClosed):
			writeErr(w, http.StatusServiceUnavailable, "delete: %v", err)
		default:
			writeErr(w, http.StatusInternalServerError, "delete: %v", err)
		}
		return
	}
	// Stale answers must die with the trace: a future trace registered
	// under the same id starts from a cold cache.
	s.cache.invalidateTrace(id)
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: id, Purged: purge})
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, TracesResponse{Traces: s.reg.List()})
}

func (s *Server) handleRefresh(w http.ResponseWriter, _ *http.Request) {
	added, err := s.reg.Refresh()
	// The hook runs even when the scan also hit an error: traces from
	// healthy roots registered for good (Refresh never re-reports
	// them), so skipping the hook here would lose their attachment
	// forever.
	if len(added) > 0 && s.opts.OnRefresh != nil {
		s.opts.OnRefresh(added)
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable // shutting down
		}
		writeErr(w, status, "refresh: %v", err)
		return
	}
	if added == nil {
		added = []string{}
	}
	writeJSON(w, http.StatusOK, RefreshResponse{Added: added, Traces: s.reg.Len()})
}

// acquire admits one query within the concurrency limit, waiting no
// longer than the context allows.
func (s *Server) acquire(ctx context.Context) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		s.rejected.Add(1)
		return false
	}
}

func (s *Server) release() { <-s.sem }

// deadline resolves a request's deadline against the server bounds.
func (s *Server) deadline(requestedMillis int64) time.Duration {
	d := s.opts.DefaultDeadline
	if requestedMillis > 0 {
		d = time.Duration(requestedMillis) * time.Millisecond
	}
	if d > s.opts.MaxDeadline {
		d = s.opts.MaxDeadline
	}
	return d
}

// resolveCriteria turns wire criteria into slicing criteria against
// the windows snapshot: N == 0 selects the thread's newest landed
// instance, and an omitted PC is looked up from the stored record.
// Resolving against the same snapshot the response reports keeps a
// live answer self-consistent even while a poll advances the trace.
func resolveCriteria(windows []ThreadWindow, src ddg.Source, wire []Criterion) ([]slicing.Criterion, error) {
	hiOf := func(tid int) uint64 {
		for _, w := range windows {
			if w.TID == tid {
				return w.Hi
			}
		}
		return 0
	}
	out := make([]slicing.Criterion, 0, len(wire))
	for i, c := range wire {
		n := c.N
		if n == 0 {
			hi := hiOf(c.TID)
			if hi == 0 {
				return nil, fmt.Errorf("criterion %d: thread %d has no recorded instances", i, c.TID)
			}
			n = hi
		}
		id := ddg.MakeID(c.TID, n)
		pc := int32(-1)
		if c.PC != nil {
			pc = *c.PC
		} else if got, ok := src.NodePC(id); ok {
			pc = got
		}
		out = append(out, slicing.Criterion{ID: id, PC: pc})
	}
	return out, nil
}

// runSlice executes a validated slice request. The error string, if
// any, is client-safe; status picks the HTTP code.
func (s *Server) runSlice(ctx context.Context, req *SliceRequest) (*SliceResponse, int, error) {
	t, ok := s.reg.Get(req.Trace)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown trace %q", req.Trace)
	}
	ctx, cancel := context.WithTimeout(ctx, s.deadline(req.DeadlineMillis))
	defer cancel()
	if !s.acquire(ctx) {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("query limit reached (%d concurrent)", s.opts.MaxConcurrent)
	}
	defer s.release()
	s.active.Add(1)
	defer s.active.Add(-1)

	var budget *store.Budget
	if n := req.BudgetChunkLoads; n > 0 {
		budget = store.NewBudget(int(n))
	} else if s.opts.BudgetChunkLoads > 0 {
		budget = store.NewBudget(int(s.opts.BudgetChunkLoads))
	}
	// Snapshot liveness and the frontier once: criteria resolve
	// against it, and the response reports the same windows, so the
	// answer names exactly the prefix it was computed over even if a
	// poll lands mid-query.
	live := t.Live()
	frontier := t.Frontier()
	src, err := t.Source(budget, req.Raw)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	crits, err := resolveCriteria(frontier, src, req.Criteria)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}

	// A closed trace's answer is fully determined by the manifest
	// generation plus the resolved request, so repeat queries hit the
	// result cache; live traces advance between polls without a
	// generation bump, so they always recompute.
	var key string
	if !live {
		key = sliceCacheKey(req.Trace, t.Generation(), req, crits)
		if resp := s.cache.get(key); resp != nil {
			resp.Cached = true
			s.served.Add(1)
			return resp, http.StatusOK, nil
		}
	}
	workers := s.opts.Workers
	if req.Workers > 0 {
		workers = req.Workers
	}
	sopts := slicing.Options{
		FollowControl: req.FollowControl,
		FollowAnti:    req.FollowAnti,
		MaxNodes:      req.MaxNodes,
		Done:          ctx.Done(),
	}

	start := time.Now()
	var sl *slicing.Slice
	if req.Direction == DirBackward {
		sl = slicing.ParallelBackward(src, t.Program(), crits, sopts, workers)
	} else {
		ids := make([]ddg.ID, len(crits))
		for i, c := range crits {
			ids[i] = c.ID
		}
		sl = slicing.ParallelForward(src, t.Program(), ids, sopts, workers)
	}
	wall := time.Since(start)
	s.served.Add(1)

	resp := &SliceResponse{
		Trace:             req.Trace,
		Direction:         req.Direction,
		PCs:               sortedPCs(sl.PCs),
		Lines:             sl.Lines,
		Nodes:             sl.Nodes,
		Edges:             sl.Edges,
		TruncatedAtWindow: sl.TruncatedAtWindow,
		BudgetExhausted:   budget.Exhausted(),
		Interrupted:       sl.Interrupted,
		ChunkLoads:        budget.ChunkLoads(),
		WallMillis:        float64(wall) / float64(time.Millisecond),
	}
	if live {
		// Only live answers carry the window: closed-trace responses
		// stay byte-identical to the pre-live wire format.
		resp.Live = true
		resp.Frontier = frontier
	}
	if len(sl.ShardBusy) > 0 {
		resp.ShardBusyMillis = make(map[string]float64, len(sl.ShardBusy))
		for tid, busy := range sl.ShardBusy {
			resp.ShardBusyMillis[strconv.Itoa(tid)] = float64(busy) / float64(time.Millisecond)
		}
	}
	// Only complete answers are worth memoizing: an interrupted or
	// budget-starved traversal would replay its partiality forever.
	if key != "" && !resp.Interrupted && !resp.BudgetExhausted {
		s.cache.put(key, req.Trace, resp)
	}
	return resp, http.StatusOK, nil
}

func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeSliceRequest(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, status, err := s.runSlice(r.Context(), req)
	if err != nil {
		writeErr(w, status, "%v", err)
		return
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeProvenanceRequest(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	t, ok := s.reg.Get(req.Trace)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown trace %q", req.Trace)
		return
	}
	prog := t.Program()
	if prog == nil {
		writeErr(w, http.StatusUnprocessableEntity,
			"provenance requires a program attached to trace %q", req.Trace)
		return
	}
	// Provenance is the backward data-only slice (no control, no
	// anti edges): exactly the statements the value flowed out of.
	resp, status, err := s.runSlice(r.Context(), req.slice())
	if err != nil {
		writeErr(w, status, "%v", err)
		return
	}
	prov := &ProvenanceResponse{InputPCs: []int32{}, Slice: *resp}
	lineSeen := make(map[int]bool)
	for _, pc := range resp.PCs {
		if int(pc) < len(prog.Instrs) && prog.Instrs[pc].Op == isa.IN {
			prov.InputPCs = append(prov.InputPCs, pc)
			if line := prog.LineOf(int(pc)); line >= 0 && !lineSeen[line] {
				lineSeen[line] = true
				prov.InputLines = append(prov.InputLines, line)
			}
		}
	}
	sort.Ints(prov.InputLines)
	writeJSON(w, http.StatusOK, prov)
}

// sortedPCs flattens a PC set for the wire.
func sortedPCs(pcs map[int32]bool) []int32 {
	out := make([]int32, 0, len(pcs))
	for pc := range pcs {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package query

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"scaldift/internal/benchfp"
	"scaldift/internal/ddg"
	"scaldift/internal/store"
)

// The BenchmarkLifecycle* suite measures the fleet lifecycle layer:
// spill throughput under a live retention budget (the writer plans,
// journals, and unlinks trims inline with sealing) and the result
// cache's repeat-query latency over real HTTP.
//
// TestWriteBenchLifecycleJSON (env LIFECYCLE_BENCH_JSON=1) writes
// BENCH_lifecycle.json at the repo root.

// lifecycleSink captures a chunk stream for replay through writers.
type lifecycleSink struct{ chunks []ddg.RawChunk }

func (s *lifecycleSink) SpillChunk(ch ddg.RawChunk) { s.chunks = append(s.chunks, ch) }

var lifecycleOnce struct {
	sync.Once
	chunks []ddg.RawChunk
	bytes  uint64
}

// lifecycleChunks records a 4-thread chain stream once (~hundreds of
// chunks, enough for retention to have many sealed victims).
func lifecycleChunks() ([]ddg.RawChunk, uint64) {
	lifecycleOnce.Do(func() {
		var sink lifecycleSink
		c := ddg.NewShardedSized(0, 64)
		c.SetSpill(&sink)
		// Interleave threads so their segments alternate in global
		// append order and a byte budget leaves every thread a suffix.
		for n := uint64(1); n <= 20000; n++ {
			for tid := 0; tid < 4; tid++ {
				use := ddg.MakeID(tid, n)
				pc := int32((n % 31) + 1)
				var deps []ddg.Dep
				if n > 1 {
					deps = append(deps, ddg.Dep{Use: use, UsePC: pc,
						Def: ddg.MakeID(tid, n-1), DefPC: int32((n-1)%31) + 1, Kind: ddg.Data})
				}
				c.Append(use, pc, deps, 0)
			}
		}
		c.Flush()
		lifecycleOnce.chunks = sink.chunks
		lifecycleOnce.bytes = c.BytesWritten()
	})
	return lifecycleOnce.chunks, lifecycleOnce.bytes
}

// spillRetained replays the stream through a writer holding a byte
// budget, so sealing continuously plans and applies trims. Returns
// how many segments retention removed.
func spillRetained(b testing.TB, dir string, chunks []ddg.RawChunk) uint64 {
	w, err := store.Create(store.Options{
		Dir:          dir,
		SegmentBytes: 16 << 10,
		Retain:       store.Retention{MaxBytes: 64 << 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, ch := range chunks {
		w.SpillChunk(ch)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return w.SegmentsTrimmed()
}

func BenchmarkLifecycleRetentionSpill(b *testing.B) {
	chunks, bytes := lifecycleChunks()
	dir := b.TempDir()
	b.SetBytes(int64(bytes))
	b.ResetTimer()
	var trimmed uint64
	for i := 0; i < b.N; i++ {
		trimmed = spillRetained(b, filepath.Join(dir, "r", time.Now().Format("150405.000000000")), chunks)
	}
	if trimmed == 0 {
		b.Fatal("retention budget never produced a trim; bench measures nothing")
	}
	b.ReportMetric(float64(trimmed), "trims/op")
}

// lifecycleService stands up one closed retained store behind a real
// HTTP server and returns a client plus the slice request whose
// answer the cache memoizes.
func lifecycleService(b testing.TB) (*Client, *SliceRequest, func()) {
	chunks, _ := lifecycleChunks()
	root := b.TempDir()
	spillRetained(b, filepath.Join(root, "run"), chunks)
	reg := NewRegistry([]string{root}, RegistryOptions{CacheChunks: 64})
	if _, err := reg.Refresh(); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(reg, ServerOptions{}).Handler())
	cl := NewClient(srv.URL, srv.Client())
	req := &SliceRequest{Trace: "run", Direction: DirBackward,
		Criteria: []Criterion{{TID: 0}, {TID: 1}, {TID: 2}, {TID: 3}}}
	return cl, req, func() { srv.Close(); reg.Close() }
}

func BenchmarkLifecycleCacheHit(b *testing.B) {
	cl, req, stop := lifecycleService(b)
	defer stop()
	ctx := context.Background()
	// Warm: the first query computes and fills the cache.
	if _, err := cl.Slice(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cl.Slice(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("repeat query missed the result cache")
		}
	}
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el, "queries/s")
	}
}

// --- BENCH_lifecycle.json ---

type lifecycleBenchReport struct {
	GoMaxProcs int                 `json:"gomaxprocs"`
	Host       benchfp.Host        `json:"host"`
	Note       string              `json:"note"`
	Retention  lifecycleBenchSpill `json:"retention_spill"`
	Cache      lifecycleBenchCache `json:"cache"`
}

type lifecycleBenchSpill struct {
	TraceBytes      uint64  `json:"trace_bytes"`
	Chunks          int     `json:"chunks"`
	WallS           float64 `json:"wall_s"`
	MBPerSec        float64 `json:"mb_per_sec"`
	SegmentsTrimmed uint64  `json:"segments_trimmed"`
}

type lifecycleBenchCache struct {
	ColdWallS     float64 `json:"cold_wall_s"`
	HitWallS      float64 `json:"hit_wall_s"`
	HitQueriesPS  float64 `json:"hit_queries_per_sec"`
	SpeedupVsCold float64 `json:"speedup_vs_cold"`
}

func TestWriteBenchLifecycleJSON(t *testing.T) {
	if os.Getenv("LIFECYCLE_BENCH_JSON") == "" {
		t.Skip("set LIFECYCLE_BENCH_JSON=1 to generate BENCH_lifecycle.json")
	}
	const reps = 5
	chunks, bytes := lifecycleChunks()

	report := lifecycleBenchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Host:       benchfp.Current(),
		Note: "Fleet lifecycle layer. retention_spill = replaying a pre-recorded 4-thread " +
			"chunk stream through a writer holding a 64KiB byte budget over 16KiB segments, " +
			"so every seal plans, journals (manifest first, unlink second), and applies " +
			"trims inline; cache = one slice request (4 criteria, whole-store closure) over " +
			"real HTTP against a closed trace, cold compute vs repeat served from the " +
			"generation-keyed LRU result cache. speedup_vs_cold is the dashboard repeat-" +
			"query win; any trim or seal bumps the manifest generation and invalidates " +
			"naturally.",
	}

	dirs := 0
	spillDir := t.TempDir()
	var trimmed uint64
	wall := bestOf(reps, func() {
		trimmed = spillRetained(t, filepath.Join(spillDir, "r", time.Now().Format("150405.000000000")), chunks)
		dirs++
	})
	report.Retention = lifecycleBenchSpill{
		TraceBytes:      bytes,
		Chunks:          len(chunks),
		WallS:           wall,
		MBPerSec:        float64(bytes) / (1 << 20) / wall,
		SegmentsTrimmed: trimmed,
	}

	cl, req, stop := lifecycleService(t)
	defer stop()
	ctx := context.Background()
	cold, err := cl.Slice(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first query claims a cache hit")
	}
	report.Cache.ColdWallS = cold.WallMillis / 1e3

	const hitBatch = 200
	hitWall := bestOf(reps, func() {
		for i := 0; i < hitBatch; i++ {
			resp, err := cl.Slice(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if !resp.Cached {
				t.Fatal("repeat query missed the result cache")
			}
		}
	})
	report.Cache.HitWallS = hitWall / hitBatch
	report.Cache.HitQueriesPS = hitBatch / hitWall
	report.Cache.SpeedupVsCold = report.Cache.ColdWallS / report.Cache.HitWallS

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_lifecycle.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_lifecycle.json: %s", data)
}

// bestOf mirrors the store bench convention: best wall of reps runs,
// each from a settled heap.
func bestOf(reps int, f func()) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		runtime.GC()
		start := time.Now()
		f()
		if el := time.Since(start).Seconds(); best == 0 || el < best {
			best = el
		}
	}
	return best
}

package query

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"scaldift/internal/ddg"
	"scaldift/internal/isa"
	"scaldift/internal/ontrac"
	"scaldift/internal/pipeline"
	"scaldift/internal/prog"
	"scaldift/internal/slicing"
	"scaldift/internal/store"
)

// The service differential suite: every prog.All() workload is
// recorded to disk, registered, and served over real HTTP; every
// served backward/forward slice must be identical — PCs, Lines,
// Nodes, Edges — to the direct in-process ParallelBackward /
// ParallelForward result over an independently reopened reader with
// the same O1 reconstruction composed. Provenance answers are held
// to the same recomputation.

// recordTrace runs w offloaded with a randomized schedule, spilling
// into dir (created under root).
func recordTrace(t *testing.T, root string, w *prog.Workload, opts ontrac.Options, seed uint64) string {
	t.Helper()
	w.Cfg.Seed = seed
	w.Cfg.RandomPreempt = true
	if w.Cfg.Quantum == 0 {
		w.Cfg.Quantum = 11
	}
	dir := filepath.Join(root, fmt.Sprintf("%s-%d", w.Name, seed))
	wr, err := store.Create(store.Options{Dir: dir, SegmentBytes: 8 << 10, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	m := w.NewMachine()
	off := ontrac.NewOffloaded(w.Prog, opts, pipeline.Options{Workers: 2})
	off.SpillTo(wr)
	if res := ontrac.Trace(m, off); res.Failed {
		t.Fatalf("%s: run failed: %s", w.Name, res.FailMsg)
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func sameSlice(resp *SliceResponse, direct *slicing.Slice) error {
	if fmt.Sprint(resp.Lines) != fmt.Sprint(direct.Lines) {
		return fmt.Errorf("lines diverged:\nserved %v\ndirect %v", resp.Lines, direct.Lines)
	}
	if resp.Nodes != direct.Nodes || resp.Edges != direct.Edges {
		return fmt.Errorf("traversal diverged: served %d/%d, direct %d/%d",
			resp.Nodes, resp.Edges, direct.Nodes, direct.Edges)
	}
	directPCs := make([]int32, 0, len(direct.PCs))
	for pc := range direct.PCs {
		directPCs = append(directPCs, pc)
	}
	got := append([]int32(nil), resp.PCs...)
	if fmt.Sprint(sortedPCs(direct.PCs)) != fmt.Sprint(got) {
		return fmt.Errorf("PC sets diverged: served %v, direct %v (direct count %d)", got, sortedPCs(direct.PCs), len(directPCs))
	}
	if resp.TruncatedAtWindow != direct.TruncatedAtWindow {
		return fmt.Errorf("truncation flags diverged: served %v, direct %v",
			resp.TruncatedAtWindow, direct.TruncatedAtWindow)
	}
	return nil
}

func TestServedSlicesMatchDirect(t *testing.T) {
	opts := ontrac.StaticOptions()
	root := t.TempDir()
	type entry struct {
		w   *prog.Workload
		dir string
	}
	var entries []entry
	for _, w := range prog.All() {
		entries = append(entries, entry{w: w, dir: recordTrace(t, root, w, opts, 3)})
	}

	reg := NewRegistry([]string{root}, RegistryOptions{CacheChunks: 4})
	added, err := reg.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != len(entries) {
		t.Fatalf("registered %d traces, recorded %d", len(added), len(entries))
	}
	for _, e := range entries {
		id := filepath.Base(e.dir)
		if err := reg.AttachProgram(id, e.w.Prog, opts); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewServer(reg, ServerOptions{MaxConcurrent: 4, Workers: 4}).Handler())
	defer srv.Close()
	cl := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	for _, e := range entries {
		e := e
		t.Run(e.w.Name, func(t *testing.T) {
			id := filepath.Base(e.dir)
			// The direct side: an independent reader over the same
			// directory, same reconstruction composed in-process.
			r, err := store.Open(e.dir, store.ReaderOptions{CacheChunks: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			src := ontrac.NewStaticReconstructor(e.w.Prog, opts).ReaderOver(r)
			sopts := slicing.Options{FollowControl: true}

			var allCrits []Criterion
			var directCrits []slicing.Criterion
			var directStarts []ddg.ID
			checked := 0
			for _, tid := range r.Threads() {
				lo, hi := r.Window(tid)
				if lo == 0 {
					continue
				}
				crit := ddg.MakeID(tid, hi)
				pc, ok := r.NodePC(crit)
				if !ok {
					pc = -1
				}
				directCrit := []slicing.Criterion{{ID: crit, PC: pc}}
				start := ddg.MakeID(tid, lo)

				// Backward: served (explicit criterion) vs direct
				// ParallelBackward over the reconstructing source.
				resp, err := cl.Slice(ctx, &SliceRequest{
					Trace: id, Direction: DirBackward,
					Criteria:      []Criterion{{TID: tid, N: hi}},
					FollowControl: true, Workers: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				direct := slicing.ParallelBackward(src, e.w.Prog, directCrit, sopts, 4)
				if err := sameSlice(resp, direct); err != nil {
					t.Fatalf("tid %d backward: %v", tid, err)
				}
				// And the sequential root: ParallelBackward is pinned to
				// Backward elsewhere, but anchor the whole chain here too.
				seq := slicing.Backward(src, e.w.Prog, directCrit, sopts)
				if err := sameSlice(resp, seq); err != nil {
					t.Fatalf("tid %d backward vs sequential: %v", tid, err)
				}

				// Forward: served vs direct ParallelForward.
				fresp, err := cl.Slice(ctx, &SliceRequest{
					Trace: id, Direction: DirForward,
					Criteria:      []Criterion{{TID: tid, N: lo}},
					FollowControl: true, Workers: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				fdirect := slicing.ParallelForward(src, e.w.Prog, []ddg.ID{start}, sopts, 4)
				if err := sameSlice(fresp, fdirect); err != nil {
					t.Fatalf("tid %d forward: %v", tid, err)
				}

				allCrits = append(allCrits, Criterion{TID: tid, N: hi})
				directCrits = append(directCrits, directCrit[0])
				directStarts = append(directStarts, start)
				if resp.Nodes > 0 {
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("every served slice was empty — vacuous comparison")
			}

			// Multi-criteria fan-out, both directions.
			resp, err := cl.Slice(ctx, &SliceRequest{
				Trace: id, Direction: DirBackward, Criteria: allCrits,
				FollowControl: true, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sameSlice(resp, slicing.ParallelBackward(src, e.w.Prog, directCrits, sopts, 4)); err != nil {
				t.Fatalf("multi backward: %v", err)
			}
			var fwdCrits []Criterion
			for _, start := range directStarts {
				fwdCrits = append(fwdCrits, Criterion{TID: start.TID(), N: start.N()})
			}
			fresp, err := cl.Slice(ctx, &SliceRequest{
				Trace: id, Direction: DirForward, Criteria: fwdCrits,
				FollowControl: true, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sameSlice(fresp, slicing.ParallelForward(src, e.w.Prog, directStarts, sopts, 4)); err != nil {
				t.Fatalf("multi forward: %v", err)
			}

			// Provenance: served input set vs direct recomputation
			// (backward data-only slice filtered to IN instructions).
			prov, err := cl.Provenance(ctx, &ProvenanceRequest{
				Trace: id, Criteria: allCrits, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			dataSlice := slicing.ParallelBackward(src, e.w.Prog, directCrits, slicing.Options{}, 4)
			var wantPCs []int32
			for pc := range dataSlice.PCs {
				if int(pc) < len(e.w.Prog.Instrs) && e.w.Prog.Instrs[pc].Op == isa.IN {
					wantPCs = append(wantPCs, pc)
				}
			}
			want := make(map[int32]bool, len(wantPCs))
			for _, pc := range wantPCs {
				want[pc] = true
			}
			if fmt.Sprint(prov.InputPCs) != fmt.Sprint(sortedPCs(want)) {
				t.Fatalf("provenance diverged: served %v, direct %v", prov.InputPCs, sortedPCs(want))
			}
			if err := sameSlice(&prov.Slice, dataSlice); err != nil {
				t.Fatalf("provenance slice: %v", err)
			}
			// Workloads read input: criteria at every thread's end must
			// reach at least one IN statement on input-driven programs.
			if len(prov.InputPCs) == 0 && len(e.w.Inputs) > 0 && e.w.Name != "sieve" {
				t.Logf("note: %s provenance found no input statements", e.w.Name)
			}
		})
	}
}

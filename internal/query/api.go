// Package query is the trace query service: a long-lived process
// that discovers closed trace-store directories (internal/store),
// holds open readers over the fleet, and serves backward/forward
// slice and taint-provenance queries over an HTTP+JSON surface —
// criteria in, statement/PC sets plus truncation info out. It is the
// multi-user front half of the system: recording produces trace
// directories, the service answers questions about them without the
// caller importing any analysis package.
//
// The pieces:
//
//   - Registry (registry.go): maps trace ids to open store.Readers,
//     refreshed on demand or on a timer so newly closed trace
//     directories appear without a restart; a program can be attached
//     to a trace for statement-level answers, provenance, and O1
//     reconstruction (ontrac.Reconstructor).
//   - Server (server.go): the HTTP layer — per-query deadlines
//     (cooperative cancellation through slicing.Options.Done), a
//     concurrent-query limit, and per-query chunk-load budgets
//     (store.Budget) so one query cannot drag a whole store through
//     the shared chunk cache.
//   - Client (client.go): a thin typed client over the same wire
//     model.
//
// This file is the wire model and its codec: the JSON types both
// sides share, with strict decoding and validation (fuzzed by
// FuzzQueryCodec against the in-memory model).
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"unicode/utf8"
)

// Directions for SliceRequest.
const (
	DirBackward = "backward"
	DirForward  = "forward"
)

// Wire-model bounds, enforced by Validate on both ends.
const (
	// MaxCriteria bounds the start points of one query.
	MaxCriteria = 1024
	// MaxTID is the exclusive upper bound on thread ids (ddg.ID packs
	// the thread into 16 bits).
	MaxTID = 1 << 16
	// MaxN is the exclusive upper bound on per-thread instance
	// numbers (48-bit field).
	MaxN = uint64(1) << 48
	// MaxWorkers bounds the requested traversal shard count.
	MaxWorkers = 256
)

// Criterion is one slicing start point on the wire.
type Criterion struct {
	// TID is the thread id.
	TID int `json:"tid"`
	// N is the 1-based per-thread dynamic instruction number; 0 (or
	// omitted) selects the thread's newest retained instance.
	N uint64 `json:"n,omitempty"`
	// PC optionally pins the criterion's static PC. Omitted, the
	// server resolves it from the trace's stored record (and slices
	// with -1 — "unknown" — when the instance stored none).
	PC *int32 `json:"pc,omitempty"`
}

// SliceRequest asks for a dynamic slice of one trace.
type SliceRequest struct {
	// Trace is the registry id (GET /v1/traces lists them).
	Trace string `json:"trace"`
	// Direction is DirBackward or DirForward.
	Direction string `json:"direction"`
	// Criteria are the start points (at least one).
	Criteria []Criterion `json:"criteria"`
	// FollowControl includes dynamic control dependences.
	FollowControl bool `json:"follow_control,omitempty"`
	// FollowAnti includes WAR/WAW edges.
	FollowAnti bool `json:"follow_anti,omitempty"`
	// MaxNodes bounds the traversal (0 = unbounded; the parallel
	// traversals enforce it cooperatively).
	MaxNodes int `json:"max_nodes,omitempty"`
	// Workers requests a traversal shard count (0 = server default).
	Workers int `json:"workers,omitempty"`
	// DeadlineMillis requests a per-query deadline; the server clamps
	// it to its configured maximum (0 = server default).
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// BudgetChunkLoads caps this query's chunk decodes against the
	// store (0 = server default; the server may itself default to
	// unlimited).
	BudgetChunkLoads int64 `json:"budget_chunk_loads,omitempty"`
	// Raw skips O1 reconstruction even when the trace has a program
	// attached, slicing only the stored records.
	Raw bool `json:"raw,omitempty"`
}

// Validate checks the request against the wire-model bounds.
func (r *SliceRequest) Validate() error {
	if r.Trace == "" {
		return errors.New("query: trace is required")
	}
	if !utf8.ValidString(r.Trace) {
		// encoding/json silently rewrites invalid UTF-8 to U+FFFD on
		// Marshal, so such an id would name a different trace after
		// one wire trip. Reject it before it can be encoded at all.
		return errors.New("query: trace id must be valid UTF-8")
	}
	if r.Direction != DirBackward && r.Direction != DirForward {
		return fmt.Errorf("query: direction must be %q or %q", DirBackward, DirForward)
	}
	if len(r.Criteria) == 0 {
		return errors.New("query: at least one criterion is required")
	}
	if len(r.Criteria) > MaxCriteria {
		return fmt.Errorf("query: %d criteria exceeds the limit of %d", len(r.Criteria), MaxCriteria)
	}
	for i, c := range r.Criteria {
		if c.TID < 0 || c.TID >= MaxTID {
			return fmt.Errorf("query: criterion %d: tid %d out of range", i, c.TID)
		}
		if c.N >= MaxN {
			return fmt.Errorf("query: criterion %d: n %d out of range", i, c.N)
		}
	}
	if r.MaxNodes < 0 {
		return errors.New("query: max_nodes must be >= 0")
	}
	if r.Workers < 0 || r.Workers > MaxWorkers {
		return fmt.Errorf("query: workers must be in [0,%d]", MaxWorkers)
	}
	if r.DeadlineMillis < 0 {
		return errors.New("query: deadline_ms must be >= 0")
	}
	if r.BudgetChunkLoads < 0 {
		return errors.New("query: budget_chunk_loads must be >= 0")
	}
	return nil
}

// SliceResponse is the statement-level answer plus traversal and
// truncation metadata. A slice can be cut short three ways, each
// reported separately: the trace's retained window ended
// (TruncatedAtWindow), the query's chunk-load budget ran out
// (BudgetExhausted), or the deadline fired (Interrupted). In every
// case the reported slice is a valid under-approximation.
type SliceResponse struct {
	Trace     string `json:"trace"`
	Direction string `json:"direction"`
	// PCs is the sorted set of static instruction indices in the
	// slice.
	PCs []int32 `json:"pcs"`
	// Lines is the sorted set of statement ids; present only when the
	// trace has a program attached.
	Lines []int `json:"lines,omitempty"`
	Nodes int   `json:"nodes"`
	Edges int   `json:"edges"`

	TruncatedAtWindow bool `json:"truncated_at_window,omitempty"`
	BudgetExhausted   bool `json:"budget_exhausted,omitempty"`
	Interrupted       bool `json:"interrupted,omitempty"`

	// Live reports the trace was still recording when this slice ran:
	// the closure is bounded by Frontier, and re-running the query
	// after the frontier advances may grow it. Closed traces omit
	// both fields.
	Live bool `json:"live,omitempty"`
	// Frontier is the per-thread window of landed instances the slice
	// was answered against (live traces only). Dependences reaching
	// past it are reported via TruncatedAtWindow, exactly like the
	// ring's eviction window.
	Frontier []ThreadWindow `json:"frontier,omitempty"`

	// Cached reports the answer came from the server's result cache
	// (keyed on trace id + manifest generation + criteria + options),
	// so no traversal ran. A trim or seal bumps the generation and
	// naturally invalidates the entry.
	Cached bool `json:"cached,omitempty"`

	// ChunkLoads is the number of chunk decodes the query charged.
	ChunkLoads int64 `json:"chunk_loads,omitempty"`
	// WallMillis is the server-side traversal wall time.
	WallMillis float64 `json:"wall_ms"`
	// ShardBusyMillis maps thread shard id to that worker's busy time
	// (parallel traversals only; "-1" is the orphan shard).
	ShardBusyMillis map[string]float64 `json:"shard_busy_ms,omitempty"`
}

// ProvenanceRequest asks where a value came from: the backward DATA
// slice of the criteria, reported as the input statements (isa.IN)
// it reaches — the paper's lineage question asked of a recorded
// trace. Requires the trace to have a program attached.
type ProvenanceRequest struct {
	Trace            string      `json:"trace"`
	Criteria         []Criterion `json:"criteria"`
	MaxNodes         int         `json:"max_nodes,omitempty"`
	Workers          int         `json:"workers,omitempty"`
	DeadlineMillis   int64       `json:"deadline_ms,omitempty"`
	BudgetChunkLoads int64       `json:"budget_chunk_loads,omitempty"`
	Raw              bool        `json:"raw,omitempty"`
}

// slice converts the provenance request to the backward data-only
// slice request it is served as.
func (r *ProvenanceRequest) slice() *SliceRequest {
	return &SliceRequest{
		Trace:            r.Trace,
		Direction:        DirBackward,
		Criteria:         r.Criteria,
		MaxNodes:         r.MaxNodes,
		Workers:          r.Workers,
		DeadlineMillis:   r.DeadlineMillis,
		BudgetChunkLoads: r.BudgetChunkLoads,
		Raw:              r.Raw,
	}
}

// Validate checks the request against the wire-model bounds.
func (r *ProvenanceRequest) Validate() error { return r.slice().Validate() }

// ProvenanceResponse reports the input statements the criteria are
// data-derived from, plus the full backward data slice they came out
// of.
type ProvenanceResponse struct {
	// InputPCs are the static indices of input instructions (isa.IN)
	// in the backward data slice, sorted.
	InputPCs []int32 `json:"input_pcs"`
	// InputLines are their statement ids, sorted.
	InputLines []int `json:"input_lines,omitempty"`
	// Slice is the underlying backward data slice.
	Slice SliceResponse `json:"slice"`
}

// ThreadWindow is one thread's retained instance range.
type ThreadWindow struct {
	TID int    `json:"tid"`
	Lo  uint64 `json:"lo"`
	Hi  uint64 `json:"hi"`
}

// TrimmedWindow is one thread's retention floor: instances below Lo
// were deleted by retention, and slices that reach them report
// truncated_at_window exactly like the ring's eviction edge.
type TrimmedWindow struct {
	TID int    `json:"tid"`
	Lo  uint64 `json:"lo"`
}

// TraceInfo describes one registered trace.
type TraceInfo struct {
	ID      string         `json:"id"`
	Dir     string         `json:"dir"`
	Threads []ThreadWindow `json:"threads"`
	Chunks  int            `json:"chunks"`
	// Recovered reports the store served a crash-recovered prefix.
	Recovered bool `json:"recovered,omitempty"`
	// Live reports the trace's writer has not closed yet: Threads is
	// the advancing frontier, not the final range.
	Live bool `json:"live,omitempty"`
	// Generation is the store's manifest generation at the last poll
	// (bumped by the writer on every seal and at close); clients can
	// diff it to detect structural change cheaply.
	Generation uint64 `json:"generation,omitempty"`
	// Trimmed lists per-thread retention floors (sorted by tid) for
	// stores whose history has been trimmed; each thread's retained
	// range is the suffix [Lo, window hi].
	Trimmed []TrimmedWindow `json:"trimmed,omitempty"`
	// Program is the attached program's name; empty when the trace is
	// served raw (PCs only, no lines, no provenance).
	Program string `json:"program,omitempty"`
	// Reconstructing reports that O1 reconstruction is composed over
	// the stored records for this trace.
	Reconstructing bool `json:"reconstructing,omitempty"`
}

// TracesResponse is GET /v1/traces.
type TracesResponse struct {
	Traces []TraceInfo `json:"traces"`
}

// RefreshResponse is POST /v1/refresh.
type RefreshResponse struct {
	// Added lists trace ids registered by this refresh.
	Added []string `json:"added"`
	// Traces is the fleet size after the refresh.
	Traces int `json:"traces"`
}

// DeleteResponse is DELETE /v1/traces/{id}.
type DeleteResponse struct {
	// Deleted is the unregistered trace id.
	Deleted string `json:"deleted"`
	// Purged reports the trace directory was also removed from disk.
	Purged bool `json:"purged,omitempty"`
}

// StatsResponse is GET /v1/stats.
type StatsResponse struct {
	Traces int `json:"traces"`
	// LiveTraces counts registered traces still recording.
	LiveTraces    int   `json:"live_traces"`
	ActiveQueries int64 `json:"active_queries"`
	QueriesServed int64 `json:"queries_served"`
	Rejected      int64 `json:"queries_rejected"`
	MaxConcurrent int   `json:"max_concurrent"`
	// OpenReaders counts traces holding an attached reader right now;
	// EvictedReaders/ReattachedReaders count lifecycle churn (TTL/LRU
	// evictions and the cold re-attaches queries paid for).
	OpenReaders       int   `json:"open_readers"`
	EvictedReaders    int64 `json:"evicted_readers,omitempty"`
	ReattachedReaders int64 `json:"reattached_readers,omitempty"`
	// ResultCacheHits/Misses count slice answers served from (and
	// filled into) the generation-keyed result cache.
	ResultCacheHits   int64 `json:"result_cache_hits,omitempty"`
	ResultCacheMisses int64 `json:"result_cache_misses,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// decodeStrict decodes JSON into v, rejecting unknown fields and
// trailing garbage — the codec both fuzzing and the server use.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second Decode must see EOF: one request per body.
	if dec.More() {
		return errors.New("query: trailing data after JSON value")
	}
	return nil
}

// DecodeSliceRequest decodes and validates a slice request.
func DecodeSliceRequest(r io.Reader) (*SliceRequest, error) {
	var req SliceRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeProvenanceRequest decodes and validates a provenance request.
func DecodeProvenanceRequest(r io.Reader) (*ProvenanceRequest, error) {
	var req ProvenanceRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

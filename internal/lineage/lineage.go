// Package lineage implements the paper's third DIFT instantiation
// (§3.4): lineage-set taint for data validation. The label of every
// register and memory word is the *set of input indices* the value was
// derived from, so at any output the tool can answer "which input
// words does this result depend on?" — the provenance question data-
// validation pipelines ask.
//
// Labels are roBDD references (internal/bdd). The paper's two
// empirical observations make this representation cheap: lineage sets
// of live values overlap heavily (shared subsets share subgraphs
// thanks to hash-consing), and the indices in one set are clustered
// (contiguous runs collapse to O(bits) nodes). Join is roBDD union,
// memoized in the per-manager operation cache, so the steady-state
// cost of a propagation step is a cache hit.
//
// The package has two layers:
//
//   - Domain: a dift.Domain[bdd.Ref] plugging lineage labels into the
//     generic engine (labels live in the generic shadow.Mem).
//   - Recorder / Report: the query layer. A Recorder is a dift.Sink
//     capturing the lineage of every OUT; afterwards it answers
//     per-output queries (elements, cardinality, roBDD node size),
//     lineage diffs between outputs, and an aggregate memory report
//     comparing shared roBDD nodes against naive per-set storage —
//     the §3.4 storage claim.
package lineage

import (
	"fmt"
	"sort"

	"scaldift/internal/bdd"
	"scaldift/internal/dift"
	"scaldift/internal/vm"
)

// Domain is the lineage-set taint domain. The zero bdd.Ref is
// bdd.False — the empty set — so "untainted" means "derived from no
// input", as the generic engine requires.
type Domain struct {
	m *bdd.Manager
	// granularity clusters input indices: Source labels index i with
	// the aligned interval [i - i%g, i - i%g + g - 1] instead of the
	// singleton {i}. A coarser granularity over-approximates lineage
	// but caps label node counts — the paper's clustered-interval
	// trade-off. 1 means exact singletons.
	granularity int64
}

// NewDomain creates an exact (singleton-source) lineage domain over
// input indices {0 .. 2^bits - 1}.
func NewDomain(bits int) *Domain {
	return &Domain{m: bdd.NewManager(bits), granularity: 1}
}

// NewClusteredDomain creates a lineage domain whose Source labels
// input index i with the aligned g-wide interval containing i.
func NewClusteredDomain(bits, g int) *Domain {
	if g < 1 {
		panic(fmt.Sprintf("lineage: granularity %d < 1", g))
	}
	return &Domain{m: bdd.NewManager(bits), granularity: int64(g)}
}

// BitsFor returns the universe width needed for n input words.
func BitsFor(n int) int {
	bits := 1
	for int64(1)<<uint(bits) < int64(n) {
		bits++
	}
	return bits
}

// Manager exposes the roBDD manager that owns every label this domain
// produces (for queries and memory reports).
func (d *Domain) Manager() *bdd.Manager { return d.m }

// Source labels a fresh input word with its own global input index —
// a singleton set, or the containing interval under clustering.
func (d *Domain) Source(ev *vm.Event) bdd.Ref {
	idx := int64(ev.InputIdx)
	if d.granularity == 1 {
		return d.m.Singleton(idx)
	}
	lo := idx - idx%d.granularity
	return d.m.Interval(lo, lo+d.granularity-1)
}

// Join is set union, memoized in the manager's operation cache.
func (d *Domain) Join(a, b bdd.Ref) bdd.Ref { return d.m.Union(a, b) }

// Transfer propagates the joined source lineage unchanged: computing
// does not change which inputs a value derives from.
func (d *Domain) Transfer(_ *vm.Event, src bdd.Ref) bdd.Ref { return src }

var _ dift.Domain[bdd.Ref] = (*Domain)(nil)

// NewEngine builds a DIFT engine over this domain — the generic
// shadow.Mem[bdd.Ref] instantiation — with the given policy.
func NewEngine(d *Domain, pol dift.Policy) *dift.Engine[bdd.Ref] {
	return dift.NewEngine[bdd.Ref](d, pol)
}

// OutputLineage is the recorded provenance of one OUT word.
type OutputLineage struct {
	Ch  int     // output channel
	Seq uint64  // global dynamic instruction count of the OUT
	PC  int     // instruction index of the OUT
	Val int64   // the word written
	Set bdd.Ref // lineage set (in the domain's manager)
}

// Recorder is a dift.Sink capturing per-output lineage. Attach it to
// the engine, run, then query.
type Recorder struct {
	dift.NopSink[bdd.Ref]
	dom     *Domain
	Outputs []OutputLineage
}

// NewRecorder creates a recorder for labels of the given domain.
func NewRecorder(d *Domain) *Recorder { return &Recorder{dom: d} }

// OnOutput records the lineage of one OUT word.
func (r *Recorder) OnOutput(ev *vm.Event, l bdd.Ref) {
	r.Outputs = append(r.Outputs, OutputLineage{
		Ch: ev.Ch, Seq: ev.Seq, PC: ev.PC, Val: ev.IOVal, Set: l,
	})
}

var _ dift.Sink[bdd.Ref] = (*Recorder)(nil)

// OnChannel returns the recorded outputs written to channel ch, in
// emission order.
func (r *Recorder) OnChannel(ch int) []OutputLineage {
	var out []OutputLineage
	for _, o := range r.Outputs {
		if o.Ch == ch {
			out = append(out, o)
		}
	}
	return out
}

// Info summarizes one output's lineage.
type Info struct {
	Elements []int64 // input indices, ascending
	Count    uint64  // |set| (cheap even when Elements would be huge)
	Nodes    int     // roBDD nodes reachable from the set
}

// Lineage answers the per-output query for recorded output i.
func (r *Recorder) Lineage(i int) Info {
	s := r.Outputs[i].Set
	return Info{
		Elements: r.dom.m.Elements(s, nil),
		Count:    r.dom.m.Count(s),
		Nodes:    r.dom.m.NodeSize(s),
	}
}

// Diff compares the lineages of recorded outputs i and j: indices
// only in i, only in j, and common to both. This is the validation
// primitive "why do these two results disagree — which inputs feed
// one but not the other?".
func (r *Recorder) Diff(i, j int) (onlyI, onlyJ, both []int64) {
	m := r.dom.m
	a, b := r.Outputs[i].Set, r.Outputs[j].Set
	onlyI = m.Elements(m.Diff(a, b), nil)
	onlyJ = m.Elements(m.Diff(b, a), nil)
	both = m.Elements(m.Intersect(a, b), nil)
	return onlyI, onlyJ, both
}

// nodeBytes is the storage cost of one roBDD node: level (4) + lo (4)
// + hi (4) plus the unique-table entry's Ref (4).
const nodeBytes = 16

// naiveElemBytes is the storage cost of one element in a naive
// per-value int64 set representation.
const naiveElemBytes = 8

// Report is the aggregate memory accounting over all recorded
// outputs — the §3.4 claim that shared roBDDs stay far below naive
// per-set storage when live lineages overlap.
type Report struct {
	Outputs      int    // recorded OUT words
	TotalElems   uint64 // Σ |set_i| — cells a naive representation stores
	NaiveBytes   uint64 // TotalElems × 8
	SharedNodes  int    // distinct roBDD nodes reachable from all sets
	SharedBytes  uint64 // SharedNodes × nodeBytes
	ManagerNodes int    // every node the manager ever allocated
}

// SharingFactor is naive cells per shared roBDD node; > 1 means the
// shared representation wins, and it grows with overlap.
func (rp Report) SharingFactor() float64 {
	if rp.SharedNodes == 0 {
		return 0
	}
	return float64(rp.TotalElems) / float64(rp.SharedNodes)
}

// String renders the report for logs.
func (rp Report) String() string {
	return fmt.Sprintf(
		"lineage report: %d outputs, %d naive cells (%d B) vs %d shared roBDD nodes (%d B), sharing ×%.1f, manager %d nodes",
		rp.Outputs, rp.TotalElems, rp.NaiveBytes, rp.SharedNodes, rp.SharedBytes,
		rp.SharingFactor(), rp.ManagerNodes)
}

// Report computes the aggregate memory report over all recorded
// outputs.
func (r *Recorder) Report() Report {
	m := r.dom.m
	rp := Report{Outputs: len(r.Outputs), ManagerNodes: m.NumNodes()}
	roots := make([]bdd.Ref, len(r.Outputs))
	for i, o := range r.Outputs {
		roots[i] = o.Set
		rp.TotalElems += m.Count(o.Set)
	}
	rp.SharedNodes = m.NodeSizeAll(roots)
	rp.NaiveBytes = rp.TotalElems * naiveElemBytes
	rp.SharedBytes = uint64(rp.SharedNodes) * nodeBytes
	return rp
}

// Run executes machine m with a fresh lineage engine and recorder
// attached and returns both after the run, plus the VM result. It is
// the one-call entry point for "trace this run's provenance".
func Run(m *vm.Machine, d *Domain, pol dift.Policy) (*dift.Engine[bdd.Ref], *Recorder, *vm.Result) {
	e := NewEngine(d, pol)
	rec := NewRecorder(d)
	e.AddSink(rec)
	m.AttachTool(e)
	res := m.Run()
	return e, rec, res
}

// SortedEquals reports whether got (ascending) equals the possibly
// unsorted want — a helper for tests asserting exact lineages.
func SortedEquals(got, want []int64) bool {
	if len(got) != len(want) {
		return false
	}
	w := append([]int64(nil), want...)
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	for i := range got {
		if got[i] != w[i] {
			return false
		}
	}
	return true
}

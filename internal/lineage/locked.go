package lineage

import (
	"sync"

	"scaldift/internal/bdd"
	"scaldift/internal/dift"
	"scaldift/internal/vm"
)

// LockedDomain is the pipeline-safe lineage domain: Source and Join
// serialize on a mutex around the one shared roBDD manager, so
// concurrent pipeline workers (internal/pipeline) can propagate
// lineage labels whose Refs all live in a single space — queries and
// the memory report work exactly as in the inline engine.
//
// This is one of the two constructions the paper-spirited design
// allows; the other is a private manager per worker with a final
// translate-and-merge via bdd.Import. BenchmarkLineageLockedVsImport
// compares them: the locked shared manager wins, because the shared
// operation cache turns the steady-state Join into a cache hit that
// holds the lock for tens of nanoseconds, while private managers redo
// every union from scratch and then pay the translate pass on top.
type LockedDomain struct {
	*Domain
	mu sync.Mutex
}

// NewLockedDomain creates a locked exact lineage domain over input
// indices {0 .. 2^bits - 1}.
func NewLockedDomain(bits int) *LockedDomain {
	return &LockedDomain{Domain: NewDomain(bits)}
}

// Source labels a fresh input word under the manager lock.
func (d *LockedDomain) Source(ev *vm.Event) bdd.Ref {
	d.mu.Lock()
	r := d.Domain.Source(ev)
	d.mu.Unlock()
	return r
}

// Join is set union under the manager lock. The terminal fast paths
// never touch the manager, so they skip the lock — untainted traffic
// (most events on control-heavy code) stays lock-free.
func (d *LockedDomain) Join(a, b bdd.Ref) bdd.Ref {
	switch {
	case a == b:
		return a
	case a == bdd.False:
		return b
	case b == bdd.False:
		return a
	case a == bdd.True || b == bdd.True:
		return bdd.True
	}
	d.mu.Lock()
	r := d.Domain.Join(a, b)
	d.mu.Unlock()
	return r
}

// Transfer is promoted from Domain: it never touches the manager, so
// it needs no lock.

var _ dift.Domain[bdd.Ref] = (*LockedDomain)(nil)

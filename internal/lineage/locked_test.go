package lineage

import (
	"sync"
	"testing"

	"scaldift/internal/bdd"
	"scaldift/internal/dift"
	"scaldift/internal/prog"
)

// TestLockedDomainMatchesPlain runs the same workload under the plain
// and locked domains inline and checks identical per-output lineage —
// the lock must change concurrency safety only, never semantics.
func TestLockedDomainMatchesPlain(t *testing.T) {
	mk := func() *prog.Workload { return prog.StreamAgg(8, 4, 21) }

	w1 := mk()
	d1 := NewDomain(BitsFor(len(w1.Inputs[prog.ChIn]) + 8))
	m1 := w1.NewMachine()
	_, r1, res := Run(m1, d1, dift.DefaultPolicy())
	if res.Failed {
		t.Fatal(res.FailMsg)
	}

	w2 := mk()
	d2 := NewLockedDomain(BitsFor(len(w2.Inputs[prog.ChIn]) + 8))
	m2 := w2.NewMachine()
	e2 := dift.NewEngine[bdd.Ref](d2, dift.DefaultPolicy())
	r2 := NewRecorder(d2.Domain)
	e2.AddSink(r2)
	m2.AttachTool(e2)
	if res := m2.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}

	if len(r1.Outputs) != len(r2.Outputs) {
		t.Fatalf("outputs: %d vs %d", len(r1.Outputs), len(r2.Outputs))
	}
	for i := range r1.Outputs {
		e1 := d1.Manager().Elements(r1.Outputs[i].Set, nil)
		e2 := d2.Manager().Elements(r2.Outputs[i].Set, nil)
		if !SortedEquals(e1, e2) {
			t.Fatalf("output %d lineage diverged: %v vs %v", i, e1, e2)
		}
	}
}

// TestLockedDomainConcurrentJoins hammers one locked domain from
// several goroutines (run under -race in CI) and checks the resulting
// sets are correct.
func TestLockedDomainConcurrentJoins(t *testing.T) {
	d := NewLockedDomain(10)
	const workers = 4
	const perWorker = 200
	results := make([]bdd.Ref, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			m := d.Manager()
			_ = m // manager is only read through locked ops below
			acc := bdd.False
			for i := 0; i < perWorker; i++ {
				// Build {w*perWorker .. w*perWorker+i} one join at a time.
				d.mu.Lock()
				s := d.Domain.m.Singleton(int64(w*perWorker + i))
				d.mu.Unlock()
				acc = d.Join(acc, s)
			}
			results[w] = acc
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if got := d.Manager().Count(results[w]); got != perWorker {
			t.Fatalf("worker %d set has %d elements, want %d", w, got, perWorker)
		}
	}
}

package lineage

import (
	"testing"

	"scaldift/internal/bdd"
	"scaldift/internal/dift"
	"scaldift/internal/prog"
)

// The BenchmarkLineage* suite measures the lineage domain's
// propagation throughput (labels/s ≈ events/s) and memory cost
// (bytes/label) against the Bool domain on the same workloads — the
// §3.4 overhead comparison.

func benchWorkload(b *testing.B, mk func() *prog.Workload, lineageDom bool) {
	b.Helper()
	var events uint64
	var nodeBytesTotal, labels uint64
	for i := 0; i < b.N; i++ {
		w := mk()
		m := w.NewMachine()
		if lineageDom {
			d := NewDomain(BitsFor(len(w.Inputs[prog.ChIn]) + 8))
			e := dift.NewEngine[bdd.Ref](d, dift.DefaultPolicy())
			m.AttachTool(e)
			if res := m.Run(); res.Failed {
				b.Fatal(res.FailMsg)
			}
			events += e.Events()
			nodeBytesTotal += uint64(d.Manager().NumNodes()) * nodeBytes
			labels += uint64(e.TaintedWords() + m.InputsConsumed())
		} else {
			e := dift.NewEngine[bool](dift.Bool{}, dift.DefaultPolicy())
			m.AttachTool(e)
			if res := m.Run(); res.Failed {
				b.Fatal(res.FailMsg)
			}
			events += e.Events()
			// Go's shadow.Mem[bool] stores one byte per label cell.
			nodeBytesTotal += uint64(e.TaintedWords() + m.InputsConsumed())
			labels += uint64(e.TaintedWords() + m.InputsConsumed())
		}
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "labels/s")
	if labels > 0 {
		b.ReportMetric(float64(nodeBytesTotal)/float64(labels), "bytes/label")
	}
}

func BenchmarkLineageStreamAgg(b *testing.B) {
	benchWorkload(b, func() *prog.Workload { return prog.StreamAgg(32, 4, 21) }, true)
}

func BenchmarkLineageKeyedMerge(b *testing.B) {
	benchWorkload(b, func() *prog.Workload { return prog.KeyedMerge(24, 40, 22) }, true)
}

func BenchmarkLineageMapReduce(b *testing.B) {
	benchWorkload(b, func() *prog.Workload { return prog.MapReduceSquares(4, 256, 23) }, true)
}

// BenchmarkLineageBoolBaseline is the same StreamAgg workload under
// the 1-bit Bool domain — the propagation-throughput baseline the
// lineage numbers are read against.
func BenchmarkLineageBoolBaseline(b *testing.B) {
	benchWorkload(b, func() *prog.Workload { return prog.StreamAgg(32, 4, 21) }, false)
}

// BenchmarkLineageJoinCached isolates the domain's Join on heavily
// overlapping sets — the memoized-union steady state.
func BenchmarkLineageJoinCached(b *testing.B) {
	d := NewDomain(12)
	m := d.Manager()
	a := m.Interval(0, 2047)
	c := m.Interval(1024, 3071)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Join(a, c)
	}
}

package lineage

import (
	"sync"
	"testing"

	"scaldift/internal/bdd"
	"scaldift/internal/dift"
	"scaldift/internal/prog"
)

// The BenchmarkLineage* suite measures the lineage domain's
// propagation throughput (labels/s ≈ events/s) and memory cost
// (bytes/label) against the Bool domain on the same workloads — the
// §3.4 overhead comparison.

func benchWorkload(b *testing.B, mk func() *prog.Workload, lineageDom bool) {
	b.Helper()
	var events uint64
	var nodeBytesTotal, labels uint64
	for i := 0; i < b.N; i++ {
		w := mk()
		m := w.NewMachine()
		if lineageDom {
			d := NewDomain(BitsFor(len(w.Inputs[prog.ChIn]) + 8))
			e := dift.NewEngine[bdd.Ref](d, dift.DefaultPolicy())
			m.AttachTool(e)
			if res := m.Run(); res.Failed {
				b.Fatal(res.FailMsg)
			}
			events += e.Events()
			nodeBytesTotal += uint64(d.Manager().NumNodes()) * nodeBytes
			labels += uint64(e.TaintedWords() + m.InputsConsumed())
		} else {
			e := dift.NewEngine[bool](dift.Bool{}, dift.DefaultPolicy())
			m.AttachTool(e)
			if res := m.Run(); res.Failed {
				b.Fatal(res.FailMsg)
			}
			events += e.Events()
			// Go's shadow.Mem[bool] stores one byte per label cell.
			nodeBytesTotal += uint64(e.TaintedWords() + m.InputsConsumed())
			labels += uint64(e.TaintedWords() + m.InputsConsumed())
		}
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "labels/s")
	if labels > 0 {
		b.ReportMetric(float64(nodeBytesTotal)/float64(labels), "bytes/label")
	}
}

func BenchmarkLineageStreamAgg(b *testing.B) {
	benchWorkload(b, func() *prog.Workload { return prog.StreamAgg(32, 4, 21) }, true)
}

func BenchmarkLineageKeyedMerge(b *testing.B) {
	benchWorkload(b, func() *prog.Workload { return prog.KeyedMerge(24, 40, 22) }, true)
}

func BenchmarkLineageMapReduce(b *testing.B) {
	benchWorkload(b, func() *prog.Workload { return prog.MapReduceSquares(4, 256, 23) }, true)
}

// BenchmarkLineageBoolBaseline is the same StreamAgg workload under
// the 1-bit Bool domain — the propagation-throughput baseline the
// lineage numbers are read against.
func BenchmarkLineageBoolBaseline(b *testing.B) {
	benchWorkload(b, func() *prog.Workload { return prog.StreamAgg(32, 4, 21) }, false)
}

// BenchmarkLineageLockedVsImport compares the two pipeline-safe
// lineage constructions on the same concurrent workload — 4 workers
// each folding overlapping interval sets, as pipeline chains do:
//
//   - locked-shared: one manager behind LockedDomain's mutex;
//   - per-worker-import: a private manager per worker, surviving
//     roots translated into the canonical manager with bdd.Import.
//
// The locked shared manager wins (see lineage.LockedDomain's doc
// comment): shared memoization makes steady-state joins cache hits,
// while private managers redo every union and then pay the translate
// pass. internal/pipeline therefore uses LockedDomain.
func BenchmarkLineageLockedVsImport(b *testing.B) {
	const workers = 4
	const joinsPerWorker = 400
	const bits = 12
	work := func(join func(w int, a, c bdd.Ref) bdd.Ref, single func(w int, x int64) bdd.Ref) []bdd.Ref {
		var wg sync.WaitGroup
		wg.Add(workers)
		roots := make([]bdd.Ref, workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				acc := bdd.False
				for i := 0; i < joinsPerWorker; i++ {
					// Overlapping, clustered indices — the lineage shape.
					acc = join(w, acc, single(w, int64((w*97+i)%2048)))
				}
				roots[w] = acc
			}(w)
		}
		wg.Wait()
		return roots
	}

	b.Run("locked-shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := NewLockedDomain(bits)
			roots := work(
				func(_ int, a, c bdd.Ref) bdd.Ref { return d.Join(a, c) },
				func(_ int, x int64) bdd.Ref {
					d.mu.Lock()
					s := d.Domain.m.Singleton(x)
					d.mu.Unlock()
					return s
				})
			_ = roots
		}
	})

	b.Run("per-worker-import", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			canon := bdd.NewManager(bits)
			privs := make([]*bdd.Manager, workers)
			for w := range privs {
				privs[w] = bdd.NewManager(bits)
			}
			roots := work(
				func(w int, a, c bdd.Ref) bdd.Ref { return privs[w].Union(a, c) },
				func(w int, x int64) bdd.Ref { return privs[w].Singleton(x) })
			// Translate-and-merge into the canonical manager.
			for w, r := range roots {
				canon.Import(privs[w], r, map[bdd.Ref]bdd.Ref{})
			}
		}
	})
}

// BenchmarkLineageJoinCached isolates the domain's Join on heavily
// overlapping sets — the memoized-union steady state.
func BenchmarkLineageJoinCached(b *testing.B) {
	d := NewDomain(12)
	m := d.Manager()
	a := m.Interval(0, 2047)
	c := m.Interval(1024, 3071)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Join(a, c)
	}
}

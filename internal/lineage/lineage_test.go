package lineage

import (
	"testing"

	"scaldift/internal/bdd"
	"scaldift/internal/dift"
	"scaldift/internal/isa"
	"scaldift/internal/prog"
	"scaldift/internal/vm"
)

func runLineage(t *testing.T, text string, inputs []int64, d *Domain) (*Recorder, *vm.Machine) {
	t.Helper()
	p, err := isa.Assemble("t", text)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, inputs)
	_, rec, res := Run(m, d, dift.DefaultPolicy())
	if res.Failed {
		t.Fatalf("run failed: %s", res.FailMsg)
	}
	return rec, m
}

func TestSingletonSourcesAndUnion(t *testing.T) {
	d := NewDomain(8)
	rec, _ := runLineage(t, `
    in r1, 0
    in r2, 0
    in r3, 0
    add r4, r1, r2   ; derives from inputs 0,1
    out r4, 1
    out r3, 1        ; derives from input 2
    movi r5, 7
    out r5, 1        ; derives from nothing
    halt
`, []int64{10, 20, 30}, d)
	if len(rec.Outputs) != 3 {
		t.Fatalf("recorded %d outputs, want 3", len(rec.Outputs))
	}
	if got := rec.Lineage(0); !SortedEquals(got.Elements, []int64{0, 1}) {
		t.Fatalf("output 0 lineage = %v, want [0 1]", got.Elements)
	}
	if got := rec.Lineage(1); !SortedEquals(got.Elements, []int64{2}) {
		t.Fatalf("output 1 lineage = %v, want [2]", got.Elements)
	}
	if got := rec.Lineage(2); len(got.Elements) != 0 || got.Count != 0 {
		t.Fatalf("constant output lineage = %v, want empty", got.Elements)
	}
}

func TestLineageThroughMemoryAndAccumulation(t *testing.T) {
	// Running sum through a memory cell: output j derives from the
	// prefix inputs 1..j+1 (input 0 is the count header).
	d := NewDomain(8)
	rec, _ := runLineage(t, `
    in r1, 0          ; n
    movi r2, 0        ; i
loop:
    bge r2, r1, done
    in r3, 0
    load r4, r0, 8    ; acc cell
    add r4, r4, r3
    store r0, r4, 8
    out r4, 1
    addi r2, r2, 1
    br loop
done:
    halt
`, []int64{4, 5, 6, 7, 8}, d)
	if len(rec.Outputs) != 4 {
		t.Fatalf("recorded %d outputs, want 4", len(rec.Outputs))
	}
	for j := 0; j < 4; j++ {
		var want []int64
		for k := 1; k <= j+1; k++ {
			want = append(want, int64(k))
		}
		if got := rec.Lineage(j); !SortedEquals(got.Elements, want) {
			t.Fatalf("output %d lineage = %v, want %v", j, got.Elements, want)
		}
	}
}

func TestDiff(t *testing.T) {
	d := NewDomain(8)
	rec, _ := runLineage(t, `
    in r1, 0
    in r2, 0
    in r3, 0
    add r4, r1, r2
    add r5, r2, r3
    out r4, 1
    out r5, 1
    halt
`, []int64{1, 2, 3}, d)
	onlyI, onlyJ, both := rec.Diff(0, 1)
	if !SortedEquals(onlyI, []int64{0}) || !SortedEquals(onlyJ, []int64{2}) || !SortedEquals(both, []int64{1}) {
		t.Fatalf("diff = %v %v %v, want [0] [2] [1]", onlyI, onlyJ, both)
	}
}

func TestClusteredDomainOverApproximates(t *testing.T) {
	exact := NewDomain(8)
	recE, _ := runLineage(t, `
    in r1, 0
    out r1, 1
    halt
`, []int64{42}, exact)
	clustered := NewClusteredDomain(8, 4)
	recC, _ := runLineage(t, `
    in r1, 0
    out r1, 1
    halt
`, []int64{42}, clustered)
	// Exact: {0}. Clustered at width 4: the aligned block {0,1,2,3}.
	if got := recE.Lineage(0).Elements; !SortedEquals(got, []int64{0}) {
		t.Fatalf("exact lineage = %v", got)
	}
	if got := recC.Lineage(0).Elements; !SortedEquals(got, []int64{0, 1, 2, 3}) {
		t.Fatalf("clustered lineage = %v, want the aligned 4-block", got)
	}
	if !clustered.Manager().Subset(recC.Outputs[0].Set, clustered.Manager().Interval(0, 3)) {
		t.Fatal("clustered set should be within its block")
	}
}

// TestValidationWorkloadLineages asserts, for every workload that
// carries reference lineage (the data-validation suite and the
// hand-written families), that the recorded lineage of each output
// word exactly matches WantLineage — and that instrumentation did not
// perturb the run (self-check still passes).
func TestValidationWorkloadLineages(t *testing.T) {
	ws := append(prog.ValidationSuite(1), prog.FamiliesSuite(1)...)
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m := w.NewMachine()
			d := NewDomain(BitsFor(len(w.Inputs[prog.ChIn]) + 8))
			_, rec, res := Run(m, d, dift.DefaultPolicy())
			if res.Failed {
				t.Fatalf("run failed: %s", res.FailMsg)
			}
			if w.Check != nil {
				if err := w.Check(m); err != nil {
					t.Fatalf("instrumented run perturbed semantics: %v", err)
				}
			}
			outs := rec.OnChannel(prog.ChOut)
			if len(outs) != len(w.WantLineage) {
				t.Fatalf("recorded %d outputs, want %d", len(outs), len(w.WantLineage))
			}
			for i, want := range w.WantLineage {
				got := d.Manager().Elements(outs[i].Set, nil)
				if !SortedEquals(got, want) {
					t.Fatalf("output %d (val %d) lineage = %v, want %v",
						i, outs[i].Val, got, want)
				}
			}
		})
	}
}

// TestSharingAsymptoticallyBelowNaive is the §3.4 storage claim: N
// heavily-overlapping lineage sets (prefixes, as produced by any
// accumulating computation) stored as shared roBDDs take
// asymptotically fewer nodes than the naive sum of set sizes. Naive
// grows Θ(N²); the shared roBDD forest grows O(N·bits).
func TestSharingAsymptoticallyBelowNaive(t *testing.T) {
	const N = 1 << 10
	bits := BitsFor(N)
	m := bdd.NewManager(bits)
	roots := make([]bdd.Ref, N)
	s := m.Empty()
	var naive uint64
	for i := 0; i < N; i++ {
		s = m.Union(s, m.Singleton(int64(i)))
		roots[i] = s
		naive += uint64(i + 1)
	}
	shared := m.NodeSizeAll(roots)
	if naive != N*(N+1)/2 {
		t.Fatalf("naive = %d", naive)
	}
	// O(N·bits) bound with a small constant, and a ≥16× concrete
	// margin over naive at this N; the gap widens with N.
	if shared > 4*N*bits {
		t.Fatalf("shared nodes = %d, want O(N·bits) ≤ %d", shared, 4*N*bits)
	}
	if uint64(shared)*16 > naive {
		t.Fatalf("shared nodes = %d not asymptotically below naive %d cells", shared, naive)
	}
}

// TestReportFromRealRun checks the aggregate memory report over an
// actual accumulating run: shared roBDD storage beats naive set
// storage and the report's figures are internally consistent.
func TestReportFromRealRun(t *testing.T) {
	const n = 200
	in := make([]int64, n+1)
	in[0] = n
	for i := 1; i <= n; i++ {
		in[i] = int64(i)
	}
	d := NewDomain(BitsFor(n + 1))
	rec, _ := runLineage(t, `
    in r1, 0
    movi r2, 0
loop:
    bge r2, r1, done
    in r3, 0
    load r4, r0, 8
    add r4, r4, r3
    store r0, r4, 8
    out r4, 1
    addi r2, r2, 1
    br loop
done:
    halt
`, in, d)
	rp := rec.Report()
	if rp.Outputs != n {
		t.Fatalf("report outputs = %d, want %d", rp.Outputs, n)
	}
	if want := uint64(n * (n + 1) / 2); rp.TotalElems != want {
		t.Fatalf("total elems = %d, want %d", rp.TotalElems, want)
	}
	if rp.SharedBytes >= rp.NaiveBytes {
		t.Fatalf("shared %d B not below naive %d B", rp.SharedBytes, rp.NaiveBytes)
	}
	if rp.SharingFactor() < 4 {
		t.Fatalf("sharing factor %.2f, want ≥ 4 for prefix lineages", rp.SharingFactor())
	}
	if rp.SharedNodes > rp.ManagerNodes {
		t.Fatalf("shared %d > manager total %d", rp.SharedNodes, rp.ManagerNodes)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := BitsFor(n); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

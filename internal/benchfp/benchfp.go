// Package benchfp captures a host fingerprint for benchmark baseline
// files. Every BENCH_*.json writer embeds Current() next to its
// numbers, and cmd/benchcheck prints the recorded fingerprint beside
// its comparison table, so a "regression" measured on a different (or
// merely busier) machine than the baseline's is diagnosable as
// cross-host noise instead of being mistaken for a real slowdown.
// docs/PERF.md describes the update protocol the fingerprint backs.
package benchfp

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// Host identifies the machine and runtime a baseline was measured on.
type Host struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// Current fingerprints the running host. The CPU model comes from
// /proc/cpuinfo and is empty on platforms without it — the field is
// best-effort context, not an identifier.
func Current() Host {
	return Host{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// String renders the fingerprint the way benchcheck prints it.
func (h Host) String() string {
	model := ""
	if h.CPUModel != "" {
		model = " " + h.CPUModel
	}
	return fmt.Sprintf("%s/%s%s (%d cpu, GOMAXPROCS %d, %s)",
		h.OS, h.Arch, model, h.NumCPU, h.GoMaxProcs, h.GoVersion)
}

// cpuModel returns the first "model name" from /proc/cpuinfo, or "".
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if _, val, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

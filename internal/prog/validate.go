package prog

import (
	"fmt"

	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

// Data-validation workloads (§3.4): pipelines whose correctness
// question is "which input words did this output derive from?". Each
// one computes its expected outputs AND the exact per-output lineage
// (WantLineage) in reference Go, so lineage-domain tests can assert
// provenance word by word.

// StreamAgg is a streaming windowed aggregation: input n, w, then n
// values; every w consecutive values are summed and emitted. The
// lineage of window j is exactly its w value words.
func StreamAgg(windows, w int, seed uint64) *Workload {
	p := isa.MustAssemble("streamagg", `
    in r1, 0          ; n
    in r2, 0          ; w
    movi r3, 0        ; i
    movi r4, 0        ; acc
    movi r5, 0        ; count in window
loop:
    bge r3, r1, done
    in r6, 0
    add r4, r4, r6
    addi r5, r5, 1
    addi r3, r3, 1
    blt r5, r2, loop
    out r4, 1
    movi r4, 0
    movi r5, 0
    br loop
done:
    halt
`)
	r := newRng(seed)
	n := windows * w
	in := []int64{int64(n), int64(w)}
	var want []int64
	var lin [][]int64
	for j := 0; j < windows; j++ {
		var sum int64
		var deps []int64
		for k := 0; k < w; k++ {
			v := r.intn(100)
			in = append(in, v)
			sum += v
			// value k of window j is input word 2 + j*w + k
			// (words 0 and 1 are the n and w headers).
			deps = append(deps, int64(2+j*w+k))
		}
		want = append(want, sum)
		lin = append(lin, deps)
	}
	return &Workload{
		Name:        "streamagg",
		Prog:        p,
		Inputs:      map[int][]int64{ChIn: in},
		Check:       expectOut(want),
		WantLineage: lin,
	}
}

// KeyedMerge is a join-like keyed merge (nested-loop join): a build
// table of (key,value) pairs, then a probe stream of (key,value)
// pairs; every probe that matches a build key emits buildVal+probeVal.
// The lineage of each emitted word is exactly the two value words of
// the matched pair — the keys steer control flow only.
func KeyedMerge(nBuild, nProbe int, seed uint64) *Workload {
	p := isa.MustAssemble("keyedmerge", `
    in r1, 0           ; nBuild
    muli r2, r1, 2
    alloc r10, r2      ; build table: (key,val) pairs
    movi r3, 0
reada:
    bge r3, r1, probe0
    in r4, 0           ; key
    in r5, 0           ; val
    muli r6, r3, 2
    add r6, r6, r10
    store r6, r4, 0
    store r6, r5, 1
    addi r3, r3, 1
    br reada
probe0:
    in r11, 0          ; nProbe
    movi r12, 0        ; j
bloop:
    bge r12, r11, fin
    in r13, 0          ; probe key
    in r14, 0          ; probe val
    movi r3, 0
scan:
    bge r3, r1, bnext
    muli r6, r3, 2
    add r6, r6, r10
    load r7, r6, 0
    bne r7, r13, snext
    load r8, r6, 1
    add r8, r8, r14
    out r8, 1
snext:
    addi r3, r3, 1
    br scan
bnext:
    addi r12, r12, 1
    br bloop
fin:
    halt
`)
	r := newRng(seed)
	in := []int64{int64(nBuild)}
	keys := make([]int64, nBuild)
	vals := make([]int64, nBuild)
	seen := map[int64]bool{}
	for i := 0; i < nBuild; i++ {
		k := r.intn(int64(nBuild)*4 + 4)
		for seen[k] {
			k = r.intn(int64(nBuild)*4 + 4)
		}
		seen[k] = true
		keys[i], vals[i] = k, r.intn(50)
		in = append(in, keys[i], vals[i])
	}
	in = append(in, int64(nProbe))
	var want []int64
	var lin [][]int64
	for j := 0; j < nProbe; j++ {
		var pk int64
		if nBuild > 0 && r.intn(2) == 0 {
			pk = keys[r.intn(int64(nBuild))] // guaranteed match
		} else {
			pk = int64(nBuild)*4 + 4 + r.intn(64) // guaranteed miss
		}
		pv := r.intn(50)
		in = append(in, pk, pv)
		for i := 0; i < nBuild; i++ {
			if keys[i] == pk {
				want = append(want, vals[i]+pv)
				// build val i is input word 2+2i; probe val j is
				// input word (2+2*nBuild) + 2j + 1.
				lin = append(lin, []int64{int64(2 + 2*i), int64(2 + 2*nBuild + 2*j + 1)})
			}
		}
	}
	return &Workload{
		Name:        "keyedmerge",
		Prog:        p,
		Inputs:      map[int][]int64{ChIn: in},
		Check:       expectOut(want),
		WantLineage: lin,
	}
}

// MapReduceSquares is a multi-threaded map/reduce on the VM: T
// workers square their band of the input array (map) and accumulate a
// partial sum (combine), synchronize on a barrier, then the main
// thread emits each partial and the grand total (reduce). Partial t's
// lineage is exactly band t's value words; the total's lineage is the
// whole array.
//
// Layout: [1..2]=barrier, [3]=n, [4..11]=partials, [12]=array base.
func MapReduceSquares(nThreads, n int, seed uint64) *Workload {
	if nThreads < 1 || nThreads > 8 {
		panic("prog: MapReduceSquares wants 1..8 threads")
	}
	text := fmt.Sprintf(`
.equ T %d
.reserve 16
    in r1, 0          ; n
    movi r2, 3
    store r2, r1, 0
    alloc r10, r1
    movi r2, 12
    store r2, r10, 0  ; array base
    movi r3, 0
read:
    bge r3, r1, spawn0
    in r4, 0
    add r5, r10, r3
    store r5, r4, 0
    addi r3, r3, 1
    br read
spawn0:
    movi r20, 1
spawnloop:
    movi r21, T
    bge r20, r21, work0
    spawn r22, r20, worker
    addi r20, r20, 1
    br spawnloop
work0:
    movi r1, 0        ; main is worker 0
    call work
    ; reduce: emit each partial, then the total
    movi r3, 0
    movi r4, 0
red:
    movi r5, T
    bge r3, r5, fin
    addi r6, r3, 4
    load r7, r6, 0
    out r7, 1
    add r4, r4, r7
    addi r3, r3, 1
    br red
fin:
    out r4, 1
    halt
worker:
    call work
    halt
.func work
    ; r1 = worker index; band = [idx*n/T, (idx+1)*n/T)
    movi r2, 3
    load r3, r2, 0    ; n
    movi r4, T
    mul r5, r1, r3
    div r5, r5, r4    ; lo
    addi r6, r1, 1
    mul r6, r6, r3
    div r6, r6, r4    ; hi
    movi r7, 12
    load r8, r7, 0    ; base
    movi r9, 0        ; acc
wloop:
    bge r5, r6, wdone
    add r10, r8, r5
    load r11, r10, 0
    mul r11, r11, r11 ; map: square
    add r9, r9, r11
    addi r5, r5, 1
    br wloop
wdone:
    addi r12, r1, 4
    store r12, r9, 0  ; partials[idx]
    movi r13, 1
    movi r14, T
    barrier r13, r14, 0
    ret
.endfunc
`, nThreads)
	p := isa.MustAssemble("mapreduce", text)
	r := newRng(seed)
	in := []int64{int64(n)}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = r.intn(30)
		in = append(in, vals[i])
	}
	var want []int64
	var lin [][]int64
	var total int64
	var totalDeps []int64
	for t := 0; t < nThreads; t++ {
		lo, hi := t*n/nThreads, (t+1)*n/nThreads
		var part int64
		var deps []int64
		for i := lo; i < hi; i++ {
			part += vals[i] * vals[i]
			deps = append(deps, int64(1+i)) // word 0 is the n header
		}
		want = append(want, part)
		lin = append(lin, deps)
		total += part
		totalDeps = append(totalDeps, deps...)
	}
	want = append(want, total)
	lin = append(lin, totalDeps)
	return &Workload{
		Name:        "mapreduce",
		Prog:        p,
		Inputs:      map[int][]int64{ChIn: in},
		Cfg:         vm.Config{Quantum: 20, RandomPreempt: true},
		Check:       expectOut(want),
		WantLineage: lin,
	}
}

// ValidationSuite returns the data-validation workloads at a common
// scale.
func ValidationSuite(scale int) []*Workload {
	if scale < 1 {
		scale = 1
	}
	return []*Workload{
		StreamAgg(scale*8, 4, 21),
		KeyedMerge(scale*12, scale*20, 22),
		MapReduceSquares(4, scale*64, 23),
	}
}

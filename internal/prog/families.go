package prog

import (
	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

// Hand-written workload families with exact per-output lineage
// (WantLineage), complementing the fuzzed corpus in internal/progen:
// a protocol-parser state machine whose hidden state (the session
// key) joins the lineage of later outputs, a producer/consumer queue
// whose provenance crosses a thread boundary through shared memory,
// and a crypto-like mixing kernel whose outputs diffuse every input
// word. Each computes its expected outputs and lineage in reference
// Go alongside the assembly.

// Message types for ProtoParser's input stream.
const (
	protoEnd    = 0
	protoData   = 1
	protoSetKey = 2
)

// ProtoParser is a protocol-parser state machine: the input is a
// stream of messages [type, ...], where SETKEY [2, key] replaces the
// session key, DATA [1, len, payload...] emits (sum payload) XOR key,
// and END [0] halts. Type and length words steer control only; the
// lineage of each DATA output is exactly its payload words plus the
// word that set the key in force (none before the first SETKEY).
func ProtoParser(nMsgs int, seed uint64) *Workload {
	p := isa.MustAssemble("protoparser", `
    movi r10, 0        ; session key (no lineage until SETKEY)
loop:
    in r1, 0           ; message type
    beqz r1, done
    movi r2, 2
    bge r1, r2, setkey
    ; DATA: sum the payload, mask with the key, emit
    in r3, 0           ; len
    movi r4, 0         ; acc
    movi r5, 0         ; i
pay:
    bge r5, r3, emit
    in r6, 0
    add r4, r4, r6
    addi r5, r5, 1
    br pay
emit:
    xor r7, r4, r10
    out r7, 1
    br loop
setkey:
    in r10, 0
    br loop
done:
    halt
`)
	r := newRng(seed)
	var in []int64
	var want []int64
	var lin [][]int64
	var key int64
	keyWord := int64(-1) // input word index of the key in force
	for m := 0; m < nMsgs; m++ {
		// Force the first two shapes so the no-key case and the
		// state transition are always exercised.
		kind := protoData
		if m == 1 || (m > 1 && r.intn(3) == 0) {
			kind = protoSetKey
		}
		if kind == protoSetKey {
			in = append(in, protoSetKey)
			keyWord = int64(len(in))
			key = r.intn(1 << 16)
			in = append(in, key)
			continue
		}
		n := 1 + r.intn(4)
		in = append(in, protoData, n)
		var sum int64
		var deps []int64
		if keyWord >= 0 {
			deps = append(deps, keyWord)
		}
		for k := int64(0); k < n; k++ {
			v := r.intn(1 << 16)
			deps = append(deps, int64(len(in)))
			in = append(in, v)
			sum += v
		}
		want = append(want, sum^key)
		lin = append(lin, deps)
	}
	in = append(in, protoEnd)
	return &Workload{
		Name:        "protoparser",
		Prog:        p,
		Inputs:      map[int][]int64{ChIn: in},
		Check:       expectOut(want),
		WantLineage: lin,
	}
}

// ProducerConsumer is a two-thread queue: a producer thread reads n
// values and publishes them through shared slots guarded by a
// lock-protected publication counter, while the main thread spins,
// pops each slot in order, and emits the running sum. Output j is
// data-derived from exactly value words 0..j — the provenance crosses
// the thread boundary through the stored slots, while the publication
// counter and n steer control only.
//
// Layout: [0]=lock, [1]=published count, [2]=n, [4..4+n)=slots.
func ProducerConsumer(n int, seed uint64) *Workload {
	if n < 1 || n > 64 {
		panic("prog: ProducerConsumer wants 1..64 values")
	}
	p := isa.MustAssemble("prodcons", `
.reserve 96
    in r1, 0           ; n
    movi r2, 2
    store r2, r1, 0
    spawn r20, r0, producer
    movi r3, 0         ; i
    movi r4, 0         ; running sum
cloop:
    bge r3, r1, fin
cspin:
    movi r5, 1
    load r6, r5, 0     ; published
    blt r3, r6, cready
    yield
    br cspin
cready:
    movi r7, 4
    add r7, r7, r3
    load r8, r7, 0     ; slot i
    add r4, r4, r8
    out r4, 1
    addi r3, r3, 1
    br cloop
fin:
    join r20
    halt
producer:
    movi r1, 2
    load r2, r1, 0     ; n
    movi r3, 0
ploop:
    bge r3, r2, pdone
    in r4, 0
    movi r5, 4
    add r5, r5, r3
    store r5, r4, 0
    lock r6, 0
    movi r7, 1
    addi r8, r3, 1
    store r7, r8, 0    ; published = i+1
    unlock r6, 0
    addi r3, r3, 1
    br ploop
pdone:
    halt
`)
	r := newRng(seed)
	in := []int64{int64(n)}
	var want []int64
	var lin [][]int64
	var sum int64
	var deps []int64
	for j := 0; j < n; j++ {
		v := r.intn(1 << 12)
		in = append(in, v)
		sum += v
		deps = append(deps, int64(1+j)) // word 0 is the n header
		want = append(want, sum)
		lin = append(lin, append([]int64(nil), deps...))
	}
	return &Workload{
		Name:        "prodcons",
		Prog:        p,
		Inputs:      map[int][]int64{ChIn: in},
		Cfg:         vm.Config{Quantum: 8, RandomPreempt: true},
		Check:       expectOut(want),
		WantLineage: lin,
	}
}

// mixLane applies MixKernel's per-word lane update; kept as the
// single definition both the assembly mirror and tests rely on.
func mixLane(s, w int64) int64 { return (s^w)*31 + w }

// MixKernel is a crypto-like mixing kernel: a 4-word key initializes
// four lanes, each message word is absorbed into a lane round-robin,
// and the four digest words each fold in the XOR of all lanes. Full
// diffusion means the lineage of every digest word is all key words
// plus all message words.
//
// Layout: [8..11]=lanes.
func MixKernel(m int, seed uint64) *Workload {
	p := isa.MustAssemble("mixkernel", `
.reserve 12
    in r1, 0           ; m
    movi r2, 0
kloop:
    movi r9, 4
    bge r2, r9, absorb
    in r3, 0
    addi r4, r2, 8
    store r4, r3, 0    ; lane i = key i
    addi r2, r2, 1
    br kloop
absorb:
    movi r10, 0
aloop:
    bge r10, r1, digest
    in r4, 0           ; w
    andi r5, r10, 3
    addi r5, r5, 8
    load r6, r5, 0
    xor r6, r6, r4
    muli r6, r6, 31
    add r6, r6, r4     ; lane = (lane^w)*31 + w
    store r5, r6, 0
    addi r10, r10, 1
    br aloop
digest:
    movi r8, 8
    load r11, r8, 0
    load r12, r8, 1
    load r13, r8, 2
    load r14, r8, 3
    xor r15, r11, r12
    xor r15, r15, r13
    xor r15, r15, r14
    add r16, r11, r15
    out r16, 1
    add r16, r12, r15
    out r16, 1
    add r16, r13, r15
    out r16, 1
    add r16, r14, r15
    out r16, 1
    halt
`)
	if m < 4 {
		panic("prog: MixKernel wants at least 4 message words")
	}
	r := newRng(seed)
	in := []int64{int64(m)}
	var s [4]int64
	for i := range s {
		s[i] = r.intn(1 << 20)
		in = append(in, s[i])
	}
	for j := 0; j < m; j++ {
		w := r.intn(1 << 20)
		in = append(in, w)
		s[j&3] = mixLane(s[j&3], w)
	}
	t := s[0] ^ s[1] ^ s[2] ^ s[3]
	want := []int64{s[0] + t, s[1] + t, s[2] + t, s[3] + t}
	// Every digest word folds in all lanes: words 1..4+m (word 0 is
	// the m header).
	full := make([]int64, 4+m)
	for i := range full {
		full[i] = int64(1 + i)
	}
	lin := [][]int64{full, full, full, full}
	return &Workload{
		Name:        "mixkernel",
		Prog:        p,
		Inputs:      map[int][]int64{ChIn: in},
		Check:       expectOut(want),
		WantLineage: lin,
	}
}

// FamiliesSuite returns the hand-written workload families at a
// common scale.
func FamiliesSuite(scale int) []*Workload {
	if scale < 1 {
		scale = 1
	}
	return []*Workload{
		ProtoParser(scale*10, 31),
		ProducerConsumer(min(scale*24, 64), 32),
		MixKernel(scale*12, 33),
	}
}

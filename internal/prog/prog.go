// Package prog is the workload library: mini-ISA programs standing in
// for the paper's benchmark suites. SPEC-CPU-2000-like single-threaded
// kernels drive the tracing experiments (§2.1), SPLASH-2-like parallel
// kernels the TM monitoring experiments (§2.2), and a multithreaded
// request-processing server the execution-reduction and attack
// experiments (§2.2, §3.3). Every workload carries a self-check so
// instrumented runs can assert they did not perturb semantics.
package prog

import (
	"fmt"

	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

// Channel conventions used by all workloads.
const (
	ChIn  = 0 // program input (the DIFT taint source)
	ChOut = 1 // program output
)

// Workload bundles a program with its inputs and a result check.
type Workload struct {
	Name   string
	Prog   *isa.Program
	Inputs map[int][]int64
	Cfg    vm.Config
	// Check validates the run's outputs; nil means no check.
	Check func(m *vm.Machine) error
	// WantLineage, when non-nil, gives for each word the program
	// writes to ChOut the exact set of global input-word indices the
	// word is data-derived from — the ground truth the lineage-set
	// domain (internal/lineage) must reproduce. Indices count every
	// input word consumed, headers included.
	WantLineage [][]int64
}

// NewMachine builds a machine for the workload with inputs loaded.
func (w *Workload) NewMachine() *vm.Machine {
	m := vm.MustNew(w.Prog, w.Cfg)
	for ch, words := range w.Inputs {
		m.SetInput(ch, words)
	}
	return m
}

// Run executes the workload on a fresh machine and validates it.
func (w *Workload) Run() (*vm.Machine, *vm.Result, error) {
	m := w.NewMachine()
	res := m.Run()
	if res.Failed {
		return m, res, fmt.Errorf("%s: run failed at pc %d: %s", w.Name, res.FailPC, res.FailMsg)
	}
	if w.Check != nil {
		if err := w.Check(m); err != nil {
			return m, res, fmt.Errorf("%s: %w", w.Name, err)
		}
	}
	return m, res, nil
}

// All returns every registered workload at a small test scale: the
// SPEC-like kernels, the SPLASH-like parallel kernels, the
// data-validation workloads, and the hand-written families. Tier-1 tests run each one uninstrumented
// and assert its self-check passes.
func All() []*Workload {
	var ws []*Workload
	ws = append(ws, SpecSuite(1)...)
	ws = append(ws, SplashSuite(4, 1)...)
	ws = append(ws, ValidationSuite(1)...)
	ws = append(ws, FamiliesSuite(1)...)
	return ws
}

// rng is a tiny deterministic generator for workload inputs.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

// expectOut returns a Check comparing output channel ChOut to want.
func expectOut(want []int64) func(*vm.Machine) error {
	return func(m *vm.Machine) error {
		got := m.Output(ChOut)
		if len(got) != len(want) {
			return fmt.Errorf("output length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("output[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}
}

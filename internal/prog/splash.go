package prog

import (
	"fmt"

	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

// SPLASH-2-like parallel kernels: shared-memory workers using the
// synchronization idioms (barriers, locks, flag/spin sync) whose
// interaction with transactional monitoring §2.2 studies.

// PSum splits an array across nThreads workers that sum their bands,
// synchronize on a barrier, and thread 0 reduces (fft/radix-style
// phase structure).
//
// Data layout: [0]=lock, [1..2]=barrier, [3]=n, [4..4+T)=partials,
// array follows.
func PSum(nThreads, n int, seed uint64) *Workload {
	if nThreads < 1 || nThreads > 8 {
		panic("prog: PSum wants 1..8 threads")
	}
	text := fmt.Sprintf(`
.equ T %d
.reserve 16           ; 0 lock, 1..2 barrier, 3 n, 4..11 partials
    in r1, 0          ; n
    movi r2, 3
    store r2, r1, 0   ; save n
    alloc r10, r1     ; array
    movi r3, 0
read:
    bge r3, r1, spawn0
    in r4, 0
    add r5, r10, r3
    store r5, r4, 0
    addi r3, r3, 1
    br read
spawn0:
    ; pack (tid<<32)|arraybase as arg? registers are easier: store
    ; the base at a known slot.
    movi r2, 12
    store r2, r10, 0  ; array base at word 12
    movi r20, 1       ; worker index
spawnloop:
    movi r21, T
    bge r20, r21, work0
    spawn r22, r20, worker
    addi r20, r20, 1
    br spawnloop
work0:
    movi r1, 0        ; main is worker 0
    call work
    ; after barrier, reduce partials
    movi r3, 0
    movi r4, 0
red:
    movi r5, T
    bge r3, r5, fin
    addi r6, r3, 4
    load r7, r6, 0
    add r4, r4, r7
    addi r3, r3, 1
    br red
fin:
    out r4, 1
    halt
worker:
    call work
    halt
.func work
    ; r1 = worker index; band = [idx*n/T, (idx+1)*n/T)
    movi r2, 3
    load r3, r2, 0    ; n
    movi r4, T
    mul r5, r1, r3
    div r5, r5, r4    ; lo
    addi r6, r1, 1
    mul r6, r6, r3
    div r6, r6, r4    ; hi
    movi r7, 12
    load r8, r7, 0    ; array base
    movi r9, 0        ; acc
wloop:
    bge r5, r6, wdone
    add r10, r8, r5
    load r11, r10, 0
    add r9, r9, r11
    addi r5, r5, 1
    br wloop
wdone:
    addi r12, r1, 4
    store r12, r9, 0  ; partials[idx]
    movi r13, 1
    movi r14, T
    barrier r13, r14, 0
    ret
.endfunc
`, nThreads)
	p := isa.MustAssemble("psum", text)
	r := newRng(seed)
	in := []int64{int64(n)}
	var sum int64
	for i := 0; i < n; i++ {
		v := r.intn(100)
		in = append(in, v)
		sum += v
	}
	return &Workload{
		Name:   "psum",
		Prog:   p,
		Inputs: map[int][]int64{ChIn: in},
		Cfg:    vm.Config{Quantum: 20, RandomPreempt: true},
		Check:  expectOut([]int64{sum}),
	}
}

// LockCounter has workers hammer shared counters under a lock
// (radiosity-style contention).
//
// Layout: [0]=lock, [1]=counter, [2]=iters.
func LockCounter(nThreads, iters int) *Workload {
	text := fmt.Sprintf(`
.equ T %d
.equ ITERS %d
.reserve 4
    movi r2, 2
    movi r3, ITERS
    store r2, r3, 0
    movi r20, 1
spawnloop:
    movi r21, T
    bge r20, r21, work0
    spawn r22, r20, worker
    addi r20, r20, 1
    br spawnloop
work0:
    call work
    ; wait for T-1 children: counter reaches T*ITERS
wait:
    load r4, r0, 1
    movi r5, T
    muli r6, r5, ITERS
    blt r4, r6, wait
    out r4, 1
    halt
worker:
    call work
    halt
.func work
    movi r3, 0
wloop:
    movi r4, ITERS
    bge r3, r4, wdone
    lock r0, 0
    load r5, r0, 1
    addi r5, r5, 1
    store r0, r5, 1
    unlock r0, 0
    addi r3, r3, 1
    br wloop
wdone:
    ret
.endfunc
`, nThreads, iters)
	p := isa.MustAssemble("lockcounter", text)
	return &Workload{
		Name:   "lockcounter",
		Prog:   p,
		Inputs: map[int][]int64{},
		Cfg:    vm.Config{Quantum: 7, RandomPreempt: true},
		Check:  expectOut([]int64{int64(nThreads * iters)}),
	}
}

// FlagPipeline is a producer→consumer chain using flag (spin)
// synchronization: stage i waits for stage i-1's flag, transforms the
// value, publishes its own flag (ocean-style neighbor sync).
//
// Layout: [0..T) flags, [T..2T) values.
func FlagPipeline(nStages, rounds int, seed uint64) *Workload {
	text := fmt.Sprintf(`
.equ T %d
.equ R %d
.reserve 32            ; flags 0..T-1, values T..2T-1
    ; spawn stages 1..T-1; main is stage 0 (the producer)
    movi r20, 1
spawnloop:
    movi r21, T
    bge r20, r21, produce0
    spawn r22, r20, stage
    addi r20, r20, 1
    br spawnloop
produce0:
    movi r9, 0         ; round
prod:
    movi r10, R
    bge r9, r10, pdone
    in r4, 0
    movi r5, T
    store r5, r4, 0    ; values[0] = input
    flagset r0, 0      ; publish
    ; wait for the last stage to consume (its flag)
    addi r6, r0, T
    addi r6, r6, -1    ; flag T-1 address base r0.. compute flag idx T-1
    flagwt r6, 0
    flagclr r6, 0
    ; read final value
    movi r7, T
    muli r8, r7, 2
    addi r8, r8, -1
    load r11, r8, 0
    out r11, 1
    addi r9, r9, 1
    br prod
pdone:
    halt
stage:
    ; r1 = stage index i in [1,T)
    movi r9, 0
sloop:
    movi r10, R
    bge r9, r10, sdone
    addi r2, r1, -1    ; wait for flag i-1
    flagwt r2, 0
    flagclr r2, 0
    ; value[i] = value[i-1] * 2 + i
    addi r3, r1, T
    load r4, r3, -1
    muli r4, r4, 2
    add r4, r4, r1
    store r3, r4, 0
    flagset r1, 0      ; publish flag i
    addi r9, r9, 1
    br sloop
sdone:
    halt
`, nStages, rounds)
	p := isa.MustAssemble("flagpipeline", text)
	r := newRng(seed)
	var in, want []int64
	for round := 0; round < rounds; round++ {
		v := r.intn(50)
		in = append(in, v)
		x := v
		for i := 1; i < nStages; i++ {
			x = x*2 + int64(i)
		}
		want = append(want, x)
	}
	return &Workload{
		Name:   "flagpipeline",
		Prog:   p,
		Inputs: map[int][]int64{ChIn: in},
		Cfg:    vm.Config{Quantum: 5, RandomPreempt: true},
		Check:  expectOut(want),
	}
}

// BarrierPhases runs nThreads workers through multiple barrier-
// separated phases over a shared array, each phase reading what the
// previous phase wrote (lu/barnes-style supersteps).
//
// Layout: [0..1]=barrier, [2]=n, [3]=base, array follows.
func BarrierPhases(nThreads, n, phases int, seed uint64) *Workload {
	text := fmt.Sprintf(`
.equ T %d
.equ P %d
.reserve 8
    in r1, 0
    movi r2, 2
    store r2, r1, 0    ; n
    alloc r10, r1
    movi r2, 3
    store r2, r10, 0   ; base
    movi r3, 0
read:
    bge r3, r1, spawn0
    in r4, 0
    add r5, r10, r3
    store r5, r4, 0
    addi r3, r3, 1
    br read
spawn0:
    movi r20, 1
spawnloop:
    movi r21, T
    bge r20, r21, work0
    spawn r22, r20, worker
    addi r20, r20, 1
    br spawnloop
work0:
    movi r1, 0
    call work
    ; checksum
    movi r2, 2
    load r1, r2, 0
    movi r3, 3
    load r10, r3, 0
    movi r3, 0
    movi r4, 0
csum:
    bge r3, r1, fin
    add r5, r10, r3
    load r6, r5, 0
    muli r4, r4, 31
    add r4, r4, r6
    addi r3, r3, 1
    br csum
fin:
    out r4, 1
    halt
worker:
    call work
    halt
.func work
    ; r1 = worker idx
    movi r15, 0        ; phase
phase:
    movi r16, P
    bge r15, r16, pdone
    movi r2, 2
    load r3, r2, 0     ; n
    movi r2, 3
    load r10, r2, 0    ; base
    ; band
    movi r4, T
    mul r5, r1, r3
    div r5, r5, r4
    addi r6, r1, 1
    mul r6, r6, r3
    div r6, r6, r4
bloop:
    bge r5, r6, bdone
    add r7, r10, r5
    load r8, r7, 0
    muli r8, r8, 3
    addi r8, r8, 1
    store r7, r8, 0
    addi r5, r5, 1
    br bloop
bdone:
    movi r9, T
    barrier r0, r9, 0
    addi r15, r15, 1
    br phase
pdone:
    ret
.endfunc
`, nThreads, phases)
	p := isa.MustAssemble("barrierphases", text)
	r := newRng(seed)
	in := []int64{int64(n)}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = r.intn(20)
		in = append(in, vals[i])
	}
	for ph := 0; ph < phases; ph++ {
		for i := range vals {
			vals[i] = vals[i]*3 + 1
		}
	}
	var sum int64
	for _, v := range vals {
		sum = sum*31 + v
	}
	return &Workload{
		Name:   "barrierphases",
		Prog:   p,
		Inputs: map[int][]int64{ChIn: in},
		Cfg:    vm.Config{Quantum: 15, RandomPreempt: true},
		Check:  expectOut([]int64{sum}),
	}
}

// SplashSuite returns the parallel kernels at a common scale.
func SplashSuite(nThreads, scale int) []*Workload {
	if scale < 1 {
		scale = 1
	}
	return []*Workload{
		PSum(nThreads, scale*200, 11),
		LockCounter(nThreads, scale*60),
		FlagPipeline(min(nThreads, 6), scale*20, 13),
		BarrierPhases(nThreads, scale*100, 4, 14),
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

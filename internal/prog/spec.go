package prog

import (
	"fmt"

	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

// SPEC-CPU-2000-like kernels: CPU-bound, input-driven control flow,
// register and memory traffic. Each constructor takes a scale knob
// and returns a self-checking workload.

// Compress is an RLE encoder (gzip stand-in): input n then n words,
// output (value, runlength) pairs.
func Compress(n int, seed uint64) *Workload {
	p := isa.MustAssemble("compress", `
    in r1, 0          ; n
    movi r2, 0        ; i
    movi r3, -1       ; previous value
    movi r4, 0        ; run length
loop:
    bge r2, r1, done
    in r5, 0
    beq r5, r3, same
    beqz r4, skipemit
    out r3, 1
    out r4, 1
skipemit:
    mov r3, r5
    movi r4, 1
    addi r2, r2, 1
    br loop
same:
    addi r4, r4, 1
    addi r2, r2, 1
    br loop
done:
    beqz r4, end
    out r3, 1
    out r4, 1
end:
    halt
`)
	r := newRng(seed)
	in := []int64{int64(n)}
	var want []int64
	prev, run := int64(-1), int64(0)
	for i := 0; i < n; i++ {
		var v int64
		if i > 0 && r.intn(3) != 0 {
			v = prev // make runs common
		} else {
			v = r.intn(8)
		}
		in = append(in, v)
		if v == prev {
			run++
		} else {
			if run > 0 {
				want = append(want, prev, run)
			}
			prev, run = v, 1
		}
	}
	if run > 0 {
		want = append(want, prev, run)
	}
	return &Workload{
		Name:   "compress",
		Prog:   p,
		Inputs: map[int][]int64{ChIn: in},
		Check:  expectOut(want),
	}
}

// Parser evaluates a stream of (value, op) tokens with + and *
// (parser/gcc stand-in: input-dependent branching).
func Parser(terms int, seed uint64) *Workload {
	p := isa.MustAssemble("parser", `
    in r3, 0           ; first value -> current term
    movi r2, 0         ; total
ploop:
    in r4, 0           ; op: 0 end, 1 plus, 2 times
    beqz r4, pdone
    in r5, 0
    movi r6, 2
    beq r4, r6, ptimes
    add r2, r2, r3
    mov r3, r5
    br ploop
ptimes:
    mul r3, r3, r5
    br ploop
pdone:
    add r2, r2, r3
    out r2, 1
    halt
`)
	r := newRng(seed)
	first := r.intn(9) + 1
	in := []int64{first}
	total, term := int64(0), first
	for i := 0; i < terms; i++ {
		op := r.intn(2) + 1
		v := r.intn(9) + 1
		in = append(in, op, v)
		if op == 2 {
			term *= v
		} else {
			total += term
			term = v
		}
	}
	in = append(in, 0)
	total += term
	return &Workload{
		Name:   "parser",
		Prog:   p,
		Inputs: map[int][]int64{ChIn: in},
		Check:  expectOut([]int64{total}),
	}
}

// MatMul multiplies two n×n matrices read from input and outputs a
// checksum of the product (vpr/art stand-in: regular memory traffic).
func MatMul(n int, seed uint64) *Workload {
	p := isa.MustAssemble("matmul", `
    in r1, 0           ; n
    mul r2, r1, r1     ; n*n
    alloc r10, r2      ; A
    alloc r11, r2      ; B
    alloc r12, r2      ; C
    ; read A then B
    movi r3, 0
reada:
    bge r3, r2, readb0
    in r4, 0
    add r5, r10, r3
    store r5, r4, 0
    addi r3, r3, 1
    br reada
readb0:
    movi r3, 0
readb:
    bge r3, r2, mul0
    in r4, 0
    add r5, r11, r3
    store r5, r4, 0
    addi r3, r3, 1
    br readb
mul0:
    movi r20, 0        ; i
iloop:
    bge r20, r1, sum0
    movi r21, 0        ; j
jloop:
    bge r21, r1, inext
    movi r22, 0        ; k
    movi r23, 0        ; acc
kloop:
    bge r22, r1, kdone
    mul r6, r20, r1
    add r6, r6, r22
    add r6, r6, r10
    load r7, r6, 0     ; A[i][k]
    mul r6, r22, r1
    add r6, r6, r21
    add r6, r6, r11
    load r8, r6, 0     ; B[k][j]
    mul r7, r7, r8
    add r23, r23, r7
    addi r22, r22, 1
    br kloop
kdone:
    mul r6, r20, r1
    add r6, r6, r21
    add r6, r6, r12
    store r6, r23, 0
    addi r21, r21, 1
    br jloop
inext:
    addi r20, r20, 1
    br iloop
sum0:
    ; checksum C
    movi r3, 0
    movi r4, 0
csum:
    bge r3, r2, emit
    add r5, r12, r3
    load r6, r5, 0
    xor r4, r4, r6
    add r4, r4, r6
    addi r3, r3, 1
    br csum
emit:
    out r4, 1
    halt
`)
	r := newRng(seed)
	in := []int64{int64(n)}
	a := make([]int64, n*n)
	b := make([]int64, n*n)
	for i := range a {
		a[i] = r.intn(10)
		in = append(in, a[i])
	}
	for i := range b {
		b[i] = r.intn(10)
		in = append(in, b[i])
	}
	// Reference product checksum.
	var sum int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			sum = (sum ^ acc) + acc
		}
	}
	return &Workload{
		Name:   "matmul",
		Prog:   p,
		Inputs: map[int][]int64{ChIn: in},
		Check:  expectOut([]int64{sum}),
	}
}

// Sort bubble-sorts n input words in heap memory and outputs the
// sorted sequence's checksum (mcf stand-in: pointer-ish traffic,
// data-dependent swaps).
func Sort(n int, seed uint64) *Workload {
	p := isa.MustAssemble("sort", `
    in r1, 0           ; n
    alloc r10, r1
    movi r3, 0
read:
    bge r3, r1, sort0
    in r4, 0
    add r5, r10, r3
    store r5, r4, 0
    addi r3, r3, 1
    br read
sort0:
    addi r20, r1, -1   ; limit
outer:
    beqz r20, emit0
    movi r21, 0        ; j
inner:
    bge r21, r20, onext
    add r5, r10, r21
    load r6, r5, 0
    load r7, r5, 1
    bge r7, r6, noswap
    store r5, r7, 0
    store r5, r6, 1
noswap:
    addi r21, r21, 1
    br inner
onext:
    addi r20, r20, -1
    br outer
emit0:
    movi r3, 0
    movi r4, 0
emit:
    bge r3, r1, fin
    add r5, r10, r3
    load r6, r5, 0
    muli r4, r4, 31
    add r4, r4, r6
    addi r3, r3, 1
    br emit
fin:
    out r4, 1
    halt
`)
	r := newRng(seed)
	in := []int64{int64(n)}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = r.intn(1000)
		in = append(in, vals[i])
	}
	// Reference: sorted checksum.
	sorted := append([]int64(nil), vals...)
	for i := len(sorted) - 1; i > 0; i-- {
		for j := 0; j < i; j++ {
			if sorted[j] > sorted[j+1] {
				sorted[j], sorted[j+1] = sorted[j+1], sorted[j]
			}
		}
	}
	var sum int64
	for _, v := range sorted {
		sum = sum*31 + v
	}
	return &Workload{
		Name:   "sort",
		Prog:   p,
		Inputs: map[int][]int64{ChIn: in},
		Check:  expectOut([]int64{sum}),
	}
}

// HashJoin builds an open-addressing hash table from (key,value)
// pairs and probes it (gap/db stand-in: irregular memory access).
func HashJoin(nBuild, nProbe int, seed uint64) *Workload {
	const tableSize = 1 << 12 // two words per slot: key+1, value
	p := isa.MustAssemble("hashjoin", fmt.Sprintf(`
.equ TSZ %d
    movi r1, TSZ
    muli r2, r1, 2
    alloc r10, r2      ; table
    in r11, 0          ; nBuild
    movi r3, 0
build:
    bge r3, r11, probe0
    in r4, 0           ; key
    in r5, 0           ; value
    ; h = (key*2654435761) & (TSZ-1)
    movi r6, 2654435761
    mul r6, r4, r6
    movi r7, TSZ
    addi r7, r7, -1
    and r6, r6, r7
bslot:
    muli r8, r6, 2
    add r8, r8, r10
    load r9, r8, 0
    beqz r9, binsert
    ; collision: linear probe
    addi r6, r6, 1
    and r6, r6, r7
    br bslot
binsert:
    addi r9, r4, 1
    store r8, r9, 0
    store r8, r5, 1
    addi r3, r3, 1
    br build
probe0:
    in r11, 0          ; nProbe
    movi r3, 0
    movi r12, 0        ; sum of matches
probe:
    bge r3, r11, fin
    in r4, 0           ; key
    movi r6, 2654435761
    mul r6, r4, r6
    movi r7, TSZ
    addi r7, r7, -1
    and r6, r6, r7
pslot:
    muli r8, r6, 2
    add r8, r8, r10
    load r9, r8, 0
    beqz r9, pmiss
    addi r5, r4, 1
    beq r9, r5, phit
    addi r6, r6, 1
    and r6, r6, r7
    br pslot
phit:
    load r9, r8, 1
    add r12, r12, r9
pmiss:
    addi r3, r3, 1
    br probe
fin:
    out r12, 1
    halt
`, tableSize))
	r := newRng(seed)
	in := []int64{int64(nBuild)}
	table := map[int64]int64{}
	for i := 0; i < nBuild; i++ {
		k := r.intn(int64(nBuild) * 4)
		for {
			if _, dup := table[k]; !dup {
				break
			}
			k = r.intn(int64(nBuild) * 4)
		}
		v := r.intn(100)
		table[k] = v
		in = append(in, k, v)
	}
	in = append(in, int64(nProbe))
	var sum int64
	for i := 0; i < nProbe; i++ {
		k := r.intn(int64(nBuild) * 4)
		in = append(in, k)
		if v, ok := table[k]; ok {
			sum += v
		}
	}
	return &Workload{
		Name:   "hashjoin",
		Prog:   p,
		Inputs: map[int][]int64{ChIn: in},
		Cfg:    vm.Config{MemWords: 1 << 20},
		Check:  expectOut([]int64{sum}),
	}
}

// Sieve counts primes below n (crafty/eon stand-in: tight loops over
// a bit-less array).
func Sieve(n int) *Workload {
	p := isa.MustAssemble("sieve", `
    in r1, 0           ; n
    alloc r10, r1      ; composite flags
    movi r2, 2         ; i
mark:
    mul r3, r2, r2
    bge r3, r1, count0
    add r4, r10, r2
    load r5, r4, 0
    bnez r5, inext
    ; mark multiples starting i*i
mloop:
    bge r3, r1, inext
    add r4, r10, r3
    movi r5, 1
    store r4, r5, 0
    add r3, r3, r2
    br mloop
inext:
    addi r2, r2, 1
    br mark
count0:
    movi r2, 2
    movi r6, 0
cloop:
    bge r2, r1, fin
    add r4, r10, r2
    load r5, r4, 0
    bnez r5, cnext
    addi r6, r6, 1
cnext:
    addi r2, r2, 1
    br cloop
fin:
    out r6, 1
    halt
`)
	count := int64(0)
	comp := make([]bool, n)
	for i := 2; i < n; i++ {
		if !comp[i] {
			count++
			for j := i * i; j < n; j += i {
				comp[j] = true
			}
		}
	}
	return &Workload{
		Name:   "sieve",
		Prog:   p,
		Inputs: map[int][]int64{ChIn: {int64(n)}},
		Check:  expectOut([]int64{count}),
	}
}

// Bitops runs an iterated mixing function over a seed (bzip2/crc
// stand-in: long ALU chains, no memory).
func Bitops(iters int, seed uint64) *Workload {
	p := isa.MustAssemble("bitops", `
    in r1, 0           ; iters
    in r2, 0           ; x
    movi r3, 0         ; i
    movi r10, 2862933555777941757
    movi r11, 3037000493
loop:
    bge r3, r1, fin
    mul r2, r2, r10
    add r2, r2, r11
    movi r4, 29
    shr r5, r2, r4
    xor r2, r2, r5
    addi r3, r3, 1
    br loop
fin:
    out r2, 1
    halt
`)
	x := int64(seed)
	for i := 0; i < iters; i++ {
		x = x*2862933555777941757 + 3037000493
		x ^= int64(uint64(x) >> 29)
	}
	return &Workload{
		Name:   "bitops",
		Prog:   p,
		Inputs: map[int][]int64{ChIn: {int64(iters), int64(seed)}},
		Check:  expectOut([]int64{x}),
	}
}

// SpecSuite returns the SPEC-like kernels at a common scale knob
// (roughly proportional dynamic instruction counts).
func SpecSuite(scale int) []*Workload {
	if scale < 1 {
		scale = 1
	}
	return []*Workload{
		Compress(scale*400, 1),
		Parser(scale*150, 2),
		MatMul(4+scale, 3),
		Sort(scale*12, 4),
		HashJoin(scale*40, scale*80, 5),
		Sieve(scale * 300),
		Bitops(scale*500, 6),
	}
}

package prog

import "testing"

// TestAllWorkloadsSelfCheck runs every registered workload
// uninstrumented and asserts its self-check passes, so the workload
// library itself is exercised by tier-1.
func TestAllWorkloadsSelfCheck(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if _, _, err := w.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestValidationLineageGroundTruth sanity-checks the WantLineage
// metadata of every workload that carries it (the data-validation
// suite and the hand-written families): one entry per ChOut word,
// indices within the consumed input range.
func TestValidationLineageGroundTruth(t *testing.T) {
	for _, w := range append(ValidationSuite(1), FamiliesSuite(1)...) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if w.WantLineage == nil {
				t.Fatal("validation workload missing WantLineage")
			}
			m, _, err := w.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got, want := len(m.Output(ChOut)), len(w.WantLineage); got != want {
				t.Fatalf("%d outputs but %d lineage entries", got, want)
			}
			consumed := int64(m.InputsConsumed())
			for i, deps := range w.WantLineage {
				for _, d := range deps {
					if d < 0 || d >= consumed {
						t.Fatalf("output %d depends on input %d, outside consumed range [0,%d)", i, d, consumed)
					}
				}
			}
		})
	}
}

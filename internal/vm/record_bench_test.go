package vm

import (
	"testing"

	"scaldift/internal/isa"
)

// BenchmarkRecorderOnEvent measures the per-event cost the recorder
// adds to the execution thread — the filter check plus the struct
// copy that replaces a full inline analysis tool in the offloaded
// designs.
func BenchmarkRecorderOnEvent(b *testing.B) {
	var rec *Recorder
	rec = NewRecorder(DefaultBatchEvents, nil, func(bt *Batch) { rec.Free(bt) })
	ins := isa.Instr{}
	ev := Event{Kind: EvCompute, Instr: &ins, DstReg: 1, NSrc: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i + 1)
		ev.ThreadSeq = uint64(i + 1)
		rec.OnEvent(nil, &ev)
	}
	rec.Flush()
}

// BenchmarkRecorderRun measures whole-run recording overhead on a
// tight loop, against the tool-free machine (reported as events/s).
func BenchmarkRecorderRun(b *testing.B) {
	prog := isa.MustAssemble("t", `
    movi r1, 0
loop:
    movi r2, 20000
    bge r1, r2, done
    addi r1, r1, 1
    store r0, r1, 0
    br loop
done:
    halt
`)
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		m := MustNew(prog, Config{})
		var rec *Recorder
		rec = NewRecorder(DefaultBatchEvents, nil, func(bt *Batch) { rec.Free(bt) })
		m.AttachTool(rec)
		if res := m.Run(); res.Failed {
			b.Fatal(res.FailMsg)
		}
		rec.Flush()
		steps += m.Steps()
	}
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(steps)/el, "events/s")
	}
}

package vm

import (
	"testing"

	"scaldift/internal/isa"
)

func recordRun(t *testing.T, text string, inputs []int64, batchEvents int, filter func(*Event) bool) []*Batch {
	t.Helper()
	p, err := isa.Assemble("t", text)
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(p, Config{})
	if inputs != nil {
		m.SetInput(0, inputs)
	}
	var out []*Batch
	rec := NewRecorder(batchEvents, filter, func(b *Batch) { out = append(out, b) })
	m.AttachTool(rec)
	if res := m.Run(); res.Failed {
		t.Fatalf("run failed: %s", res.FailMsg)
	}
	rec.Flush()
	return out
}

func TestRecorderSealsAtCapacity(t *testing.T) {
	batches := recordRun(t, `
    movi r1, 0
loop:
    movi r2, 10
    bge r1, r2, done
    addi r1, r1, 1
    br loop
done:
    halt
`, nil, 4, nil)
	if len(batches) < 2 {
		t.Fatalf("expected several batches, got %d", len(batches))
	}
	var last uint64
	total := 0
	for i, b := range batches {
		if len(b.Events) == 0 || len(b.Events) > 4 {
			t.Fatalf("batch %d has %d events, capacity 4", i, len(b.Events))
		}
		if b.Sync {
			t.Fatalf("batch %d unexpectedly sync", i)
		}
		for _, ev := range b.Events {
			if ev.Seq <= last {
				t.Fatalf("sequence order violated: %d after %d", ev.Seq, last)
			}
			last = ev.Seq
			total++
		}
	}
	// Single-threaded, no filter: every non-blocked event recorded.
	if total == 0 {
		t.Fatal("no events recorded")
	}
}

func TestRecorderGroupsCoverContiguousRanges(t *testing.T) {
	// Two threads interleaving: every flush group's batches must
	// jointly cover a contiguous Seq range, disjoint and increasing
	// across groups.
	batches := recordRun(t, `
.data 0, 0
    movi r10, 7
    spawn r20, r10, child
    movi r1, 0
loop:
    movi r2, 30
    bge r1, r2, done
    store r0, r1, 0
    addi r1, r1, 1
    br loop
done:
    join r20
    halt
child:
    movi r1, 0
cloop:
    movi r2, 30
    bge r1, r2, cdone
    store r1, r1, 1
    addi r1, r1, 1
    br cloop
cdone:
    halt
`, nil, 8, nil)
	groups := map[uint64][]*Batch{}
	var order []uint64
	for _, b := range batches {
		if _, ok := groups[b.Group]; !ok {
			order = append(order, b.Group)
		}
		groups[b.Group] = append(groups[b.Group], b)
	}
	var prevMax uint64
	for _, g := range order {
		lo, hi := uint64(1<<62), uint64(0)
		n := 0
		for _, b := range groups[g] {
			for _, ev := range b.Events {
				if ev.Seq < lo {
					lo = ev.Seq
				}
				if ev.Seq > hi {
					hi = ev.Seq
				}
				n++
			}
		}
		if lo <= prevMax {
			t.Fatalf("group %d overlaps or precedes an earlier group (lo %d, prev max %d)", g, lo, prevMax)
		}
		prevMax = hi
		_ = n
	}
}

func TestRecorderSpawnIsSoloSyncBatch(t *testing.T) {
	batches := recordRun(t, `
    movi r10, 7
    spawn r20, r10, child
    join r20
    halt
child:
    halt
`, nil, 64, nil)
	syncs := 0
	for _, b := range batches {
		if b.Sync {
			syncs++
			if len(b.Events) != 1 || b.Events[0].Kind != EvSpawn {
				t.Fatalf("sync batch should hold exactly the spawn event, got %d events", len(b.Events))
			}
		}
	}
	if syncs != 1 {
		t.Fatalf("expected 1 sync batch, got %d", syncs)
	}
}

func TestRecorderFilterAndBlockedDrop(t *testing.T) {
	// IN blocks once (empty channel at first attempt is impossible
	// here since inputs preloaded) — instead check the filter drops
	// what it is told to and blocked events never appear.
	onlyStores := func(ev *Event) bool { return ev.Kind == EvStore }
	batches := recordRun(t, `
    in r1, 0
    store r0, r1, 5
    movi r2, 1
    store r0, r2, 6
    halt
`, []int64{3}, 16, onlyStores)
	n := 0
	for _, b := range batches {
		for _, ev := range b.Events {
			if ev.Kind != EvStore {
				t.Fatalf("filter leaked a %v event", ev.Kind)
			}
			if ev.Blocked {
				t.Fatal("blocked event recorded")
			}
			n++
		}
	}
	if n != 2 {
		t.Fatalf("recorded %d stores, want 2", n)
	}
}

func TestRecorderFreeReusesStorage(t *testing.T) {
	p := isa.MustAssemble("t", `
    movi r1, 0
loop:
    movi r2, 100
    bge r1, r2, done
    addi r1, r1, 1
    br loop
done:
    halt
`)
	m := MustNew(p, Config{})
	var rec *Recorder
	n := 0
	rec = NewRecorder(8, nil, func(b *Batch) {
		n += len(b.Events)
		rec.Free(b) // consumer done with it immediately
	})
	m.AttachTool(rec)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	rec.Flush()
	if n == 0 {
		t.Fatal("no events seen")
	}
}

package vm

import (
	"testing"

	"scaldift/internal/isa"
)

func run(t *testing.T, text string, cfg Config, inputs map[int][]int64) (*Machine, *Result) {
	t.Helper()
	p, err := isa.Assemble("t", text)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ch, words := range inputs {
		m.SetInput(ch, words)
	}
	return m, m.Run()
}

func TestRunSum(t *testing.T) {
	m, res := run(t, `
    in r1, 0
    movi r2, 0
    movi r3, 0
loop:
    bge r3, r1, done
    in r4, 0
    add r2, r2, r4
    addi r3, r3, 1
    br loop
done:
    out r2, 1
    halt
`, Config{}, map[int][]int64{0: {3, 10, 20, 30}})
	if res.Reason != StopAllHalted {
		t.Fatalf("reason = %v (%s)", res.Reason, res.FailMsg)
	}
	if out := m.Output(1); len(out) != 1 || out[0] != 60 {
		t.Fatalf("output = %v", out)
	}
	if res.Steps == 0 || m.Steps() != res.Steps {
		t.Fatalf("steps = %d", res.Steps)
	}
}

func TestALUOps(t *testing.T) {
	m, res := run(t, `
    movi r1, 7
    movi r2, 3
    add r3, r1, r2
    out r3, 0
    sub r3, r1, r2
    out r3, 0
    mul r3, r1, r2
    out r3, 0
    div r3, r1, r2
    out r3, 0
    mod r3, r1, r2
    out r3, 0
    and r3, r1, r2
    out r3, 0
    or r3, r1, r2
    out r3, 0
    xor r3, r1, r2
    out r3, 0
    shl r3, r1, r2
    out r3, 0
    shr r3, r1, r2
    out r3, 0
    cmplt r3, r2, r1
    out r3, 0
    cmpge r3, r2, r1
    out r3, 0
    addi r3, r1, 100
    out r3, 0
    muli r3, r1, -2
    out r3, 0
    andi r3, r1, 6
    out r3, 0
    halt
`, Config{}, nil)
	want := []int64{10, 4, 21, 2, 1, 3, 7, 4, 56, 0, 1, 0, 107, -14, 6}
	got := m.Output(0)
	if res.Failed || len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDivByZeroFaults(t *testing.T) {
	_, res := run(t, `
    movi r1, 1
    movi r2, 0
    div r3, r1, r2
    halt
`, Config{}, nil)
	if !res.Failed || res.Reason != StopFailed {
		t.Fatalf("expected failure, got %+v", res)
	}
	if res.FailPC != 2 {
		t.Fatalf("FailPC = %d", res.FailPC)
	}
}

func TestMemoryAndData(t *testing.T) {
	m, res := run(t, `
.data 5, 6, 7
    movi r1, 0
    load r2, r1, 1   ; r2 = Mem[1] = 6
    movi r3, 100
    store r1, r3, 2  ; Mem[2] = 100
    load r4, r1, 2
    out r2, 0
    out r4, 0
    halt
`, Config{}, nil)
	if res.Failed {
		t.Fatal(res.FailMsg)
	}
	if out := m.Output(0); out[0] != 6 || out[1] != 100 {
		t.Fatalf("out = %v", out)
	}
}

func TestInvalidLoadFaults(t *testing.T) {
	_, res := run(t, `
    movi r1, -5
    load r2, r1, 0
    halt
`, Config{}, nil)
	if !res.Failed {
		t.Fatal("expected fault")
	}
}

func TestAllocBump(t *testing.T) {
	m, res := run(t, `
.data 1, 2, 3, 4
    movi r1, 10
    alloc r2, r1
    alloc r3, r1
    sub r4, r3, r2
    out r2, 0
    out r4, 0
    halt
`, Config{}, nil)
	if res.Failed {
		t.Fatal(res.FailMsg)
	}
	out := m.Output(0)
	if out[0] != 4 { // heap starts after the 4-word data segment
		t.Fatalf("first alloc at %d, want 4", out[0])
	}
	if out[1] != 10 {
		t.Fatalf("alloc spacing = %d, want 10", out[1])
	}
}

func TestCallRet(t *testing.T) {
	m, res := run(t, `
    br main
.func double
    add r2, r1, r1
    ret
.endfunc
main:
    movi r1, 21
    call double
    out r2, 0
    halt
`, Config{}, nil)
	if res.Failed {
		t.Fatal(res.FailMsg)
	}
	if out := m.Output(0); out[0] != 42 {
		t.Fatalf("out = %v", out)
	}
}

func TestRetWithoutCallFaults(t *testing.T) {
	_, res := run(t, "ret\nhalt", Config{}, nil)
	if !res.Failed {
		t.Fatal("expected fault")
	}
}

func TestAssertAndFail(t *testing.T) {
	_, res := run(t, `
    movi r1, 0
    assert r1
    halt
`, Config{}, nil)
	if !res.Failed || res.FailPC != 1 {
		t.Fatalf("res = %+v", res)
	}
	_, res = run(t, "fail", Config{}, nil)
	if !res.Failed {
		t.Fatal("FAIL should fail the run")
	}
	_, res = run(t, `
    movi r1, 5
    assert r1
    halt
`, Config{}, nil)
	if res.Failed {
		t.Fatal("assert on nonzero should pass")
	}
}

func TestInputBlockingAndAppend(t *testing.T) {
	p := isa.MustAssemble("t", `
    in r1, 0
    out r1, 1
    halt
`)
	m := MustNew(p, Config{})
	res := m.Run()
	if res.Reason != StopDeadlock {
		t.Fatalf("expected input-starved deadlock, got %v", res.Reason)
	}
	m.AppendInput(0, 77)
	res = m.Run()
	if res.Reason != StopAllHalted {
		t.Fatalf("after append: %v", res.Reason)
	}
	if out := m.Output(1); out[0] != 77 {
		t.Fatalf("out = %v", out)
	}
}

func TestInAvail(t *testing.T) {
	m, res := run(t, `
loop:
    inavail r1, 0
    beqz r1, done
    in r2, 0
    out r2, 1
    br loop
done:
    halt
`, Config{}, map[int][]int64{0: {1, 2, 3}})
	if res.Failed || res.Reason != StopAllHalted {
		t.Fatalf("res = %+v", res)
	}
	if out := m.Output(1); len(out) != 3 || out[2] != 3 {
		t.Fatalf("out = %v", out)
	}
}

const spawnSumProg = `
.data 0, 0, 0, 0       ; results at 0..3
    movi r10, 0
    spawn r20, r10, worker
    movi r10, 1
    spawn r21, r10, worker
    join r20
    join r21
    load r1, r0, 0
    load r2, r0, 1
    add r3, r1, r2
    out r3, 0
    halt
worker:
    ; arg in r1: slot index; compute (slot+1)*100
    addi r2, r1, 1
    muli r2, r2, 100
    store r1, r2, 0
    halt
`

func TestSpawnJoin(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		m, res := run(t, spawnSumProg, Config{Seed: seed, Quantum: 3}, nil)
		if res.Failed {
			t.Fatal(res.FailMsg)
		}
		if out := m.Output(0); len(out) != 1 || out[0] != 300 {
			t.Fatalf("seed %d: out = %v", seed, out)
		}
	}
}

const lockProg = `
.data 0, 0            ; lock at 0, counter at 1
    movi r10, 0
    spawn r20, r10, worker
    spawn r21, r10, worker
    join r20
    join r21
    load r1, r0, 1
    out r1, 0
    halt
worker:
    movi r3, 0
wloop:
    lock r0, 0
    load r4, r0, 1
    addi r4, r4, 1
    store r0, r4, 1
    unlock r0, 0
    addi r3, r3, 1
    movi r5, 50
    blt r3, r5, wloop
    halt
`

func TestLockMutualExclusion(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		m, res := run(t, lockProg, Config{Seed: seed, Quantum: 2, RandomPreempt: true}, nil)
		if res.Failed {
			t.Fatalf("seed %d: %s", seed, res.FailMsg)
		}
		if out := m.Output(0); out[0] != 100 {
			t.Fatalf("seed %d: counter = %v, want 100", seed, out)
		}
	}
}

func TestUnlockNotHeldFaults(t *testing.T) {
	_, res := run(t, `
.data 0
    unlock r0, 0
    halt
`, Config{}, nil)
	if !res.Failed {
		t.Fatal("expected fault")
	}
}

const barrierProg = `
.data 0, 0, 0, 0, 0    ; barrier at 0..1, slots at 2..4
    movi r10, 0
    spawn r20, r10, worker
    movi r10, 1
    spawn r21, r10, worker
    movi r10, 2
    movi r1, 2
    mov r1, r10
    call work
    join r20
    join r21
    load r1, r0, 2
    load r2, r0, 3
    load r3, r0, 4
    add r1, r1, r2
    add r1, r1, r3
    out r1, 0
    halt
worker:
    call work
    halt
.func work
    ; phase 1: write slot
    addi r4, r1, 2
    movi r5, 1
    store r4, r5, 0
    ; all must arrive before phase 2
    movi r6, 3
    barrier r0, r6, 0
    ; phase 2: read all slots; every slot must be written
    load r7, r0, 2
    load r8, r0, 3
    add r7, r7, r8
    load r8, r0, 4
    add r7, r7, r8
    movi r8, 3
    beq r7, r8, okw
    fail
okw:
    ret
.endfunc
`

func TestBarrierPhases(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		m, res := run(t, barrierProg, Config{Seed: seed, Quantum: 2, RandomPreempt: true}, nil)
		if res.Failed {
			t.Fatalf("seed %d: barrier violated: %s", seed, res.FailMsg)
		}
		if out := m.Output(0); out[0] != 3 {
			t.Fatalf("seed %d: out = %v", seed, out)
		}
	}
}

const flagProg = `
.data 0, 0            ; flag at 0, value at 1
    movi r10, 0
    spawn r20, r10, producer
    flagwt r0, 0
    load r1, r0, 1
    out r1, 0
    join r20
    halt
producer:
    movi r2, 123
    store r0, r2, 1
    flagset r0, 0
    halt
`

func TestFlagSync(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		m, res := run(t, flagProg, Config{Seed: seed, Quantum: 1}, nil)
		if res.Failed {
			t.Fatalf("seed %d: %s", seed, res.FailMsg)
		}
		if out := m.Output(0); out[0] != 123 {
			t.Fatalf("seed %d: out = %v (flag sync broken)", seed, out)
		}
	}
}

func TestCAS(t *testing.T) {
	m, res := run(t, `
.data 5
    movi r1, 0       ; addr
    movi r2, 5       ; expected
    cas r3, r1, r2, 9
    out r3, 0        ; old value 5
    load r4, r1, 0
    out r4, 0        ; now 9
    movi r2, 5
    cas r3, r1, r2, 11
    out r3, 0        ; old value 9, no swap
    load r4, r1, 0
    out r4, 0        ; still 9
    halt
`, Config{}, nil)
	if res.Failed {
		t.Fatal(res.FailMsg)
	}
	got := m.Output(0)
	want := []int64{5, 9, 9, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out = %v, want %v", got, want)
		}
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	outs := func(seed uint64) []SchedSlice {
		p := isa.MustAssemble("t", lockProg)
		m := MustNew(p, Config{Seed: seed, Quantum: 3, RandomPreempt: true, RecordSchedule: true})
		m.Run()
		return m.Schedule()
	}
	a, b := outs(42), outs(42)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := outs(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestForceScheduleReplay(t *testing.T) {
	p := isa.MustAssemble("t", lockProg)
	m1 := MustNew(p, Config{Seed: 7, Quantum: 2, RandomPreempt: true, RecordSchedule: true})
	res1 := m1.Run()
	if res1.Failed {
		t.Fatal(res1.FailMsg)
	}
	sched := m1.Schedule()

	m2 := MustNew(p, Config{Seed: 999, ForceSchedule: sched, RecordSchedule: true})
	res2 := m2.Run()
	if res2.Failed {
		t.Fatal(res2.FailMsg)
	}
	if res1.Steps != res2.Steps {
		t.Fatalf("replay steps %d != original %d", res2.Steps, res1.Steps)
	}
	s2 := m2.Schedule()
	if len(s2) != len(sched) {
		t.Fatalf("replay schedule length %d != %d", len(s2), len(sched))
	}
	for i := range sched {
		if sched[i] != s2[i] {
			t.Fatalf("replay diverged at slice %d: %v vs %v", i, sched[i], s2[i])
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	p := isa.MustAssemble("t", `
    in r1, 0
    out r1, 1
    in r1, 0
    out r1, 1
    halt
`)
	m := MustNew(p, Config{})
	m.SetInput(0, []int64{10, 20})
	// Execute first in+out.
	for i := 0; i < 2; i++ {
		m.Step()
	}
	snap := m.Snapshot()
	res := m.Run()
	if res.Reason != StopAllHalted {
		t.Fatalf("run: %v", res.Reason)
	}
	if out := m.Output(1); len(out) != 2 || out[1] != 20 {
		t.Fatalf("out = %v", out)
	}
	m.Restore(snap)
	if out := m.Output(1); len(out) != 1 {
		t.Fatalf("restored out = %v", out)
	}
	res = m.Run()
	if res.Reason != StopAllHalted {
		t.Fatalf("rerun: %v", res.Reason)
	}
	if out := m.Output(1); len(out) != 2 || out[0] != 10 || out[1] != 20 {
		t.Fatalf("rerun out = %v", out)
	}
}

func TestSnapshotRestoreMidThreaded(t *testing.T) {
	p := isa.MustAssemble("t", lockProg)
	m := MustNew(p, Config{Seed: 5, Quantum: 2, RandomPreempt: true})
	for i := 0; i < 200; i++ {
		if !m.Step() {
			t.Fatal("stopped early")
		}
	}
	snap := m.Snapshot()
	res1 := m.Run()
	out1 := append([]int64(nil), m.Output(0)...)
	m.Restore(snap)
	res2 := m.Run()
	out2 := m.Output(0)
	if res1.Steps != res2.Steps {
		t.Fatalf("steps differ after restore: %d vs %d", res1.Steps, res2.Steps)
	}
	if len(out1) != 1 || len(out2) != 1 || out1[0] != out2[0] {
		t.Fatalf("outputs differ: %v vs %v", out1, out2)
	}
	if out1[0] != 100 {
		t.Fatalf("counter = %d, want 100", out1[0])
	}
}

func TestToolSeesDataflow(t *testing.T) {
	p := isa.MustAssemble("t", `
    in r1, 0
    addi r2, r1, 1
    store r0, r2, 0
    load r3, r0, 0
    out r3, 1
    halt
`)
	m := MustNew(p, Config{MemWords: 70000})
	m.SetInput(0, []int64{41})
	var kinds []EventKind
	var loadAddr, storeAddr int64 = -2, -2
	m.AttachTool(ToolFunc(func(_ *Machine, ev *Event) {
		kinds = append(kinds, ev.Kind)
		switch ev.Kind {
		case EvLoad:
			loadAddr = ev.SrcMem
		case EvStore:
			storeAddr = ev.DstMem
		}
	}))
	res := m.Run()
	if res.Failed {
		t.Fatal(res.FailMsg)
	}
	want := []EventKind{EvInput, EvCompute, EvStore, EvLoad, EvOutput, EvHalt}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if loadAddr != 0 || storeAddr != 0 {
		t.Fatalf("load/store addr = %d/%d", loadAddr, storeAddr)
	}
}

func TestMaxSteps(t *testing.T) {
	_, res := run(t, "loop: br loop", Config{MaxSteps: 1000}, nil)
	if res.Reason != StopMaxSteps {
		t.Fatalf("reason = %v", res.Reason)
	}
	if res.Steps != 1000 {
		t.Fatalf("steps = %d", res.Steps)
	}
}

func TestThreadLimitFaults(t *testing.T) {
	_, res := run(t, `
    movi r1, 0
loop:
    spawn r2, r1, child
    br loop
child:
    halt
`, Config{MaxThreads: 4}, nil)
	if !res.Failed {
		t.Fatal("expected thread-limit fault")
	}
}

func TestR0Discards(t *testing.T) {
	m, res := run(t, `
    movi r0, 99
    movi r1, 0
    out r0, 0
    out r1, 0
    halt
`, Config{}, nil)
	if res.Failed {
		t.Fatal(res.FailMsg)
	}
	if out := m.Output(0); out[0] != 0 || out[1] != 0 {
		t.Fatalf("r0 not discarded: %v", out)
	}
}

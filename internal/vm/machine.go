package vm

import (
	"fmt"

	"scaldift/internal/isa"
)

// ThreadState is the scheduling state of a thread.
type ThreadState uint8

// Thread states.
const (
	Runnable ThreadState = iota
	Blocked
	Halted
)

// blockKind says what a blocked thread is waiting for.
type blockKind uint8

const (
	blockNone blockKind = iota
	blockLock
	blockBarrier
	blockFlag
	blockJoin
	blockInput
)

// Thread is one thread of execution.
type Thread struct {
	ID    int
	PC    int
	Regs  [isa.NumRegs]int64
	Calls []int // return-PC stack
	State ThreadState

	// Blocking bookkeeping.
	waitKind blockKind
	waitAddr int64 // lock/flag/barrier address
	waitGen  int64 // barrier generation observed at arrival
	waitTID  int   // join target
	waitCh   int   // input channel

	// Steps is the count of instructions this thread has executed.
	Steps uint64
}

// Config parameterizes a Machine.
type Config struct {
	// MemWords is the memory size in 64-bit words (default 1<<20).
	MemWords int
	// StackWords reserves a stack region per thread slot at the top
	// of memory (default 4096).
	StackWords int
	// MaxThreads bounds concurrently existing threads (default 16).
	MaxThreads int
	// Quantum is instructions per scheduling slice (default 50).
	Quantum int
	// Seed drives the scheduler's PRNG; runs are deterministic for a
	// given seed, schedule and inputs.
	Seed uint64
	// MaxSteps aborts runaway executions (default 200_000_000).
	MaxSteps uint64
	// RecordSchedule keeps the (tid, steps) slice sequence so the run
	// can be replayed exactly; see Machine.Schedule.
	RecordSchedule bool
	// ForceSchedule, when non-nil, drives scheduling from a recorded
	// slice sequence instead of the PRNG (deterministic replay).
	ForceSchedule []SchedSlice
	// RandomPreempt makes quantum lengths vary pseudo-randomly in
	// [1,Quantum], modeling asynchronous preemption. Without it the
	// scheduler is plain round-robin with fixed quanta.
	RandomPreempt bool
}

func (c *Config) fill() {
	if c.MemWords == 0 {
		c.MemWords = 1 << 20
	}
	if c.StackWords == 0 {
		c.StackWords = 4096
	}
	if c.MaxThreads == 0 {
		c.MaxThreads = 16
	}
	if c.Quantum == 0 {
		c.Quantum = 50
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 200_000_000
	}
}

// SchedSlice is one scheduling decision: thread TID ran Steps
// instructions (or fewer if it blocked/halted first — the recorded
// value is the actual count executed).
type SchedSlice struct {
	TID   int
	Steps int
}

// StopReason says why Run returned.
type StopReason uint8

// Stop reasons.
const (
	StopAllHalted StopReason = iota
	StopFailed               // FAIL/ASSERT/fault
	StopDeadlock             // live threads, none runnable
	StopMaxSteps
)

func (r StopReason) String() string {
	switch r {
	case StopAllHalted:
		return "all threads halted"
	case StopFailed:
		return "failed"
	case StopDeadlock:
		return "deadlock"
	case StopMaxSteps:
		return "max steps exceeded"
	}
	return "unknown"
}

// Result summarizes a completed run.
type Result struct {
	Reason   StopReason
	Steps    uint64
	Failed   bool
	FailPC   int
	FailTID  int
	FailLine int
	FailMsg  string
}

// Machine is a virtual machine instance: one program, shared memory,
// up to MaxThreads threads, attached tools.
type Machine struct {
	Prog *isa.Program
	Cfg  Config
	Mem  []int64

	Threads []*Thread
	cur     int // currently scheduled thread id, -1 none
	budget  int // instructions left in current quantum

	heapNext  int64
	heapLimit int64

	inputs   map[int][]int64
	inputPos map[int]int
	inputSeq int // global count of consumed input words
	outputs  map[int][]int64

	tools []Tool
	ev    Event

	steps    uint64
	rng      rng
	failed   bool
	failPC   int
	failTID  int
	failMsg  string
	stopped  bool
	reason   StopReason
	schedRec []SchedSlice
	schedPos int // position in ForceSchedule
	curSlice SchedSlice
}

// New creates a machine for prog. The data segment is copied to
// address 0; thread 0 starts at instruction 0 with its stack pointer
// (r31) at the top of its stack region.
func New(prog *isa.Program, cfg Config) (*Machine, error) {
	cfg.fill()
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	need := len(prog.Data) + cfg.MaxThreads*cfg.StackWords + 1024
	if cfg.MemWords < need {
		return nil, fmt.Errorf("vm: MemWords %d too small (need >= %d)", cfg.MemWords, need)
	}
	m := &Machine{
		Prog:     prog,
		Cfg:      cfg,
		Mem:      make([]int64, cfg.MemWords),
		inputs:   make(map[int][]int64),
		inputPos: make(map[int]int),
		outputs:  make(map[int][]int64),
		cur:      -1,
		rng:      rng{state: cfg.Seed + 0x9e3779b97f4a7c15},
	}
	copy(m.Mem, prog.Data)
	m.heapNext = int64(len(prog.Data))
	m.heapLimit = int64(cfg.MemWords - cfg.MaxThreads*cfg.StackWords)
	m.newThread(0, nil)
	return m, nil
}

// MustNew is New that panics on error.
func MustNew(prog *isa.Program, cfg Config) *Machine {
	m, err := New(prog, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// newThread creates a thread starting at pc; arg (if non-nil) is
// placed in r1. Returns nil if the thread limit is reached.
func (m *Machine) newThread(pc int, arg *int64) *Thread {
	id := len(m.Threads)
	if id >= m.Cfg.MaxThreads {
		return nil
	}
	t := &Thread{ID: id, PC: pc}
	// Stack regions grow downward from the top of memory; thread i
	// owns [MemWords-(i+1)*StackWords, MemWords-i*StackWords).
	top := int64(m.Cfg.MemWords - id*m.Cfg.StackWords)
	t.Regs[31] = top - 1
	if arg != nil {
		t.Regs[1] = *arg
	}
	m.Threads = append(m.Threads, t)
	return t
}

// AttachTool registers a tool; tools run in attachment order.
func (m *Machine) AttachTool(t Tool) { m.tools = append(m.tools, t) }

// DetachTools removes all tools.
func (m *Machine) DetachTools() { m.tools = nil }

// SetInput replaces the contents of input channel ch.
func (m *Machine) SetInput(ch int, words []int64) {
	m.inputs[ch] = append([]int64(nil), words...)
	m.inputPos[ch] = 0
}

// AppendInput adds words to input channel ch (e.g. requests arriving
// at a server between phases of a test).
func (m *Machine) AppendInput(ch int, words ...int64) {
	m.inputs[ch] = append(m.inputs[ch], words...)
}

// Output returns the words written to output channel ch so far.
func (m *Machine) Output(ch int) []int64 { return m.outputs[ch] }

// Steps returns the global dynamic instruction count.
func (m *Machine) Steps() uint64 { return m.steps }

// Failed reports whether the run has failed (FAIL, ASSERT, or fault).
func (m *Machine) Failed() bool { return m.failed }

// Schedule returns the recorded scheduling slices (RecordSchedule).
func (m *Machine) Schedule() []SchedSlice { return m.schedRec }

// InputsConsumed returns the global count of input words consumed.
func (m *Machine) InputsConsumed() int { return m.inputSeq }

// Thread returns thread tid, or nil.
func (m *Machine) Thread(tid int) *Thread {
	if tid < 0 || tid >= len(m.Threads) {
		return nil
	}
	return m.Threads[tid]
}

// fault marks the machine failed and halts the faulting thread.
func (m *Machine) fault(t *Thread, pc int, format string, args ...any) {
	m.failed = true
	m.failPC = pc
	m.failTID = t.ID
	m.failMsg = fmt.Sprintf(format, args...)
	t.State = Halted
	m.stopped = true
	m.reason = StopFailed
}

// result builds the Result for the current stop state.
func (m *Machine) result() *Result {
	r := &Result{Reason: m.reason, Steps: m.steps, Failed: m.failed,
		FailPC: m.failPC, FailTID: m.failTID, FailMsg: m.failMsg}
	if m.failed {
		r.FailLine = m.Prog.LineOf(m.failPC)
	}
	return r
}

// rng is a splitmix64 PRNG whose state is plain data, so snapshots can
// capture it (math/rand's state is not exposed).
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a pseudo-random int in [0,n).
func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

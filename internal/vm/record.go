package vm

import "sync"

// Batch is a sealed run of copied events, all from one thread and in
// that thread's program order. Event.Seq gives the global order, so a
// consumer holding several batches can always reconstruct the exact
// interleaving the inline engine saw.
type Batch struct {
	TID    int
	Events []Event
	// Group identifies the flush that sealed this batch. The recorder
	// always seals every buffer together, so the batches of one group
	// jointly cover a contiguous range of global sequence numbers, and
	// all events of group g precede all events of group g+1. Consumers
	// that reorder work may do so only within whole groups.
	Group uint64
	// Sync marks a solo thread-communication batch: the recorder
	// sealed every per-thread buffer before emitting it, so the batch
	// is a global ordering point the consumer must apply by itself,
	// after everything emitted before it. Today spawn is the one event
	// that needs this (it writes another thread's register labels);
	// the remaining cross-thread channels are memory addresses, which
	// downstream conflict analysis orders.
	Sync bool
}

// Recorder is a Tool that offloads analysis: instead of running a
// heavyweight tool inline behind every instruction, it copies the
// reused Event into fixed-size per-thread buffers and hands sealed
// batches to a downstream consumer (internal/pipeline). The work on
// the execution thread is one filter check and one struct copy per
// event — the compact event stream of the paper's decoupled-analysis
// model.
//
// Buffers seal when full, when a thread-communication event (spawn)
// arrives, and on Flush. Consumed batches should be returned with
// Free so their storage is reused; Free is safe to call from the
// consumer goroutine.
type Recorder struct {
	batchEvents int
	filter      func(*Event) bool
	emit        func(*Batch)
	bufs        []*Batch // open per-thread buffers, indexed by TID
	group       uint64   // current flush group
	pool        sync.Pool
}

// DefaultBatchEvents is the default per-batch capacity.
const DefaultBatchEvents = 256

// NewRecorder creates a recorder sealing batches of up to batchEvents
// events (DefaultBatchEvents if <= 0). filter, when non-nil, selects
// the events worth copying (blocked events are always dropped); emit
// receives every sealed batch, on the execution thread, in seal
// order.
func NewRecorder(batchEvents int, filter func(*Event) bool, emit func(*Batch)) *Recorder {
	if batchEvents <= 0 {
		batchEvents = DefaultBatchEvents
	}
	r := &Recorder{batchEvents: batchEvents, filter: filter, emit: emit}
	r.pool.New = func() any {
		return &Batch{Events: make([]Event, 0, batchEvents)}
	}
	return r
}

// OnEvent implements Tool: copy the event into its thread's buffer.
func (r *Recorder) OnEvent(m *Machine, ev *Event) {
	if ev.Blocked {
		return
	}
	if ev.Kind == EvSpawn {
		// A communication event: everything recorded so far must be
		// applied before it, and the spawn itself before anything
		// after, so it travels alone between two flushes.
		r.Flush()
		b := r.buf(ev.TID)
		b.Events = append(b.Events, *ev)
		b.Sync = true
		r.seal(ev.TID)
		r.group++
		return
	}
	if r.filter != nil && !r.filter(ev) {
		return
	}
	b := r.buf(ev.TID)
	b.Events = append(b.Events, *ev)
	if len(b.Events) >= r.batchEvents {
		// Seal every buffer, not just the full one: a flush group then
		// covers a contiguous global sequence range, so no sealed
		// batch can ever lag behind already-emitted events of another
		// thread — the invariant downstream reordering relies on.
		r.Flush()
	}
}

// Flush seals every non-empty per-thread buffer and closes the
// current flush group.
func (r *Recorder) Flush() {
	for tid := range r.bufs {
		r.seal(tid)
	}
	r.group++
}

// Free returns a consumed batch's storage to the recorder for reuse.
func (r *Recorder) Free(b *Batch) {
	r.pool.Put(b)
}

// buf returns the open buffer for tid, creating one if needed.
func (r *Recorder) buf(tid int) *Batch {
	for tid >= len(r.bufs) {
		r.bufs = append(r.bufs, nil)
	}
	if r.bufs[tid] == nil {
		b := r.pool.Get().(*Batch)
		b.TID = tid
		b.Events = b.Events[:0]
		b.Sync = false
		r.bufs[tid] = b //scaldift:ignore poolescape the recorder owns the pool; bufs holds at most one in-flight batch per thread until Seal
	}
	return r.bufs[tid]
}

// seal emits tid's buffer if it holds any events.
func (r *Recorder) seal(tid int) {
	if tid >= len(r.bufs) || r.bufs[tid] == nil || len(r.bufs[tid].Events) == 0 {
		return
	}
	b := r.bufs[tid]
	b.Group = r.group
	r.bufs[tid] = nil
	r.emit(b)
}

var _ Tool = (*Recorder)(nil)

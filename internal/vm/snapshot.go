package vm

// Snapshot is a complete copy of mutable machine state: memory,
// threads, heap cursor, input cursors, output lengths, scheduler PRNG
// and step counts. Restoring a snapshot resumes execution exactly
// where it was taken (given the same inputs and schedule source).
//
// Snapshots implement the paper's checkpointing: under the logging
// phase they are taken periodically so that replay can start from the
// last checkpoint before an event of interest instead of from the
// program start.
type Snapshot struct {
	Mem      []int64
	Threads  []Thread
	calls    [][]int
	heapNext int64
	inputPos map[int]int
	inputSeq int
	outLens  map[int]int
	steps    uint64
	rngState uint64
	cur      int
	budget   int
	schedPos int
	curSlice SchedSlice
	failed   bool
	stopped  bool
	reason   StopReason
}

// SizeWords reports the snapshot's memory footprint in 64-bit words
// (the dominant term; thread state is negligible).
func (s *Snapshot) SizeWords() int { return len(s.Mem) }

// Snapshot captures the current machine state.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		Mem:      append([]int64(nil), m.Mem...),
		heapNext: m.heapNext,
		inputPos: make(map[int]int, len(m.inputPos)),
		inputSeq: m.inputSeq,
		outLens:  make(map[int]int, len(m.outputs)),
		steps:    m.steps,
		rngState: m.rng.state,
		cur:      m.cur,
		budget:   m.budget,
		schedPos: m.schedPos,
		curSlice: m.curSlice,
		failed:   m.failed,
		stopped:  m.stopped,
		reason:   m.reason,
	}
	for ch, pos := range m.inputPos {
		s.inputPos[ch] = pos
	}
	for ch, out := range m.outputs {
		s.outLens[ch] = len(out)
	}
	s.Threads = make([]Thread, len(m.Threads))
	s.calls = make([][]int, len(m.Threads))
	for i, t := range m.Threads {
		s.Threads[i] = *t
		s.calls[i] = append([]int(nil), t.Calls...)
	}
	return s
}

// Restore resets the machine to a previously captured snapshot.
// Inputs appended after the snapshot remain appended (the cursor
// rewinds, the data does not), which is exactly what replay wants.
func (m *Machine) Restore(s *Snapshot) {
	copy(m.Mem, s.Mem)
	m.heapNext = s.heapNext
	m.inputSeq = s.inputSeq
	for ch := range m.inputPos {
		delete(m.inputPos, ch)
	}
	for ch, pos := range s.inputPos {
		m.inputPos[ch] = pos
	}
	for ch := range m.outputs {
		if want, ok := s.outLens[ch]; ok {
			m.outputs[ch] = m.outputs[ch][:want]
		} else {
			delete(m.outputs, ch)
		}
	}
	m.steps = s.steps
	m.rng.state = s.rngState
	m.cur = s.cur
	m.budget = s.budget
	m.schedPos = s.schedPos
	m.curSlice = s.curSlice
	m.failed = s.failed
	m.stopped = s.stopped
	m.reason = s.reason
	m.failMsg = ""
	m.Threads = m.Threads[:0]
	for i := range s.Threads {
		t := s.Threads[i]
		t.Calls = append([]int(nil), s.calls[i]...)
		tc := t
		m.Threads = append(m.Threads, &tc)
	}
	m.schedRec = nil
}

// Package vm implements the scaldift virtual machine: a multithreaded
// interpreter for the mini-ISA (internal/isa) with a dynamic-binary-
// instrumentation-style tool API.
//
// The VM plays the role Pin/valgrind play in the original paper: it
// executes programs and hands attached Tools a per-instruction stream
// of dataflow events (destination ← sources over registers and
// memory), control transfers, input/output boundaries, and
// synchronization operations. Instrumentation overhead is real — an
// attached tool literally slows execution down — which is what lets
// the benchmark harness measure slowdown factors the way the paper
// does.
package vm

import "scaldift/internal/isa"

// EventKind classifies an executed instruction for tools.
type EventKind uint8

// Event kinds.
const (
	EvCompute EventKind = iota // ALU / register movement / alloc
	EvLoad                     // memory read
	EvStore                    // memory write
	EvBranch                   // control transfer (cond or uncond)
	EvCall
	EvRet
	EvInput  // IN / INAVAIL
	EvOutput // OUT
	EvSpawn
	EvJoin
	EvLock
	EvUnlock
	EvBarrier
	EvFlag // FLAGSET / FLAGCLR / FLAGWT
	EvCas
	EvHalt
	EvFail
)

// String returns a short name for the event kind.
func (k EventKind) String() string {
	names := [...]string{"compute", "load", "store", "branch", "call", "ret",
		"input", "output", "spawn", "join", "lock", "unlock", "barrier",
		"flag", "cas", "halt", "fail"}
	if int(k) < len(names) {
		return names[k]
	}
	return "event(?)"
}

// NoReg marks an absent register operand in an Event.
const NoReg = -1

// NoAddr marks an absent memory address in an Event.
const NoAddr = int64(-1)

// Event describes one executed instruction to attached tools. The
// machine reuses a single Event value across calls; tools must copy
// anything they retain.
type Event struct {
	Kind EventKind
	TID  int    // executing thread
	Seq  uint64 // global dynamic instruction count (1-based)
	// ThreadSeq is the executing thread's dynamic instruction count
	// (1-based), the per-thread analogue of Seq. Dependence tracking
	// identifies instruction instances by (TID, ThreadSeq), so an
	// offloaded consumer of a recorded (possibly filtered) stream can
	// reconstruct instance ids without replaying the whole schedule.
	// Blocked events repeat the current count; it advances only when
	// the instruction completes.
	ThreadSeq uint64
	PC        int // instruction index
	Instr     *isa.Instr

	// Dataflow: the instruction computed DstReg and/or DstMem from
	// SrcRegs[:NSrc] and/or SrcMem. AddrReg is the register that
	// supplied a memory effective address (a source only under
	// address-taint policies).
	DstReg  int // register written, or NoReg
	DstMem  int64
	SrcRegs [2]int
	NSrc    int
	SrcMem  int64
	AddrReg int

	// Values.
	DstVal int64 // value written to DstReg/DstMem
	Addr   int64 // effective address for load/store/sync, or NoAddr

	// Control.
	Taken  bool // branch outcome
	Target int  // branch target when taken

	// I/O.
	Ch       int   // channel for input/output events
	IOVal    int64 // word read or written
	InputIdx int   // global 0-based index of the input word (IN only)

	// Sync.
	SyncAddr int64 // lock/barrier/flag object address
	Blocked  bool  // instruction blocked instead of completing
}

// reset clears the per-instruction fields; the machine calls it before
// populating the event for each step.
func (ev *Event) reset() {
	ev.DstReg = NoReg
	ev.DstMem = NoAddr
	ev.NSrc = 0
	ev.SrcMem = NoAddr
	ev.AddrReg = NoReg
	ev.Addr = NoAddr
	ev.SyncAddr = NoAddr
	ev.Taken = false
	ev.Blocked = false
	ev.Target = 0
	ev.Ch = 0
	ev.IOVal = 0
	ev.InputIdx = 0
	ev.DstVal = 0
}

// addSrc appends a source register.
func (ev *Event) addSrc(r uint8) {
	ev.SrcRegs[ev.NSrc] = int(r)
	ev.NSrc++
}

// Tool observes the instruction stream. OnEvent is called after the
// instruction's effects are applied to machine state (registers,
// memory, PC), in program order for the executing thread and in global
// schedule order across threads.
type Tool interface {
	OnEvent(m *Machine, ev *Event)
}

// ToolFunc adapts a function to the Tool interface.
type ToolFunc func(m *Machine, ev *Event)

// OnEvent calls f.
func (f ToolFunc) OnEvent(m *Machine, ev *Event) { f(m, ev) }

package vm

import (
	"testing"

	"scaldift/internal/isa"
)

// FuzzRecorder feeds the Recorder random synthetic event streams and
// checks, against a naive model, the flush-group invariants
// internal/pipeline builds on:
//
//   - every recorded event survives, per thread, in program order;
//   - blocked and filtered events never appear (spawn bypasses the
//     filter);
//   - each flush group's batches jointly cover a contiguous range of
//     global sequence numbers: group ranges are disjoint and strictly
//     increasing in emit order, and every recorded event between a
//     group's bounds belongs to that group;
//   - spawn batches travel solo with Sync set, and only they do;
//   - no batch exceeds the configured capacity.
//
// Each fuzz input byte drives one synthetic instruction: two bits of
// thread id, one bit "relevant to the filter", one bit "blocked", and
// a small chance of being a spawn. The first byte picks the batch
// capacity.
func FuzzRecorder(f *testing.F) {
	f.Add([]byte{4, 0x00, 0x01, 0x42, 0x13, 0x80, 0x07})
	f.Add([]byte{1, 0x80, 0x80, 0x80})                   // spawn burst
	f.Add([]byte{7, 0x10, 0x20, 0x30, 0x40, 0x0f, 0x33}) // blocked mix
	f.Add([]byte{2, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55}) // alternating
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		batchEvents := int(data[0]%7) + 1
		stream := data[1:]
		if len(stream) > 4096 {
			stream = stream[:4096]
		}

		relevant := func(ev *Event) bool { return ev.PC%2 == 0 } // "even PCs matter"
		var batches []*Batch
		var rec *Recorder
		rec = NewRecorder(batchEvents, relevant, func(b *Batch) {
			// The recorder recycles freed batches; keep private copies
			// like a real consumer that defers work would.
			cp := &Batch{TID: b.TID, Group: b.Group, Sync: b.Sync,
				Events: append([]Event(nil), b.Events...)}
			batches = append(batches, cp)
			rec.Free(b)
		})

		// Drive the recorder the way the machine does: one reused
		// event value, global and per-thread counters advancing only
		// for non-blocked instructions.
		dummy := isa.Instr{}
		var model []Event // events the recorder must keep, in order
		var steps uint64
		tsteps := map[int]uint64{}
		var ev Event
		for _, b := range stream {
			tid := int(b & 3)
			blocked := b&0x08 != 0
			spawn := !blocked && b&0xf0 == 0x80
			pc := int(b >> 4)

			ev = Event{Kind: EvCompute, TID: tid, PC: pc, Instr: &dummy, Blocked: blocked}
			if spawn {
				ev.Kind = EvSpawn
				ev.DstVal = int64(tid + 1)
			}
			if !blocked {
				steps++
				tsteps[tid]++
			}
			ev.Seq = steps
			ev.ThreadSeq = tsteps[tid]
			rec.OnEvent(nil, &ev)
			if !blocked && (spawn || relevant(&ev)) {
				model = append(model, ev)
			}
		}
		rec.Flush()

		// 1. Per-thread program order and exact content preservation.
		var got []Event
		perTid := map[int][]Event{}
		for bi, b := range batches {
			if len(b.Events) == 0 {
				t.Fatalf("batch %d empty", bi)
			}
			if len(b.Events) > batchEvents {
				t.Fatalf("batch %d holds %d events, capacity %d", bi, len(b.Events), batchEvents)
			}
			if b.Sync != (b.Events[0].Kind == EvSpawn) {
				t.Fatalf("batch %d: Sync=%v but first event is %v", bi, b.Sync, b.Events[0].Kind)
			}
			if b.Sync && len(b.Events) != 1 {
				t.Fatalf("sync batch %d holds %d events, want solo", bi, len(b.Events))
			}
			for _, e := range b.Events {
				if e.Blocked {
					t.Fatal("blocked event recorded")
				}
				if e.TID != b.TID {
					t.Fatalf("batch %d (tid %d) holds an event of tid %d", bi, b.TID, e.TID)
				}
				perTid[b.TID] = append(perTid[b.TID], e)
				got = append(got, e)
			}
		}
		modelTid := map[int][]Event{}
		for _, e := range model {
			modelTid[e.TID] = append(modelTid[e.TID], e)
		}
		for tid, want := range modelTid {
			if len(perTid[tid]) != len(want) {
				t.Fatalf("tid %d: recorded %d events, model %d", tid, len(perTid[tid]), len(want))
			}
			for i := range want {
				if perTid[tid][i] != want[i] {
					t.Fatalf("tid %d event %d diverged from model:\ngot  %+v\nwant %+v",
						tid, i, perTid[tid][i], want[i])
				}
			}
		}
		if len(got) != len(model) {
			t.Fatalf("recorded %d events, model %d", len(got), len(model))
		}

		// 2. Flush groups cover contiguous, disjoint, increasing Seq
		// ranges: walking batches in emit order, group ids must be
		// non-decreasing, and each group's Seq span must both stay
		// above the previous group's and contain every recorded event
		// in between.
		type span struct{ lo, hi uint64 }
		var orderedGroups []uint64
		spans := map[uint64]*span{}
		count := map[uint64]int{}
		lastGroup := uint64(0)
		for bi, b := range batches {
			if bi > 0 && b.Group < lastGroup {
				t.Fatalf("batch %d: group %d after group %d", bi, b.Group, lastGroup)
			}
			lastGroup = b.Group
			sp, ok := spans[b.Group]
			if !ok {
				sp = &span{lo: ^uint64(0)}
				spans[b.Group] = sp
				orderedGroups = append(orderedGroups, b.Group)
			}
			for _, e := range b.Events {
				if e.Seq < sp.lo {
					sp.lo = e.Seq
				}
				if e.Seq > sp.hi {
					sp.hi = e.Seq
				}
				count[b.Group]++
			}
		}
		var prevHi uint64
		for _, g := range orderedGroups {
			sp := spans[g]
			if sp.lo <= prevHi {
				t.Fatalf("group %d (span [%d,%d]) overlaps previous hi %d", g, sp.lo, sp.hi, prevHi)
			}
			// Contiguity against the model: every model event with Seq
			// in [lo,hi] must be in this group.
			n := 0
			for _, e := range model {
				if e.Seq >= sp.lo && e.Seq <= sp.hi {
					n++
				}
			}
			if n != count[g] {
				t.Fatalf("group %d covers [%d,%d] with %d events, but %d recorded events fall in that range",
					g, sp.lo, sp.hi, count[g], n)
			}
			prevHi = sp.hi
		}
	})
}

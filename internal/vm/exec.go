package vm

import "scaldift/internal/isa"

// Run executes until all threads halt, the run fails, deadlock, or
// MaxSteps. It may be called again after AppendInput to continue a
// deadlocked (input-starved) machine.
func (m *Machine) Run() *Result {
	m.stopped = false
	for !m.stopped {
		if !m.Step() {
			break
		}
	}
	return m.result()
}

// Step executes a single instruction on the currently scheduled
// thread, picking a new thread when the quantum expires or the thread
// cannot continue. It returns false when the machine has stopped.
func (m *Machine) Step() bool {
	if m.stopped {
		return false
	}
	if m.steps >= m.Cfg.MaxSteps {
		m.flushSlice()
		m.stopped = true
		m.reason = StopMaxSteps
		return false
	}
	t := m.scheduled()
	if t == nil {
		m.flushSlice()
		m.stopped = true
		if m.liveThreads() == 0 {
			m.reason = StopAllHalted
		} else {
			m.reason = StopDeadlock
		}
		return false
	}
	m.exec(t)
	return !m.stopped
}

// liveThreads counts threads that have not halted.
func (m *Machine) liveThreads() int {
	n := 0
	for _, t := range m.Threads {
		if t.State != Halted {
			n++
		}
	}
	return n
}

// tryUnblock re-evaluates a blocked thread's wait condition. Waking
// threads do not advance their PC (except barriers): the blocking
// instruction re-executes, now succeeding, so tools observe a proper
// completion event. A barrier arrival was already counted at block
// time, so a woken barrier thread resumes after the instruction.
func (m *Machine) tryUnblock(t *Thread) bool {
	if t.State != Blocked {
		return t.State == Runnable
	}
	switch t.waitKind {
	case blockLock:
		if m.Mem[t.waitAddr] == 0 {
			t.State = Runnable
		}
	case blockFlag:
		if m.Mem[t.waitAddr] != 0 {
			t.State = Runnable
		}
	case blockBarrier:
		if m.Mem[t.waitAddr+1] != t.waitGen {
			t.State = Runnable
			t.PC++
		}
	case blockJoin:
		if tt := m.Thread(t.waitTID); tt == nil || tt.State == Halted {
			t.State = Runnable
		}
	case blockInput:
		if m.inputPos[t.waitCh] < len(m.inputs[t.waitCh]) {
			t.State = Runnable
		}
	}
	if t.State == Runnable {
		t.waitKind = blockNone
	}
	return t.State == Runnable
}

// scheduled returns the thread to execute next, consuming quantum
// budget and making scheduling decisions at quantum boundaries.
func (m *Machine) scheduled() *Thread {
	if m.cur >= 0 && m.budget > 0 {
		t := m.Threads[m.cur]
		if t.State == Runnable {
			return t
		}
	}
	m.flushSlice()
	// Collect runnable threads, waking any whose condition now holds.
	var runnable []int
	for _, t := range m.Threads {
		if m.tryUnblock(t) {
			runnable = append(runnable, t.ID)
		}
	}
	if len(runnable) == 0 {
		m.cur = -1
		return nil
	}
	var pick, quantum int
	if m.schedPos < len(m.Cfg.ForceSchedule) {
		sl := m.Cfg.ForceSchedule[m.schedPos]
		m.schedPos++
		pick = -1
		for _, tid := range runnable {
			if tid == sl.TID {
				pick = tid
				break
			}
		}
		if pick < 0 {
			// Forced thread not runnable (perturbed log); fall back.
			pick = runnable[0]
		}
		quantum = sl.Steps
		if quantum <= 0 {
			quantum = m.Cfg.Quantum
		}
	} else {
		idx := 0
		if len(runnable) > 1 {
			idx = m.rng.intn(len(runnable))
		}
		pick = runnable[idx]
		quantum = m.Cfg.Quantum
		if m.Cfg.RandomPreempt {
			quantum = 1 + m.rng.intn(m.Cfg.Quantum)
		}
	}
	m.cur = pick
	m.budget = quantum
	m.curSlice = SchedSlice{TID: pick, Steps: 0}
	return m.Threads[pick]
}

// flushSlice records the just-finished scheduling slice.
func (m *Machine) flushSlice() {
	if m.Cfg.RecordSchedule && m.curSlice.Steps > 0 {
		m.schedRec = append(m.schedRec, m.curSlice)
	}
	m.curSlice = SchedSlice{}
}

// block parks thread t on the given wait condition without advancing
// its PC (the blocking instruction logically re-executes on wake).
func (m *Machine) block(t *Thread, kind blockKind) {
	t.State = Blocked
	t.waitKind = kind
	m.budget = 0
}

// exec interprets one instruction on t and emits the tool event.
func (m *Machine) exec(t *Thread) {
	ins := &m.Prog.Instrs[t.PC]
	ev := &m.ev
	ev.reset()
	ev.TID = t.ID
	ev.PC = t.PC
	ev.Instr = ins
	ev.Kind = EvCompute
	// Number the attempted instruction, globally and per thread;
	// overwritten below once the outcome (completed vs blocked) is
	// known. Stamping here matters for the fault paths, which notify
	// early: without it the shared event would carry the numbers of
	// whatever instruction (possibly another thread's) ran last, and
	// consumers that order by Seq would misplace the fault.
	ev.Seq = m.steps + 1
	ev.ThreadSeq = t.Steps + 1

	pc := t.PC
	next := pc + 1
	blocked := false

	switch ins.Op {
	case isa.NOP:
	case isa.YIELD:
		m.budget = 0
	case isa.HALT:
		ev.Kind = EvHalt
		t.State = Halted
	case isa.FAIL:
		ev.Kind = EvFail
		m.notify(ev, t, pc) // deliver before stopping
		m.fault(t, pc, "explicit FAIL")
		return
	case isa.ASSERT:
		ev.addSrc(ins.Rs1)
		if t.Regs[ins.Rs1] == 0 {
			ev.Kind = EvFail
			m.notify(ev, t, pc)
			m.fault(t, pc, "assertion failed (r%d == 0)", ins.Rs1)
			return
		}
	case isa.MOVI:
		ev.DstReg = int(ins.Rd)
		ev.DstVal = ins.Imm
		m.setReg(t, ins.Rd, ins.Imm)
	case isa.MOV:
		ev.DstReg = int(ins.Rd)
		ev.addSrc(ins.Rs1)
		ev.DstVal = t.Regs[ins.Rs1]
		m.setReg(t, ins.Rd, t.Regs[ins.Rs1])
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR,
		isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE:
		a, b := t.Regs[ins.Rs1], t.Regs[ins.Rs2]
		if (ins.Op == isa.DIV || ins.Op == isa.MOD) && b == 0 {
			m.notify(ev, t, pc)
			m.fault(t, pc, "division by zero")
			return
		}
		v := alu(ins.Op, a, b)
		ev.DstReg = int(ins.Rd)
		ev.addSrc(ins.Rs1)
		ev.addSrc(ins.Rs2)
		ev.DstVal = v
		m.setReg(t, ins.Rd, v)
	case isa.ADDI, isa.MULI, isa.ANDI:
		a := t.Regs[ins.Rs1]
		var v int64
		switch ins.Op {
		case isa.ADDI:
			v = a + ins.Imm
		case isa.MULI:
			v = a * ins.Imm
		case isa.ANDI:
			v = a & ins.Imm
		}
		ev.DstReg = int(ins.Rd)
		ev.addSrc(ins.Rs1)
		ev.DstVal = v
		m.setReg(t, ins.Rd, v)
	case isa.LOAD:
		addr := t.Regs[ins.Rs1] + ins.Imm
		if !m.validAddr(addr) {
			m.notify(ev, t, pc)
			m.fault(t, pc, "load from invalid address %d", addr)
			return
		}
		v := m.Mem[addr]
		ev.Kind = EvLoad
		ev.DstReg = int(ins.Rd)
		ev.SrcMem = addr
		ev.Addr = addr
		ev.AddrReg = int(ins.Rs1)
		ev.DstVal = v
		m.setReg(t, ins.Rd, v)
	case isa.STORE:
		addr := t.Regs[ins.Rs1] + ins.Imm
		if !m.validAddr(addr) {
			m.notify(ev, t, pc)
			m.fault(t, pc, "store to invalid address %d", addr)
			return
		}
		v := t.Regs[ins.Rs2]
		ev.Kind = EvStore
		ev.DstMem = addr
		ev.Addr = addr
		ev.AddrReg = int(ins.Rs1)
		ev.addSrc(ins.Rs2)
		ev.DstVal = v
		m.Mem[addr] = v
	case isa.ALLOC:
		n := t.Regs[ins.Rs1]
		if n < 0 || m.heapNext+n > m.heapLimit {
			m.notify(ev, t, pc)
			m.fault(t, pc, "alloc of %d words failed (heap %d..%d)", n, m.heapNext, m.heapLimit)
			return
		}
		addr := m.heapNext
		m.heapNext += n
		ev.DstReg = int(ins.Rd)
		ev.addSrc(ins.Rs1)
		ev.DstVal = addr
		m.setReg(t, ins.Rd, addr)
	case isa.BR:
		ev.Kind = EvBranch
		ev.Taken = true
		ev.Target = ins.Target
		next = ins.Target
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		a, b := t.Regs[ins.Rs1], t.Regs[ins.Rs2]
		taken := false
		switch ins.Op {
		case isa.BEQ:
			taken = a == b
		case isa.BNE:
			taken = a != b
		case isa.BLT:
			taken = a < b
		case isa.BGE:
			taken = a >= b
		}
		ev.Kind = EvBranch
		ev.addSrc(ins.Rs1)
		ev.addSrc(ins.Rs2)
		ev.Taken = taken
		ev.Target = ins.Target
		if taken {
			next = ins.Target
		}
	case isa.BEQZ, isa.BNEZ:
		a := t.Regs[ins.Rs1]
		taken := (ins.Op == isa.BEQZ && a == 0) || (ins.Op == isa.BNEZ && a != 0)
		ev.Kind = EvBranch
		ev.addSrc(ins.Rs1)
		ev.Taken = taken
		ev.Target = ins.Target
		if taken {
			next = ins.Target
		}
	case isa.CALL:
		ev.Kind = EvCall
		ev.Taken = true
		ev.Target = ins.Target
		t.Calls = append(t.Calls, pc+1)
		next = ins.Target
	case isa.BRR, isa.CALLR:
		target := t.Regs[ins.Rs1]
		ev.Kind = EvBranch
		if ins.Op == isa.CALLR {
			ev.Kind = EvCall
		}
		ev.addSrc(ins.Rs1)
		ev.Taken = true
		if target < 0 || target >= int64(len(m.Prog.Instrs)) {
			m.notify(ev, t, pc)
			m.fault(t, pc, "indirect jump to invalid target %d", target)
			return
		}
		ev.Target = int(target)
		if ins.Op == isa.CALLR {
			t.Calls = append(t.Calls, pc+1)
		}
		next = int(target)
	case isa.RET:
		ev.Kind = EvRet
		ev.Taken = true
		if len(t.Calls) == 0 {
			m.notify(ev, t, pc)
			m.fault(t, pc, "return with empty call stack")
			return
		}
		next = t.Calls[len(t.Calls)-1]
		t.Calls = t.Calls[:len(t.Calls)-1]
		ev.Target = next
	case isa.IN:
		ch := int(ins.Imm)
		pos := m.inputPos[ch]
		if pos >= len(m.inputs[ch]) {
			t.waitCh = ch
			m.block(t, blockInput)
			ev.Kind = EvInput
			ev.Blocked = true
			blocked = true
			break
		}
		v := m.inputs[ch][pos]
		m.inputPos[ch] = pos + 1
		idx := m.inputSeq
		m.inputSeq++
		ev.Kind = EvInput
		ev.DstReg = int(ins.Rd)
		ev.DstVal = v
		ev.Ch = ch
		ev.IOVal = v
		ev.InputIdx = idx
		m.setReg(t, ins.Rd, v)
	case isa.INAVAIL:
		ch := int(ins.Imm)
		v := int64(len(m.inputs[ch]) - m.inputPos[ch])
		ev.Kind = EvCompute // avail count is not a taint source
		ev.DstReg = int(ins.Rd)
		ev.DstVal = v
		m.setReg(t, ins.Rd, v)
	case isa.OUT:
		ch := int(ins.Imm)
		v := t.Regs[ins.Rs1]
		m.outputs[ch] = append(m.outputs[ch], v)
		ev.Kind = EvOutput
		ev.addSrc(ins.Rs1)
		ev.Ch = ch
		ev.IOVal = v
	case isa.SPAWN:
		arg := t.Regs[ins.Rs1]
		nt := m.newThread(ins.Target, &arg)
		if nt == nil {
			m.notify(ev, t, pc)
			m.fault(t, pc, "thread limit (%d) exceeded", m.Cfg.MaxThreads)
			return
		}
		ev.Kind = EvSpawn
		ev.DstReg = int(ins.Rd)
		ev.addSrc(ins.Rs1)
		ev.DstVal = int64(nt.ID)
		ev.Target = ins.Target
		m.setReg(t, ins.Rd, int64(nt.ID))
	case isa.JOIN:
		target := int(t.Regs[ins.Rs1])
		ev.Kind = EvJoin
		ev.addSrc(ins.Rs1)
		if tt := m.Thread(target); tt != nil && tt.State != Halted {
			t.waitTID = target
			m.block(t, blockJoin)
			ev.Blocked = true
			blocked = true
		}
	case isa.LOCK:
		addr := t.Regs[ins.Rs1] + ins.Imm
		if !m.validAddr(addr) {
			m.notify(ev, t, pc)
			m.fault(t, pc, "lock at invalid address %d", addr)
			return
		}
		ev.Kind = EvLock
		ev.SyncAddr = addr
		ev.Addr = addr
		if m.Mem[addr] == 0 {
			m.Mem[addr] = int64(t.ID) + 1
		} else {
			t.waitAddr = addr
			m.block(t, blockLock)
			ev.Blocked = true
			blocked = true
		}
	case isa.UNLOCK:
		addr := t.Regs[ins.Rs1] + ins.Imm
		if !m.validAddr(addr) {
			m.notify(ev, t, pc)
			m.fault(t, pc, "unlock at invalid address %d", addr)
			return
		}
		ev.Kind = EvUnlock
		ev.SyncAddr = addr
		ev.Addr = addr
		if m.Mem[addr] != int64(t.ID)+1 {
			m.notify(ev, t, pc)
			m.fault(t, pc, "unlock of lock %d not held by thread %d", addr, t.ID)
			return
		}
		m.Mem[addr] = 0
	case isa.BARRIER:
		// A barrier object is two words: Mem[addr]=arrival count,
		// Mem[addr+1]=generation.
		addr := t.Regs[ins.Rs1] + ins.Imm
		count := t.Regs[ins.Rs2]
		if !m.validAddr(addr) || !m.validAddr(addr+1) {
			m.notify(ev, t, pc)
			m.fault(t, pc, "barrier at invalid address %d", addr)
			return
		}
		ev.Kind = EvBarrier
		ev.SyncAddr = addr
		ev.Addr = addr
		m.Mem[addr]++
		if m.Mem[addr] >= count {
			m.Mem[addr] = 0
			m.Mem[addr+1]++ // release the generation
		} else {
			t.waitAddr = addr
			t.waitGen = m.Mem[addr+1]
			m.block(t, blockBarrier)
			ev.Blocked = true
			blocked = true
		}
	case isa.FLAGSET, isa.FLAGCLR:
		addr := t.Regs[ins.Rs1] + ins.Imm
		if !m.validAddr(addr) {
			m.notify(ev, t, pc)
			m.fault(t, pc, "flag at invalid address %d", addr)
			return
		}
		var v int64
		if ins.Op == isa.FLAGSET {
			v = 1
		}
		ev.Kind = EvFlag
		ev.SyncAddr = addr
		ev.Addr = addr
		ev.DstMem = addr
		ev.DstVal = v
		m.Mem[addr] = v
	case isa.FLAGWT:
		addr := t.Regs[ins.Rs1] + ins.Imm
		if !m.validAddr(addr) {
			m.notify(ev, t, pc)
			m.fault(t, pc, "flag at invalid address %d", addr)
			return
		}
		ev.Kind = EvFlag
		ev.SyncAddr = addr
		ev.Addr = addr
		if m.Mem[addr] == 0 {
			t.waitAddr = addr
			m.block(t, blockFlag)
			ev.Blocked = true
			blocked = true
		}
	case isa.CAS:
		addr := t.Regs[ins.Rs1]
		if !m.validAddr(addr) {
			m.notify(ev, t, pc)
			m.fault(t, pc, "cas at invalid address %d", addr)
			return
		}
		old := m.Mem[addr]
		ev.Kind = EvCas
		ev.SyncAddr = addr
		ev.Addr = addr
		ev.DstReg = int(ins.Rd)
		ev.addSrc(ins.Rs2)
		ev.SrcMem = addr
		ev.DstVal = old
		if old == t.Regs[ins.Rs2] {
			m.Mem[addr] = ins.Imm
			ev.DstMem = addr
		}
		m.setReg(t, ins.Rd, old)
	default:
		m.notify(ev, t, pc)
		m.fault(t, pc, "unimplemented opcode %v", ins.Op)
		return
	}

	if blocked {
		ev.Seq = m.steps
	} else {
		t.PC = next
		t.Steps++
		m.steps++
		m.curSlice.Steps++
		m.budget--
		ev.Seq = m.steps
	}
	ev.ThreadSeq = t.Steps
	m.notify(ev, t, pc)
	if t.State == Halted {
		m.budget = 0
	}
}

// notify delivers the event to every attached tool.
func (m *Machine) notify(ev *Event, _ *Thread, _ int) {
	for _, tool := range m.tools {
		tool.OnEvent(m, ev)
	}
}

// setReg writes a register; r0 is the discard register.
func (m *Machine) setReg(t *Thread, r uint8, v int64) {
	if r != 0 {
		t.Regs[r] = v
	}
}

// validAddr reports whether addr is a legal word address.
func (m *Machine) validAddr(addr int64) bool {
	return addr >= 0 && addr < int64(len(m.Mem))
}

// alu evaluates a three-register ALU op.
func alu(op isa.Op, a, b int64) int64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.MUL:
		return a * b
	case isa.DIV:
		return a / b
	case isa.MOD:
		return a % b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	case isa.SHL:
		return a << uint64(b&63)
	case isa.SHR:
		return int64(uint64(a) >> uint64(b&63))
	}
	return boolToInt(cmp(op, a, b))
}

func cmp(op isa.Op, a, b int64) bool {
	switch op {
	case isa.CMPEQ:
		return a == b
	case isa.CMPNE:
		return a != b
	case isa.CMPLT:
		return a < b
	case isa.CMPLE:
		return a <= b
	case isa.CMPGT:
		return a > b
	case isa.CMPGE:
		return a >= b
	}
	return false
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

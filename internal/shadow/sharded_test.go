package shadow

import (
	"sync"
	"testing"
)

func TestShardedRoundsToPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 1}, {1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		if got := NewSharded[bool](c.ask).Shards(); got != c.want {
			t.Errorf("NewSharded(%d).Shards() = %d, want %d", c.ask, got, c.want)
		}
	}
}

func TestShardedMatchesMemSequential(t *testing.T) {
	s := NewSharded[int32](4)
	m := NewMem[int32]()
	// Mixed positive, negative, and page-boundary addresses.
	addrs := []int64{0, 1, 1023, 1024, 1025, -1, -1024, -1025, 5 << 20, 3*1024 - 1, 3*1024 + 1}
	for i, a := range addrs {
		v := int32(i + 1)
		s.Set(a, v)
		m.Set(a, v)
	}
	for _, a := range addrs {
		if s.Get(a) != m.Get(a) {
			t.Fatalf("addr %d: sharded %d, mem %d", a, s.Get(a), m.Get(a))
		}
	}
	if s.Tainted() != m.Tainted() {
		t.Fatalf("tainted: sharded %d, mem %d", s.Tainted(), m.Tainted())
	}
	if s.SizeWords() != m.SizeWords() {
		t.Fatalf("size: sharded %d, mem %d", s.SizeWords(), m.SizeWords())
	}
	// Unset and clear behave the same.
	s.Set(addrs[0], 0)
	m.Set(addrs[0], 0)
	if s.Tainted() != m.Tainted() {
		t.Fatal("tainted diverged after zero write")
	}
	got := map[int64]int32{}
	s.Range(func(a int64, v int32) bool { got[a] = v; return true })
	want := map[int64]int32{}
	m.Range(func(a int64, v int32) bool { want[a] = v; return true })
	if len(got) != len(want) {
		t.Fatalf("range: %d cells vs %d", len(got), len(want))
	}
	for a, v := range want {
		if got[a] != v {
			t.Fatalf("range[%d] = %d, want %d", a, got[a], v)
		}
	}
	s.Clear()
	if s.Tainted() != 0 || s.Pages() != 0 {
		t.Fatal("clear failed")
	}
}

func TestShardedConcurrentDisjointWriters(t *testing.T) {
	// The pipeline's contract: concurrent workers touch disjoint
	// addresses; the shard locks must make the page maps safe anyway.
	s := NewSharded[int64](8)
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 1_000_000
			for i := int64(0); i < perWriter; i++ {
				s.Set(base+i*3, base+i) // stride across pages and shards
				if got := s.Get(base + i*3); got != base+i {
					t.Errorf("writer %d: readback %d != %d", w, got, base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := writers*perWriter - 1 // i=0 of writer 0 stores the zero value
	if got := s.Tainted(); got != want {
		t.Fatalf("tainted = %d, want %d", got, want)
	}
}

package shadow

import "sync"

// Sharded is a shadow memory partitioned by address range across
// independently locked paged Mems. The offloaded DIFT pipeline's
// workers (internal/pipeline) propagate different threads' batches
// concurrently; their windows are conflict-checked to touch disjoint
// addresses, and the per-shard locks make the page maps themselves
// safe for the concurrent allocations those disjoint updates perform.
//
// Sharding is by page index, so neighbouring words share a shard (and
// a lock acquisition pattern with spatial locality) while distinct
// address ranges spread across shards.
type Sharded[T comparable] struct {
	shards []memShard[T]
	mask   int64
}

type memShard[T comparable] struct {
	mu  sync.Mutex
	mem *Mem[T]
	// Pad each shard to its own cache line so concurrent workers do
	// not false-share the locks.
	_ [64 - 8 - 8]byte
}

// NewSharded returns a sharded shadow memory with at least the given
// shard count (rounded up to a power of two, minimum 1).
func NewSharded[T comparable](shards int) *Sharded[T] {
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Sharded[T]{shards: make([]memShard[T], n), mask: int64(n - 1)}
	for i := range s.shards {
		s.shards[i].mem = NewMem[T]()
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded[T]) Shards() int { return len(s.shards) }

func (s *Sharded[T]) shard(addr int64) *memShard[T] {
	// Masking the page index keeps the shard non-negative for
	// negative addresses too.
	return &s.shards[(addr>>PageBits)&s.mask]
}

// Get returns the cell at addr (zero value if never set).
func (s *Sharded[T]) Get(addr int64) T {
	sh := s.shard(addr)
	sh.mu.Lock()
	v := sh.mem.Get(addr)
	sh.mu.Unlock()
	return v
}

// Set writes the cell at addr.
func (s *Sharded[T]) Set(addr int64, v T) {
	sh := s.shard(addr)
	sh.mu.Lock()
	sh.mem.Set(addr, v)
	sh.mu.Unlock()
}

// Clear resets all shadow state.
func (s *Sharded[T]) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.mem.Clear()
		sh.mu.Unlock()
	}
}

// Tainted returns the number of words currently holding a non-zero
// cell.
func (s *Sharded[T]) Tainted() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.mem.Tainted()
		sh.mu.Unlock()
	}
	return n
}

// Pages returns the number of allocated shadow pages across shards.
func (s *Sharded[T]) Pages() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.mem.Pages()
		sh.mu.Unlock()
	}
	return n
}

// SizeWords estimates the shadow footprint in T-cells.
func (s *Sharded[T]) SizeWords() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.mem.SizeWords()
		sh.mu.Unlock()
	}
	return n
}

// Range calls f for every non-zero cell, shard by shard, holding the
// shard's lock during its iteration; f must not call back into s. If
// f returns false, iteration stops.
func (s *Sharded[T]) Range(f func(addr int64, v T) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		stop := false
		sh.mem.Range(func(addr int64, v T) bool {
			if !f(addr, v) {
				stop = true
				return false
			}
			return true
		})
		sh.mu.Unlock()
		if stop {
			return
		}
	}
}

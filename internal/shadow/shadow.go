// Package shadow provides paged shadow state keyed by word address.
//
// DIFT engines associate a taint cell with every machine word
// (registers and memory). Register files are small fixed arrays;
// memory shadow uses a paged map so that the common case — most of
// memory untainted — costs nothing, which is how the paper's tools
// keep the memory overhead of taint tracking tolerable.
//
// Two memory shapes live here. Mem is the single-goroutine paged map
// the inline engine uses. Epoch partitions memory across Mems by page
// index and coordinates concurrent access by epoch-scoped shard
// ownership instead of locks: the pipeline's coordinator assigns
// shards to workers before each window dispatch, workers access only
// their owned shards through Views, and the dispatch/barrier pair is
// the sole fence (concurrency contract on the Epoch type; enforced by
// the epochfence analyzer and a per-access ownership check).
package shadow

// PageBits sets the shadow page size (1<<PageBits words per page).
const PageBits = 10

const pageSize = 1 << PageBits
const pageMask = pageSize - 1

// Mem is a paged shadow memory of cells of type T. The zero value of
// T means "untainted"; pages are allocated on first tainted write and
// never returned while the Mem lives.
type Mem[T comparable] struct {
	pages map[int64]*[pageSize]T
	zero  T
	// Touched counts words ever written with a non-zero cell; it
	// backs the memory-overhead statistics.
	touched int
}

// NewMem returns an empty shadow memory.
func NewMem[T comparable]() *Mem[T] {
	return &Mem[T]{pages: make(map[int64]*[pageSize]T)}
}

// Get returns the cell at addr (zero value if never set).
func (m *Mem[T]) Get(addr int64) T {
	if p, ok := m.pages[addr>>PageBits]; ok {
		return p[addr&pageMask]
	}
	return m.zero
}

// Set writes the cell at addr. Writing the zero value to an address
// whose page is unallocated is free.
func (m *Mem[T]) Set(addr int64, v T) {
	pidx := addr >> PageBits
	p, ok := m.pages[pidx]
	if !ok {
		if v == m.zero {
			return
		}
		p = new([pageSize]T)
		m.pages[pidx] = p
	}
	if p[addr&pageMask] == m.zero && v != m.zero {
		m.touched++
	} else if p[addr&pageMask] != m.zero && v == m.zero {
		m.touched--
	}
	p[addr&pageMask] = v
}

// Clear resets all shadow state.
func (m *Mem[T]) Clear() {
	m.pages = make(map[int64]*[pageSize]T)
	m.touched = 0
}

// Pages returns the number of allocated shadow pages.
func (m *Mem[T]) Pages() int { return len(m.pages) }

// Tainted returns the number of words currently holding a non-zero
// cell.
func (m *Mem[T]) Tainted() int { return m.touched }

// Range calls f for every non-zero cell. Iteration order is
// unspecified. If f returns false, iteration stops.
func (m *Mem[T]) Range(f func(addr int64, v T) bool) {
	for pidx, p := range m.pages {
		base := pidx << PageBits
		for i := 0; i < pageSize; i++ {
			if p[i] != m.zero {
				if !f(base+int64(i), p[i]) {
					return
				}
			}
		}
	}
}

// SizeWords estimates the shadow footprint in T-cells (allocated
// pages × page size), the figure used for memory-overhead reporting.
func (m *Mem[T]) SizeWords() int { return len(m.pages) * pageSize }

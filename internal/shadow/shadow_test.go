package shadow

import (
	"testing"
	"testing/quick"
)

func TestGetSetClear(t *testing.T) {
	m := NewMem[bool]()
	if m.Get(100) {
		t.Fatal("fresh memory should be untainted")
	}
	m.Set(100, true)
	if !m.Get(100) {
		t.Fatal("set lost")
	}
	if m.Tainted() != 1 || m.Pages() != 1 {
		t.Fatalf("tainted=%d pages=%d", m.Tainted(), m.Pages())
	}
	m.Set(100, false)
	if m.Get(100) || m.Tainted() != 0 {
		t.Fatal("unset failed")
	}
	m.Set(5, true)
	m.Clear()
	if m.Get(5) || m.Pages() != 0 {
		t.Fatal("clear failed")
	}
}

func TestZeroWriteAllocatesNothing(t *testing.T) {
	m := NewMem[int32]()
	for a := int64(0); a < 1<<20; a += 1 << PageBits {
		m.Set(a, 0)
	}
	if m.Pages() != 0 {
		t.Fatalf("zero writes allocated %d pages", m.Pages())
	}
}

func TestSparsePages(t *testing.T) {
	m := NewMem[int32]()
	m.Set(0, 1)
	m.Set(1<<30, 2)
	if m.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", m.Pages())
	}
	if m.Get(0) != 1 || m.Get(1<<30) != 2 {
		t.Fatal("values lost")
	}
}

func TestRange(t *testing.T) {
	m := NewMem[int32]()
	want := map[int64]int32{3: 30, 5000: 50, 123456: 70}
	for a, v := range want {
		m.Set(a, v)
	}
	got := map[int64]int32{}
	m.Range(func(a int64, v int32) bool {
		got[a] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for a, v := range want {
		if got[a] != v {
			t.Fatalf("got[%d] = %d, want %d", a, got[a], v)
		}
	}
	// Early stop.
	n := 0
	m.Range(func(int64, int32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestTaintedCountProperty(t *testing.T) {
	// Property: after any sequence of sets, Tainted equals the number
	// of addresses with a non-zero value.
	f := func(addrs []uint16, vals []int8) bool {
		m := NewMem[int8]()
		ref := map[int64]int8{}
		for i, a := range addrs {
			var v int8
			if i < len(vals) {
				v = vals[i]
			}
			m.Set(int64(a), v)
			if v == 0 {
				delete(ref, int64(a))
			} else {
				ref[int64(a)] = v
			}
		}
		if m.Tainted() != len(ref) {
			return false
		}
		for a, v := range ref {
			if m.Get(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

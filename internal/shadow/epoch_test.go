package shadow

import (
	"sync"
	"testing"
)

func TestEpochRoundsToPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 1}, {1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		if got := NewEpoch[bool](c.ask).Shards(); got != c.want {
			t.Errorf("NewEpoch(%d).Shards() = %d, want %d", c.ask, got, c.want)
		}
	}
}

func TestEpochMatchesMemSequential(t *testing.T) {
	e := NewEpoch[int32](4)
	v := e.ClaimAll()
	m := NewMem[int32]()
	// Mixed positive, negative, and page-boundary addresses.
	addrs := []int64{0, 1, 1023, 1024, 1025, -1, -1024, -1025, 5 << 20, 3*1024 - 1, 3*1024 + 1}
	for i, a := range addrs {
		val := int32(i + 1)
		v.Set(a, val)
		m.Set(a, val)
	}
	for _, a := range addrs {
		if v.Get(a) != m.Get(a) {
			t.Fatalf("addr %d: epoch view %d, mem %d", a, v.Get(a), m.Get(a))
		}
		if e.Get(a) != m.Get(a) {
			t.Fatalf("addr %d: epoch %d, mem %d", a, e.Get(a), m.Get(a))
		}
	}
	if e.Tainted() != m.Tainted() {
		t.Fatalf("tainted: epoch %d, mem %d", e.Tainted(), m.Tainted())
	}
	if e.SizeWords() != m.SizeWords() {
		t.Fatalf("size: epoch %d, mem %d", e.SizeWords(), m.SizeWords())
	}
	// Unset and clear behave the same.
	v.Set(addrs[0], 0)
	m.Set(addrs[0], 0)
	if e.Tainted() != m.Tainted() {
		t.Fatal("tainted diverged after zero write")
	}
	got := map[int64]int32{}
	e.Range(func(a int64, val int32) bool { got[a] = val; return true })
	want := map[int64]int32{}
	m.Range(func(a int64, val int32) bool { want[a] = val; return true })
	if len(got) != len(want) {
		t.Fatalf("range: %d cells vs %d", len(got), len(want))
	}
	for a, val := range want {
		if got[a] != val {
			t.Fatalf("range[%d] = %d, want %d", a, got[a], val)
		}
	}
	e.Clear()
	if e.Tainted() != 0 || e.Pages() != 0 {
		t.Fatal("clear failed")
	}
}

func TestEpochConcurrentOwnedWriters(t *testing.T) {
	// The pipeline's contract: before dispatch, every shard a worker
	// will touch is claimed for that worker's owner id; the workers
	// then write with no locks at all.
	e := NewEpoch[int64](1024)
	const writers = 4
	const perWriter = 2000
	e.BeginEpoch()
	bases := make([]int64, writers)
	for w := 0; w < writers; w++ {
		// 64 pages apart: each writer's ~6-page stride footprint maps
		// to shard indices no other writer's footprint can reach.
		bases[w] = int64(w) * 64 * pageSize
		for i := int64(0); i < perWriter; i++ {
			e.Claim(e.ShardOf(bases[w]+i*3), int32(w))
		}
	}
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			v := e.View(int32(w))
			base := bases[w]
			for i := int64(0); i < perWriter; i++ {
				v.Set(base+i*3, base+i) // stride across pages and shards
				if got := v.Get(base + i*3); got != base+i {
					t.Errorf("writer %d: readback %d != %d", w, got, base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := writers*perWriter - 1 // i=0 of writer 0 stores the zero value
	if got := e.Tainted(); got != want {
		t.Fatalf("tainted = %d, want %d", got, want)
	}
}

func TestEpochOwnershipViolationPanics(t *testing.T) {
	e := NewEpoch[int32](4)
	e.BeginEpoch()
	e.Claim(e.ShardOf(0), 1)
	v := e.View(2)
	defer func() {
		if recover() == nil {
			t.Fatal("write to a shard owned by another id did not panic")
		}
	}()
	v.Set(0, 7)
}

func TestEpochUnownedAccessPanics(t *testing.T) {
	e := NewEpoch[int32](4)
	e.BeginEpoch() // everything unowned
	v := e.View(0)
	defer func() {
		if recover() == nil {
			t.Fatal("read of an unowned shard did not panic")
		}
	}()
	_ = v.Get(123)
}

func TestEpochClaimAllIsExclusive(t *testing.T) {
	e := NewEpoch[int32](2)
	v := e.ClaimAll()
	v.Set(0, 1)
	v.Set(1<<20, 2)
	// A later epoch revokes the exclusive claim.
	e.BeginEpoch()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("stale exclusive view survived BeginEpoch")
			}
		}()
		v.Set(0, 3)
	}()
	// Re-claiming restores it.
	v2 := e.ClaimAll()
	if got := v2.Get(1 << 20); got != 2 {
		t.Fatalf("value lost across epochs: got %d, want 2", got)
	}
}

package shadow

import (
	"testing"
)

// FuzzShadowMem cross-checks the paged Mem and the epoch-sharded
// variant (through an exclusive view) against a plain map under
// arbitrary operation streams, with the address derivation biased
// toward the paging hazards: negative addresses and page boundaries
// (addr = k*1024 ± 1).
func FuzzShadowMem(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0})
	f.Add([]byte{255, 2, 7, 1, 1, 1, 0, 2, 128, 0, 5, 0})
	f.Add([]byte{3, 0, 9, 3, 3, 0, 9, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		mem := NewMem[int16]()
		ep := NewEpoch[int16](4)
		sh := ep.ClaimAll()
		ref := map[int64]int16{}
		for i := 0; i+3 < len(data); i += 4 {
			// k in [-128,127] selects a page; delta in {-1,0,+1} lands
			// on and around the k*1024 boundary.
			k := int64(int8(data[i]))
			delta := int64(data[i+1]%3) - 1
			addr := k*pageSize + delta
			v := int16(int8(data[i+2]))
			switch data[i+3] % 4 {
			case 0, 1: // set
				mem.Set(addr, v)
				sh.Set(addr, v)
				if v == 0 {
					delete(ref, addr)
				} else {
					ref[addr] = v
				}
			case 2: // get
				want := ref[addr]
				if got := mem.Get(addr); got != want {
					t.Fatalf("Mem.Get(%d) = %d, want %d", addr, got, want)
				}
				if got := sh.Get(addr); got != want {
					t.Fatalf("Epoch.Get(%d) = %d, want %d", addr, got, want)
				}
			case 3: // occasionally clear everything
				if data[i+2] > 250 {
					mem.Clear()
					ep.Clear()
					ref = map[int64]int16{}
				}
			}
		}
		// Full-state consistency at the end.
		if mem.Tainted() != len(ref) {
			t.Fatalf("Mem.Tainted() = %d, want %d", mem.Tainted(), len(ref))
		}
		if ep.Tainted() != len(ref) {
			t.Fatalf("Epoch.Tainted() = %d, want %d", ep.Tainted(), len(ref))
		}
		for a, v := range ref {
			if mem.Get(a) != v || sh.Get(a) != v {
				t.Fatalf("addr %d: mem %d, epoch %d, want %d", a, mem.Get(a), sh.Get(a), v)
			}
		}
		seen := 0
		mem.Range(func(a int64, v int16) bool {
			if ref[a] != v {
				t.Fatalf("Mem.Range leaked addr %d = %d (want %d)", a, v, ref[a])
			}
			seen++
			return true
		})
		if seen != len(ref) {
			t.Fatalf("Mem.Range visited %d cells, want %d", seen, len(ref))
		}
		seen = 0
		ep.Range(func(a int64, v int16) bool {
			if ref[a] != v {
				t.Fatalf("Epoch.Range leaked addr %d = %d (want %d)", a, v, ref[a])
			}
			seen++
			return true
		})
		if seen != len(ref) {
			t.Fatalf("Epoch.Range visited %d cells, want %d", seen, len(ref))
		}
	})
}

package shadow

import "fmt"

// Epoch is a shadow memory partitioned by page index across unlocked
// paged Mems, coordinated by epoch-scoped shard ownership instead of
// per-access locks. It replaces the old mutex-sharded variant on the
// offloaded pipeline's hot path: a propagation step there used to pay
// a lock/unlock pair per memory label access even though the window's
// conflict analysis had already proven the workers' address sets
// disjoint. With ownership sharding the analysis result is turned
// into capability: before a window is dispatched, the consumer
// assigns every shard the window touches to exactly one owner id, and
// each worker accesses its owned shards through a View with zero
// atomics — the happens-before edges of the dispatch/barrier pair
// (pipeline.Pool.Run) are the only fences.
//
// Concurrency contract (enforced statically by the epochfence
// analyzer in internal/analysis and dynamically by the ownership
// check in View.Get/Set):
//
//   - Ownership (BeginEpoch / Claim / ClaimAll) is mutated only by
//     the coordinating goroutine, and only while no View is in flight
//     — i.e. before dispatching a window's tasks or after the barrier
//     that retires them. That dispatch/barrier is the fence; shadow
//     writes never cross an ownership boundary without one.
//   - A View is valid for one epoch. Workers must not retain a View
//     (or hand it to another goroutine) past the barrier of the
//     window it was created for.
//   - The whole-memory accessors (Get, Tainted, Pages, SizeWords,
//     Range, Clear) are quiescent-only: the coordinating goroutine
//     between windows, or any goroutine after the pipeline is closed.
//
// Sharding is by page index, so neighbouring words share a shard
// (spatial locality) while distinct address ranges spread across
// shards.
type Epoch[T comparable] struct {
	shards []*Mem[T]
	owners []int32
	mask   int64
	// allOwned short-circuits ClaimAll for back-to-back sequential
	// windows, the common case on single-threaded phases.
	allOwned bool
	// exView is the one exclusive view ClaimAll hands out, cached so
	// the per-window sequential path allocates nothing.
	exView View[T]
}

// Unowned marks a shard no owner claimed this epoch.
const Unowned int32 = -1

// ExclusiveOwner is the owner id ClaimAll assigns: the coordinating
// goroutine's id for sequential (whole-memory) propagation.
const ExclusiveOwner int32 = 0

// NewEpoch returns an epoch-sharded shadow memory with at least the
// given shard count (rounded up to a power of two, minimum 1). All
// shards start unowned.
func NewEpoch[T comparable](shards int) *Epoch[T] {
	n := 1
	for n < shards {
		n <<= 1
	}
	e := &Epoch[T]{
		shards: make([]*Mem[T], n),
		owners: make([]int32, n),
		mask:   int64(n - 1),
	}
	for i := range e.shards {
		e.shards[i] = NewMem[T]()
		e.owners[i] = Unowned
	}
	e.exView = View[T]{e: e, id: ExclusiveOwner}
	return e
}

// Shards returns the shard count.
func (e *Epoch[T]) Shards() int { return len(e.shards) }

// ShardOf returns the shard index addr belongs to. Masking the page
// index keeps the shard non-negative for negative addresses too.
func (e *Epoch[T]) ShardOf(addr int64) int { return int((addr >> PageBits) & e.mask) }

// BeginEpoch starts a new ownership epoch with every shard unowned.
// Call only while quiescent (no View in flight); the subsequent task
// dispatch publishes the new assignment to the workers.
func (e *Epoch[T]) BeginEpoch() {
	for i := range e.owners {
		e.owners[i] = Unowned
	}
	e.allOwned = false
}

// Claim assigns shard to owner for the current epoch.
func (e *Epoch[T]) Claim(shard int, owner int32) {
	e.owners[shard] = owner
	e.allOwned = false
}

// ClaimAll assigns every shard to ExclusiveOwner and returns its View
// — the sequential-propagation mode (ordered merges, single-chain
// windows). Idempotent and O(1) when the previous window was also
// exclusive.
func (e *Epoch[T]) ClaimAll() *View[T] {
	if !e.allOwned {
		for i := range e.owners {
			e.owners[i] = ExclusiveOwner
		}
		e.allOwned = true
	}
	return &e.exView
}

// View returns the owner's access capability for the current epoch.
// The returned view must not outlive the epoch (see the type comment).
func (e *Epoch[T]) View(owner int32) *View[T] {
	if owner < 0 {
		panic(fmt.Sprintf("shadow: View(%d): negative owner id", owner))
	}
	return &View[T]{e: e, id: owner}
}

// View is one owner's window-scoped access to an Epoch. Get and Set
// verify ownership of the target shard on every access: the check is
// a plain slice load and compare (the owners slice is read-only while
// views are in flight), and a violation — a propagation step touching
// an address outside the footprint its window's conflict analysis
// claimed — panics immediately instead of corrupting shadow state.
type View[T comparable] struct {
	e  *Epoch[T]
	id int32
}

// Owner returns the view's owner id.
func (v *View[T]) Owner() int32 { return v.id }

func (v *View[T]) shard(addr int64) *Mem[T] {
	s := (addr >> PageBits) & v.e.mask
	if got := v.e.owners[s]; got != v.id {
		panic(fmt.Sprintf("shadow: owner %d touched addr %d in shard %d owned by %d (ownership boundary crossed without a fence)",
			v.id, addr, s, got))
	}
	return v.e.shards[s]
}

// Get returns the cell at addr (zero value if never set). Panics if
// the view's owner does not own addr's shard this epoch.
func (v *View[T]) Get(addr int64) T { return v.shard(addr).Get(addr) }

// Set writes the cell at addr. Panics if the view's owner does not
// own addr's shard this epoch.
func (v *View[T]) Set(addr int64, val T) { v.shard(addr).Set(addr, val) }

// --- quiescent whole-memory accessors ------------------------------

// Get returns the cell at addr. Quiescent-only.
func (e *Epoch[T]) Get(addr int64) T {
	return e.shards[(addr>>PageBits)&e.mask].Get(addr)
}

// Set writes the cell at addr. Quiescent-only.
func (e *Epoch[T]) Set(addr int64, val T) {
	e.shards[(addr>>PageBits)&e.mask].Set(addr, val)
}

// Clear resets all shadow state. Quiescent-only.
func (e *Epoch[T]) Clear() {
	for _, m := range e.shards {
		m.Clear()
	}
}

// Tainted returns the number of words currently holding a non-zero
// cell. Quiescent-only.
func (e *Epoch[T]) Tainted() int {
	n := 0
	for _, m := range e.shards {
		n += m.Tainted()
	}
	return n
}

// Pages returns the number of allocated shadow pages across shards.
// Quiescent-only.
func (e *Epoch[T]) Pages() int {
	n := 0
	for _, m := range e.shards {
		n += m.Pages()
	}
	return n
}

// SizeWords estimates the shadow footprint in T-cells. Quiescent-only.
func (e *Epoch[T]) SizeWords() int {
	n := 0
	for _, m := range e.shards {
		n += m.SizeWords()
	}
	return n
}

// Range calls f for every non-zero cell, shard by shard. If f returns
// false, iteration stops. Quiescent-only.
func (e *Epoch[T]) Range(f func(addr int64, v T) bool) {
	for _, m := range e.shards {
		stop := false
		m.Range(func(addr int64, v T) bool {
			if !f(addr, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

package cdep

import (
	"testing"

	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

// observeRun executes prog and returns the control parent PC recorded
// for every executed instruction, in order, with the executed PCs.
func observeRun(t *testing.T, prog *isa.Program, inputs []int64) (pcs []int, parents []Parent) {
	t.Helper()
	tr := New(prog)
	m := vm.MustNew(prog, vm.Config{})
	m.SetInput(0, inputs)
	var tseq uint64
	m.AttachTool(vm.ToolFunc(func(_ *vm.Machine, ev *vm.Event) {
		if ev.Blocked {
			return
		}
		tseq++
		p := tr.Observe(ev.TID, ev.PC, tseq, ev.Instr.Op, ev.Taken)
		pcs = append(pcs, ev.PC)
		parents = append(parents, p)
	}))
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	return pcs, parents
}

func TestDiamondControlDeps(t *testing.T) {
	prog := isa.MustAssemble("d", `
    in r1, 0
    beqz r1, elseb
    movi r2, 1
    br join
elseb:
    movi r2, 2
join:
    out r2, 1
    halt
`)
	pcs, parents := observeRun(t, prog, []int64{1})
	// Executed: in(0), beqz(1), movi r2,1(2), br(3), out(5), halt(6).
	find := func(pc int) Parent {
		for i := range pcs {
			if pcs[i] == pc {
				return parents[i]
			}
		}
		t.Fatalf("pc %d not executed (%v)", pc, pcs)
		return None
	}
	if find(0) != None {
		t.Fatal("entry instruction should have no parent")
	}
	if p := find(2); p.PC != 1 {
		t.Fatalf("then-arm parent PC = %d, want 1", p.PC)
	}
	// The join point is NOT control dependent on the branch.
	if p := find(5); p != None {
		t.Fatalf("join parent = %+v, want none", p)
	}

	// Else path.
	pcs, parents = observeRun(t, prog, []int64{0})
	if p := find(4); p.PC != 1 {
		t.Fatalf("else-arm parent PC = %d, want 1", p.PC)
	}
}

func TestLoopBodyDependsOnHeader(t *testing.T) {
	prog := isa.MustAssemble("l", `
    in r1, 0
    movi r3, 0
loop:
    bge r3, r1, done
    addi r3, r3, 1
    br loop
done:
    halt
`)
	pcs, parents := observeRun(t, prog, []int64{3})
	bodyCount, ok := 0, true
	for i := range pcs {
		if pcs[i] == 3 { // addi in body
			bodyCount++
			if parents[i].PC != 2 {
				ok = false
			}
		}
	}
	if bodyCount != 3 || !ok {
		t.Fatalf("body executed %d times, deps on header ok=%v", bodyCount, ok)
	}
	// The instruction after the loop is not control dependent on it.
	for i := range pcs {
		if pcs[i] == 5 && parents[i] != None {
			t.Fatalf("post-loop parent = %+v", parents[i])
		}
	}
}

func TestLoopStackDoesNotGrow(t *testing.T) {
	prog := isa.MustAssemble("l", `
    movi r1, 10000
    movi r3, 0
loop:
    bge r3, r1, done
    addi r3, r3, 1
    br loop
done:
    halt
`)
	tr := New(prog)
	m := vm.MustNew(prog, vm.Config{})
	var tseq uint64
	maxDepth := 0
	m.AttachTool(vm.ToolFunc(func(_ *vm.Machine, ev *vm.Event) {
		tseq++
		tr.Observe(ev.TID, ev.PC, tseq, ev.Instr.Op, ev.Taken)
		if d := tr.Depth(ev.TID); d > maxDepth {
			maxDepth = d
		}
	}))
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if maxDepth > 3 {
		t.Fatalf("region stack grew to %d on a simple loop", maxDepth)
	}
}

func TestCalleeDependsOnCallSite(t *testing.T) {
	prog := isa.MustAssemble("c", `
    br main
.func f
    addi r2, r1, 1
    ret
.endfunc
main:
    movi r1, 5
    call f
    out r2, 0
    halt
`)
	pcs, parents := observeRun(t, prog, nil)
	callPC := -1
	for i, ins := range prog.Instrs {
		if ins.Op == isa.CALL {
			callPC = i
		}
	}
	foundBody := false
	for i := range pcs {
		if pcs[i] == 1 { // addi inside f
			foundBody = true
			if int(parents[i].PC) != callPC {
				t.Fatalf("callee parent PC = %d, want call site %d", parents[i].PC, callPC)
			}
		}
	}
	if !foundBody {
		t.Fatal("callee body never executed")
	}
	// After the return, the call region is closed: out has no parent.
	for i := range pcs {
		if prog.Instrs[pcs[i]].Op == isa.OUT && parents[i] != None {
			t.Fatalf("post-call instruction parent = %+v", parents[i])
		}
	}
}

func TestNestedBranchesInCallee(t *testing.T) {
	prog := isa.MustAssemble("n", `
    br main
.func g
    beqz r1, gelse
    movi r2, 1
    br gend
gelse:
    movi r2, 2
gend:
    ret
.endfunc
main:
    movi r1, 1
    call g
    movi r1, 0
    call g
    halt
`)
	pcs, parents := observeRun(t, prog, nil)
	branchPC := 1 // beqz inside g
	for i := range pcs {
		switch pcs[i] {
		case 2, 4: // the two arms
			if int(parents[i].PC) != branchPC {
				t.Fatalf("arm at pc %d has parent %d, want %d", pcs[i], parents[i].PC, branchPC)
			}
		}
	}
	// Distinct call instances yield distinct parent instance numbers
	// for the branch.
	var branchParents []uint64
	for i := range pcs {
		if pcs[i] == branchPC {
			branchParents = append(branchParents, parents[i].N)
		}
	}
	if len(branchParents) != 2 || branchParents[0] == branchParents[1] {
		t.Fatalf("branch parents = %v, want two distinct call instances", branchParents)
	}
}

func TestPerThreadIsolation(t *testing.T) {
	prog := isa.MustAssemble("p", `
    movi r10, 0
    spawn r20, r10, child
    movi r1, 1
    beqz r1, skip
    movi r2, 1
skip:
    join r20
    halt
child:
    movi r1, 0
    beqz r1, cskip
    movi r2, 9
cskip:
    halt
`)
	tr := New(prog)
	m := vm.MustNew(prog, vm.Config{Seed: 3, Quantum: 1})
	counts := map[int]uint64{}
	bad := false
	m.AttachTool(vm.ToolFunc(func(_ *vm.Machine, ev *vm.Event) {
		if ev.Blocked {
			return
		}
		counts[ev.TID]++
		p := tr.Observe(ev.TID, ev.PC, counts[ev.TID], ev.Instr.Op, ev.Taken)
		// movi r2,1 at pc 4 belongs to thread 0 under branch pc 3;
		// if thread state leaked the parent could be the child's
		// branch at pc 8.
		if ev.PC == 4 && p.PC != 3 {
			bad = true
		}
	}))
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if bad {
		t.Fatal("cross-thread control-dependence leak")
	}
}

func TestReset(t *testing.T) {
	prog := isa.MustAssemble("r", "movi r1, 1\nbeqz r1, e\nnop\ne:\nhalt")
	tr := New(prog)
	tr.Observe(0, 1, 1, isa.BEQZ, false)
	if tr.Depth(0) != 1 {
		t.Fatal("region not opened")
	}
	tr.Reset()
	if tr.Depth(0) != 0 {
		t.Fatal("reset failed")
	}
}

// Package cdep implements efficient online detection of dynamic
// control dependences (the [11] substrate of the paper: Xin & Zhang,
// "Efficient Online Detection of Dynamic Control Dependence").
//
// The tracker maintains, per thread, a stack of open predicate
// regions. Executing a conditional branch pushes a region that stays
// open until control reaches the branch's immediate postdominator at
// the same call depth; the top of the stack is the dynamic control
// parent of every instruction executed inside the region. Calls open
// a region that spans the callee, so callee instructions are
// (interprocedurally) control dependent on the call site.
package cdep

import "scaldift/internal/isa"

// Parent identifies the governing predicate instance of an executed
// instruction.
type Parent struct {
	// N is the per-thread dynamic instruction number of the
	// predicate (branch/call) instance; 0 means "no parent" (the
	// instruction is control dependent only on program entry).
	N uint64
	// PC is the predicate's static instruction index.
	PC int32
}

// None is the absent parent.
var None = Parent{}

type region struct {
	parent Parent
	endPC  int  // region closes when this PC is reached...
	frame  int  // ...at this call depth
	isCall bool // call regions close on return (frame pop) instead
}

type threadState struct {
	stack []region
	frame int
}

// Tracker detects dynamic control dependences online. It is not a
// vm.Tool itself: the dependence trackers drive it, passing each
// executed instruction with its per-thread dynamic number.
type Tracker struct {
	prog *isa.Program
	cfg  *isa.CFG
	// ipdomStart[pc] is the instruction index at which the region
	// opened by a conditional branch at pc closes (-1: never, open
	// until function return).
	ipdomStart []int
	threads    map[int]*threadState
}

// New builds a tracker for prog using its CFG's postdominator tree.
func New(prog *isa.Program) *Tracker {
	cfg := isa.BuildCFG(prog)
	ipdom := isa.ImmediatePostdominators(cfg)
	ipdomStart := make([]int, len(prog.Instrs))
	for pc := range prog.Instrs {
		b := cfg.BlockOf[pc]
		if ip := ipdom[b]; ip >= 0 {
			ipdomStart[pc] = cfg.Blocks[ip].Start
		} else {
			ipdomStart[pc] = -1
		}
	}
	return &Tracker{prog: prog, cfg: cfg, ipdomStart: ipdomStart,
		threads: make(map[int]*threadState)}
}

func (t *Tracker) state(tid int) *threadState {
	s, ok := t.threads[tid]
	if !ok {
		s = &threadState{}
		t.threads[tid] = s
	}
	return s
}

// ThreadTracker is one thread's view of a Tracker. Distinct threads'
// handles may Observe concurrently from different goroutines: each
// touches only its own region stack plus the tracker's immutable
// postdominator tables. Obtain handles with Tracker.Thread on a
// single goroutine before handing them out.
type ThreadTracker struct {
	t *Tracker
	s *threadState
}

// Thread returns (creating if needed) the per-thread handle for tid.
// Not safe to call concurrently with itself or with Tracker.Observe.
func (t *Tracker) Thread(tid int) *ThreadTracker {
	return &ThreadTracker{t: t, s: t.state(tid)}
}

// Observe is Tracker.Observe for this handle's thread.
func (tt *ThreadTracker) Observe(pc int, n uint64, op isa.Op, taken bool) Parent {
	return tt.t.observe(tt.s, pc, n, op, taken)
}

// Observe processes one executed instruction: pc is its static index,
// n its per-thread dynamic number, and op its opcode. It returns the
// instruction's dynamic control parent (computed before the
// instruction opens any region of its own).
//
// Observe must be called for every instruction the thread executes,
// in execution order.
func (t *Tracker) Observe(tid int, pc int, n uint64, op isa.Op, taken bool) Parent {
	return t.observe(t.state(tid), pc, n, op, taken)
}

// observe is the shared implementation over an explicit thread state.
func (t *Tracker) observe(s *threadState, pc int, n uint64, op isa.Op, taken bool) Parent {
	// Close regions whose end has been reached at the same frame, or
	// whose frame has been popped entirely.
	for len(s.stack) > 0 {
		top := &s.stack[len(s.stack)-1]
		if top.frame > s.frame {
			s.stack = s.stack[:len(s.stack)-1]
			continue
		}
		if !top.isCall && top.frame == s.frame && top.endPC == pc {
			s.stack = s.stack[:len(s.stack)-1]
			continue
		}
		break
	}
	// A re-executed predicate (loop back edge) closes its own open
	// region and everything nested inside it: control left those
	// regions to come back around.
	if op.IsConditional() {
		for i := len(s.stack) - 1; i >= 0; i-- {
			r := &s.stack[i]
			if r.frame != s.frame {
				break
			}
			if !r.isCall && int(r.parent.PC) == pc {
				s.stack = s.stack[:i]
				break
			}
		}
	}
	var parent Parent
	if len(s.stack) > 0 {
		parent = s.stack[len(s.stack)-1].parent
	}
	switch {
	case op.IsConditional():
		end := t.ipdomStart[pc]
		// A branch whose region is empty (immediately reconverges at
		// the next instruction and it IS the ipdom start) still opens
		// a region; the pop above closes it right away.
		s.stack = append(s.stack, region{
			parent: Parent{N: n, PC: int32(pc)},
			endPC:  end,
			frame:  s.frame,
		})
	case op == isa.CALL || op == isa.CALLR:
		s.stack = append(s.stack, region{
			parent: Parent{N: n, PC: int32(pc)},
			frame:  s.frame + 1,
			isCall: true,
			endPC:  -1,
		})
		s.frame++
	case op == isa.RET:
		s.frame--
		// Regions opened in the abandoned frame (including the call
		// region itself) close lazily at the top of the next Observe.
	}
	return parent
}

// Depth returns the current region-stack depth for a thread (tests).
func (t *Tracker) Depth(tid int) int { return len(t.state(tid).stack) }

// Reset clears all per-thread state.
func (t *Tracker) Reset() { t.threads = make(map[int]*threadState) }

package pipeline

import (
	"fmt"
	"testing"

	"scaldift/internal/bdd"
	"scaldift/internal/dift"
	"scaldift/internal/lineage"
	"scaldift/internal/prog"
	"scaldift/internal/vm"
)

// The differential suite: every prog.All() workload, run under both
// the inline dift.Engine and the offloaded pipeline, across >= 8
// randomized VM schedules per workload, asserting identical sink
// labels for the Bool, PC, and lineage domains and identical
// TaintedWords at halt. The two runs of a (workload, seed) pair use
// the same deterministic schedule — tools never perturb execution —
// so any divergence is the pipeline's fault, not the scheduler's.

const diffSchedules = 8

// diffMachines builds two identical machines for one workload at the
// given schedule seed. NewMachine copies the input vectors, so one
// workload value safely serves both engines and every seed.
func diffMachines(w *prog.Workload, seed uint64) (*vm.Machine, *vm.Machine) {
	w.Cfg.Seed = seed
	w.Cfg.RandomPreempt = true
	if w.Cfg.Quantum == 0 {
		w.Cfg.Quantum = 11
	}
	return w.NewMachine(), w.NewMachine()
}

// pipelineOpts varies the pipeline shape with the schedule seed so
// the suite also sweeps worker counts and batch sizes.
func pipelineOpts(seed uint64) Options {
	return Options{
		Workers:     1 + int(seed)%4,
		BatchEvents: []int{32, 64, 256}[int(seed)%3],
	}
}

func diffComparable[L comparable](t *testing.T, name string, w *prog.Workload, dom dift.Domain[L]) {
	t.Helper()
	for seed := uint64(0); seed < diffSchedules; seed++ {
		mi, mp := diffMachines(w, seed)

		eng := dift.NewEngine[L](dom, dift.DefaultPolicy())
		si := &dift.CollectSink[L]{}
		eng.AddSink(si)
		mi.AttachTool(eng)
		if res := mi.Run(); res.Failed {
			t.Fatalf("%s seed %d: inline run failed: %s", name, seed, res.FailMsg)
		}

		pl := New[L](dom, dift.DefaultPolicy(), pipelineOpts(seed))
		sp := &dift.CollectSink[L]{}
		pl.AddSink(sp)
		if res := Run(mp, pl); res.Failed {
			t.Fatalf("%s seed %d: pipeline run failed: %s", name, seed, res.FailMsg)
		}

		if len(si.Outputs) != len(sp.Outputs) {
			t.Fatalf("%s seed %d: %d inline outputs vs %d pipeline", name, seed, len(si.Outputs), len(sp.Outputs))
		}
		for i := range si.Outputs {
			if si.Outputs[i] != sp.Outputs[i] {
				t.Fatalf("%s seed %d: output label %d diverged: inline %v, pipeline %v",
					name, seed, i, si.Outputs[i], sp.Outputs[i])
			}
		}
		if len(si.Branches) != len(sp.Branches) {
			t.Fatalf("%s seed %d: branch sink count diverged", name, seed)
		}
		for i := range si.Branches {
			if si.Branches[i] != sp.Branches[i] {
				t.Fatalf("%s seed %d: branch label %d diverged", name, seed, i)
			}
		}
		if eng.TaintedWords() != pl.TaintedWords() {
			t.Fatalf("%s seed %d: TaintedWords inline %d vs pipeline %d",
				name, seed, eng.TaintedWords(), pl.TaintedWords())
		}
	}
}

func TestDifferentialBool(t *testing.T) {
	for _, w := range prog.All() {
		t.Run(w.Name, func(t *testing.T) {
			diffComparable[bool](t, w.Name, w, dift.Bool{})
		})
	}
}

func TestDifferentialPC(t *testing.T) {
	for _, w := range prog.All() {
		t.Run(w.Name, func(t *testing.T) {
			diffComparable[dift.PCLabel](t, w.Name, w, dift.PC{})
		})
	}
}

// TestDifferentialLineage compares lineage as sets: the two engines
// own separate roBDD managers, so raw Refs are incomparable, but the
// element sets they denote must be identical output by output.
func TestDifferentialLineage(t *testing.T) {
	for _, w := range prog.All() {
		t.Run(w.Name, func(t *testing.T) {
			bits := lineage.BitsFor(len(w.Inputs[prog.ChIn]) + 8)
			for seed := uint64(0); seed < diffSchedules; seed++ {
				mi, mp := diffMachines(w, seed)

				di := lineage.NewDomain(bits)
				eng := dift.NewEngine[bdd.Ref](di, dift.DefaultPolicy())
				ri := lineage.NewRecorder(di)
				eng.AddSink(ri)
				mi.AttachTool(eng)
				if res := mi.Run(); res.Failed {
					t.Fatalf("seed %d: inline run failed: %s", seed, res.FailMsg)
				}

				dp := lineage.NewLockedDomain(bits)
				pl := New[bdd.Ref](dp, dift.DefaultPolicy(), pipelineOpts(seed))
				rp := lineage.NewRecorder(dp.Domain)
				pl.AddSink(rp)
				if res := Run(mp, pl); res.Failed {
					t.Fatalf("seed %d: pipeline run failed: %s", seed, res.FailMsg)
				}

				if len(ri.Outputs) != len(rp.Outputs) {
					t.Fatalf("seed %d: %d inline outputs vs %d pipeline", seed, len(ri.Outputs), len(rp.Outputs))
				}
				for i := range ri.Outputs {
					oi, op := ri.Outputs[i], rp.Outputs[i]
					if oi.Ch != op.Ch || oi.Val != op.Val || oi.Seq != op.Seq {
						t.Fatalf("seed %d: output %d metadata diverged: %+v vs %+v", seed, i, oi, op)
					}
					ei := di.Manager().Elements(oi.Set, nil)
					ep := dp.Manager().Elements(op.Set, nil)
					if fmt.Sprint(ei) != fmt.Sprint(ep) {
						t.Fatalf("seed %d: output %d lineage diverged:\ninline   %v\npipeline %v", seed, i, ei, ep)
					}
				}
				if eng.TaintedWords() != pl.TaintedWords() {
					t.Fatalf("seed %d: TaintedWords inline %d vs pipeline %d",
						seed, eng.TaintedWords(), pl.TaintedWords())
				}
			}
		})
	}
}

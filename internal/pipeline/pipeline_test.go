package pipeline

import (
	"testing"

	"scaldift/internal/dift"
	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

func runBoth(t *testing.T, text string, inputs []int64, cfg vm.Config, opt Options) (*dift.Engine[bool], *dift.CollectSink[bool], *Pipeline[bool], *dift.CollectSink[bool]) {
	t.Helper()
	p, err := isa.Assemble("t", text)
	if err != nil {
		t.Fatal(err)
	}
	mi := vm.MustNew(p, cfg)
	mi.SetInput(0, inputs)
	eng := dift.NewEngine[bool](dift.Bool{}, dift.DefaultPolicy())
	si := &dift.CollectSink[bool]{}
	eng.AddSink(si)
	mi.AttachTool(eng)
	if res := mi.Run(); res.Failed {
		t.Fatalf("inline run failed: %s", res.FailMsg)
	}

	mp := vm.MustNew(p, cfg)
	mp.SetInput(0, inputs)
	pl := New[bool](dift.Bool{}, dift.DefaultPolicy(), opt)
	sp := &dift.CollectSink[bool]{}
	pl.AddSink(sp)
	if res := Run(mp, pl); res.Failed {
		t.Fatalf("pipeline run failed: %s", res.FailMsg)
	}
	return eng, si, pl, sp
}

func TestPipelineMatchesInlineSingleThread(t *testing.T) {
	eng, si, pl, sp := runBoth(t, `
    in r1, 0
    movi r2, 5
    add r3, r1, r2
    store r0, r3, 10
    load r4, r0, 10
    out r4, 1
    out r2, 1
    halt
`, []int64{9}, vm.Config{}, Options{Workers: 2, BatchEvents: 2})
	if len(sp.Outputs) != len(si.Outputs) {
		t.Fatalf("outputs: pipeline %d, inline %d", len(sp.Outputs), len(si.Outputs))
	}
	for i := range si.Outputs {
		if sp.Outputs[i] != si.Outputs[i] {
			t.Fatalf("output[%d]: pipeline %v, inline %v", i, sp.Outputs[i], si.Outputs[i])
		}
	}
	if pl.TaintedWords() != eng.TaintedWords() {
		t.Fatalf("tainted: pipeline %d, inline %d", pl.TaintedWords(), eng.TaintedWords())
	}
	if pl.MemTaint(10) != eng.MemTaint(10) {
		t.Fatal("memory label diverged")
	}
}

func TestPipelineSpawnSeedsChild(t *testing.T) {
	eng, _, pl, _ := runBoth(t, `
.data 0, 0
    in r10, 0
    spawn r20, r10, child
    join r20
    load r3, r0, 1
    out r3, 1
    halt
child:
    store r0, r1, 1
    halt
`, []int64{5}, vm.Config{}, Options{Workers: 2, BatchEvents: 4})
	if !pl.MemTaint(1) || pl.MemTaint(1) != eng.MemTaint(1) {
		t.Fatal("spawn argument taint lost through the pipeline")
	}
	if pl.RegTaint(1, 1) != eng.RegTaint(1, 1) {
		t.Fatal("child r1 label diverged")
	}
	if pl.RegTaint(0, 20) {
		t.Fatal("spawner's tid register must stay untainted")
	}
}

// TestPipelineRacyFallback drives two threads hammering the same
// address with no synchronization — every multi-thread window
// conflicts, forcing the ordered sequential merge — and checks the
// pipeline still matches inline labels exactly across schedules.
func TestPipelineRacyFallback(t *testing.T) {
	text := `
.data 0, 0
    in r10, 0         ; tainted
    spawn r20, r10, child
    movi r3, 0
loop:
    movi r4, 60
    bge r3, r4, done
    store r0, r10, 1  ; racy tainted store
    movi r5, 7
    store r0, r5, 1   ; racy clean store
    load r6, r0, 1    ; racy load
    addi r3, r3, 1
    br loop
done:
    join r20
    load r7, r0, 1
    out r7, 1
    halt
child:
    movi r3, 0
cloop:
    movi r4, 60
    bge r3, r4, cdone
    store r0, r1, 1   ; racy tainted store from child
    load r6, r0, 1
    movi r8, 0
    store r0, r8, 1   ; racy clean store
    addi r3, r3, 1
    br cloop
cdone:
    halt
`
	for seed := uint64(0); seed < 6; seed++ {
		cfg := vm.Config{Seed: seed, Quantum: 5, RandomPreempt: true}
		eng, si, pl, sp := runBoth(t, text, []int64{5}, cfg, Options{Workers: 2, BatchEvents: 8, WindowBatches: 6})
		if len(sp.Outputs) != len(si.Outputs) {
			t.Fatalf("seed %d: output count diverged", seed)
		}
		for i := range si.Outputs {
			if sp.Outputs[i] != si.Outputs[i] {
				t.Fatalf("seed %d: output[%d] diverged", seed, i)
			}
		}
		if pl.TaintedWords() != eng.TaintedWords() {
			t.Fatalf("seed %d: tainted words %d vs %d", seed, pl.TaintedWords(), eng.TaintedWords())
		}
		if pl.MemTaint(1) != eng.MemTaint(1) {
			t.Fatalf("seed %d: racy address label diverged", seed)
		}
	}
}

func TestPipelineIndirectBranchSink(t *testing.T) {
	p := isa.MustAssemble("t", `
.data 0
    in r1, 0
    brr r1
target:
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{int64(p.Labels["target"])})
	pl := New[bool](dift.Bool{}, dift.DefaultPolicy(), Options{Workers: 1})
	sink := &dift.CollectSink[bool]{}
	pl.AddSink(sink)
	if res := Run(m, pl); res.Failed {
		t.Fatal(res.FailMsg)
	}
	if len(sink.Branches) != 1 || !sink.Branches[0] {
		t.Fatalf("indirect branch sink = %v, want [true]", sink.Branches)
	}
}

// TestPipelineConsumeOffline checks the Collect/Consume split used by
// the stage-timing benchmarks produces the same labels as Run.
func TestPipelineConsumeOffline(t *testing.T) {
	prog := isa.MustAssemble("t", `
    in r1, 0
    movi r3, 0
loop:
    movi r4, 100
    bge r3, r4, done
    add r5, r5, r1
    store r3, r5, 0
    addi r3, r3, 1
    br loop
done:
    out r5, 1
    halt
`)
	m := vm.MustNew(prog, vm.Config{})
	m.SetInput(0, []int64{3})
	batches, res := Collect(m, 16)
	if res.Failed {
		t.Fatal(res.FailMsg)
	}
	if len(batches) == 0 {
		t.Fatal("no batches collected")
	}
	pl := New[bool](dift.Bool{}, dift.DefaultPolicy(), Options{Workers: 2})
	sink := &dift.CollectSink[bool]{}
	pl.AddSink(sink)
	pl.Consume(batches)
	pl.Close()
	if len(sink.Outputs) != 1 || !sink.Outputs[0] {
		t.Fatalf("outputs = %v, want [true]", sink.Outputs)
	}
	if pl.TaintedWords() != 100 {
		t.Fatalf("tainted = %d, want 100", pl.TaintedWords())
	}
}

package pipeline

import (
	"fmt"
	"testing"

	"scaldift/internal/bdd"
	"scaldift/internal/dift"
	"scaldift/internal/isa"
	"scaldift/internal/lineage"
	"scaldift/internal/vm"
)

// Regression tests for the two CAS label bugs fixed in dift.Step,
// pinned under BOTH engines (inline and pipeline) and all three label
// domains. The differential suite alone could never catch them: the
// engines share Step, so they diverged from the truth identically.
//
//   Bug 1 (aliasing): with Rd == Rs2 the swapped cell used to take
//   the expected-value register's POST-update label — the old memory
//   value's label that had just landed in Rd.
//   Bug 2 (const store): a successful CAS stores the constant Imm
//   (vm/exec.go), yet the cell was labeled from Rs2 — over-tainting a
//   constant store under ClearOnConst.

// casSuccessAlias succeeds with Rd == Rs2: r2 is the clean expected
// value, mem[0] holds a tainted 5. After the CAS, Rd must carry the
// old (tainted) value's label and the cell must be CLEAN — under
// ClearOnConst because the stored 9 is a constant, under sticky
// labels because the gate register's pre-CAS label is clean.
const casSuccessAlias = `
.data 0
    in r3, 0            ; tainted input, value 5
    store r0, r3, 0     ; mem[0] = 5, tainted
    movi r2, 5          ; clean expected value
    cas r2, r0, r2, 9   ; Rd == Rs2, succeeds: mem[0] = 9
    halt
`

// casFailureAlias fails with Rd == Rs2: the expected value 6 cannot
// match the tainted 5 in mem[0]. Rd still reads memory (tainted), the
// cell label is untouched (tainted).
const casFailureAlias = `
.data 0
    in r3, 0            ; tainted input, value 5
    store r0, r3, 0     ; mem[0] = 5, tainted
    movi r2, 6          ; clean expected value, cannot match
    cas r2, r0, r2, 9   ; Rd == Rs2, fails
    halt
`

// casBoth runs text under the inline engine and the pipeline with the
// same domain/policy and returns both for label comparison.
func casBoth[L comparable](t *testing.T, text string, dom, pdom dift.Domain[L], pol dift.Policy) (*dift.Engine[L], *Pipeline[L], *vm.Machine) {
	t.Helper()
	p, err := isa.Assemble("t", text)
	if err != nil {
		t.Fatal(err)
	}
	mi := vm.MustNew(p, vm.Config{})
	mi.SetInput(0, []int64{5})
	eng := dift.NewEngine[L](dom, pol)
	mi.AttachTool(eng)
	if res := mi.Run(); res.Failed {
		t.Fatalf("inline run failed: %s", res.FailMsg)
	}

	mp := vm.MustNew(p, vm.Config{})
	mp.SetInput(0, []int64{5})
	pl := New[L](pdom, pol, Options{Workers: 2, BatchEvents: 4})
	if res := Run(mp, pl); res.Failed {
		t.Fatalf("pipeline run failed: %s", res.FailMsg)
	}
	return eng, pl, mi
}

// checkCas asserts the Rd (r2) and mem[0] labels are (un)tainted as
// expected, identically under both engines.
func checkCas[L comparable](t *testing.T, eng *dift.Engine[L], pl *Pipeline[L], wantRegTaint, wantMemTaint bool) {
	t.Helper()
	var zero L
	if got := eng.RegTaint(0, 2) != zero; got != wantRegTaint {
		t.Errorf("inline Rd taint = %v, want %v", got, wantRegTaint)
	}
	if got := eng.MemTaint(0) != zero; got != wantMemTaint {
		t.Errorf("inline mem[0] taint = %v, want %v", got, wantMemTaint)
	}
	if got := pl.RegTaint(0, 2) != zero; got != wantRegTaint {
		t.Errorf("pipeline Rd taint = %v, want %v", got, wantRegTaint)
	}
	if got := pl.MemTaint(0) != zero; got != wantMemTaint {
		t.Errorf("pipeline mem[0] taint = %v, want %v", got, wantMemTaint)
	}
}

func TestCasRdRs2AliasingComparableDomains(t *testing.T) {
	sticky := dift.Policy{ClearOnConst: false}
	cases := []struct {
		name     string
		text     string
		pol      dift.Policy
		wantMem  int64 // machine value of mem[0] after the run
		memTaint bool
	}{
		// Success: cell stores the constant 9 and must end up clean —
		// the buggy rule tainted it from post-update Rs2 in all four.
		{"success/clearOnConst", casSuccessAlias, dift.DefaultPolicy(), 9, false},
		{"success/sticky", casSuccessAlias, sticky, 9, false},
		// Failure: no write, tainted cell label untouched.
		{"failure/clearOnConst", casFailureAlias, dift.DefaultPolicy(), 5, true},
		{"failure/sticky", casFailureAlias, sticky, 5, true},
	}
	for _, tc := range cases {
		t.Run("bool/"+tc.name, func(t *testing.T) {
			eng, pl, m := casBoth[bool](t, tc.text, dift.Bool{}, dift.Bool{}, tc.pol)
			if m.Mem[0] != tc.wantMem {
				t.Fatalf("mem[0] = %d, want %d", m.Mem[0], tc.wantMem)
			}
			checkCas(t, eng, pl, true, tc.memTaint)
		})
		t.Run("pc/"+tc.name, func(t *testing.T) {
			eng, pl, _ := casBoth[dift.PCLabel](t, tc.text, dift.PC{}, dift.PC{}, tc.pol)
			checkCas(t, eng, pl, true, tc.memTaint)
			if eng.MemTaint(0) != pl.MemTaint(0) {
				t.Fatalf("PC labels diverged: inline %d, pipeline %d", eng.MemTaint(0), pl.MemTaint(0))
			}
		})
	}
}

func TestCasRdRs2AliasingLineage(t *testing.T) {
	sticky := dift.Policy{ClearOnConst: false}
	cases := []struct {
		name     string
		text     string
		pol      dift.Policy
		memTaint bool
	}{
		{"success/clearOnConst", casSuccessAlias, dift.DefaultPolicy(), false},
		{"success/sticky", casSuccessAlias, sticky, false},
		{"failure/clearOnConst", casFailureAlias, dift.DefaultPolicy(), true},
		{"failure/sticky", casFailureAlias, sticky, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			di := lineage.NewDomain(8)
			dp := lineage.NewLockedDomain(8)
			eng, pl, _ := casBoth[bdd.Ref](t, tc.text, di, dp, tc.pol)
			checkCas(t, eng, pl, true, tc.memTaint)
			// Lineage refs live in separate managers; compare the
			// denoted element sets.
			ei := di.Manager().Elements(eng.MemTaint(0), nil)
			ep := dp.Manager().Elements(pl.MemTaint(0), nil)
			if fmt.Sprint(ei) != fmt.Sprint(ep) {
				t.Fatalf("mem[0] lineage diverged: inline %v, pipeline %v", ei, ep)
			}
		})
	}
}

package pipeline

import (
	"scaldift/internal/shadow"
	"scaldift/internal/vm"
)

// This file is the window conflict analysis: the decision procedure
// that classifies each multi-thread window as parallel (per-chain
// shard ownership), grouped-parallel (chains sharing shards fused
// onto one owner), or ordered (a true cross-thread address conflict,
// replayed as the sequential Seq-ordered merge).
//
// The analysis is adaptive. A footprint learner records, per (thread,
// PC), the set of shadow pages that instruction has touched; repeat
// windows — the steady state of loop-heavy code — are then classified
// by verifying each event's page against its instruction's learned
// footprint (a few arithmetic ops per event, no allocation) instead
// of rebuilding per-address read/write sets with map inserts, which
// used to dominate the window overhead. Only windows whose learned
// footprints overlap across threads, or whose instructions roam too
// many pages to summarize, pay the precise address-level scan.

// footPages is the learned-footprint capacity per (tid, PC). An
// instruction observed touching more distinct pages than this is
// marked wide and its windows take the precise scan.
const footPages = 8

// pcWide marks a PC whose footprint overflowed footPages.
const pcWide = 0xFF

// pcFoot is one instruction's learned page footprint, plus the
// precomputed conflict-mask contribution of those pages (bit i set ⇔
// some learned page maps to shard-group i, see maskBit).
type pcFoot struct {
	pages [footPages]int64
	n     uint8
	mask  uint64
}

// has reports whether pg is in the learned footprint.
func (f *pcFoot) has(pg int64) bool {
	for i := uint8(0); i < f.n; i++ {
		if f.pages[i] == pg {
			return true
		}
	}
	return false
}

// LearnerStats counts window classifications; ConflictStats exposes
// them so tests can pin the adaptive behavior ("repeat windows take
// the fast path", "stale footprints fall back") and so the measured-
// rare claim about fallbacks stays measured.
type LearnerStats struct {
	// Windows is the number of multi-chain windows analyzed.
	Windows uint64
	// FastParallel windows were dispatched straight from verified
	// learned footprints, with no address-level scan.
	FastParallel uint64
	// PreciseScans is the number of windows that needed the full
	// address-level read/write-set scan (first sightings, footprint
	// changes that collide, or wide instructions).
	PreciseScans uint64
	// GroupedParallel windows ran in parallel with two or more
	// address-disjoint chains fused onto one owner because they
	// shared a shard.
	GroupedParallel uint64
	// OrderedMerges is the number of windows (excluding sync batches)
	// that fell back to the sequential Seq-ordered merge because of a
	// true cross-thread address conflict.
	OrderedMerges uint64
	// VerifyMisses counts events whose page was not yet in their
	// instruction's learned footprint (learning, or phase change).
	VerifyMisses uint64
	// WidePCs counts instructions currently marked wide.
	WidePCs uint64
}

// conflictLearner holds the per-(tid, PC) footprints and the scratch
// used to classify one window. It belongs to the consumer goroutine;
// nothing here is safe for concurrent use.
type conflictLearner struct {
	shardMask int64      // epoch shard count - 1
	foots     [][]pcFoot // [tid][pc]
	stats     LearnerStats

	// Window scratch, reused across windows. A returned windowPlan
	// aliases groupsBuf/idxBuf and is valid only until the next
	// analyze call — the pipeline consumes each plan before the next
	// window, on the same goroutine.
	masks     []uint64 // per-chain conflict masks
	wide      []bool   // per-chain: contains a wide PC
	group     []int    // per-chain: DSU parent for shard grouping
	groupsBuf [][]int
	idxBuf    []int
}

func newConflictLearner(shards int) conflictLearner {
	return conflictLearner{shardMask: int64(shards - 1)}
}

// maskBit folds a page's shard index into the 64-bit conflict mask:
// bit i covers the shards ≡ i (mod 64). With ≤64 shards (the default
// is 64) the bit IS the shard index, so disjoint masks mean disjoint
// shards exactly; with more shards distinct shards can alias a bit,
// which only ever fuses groups or forces a precise scan, never misses
// a conflict.
func (cl *conflictLearner) maskBit(pg int64) uint64 {
	return 1 << (uint64(pg&cl.shardMask) & 63)
}

// foot returns the footprint cell for (tid, pc), growing the tables.
func (cl *conflictLearner) foot(tid, pc int) *pcFoot {
	for tid >= len(cl.foots) {
		cl.foots = append(cl.foots, nil)
	}
	row := cl.foots[tid]
	for pc >= len(row) {
		row = append(row, pcFoot{})
	}
	cl.foots[tid] = row
	return &row[pc]
}

// verify checks one event page against the instruction's learned
// footprint, learning on miss. It returns the footprint's current
// conflict-mask contribution and whether the PC is wide.
func (cl *conflictLearner) verify(tid, pc int, pg int64) (mask uint64, wide bool) {
	f := cl.foot(tid, pc)
	if f.n == pcWide {
		return 0, true
	}
	if !f.has(pg) {
		cl.stats.VerifyMisses++
		if f.n == footPages {
			f.n = pcWide
			cl.stats.WidePCs++
			return 0, true
		}
		f.pages[f.n] = pg
		f.n++
		f.mask |= cl.maskBit(pg)
	}
	return f.mask, false
}

// planKind classifies a window.
type planKind uint8

const (
	planParallel planKind = iota // one owner per group, no address scan needed
	planOrdered                  // true conflict: sequential Seq-ordered merge
)

// windowPlan is the analysis result: how to propagate the window.
type windowPlan struct {
	kind planKind
	// groups lists, per owner, the chain indices it propagates (in
	// window order). masks[i] is group i's conflict mask, used to
	// claim shards. Valid only for planParallel.
	groups [][]int
	masks  []uint64
}

// analyze classifies one multi-chain window.
//
// Fast path: walk each chain once, verifying every memory access
// against its instruction's learned footprint and accumulating the
// chain's conflict mask from the learned (superset) footprints. If no
// chain contains a wide PC and the masks are pairwise disjoint, the
// chains provably touch disjoint shards — propagate in parallel, one
// owner per chain, no further analysis.
//
// Otherwise fall back to the precise address-level scan: build exact
// read/write sets; a write/write or write/read overlap between chains
// is a true conflict (ordered merge), and address-disjoint chains
// that merely share a shard are fused into one ownership group so the
// single-writer-per-shard invariant holds without locks.
func (cl *conflictLearner) analyze(chains [][]*vm.Batch) windowPlan {
	cl.stats.Windows++
	masks := cl.masks[:0]
	wides := cl.wide[:0]
	anyWide := false
	for _, ch := range chains {
		var m uint64
		w := false
		for _, b := range ch {
			tid := b.TID
			for i := range b.Events {
				ev := &b.Events[i]
				// Pages touched: loads read SrcMem, stores/flags write
				// DstMem, CAS reads and writes the same address.
				var addr int64
				switch ev.Kind {
				case vm.EvLoad, vm.EvCas:
					addr = ev.SrcMem
				case vm.EvStore, vm.EvFlag:
					addr = ev.DstMem
				default:
					continue
				}
				if addr == vm.NoAddr {
					continue
				}
				fm, fw := cl.verify(tid, ev.PC, addr>>shadow.PageBits)
				if fw {
					w = true
				}
				m |= fm
			}
		}
		masks = append(masks, m)
		wides = append(wides, w)
		anyWide = anyWide || w
	}
	cl.masks, cl.wide = masks, wides

	if !anyWide && pairwiseDisjoint(masks) {
		cl.stats.FastParallel++
		idx := cl.idxBuf[:0]
		for i := range chains {
			idx = append(idx, i)
		}
		cl.idxBuf = idx
		groups := cl.groupsBuf[:0]
		for i := range chains {
			groups = append(groups, idx[i:i+1])
		}
		cl.groupsBuf = groups
		return windowPlan{kind: planParallel, groups: groups, masks: masks}
	}
	return cl.precise(chains)
}

// pairwiseDisjoint reports whether no two masks share a bit.
func pairwiseDisjoint(masks []uint64) bool {
	var seen uint64
	for _, m := range masks {
		if seen&m != 0 {
			return false
		}
		seen |= m
	}
	return true
}

// precise is the exact fallback: address-level read/write sets decide
// ordered vs. parallel, and the actual (not learned) masks drive the
// shard-ownership grouping.
func (cl *conflictLearner) precise(chains [][]*vm.Batch) windowPlan {
	cl.stats.PreciseScans++
	accs := make([]access, len(chains))
	for i, ch := range chains {
		accs[i] = chainAccess(ch)
	}
	for i := range accs {
		for j := i + 1; j < len(accs); j++ {
			if overlaps(accs[i].writes, accs[j].writes) ||
				overlaps(accs[i].writes, accs[j].reads) ||
				overlaps(accs[j].writes, accs[i].reads) {
				cl.stats.OrderedMerges++
				return windowPlan{kind: planOrdered}
			}
		}
	}
	// Address-disjoint. Fuse chains whose actual footprints share a
	// conflict-mask bit into one ownership group (a tiny DSU: group[i]
	// is chain i's parent).
	masks := cl.masks[:0]
	for i := range accs {
		var m uint64
		for a := range accs[i].reads {
			m |= cl.maskBit(a >> shadow.PageBits)
		}
		for a := range accs[i].writes {
			m |= cl.maskBit(a >> shadow.PageBits)
		}
		masks = append(masks, m)
	}
	cl.masks = masks
	parent := cl.group[:0]
	for i := range chains {
		parent = append(parent, i)
	}
	cl.group = parent
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := range masks {
		for j := i + 1; j < len(masks); j++ {
			if masks[i]&masks[j] != 0 {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[rj] = ri
				}
			}
		}
	}
	groupIdx := make(map[int]int, len(chains))
	var groups [][]int
	var gmasks []uint64
	fused := false
	for i := range chains {
		r := find(i)
		g, ok := groupIdx[r]
		if !ok {
			g = len(groups)
			groupIdx[r] = g
			groups = append(groups, nil)
			gmasks = append(gmasks, 0)
		}
		groups[g] = append(groups[g], i)
		gmasks[g] |= masks[i]
		if len(groups[g]) > 1 {
			fused = true
		}
	}
	if fused {
		cl.stats.GroupedParallel++
	}
	return windowPlan{kind: planParallel, groups: groups, masks: gmasks}
}

package pipeline

import (
	"fmt"
	"testing"

	"scaldift/internal/dift"
	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

// retainSink deliberately violates the inline-tool contract: it keeps
// every delivered *vm.Event past the callback, alongside a copy taken
// at delivery time. The pipeline promises sinks a private, stable
// event copy, so pointer and copy must still agree after the run —
// they would not if the pointer aimed into a recorder batch that went
// back to the pool and was overwritten (the reuse hazard this test
// pins, forced by BatchEvents: 4, QueueDepth: 1).
type retainSink struct {
	evs  []*vm.Event
	want []vm.Event
}

func (s *retainSink) OnOutput(ev *vm.Event, _ bool) {
	s.evs = append(s.evs, ev) //scaldift:ignore poolescape deliberate retention: this test proves sinks get per-delivery copies
	s.want = append(s.want, *ev)
}

func (s *retainSink) OnIndirectBranch(ev *vm.Event, _ bool) {
	s.evs = append(s.evs, ev) //scaldift:ignore poolescape deliberate retention: this test proves sinks get per-delivery copies
	s.want = append(s.want, *ev)
}

func runRetain(t *testing.T, text string, inputs []int64) *retainSink {
	t.Helper()
	p, err := isa.Assemble("t", text)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.MustNew(p, vm.Config{})
	if inputs != nil {
		m.SetInput(0, inputs)
	}
	pl := New[bool](dift.Bool{}, dift.DefaultPolicy(),
		Options{Workers: 2, BatchEvents: 4, QueueDepth: 1, WindowBatches: 2})
	sink := &retainSink{}
	pl.AddSink(sink)
	if res := Run(m, pl); res.Failed {
		t.Fatalf("run failed: %s", res.FailMsg)
	}
	return sink
}

func checkRetained(t *testing.T, s *retainSink) {
	t.Helper()
	if len(s.evs) == 0 {
		t.Fatal("no sink deliveries")
	}
	for i, ev := range s.evs {
		if *ev != s.want[i] {
			t.Fatalf("retained event %d was overwritten by pool reuse:\nnow  %+v\nwas  %+v",
				i, *ev, s.want[i])
		}
	}
	// The deliveries must also be distinct storage, not one reused
	// cell that happens to hold the last event.
	seen := map[*vm.Event]int{}
	for i, ev := range s.evs {
		if j, dup := seen[ev]; dup {
			t.Fatalf("deliveries %d and %d share storage", j, i)
		}
		seen[ev] = i
	}
}

// TestSinkEventsSurvivePoolReuse drives the single-thread applyChain
// path: tiny batches and a depth-1 queue make the recorder recycle a
// batch almost immediately after its window, so a stale pointer into
// it is guaranteed to be overwritten while the run is still going.
func TestSinkEventsSurvivePoolReuse(t *testing.T) {
	s := runRetain(t, `
    in r1, 0
    movi r2, 0
loop:
    movi r3, 100
    bge r2, r3, done
    add r4, r1, r2
    out r4, 1
    addi r2, r2, 1
    br loop
done:
    halt
`, []int64{7})
	if len(s.evs) != 100 {
		t.Fatalf("expected 100 outputs, got %d", len(s.evs))
	}
	checkRetained(t, s)
	// Spot-check payloads: outputs carry distinct, increasing Seq.
	for i := 1; i < len(s.evs); i++ {
		if s.evs[i].Seq <= s.evs[i-1].Seq {
			t.Fatalf("output %d out of order: Seq %d after %d", i, s.evs[i].Seq, s.evs[i-1].Seq)
		}
	}
}

// TestSinkEventsSurvivePoolReuseParallel drives the multi-thread
// paths (parallel chains plus the ordered fallback around the spawn
// sync batch) through the same retention check.
func TestSinkEventsSurvivePoolReuseParallel(t *testing.T) {
	s := runRetain(t, fmt.Sprintf(`
.data 0, 0
    in r10, 0
    spawn r20, r10, child
    movi r2, 0
loop:
    movi r3, %d
    bge r2, r3, done
    add r4, r10, r2
    store r0, r4, 0
    out r4, 1
    addi r2, r2, 1
    br loop
done:
    join r20
    halt
child:
    movi r2, 0
cloop:
    movi r3, %d
    bge r2, r3, cdone
    add r4, r1, r2
    store r0, r4, 1
    out r4, 1
    addi r2, r2, 1
    br cloop
cdone:
    halt
`, 60, 60), []int64{3})
	if len(s.evs) != 120 {
		t.Fatalf("expected 120 outputs, got %d", len(s.evs))
	}
	checkRetained(t, s)
}

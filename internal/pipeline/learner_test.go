package pipeline

import (
	"testing"

	"scaldift/internal/dift"
	"scaldift/internal/isa"
	"scaldift/internal/prog"
	"scaldift/internal/vm"
)

// phaseChange builds the stale-footprint workload: two threads fill
// disjoint pages through a SHARED fill subroutine (phase 1), then —
// after a store/load handshake — both fill the SAME page through that
// same subroutine (phase 2). The store PC inside fill therefore
// learns a per-thread footprint in phase 1 that goes stale at the
// phase boundary: in phase 2 the learned masks overlap, the precise
// scan sees true write/write conflicts, and the window must fall back
// to the ordered sequential merge. Layout: page 0 holds the
// handshake word (addr 8); phase-1 regions are pages 1 (worker) and
// 2 (main); the phase-2 shared region is page 3.
func phaseChange() *prog.Workload {
	p := isa.MustAssemble("phasechange", `
.reserve 4096
    in r1, 0            ; tainted seed
    spawn r20, r1, worker
    movi r2, 2048       ; main phase 1: page 2
    call fill
    movi r5, 8
    movi r6, 1
    store r5, r6, 0     ; release the worker into phase 2
    movi r2, 3072       ; main phase 2: page 3 (stale footprint)
    call fill
    join r20
    movi r5, 3072
    load r7, r5, 0
    out r7, 1           ; tainted either way: both threads store r1
    halt
worker:
    ; r1 = seed (tainted, from the spawn argument)
    movi r2, 1024       ; worker phase 1: page 1
    call fill
    movi r5, 8
spin:
    load r6, r5, 0
    beqz r6, spin
    movi r2, 3072       ; worker phase 2: page 3 — conflicts with main
    call fill
    halt
.func fill
    ; fill 200 words at base r2 with the tainted seed in r1. The
    ; store below is the one PC whose footprint the conflict learner
    ; tracks per thread across both phases.
    movi r3, 0
    movi r9, 200
floop:
    bge r3, r9, fdone
    add r4, r2, r3
    store r4, r1, 0
    addi r3, r3, 1
    br floop
fdone:
    ret
.endfunc
`)
	return &prog.Workload{
		Name:   "phasechange",
		Prog:   p,
		Inputs: map[int][]int64{prog.ChIn: {7}},
		Cfg:    vm.Config{Quantum: 8, RandomPreempt: true},
	}
}

// TestLearnerStaleFootprintFallsBack pins the adaptive conflict
// learner's safety property: when a learned per-PC footprint goes
// stale at a program phase change, the window analysis falls back
// (precise scan, then ordered merge on the true conflict) and the
// offloaded result still matches the inline engine exactly. Schedule
// randomization varies how chains share windows, so the learner-path
// assertions are aggregated across seeds while correctness is
// asserted for every seed. The progen 500-seed corpus provides the
// same pinning against the brute-force oracle.
func TestLearnerStaleFootprintFallsBack(t *testing.T) {
	w := phaseChange()
	var agg LearnerStats
	for seed := uint64(0); seed < 12; seed++ {
		mi, mp := diffMachines(w, seed)

		eng := dift.NewEngine[bool](dift.Bool{}, dift.DefaultPolicy())
		si := &dift.CollectSink[bool]{}
		eng.AddSink(si)
		mi.AttachTool(eng)
		if res := mi.Run(); res.Failed {
			t.Fatalf("seed %d: inline run failed: %s", seed, res.FailMsg)
		}

		pl := New[bool](dift.Bool{}, dift.DefaultPolicy(), Options{Workers: 2, BatchEvents: 32})
		sp := &dift.CollectSink[bool]{}
		pl.AddSink(sp)
		if res := Run(mp, pl); res.Failed {
			t.Fatalf("seed %d: pipeline run failed: %s", seed, res.FailMsg)
		}

		if len(si.Outputs) != len(sp.Outputs) {
			t.Fatalf("seed %d: %d inline outputs vs %d pipeline", seed, len(si.Outputs), len(sp.Outputs))
		}
		for i := range si.Outputs {
			if si.Outputs[i] != sp.Outputs[i] {
				t.Fatalf("seed %d: output %d diverged: inline %v, pipeline %v",
					seed, i, si.Outputs[i], sp.Outputs[i])
			}
		}
		if !sp.Outputs[0] {
			t.Fatalf("seed %d: phase-2 output lost its taint", seed)
		}
		if eng.TaintedWords() != pl.TaintedWords() {
			t.Fatalf("seed %d: TaintedWords inline %d vs pipeline %d",
				seed, eng.TaintedWords(), pl.TaintedWords())
		}

		st := pl.ConflictStats()
		agg.Windows += st.Windows
		agg.FastParallel += st.FastParallel
		agg.PreciseScans += st.PreciseScans
		agg.OrderedMerges += st.OrderedMerges
		agg.VerifyMisses += st.VerifyMisses
	}

	// The scenario must actually have exercised the adaptive path:
	// verified fast windows while footprints were fresh, verify misses
	// when they went stale, and ordered merges on the phase-2 page.
	if agg.Windows == 0 {
		t.Fatal("no multi-chain windows formed; the scenario lost its interleaving")
	}
	if agg.VerifyMisses == 0 {
		t.Fatal("no footprint misses recorded; the phase change never went stale")
	}
	if agg.OrderedMerges == 0 {
		t.Fatal("no ordered merges: the stale-footprint conflict was never detected")
	}
	t.Logf("aggregated stats over seeds: %+v", agg)
}

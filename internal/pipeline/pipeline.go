// Package pipeline implements offloaded analysis: execution and
// analysis decoupled, the paper's central scalability move. The VM
// runs with only a batching event recorder attached (vm.Recorder —
// one filter check and one struct copy per instruction), and analysis
// consumes the sealed batches downstream.
//
// Two analysis kinds run on this machinery today: the DIFT
// propagation pipeline in this package (taint labels over the
// epoch-sharded shadow.Epoch memory) and the ONTRAC dependence-
// tracing stage in internal/ontrac (per-thread dependence extraction
// into sharded compact buffers). Both plug a BatchHandler into the
// shared Consumer (consumer.go), which owns windowing, flush-group
// alignment, sync ordering, and batch recycling.
//
// The analyze side is organized around the shadow.Epoch ownership
// contract (see internal/shadow/epoch.go, enforced by the epochfence
// analyzer): before dispatching a window, the consumer goroutine
// assigns every shard the window touches to exactly one worker, and
// workers then propagate through owner Views with zero atomics — the
// Pool.Run dispatch/barrier pair is the only fence. Which windows can
// be dispatched that way is decided by the adaptive conflict learner
// (learner.go): it learns per-(thread,PC) address footprints so that
// repeat windows of a loopy program skip the full address scan, and
// verifies every learned footprint against the events it covers, so a
// stale footprint (a program phase change) can only cost a precise
// re-scan, never a missed conflict. Propagation itself runs through
// dift.StepBatch, which amortizes per-event dispatch over runs of
// same-shape instructions. docs/PERF.md quantifies what each piece
// buys; docs/ARCHITECTURE.md places the package in the full path.
//
// Equivalence with the inline engines is by construction plus
// checking, not hope:
//
//   - workers run the same transfer function (dift.Step, batched by
//     dift.StepBatch) the inline engine runs — the semantics exist
//     once;
//   - a window of per-thread batch chains is propagated concurrently
//     only when conflict analysis proves the chains touch disjoint
//     memory; windows that conflict (racy or closely synchronized
//     threads) and thread-communication events (spawn) fall back to
//     an ordered sequential merge by global sequence number;
//   - sinks fire in global sequence order, exactly as inline;
//   - the differential suite in this package runs every prog.All()
//     workload under both engines across randomized schedules and
//     asserts identical labels.
package pipeline

import (
	"scaldift/internal/dift"
	"scaldift/internal/isa"
	"scaldift/internal/shadow"
	"scaldift/internal/vm"
)

// Options parameterizes a Pipeline.
type Options struct {
	// Workers is the number of propagation worker goroutines
	// (default 2).
	Workers int
	// BatchEvents is the recorder's per-batch capacity (default
	// vm.DefaultBatchEvents).
	BatchEvents int
	// WindowBatches is how many batches accumulate before a window is
	// propagated (default 2×Workers). Larger windows expose more
	// cross-thread parallelism; smaller ones bound latency.
	WindowBatches int
	// QueueDepth bounds the recorder→consumer channel; a full queue
	// applies backpressure to the execution thread (default 64).
	QueueDepth int
	// Shards is the epoch-sharded shadow memory's shard count
	// (default 64, rounded up to a power of two). At 64 or fewer
	// shards every conflict-mask bit names exactly one shard, so the
	// window analysis never fuses ownership groups spuriously.
	Shards int
}

// Fill applies defaults in place; callers outside the package (the
// ONTRAC stage) share the same knobs.
func (o *Options) Fill() {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.BatchEvents <= 0 {
		o.BatchEvents = vm.DefaultBatchEvents
	}
	if o.WindowBatches <= 0 {
		o.WindowBatches = 2 * o.Workers
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Shards <= 0 {
		o.Shards = 64
	}
}

// Pipeline is the offloaded DIFT engine. Create with New, attach to a
// machine with Attach (or use Run), and read results after Close.
// Sinks fire on the consumer goroutine, in global sequence order,
// and receive a private copy of the event: the pointer stays valid
// after the callback (unlike the inline engine's reused event).
type Pipeline[L comparable] struct {
	dom   dift.Domain[L]
	pol   dift.Policy
	opt   Options
	mem   *shadow.Epoch[L]
	regs  []*[isa.NumRegs]L
	sinks []dift.Sink[L]

	cons    *Consumer
	pool    *Pool
	learner conflictLearner

	events  uint64
	seqBuf  []*vm.Event
	recsBuf []sinkRec[L]
	// capBuf is the window-scoped sink capture and sinkBuf the
	// one-element dift.Sink slice wrapping it, hoisted here so the
	// sequential paths allocate nothing per window.
	capBuf  capture[L]
	sinkBuf []dift.Sink[L]
	// Per-owner state for parallel windows, grown once (ensureOwners)
	// and reused every window: owner g always runs task g with view g,
	// capturing into caps[g] through wsinks[g]. Only the window's
	// chain grouping (curChains/curGroups) changes per dispatch.
	views     []*shadow.View[L]
	caps      []*capture[L]
	wsinks    [][]dift.Sink[L]
	tasks     []func()
	curChains [][]*vm.Batch
	curGroups [][]int
}

// New creates a pipeline over the given domain and policy and starts
// its worker pool. The domain must be safe for concurrent use by
// Options.Workers goroutines (Bool, PC and InputID are stateless;
// lineage needs lineage.NewLockedDomain).
func New[L comparable](dom dift.Domain[L], pol dift.Policy, opt Options) *Pipeline[L] {
	opt.Fill()
	p := &Pipeline[L]{
		dom:  dom,
		pol:  pol,
		opt:  opt,
		mem:  shadow.NewEpoch[L](opt.Shards),
		pool: NewPool(opt.Workers),
	}
	p.learner = newConflictLearner(p.mem.Shards())
	p.sinkBuf = []dift.Sink[L]{&p.capBuf}
	p.cons = NewConsumer(difthandler[L]{p}, opt.WindowBatches)
	p.ensureTID(0)
	return p
}

// AddSink registers a sink. Call before Attach or Consume.
func (p *Pipeline[L]) AddSink(s dift.Sink[L]) { p.sinks = append(p.sinks, s) }

// Attach connects the pipeline to m via a batching recorder and
// starts the consumer goroutine. Call Close after the run to flush
// and drain.
func (p *Pipeline[L]) Attach(m *vm.Machine) {
	p.cons.Attach(m, p.opt.BatchEvents, p.opt.QueueDepth, dift.Relevant)
}

// Close flushes the recorder, drains the consumer, and stops the
// worker pool. The pipeline's results are stable once Close returns;
// the pipeline cannot be reused afterwards. Close is idempotent, so
// `defer p.Close()` composes with Run (which closes on return).
func (p *Pipeline[L]) Close() {
	p.cons.Close()
	p.pool.Close()
}

// Consume propagates an offline batch stream (from Collect)
// synchronously on the calling goroutine, using the worker pool for
// conflict-free windows. It may be called repeatedly; call Close when
// done to stop the workers.
func (p *Pipeline[L]) Consume(batches []*vm.Batch) {
	p.cons.Consume(batches)
}

// Run attaches p to m, runs the machine to completion, and closes the
// pipeline: the one-call entry point for an offloaded analysis run.
func Run[L comparable](m *vm.Machine, p *Pipeline[L]) *vm.Result {
	p.Attach(m)
	res := m.Run()
	p.Close()
	return res
}

// Collect runs m with only a batching recorder attached, keeping the
// label-relevant events, and returns the sealed batches — an offline
// trace. Benchmarks use it to time the record and propagate stages
// separately.
func Collect(m *vm.Machine, batchEvents int) ([]*vm.Batch, *vm.Result) {
	return CollectWith(m, batchEvents, dift.Relevant)
}

// CollectWith is Collect with an explicit relevance filter (e.g.
// ddg.TraceRelevant for an offline dependence-tracing stream).
func CollectWith(m *vm.Machine, batchEvents int, filter func(*vm.Event) bool) ([]*vm.Batch, *vm.Result) {
	var out []*vm.Batch
	rec := vm.NewRecorder(batchEvents, filter, func(b *vm.Batch) { out = append(out, b) })
	m.AttachTool(rec)
	res := m.Run()
	rec.Flush()
	return out, res
}

// Regs implements dift.RegBank. The consumer grows the bank at
// window boundaries (ensureTID), so workers see a stable slice.
func (p *Pipeline[L]) Regs(tid int) *[isa.NumRegs]L { return p.regs[tid] }

func (p *Pipeline[L]) ensureTID(tid int) {
	for tid >= len(p.regs) {
		p.regs = append(p.regs, new([isa.NumRegs]L))
	}
}

// RegTaint returns the label of register r in thread tid.
func (p *Pipeline[L]) RegTaint(tid, r int) L {
	var zero L
	if tid < 0 || tid >= len(p.regs) || r < 0 || r >= isa.NumRegs {
		return zero
	}
	return p.regs[tid][r]
}

// MemTaint returns the label of memory word addr.
func (p *Pipeline[L]) MemTaint(addr int64) L { return p.mem.Get(addr) }

// TaintedWords returns the number of memory words currently tainted.
func (p *Pipeline[L]) TaintedWords() int { return p.mem.Tainted() }

// ShadowSizeWords returns the allocated shadow size in cells.
func (p *Pipeline[L]) ShadowSizeWords() int { return p.mem.SizeWords() }

// ConflictStats returns the window conflict analysis counters (see
// LearnerStats). Read only while the pipeline is quiescent — after
// Close, or between Consume calls.
func (p *Pipeline[L]) ConflictStats() LearnerStats { return p.learner.stats }

// Events returns how many recorded events the pipeline propagated.
// The recorder filters label-irrelevant events, so this is smaller
// than the inline engine's count for the same run.
func (p *Pipeline[L]) Events() uint64 { return p.events }

var _ dift.RegBank[bool] = (*Pipeline[bool])(nil)

package pipeline

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"scaldift/internal/bdd"
	"scaldift/internal/benchfp"
	"scaldift/internal/dift"
	"scaldift/internal/lineage"
	"scaldift/internal/prog"
	"scaldift/internal/vm"
)

// The BenchmarkPipeline* suite measures inline vs. offloaded DIFT on
// prog workloads: events/s (VM instructions analyzed per second of
// wall time) and slowdown-vs-native (instrumented wall time over the
// tool-free run). Offloaded variants run the full concurrent
// pipeline end-to-end at 1/2/4 workers.
//
// TestWriteBenchPipelineJSON (env PIPELINE_BENCH_JSON=1) additionally
// times the record and propagate stages separately via Collect/
// Consume and writes BENCH_pipeline.json at the repo root. There the
// pipeline's events_per_sec is its *sustained* throughput —
// events/max(stage wall) — which is what the decoupled design
// delivers when execution and analysis overlap on separate cores; the
// single-core serialized figure is reported alongside.

// runInline executes w's machine under an inline engine of the named
// domain and returns the steps analyzed.
func runInline(b testing.TB, w *prog.Workload, domain string) uint64 {
	m := w.NewMachine()
	switch domain {
	case "bool":
		m.AttachTool(dift.NewEngine[bool](dift.Bool{}, dift.DefaultPolicy()))
	case "lineage":
		d := lineage.NewDomain(lineage.BitsFor(len(w.Inputs[prog.ChIn]) + 8))
		e := dift.NewEngine[bdd.Ref](d, dift.DefaultPolicy())
		e.AddSink(lineage.NewRecorder(d))
		m.AttachTool(e)
	default:
		b.Fatalf("unknown domain %q", domain)
	}
	if res := m.Run(); res.Failed {
		b.Fatal(res.FailMsg)
	}
	return m.Steps()
}

// runOffloaded executes w's machine with the concurrent pipeline
// attached and returns the steps analyzed.
func runOffloaded(b testing.TB, w *prog.Workload, domain string, workers int) uint64 {
	m := w.NewMachine()
	opt := Options{Workers: workers}
	var res *vm.Result
	switch domain {
	case "bool":
		p := New[bool](dift.Bool{}, dift.DefaultPolicy(), opt)
		res = Run(m, p)
	case "lineage":
		d := lineage.NewLockedDomain(lineage.BitsFor(len(w.Inputs[prog.ChIn]) + 8))
		p := New[bdd.Ref](d, dift.DefaultPolicy(), opt)
		p.AddSink(lineage.NewRecorder(d.Domain))
		res = Run(m, p)
	default:
		b.Fatalf("unknown domain %q", domain)
	}
	if res.Failed {
		b.Fatal(res.FailMsg)
	}
	return m.Steps()
}

func benchPipeline(b *testing.B, mk func() *prog.Workload, domain string, workers int) {
	// Native baseline, untimed: tool-free wall per run.
	wn := mk()
	mn := wn.NewMachine()
	t0 := time.Now()
	if res := mn.Run(); res.Failed {
		b.Fatal(res.FailMsg)
	}
	nativeSec := time.Since(t0).Seconds()

	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		w := mk()
		if workers == 0 {
			steps += runInline(b, w, domain)
		} else {
			steps += runOffloaded(b, w, domain, workers)
		}
	}
	el := b.Elapsed().Seconds()
	if el > 0 {
		b.ReportMetric(float64(steps)/el, "events/s")
	}
	if nativeSec > 0 {
		b.ReportMetric(el/float64(b.N)/nativeSec, "x-native")
	}
}

func mkStreamAgg() *prog.Workload  { return prog.StreamAgg(4096, 4, 21) }
func mkKeyedMerge() *prog.Workload { return prog.KeyedMerge(64, 512, 22) }
func mkMapReduce() *prog.Workload  { return prog.MapReduceSquares(4, 8192, 23) }

func BenchmarkPipelineStreamAggLineageInline(b *testing.B) {
	benchPipeline(b, mkStreamAgg, "lineage", 0)
}
func BenchmarkPipelineStreamAggLineageW1(b *testing.B)  { benchPipeline(b, mkStreamAgg, "lineage", 1) }
func BenchmarkPipelineStreamAggLineageW2(b *testing.B)  { benchPipeline(b, mkStreamAgg, "lineage", 2) }
func BenchmarkPipelineStreamAggLineageW4(b *testing.B)  { benchPipeline(b, mkStreamAgg, "lineage", 4) }
func BenchmarkPipelineStreamAggBoolInline(b *testing.B) { benchPipeline(b, mkStreamAgg, "bool", 0) }
func BenchmarkPipelineStreamAggBoolW2(b *testing.B)     { benchPipeline(b, mkStreamAgg, "bool", 2) }
func BenchmarkPipelineKeyedMergeLineageInline(b *testing.B) {
	benchPipeline(b, mkKeyedMerge, "lineage", 0)
}
func BenchmarkPipelineKeyedMergeLineageW2(b *testing.B) { benchPipeline(b, mkKeyedMerge, "lineage", 2) }
func BenchmarkPipelineMapReduceLineageInline(b *testing.B) {
	benchPipeline(b, mkMapReduce, "lineage", 0)
}
func BenchmarkPipelineMapReduceLineageW2(b *testing.B) { benchPipeline(b, mkMapReduce, "lineage", 2) }

// benchEpochAnalyze measures the analyze stage alone: one offline
// trace, recorded once, propagated through a fresh epoch-sharded
// pipeline per iteration. These are the BenchmarkPipelineEpoch* rows
// benchcheck compares against analyze_events_per_sec in
// BENCH_pipeline.json — the propagation speed of the epoch-sharded
// shadow path, with the recorder out of the picture.
func benchEpochAnalyze(b *testing.B, mk func() *prog.Workload, domain string, workers int) {
	w := mk()
	m := w.NewMachine()
	trace, res := Collect(m, vm.DefaultBatchEvents)
	if res.Failed {
		b.Fatal(res.FailMsg)
	}
	steps := m.Steps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		consumeTrace(b, w, domain, workers, trace)
	}
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(steps)*float64(b.N)/el, "events/s")
	}
}

func BenchmarkPipelineEpochStreamAggLineageW2(b *testing.B) {
	benchEpochAnalyze(b, mkStreamAgg, "lineage", 2)
}
func BenchmarkPipelineEpochKeyedMergeLineageW2(b *testing.B) {
	benchEpochAnalyze(b, mkKeyedMerge, "lineage", 2)
}
func BenchmarkPipelineEpochMapReduceLineageW2(b *testing.B) {
	benchEpochAnalyze(b, mkMapReduce, "lineage", 2)
}
func BenchmarkPipelineEpochStreamAggBoolW2(b *testing.B) {
	benchEpochAnalyze(b, mkStreamAgg, "bool", 2)
}

// --- BENCH_pipeline.json -------------------------------------------

type benchOffloaded struct {
	Workers int `json:"workers"`
	// Stage walls, measured separately on an offline trace.
	RecordS  float64 `json:"record_s"`
	AnalyzeS float64 `json:"analyze_s"`
	// Wall of the concurrent end-to-end run (on a single-core host
	// this approaches record+analyze; on multicore, max of the two).
	ConcurrentS float64 `json:"concurrent_s"`
	// Sustained pipeline throughput: events / max(record, analyze) —
	// the steady-state rate of the slowest stage.
	EventsPerSec float64 `json:"events_per_sec"`
	// Analyze-stage throughput alone: events / analyze_s. This is the
	// number the BenchmarkPipelineEpoch* rows track — the propagation
	// speed of the epoch-sharded shadow path, independent of the
	// recorder.
	AnalyzeEventsPerSec float64 `json:"analyze_events_per_sec"`
	// Fully serialized single-core figure: events / (record+analyze).
	EventsPerSecSerialized float64 `json:"events_per_sec_serialized"`
	SlowdownVsNative       float64 `json:"slowdown_vs_native"`
}

type benchInline struct {
	WallS            float64 `json:"wall_s"`
	EventsPerSec     float64 `json:"events_per_sec"`
	SlowdownVsNative float64 `json:"slowdown_vs_native"`
}

type benchRow struct {
	Workload  string           `json:"workload"`
	Domain    string           `json:"domain"`
	Events    uint64           `json:"events"`
	NativeS   float64          `json:"native_s"`
	Inline    benchInline      `json:"inline"`
	Offloaded []benchOffloaded `json:"offloaded"`
}

type benchReport struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	Host       benchfp.Host `json:"host"`
	Note       string       `json:"note"`
	Results    []benchRow   `json:"results"`
}

// bestOf runs f reps times and returns the fastest wall seconds.
func bestOf(reps int, f func()) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if s := time.Since(t0).Seconds(); i == 0 || s < best {
			best = s
		}
	}
	return best
}

// TestWriteBenchPipelineJSON generates BENCH_pipeline.json. Gated
// behind PIPELINE_BENCH_JSON=1 so regular test runs stay fast:
//
//	PIPELINE_BENCH_JSON=1 go test -run TestWriteBenchPipelineJSON ./internal/pipeline/
func TestWriteBenchPipelineJSON(t *testing.T) {
	if os.Getenv("PIPELINE_BENCH_JSON") == "" {
		t.Skip("set PIPELINE_BENCH_JSON=1 to generate BENCH_pipeline.json")
	}
	const reps = 3
	cases := []struct {
		name   string
		domain string
		mk     func() *prog.Workload
	}{
		{"streamagg", "lineage", mkStreamAgg},
		{"keyedmerge", "lineage", mkKeyedMerge},
		{"mapreduce", "lineage", mkMapReduce},
		{"streamagg", "bool", mkStreamAgg},
	}
	report := benchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Host:       benchfp.Current(),
		Note: "events = VM instructions analyzed. Offloaded events_per_sec is sustained " +
			"pipeline throughput events/max(record_s, analyze_s): the record stage runs on the " +
			"execution core and the analyze stage consumes the batch stream on spare cores, so " +
			"the slowest stage sets the pipeline's rate. events_per_sec_serialized " +
			"(= events/(record_s+analyze_s)) and concurrent_s give the degenerate " +
			"single-core figures for this host.",
	}
	for _, c := range cases {
		var steps uint64
		nativeS := bestOf(reps, func() {
			w := c.mk()
			m := w.NewMachine()
			if res := m.Run(); res.Failed {
				t.Fatal(res.FailMsg)
			}
			steps = m.Steps()
		})
		inlineS := bestOf(reps, func() {
			runInline(t, c.mk(), c.domain)
		})
		row := benchRow{
			Workload: c.name, Domain: c.domain, Events: steps, NativeS: nativeS,
			Inline: benchInline{
				WallS:            inlineS,
				EventsPerSec:     float64(steps) / inlineS,
				SlowdownVsNative: inlineS / nativeS,
			},
		}
		// Record stage, steady state: the live pipeline recycles batch
		// storage through the recorder's pool, so measure with batches
		// freed as they seal (Collect would charge the recorder for
		// retaining the whole trace).
		recordS := bestOf(reps, func() {
			w := c.mk()
			m := w.NewMachine()
			var rec *vm.Recorder
			rec = vm.NewRecorder(vm.DefaultBatchEvents, dift.Relevant, func(b *vm.Batch) { rec.Free(b) })
			m.AttachTool(rec)
			if res := m.Run(); res.Failed {
				t.Fatal(res.FailMsg)
			}
			rec.Flush()
		})
		// One offline trace, reused: Consume-mode pipelines never
		// mutate or pool the batches, so each rep just needs a fresh
		// pipeline.
		wTrace := c.mk()
		mTrace := wTrace.NewMachine()
		trace, res := Collect(mTrace, vm.DefaultBatchEvents)
		if res.Failed {
			t.Fatal(res.FailMsg)
		}
		for _, workers := range []int{1, 2, 4} {
			analyzeS := bestOf(reps, func() {
				consumeTrace(t, wTrace, c.domain, workers, trace)
			})
			concurrentS := bestOf(reps, func() {
				runOffloaded(t, c.mk(), c.domain, workers)
			})
			bottleneck := recordS
			if analyzeS > bottleneck {
				bottleneck = analyzeS
			}
			row.Offloaded = append(row.Offloaded, benchOffloaded{
				Workers:                workers,
				RecordS:                recordS,
				AnalyzeS:               analyzeS,
				ConcurrentS:            concurrentS,
				EventsPerSec:           float64(steps) / bottleneck,
				AnalyzeEventsPerSec:    float64(steps) / analyzeS,
				EventsPerSecSerialized: float64(steps) / (recordS + analyzeS),
				SlowdownVsNative:       concurrentS / nativeS,
			})
		}
		report.Results = append(report.Results, row)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_pipeline.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range report.Results {
		fmt.Printf("%s/%s: native %.3fs, inline %.0f ev/s, offloaded-w2 sustained %.0f ev/s\n",
			r.Workload, r.Domain, r.NativeS, r.Inline.EventsPerSec, r.Offloaded[1].EventsPerSec)
	}
}

// consumeTrace propagates an offline trace through a fresh pipeline.
func consumeTrace(t testing.TB, w *prog.Workload, domain string, workers int, batches []*vm.Batch) {
	opt := Options{Workers: workers}
	switch domain {
	case "bool":
		p := New[bool](dift.Bool{}, dift.DefaultPolicy(), opt)
		p.Consume(batches)
		p.Close()
	case "lineage":
		d := lineage.NewLockedDomain(lineage.BitsFor(len(w.Inputs[prog.ChIn]) + 8))
		p := New[bdd.Ref](d, dift.DefaultPolicy(), opt)
		p.AddSink(lineage.NewRecorder(d.Domain))
		p.Consume(batches)
		p.Close()
	default:
		t.Fatalf("unknown domain %q", domain)
	}
}

package pipeline

import (
	"sync"

	"scaldift/internal/vm"
)

// This file is the consumer-side machinery shared by every offloaded
// analysis kind: the DIFT propagation pipeline in this package and
// the ONTRAC dependence-tracing stage (internal/ontrac). A
// BatchHandler supplies the analysis; Consumer supplies windowing,
// group alignment, sync ordering, channel plumbing, and pool
// recycling; Pool supplies worker goroutines.

// BatchHandler consumes whole windows of recorded batches. Both
// methods run on the consumer goroutine; Window owns the batches only
// for the duration of the call (the Consumer returns them to the
// recorder pool afterwards), so a handler must not retain events.
type BatchHandler interface {
	// Window processes an accumulated window. Its batches never break
	// a flush group, so the window covers whole contiguous global-Seq
	// ranges and may be reordered internally (per-thread chains).
	Window(w []*vm.Batch)
	// Sync processes a solo thread-communication batch — a global
	// ordering point. The Consumer drains the open window first, so
	// everything recorded before the batch has been applied.
	Sync(b *vm.Batch)
}

// Consumer accumulates sealed batches into flush-group-aligned
// windows and hands them to a BatchHandler, either live from an
// attached machine (Attach + Close) or offline (Consume).
type Consumer struct {
	h             BatchHandler
	windowBatches int

	rec  *vm.Recorder
	in   chan *vm.Batch
	done chan struct{}

	window   []*vm.Batch
	winGroup uint64
}

// NewConsumer creates a consumer delivering windows of about
// windowBatches batches (grown to flush-group boundaries) to h.
func NewConsumer(h BatchHandler, windowBatches int) *Consumer {
	if windowBatches <= 0 {
		windowBatches = 4
	}
	return &Consumer{h: h, windowBatches: windowBatches}
}

// Attach connects the consumer to m via a batching recorder with the
// given filter and starts the consumer goroutine. Call Close after
// the run to flush and drain.
func (c *Consumer) Attach(m *vm.Machine, batchEvents, queueDepth int, filter func(*vm.Event) bool) {
	if queueDepth <= 0 {
		queueDepth = 64
	}
	c.in = make(chan *vm.Batch, queueDepth)
	c.done = make(chan struct{})
	//scaldift:ignore poolescape emit hands batch ownership to the consumer goroutine, which recycles it after feed
	c.rec = vm.NewRecorder(batchEvents, filter, func(b *vm.Batch) { c.in <- b })
	m.AttachTool(c.rec)
	go func() {
		for b := range c.in {
			c.feed(b)
		}
		c.flushWindow()
		close(c.done)
	}()
}

// Consume feeds an offline batch stream (from Collect) synchronously
// on the calling goroutine and drains the trailing window. It may be
// called repeatedly.
func (c *Consumer) Consume(batches []*vm.Batch) {
	for _, b := range batches {
		c.feed(b)
	}
	c.flushWindow()
}

// Close flushes the attached recorder and drains the consumer
// goroutine. Idempotent; a no-op for offline consumers.
func (c *Consumer) Close() {
	if c.rec != nil {
		c.rec.Flush()
	}
	if c.in != nil {
		close(c.in)
		<-c.done
		c.in = nil
	}
}

// feed accepts one sealed batch. Windows only break at flush-group
// boundaries: the batches of one group jointly cover a contiguous
// global sequence range, so splitting a group would let a window run
// ahead of another thread's older, not-yet-windowed events.
func (c *Consumer) feed(b *vm.Batch) {
	if b.Sync {
		c.flushWindow()
		c.h.Sync(b)
		c.free(b)
		return
	}
	if len(c.window) >= c.windowBatches && b.Group != c.winGroup {
		c.flushWindow()
	}
	c.window = append(c.window, b) //scaldift:ignore poolescape the consumer owns accumulated batches and recycles them itself in flushWindow
	c.winGroup = b.Group
}

// flushWindow hands the accumulated window to the handler and
// recycles its batches.
func (c *Consumer) flushWindow() {
	if len(c.window) == 0 {
		return
	}
	w := c.window
	c.window = c.window[:0]
	c.h.Window(w)
	for _, b := range w {
		c.free(b)
	}
}

func (c *Consumer) free(b *vm.Batch) {
	if c.rec != nil {
		c.rec.Free(b)
	}
}

// Pool is a fixed worker pool for window-internal parallelism.
// Submitted tasks must be independent; callers coordinate with their
// own WaitGroups (windows are barriered by their handlers).
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

// NewPool starts workers goroutines (minimum 1).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	p := &Pool{tasks: make(chan func(), 16)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Go submits a task.
func (p *Pool) Go(f func()) { p.tasks <- f }

// Run executes independent tasks to completion behind a barrier: a
// single task runs inline on the caller (no dispatch overhead),
// several run on the pool. This is the window-internal fan-out shape
// both offloaded analyses use.
func (p *Pool) Run(tasks []func()) {
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, f := range tasks {
		f := f
		p.Go(func() {
			defer wg.Done()
			f()
		})
	}
	wg.Wait()
}

// Close stops the workers after draining submitted tasks.
func (p *Pool) Close() {
	if p.tasks != nil {
		close(p.tasks)
		p.wg.Wait()
		p.tasks = nil
	}
}

// GroupChains splits a window into per-thread chains, preserving each
// thread's batch order, and reports the largest TID seen. Chains are
// the unit both offloaded analyses dispatch to workers.
func GroupChains(w []*vm.Batch) (chains [][]*vm.Batch, maxTID int) {
	byTID := make(map[int]int) // tid → chain index
	for _, b := range w {
		if b.TID > maxTID {
			maxTID = b.TID
		}
		if i, ok := byTID[b.TID]; ok {
			chains[i] = append(chains[i], b)
		} else {
			byTID[b.TID] = len(chains)
			chains = append(chains, []*vm.Batch{b})
		}
	}
	return chains, maxTID
}

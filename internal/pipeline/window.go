package pipeline

import (
	"sort"

	"scaldift/internal/dift"
	"scaldift/internal/vm"
)

// sinkRec is one deferred sink observation. Propagation records
// instead of firing so the pipeline can replay sinks in global
// sequence order, matching the inline engine exactly. The event is
// stored BY VALUE: the original *vm.Event points into a recorder
// batch that returns to the pool right after its window, so a sink
// holding that pointer past the callback would watch its event be
// overwritten by an unrelated one (the pooled-reuse hazard pinned by
// TestSinkEventsSurvivePoolReuse).
type sinkRec[L comparable] struct {
	ev     vm.Event
	label  L
	branch bool
}

// capture is the dift.Sink propagation runs against; deliver replays
// what it records into the registered sinks.
type capture[L comparable] struct{ recs []sinkRec[L] }

func (c *capture[L]) OnOutput(ev *vm.Event, l L) {
	c.recs = append(c.recs, sinkRec[L]{ev: *ev, label: l})
}

func (c *capture[L]) OnIndirectBranch(ev *vm.Event, l L) {
	c.recs = append(c.recs, sinkRec[L]{ev: *ev, label: l, branch: true})
}

// difthandler adapts Pipeline to the Consumer's BatchHandler.
type difthandler[L comparable] struct{ p *Pipeline[L] }

func (h difthandler[L]) Window(w []*vm.Batch) { h.p.processWindow(w) }

func (h difthandler[L]) Sync(b *vm.Batch) {
	// Global ordering point (the window was already drained): apply
	// the communication event by itself.
	h.p.applyOrdered([]*vm.Batch{b})
}

// processWindow propagates one window: concurrently when its
// per-thread chains provably touch disjoint memory (per the adaptive
// conflict analysis in learner.go), otherwise as an ordered
// sequential merge.
func (p *Pipeline[L]) processWindow(w []*vm.Batch) {
	chains, maxTID := GroupChains(w)
	p.ensureTID(maxTID)
	if len(chains) == 1 {
		// One thread: its batches are already in both program and
		// global order, so propagate directly with no Seq sort. Sink
		// observations still go through capture/deliver — that is the
		// stable-copy guarantee, not an ordering step.
		p.applyChain(chains[0])
		return
	}
	plan := p.learner.analyze(chains)
	if plan.kind == planOrdered {
		p.applyOrdered(w)
		return
	}
	p.applyParallel(chains, plan, w)
}

// applyChain propagates one thread's batch chain in order on the
// consumer goroutine (the events are already globally ordered
// relative to everything processed so far), then delivers the
// captured sink observations.
func (p *Pipeline[L]) applyChain(ch []*vm.Batch) {
	sh := p.mem.ClaimAll()
	p.capBuf.recs = p.recsBuf[:0]
	for _, b := range ch {
		dift.StepBatch(p.dom, p.pol, p, sh, p.sinkBuf, b.Events)
		p.events += uint64(len(b.Events))
	}
	p.deliver(p.capBuf.recs)
	p.recsBuf = p.capBuf.recs[:0]
}

// applyOrdered merges the batches' events by global sequence number
// and propagates them one by one — the exact inline order — then
// delivers the captured sink observations. Used for sync batches and
// conflicting windows.
func (p *Pipeline[L]) applyOrdered(w []*vm.Batch) {
	evs := p.seqBuf[:0]
	for _, b := range w {
		for i := range b.Events {
			evs = append(evs, &b.Events[i])
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	sh := p.mem.ClaimAll()
	p.capBuf.recs = p.recsBuf[:0]
	for _, ev := range evs {
		if ev.Kind == vm.EvSpawn {
			p.ensureTID(int(ev.DstVal))
		}
		dift.Step(p.dom, p.pol, p, sh, p.sinkBuf, ev)
	}
	p.events += uint64(len(evs))
	p.deliver(p.capBuf.recs)
	p.recsBuf = p.capBuf.recs[:0]
	// Drop the event pointers before keeping the buffer: its batches
	// return to the recorder pool as soon as this window ends.
	for i := range evs {
		evs[i] = nil
	}
	p.seqBuf = evs[:0] //scaldift:ignore poolescape reslice of the nil-cleared scratch: length 0, pointers already dropped above
}

// applyParallel dispatches the plan's ownership groups to the worker
// pool — each group claims its shards before dispatch and propagates
// its chains through a lock-free owner View — then replays the
// recorded sink observations in sequence order. The Pool.Run
// dispatch/barrier pair is the fence required by the shadow.Epoch
// contract: ownership is assigned before it and revised only after.
// All per-owner machinery (views, captures, task closures) is cached
// on the Pipeline, so dispatching a window allocates nothing.
func (p *Pipeline[L]) applyParallel(chains [][]*vm.Batch, plan windowPlan, w []*vm.Batch) {
	p.mem.BeginEpoch()
	n := len(plan.groups)
	p.ensureOwners(n)
	for g := 0; g < n; g++ {
		p.claimMask(plan.masks[g], int32(g))
		p.caps[g].recs = p.caps[g].recs[:0]
	}
	p.curChains, p.curGroups = chains, plan.groups
	p.pool.Run(p.tasks[:n])
	recs := p.recsBuf[:0]
	for g := 0; g < n; g++ {
		recs = append(recs, p.caps[g].recs...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ev.Seq < recs[j].ev.Seq })
	for _, b := range w {
		p.events += uint64(len(b.Events))
	}
	p.deliver(recs)
	p.recsBuf = recs[:0]
}

// ensureOwners grows the cached per-owner state to n owners.
func (p *Pipeline[L]) ensureOwners(n int) {
	for len(p.tasks) < n {
		g := len(p.tasks)
		c := &capture[L]{}
		p.views = append(p.views, p.mem.View(int32(g)))
		p.caps = append(p.caps, c)
		p.wsinks = append(p.wsinks, []dift.Sink[L]{c})
		p.tasks = append(p.tasks, func() { p.runGroup(g) })
	}
}

// runGroup propagates the current window's group g: its chains, in
// window order, through owner g's view.
func (p *Pipeline[L]) runGroup(g int) {
	sh := p.views[g]
	sinks := p.wsinks[g]
	for _, ci := range p.curGroups[g] {
		for _, b := range p.curChains[ci] {
			dift.StepBatch(p.dom, p.pol, p, sh, sinks, b.Events)
		}
	}
}

// deliver replays sink observations (already sequence-ordered) into
// the registered sinks. Each observation is delivered through a
// per-delivery copy, so the *vm.Event a sink receives stays valid
// even if the sink retains it.
func (p *Pipeline[L]) deliver(recs []sinkRec[L]) {
	for i := range recs {
		rc := recs[i]
		for _, s := range p.sinks {
			if rc.branch {
				s.OnIndirectBranch(&rc.ev, rc.label)
			} else {
				s.OnOutput(&rc.ev, rc.label)
			}
		}
	}
}

// access is one chain's memory footprint.
type access struct {
	reads  map[int64]struct{}
	writes map[int64]struct{}
}

// chainAccess scans a chain for the addresses its propagation reads
// and writes. Register traffic is thread-private and needs no
// analysis; only the Step cases that touch the memory store count.
func chainAccess(ch []*vm.Batch) access {
	a := access{reads: map[int64]struct{}{}, writes: map[int64]struct{}{}}
	for _, b := range ch {
		for i := range b.Events {
			ev := &b.Events[i]
			switch ev.Kind {
			case vm.EvLoad:
				a.reads[ev.SrcMem] = struct{}{}
			case vm.EvStore:
				a.writes[ev.DstMem] = struct{}{}
			case vm.EvCas:
				a.reads[ev.SrcMem] = struct{}{}
				if ev.DstMem != vm.NoAddr {
					a.writes[ev.DstMem] = struct{}{}
				}
			case vm.EvFlag:
				if ev.DstMem != vm.NoAddr {
					a.writes[ev.DstMem] = struct{}{}
				}
			}
		}
	}
	return a
}

// claimMask claims every shard covered by a conflict mask for owner:
// bit i of the mask covers the shards ≡ i (mod 64) (see
// conflictLearner.maskBit).
func (p *Pipeline[L]) claimMask(mask uint64, owner int32) {
	n := p.mem.Shards()
	for bit := 0; bit < 64 && bit < n; bit++ {
		if mask&(1<<bit) == 0 {
			continue
		}
		for s := bit; s < n; s += 64 {
			p.mem.Claim(s, owner)
		}
	}
}

// overlaps reports whether the two address sets intersect.
func overlaps(a, b map[int64]struct{}) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for addr := range a {
		if _, ok := b[addr]; ok {
			return true
		}
	}
	return false
}

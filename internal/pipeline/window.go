package pipeline

import (
	"sort"
	"sync"

	"scaldift/internal/dift"
	"scaldift/internal/vm"
)

// sinkRec is one deferred sink observation. Workers record instead of
// firing so the pipeline can replay sinks in global sequence order,
// matching the inline engine exactly.
type sinkRec[L comparable] struct {
	ev     *vm.Event
	label  L
	branch bool
}

// capture is the dift.Sink workers propagate into.
type capture[L comparable] struct{ recs []sinkRec[L] }

func (c *capture[L]) OnOutput(ev *vm.Event, l L) {
	c.recs = append(c.recs, sinkRec[L]{ev: ev, label: l})
}

func (c *capture[L]) OnIndirectBranch(ev *vm.Event, l L) {
	c.recs = append(c.recs, sinkRec[L]{ev: ev, label: l, branch: true})
}

// chainTask is one thread's ordered batch chain within a window,
// dispatched to a worker.
type chainTask[L comparable] struct {
	batches []*vm.Batch
	recs    []sinkRec[L]
	wg      *sync.WaitGroup
}

// worker propagates chain tasks until the task channel closes.
func (p *Pipeline[L]) worker() {
	defer p.wwg.Done()
	for t := range p.tasks {
		var cap capture[L]
		sinks := []dift.Sink[L]{&cap}
		for _, b := range t.batches {
			for i := range b.Events {
				dift.Step(p.dom, p.pol, p, p.mem, sinks, &b.Events[i])
			}
		}
		t.recs = cap.recs
		t.wg.Done()
	}
}

// feed accepts one sealed batch on the consumer goroutine. Windows
// only break at flush-group boundaries: the batches of one group
// jointly cover a contiguous global sequence range, so splitting a
// group would let a window run ahead of another thread's older,
// not-yet-windowed events.
func (p *Pipeline[L]) feed(b *vm.Batch) {
	if b.Sync {
		// Global ordering point: drain the window, then apply the
		// communication event by itself.
		p.processWindow()
		p.applyOrdered([]*vm.Batch{b})
		p.free(b)
		return
	}
	if len(p.window) >= p.opt.WindowBatches && b.Group != p.winGroup {
		p.processWindow()
	}
	p.window = append(p.window, b)
	p.winGroup = b.Group
}

// processWindow propagates the accumulated window: concurrently when
// its per-thread chains provably touch disjoint memory, otherwise as
// an ordered sequential merge.
func (p *Pipeline[L]) processWindow() {
	if len(p.window) == 0 {
		return
	}
	w := p.window
	p.window = p.window[:0]

	chains, maxTID := groupChains(w)
	p.ensureTID(maxTID)
	switch {
	case len(chains) == 1:
		// One thread: its batches are already in both program and
		// global order, so propagate directly — no sort, no deferral.
		p.applyChain(chains[0])
	case conflicts(chains):
		p.applyOrdered(w)
	default:
		p.applyParallel(chains, w)
	}
	for _, b := range w {
		p.free(b)
	}
}

// applyChain propagates one thread's batch chain in order on the
// consumer goroutine, firing sinks directly (the events are already
// globally ordered relative to everything processed so far).
func (p *Pipeline[L]) applyChain(ch []*vm.Batch) {
	for _, b := range ch {
		for i := range b.Events {
			dift.Step(p.dom, p.pol, p, p.mem, p.sinks, &b.Events[i])
		}
		p.events += uint64(len(b.Events))
	}
}

// applyOrdered merges the batches' events by global sequence number
// and propagates them one by one — the exact inline order, sinks
// fired as reached. Used for sync batches and conflicting windows.
func (p *Pipeline[L]) applyOrdered(w []*vm.Batch) {
	evs := p.seqBuf[:0]
	for _, b := range w {
		for i := range b.Events {
			evs = append(evs, &b.Events[i])
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	for _, ev := range evs {
		if ev.Kind == vm.EvSpawn {
			p.ensureTID(int(ev.DstVal))
		}
		dift.Step(p.dom, p.pol, p, p.mem, p.sinks, ev)
	}
	p.events += uint64(len(evs))
	p.seqBuf = evs[:0]
}

// applyParallel dispatches each thread's chain to the worker pool,
// waits, and replays the recorded sink observations in sequence
// order.
func (p *Pipeline[L]) applyParallel(chains [][]*vm.Batch, w []*vm.Batch) {
	var wg sync.WaitGroup
	wg.Add(len(chains))
	tasks := make([]*chainTask[L], len(chains))
	for i, ch := range chains {
		t := &chainTask[L]{batches: ch, wg: &wg}
		tasks[i] = t
		p.tasks <- t
	}
	wg.Wait()
	recs := p.recsBuf[:0]
	for _, t := range tasks {
		recs = append(recs, t.recs...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ev.Seq < recs[j].ev.Seq })
	for _, b := range w {
		p.events += uint64(len(b.Events))
	}
	p.deliver(recs)
	p.recsBuf = recs[:0]
}

// deliver replays sink observations (already sequence-ordered) into
// the registered sinks.
func (p *Pipeline[L]) deliver(recs []sinkRec[L]) {
	for _, rc := range recs {
		for _, s := range p.sinks {
			if rc.branch {
				s.OnIndirectBranch(rc.ev, rc.label)
			} else {
				s.OnOutput(rc.ev, rc.label)
			}
		}
	}
}

func (p *Pipeline[L]) free(b *vm.Batch) {
	if p.rec != nil {
		p.rec.Free(b)
	}
}

// groupChains splits a window into per-thread chains, preserving each
// thread's batch order, and reports the largest TID seen.
func groupChains(w []*vm.Batch) (chains [][]*vm.Batch, maxTID int) {
	byTID := make(map[int]int) // tid → chain index
	for _, b := range w {
		if b.TID > maxTID {
			maxTID = b.TID
		}
		if i, ok := byTID[b.TID]; ok {
			chains[i] = append(chains[i], b)
		} else {
			byTID[b.TID] = len(chains)
			chains = append(chains, []*vm.Batch{b})
		}
	}
	return chains, maxTID
}

// access is one chain's memory footprint.
type access struct {
	reads  map[int64]struct{}
	writes map[int64]struct{}
}

// chainAccess scans a chain for the addresses its propagation reads
// and writes. Register traffic is thread-private and needs no
// analysis; only the Step cases that touch the memory store count.
func chainAccess(ch []*vm.Batch) access {
	a := access{reads: map[int64]struct{}{}, writes: map[int64]struct{}{}}
	for _, b := range ch {
		for i := range b.Events {
			ev := &b.Events[i]
			switch ev.Kind {
			case vm.EvLoad:
				a.reads[ev.SrcMem] = struct{}{}
			case vm.EvStore:
				a.writes[ev.DstMem] = struct{}{}
			case vm.EvCas:
				a.reads[ev.SrcMem] = struct{}{}
				if ev.DstMem != vm.NoAddr {
					a.writes[ev.DstMem] = struct{}{}
				}
			case vm.EvFlag:
				if ev.DstMem != vm.NoAddr {
					a.writes[ev.DstMem] = struct{}{}
				}
			}
		}
	}
	return a
}

// conflicts reports whether any chain's writes overlap another
// chain's reads or writes — the condition under which concurrent
// propagation could diverge from the inline order.
func conflicts(chains [][]*vm.Batch) bool {
	accs := make([]access, len(chains))
	for i, ch := range chains {
		accs[i] = chainAccess(ch)
	}
	for i := range accs {
		for j := i + 1; j < len(accs); j++ {
			if overlaps(accs[i].writes, accs[j].writes) ||
				overlaps(accs[i].writes, accs[j].reads) ||
				overlaps(accs[j].writes, accs[i].reads) {
				return true
			}
		}
	}
	return false
}

// overlaps reports whether the two address sets intersect.
func overlaps(a, b map[int64]struct{}) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for addr := range a {
		if _, ok := b[addr]; ok {
			return true
		}
	}
	return false
}

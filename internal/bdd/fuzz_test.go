package bdd

import (
	"testing"
)

// fuzzBits keeps the universe small enough that the map reference
// model stays cheap while still exercising multi-level structure.
const fuzzBits = 7
const fuzzUniverse = 1 << fuzzBits

// FuzzSetOps drives the roBDD set algebra from an arbitrary operation
// stream and cross-checks every slot against a map[int]bool reference
// model: Union, Intersect, Diff, Subset, Contains, Count, Elements,
// and the NodeSize/NodeSizeAll accounting invariants.
func FuzzSetOps(f *testing.F) {
	f.Add([]byte{0, 5, 0, 1, 20, 60, 2, 0, 1})
	f.Add([]byte{0, 127, 0, 1, 0, 127, 3, 1, 0, 4, 0, 1, 7, 0, 1})
	f.Add([]byte{1, 10, 11, 1, 12, 13, 2, 0, 1, 5, 0, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewManager(fuzzBits)
		const slots = 4
		sets := [slots]Ref{}
		model := [slots]map[int]bool{}
		for i := range model {
			model[i] = map[int]bool{}
		}
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 8
			x := int64(data[i+1]) % fuzzUniverse
			y := int64(data[i+2]) % fuzzUniverse
			dst := int(data[i]>>3) % slots
			a := int(data[i+1]>>1) % slots
			b := int(data[i+2]>>1) % slots
			switch op {
			case 0: // dst = {x}
				sets[dst] = m.Singleton(x)
				model[dst] = map[int]bool{int(x): true}
			case 1: // dst = [min(x,y), max(x,y)]
				lo, hi := x, y
				if lo > hi {
					lo, hi = hi, lo
				}
				sets[dst] = m.Interval(lo, hi)
				model[dst] = map[int]bool{}
				for v := lo; v <= hi; v++ {
					model[dst][int(v)] = true
				}
			case 2: // dst = a ∪ b
				sets[dst] = m.Union(sets[a], sets[b])
				model[dst] = setUnion(model[a], model[b])
			case 3: // dst = a ∩ b
				sets[dst] = m.Intersect(sets[a], sets[b])
				model[dst] = setIntersect(model[a], model[b])
			case 4: // dst = a \ b
				sets[dst] = m.Diff(sets[a], sets[b])
				model[dst] = setDiff(model[a], model[b])
			case 5: // check Contains
				if m.Contains(sets[a], x) != model[a][int(x)] {
					t.Fatalf("Contains(slot %d, %d) = %v, want %v",
						a, x, m.Contains(sets[a], x), model[a][int(x)])
				}
			case 6: // check Subset both ways
				if m.Subset(sets[a], sets[b]) != setSubset(model[a], model[b]) {
					t.Fatalf("Subset(%d, %d) diverged from model", a, b)
				}
			case 7: // dst = ∅ or universe
				if x%2 == 0 {
					sets[dst] = m.Empty()
					model[dst] = map[int]bool{}
				} else {
					sets[dst] = m.Universe()
					model[dst] = map[int]bool{}
					for v := 0; v < fuzzUniverse; v++ {
						model[dst][v] = true
					}
				}
			}
		}
		// Final full check of every slot.
		sizeSum := 0
		for i := range sets {
			if got, want := m.Count(sets[i]), uint64(len(model[i])); got != want {
				t.Fatalf("slot %d: Count = %d, want %d", i, got, want)
			}
			elems := m.Elements(sets[i], nil)
			if len(elems) != len(model[i]) {
				t.Fatalf("slot %d: %d elements, want %d", i, len(elems), len(model[i]))
			}
			for j, e := range elems {
				if !model[i][int(e)] {
					t.Fatalf("slot %d: spurious element %d", i, e)
				}
				if j > 0 && elems[j-1] >= e {
					t.Fatalf("slot %d: elements not ascending", i)
				}
			}
			sizeSum += m.NodeSize(sets[i])
		}
		// Shared-size invariants: the deduplicated count over all
		// roots never exceeds the per-set sum nor the manager's node
		// total, and recomputation is stable.
		all := m.NodeSizeAll(sets[:])
		if all > sizeSum {
			t.Fatalf("NodeSizeAll %d > sum of NodeSize %d", all, sizeSum)
		}
		if all > m.NumNodes() {
			t.Fatalf("NodeSizeAll %d > NumNodes %d", all, m.NumNodes())
		}
		if again := m.NodeSizeAll(sets[:]); again != all {
			t.Fatalf("NodeSizeAll unstable: %d then %d", all, again)
		}
	})
}

func setUnion(a, b map[int]bool) map[int]bool {
	r := map[int]bool{}
	for v := range a {
		r[v] = true
	}
	for v := range b {
		r[v] = true
	}
	return r
}

func setIntersect(a, b map[int]bool) map[int]bool {
	r := map[int]bool{}
	for v := range a {
		if b[v] {
			r[v] = true
		}
	}
	return r
}

func setDiff(a, b map[int]bool) map[int]bool {
	r := map[int]bool{}
	for v := range a {
		if !b[v] {
			r[v] = true
		}
	}
	return r
}

func setSubset(a, b map[int]bool) bool {
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// TestImportTranslatesAcrossManagers pins bdd.Import: structurally
// copying a set into another manager preserves the denoted set, and a
// shared memo translates shared subgraphs once.
func TestImportTranslatesAcrossManagers(t *testing.T) {
	src := NewManager(8)
	dst := NewManager(8)
	a := src.Union(src.Interval(3, 40), src.Singleton(200))
	b := src.Union(a, src.Interval(100, 130)) // shares a's subgraph
	memo := map[Ref]Ref{}
	ia := dst.Import(src, a, memo)
	ib := dst.Import(src, b, memo)
	for _, c := range []struct{ s, d Ref }{{a, ia}, {b, ib}} {
		se := src.Elements(c.s, nil)
		de := dst.Elements(c.d, nil)
		if len(se) != len(de) {
			t.Fatalf("imported set size %d, want %d", len(de), len(se))
		}
		for i := range se {
			if se[i] != de[i] {
				t.Fatalf("imported element %d = %d, want %d", i, de[i], se[i])
			}
		}
	}
	// Importing again through the same memo is a no-op lookup.
	if dst.Import(src, a, memo) != ia {
		t.Fatal("memoized import not stable")
	}
	// Same-manager import is the identity.
	if src.Import(src, a, nil) != a {
		t.Fatal("same-manager import should be identity")
	}
}

// Package bdd implements reduced ordered binary decision diagrams
// (roBDDs) specialized for representing sets of small non-negative
// integers — the lineage sets of §3.4 / [12] of the paper.
//
// A set S ⊆ {0..2^bits-1} is encoded as the boolean function that is
// true exactly on the binary encodings of S's elements, with the most
// significant bit as the top variable. The paper's two observations —
// lineage sets of live values overlap heavily, and the input indices
// in a set are clustered — are exactly the cases where this encoding
// collapses: shared subsets share subgraphs, and a contiguous run of
// indices needs O(bits) nodes rather than O(run length).
//
// Nodes are hash-consed in a manager table, so set equality is
// pointer (handle) equality and memory is shared across all sets.
package bdd

import "fmt"

// Ref is a handle to a BDD node owned by a Manager. The constants
// False and True are the terminal nodes.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level int32 // variable index, 0 = most significant bit
	lo    Ref   // child when the variable is 0
	hi    Ref   // child when the variable is 1
}

const (
	opUnion uint8 = iota
	opIntersect
	opDiff
)

// opEntry is one slot of the direct-mapped computed table: the last
// result of `op` applied to (a, b) that hashed here. Slots are lossy —
// a colliding operation overwrites — which only ever costs a
// recomputation, never correctness: operation results are canonical
// refs regardless of how they were (re)derived.
type opEntry struct {
	a, b Ref
	op   uint8
	ok   bool
	r    Ref
}

// Manager owns the node table and operation caches for one BDD space.
// It is not safe for concurrent use.
//
// The unique table and computed table are hand-rolled open-addressed /
// direct-mapped arrays rather than Go maps: every propagation step of
// the lineage domain funnels into mk and the set operations, and on
// those paths the runtime map's hashing and probing dominated the
// whole analyze stage of the offloaded pipeline (see docs/PERF.md).
type Manager struct {
	bits  int
	nodes []node
	// unique is the hash-consing table: open-addressed, power-of-two
	// sized, storing Refs (0 = empty slot; the terminals are never
	// consed). The node a slot identifies lives in nodes[ref].
	unique  []Ref
	uniqLen int
	// ops is the direct-mapped computed table for Union / Intersect /
	// Diff. It is reallocated (entries dropped) when the node table
	// grows, keeping its size proportional to the working set.
	ops    []opEntry
	counts map[Ref]uint64 // memoized set cardinalities

	// Traversal scratch reused across NodeSize/NodeSizeAll calls: a
	// node is visited in the current traversal iff seen[ref] == stamp.
	// Avoids allocating a map per query on hot reporting paths.
	seen  []uint32
	stamp uint32
}

const (
	initialUniqueSlots = 1 << 10
	initialOpSlots     = 1 << 10
	maxOpSlots         = 1 << 18
)

// NewManager creates a manager for sets over {0 .. 2^bits-1}.
func NewManager(bits int) *Manager {
	if bits <= 0 || bits > 62 {
		panic(fmt.Sprintf("bdd: unsupported bit width %d", bits))
	}
	m := &Manager{
		bits:   bits,
		nodes:  make([]node, 2, 1024),
		unique: make([]Ref, initialUniqueSlots),
		ops:    make([]opEntry, initialOpSlots),
		counts: make(map[Ref]uint64),
	}
	// nodes[0] and nodes[1] are the terminals; level = bits marks
	// "below the last variable".
	m.nodes[0] = node{level: int32(bits)}
	m.nodes[1] = node{level: int32(bits)}
	return m
}

// hashNode mixes a node's fields into a table index seed
// (splitmix64-style finalizer over the packed children + level).
func hashNode(level int32, lo, hi Ref) uint64 {
	h := uint64(uint32(lo)) | uint64(uint32(hi))<<32
	h ^= uint64(uint32(level)) << 21
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// growUnique doubles the unique table and rehashes every interned
// node. The computed table is reallocated alongside (dropping its
// entries — they are only memoization) so it scales with node count.
func (m *Manager) growUnique() {
	nt := make([]Ref, len(m.unique)*2)
	mask := uint64(len(nt) - 1)
	for r := Ref(2); int(r) < len(m.nodes); r++ {
		n := m.nodes[r]
		i := hashNode(n.level, n.lo, n.hi) & mask
		for nt[i] != 0 {
			i = (i + 1) & mask
		}
		nt[i] = r
	}
	m.unique = nt
	if len(m.ops) < len(nt) && len(m.ops) < maxOpSlots {
		m.ops = make([]opEntry, len(m.ops)*2)
	}
}

// lookupOp consults the computed table for op(a, b).
func (m *Manager) lookupOp(op uint8, a, b Ref) (Ref, bool) {
	e := &m.ops[(hashNode(int32(op), a, b))&uint64(len(m.ops)-1)]
	if e.ok && e.op == op && e.a == a && e.b == b {
		return e.r, true
	}
	return 0, false
}

// storeOp records op(a, b) = r, evicting whatever hashed to the slot.
func (m *Manager) storeOp(op uint8, a, b Ref, r Ref) {
	m.ops[(hashNode(int32(op), a, b))&uint64(len(m.ops)-1)] = opEntry{a: a, b: b, op: op, ok: true, r: r}
}

// Bits returns the universe width.
func (m *Manager) Bits() int { return m.bits }

// NumNodes returns the number of live nodes (including terminals) —
// the memory figure the lineage experiments report.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// mk returns the canonical node (level, lo, hi), applying the
// reduction rules: identical children collapse, duplicates share.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	mask := uint64(len(m.unique) - 1)
	i := hashNode(level, lo, hi) & mask
	for {
		r := m.unique[i]
		if r == 0 {
			break
		}
		if n := m.nodes[r]; n.level == level && n.lo == lo && n.hi == hi {
			return r
		}
		i = (i + 1) & mask
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	m.unique[i] = r
	m.uniqLen++
	if m.uniqLen*4 >= len(m.unique)*3 {
		m.growUnique()
	}
	return r
}

// Empty returns the empty set.
func (m *Manager) Empty() Ref { return False }

// Universe returns the full set {0..2^bits-1}.
func (m *Manager) Universe() Ref { return True }

// Singleton returns the set {x}.
func (m *Manager) Singleton(x int64) Ref {
	if x < 0 || x >= 1<<uint(m.bits) {
		panic(fmt.Sprintf("bdd: element %d outside universe of %d bits", x, m.bits))
	}
	r := True
	for level := int32(m.bits) - 1; level >= 0; level-- {
		bit := (x >> uint(int32(m.bits)-1-level)) & 1
		if bit == 1 {
			r = m.mk(level, False, r)
		} else {
			r = m.mk(level, r, False)
		}
	}
	return r
}

// Interval returns the set {lo..hi} (inclusive). Clustered lineage
// sets are intervals, which BDDs encode in O(bits) nodes.
func (m *Manager) Interval(lo, hi int64) Ref {
	if lo > hi {
		return False
	}
	return m.interval(0, 0, int64(1)<<uint(m.bits)-1, lo, hi)
}

// interval builds the BDD for [lo,hi] restricted to the subtree at
// the given level covering values [min,max].
func (m *Manager) interval(level int32, min, max, lo, hi int64) Ref {
	if hi < min || lo > max {
		return False
	}
	if lo <= min && max <= hi {
		return True
	}
	mid := min + (max-min)/2
	l := m.interval(level+1, min, mid, lo, hi)
	h := m.interval(level+1, mid+1, max, lo, hi)
	return m.mk(level, l, h)
}

// Union returns a ∪ b.
func (m *Manager) Union(a, b Ref) Ref {
	switch {
	case a == b:
		return a
	case a == False:
		return b
	case b == False:
		return a
	case a == True || b == True:
		return True
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := m.lookupOp(opUnion, a, b); ok {
		return r
	}
	na, nb := m.nodes[a], m.nodes[b]
	var r Ref
	switch {
	case na.level == nb.level:
		r = m.mk(na.level, m.Union(na.lo, nb.lo), m.Union(na.hi, nb.hi))
	case na.level < nb.level:
		r = m.mk(na.level, m.Union(na.lo, b), m.Union(na.hi, b))
	default:
		r = m.mk(nb.level, m.Union(a, nb.lo), m.Union(a, nb.hi))
	}
	m.storeOp(opUnion, a, b, r)
	return r
}

// Intersect returns a ∩ b.
func (m *Manager) Intersect(a, b Ref) Ref {
	switch {
	case a == b:
		return a
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	}
	if a > b {
		a, b = b, a
	}
	if r, ok := m.lookupOp(opIntersect, a, b); ok {
		return r
	}
	na, nb := m.nodes[a], m.nodes[b]
	var r Ref
	switch {
	case na.level == nb.level:
		r = m.mk(na.level, m.Intersect(na.lo, nb.lo), m.Intersect(na.hi, nb.hi))
	case na.level < nb.level:
		r = m.mk(na.level, m.Intersect(na.lo, b), m.Intersect(na.hi, b))
	default:
		r = m.mk(nb.level, m.Intersect(a, nb.lo), m.Intersect(a, nb.hi))
	}
	m.storeOp(opIntersect, a, b, r)
	return r
}

// Diff returns a \ b.
func (m *Manager) Diff(a, b Ref) Ref {
	switch {
	case a == False || b == True:
		return False
	case b == False:
		return a
	case a == b:
		return False
	}
	if r, ok := m.lookupOp(opDiff, a, b); ok {
		return r
	}
	na, nb := m.nodes[a], m.nodes[b]
	var r Ref
	switch {
	case a == True:
		// universe minus b at b's level
		r = m.mk(nb.level, m.Diff(True, nb.lo), m.Diff(True, nb.hi))
	case na.level == nb.level:
		r = m.mk(na.level, m.Diff(na.lo, nb.lo), m.Diff(na.hi, nb.hi))
	case na.level < nb.level:
		r = m.mk(na.level, m.Diff(na.lo, b), m.Diff(na.hi, b))
	default:
		r = m.mk(nb.level, m.Diff(a, nb.lo), m.Diff(a, nb.hi))
	}
	m.storeOp(opDiff, a, b, r)
	return r
}

// Contains reports whether x ∈ s. Levels absent from the path are
// don't-care variables, so only the levels present are tested.
func (m *Manager) Contains(s Ref, x int64) bool {
	r := s
	for r > True {
		n := m.nodes[r]
		if (x>>uint(int32(m.bits)-1-n.level))&1 == 1 {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return r == True
}

// Count returns |s|.
func (m *Manager) Count(s Ref) uint64 {
	return m.countAt(s, 0)
}

func (m *Manager) countAt(s Ref, level int32) uint64 {
	width := uint(int32(m.bits) - level)
	if s == False {
		return 0
	}
	if s == True {
		return 1 << width
	}
	n := m.nodes[s]
	// Scale for skipped levels between `level` and n.level.
	skipped := uint(n.level - level)
	if c, ok := m.counts[s]; ok {
		return c << skipped
	}
	c := m.countAt(n.lo, n.level+1) + m.countAt(n.hi, n.level+1)
	m.counts[s] = c
	return c << skipped
}

// Elements appends the members of s to dst in increasing order and
// returns it. Intended for small sets (tests, reports).
func (m *Manager) Elements(s Ref, dst []int64) []int64 {
	var walk func(r Ref, level int32, prefix int64)
	walk = func(r Ref, level int32, prefix int64) {
		if r == False {
			return
		}
		if level == int32(m.bits) {
			dst = append(dst, prefix)
			return
		}
		if r == True {
			walk(True, level+1, prefix<<1)
			walk(True, level+1, prefix<<1|1)
			return
		}
		n := m.nodes[r]
		if n.level > level {
			walk(r, level+1, prefix<<1)
			walk(r, level+1, prefix<<1|1)
			return
		}
		walk(n.lo, level+1, prefix<<1)
		walk(n.hi, level+1, prefix<<1|1)
	}
	walk(s, 0, 0)
	return dst
}

// NodeSize returns the number of distinct nodes reachable from s
// (excluding terminals) — the per-set memory figure.
func (m *Manager) NodeSize(s Ref) int {
	m.beginVisit()
	return m.countReachable(s)
}

// NodeSizeAll returns the number of distinct nodes reachable from any
// of the roots (excluding terminals) — the *shared* memory figure for
// a whole population of sets, which the lineage experiments compare
// against the naive sum of per-set sizes (§3.4).
func (m *Manager) NodeSizeAll(roots []Ref) int {
	m.beginVisit()
	total := 0
	for _, r := range roots {
		total += m.countReachable(r)
	}
	return total
}

// beginVisit starts a fresh traversal epoch on the shared scratch.
func (m *Manager) beginVisit() {
	if len(m.seen) < len(m.nodes) {
		m.seen = append(m.seen, make([]uint32, len(m.nodes)-len(m.seen))...)
	}
	m.stamp++
	if m.stamp == 0 { // wrapped: clear and restart
		for i := range m.seen {
			m.seen[i] = 0
		}
		m.stamp = 1
	}
}

// countReachable counts not-yet-visited non-terminal nodes reachable
// from r in the current epoch.
func (m *Manager) countReachable(r Ref) int {
	if r <= True || m.seen[r] == m.stamp {
		return 0
	}
	m.seen[r] = m.stamp
	n := m.nodes[r]
	return 1 + m.countReachable(n.lo) + m.countReachable(n.hi)
}

// Subset reports whether a ⊆ b.
func (m *Manager) Subset(a, b Ref) bool { return m.Diff(a, b) == False }

// Import copies the set s, owned by src, into m and returns m's Ref
// for the identical set. memo (src Ref → m Ref) is the structural
// translation cache; pass the same map when importing many roots from
// one source manager so shared subgraphs are translated once. This is
// the translate half of the per-worker-manager strategy for running
// lineage propagation on concurrent workers: each worker builds sets
// in a private manager and the merge imports the surviving roots into
// the canonical one.
func (m *Manager) Import(src *Manager, s Ref, memo map[Ref]Ref) Ref {
	if src == m {
		return s
	}
	if src.bits != m.bits {
		panic(fmt.Sprintf("bdd: import across universes (%d bits into %d)", src.bits, m.bits))
	}
	if s <= True {
		return s
	}
	if r, ok := memo[s]; ok {
		return r
	}
	n := src.nodes[s]
	r := m.mk(n.level, m.Import(src, n.lo, memo), m.Import(src, n.hi, memo))
	memo[s] = r
	return r
}

package bdd

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSingletonContains(t *testing.T) {
	m := NewManager(10)
	s := m.Singleton(345)
	if !m.Contains(s, 345) {
		t.Fatal("singleton should contain its element")
	}
	for _, x := range []int64{0, 1, 344, 346, 1023} {
		if m.Contains(s, x) {
			t.Fatalf("singleton contains stray %d", x)
		}
	}
	if m.Count(s) != 1 {
		t.Fatalf("count = %d", m.Count(s))
	}
}

func TestEmptyAndUniverse(t *testing.T) {
	m := NewManager(8)
	if m.Count(m.Empty()) != 0 {
		t.Fatal("empty count")
	}
	if m.Count(m.Universe()) != 256 {
		t.Fatalf("universe count = %d", m.Count(m.Universe()))
	}
	if m.Contains(m.Empty(), 3) || !m.Contains(m.Universe(), 3) {
		t.Fatal("membership wrong")
	}
}

func TestUnionIntersectDiff(t *testing.T) {
	m := NewManager(8)
	a := m.Union(m.Singleton(1), m.Union(m.Singleton(2), m.Singleton(3)))
	b := m.Union(m.Singleton(3), m.Union(m.Singleton(4), m.Singleton(5)))
	u := m.Union(a, b)
	if m.Count(u) != 5 {
		t.Fatalf("union count = %d", m.Count(u))
	}
	i := m.Intersect(a, b)
	if m.Count(i) != 1 || !m.Contains(i, 3) {
		t.Fatalf("intersect = %v", m.Elements(i, nil))
	}
	d := m.Diff(a, b)
	if got := m.Elements(d, nil); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("diff = %v", got)
	}
}

func TestCanonicity(t *testing.T) {
	m := NewManager(12)
	// Same set built two ways must be the same handle.
	a := m.Union(m.Singleton(7), m.Singleton(100))
	b := m.Union(m.Singleton(100), m.Singleton(7))
	if a != b {
		t.Fatal("hash-consing broken: same set, different handles")
	}
	c := m.Interval(5, 9)
	d := m.Union(m.Singleton(5), m.Union(m.Singleton(6),
		m.Union(m.Singleton(7), m.Union(m.Singleton(8), m.Singleton(9)))))
	if c != d {
		t.Fatal("interval and element-wise union differ")
	}
}

func TestInterval(t *testing.T) {
	m := NewManager(10)
	s := m.Interval(100, 200)
	if m.Count(s) != 101 {
		t.Fatalf("count = %d", m.Count(s))
	}
	if !m.Contains(s, 100) || !m.Contains(s, 200) || m.Contains(s, 99) || m.Contains(s, 201) {
		t.Fatal("interval bounds wrong")
	}
	if m.Interval(5, 4) != False {
		t.Fatal("reversed interval should be empty")
	}
	full := m.Interval(0, 1023)
	if full != True {
		t.Fatal("full interval should be the universe terminal")
	}
}

func TestIntervalCompactness(t *testing.T) {
	m := NewManager(20)
	// A contiguous run of 10k elements must be tiny; a same-size
	// scattered set must not be. This is the clustering property the
	// lineage application exploits.
	run := m.Interval(100000, 110000)
	runSize := m.NodeSize(run)
	if runSize > 4*20 {
		t.Fatalf("interval BDD has %d nodes, want O(bits)", runSize)
	}
	scattered := m.Empty()
	for i := int64(0); i < 2000; i++ {
		scattered = m.Union(scattered, m.Singleton(i*397%1000000))
	}
	if m.NodeSize(scattered) <= runSize {
		t.Fatalf("scattered set (%d nodes) should dwarf interval (%d nodes)",
			m.NodeSize(scattered), runSize)
	}
}

func TestElementsSorted(t *testing.T) {
	m := NewManager(10)
	want := []int64{3, 17, 18, 19, 512, 1000}
	s := m.Empty()
	for _, x := range want {
		s = m.Union(s, m.Singleton(x))
	}
	got := m.Elements(s, nil)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("not sorted: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	m := NewManager(10)
	mk := func(xs []uint16) Ref {
		s := m.Empty()
		for _, x := range xs {
			s = m.Union(s, m.Singleton(int64(x%1024)))
		}
		return s
	}
	// Union is commutative, associative, idempotent; De Morgan-ish
	// identity: (a∪b)\b == a\b; |a∪b| = |a|+|b|-|a∩b|.
	f := func(xa, xb, xc []uint16) bool {
		a, b, c := mk(xa), mk(xb), mk(xc)
		if m.Union(a, b) != m.Union(b, a) {
			return false
		}
		if m.Union(a, m.Union(b, c)) != m.Union(m.Union(a, b), c) {
			return false
		}
		if m.Union(a, a) != a {
			return false
		}
		if m.Diff(m.Union(a, b), b) != m.Diff(a, b) {
			return false
		}
		if m.Count(m.Union(a, b))+m.Count(m.Intersect(a, b)) != m.Count(a)+m.Count(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestContainsMatchesElements(t *testing.T) {
	m := NewManager(9)
	f := func(xs []uint16) bool {
		ref := map[int64]bool{}
		s := m.Empty()
		for _, x := range xs {
			v := int64(x % 512)
			ref[v] = true
			s = m.Union(s, m.Singleton(v))
		}
		if m.Count(s) != uint64(len(ref)) {
			return false
		}
		for v := int64(0); v < 512; v++ {
			if m.Contains(s, v) != ref[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSharingAcrossSets(t *testing.T) {
	m := NewManager(16)
	base := m.Interval(0, 999)
	before := m.NumNodes()
	// 100 sets sharing the same 1000-element base plus one extra
	// element: overlap should make the marginal cost tiny.
	for i := int64(0); i < 100; i++ {
		m.Union(base, m.Singleton(30000+i))
	}
	grown := m.NumNodes() - before
	if grown > 100*3*16 {
		t.Fatalf("sharing failed: %d nodes added for 100 overlapping sets", grown)
	}
}

func TestDiffWithUniverse(t *testing.T) {
	m := NewManager(8)
	a := m.Union(m.Singleton(10), m.Singleton(20))
	comp := m.Diff(m.Universe(), a)
	if m.Count(comp) != 254 {
		t.Fatalf("complement count = %d", m.Count(comp))
	}
	if m.Contains(comp, 10) || !m.Contains(comp, 11) {
		t.Fatal("complement membership wrong")
	}
	if m.Intersect(comp, a) != False {
		t.Fatal("complement should be disjoint")
	}
}

func BenchmarkUnionClustered(b *testing.B) {
	m := NewManager(24)
	sets := make([]Ref, 64)
	for i := range sets {
		sets[i] = m.Interval(int64(i*1000), int64(i*1000+800))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.Empty()
		for _, x := range sets {
			s = m.Union(s, x)
		}
	}
}

package tracer

import (
	"testing"

	"scaldift/internal/ddg"
	"scaldift/internal/isa"
	"scaldift/internal/slicing"
	"scaldift/internal/vm"
)

const prog = `
    in r1, 0
    movi r2, 0
    movi r3, 0
loop:
    bge r3, r1, done
    add r2, r2, r3
    store r0, r2, 100
    load r4, r0, 100
    addi r3, r3, 1
    br loop
done:
    out r2, 1
    halt
`

// collectAndOnline runs prog once with both the offline collector and
// an online full extractor attached, so the two graphs describe the
// same execution.
func collectAndOnline(t *testing.T, text string, inputs []int64) (*Collector, *ddg.Full, *isa.Program) {
	t.Helper()
	p := isa.MustAssemble("t", text)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, inputs)
	col := NewCollector()
	sink := ddg.NewFullSink()
	ex := ddg.NewExtractor(p, sink, ddg.ExtractorOpts{ControlDeps: true})
	m.AttachTool(col)
	m.AttachTool(ex)
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	return col, sink.G, p
}

func TestPostprocessMatchesOnline(t *testing.T) {
	col, online, p := collectAndOnline(t, prog, []int64{50})
	res := Postprocess(p, col)
	if res.Full.Nodes() != online.Nodes() {
		t.Fatalf("nodes: offline %d online %d", res.Full.Nodes(), online.Nodes())
	}
	if res.Full.Edges() != online.Edges() {
		t.Fatalf("edges: offline %d online %d", res.Full.Edges(), online.Edges())
	}
	// Edge-exact comparison.
	lo, hi := online.Window(0)
	for n := lo; n <= hi; n++ {
		id := ddg.MakeID(0, n)
		a := ddg.CountDeps(online, id)
		b := ddg.CountDeps(res.Full, id)
		if len(a) != len(b) {
			t.Fatalf("node %v: %+v vs %+v", id, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %v dep %d: %+v vs %+v", id, i, a[i], b[i])
			}
		}
	}
}

func TestPostprocessMultithreaded(t *testing.T) {
	col, online, p := collectAndOnline(t, `
.data 0, 0
    in r10, 0
    spawn r20, r10, child
    join r20
    load r3, r0, 1
    out r3, 1
    halt
child:
    addi r2, r1, 1
    store r0, r2, 1
    halt
`, []int64{5})
	res := Postprocess(p, col)
	if res.Full.Nodes() != online.Nodes() || res.Full.Edges() != online.Edges() {
		t.Fatalf("offline %d/%d online %d/%d",
			res.Full.Nodes(), res.Full.Edges(), online.Nodes(), online.Edges())
	}
	// The child's use of the spawn argument must be reconstructed.
	deps := ddg.CountDeps(res.Full, ddg.MakeID(1, 1))
	found := false
	for _, d := range deps {
		if d.Def == ddg.MakeID(0, 2) {
			found = true
		}
	}
	if !found {
		t.Fatalf("spawn arg dep missing offline: %+v", deps)
	}
}

func TestSliceEquivalence(t *testing.T) {
	col, online, p := collectAndOnline(t, prog, []int64{30})
	res := Postprocess(p, col)
	// criterion: last OUT instance.
	var outPC int32 = -1
	for pc, ins := range p.Instrs {
		if ins.Op == isa.OUT {
			outPC = int32(pc)
		}
	}
	lo, hi := online.Window(0)
	var crit ddg.ID
	for n := hi; n >= lo; n-- {
		if pc, ok := online.NodePC(ddg.MakeID(0, n)); ok && pc == outPC {
			crit = ddg.MakeID(0, n)
			break
		}
	}
	opts := slicing.Options{FollowControl: true}
	a := slicing.Backward(online, p, []slicing.Criterion{{ID: crit, PC: outPC}}, opts)
	b := slicing.Backward(res.Full, p, []slicing.Criterion{{ID: crit, PC: outPC}}, opts)
	if len(a.Lines) != len(b.Lines) {
		t.Fatalf("slices differ: %v vs %v", a.Lines, b.Lines)
	}
	for i := range a.Lines {
		if a.Lines[i] != b.Lines[i] {
			t.Fatalf("slices differ: %v vs %v", a.Lines, b.Lines)
		}
	}
}

func TestTraceRateIsRaw(t *testing.T) {
	col, _, _ := collectAndOnline(t, prog, []int64{500})
	bpi := col.BytesPerInstr()
	// The raw trace costs a handful of bytes per instruction — the
	// "before" number of the storage experiment.
	if bpi < 3 || bpi > 16 {
		t.Fatalf("raw trace rate %.2f B/instr out of range", bpi)
	}
	if col.Instrs() == 0 || col.TraceBytes() == 0 {
		t.Fatal("empty trace")
	}
}

func TestCompactSmallerThanFull(t *testing.T) {
	col, _, p := collectAndOnline(t, prog, []int64{500})
	res := Postprocess(p, col)
	if uint64(res.Compact.CurrentBytes())*3 > res.Full.SizeBytes() {
		t.Fatalf("compact %d vs full %d", res.Compact.CurrentBytes(), res.Full.SizeBytes())
	}
}

// Package tracer implements the paper's offline baseline (§2.1,
// [18,19]): during execution only a raw address & control-flow trace
// is written; a separate postprocessing pass then reconstructs the
// dynamic dependence graph and compacts it. This is the two-step
// pipeline whose end-to-end slowdown the paper reports as ~540× —
// against which ONTRAC's ~19× online construction is measured.
package tracer

import (
	"encoding/binary"

	"scaldift/internal/cdep"
	"scaldift/internal/ddg"
	"scaldift/internal/isa"
	"scaldift/internal/shadow"
	"scaldift/internal/vm"
)

// Collector is the runtime half: a vm.Tool that appends one raw
// record per executed instruction — (tid, pc, effective address,
// branch outcome) — exactly the information a Pin-style tracing run
// dumps for later processing.
type Collector struct {
	buf    []byte
	instrs uint64
}

// NewCollector returns an empty trace collector.
func NewCollector() *Collector { return &Collector{} }

// record layout: varint tid, varint pc, byte flags, [varint addr],
// flags bit0 = has address, bit1 = branch taken, bit2 = is input,
// [varint inputIdx].
const (
	flagAddr  = 1 << 0
	flagTaken = 1 << 1
	flagInput = 1 << 2
	flagSpawn = 1 << 3 // record carries the spawned child's tid
)

// OnEvent implements vm.Tool.
func (c *Collector) OnEvent(_ *vm.Machine, ev *vm.Event) {
	if ev.Blocked {
		return
	}
	c.instrs++
	var tmp [10]byte
	c.buf = append(c.buf, byte(ev.TID))
	k := binary.PutUvarint(tmp[:], uint64(ev.PC))
	c.buf = append(c.buf, tmp[:k]...)
	flags := byte(0)
	addr := vm.NoAddr
	if ev.Addr != vm.NoAddr {
		flags |= flagAddr
		addr = ev.Addr
	}
	if ev.Taken {
		flags |= flagTaken
	}
	if ev.Kind == vm.EvInput {
		flags |= flagInput
	}
	if ev.Kind == vm.EvSpawn {
		flags |= flagSpawn
	}
	c.buf = append(c.buf, flags)
	if flags&flagAddr != 0 {
		k = binary.PutUvarint(tmp[:], uint64(addr))
		c.buf = append(c.buf, tmp[:k]...)
	}
	if flags&flagInput != 0 {
		k = binary.PutUvarint(tmp[:], uint64(ev.InputIdx))
		c.buf = append(c.buf, tmp[:k]...)
	}
	if flags&flagSpawn != 0 {
		k = binary.PutUvarint(tmp[:], uint64(ev.DstVal))
		c.buf = append(c.buf, tmp[:k]...)
	}
}

// Instrs returns the number of recorded instructions.
func (c *Collector) Instrs() uint64 { return c.instrs }

// TraceBytes returns the raw trace size — the paper's ~16 bytes per
// instruction figure corresponds to this stream before postprocessing.
func (c *Collector) TraceBytes() int { return len(c.buf) }

// BytesPerInstr is the raw trace rate.
func (c *Collector) BytesPerInstr() float64 {
	if c.instrs == 0 {
		return 0
	}
	return float64(len(c.buf)) / float64(c.instrs)
}

var _ vm.Tool = (*Collector)(nil)

// Result is the postprocessing output: the full dependence graph and
// its compacted form.
type Result struct {
	Full    *ddg.Full
	Compact *ddg.Compact
}

// Postprocess replays the raw trace against the program's statics and
// rebuilds every dynamic dependence, materializing the full DDG and
// then re-encoding it compactly — the expensive offline step ONTRAC
// eliminates.
func Postprocess(prog *isa.Program, c *Collector) *Result {
	full := ddg.NewFull()
	compact := ddg.NewCompact(0)
	ctrl := cdep.New(prog)

	type tag struct {
		id ddg.ID
		pc int32
	}
	var regTags [][isa.NumRegs]tag
	memTags := shadow.NewMem[tag]()
	var counts []uint64
	grow := func(tid int) {
		for tid >= len(regTags) {
			regTags = append(regTags, [isa.NumRegs]tag{})
			counts = append(counts, 0)
		}
	}

	buf := c.buf
	pos := 0
	readUvarint := func() uint64 {
		v, k := binary.Uvarint(buf[pos:])
		pos += k
		return v
	}
	var deps []ddg.Dep
	for pos < len(buf) {
		tid := int(buf[pos])
		pos++
		pc := int(readUvarint())
		flags := buf[pos]
		pos++
		addr := vm.NoAddr
		if flags&flagAddr != 0 {
			addr = int64(readUvarint())
		}
		if flags&flagInput != 0 {
			readUvarint() // input index: a taint postprocessor would use it
		}
		spawnChild := -1
		if flags&flagSpawn != 0 {
			spawnChild = int(readUvarint())
		}
		grow(tid)
		counts[tid]++
		n := counts[tid]
		id := ddg.MakeID(tid, n)
		ins := &prog.Instrs[pc]
		parent := ctrl.Observe(tid, pc, n, ins.Op, flags&flagTaken != 0)
		full.AddNode(id, int32(pc))

		deps = deps[:0]
		regs := &regTags[tid]
		use := func(r uint8) {
			if tg := regs[r]; tg.id != 0 {
				deps = append(deps, ddg.Dep{Use: id, UsePC: int32(pc),
					Def: tg.id, DefPC: tg.pc, Kind: ddg.Data})
			}
		}
		if ins.Op.ReadsRs1() {
			use(ins.Rs1)
		}
		if ins.Op.ReadsRs2() && (!ins.Op.ReadsRs1() || ins.Rs2 != ins.Rs1) {
			use(ins.Rs2)
		}
		if ins.Op.Loads() && addr != vm.NoAddr {
			if tg := memTags.Get(addr); tg.id != 0 {
				deps = append(deps, ddg.Dep{Use: id, UsePC: int32(pc),
					Def: tg.id, DefPC: tg.pc, Kind: ddg.Data})
			}
		}
		if parent.N != 0 {
			deps = append(deps, ddg.Dep{Use: id, UsePC: int32(pc),
				Def: ddg.MakeID(tid, parent.N), DefPC: parent.PC, Kind: ddg.Control})
		}
		for _, d := range deps {
			full.AddDep(d)
		}
		if len(deps) > 0 {
			compact.Append(id, int32(pc), deps, 0)
		}
		if ins.Op.Stores() && addr != vm.NoAddr {
			memTags.Set(addr, tag{id: id, pc: int32(pc)})
		}
		if ins.Op.WritesRd() && ins.Rd != 0 {
			regs[ins.Rd] = tag{id: id, pc: int32(pc)}
		}
		if spawnChild >= 0 {
			// The child's r1 is defined by this spawn instance.
			grow(spawnChild)
			regTags[spawnChild][1] = tag{id: id, pc: int32(pc)}
		}
	}
	return &Result{Full: full, Compact: compact}
}

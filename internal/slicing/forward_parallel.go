package slicing

import (
	"sync"
	"sync/atomic"
	"time"

	"scaldift/internal/ddg"
	"scaldift/internal/isa"
)

// ParallelForward computes the same forward dynamic slice as Forward
// with both of its phases sharded per thread:
//
//  1. the reverse-adjacency build — Forward's dominant cost, one scan
//     of every retained window — runs one scanner per trace thread,
//     each bucketing the edges it finds by the def's owning thread;
//  2. the buckets merge into per-thread reverse maps (one merger per
//     def thread, no shared map);
//  3. the closure traversal runs one worker per thread shard in the
//     ParallelBackward style: a shard owns exactly the reverse edges
//     of its own thread's defs, same-thread continuations stay on a
//     local stack, and only cross-thread flow crosses workers.
//
// g (including its NodePC) must be safe for concurrent reads —
// store.Reader, ddg.Full, and ddg.Sharded are; a lone ddg.Compact is
// NOT. workers <= 1 falls back to Forward; otherwise the shard count
// follows the trace's threads (the Go scheduler multiplexes).
//
// Results are identical to Forward: same PCs, Lines, Nodes, and
// Edges (the closure is order-independent). Options.MaxNodes is
// enforced cooperatively, so a bounded parallel traversal may visit a
// few nodes past the bound (MaxNodes = 0 matches exactly). The
// caveat about sources with elided records (under-approximation
// through fully elided instances) carries over from Forward
// unchanged.
func ParallelForward(g ddg.Source, prog *isa.Program, start []ddg.ID, opts Options, workers int) *Slice {
	if workers <= 1 {
		return Forward(g, prog, start, opts)
	}
	tids := g.Threads()
	var interrupted atomic.Bool

	// Phase 1: per-thread window scans, each filling private buckets
	// of reverse edges keyed by the def's thread.
	buckets := make([]map[int][]ddg.Dep, len(tids))
	var wg sync.WaitGroup
	for i, tid := range tids {
		i, tid := i, tid
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make(map[int][]ddg.Dep)
			lo, hi := g.Window(tid)
			for n := lo; n <= hi && lo != 0; n++ {
				if (n-lo)&donePollMask == 0 && opts.doneFired() {
					interrupted.Store(true)
					break
				}
				g.DepsOf(ddg.MakeID(tid, n), func(d ddg.Dep) {
					switch d.Kind {
					case ddg.Control:
						if !opts.FollowControl {
							return
						}
					case ddg.WAR, ddg.WAW:
						if !opts.FollowAnti {
							return
						}
					}
					out[d.Def.TID()] = append(out[d.Def.TID()], d)
				})
			}
			buckets[i] = out
		}()
	}
	wg.Wait()
	// A cancellation during the scans leaves the buckets partial;
	// merging and traversing them would burn edge-proportional work
	// only to produce a slice the caller already declined to wait for.
	if interrupted.Load() || opts.doneFired() {
		return fwMerge(nil, prog, true)
	}

	// Phase 2: one shard per thread that can appear in the traversal
	// (scanned threads, def threads, start threads); each shard's
	// reverse map merges its buckets in parallel with the others.
	shards := make(map[int]*fwShard)
	shardFor := func(tid int) {
		if _, ok := shards[tid]; !ok {
			shards[tid] = newFWShard(tid)
		}
	}
	for _, tid := range tids {
		shardFor(tid)
	}
	for _, b := range buckets {
		for tid := range b {
			shardFor(tid)
		}
	}
	for _, id := range start {
		shardFor(id.TID())
	}
	all := make([]*fwShard, 0, len(shards))
	for _, s := range shards {
		all = append(all, s)
	}
	for _, s := range all {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, b := range buckets {
				for i, d := range b[s.tid] {
					if i&donePollMask == 0 && opts.doneFired() {
						interrupted.Store(true)
						return
					}
					s.rev[d.Def] = append(s.rev[d.Def], d)
				}
			}
		}()
	}
	wg.Wait()
	if interrupted.Load() {
		return fwMerge(nil, prog, true)
	}

	var (
		pending int64 // queued-but-unfinished items, atomic
		nodes   int64 // processed nodes, atomic (MaxNodes)
		done    atomic.Bool
	)
	finish := func() {
		if done.CompareAndSwap(false, true) {
			for _, s := range all {
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			}
		}
	}
	admit := func(s *fwShard, id ddg.ID) bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.visited[id] {
			return false
		}
		s.visited[id] = true
		atomic.AddInt64(&pending, 1)
		return true
	}
	enqueue := func(id ddg.ID) {
		s := shards[id.TID()]
		if !admit(s, id) {
			return
		}
		s.mu.Lock()
		s.queue = append(s.queue, id)
		s.cond.Signal()
		s.mu.Unlock()
	}
	for _, id := range start {
		enqueue(id)
	}
	if atomic.LoadInt64(&pending) == 0 {
		return fwMerge(all, prog, interrupted.Load())
	}

	// Phase 3: the sharded traversal.
	for _, s := range all {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			fwWorker(s, g, opts, admit, enqueue, &pending, &nodes, &done, finish)
		}()
	}
	stop := watchDone(opts.Done, &interrupted, finish)
	wg.Wait()
	stop()
	return fwMerge(all, prog, interrupted.Load())
}

// fwWorker drains one shard of the forward traversal via drainShard:
// same-shard continuations stay on a local stack; only cross-thread
// flow goes through the owning shard's locked queue.
func fwWorker(s *fwShard, g ddg.Source, opts Options,
	admit func(*fwShard, ddg.ID) bool, enqueue func(ddg.ID),
	pending, nodes *int64, done *atomic.Bool, finish func()) {

	var local []ddg.ID
	process := func(id ddg.ID) bool {
		s.nodes++
		if pc, ok := g.NodePC(id); ok {
			s.pcs[pc] = true
		}
		for _, d := range s.rev[id] {
			s.edges++
			s.pcs[d.UsePC] = true
			if d.Use.TID() == s.tid {
				if admit(s, d.Use) {
					local = append(local, d.Use)
				}
			} else {
				enqueue(d.Use)
			}
		}
		if opts.MaxNodes > 0 && atomic.AddInt64(nodes, 1) >= int64(opts.MaxNodes) {
			finish()
		}
		if atomic.AddInt64(pending, -1) == 0 {
			finish()
		}
		return !done.Load()
	}
	drainShard(&s.mu, s.cond, &s.queue, done, &s.busy, &local, process)
}

// fwShard is one thread's reverse edges, frontier, and tallies.
// queue and visited are guarded by mu (other shards' workers push
// here); rev is immutable once traversal starts; nodes, edges, pcs,
// and busy belong to the owning worker alone.
type fwShard struct {
	tid     int
	rev     map[ddg.ID][]ddg.Dep
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []ddg.ID
	visited map[ddg.ID]bool

	nodes int
	edges int
	pcs   map[int32]bool
	busy  time.Duration
}

func newFWShard(tid int) *fwShard {
	s := &fwShard{
		tid:     tid,
		rev:     make(map[ddg.ID][]ddg.Dep),
		visited: make(map[ddg.ID]bool),
		pcs:     make(map[int32]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// fwMerge folds the shards into a Slice (single goroutine, after all
// workers have joined).
func fwMerge(all []*fwShard, prog *isa.Program, interrupted bool) *Slice {
	res := &Slice{
		PCs:         make(map[int32]bool),
		ShardBusy:   make(map[int]time.Duration),
		Interrupted: interrupted,
	}
	for _, s := range all {
		res.Nodes += s.nodes
		res.Edges += s.edges
		for pc := range s.pcs {
			res.PCs[pc] = true
		}
		if s.busy > 0 {
			res.ShardBusy[s.tid] = s.busy
		}
	}
	res.Lines = pcsToLines(prog, res.PCs)
	return res
}

package slicing

import (
	"testing"

	"scaldift/internal/ddg"
	"scaldift/internal/isa"
	"scaldift/internal/vm"
)

// buildGraph runs a program under a full extractor.
func buildGraph(t *testing.T, text string, inputs []int64, opts ddg.ExtractorOpts) (*ddg.Full, *isa.Program) {
	t.Helper()
	p := isa.MustAssemble("t", text)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, inputs)
	sink := ddg.NewFullSink()
	m.AttachTool(ddg.NewExtractor(p, sink, opts))
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	return sink.G, p
}

// instanceOf returns the last dynamic instance of the instruction at
// static pc.
func instanceOf(g *ddg.Full, tid int, pc int32) ddg.ID {
	lo, hi := g.Window(tid)
	for n := hi; n >= lo && lo != 0; n-- {
		id := ddg.MakeID(tid, n)
		if p, ok := g.NodePC(id); ok && p == pc {
			return id
		}
	}
	return 0
}

const twoChains = `
    in r1, 0          ; line 2: input A
    in r2, 0          ; line 3: input B
    addi r3, r1, 1    ; line 4: chain A
    addi r4, r2, 1    ; line 5: chain B
    add r3, r3, r3    ; line 6: chain A
    out r3, 1         ; line 7: only chain A
    out r4, 1         ; line 8: only chain B
    halt
`

func TestBackwardDataSliceSeparatesChains(t *testing.T) {
	g, p := buildGraph(t, twoChains, []int64{1, 2}, ddg.ExtractorOpts{})
	outA := instanceOf(g, 0, 5) // out r3
	s := Backward(g, p, []Criterion{{ID: outA, PC: 5}}, Options{})
	// Chain A lines: in r1 (2), addi r3 (4), add r3 (6), out (7).
	for _, want := range []int{2, 4, 6, 7} {
		if !s.Contains(want) {
			t.Fatalf("slice %v missing line %d", s.Lines, want)
		}
	}
	// Chain B must be absent.
	for _, bad := range []int{3, 5, 8} {
		if s.Contains(bad) {
			t.Fatalf("slice %v wrongly includes line %d", s.Lines, bad)
		}
	}
}

const branchy = `
    in r1, 0          ; line 2
    movi r2, 0        ; line 3
    beqz r1, skip     ; line 4
    movi r2, 5        ; line 5
skip:
    out r2, 1         ; line 7
    halt
`

func TestControlDependenceInclusion(t *testing.T) {
	g, p := buildGraph(t, branchy, []int64{1}, ddg.ExtractorOpts{ControlDeps: true})
	out := instanceOf(g, 0, 4) // out r2 at pc 4
	noCtrl := Backward(g, p, []Criterion{{ID: out, PC: 4}}, Options{})
	// Data-only: out <- movi r2,5 (no further deps: constant).
	if noCtrl.Contains(4) {
		t.Fatalf("data slice %v should not include the branch", noCtrl.Lines)
	}
	ctrl := Backward(g, p, []Criterion{{ID: out, PC: 4}}, Options{FollowControl: true})
	// With control deps: movi r2,5 is governed by beqz, which reads
	// r1 from the input.
	for _, want := range []int{2, 4, 5} {
		if !ctrl.Contains(want) {
			t.Fatalf("full slice %v missing line %d", ctrl.Lines, want)
		}
	}
	if ctrl.Edges <= noCtrl.Edges {
		t.Fatal("control slice should traverse more edges")
	}
}

func TestForwardSliceFromInput(t *testing.T) {
	g, p := buildGraph(t, twoChains, []int64{1, 2}, ddg.ExtractorOpts{})
	// Forward from the first IN instance (input A, node 0:1).
	s := Forward(g, p, []ddg.ID{ddg.MakeID(0, 1)}, Options{})
	for _, want := range []int{2, 4, 6, 7} {
		if !s.Contains(want) {
			t.Fatalf("forward slice %v missing line %d", s.Lines, want)
		}
	}
	for _, bad := range []int{3, 5, 8} {
		if s.Contains(bad) {
			t.Fatalf("forward slice %v wrongly includes line %d", s.Lines, bad)
		}
	}
}

func TestBackwardAcrossThreads(t *testing.T) {
	g, p := buildGraph(t, `
.data 0, 0
    in r10, 0         ; line 3
    spawn r20, r10, child
    join r20
    load r3, r0, 1    ; line 6
    out r3, 1         ; line 7
    halt
child:
    addi r2, r1, 1    ; line 10
    store r0, r2, 1   ; line 11
    halt
`, []int64{5}, ddg.ExtractorOpts{})
	out := instanceOf(g, 0, 4)
	s := Backward(g, p, []Criterion{{ID: out, PC: 4}}, Options{})
	for _, want := range []int{3, 10, 11, 6, 7} {
		if !s.Contains(want) {
			t.Fatalf("cross-thread slice %v missing line %d", s.Lines, want)
		}
	}
}

func TestMaxNodesBounds(t *testing.T) {
	g, p := buildGraph(t, `
    movi r1, 0
loop:
    addi r1, r1, 1
    movi r2, 5000
    blt r1, r2, loop
    out r1, 1
    halt
`, nil, ddg.ExtractorOpts{})
	out := instanceOf(g, 0, 4)
	s := Backward(g, p, []Criterion{{ID: out, PC: 4}}, Options{MaxNodes: 10})
	if s.Nodes > 10 {
		t.Fatalf("visited %d nodes with MaxNodes=10", s.Nodes)
	}
}

func TestAntiDependenceOption(t *testing.T) {
	g, p := buildGraph(t, `
    movi r1, 1        ; line 2
    store r0, r1, 9   ; line 3 write
    load r2, r0, 9    ; line 4 read
    movi r3, 2        ; line 5
    store r0, r3, 9   ; line 6 write (WAR with 4, WAW with 3)
    out r2, 1
    halt
`, nil, ddg.ExtractorOpts{WARWAW: true})
	w2 := instanceOf(g, 0, 4) // second store
	plain := Backward(g, p, []Criterion{{ID: w2, PC: 4}}, Options{})
	if plain.Contains(4) {
		t.Fatalf("plain slice %v should not include the read", plain.Lines)
	}
	anti := Backward(g, p, []Criterion{{ID: w2, PC: 4}}, Options{FollowAnti: true})
	if !anti.Contains(4) || !anti.Contains(3) {
		t.Fatalf("anti slice %v missing WAR/WAW statements", anti.Lines)
	}
}

func TestWindowTruncation(t *testing.T) {
	// A compact ring small enough to evict early history: slicing
	// reports truncation.
	p := isa.MustAssemble("t", `
    in r1, 0
    movi r3, 0
loop:
    add r1, r1, r1
    addi r3, r3, 1
    movi r4, 50000
    blt r3, r4, loop
    out r1, 1
    halt
`)
	m := vm.MustNew(p, vm.Config{})
	m.SetInput(0, []int64{1})
	c := ddg.NewCompact(4 * 1024)
	sink := &compactSink{c: c}
	m.AttachTool(ddg.NewExtractor(p, sink, ddg.ExtractorOpts{}))
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailMsg)
	}
	_, hi := c.Window(0)
	crit := ddg.MakeID(0, hi)
	pc, _ := c.NodePC(crit)
	s := Backward(c, p, []Criterion{{ID: crit, PC: pc}}, Options{})
	if !s.TruncatedAtWindow {
		t.Fatal("expected window truncation")
	}
}

type compactSink struct{ c *ddg.Compact }

func (s *compactSink) Node(ddg.ID, int32, *vm.Event) {}
func (s *compactSink) Deps(id ddg.ID, pc int32, deps []ddg.Dep) {
	if len(deps) > 0 {
		s.c.Append(id, pc, deps, 0)
	}
}

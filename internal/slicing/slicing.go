// Package slicing computes dynamic slices over dynamic dependence
// graphs (§2.1, §3.1): the backward closure of data (and optionally
// control) dependences from a slicing criterion, reported as a set of
// statements. It consumes any ddg.Source — the full offline graph,
// the compact store, or ONTRAC's reconstructing reader (whose elided
// edges are resolved through the HintedSource extension).
package slicing

import (
	"sort"
	"time"

	"scaldift/internal/ddg"
	"scaldift/internal/isa"
)

// HintedSource is implemented by sources that can reconstruct elided
// dependences given the node's static PC from traversal context
// (ontrac.Reader). Plain sources are used as-is.
type HintedSource interface {
	ddg.Source
	DepsOfHinted(id ddg.ID, pcHint int32, yield func(ddg.Dep))
}

// Criterion is a slicing start point: an instruction instance and its
// static PC (the PC lets reconstruction work even when the instance
// itself stored no record).
type Criterion struct {
	ID ddg.ID
	PC int32
}

// Options tunes the traversal.
type Options struct {
	// FollowControl includes dynamic control dependences, giving the
	// full (data+control) dynamic slice. Without it the slice is the
	// data slice.
	FollowControl bool
	// FollowAnti includes WAR/WAW edges (race-detection slicing).
	FollowAnti bool
	// MaxNodes bounds the traversal (0 = unbounded).
	MaxNodes int
	// Done, when non-nil, cancels the traversal cooperatively once it
	// becomes readable (a context's Done channel: per-query deadlines
	// in the trace query service). A cancelled traversal returns the
	// valid partial slice computed so far with Interrupted set; like
	// MaxNodes, the cut point is approximate under the parallel
	// slicers.
	Done <-chan struct{}
}

// doneFired reports whether o.Done is readable. Checked every few
// hundred nodes, not per edge: a select per edge would tax the hot
// traversal loops.
func (o *Options) doneFired() bool {
	if o.Done == nil {
		return false
	}
	select {
	case <-o.Done:
		return true
	default:
		return false
	}
}

// donePollMask throttles doneFired checks to every 256th node.
const donePollMask = 0xff

// Slice is the result: the statement-level slice plus traversal
// metadata.
type Slice struct {
	// PCs is the set of static instruction indices in the slice.
	PCs map[int32]bool
	// Lines is the sorted set of statement ids (source lines).
	Lines []int
	// Nodes is the number of dynamic instances visited.
	Nodes int
	// Edges is the number of dependence edges traversed.
	Edges int
	// TruncatedAtWindow reports that the traversal reached instances
	// evicted from a bounded buffer: the fault may predate the
	// retained execution window (§2.1's window-length concern).
	TruncatedAtWindow bool
	// Interrupted reports that Options.Done fired and the traversal
	// stopped early: the slice is a valid under-approximation, like a
	// window truncation.
	Interrupted bool
	// ShardBusy, populated only by the parallel slicers, maps thread
	// id (-1 for the orphan shard) to that shard worker's processing
	// time, waits excluded. The max entry is the traversal's critical
	// path on fully parallel hardware; the sum approximates one
	// core's sequential cost.
	ShardBusy map[int]time.Duration
}

// Contains reports whether the slice includes the statement id.
func (s *Slice) Contains(line int) bool {
	i := sort.SearchInts(s.Lines, line)
	return i < len(s.Lines) && s.Lines[i] == line
}

// Backward computes the backward dynamic slice of the criteria.
func Backward(src ddg.Source, prog *isa.Program, crits []Criterion, opts Options) *Slice {
	hinted, _ := src.(HintedSource)
	res := &Slice{PCs: make(map[int32]bool)}
	type item struct {
		id ddg.ID
		pc int32
	}
	visited := make(map[ddg.ID]bool)
	var work []item
	push := func(id ddg.ID, pc int32) {
		if id == 0 || visited[id] {
			return
		}
		visited[id] = true
		lo, _ := src.Window(id.TID())
		evicted := lo > 0 && id.N() < lo
		deadEnd := lo == 0 && hinted == nil
		if evicted || deadEnd {
			// The statement reaches the slice via the incoming edge,
			// but traversal cannot continue past the buffer window.
			if evicted {
				res.TruncatedAtWindow = true
			}
			if pc >= 0 {
				res.PCs[pc] = true
			}
			return
		}
		work = append(work, item{id: id, pc: pc})
	}
	for _, c := range crits {
		push(c.ID, c.PC)
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		res.Nodes++
		if it.pc >= 0 {
			res.PCs[it.pc] = true
		}
		if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
			break
		}
		if res.Nodes&donePollMask == 0 && opts.doneFired() {
			res.Interrupted = true
			break
		}
		yield := func(d ddg.Dep) {
			switch d.Kind {
			case ddg.Control:
				if !opts.FollowControl {
					return
				}
			case ddg.WAR, ddg.WAW:
				if !opts.FollowAnti {
					return
				}
			}
			res.Edges++
			res.PCs[d.DefPC] = true
			push(d.Def, d.DefPC)
		}
		if hinted != nil {
			hinted.DepsOfHinted(it.id, it.pc, yield)
		} else {
			src.DepsOf(it.id, yield)
		}
	}
	res.Lines = pcsToLines(prog, res.PCs)
	return res
}

// pcsToLines maps a PC set to a sorted, deduplicated line set. A nil
// program yields nil: the query service serves traces it has no
// program for as PC sets only.
func pcsToLines(prog *isa.Program, pcs map[int32]bool) []int {
	if prog == nil {
		return nil
	}
	seen := make(map[int]bool, len(pcs))
	for pc := range pcs {
		if line := prog.LineOf(int(pc)); line >= 0 {
			seen[line] = true
		}
	}
	lines := make([]int, 0, len(seen))
	for l := range seen {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	return lines
}

// Forward computes the forward dynamic slice (all instances affected
// by the start instances) over any ddg.Source — the full offline
// graph, a compact store, per-thread shards, or ONTRAC's
// reconstructing reader. Reverse edges are built by one scan of the
// source's retained windows.
//
// Over a source with elided records (ontrac.Reader under O1/O2), the
// forward slice under-approximates: reconstruction needs each node's
// static PC from traversal context, which flows naturally along
// backward edges but not forward, so flow THROUGH a fully elided
// instance is not followed. Use the Full graph (or an unoptimized
// trace) when the exact forward closure matters. The paper computes
// the forward slice of the inputs online instead (ONTRAC T2); this
// offline version exists for fault-location experiments and
// cross-checks.
func Forward(g ddg.Source, prog *isa.Program, start []ddg.ID, opts Options) *Slice {
	res := &Slice{PCs: make(map[int32]bool)}
	// Build reverse adjacency.
	rev := make(map[ddg.ID][]ddg.Dep)
	for _, tid := range g.Threads() {
		lo, hi := g.Window(tid)
		for n := lo; n <= hi && lo != 0; n++ {
			if (n-lo)&donePollMask == 0 && opts.doneFired() {
				res.Interrupted = true
				res.Lines = pcsToLines(prog, res.PCs)
				return res
			}
			id := ddg.MakeID(tid, n)
			g.DepsOf(id, func(d ddg.Dep) {
				switch d.Kind {
				case ddg.Control:
					if !opts.FollowControl {
						return
					}
				case ddg.WAR, ddg.WAW:
					if !opts.FollowAnti {
						return
					}
				}
				rev[d.Def] = append(rev[d.Def], d)
			})
		}
	}
	visited := make(map[ddg.ID]bool)
	var work []ddg.ID
	for _, id := range start {
		if !visited[id] {
			visited[id] = true
			work = append(work, id)
		}
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		res.Nodes++
		if pc, ok := g.NodePC(id); ok {
			res.PCs[pc] = true
		}
		if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
			break
		}
		if res.Nodes&donePollMask == 0 && opts.doneFired() {
			res.Interrupted = true
			break
		}
		for _, d := range rev[id] {
			res.Edges++
			res.PCs[d.UsePC] = true
			if !visited[d.Use] {
				visited[d.Use] = true
				work = append(work, d.Use)
			}
		}
	}
	res.Lines = pcsToLines(prog, res.PCs)
	return res
}

package slicing

import (
	"fmt"
	"testing"

	"scaldift/internal/ddg"
	"scaldift/internal/prog"
)

// buildWorkloadGraph runs a workload under the full extractor with a
// randomized schedule and returns its graph.
func buildWorkloadGraph(t *testing.T, w *prog.Workload, seed uint64) *ddg.Full {
	t.Helper()
	w.Cfg.Seed = seed
	w.Cfg.RandomPreempt = true
	if w.Cfg.Quantum == 0 {
		w.Cfg.Quantum = 13
	}
	m := w.NewMachine()
	sink := ddg.NewFullSink()
	m.AttachTool(ddg.NewExtractor(w.Prog, sink, ddg.ExtractorOpts{ControlDeps: true}))
	if res := m.Run(); res.Failed {
		t.Fatalf("%s: %s", w.Name, res.FailMsg)
	}
	return sink.G
}

// newestWithDeps returns the thread's newest instance that has at
// least one dependence (the halt at the very end slices empty).
func newestWithDeps(g *ddg.Full, tid int) ddg.ID {
	lo, hi := g.Window(tid)
	for n := hi; n >= lo && lo != 0; n-- {
		id := ddg.MakeID(tid, n)
		if len(ddg.CountDeps(g, id)) > 0 {
			return id
		}
	}
	return 0
}

// TestParallelBackwardMatchesSequential holds ParallelBackward to
// Backward's exact results (Lines, PCs, Nodes, Edges) on every
// workload, across worker counts, from every thread's newest
// instance.
func TestParallelBackwardMatchesSequential(t *testing.T) {
	for _, w := range prog.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			g := buildWorkloadGraph(t, w, 1)
			opts := Options{FollowControl: true}
			for _, tid := range g.Threads() {
				crit := newestWithDeps(g, tid)
				if crit == 0 {
					continue
				}
				pc, ok := g.NodePC(crit)
				if !ok {
					pc = -1
				}
				crits := []Criterion{{ID: crit, PC: pc}}
				seq := Backward(g, w.Prog, crits, opts)
				for _, workers := range []int{2, 4} {
					par := ParallelBackward(g, w.Prog, crits, opts, workers)
					if fmt.Sprint(seq.Lines) != fmt.Sprint(par.Lines) {
						t.Fatalf("tid %d workers %d: lines diverged\nseq %v\npar %v",
							tid, workers, seq.Lines, par.Lines)
					}
					if seq.Nodes != par.Nodes || seq.Edges != par.Edges {
						t.Fatalf("tid %d workers %d: traversal diverged: %d/%d nodes, %d/%d edges",
							tid, workers, seq.Nodes, par.Nodes, seq.Edges, par.Edges)
					}
					if seq.TruncatedAtWindow != par.TruncatedAtWindow {
						t.Fatalf("tid %d workers %d: truncation flags diverged", tid, workers)
					}
				}
			}
		})
	}
}

// TestParallelBackwardMultiCriteria slices from all threads' ends at
// once — the fan-out case the parallel traversal exists for.
func TestParallelBackwardMultiCriteria(t *testing.T) {
	w := prog.PSum(4, 300, 7)
	g := buildWorkloadGraph(t, w, 3)
	var crits []Criterion
	for _, tid := range g.Threads() {
		id := newestWithDeps(g, tid)
		if id == 0 {
			continue
		}
		pc, ok := g.NodePC(id)
		if !ok {
			pc = -1
		}
		crits = append(crits, Criterion{ID: id, PC: pc})
	}
	opts := Options{FollowControl: true}
	seq := Backward(g, w.Prog, crits, opts)
	par := ParallelBackward(g, w.Prog, crits, opts, 4)
	if fmt.Sprint(seq.Lines) != fmt.Sprint(par.Lines) || seq.Nodes != par.Nodes || seq.Edges != par.Edges {
		t.Fatalf("diverged: seq %d/%d %v, par %d/%d %v",
			seq.Nodes, seq.Edges, seq.Lines, par.Nodes, par.Edges, par.Lines)
	}
	if seq.Nodes < 100 {
		t.Fatalf("closure too small to be meaningful: %d nodes", seq.Nodes)
	}
	// workers <= 1 must take the sequential path.
	one := ParallelBackward(g, w.Prog, crits, opts, 1)
	if fmt.Sprint(one.Lines) != fmt.Sprint(seq.Lines) {
		t.Fatal("workers=1 fallback diverged")
	}
}

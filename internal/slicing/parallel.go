package slicing

import (
	"sync"
	"sync/atomic"
	"time"

	"scaldift/internal/ddg"
	"scaldift/internal/isa"
)

// ParallelBackward computes the same backward dynamic slice as
// Backward with the closure frontier fanned out across concurrent
// workers, one per thread shard. Each worker drains its own thread's
// frontier depth-first and hands cross-thread edges to the owning
// thread's worker, so the long per-thread dependence chains that
// dominate real traces advance in parallel instead of lock-stepping
// through a global frontier; the sharding matches the layouts
// underneath (store.Reader segments, ddg.Sharded), giving each worker
// an uncontended chunk cache.
//
// src (and, when implemented, its DepsOfHinted) must be safe for
// concurrent reads — store.Reader and ddg.Full are; a lone
// ddg.Compact and ontrac.Reader over one are NOT (single-goroutine
// decode cache). workers <= 1 falls back to Backward; otherwise one
// goroutine runs per thread shard (the Go scheduler multiplexes them
// over the machine, so workers acts as a fallback switch, not a pool
// size).
//
// Over an exact source, results are identical to Backward: same PCs,
// Lines, Nodes, Edges, and TruncatedAtWindow (the closure is
// order-independent). Two caveats: Options.MaxNodes is enforced
// cooperatively, so a bounded parallel traversal may visit a few
// nodes beyond the bound (MaxNodes = 0 matches exactly); and over a
// HintedSource whose reconstruction over-approximates (ontrac O2), a
// node's PC hint depends on which edge discovers it first, so
// concurrent and sequential orders can reconstruct marginally
// different edge sets — both valid over-approximations of the slice.
func ParallelBackward(src ddg.Source, prog *isa.Program, crits []Criterion, opts Options, workers int) *Slice {
	if workers <= 1 {
		return Backward(src, prog, crits, opts)
	}
	hinted, _ := src.(HintedSource)

	// One shard per trace thread, plus an orphan shard for ids in
	// threads the source never recorded (stored cross-thread edges
	// may point at them; under a hinted source they still expand
	// through reconstruction). The map is immutable once workers
	// start.
	shards := make(map[int]*pbShard)
	orphan := newPBShard(-1)
	all := []*pbShard{orphan}
	for _, tid := range src.Threads() {
		if _, ok := shards[tid]; !ok {
			s := newPBShard(tid)
			shards[tid] = s
			all = append(all, s)
		}
	}
	shardOf := func(tid int) *pbShard {
		if s, ok := shards[tid]; ok {
			return s
		}
		return orphan
	}

	// Windows are constant during a traversal: snapshot them so the
	// per-edge window check never touches the source (whose Window
	// may lock the very thread state another worker is decoding).
	// Absent tids have no records — lo = 0, like Source.Window.
	winLo := make(map[int]uint64, len(shards))
	for tid := range shards {
		lo, _ := src.Window(tid)
		winLo[tid] = lo
	}

	var (
		pending int64 // queued-but-unfinished items, atomic
		nodes   int64 // processed nodes, atomic (MaxNodes)
		done    atomic.Bool
	)
	finish := func() {
		if done.CompareAndSwap(false, true) {
			for _, s := range all {
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			}
		}
	}

	// admit applies Backward's push logic under the owning shard's
	// lock: dedup, then hand the item back for processing — or record
	// only the statement when the traversal cannot continue past the
	// source's window. ok reports that the item should be processed.
	admit := func(s *pbShard, id ddg.ID, pc int32) bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.visited[id] {
			return false
		}
		s.visited[id] = true
		lo := winLo[id.TID()]
		evicted := lo > 0 && id.N() < lo
		deadEnd := lo == 0 && hinted == nil
		if evicted || deadEnd {
			if evicted {
				s.truncated = true
			}
			if pc >= 0 {
				s.extraPCs[pc] = true
			}
			return false
		}
		atomic.AddInt64(&pending, 1)
		return true
	}

	// enqueue routes an admitted item to its owning shard's shared
	// queue (cross-thread edges and criteria).
	enqueue := func(id ddg.ID, pc int32) {
		if id == 0 {
			return
		}
		s := shardOf(id.TID())
		if !admit(s, id, pc) {
			return
		}
		s.mu.Lock()
		s.queue = append(s.queue, pbItem{id: id, pc: pc})
		s.cond.Signal()
		s.mu.Unlock()
	}

	for _, c := range crits {
		enqueue(c.ID, c.PC)
	}
	if atomic.LoadInt64(&pending) == 0 {
		// Every criterion was out of window (or zero): nothing to run.
		return pbMerge(all, prog)
	}

	var wg sync.WaitGroup
	for _, s := range all {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			pbWorker(s, src, hinted, opts, admit, enqueue, &pending, &nodes, &done, finish)
		}()
	}
	var interrupted atomic.Bool
	stop := watchDone(opts.Done, &interrupted, finish)
	wg.Wait()
	stop()
	res := pbMerge(all, prog)
	res.Interrupted = interrupted.Load()
	return res
}

// watchDone links Options.Done to a traversal's finish() broadcast
// (the same wakeup MaxNodes uses, so blocked workers exit), latching
// interrupted when Done — not completion — triggered it. The
// returned stop func must be called after the workers join.
func watchDone(done <-chan struct{}, interrupted *atomic.Bool, finish func()) (stop func()) {
	if done == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	go func() {
		select {
		case <-done:
			interrupted.Store(true)
			finish()
		case <-stopCh:
		}
	}()
	return func() { close(stopCh) }
}

// drainShard is the worker loop both parallel slicers share: wait on
// the shard's cond for cross-shard items (or the finish broadcast),
// swap the queued batch out under the lock, and run each item through
// process, draining the local same-shard continuation stack (which
// process's expansion appends to) depth-first between items. busy
// accumulates processing time, waits excluded; process returns false
// once the traversal is finished.
func drainShard[T any](mu *sync.Mutex, cond *sync.Cond, queue *[]T, done *atomic.Bool,
	busy *time.Duration, local *[]T, process func(T) bool) {

	var batch []T
	for {
		mu.Lock()
		for len(*queue) == 0 && !done.Load() {
			cond.Wait()
		}
		if len(*queue) == 0 {
			mu.Unlock()
			return
		}
		batch, *queue = *queue, batch[:0]
		mu.Unlock()

		start := time.Now()
		ok := true
		for _, it := range batch {
			if ok = process(it); !ok {
				break
			}
			for ok && len(*local) > 0 {
				next := (*local)[len(*local)-1]
				*local = (*local)[:len(*local)-1]
				ok = process(next)
			}
		}
		*busy += time.Since(start)
		if !ok {
			return
		}
	}
}

// pbItem is one frontier entry.
type pbItem struct {
	id ddg.ID
	pc int32
}

// pbWorker drains one shard via drainShard. Same-shard continuations
// stay on a local stack (no queue round-trip, no wakeups — a thread's
// own dependence chain walks at sequential speed); only cross-shard
// edges go through the owning shard's locked queue. The orphan shard
// (tid -1) owns a mix of unrecorded tids, so nothing is "same-shard"
// for it.
func pbWorker(s *pbShard,
	src ddg.Source, hinted HintedSource, opts Options,
	admit func(*pbShard, ddg.ID, int32) bool, enqueue func(ddg.ID, int32),
	pending, nodes *int64, done *atomic.Bool, finish func()) {

	var local []pbItem
	yield := func(d ddg.Dep) {
		switch d.Kind {
		case ddg.Control:
			if !opts.FollowControl {
				return
			}
		case ddg.WAR, ddg.WAW:
			if !opts.FollowAnti {
				return
			}
		}
		s.edges++
		s.pcs[d.DefPC] = true
		if s.tid >= 0 && d.Def != 0 && d.Def.TID() == s.tid {
			if admit(s, d.Def, d.DefPC) {
				local = append(local, pbItem{id: d.Def, pc: d.DefPC})
			}
		} else {
			enqueue(d.Def, d.DefPC)
		}
	}
	process := func(it pbItem) bool {
		s.nodes++
		if it.pc >= 0 {
			s.pcs[it.pc] = true
		}
		if hinted != nil {
			hinted.DepsOfHinted(it.id, it.pc, yield)
		} else {
			src.DepsOf(it.id, yield)
		}
		if opts.MaxNodes > 0 && atomic.AddInt64(nodes, 1) >= int64(opts.MaxNodes) {
			finish()
		}
		if atomic.AddInt64(pending, -1) == 0 {
			finish()
		}
		return !done.Load()
	}
	drainShard(&s.mu, s.cond, &s.queue, done, &s.busy, &local, process)
}

// pbShard is one thread's frontier, visited set, and result tallies.
// queue, visited, extraPCs, and truncated are guarded by mu (they are
// written by other shards' workers pushing edges here); nodes, edges,
// and pcs belong to the owning worker alone.
type pbShard struct {
	tid       int // -1: the orphan shard
	mu        sync.Mutex
	cond      *sync.Cond
	queue     []pbItem
	visited   map[ddg.ID]bool
	extraPCs  map[int32]bool
	truncated bool

	nodes int
	edges int
	pcs   map[int32]bool
	busy  time.Duration
}

func newPBShard(tid int) *pbShard {
	s := &pbShard{
		tid:      tid,
		visited:  make(map[ddg.ID]bool),
		extraPCs: make(map[int32]bool),
		pcs:      make(map[int32]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// pbMerge folds the shards into a Slice (single goroutine, after all
// workers have joined).
func pbMerge(all []*pbShard, prog *isa.Program) *Slice {
	res := &Slice{PCs: make(map[int32]bool), ShardBusy: make(map[int]time.Duration)}
	for _, s := range all {
		res.Nodes += s.nodes
		res.Edges += s.edges
		if s.truncated {
			res.TruncatedAtWindow = true
		}
		for pc := range s.pcs {
			res.PCs[pc] = true
		}
		for pc := range s.extraPCs {
			res.PCs[pc] = true
		}
		if s.busy > 0 {
			res.ShardBusy[s.tid] = s.busy
		}
	}
	res.Lines = pcsToLines(prog, res.PCs)
	return res
}

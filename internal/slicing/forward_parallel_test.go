package slicing

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"scaldift/internal/ddg"
	"scaldift/internal/prog"
)

// oldestWithDeps returns the thread's oldest instance that has at
// least one dependence — a forward-slice start whose closure is
// non-trivial.
func oldestWithDeps(g *ddg.Full, tid int) ddg.ID {
	lo, hi := g.Window(tid)
	for n := lo; n <= hi && lo != 0; n++ {
		id := ddg.MakeID(tid, n)
		if len(ddg.CountDeps(g, id)) > 0 {
			return id
		}
	}
	return 0
}

// TestParallelForwardMatchesSequential holds ParallelForward to
// Forward's exact results (Lines, PCs, Nodes, Edges) on every
// workload, across worker counts, from each thread's oldest recorded
// instance and from a multi-start fan-out.
func TestParallelForwardMatchesSequential(t *testing.T) {
	for _, w := range prog.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			g := buildWorkloadGraph(t, w, 2)
			opts := Options{FollowControl: true}
			var starts []ddg.ID
			for _, tid := range g.Threads() {
				if id := oldestWithDeps(g, tid); id != 0 {
					starts = append(starts, id)
				}
			}
			if len(starts) == 0 {
				t.Skip("no recorded instances")
			}
			cases := [][]ddg.ID{starts}
			for _, id := range starts {
				cases = append(cases, []ddg.ID{id})
			}
			for ci, start := range cases {
				seq := Forward(g, w.Prog, start, opts)
				for _, workers := range []int{2, 4} {
					par := ParallelForward(g, w.Prog, start, opts, workers)
					if fmt.Sprint(seq.Lines) != fmt.Sprint(par.Lines) {
						t.Fatalf("case %d workers %d: lines diverged\nseq %v\npar %v",
							ci, workers, seq.Lines, par.Lines)
					}
					if seq.Nodes != par.Nodes || seq.Edges != par.Edges {
						t.Fatalf("case %d workers %d: traversal diverged: %d/%d nodes, %d/%d edges",
							ci, workers, seq.Nodes, par.Nodes, seq.Edges, par.Edges)
					}
					if fmt.Sprint(mapKeys(seq.PCs)) != fmt.Sprint(mapKeys(par.PCs)) {
						t.Fatalf("case %d workers %d: PC sets diverged", ci, workers)
					}
				}
			}
			// workers <= 1 must take the sequential path.
			one := ParallelForward(g, w.Prog, starts, opts, 1)
			seq := Forward(g, w.Prog, starts, opts)
			if fmt.Sprint(one.Lines) != fmt.Sprint(seq.Lines) {
				t.Fatal("workers=1 fallback diverged")
			}
		})
	}
}

// mapKeys returns the sorted keys of a PC set for comparison.
func mapKeys(m map[int32]bool) []int {
	out := make([]int, 0, len(m))
	for pc := range m {
		out = append(out, int(pc))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestSliceCancellation: a pre-fired Done channel interrupts all four
// traversals, returning a partial (possibly empty) slice with
// Interrupted set rather than hanging or completing.
func TestSliceCancellation(t *testing.T) {
	w := prog.PSum(4, 800, 7)
	g := buildWorkloadGraph(t, w, 5)
	done := make(chan struct{})
	close(done)
	opts := Options{FollowControl: true, Done: done}

	var crits []Criterion
	var starts []ddg.ID
	for _, tid := range g.Threads() {
		if id := newestWithDeps(g, tid); id != 0 {
			pc, ok := g.NodePC(id)
			if !ok {
				pc = -1
			}
			crits = append(crits, Criterion{ID: id, PC: pc})
		}
		if id := oldestWithDeps(g, tid); id != 0 {
			starts = append(starts, id)
		}
	}
	full := Backward(g, w.Prog, crits, Options{FollowControl: true})

	if full.Nodes < 600 {
		t.Fatalf("closure too small for a meaningful cancellation test: %d nodes", full.Nodes)
	}

	type run struct {
		name string
		// strict runs interrupt deterministically (sequential polls);
		// the parallel slicers race completion against the watcher, so
		// only termination is asserted for them.
		strict bool
		f      func() *Slice
	}
	for _, r := range []run{
		{"backward", true, func() *Slice { return Backward(g, w.Prog, crits, opts) }},
		{"parallel-backward", false, func() *Slice { return ParallelBackward(g, w.Prog, crits, opts, 4) }},
		{"forward", true, func() *Slice { return Forward(g, w.Prog, starts, opts) }},
		{"parallel-forward", false, func() *Slice { return ParallelForward(g, w.Prog, starts, opts, 4) }},
	} {
		start := time.Now()
		s := r.f()
		if r.strict {
			if !s.Interrupted {
				t.Errorf("%s: pre-cancelled traversal not marked Interrupted", r.name)
			}
			if s.Nodes >= full.Nodes {
				t.Errorf("%s: cancelled traversal visited the full closure (%d nodes)", r.name, s.Nodes)
			}
		}
		if el := time.Since(start); el > 30*time.Second {
			t.Errorf("%s: cancellation took %v", r.name, el)
		}
	}

	// A Done channel that never fires leaves results untouched.
	quiet := make(chan struct{})
	q := Backward(g, w.Prog, crits, Options{FollowControl: true, Done: quiet})
	if q.Interrupted || q.Nodes != full.Nodes {
		t.Fatal("idle Done channel perturbed the traversal")
	}
}

// cancellingSource wraps a Source and closes done after a fixed
// number of DepsOf calls, firing cancellation deterministically in the
// middle of ParallelForward's scan phase.
type cancellingSource struct {
	ddg.Source
	done  chan struct{}
	after int64
	calls atomic.Int64
}

func (c *cancellingSource) DepsOf(id ddg.ID, yield func(ddg.Dep)) {
	if c.calls.Add(1) == c.after {
		close(c.done)
	}
	c.Source.DepsOf(id, yield)
}

// TestParallelForwardStopsAfterCancelledScan pins the between-phases
// contract: when Done fires during the scan phase, ParallelForward
// returns an empty Interrupted slice instead of merging partial
// buckets and traversing them — edge-proportional work for a result
// the caller has already declined to wait for.
func TestParallelForwardStopsAfterCancelledScan(t *testing.T) {
	w := prog.PSum(4, 800, 7)
	g := buildWorkloadGraph(t, w, 5)
	var starts []ddg.ID
	for _, tid := range g.Threads() {
		if id := oldestWithDeps(g, tid); id != 0 {
			starts = append(starts, id)
		}
	}
	if len(starts) == 0 {
		t.Skip("no recorded instances")
	}
	done := make(chan struct{})
	cg := &cancellingSource{Source: g, done: done, after: 512}
	s := ParallelForward(cg, w.Prog, starts, Options{FollowControl: true, Done: done}, 4)
	if !s.Interrupted {
		t.Fatal("mid-scan cancellation not marked Interrupted")
	}
	if s.Nodes != 0 || s.Edges != 0 || len(s.PCs) != 0 {
		t.Fatalf("cancelled-in-scan slice still traversed: %d nodes, %d edges", s.Nodes, s.Edges)
	}
}

package progen

import "testing"

// FuzzProgenDifferential lets the fuzzer drive the generator seed:
// any seed the corpus never visited is a fresh concurrent program run
// through every engine configuration and held to the brute-force
// oracle. A crasher artifact here is a seed whose generated program
// exposes a real divergence in some engine — shrink it with Shrink
// and the failing leg's predicate.
func FuzzProgenDifferential(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 3, 17, 99, 12345, 1 << 40} {
		f.Add(seed)
	}
	cfg := DefaultGenConfig()
	f.Fuzz(func(t *testing.T, seed uint64) {
		Scenario(t, seed, cfg)
	})
}

package progen

import (
	"fmt"

	"scaldift/internal/isa"
)

// Generator register conventions. Value statements draw from r2..r7;
// the remaining registers have fixed roles so generated code is
// well-formed by construction (loop counters are never clobbered by
// loop bodies, addresses never escape their region, divisors are
// never zero).
const (
	rIdx    = 1  // thread argument: worker index (main = 0)
	rValLo  = 2  // first value register
	rValHi  = 7  // last value register
	rScr    = 8  // scratch: guarded divisors, dynamic addresses
	rScr2   = 9  // scratch: alloc results
	rShared = 10 // shared region base
	rPriv   = 11 // this thread's private region base
	rCas    = 13 // CAS cell address
	rCount  = 15 // barrier participant count
	rLoop0  = 20 // loop counter, depth 0
	rBound0 = 21 // loop bound, depth 0
	rLoop1  = 22 // loop counter, depth 1
	rBound1 = 23 // loop bound, depth 1
	rTid0   = 24 // spawned thread ids: r24, r25, …
)

// Data-segment layout (word addresses).
const (
	lockAddr    = 0 // global lock word
	barrierAddr = 1 // barrier object: [1]=count, [2]=generation
	flagAddr    = 3 // phase-0 handshake flag
	casAddr     = 4 // CAS cell
	padAddr     = 5 // 5..7: scratch flag words (never waited on)
	sharedBase  = 8 // shared region starts here
)

// GenConfig bounds the generator's choices; every knob is a maximum
// the per-seed sampling draws from, so one config covers a spread of
// program shapes.
type GenConfig struct {
	// MaxWorkers bounds spawned worker threads (main excluded).
	MaxWorkers int
	// MaxBodyOps bounds statements per phase body.
	MaxBodyOps int
	// MaxPhases bounds barrier-separated phases (workers > 0 only).
	MaxPhases int
	// MaxLoopDepth bounds loop nesting (0 disables loops).
	MaxLoopDepth int
	// MaxTrip bounds loop trip counts.
	MaxTrip int
	// SharedWords / PrivWords size the shared and per-thread address
	// footprints; both must be powers of two (masked indexing).
	SharedWords int
	PrivWords   int
	// Feature gates.
	Locks bool // lock/unlock critical sections
	Flags bool // flag writes and the phase-0 flag handshake
	CAS   bool // compare-and-swap on a shared cell
	Calls bool // straight-line helper functions via CALL/RET
}

// DefaultGenConfig is the corpus configuration: small concurrent
// programs exercising every feature.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MaxWorkers:   2,
		MaxBodyOps:   10,
		MaxPhases:    2,
		MaxLoopDepth: 2,
		MaxTrip:      3,
		SharedWords:  16,
		PrivWords:    8,
		Locks:        true,
		Flags:        true,
		CAS:          true,
		Calls:        true,
	}
}

// stmtKind enumerates generatable statements.
type stmtKind int

const (
	sAlu stmtKind = iota
	sAluI
	sMovi
	sMov
	sDiv
	sIn
	sOut
	sInavail
	sLoadS
	sStoreS
	sLoadD
	sStoreD
	sCas
	sCrit
	sIf
	sLoop
	sCall
	sYield
	sAssert
	sAlloc
	sFlag
)

// sctx is the structural context a statement is generated in.
type sctx struct {
	mul         int64 // worst-case execution multiplier of this point
	loopDepth   int
	branchDepth int
	inCrit      bool
	allocs      *int // alloc sites emitted in this role (≤ 2)
}

type gen struct {
	r   *rng
	cfg GenConfig
	b   *isa.Builder

	workers  int
	phases   int
	privBase int64

	labels int
	worst  int64 // worst-case dynamic instruction count
	ins    int64 // worst-case IN executions

	helpers    []helper
	usedHelper bool
}

// helper is a straight-line callee generated up front so call sites
// know its cost; its body is emitted after all thread code.
type helper struct {
	name string
	emit func(b *isa.Builder)
	len  int
}

// Generate produces a validated random program plus the inputs and
// machine parameters to run it under. The same (seed, cfg) always
// yields a byte-identical Generated: the only entropy source is the
// internal splitmix64 stream.
func Generate(seed uint64, cfg GenConfig) *Generated {
	g := &gen{r: newRng(seed), cfg: cfg}
	g.b = isa.NewBuilder(fmt.Sprintf("progen-%d", seed))

	g.workers = g.r.intn(cfg.MaxWorkers + 1)
	g.phases = 1
	if g.workers > 0 && cfg.MaxPhases > 1 {
		g.phases = 1 + g.r.intn(cfg.MaxPhases)
	}

	// Data segment: 8 sync words, then an initialized shared region,
	// then zeroed per-thread private regions.
	g.b.Reserve(8)
	shared := make([]int64, cfg.SharedWords)
	for i := range shared {
		shared[i] = int64(g.r.intn(64))
	}
	g.b.Data(shared...)
	g.privBase = g.b.Reserve(cfg.PrivWords * (g.workers + 1))

	if cfg.Calls {
		g.genHelpers()
	}
	handshake := cfg.Flags && g.workers > 0 && g.r.coin(1, 2)

	// Main thread.
	g.emitPrologue(1)
	for i := 1; i <= g.workers; i++ {
		g.b.Movi(rScr, int64(i))
		g.b.Spawn(uint8(rTid0+i-1), rScr, fmt.Sprintf("w%d", i))
		g.step(2, 1)
	}
	mainAllocs := 0
	for p := 0; p < g.phases; p++ {
		if p == 0 && handshake {
			g.b.FlagSet(0, flagAddr)
			g.step(1, 1)
		}
		g.body(sctx{mul: 1, allocs: &mainAllocs})
		if p < g.phases-1 {
			g.b.Barrier(0, barrierAddr, rCount)
			g.step(1, 1)
		}
	}
	for i := 1; i <= g.workers; i++ {
		g.b.Join(uint8(rTid0 + i - 1))
		g.step(1, 1)
	}
	// Dump final value-register state: every run ends with outputs
	// whose labels summarize the whole computation.
	for r := rValLo; r <= rValHi; r++ {
		g.b.Out(uint8(r), ChOut)
		g.step(1, 1)
	}
	g.b.Halt()
	g.step(1, 1)

	// Shared worker body (all workers spawn here; behavior differs by
	// r1 and schedule).
	if g.workers > 0 {
		wm := int64(g.workers)
		for i := 1; i <= g.workers; i++ {
			g.b.Label(fmt.Sprintf("w%d", i))
		}
		g.emitPrologue(wm)
		workerAllocs := 0
		for p := 0; p < g.phases; p++ {
			if p == 0 && handshake {
				g.b.FlagWait(0, flagAddr)
				g.step(1, wm)
			}
			g.body(sctx{mul: wm, allocs: &workerAllocs})
			if p < g.phases-1 {
				g.b.Barrier(0, barrierAddr, rCount)
				g.step(1, wm)
			}
		}
		if g.r.coin(1, 2) {
			g.b.Out(uint8(g.valReg()), ChOut)
			g.step(1, wm)
		}
		g.b.Halt()
		g.step(1, wm)
	}

	if g.usedHelper {
		for _, h := range g.helpers {
			g.b.Label(h.name)
			h.emit(g.b)
		}
	}

	prog := g.b.MustBuild()

	// Input supply: the static worst case plus slack, so IN can never
	// block and the run can never deadlock on input.
	supply := g.ins + 8
	inputs := make([]int64, supply)
	for i := range inputs {
		inputs[i] = int64(g.r.intn(1000))
	}

	par := Params{
		MemWords:      4096,
		StackWords:    256,
		MaxThreads:    g.workers + 1,
		Quantum:       3 + g.r.intn(14),
		Seed:          g.r.next(),
		MaxSteps:      uint64(4*g.worst) + 4096,
		RandomPreempt: g.r.coin(3, 4),
	}

	return &Generated{
		Seed:       seed,
		Prog:       prog,
		Inputs:     map[int][]int64{ChIn: inputs},
		Par:        par,
		Workers:    g.workers,
		WorstSteps: g.worst,
	}
}

// step accounts k emitted instructions executing at worst mul times.
func (g *gen) step(k int, mul int64) { g.worst += int64(k) * mul }

func (g *gen) label() string {
	g.labels++
	return fmt.Sprintf("L%d", g.labels)
}

func (g *gen) valReg() uint8 { return uint8(rValLo + g.r.intn(rValHi-rValLo+1)) }

// emitPrologue sets up the fixed-role registers and seeds the value
// registers with constants. mul is the worst-case multiplier of the
// role (1 for main, workers for the shared worker body).
func (g *gen) emitPrologue(mul int64) {
	b := g.b
	n := 0
	b.Movi(rShared, sharedBase)
	b.Muli(rPriv, rIdx, int64(g.cfg.PrivWords))
	b.Addi(rPriv, rPriv, g.privBase)
	n += 3
	if g.cfg.CAS {
		b.Movi(rCas, casAddr)
		n++
	}
	if g.workers > 0 {
		b.Movi(rCount, int64(g.workers+1))
		n++
	}
	for r := rValLo; r <= rValHi; r++ {
		b.Movi(uint8(r), int64(g.r.intn(128)))
		n++
	}
	g.step(n, mul)
}

// genHelpers pre-generates up to two straight-line callees.
func (g *gen) genHelpers() {
	nh := g.r.intn(3)
	for i := 0; i < nh; i++ {
		type instr struct {
			kind int
			rd   uint8
			ra   uint8
			rb   uint8
			op   isa.Op
			off  int64
		}
		var body []instr
		k := 2 + g.r.intn(4)
		for j := 0; j < k; j++ {
			in := instr{rd: g.valReg(), ra: g.valReg(), rb: g.valReg()}
			switch g.r.intn(3) {
			case 0:
				in.kind = 0
				in.op = g.aluOp()
			case 1:
				in.kind = 1
				in.off = int64(g.r.intn(g.cfg.SharedWords))
			default:
				in.kind = 2
				in.off = int64(g.r.intn(g.cfg.SharedWords))
			}
			body = append(body, in)
		}
		name := fmt.Sprintf("h%d", i)
		g.helpers = append(g.helpers, helper{
			name: name,
			len:  k + 1,
			emit: func(b *isa.Builder) {
				for _, in := range body {
					switch in.kind {
					case 0:
						b.Op3(in.op, in.rd, in.ra, in.rb)
					case 1:
						b.Load(in.rd, rShared, in.off)
					case 2:
						b.Store(rShared, in.off, in.ra)
					}
				}
				b.Ret()
			},
		})
	}
}

// aluOp picks a non-trapping three-register ALU or compare opcode.
func (g *gen) aluOp() isa.Op {
	ops := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE,
		isa.CMPGT, isa.CMPGE}
	return ops[g.r.intn(len(ops))]
}

// body emits 1+intn(MaxBodyOps) statements under ctx.
func (g *gen) body(c sctx) {
	n := 1 + g.r.intn(g.cfg.MaxBodyOps)
	for i := 0; i < n; i++ {
		g.stmt(c)
	}
}

// candidates returns the weighted statement pool legal under c.
func (g *gen) candidates(c sctx) []stmtKind {
	add := func(pool []stmtKind, k stmtKind, w int) []stmtKind {
		for i := 0; i < w; i++ {
			pool = append(pool, k)
		}
		return pool
	}
	var pool []stmtKind
	pool = add(pool, sAlu, 4)
	pool = add(pool, sAluI, 2)
	pool = add(pool, sMovi, 1)
	pool = add(pool, sMov, 1)
	pool = add(pool, sDiv, 1)
	pool = add(pool, sIn, 3)
	pool = add(pool, sOut, 2)
	pool = add(pool, sInavail, 1)
	pool = add(pool, sLoadS, 2)
	pool = add(pool, sStoreS, 2)
	pool = add(pool, sLoadD, 1)
	pool = add(pool, sStoreD, 1)
	pool = add(pool, sYield, 1)
	pool = add(pool, sAssert, 1)
	if g.cfg.CAS {
		pool = add(pool, sCas, 1)
	}
	if g.cfg.Flags {
		pool = add(pool, sFlag, 1)
	}
	if c.branchDepth < 2 {
		pool = add(pool, sIf, 2)
	}
	if !c.inCrit {
		if c.loopDepth < g.cfg.MaxLoopDepth && c.branchDepth == 0 {
			pool = add(pool, sLoop, 2)
		}
		if g.cfg.Locks {
			pool = add(pool, sCrit, 1)
		}
		if len(g.helpers) > 0 {
			pool = add(pool, sCall, 1)
		}
		if c.loopDepth == 0 && c.branchDepth == 0 && *c.allocs < 2 {
			pool = add(pool, sAlloc, 1)
		}
	}
	return pool
}

// stmt emits one statement under c, accounting its worst-case cost.
func (g *gen) stmt(c sctx) {
	b := g.b
	pool := g.candidates(c)
	switch pool[g.r.intn(len(pool))] {
	case sAlu:
		b.Op3(g.aluOp(), g.valReg(), g.valReg(), g.valReg())
		g.step(1, c.mul)
	case sAluI:
		rd, ra := g.valReg(), g.valReg()
		imm := int64(g.r.intn(64)) - 16
		switch g.r.intn(3) {
		case 0:
			b.Addi(rd, ra, imm)
		case 1:
			b.Muli(rd, ra, imm)
		default:
			b.Andi(rd, ra, imm)
		}
		g.step(1, c.mul)
	case sMovi:
		b.Movi(g.valReg(), int64(g.r.intn(256)))
		g.step(1, c.mul)
	case sMov:
		b.Mov(g.valReg(), g.valReg())
		g.step(1, c.mul)
	case sDiv:
		// Guarded division: divisor forced into [1,8].
		rd, ra, rb := g.valReg(), g.valReg(), g.valReg()
		b.Andi(rScr, rb, 7)
		b.Addi(rScr, rScr, 1)
		if g.r.coin(1, 2) {
			b.Div(rd, ra, rScr)
		} else {
			b.Mod(rd, ra, rScr)
		}
		g.step(3, c.mul)
	case sIn:
		b.In(g.valReg(), ChIn)
		g.step(1, c.mul)
		g.ins += c.mul
	case sOut:
		b.Out(g.valReg(), ChOut)
		g.step(1, c.mul)
	case sInavail:
		b.InAvail(g.valReg(), ChIn)
		g.step(1, c.mul)
	case sLoadS, sStoreS, sLoadD, sStoreD:
		g.memStmt(c)
	case sCas:
		b.Cas(g.valReg(), rCas, g.valReg(), int64(g.r.intn(64)))
		g.step(1, c.mul)
	case sFlag:
		// Scratch flag words 5..7 — never waited on, so stray writes
		// cannot deadlock the phase-0 handshake.
		off := int64(padAddr + g.r.intn(3))
		if g.r.coin(1, 2) {
			b.FlagSet(0, off)
		} else {
			b.FlagClr(0, off)
		}
		g.step(1, c.mul)
	case sCrit:
		g.critStmt(c)
	case sIf:
		g.ifStmt(c)
	case sLoop:
		g.loopStmt(c)
	case sCall:
		h := g.helpers[g.r.intn(len(g.helpers))]
		b.Call(h.name)
		g.usedHelper = true
		g.step(1+h.len, c.mul)
	case sYield:
		b.Yield()
		g.step(1, c.mul)
	case sAssert:
		ra := g.valReg()
		b.Cmp(isa.CMPEQ, rScr, ra, ra)
		b.Assert(rScr)
		g.step(2, c.mul)
	case sAlloc:
		*c.allocs++
		b.Movi(rScr, int64(1+g.r.intn(8)))
		b.Alloc(rScr2, rScr)
		b.Store(rScr2, 0, g.valReg())
		b.Load(g.valReg(), rScr2, 0)
		g.step(4, c.mul)
	}
}

// memStmt emits a load or store, static or dynamically indexed,
// against the shared or this thread's private region.
func (g *gen) memStmt(c sctx) {
	b := g.b
	base, words := uint8(rShared), g.cfg.SharedWords
	if g.r.coin(1, 2) {
		base, words = rPriv, g.cfg.PrivWords
	}
	load := g.r.coin(1, 2)
	if g.r.coin(1, 2) {
		// Static offset.
		off := int64(g.r.intn(words))
		if load {
			b.Load(g.valReg(), base, off)
		} else {
			b.Store(base, off, g.valReg())
		}
		g.step(1, c.mul)
		return
	}
	// Dynamic masked index: addr = base + (val & (words-1)).
	b.Andi(rScr, g.valReg(), int64(words-1))
	b.Add(rScr, rScr, base)
	if load {
		b.Load(g.valReg(), rScr, 0)
	} else {
		b.Store(rScr, 0, g.valReg())
	}
	g.step(3, c.mul)
}

// critStmt emits a straight-line lock/unlock critical section over
// the global lock word.
func (g *gen) critStmt(c sctx) {
	b := g.b
	b.Lock(0, lockAddr)
	g.step(1, c.mul)
	inner := 1 + g.r.intn(3)
	cc := c
	cc.inCrit = true
	for i := 0; i < inner; i++ {
		switch g.r.intn(3) {
		case 0:
			b.Op3(g.aluOp(), g.valReg(), g.valReg(), g.valReg())
			g.step(1, cc.mul)
		case 1:
			b.Load(g.valReg(), rShared, int64(g.r.intn(g.cfg.SharedWords)))
			g.step(1, cc.mul)
		default:
			b.Store(rShared, int64(g.r.intn(g.cfg.SharedWords)), g.valReg())
			g.step(1, cc.mul)
		}
	}
	b.Unlock(0, lockAddr)
	g.step(1, c.mul)
}

// ifStmt emits a forward if (optionally if/else) over a register
// compare; both arms are accounted in the worst case.
func (g *gen) ifStmt(c sctx) {
	b := g.b
	cc := c
	cc.branchDepth++
	b.Cmp(g.cmpOp(), rScr, g.valReg(), g.valReg())
	g.step(2, c.mul) // cmp + beqz
	hasElse := g.r.coin(1, 2)
	endL := g.label()
	elseL := endL
	if hasElse {
		elseL = g.label()
	}
	b.Beqz(rScr, elseL)
	thenN := 1 + g.r.intn(3)
	for i := 0; i < thenN; i++ {
		g.stmt(cc)
	}
	if hasElse {
		b.Br(endL)
		g.step(1, c.mul)
		b.Label(elseL)
		elseN := 1 + g.r.intn(3)
		for i := 0; i < elseN; i++ {
			g.stmt(cc)
		}
	}
	b.Label(endL)
}

func (g *gen) cmpOp() isa.Op {
	ops := []isa.Op{isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE}
	return ops[g.r.intn(len(ops))]
}

// loopStmt emits a counted post-test loop with a known trip count.
func (g *gen) loopStmt(c sctx) {
	b := g.b
	trip := 1 + g.r.intn(g.cfg.MaxTrip)
	rl, rb := uint8(rLoop0), uint8(rBound0)
	if c.loopDepth == 1 {
		rl, rb = rLoop1, rBound1
	}
	b.Movi(rl, 0)
	b.Movi(rb, int64(trip))
	g.step(2, c.mul)
	head := g.label()
	b.Label(head)
	cc := c
	cc.loopDepth++
	cc.mul = c.mul * int64(trip)
	bodyN := 1 + g.r.intn(4)
	for i := 0; i < bodyN; i++ {
		g.stmt(cc)
	}
	b.Addi(rl, rl, 1)
	b.Blt(rl, rb, head)
	g.step(2, cc.mul)
}

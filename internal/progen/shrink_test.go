package progen

import (
	"testing"

	"scaldift/internal/isa"
)

// markerVal is the sentinel an injected "bug" emits; the shrinker
// must preserve whatever subset of the program still emits it.
const markerVal = 48879

// injectMarker plants `movi rScr, markerVal; out rScr, ChOut` at the
// program entry, shifting every branch target, label, and function
// range past the insertion point.
func injectMarker(p *isa.Program) *isa.Program {
	out := p.Clone()
	pre := []isa.Instr{
		{Op: isa.MOVI, Rd: rScr, Imm: markerVal},
		{Op: isa.OUT, Rs1: rScr, Imm: ChOut},
	}
	out.Instrs = append(pre, out.Instrs...)
	for i := range out.Instrs {
		if out.Instrs[i].Op.HasTarget() && i >= len(pre) {
			out.Instrs[i].Target += len(pre)
		}
	}
	for name, pc := range out.Labels {
		out.Labels[name] = pc + len(pre)
	}
	for name, fr := range out.Funcs {
		fr.Start += len(pre)
		fr.End += len(pre)
		out.Funcs[name] = fr
	}
	return out
}

// emitsMarker is the reproduction predicate: the oracle run of the
// candidate still emits the sentinel on the output channel.
func emitsMarker(g *Generated) Property {
	return func(p *isa.Program) bool {
		run := RunOracle(p, g.Inputs, g.Par)
		for _, v := range run.Outputs[ChOut] {
			if v == markerVal {
				return true
			}
		}
		return false
	}
}

// TestShrinkReducesInjectedBug seeds real generated programs with a
// marker-emitting "bug" and checks the shrinker strips away the
// unrelated bulk: the reproducer must come out at no more than 25% of
// the original instruction count, and every intermediate candidate
// the shrinker accepts must both validate and still reproduce.
func TestShrinkReducesInjectedBug(t *testing.T) {
	cfg := DefaultGenConfig()
	for _, seed := range []uint64{3, 7, 42, 101, 250} {
		g := Generate(seed, cfg)
		buggy := injectMarker(g.Prog)
		if err := buggy.Validate(); err != nil {
			t.Fatalf("seed %d: injected program invalid: %v", seed, err)
		}
		keep := emitsMarker(g)
		if !keep(buggy) {
			t.Fatalf("seed %d: injected program does not reproduce", seed)
		}
		accepts := 0
		min := Shrink(buggy, keep, ShrinkOptions{
			OnAccept: func(p *isa.Program) {
				accepts++
				if err := p.Validate(); err != nil {
					t.Fatalf("seed %d: accepted candidate invalid: %v", seed, err)
				}
				if !keep(p) {
					t.Fatalf("seed %d: accepted candidate no longer reproduces", seed)
				}
			},
		})
		if err := min.Validate(); err != nil {
			t.Fatalf("seed %d: shrunk program invalid: %v", seed, err)
		}
		if !keep(min) {
			t.Fatalf("seed %d: shrunk program no longer reproduces", seed)
		}
		if 4*len(min.Instrs) > len(buggy.Instrs) {
			t.Errorf("seed %d: shrunk to %d of %d instructions, want <= 25%%",
				seed, len(min.Instrs), len(buggy.Instrs))
		}
		if accepts == 0 {
			t.Errorf("seed %d: shrinker accepted no reductions", seed)
		}
	}
}

// TestShrinkFailingPredicate: when the input never satisfied the
// predicate, Shrink must hand back an untouched copy rather than
// "reduce" a non-reproducer.
func TestShrinkFailingPredicate(t *testing.T) {
	g := Generate(5, DefaultGenConfig())
	never := Property(func(*isa.Program) bool { return false })
	out := Shrink(g.Prog, never, ShrinkOptions{})
	if len(out.Instrs) != len(g.Prog.Instrs) {
		t.Fatalf("shrink with failing predicate changed the program: %d vs %d instrs",
			len(out.Instrs), len(g.Prog.Instrs))
	}
}

package progen

import (
	"reflect"
	"testing"

	"scaldift/internal/isa"
)

// Same seed ⇒ byte-identical program, inputs, and parameters: the
// whole Generated must be reproducible from its seed alone.
func TestGeneratorDeterminism(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := uint64(0); seed < 50; seed++ {
		a := Generate(seed, cfg)
		b := Generate(seed, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations diverged:\n%s\nvs\n%s",
				seed, a.Prog.Disassemble(), b.Prog.Disassemble())
		}
	}
}

// Every generated program is structurally valid, and the generator's
// static accounting is self-consistent: the promised input supply and
// step bound must cover the actual oracle run.
func TestGeneratorWellFormed(t *testing.T) {
	cfg := DefaultGenConfig()
	for seed := uint64(0); seed < 200; seed++ {
		g := Generate(seed, cfg)
		if err := g.Prog.Validate(); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		if g.WorstSteps <= 0 {
			t.Fatalf("seed %d: nonpositive worst-case step count %d", seed, g.WorstSteps)
		}
		run := RunOracle(g.Prog, g.Inputs, g.Par)
		if run.Failed || run.Reason != StopHalted {
			t.Fatalf("seed %d: oracle run stopped with %q (pc %d: %s):\n%s",
				seed, run.Reason, run.FailPC, run.FailMsg, g.Prog.Disassemble())
		}
		if run.Steps > uint64(g.WorstSteps) {
			t.Fatalf("seed %d: actual steps %d exceed the static worst case %d",
				seed, run.Steps, g.WorstSteps)
		}
		if run.InputsConsumed > len(g.Inputs[ChIn]) {
			t.Fatalf("seed %d: consumed %d inputs of a supply of %d",
				seed, run.InputsConsumed, len(g.Inputs[ChIn]))
		}
	}
}

// Generated programs must spread over the interesting structure: the
// corpus as a whole has to exercise threads, loops, locks, CAS, and
// input reads, or the differential harness is testing straight-line
// arithmetic 500 times.
func TestGeneratorCoversFeatures(t *testing.T) {
	cfg := DefaultGenConfig()
	seen := map[isa.Op]bool{}
	multi := 0
	for seed := uint64(0); seed < 100; seed++ {
		g := Generate(seed, cfg)
		if g.Workers > 0 {
			multi++
		}
		for _, ins := range g.Prog.Instrs {
			seen[ins.Op] = true
		}
	}
	for _, op := range []isa.Op{isa.IN, isa.OUT, isa.SPAWN, isa.JOIN, isa.LOCK,
		isa.UNLOCK, isa.BARRIER, isa.CAS, isa.LOAD, isa.STORE, isa.DIV,
		isa.CALL, isa.RET, isa.ALLOC} {
		if !seen[op] {
			t.Errorf("no generated program in 100 seeds used %v", op)
		}
	}
	if multi < 30 {
		t.Errorf("only %d/100 seeds were multithreaded", multi)
	}
}

package progen

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"scaldift/internal/bdd"
	"scaldift/internal/ddg"
	"scaldift/internal/dift"
	"scaldift/internal/isa"
	"scaldift/internal/lineage"
	"scaldift/internal/ontrac"
	"scaldift/internal/pipeline"
	"scaldift/internal/query"
	"scaldift/internal/slicing"
	"scaldift/internal/store"
	"scaldift/internal/vm"
)

// Scenario is the differential harness: it generates the program for
// seed under cfg, computes ground truth with the brute-force oracle,
// then runs the program through every engine configuration — the
// inline DIFT engine (boolean, PC, and lineage domains), the batched
// pipeline in all three domains, offloaded ONTRAC spilling to a real
// on-disk store, slicing over the reopened store.Reader, the query
// service over real HTTP, and an elided (O1+O3) recording sliced
// through reconstruction — failing the test on the first divergence
// from the oracle. It returns the oracle run for further assertions.
//
// A new scenario is one line per seed:
//
//	progen.Scenario(t, 12345, progen.DefaultGenConfig())
func Scenario(tb testing.TB, seed uint64, cfg GenConfig) *OracleRun {
	tb.Helper()
	g := Generate(seed, cfg)
	want := RunOracle(g.Prog, g.Inputs, g.Par)
	if want.Failed || want.Reason != StopHalted {
		tb.Fatalf("progen seed %d: oracle run stopped with %q (pc %d tid %d: %s) — the generator emitted a misbehaving program:\n%s",
			seed, want.Reason, want.FailPC, want.FailTID, want.FailMsg, g.Prog.Disassemble())
	}
	s := &scenario{tb: tb, g: g, want: want,
		bits: lineage.BitsFor(len(g.Inputs[ChIn]) + 8)}
	s.inline()
	s.pipelines()
	s.offloaded()
	return want
}

type scenario struct {
	tb   testing.TB
	g    *Generated
	want *OracleRun
	bits int
}

// failf fails with the seed and full program attached, so any
// divergence is immediately reproducible and shrinkable.
func (s *scenario) failf(leg, format string, args ...any) {
	s.tb.Helper()
	s.tb.Fatalf("progen seed %d [%s]: %s\n%s",
		s.g.Seed, leg, fmt.Sprintf(format, args...), s.g.Prog.Disassemble())
}

func (s *scenario) newMachine() *vm.Machine {
	p := s.g.Par
	m := vm.MustNew(s.g.Prog, vm.Config{
		MemWords:      p.MemWords,
		StackWords:    p.StackWords,
		MaxThreads:    p.MaxThreads,
		Quantum:       p.Quantum,
		Seed:          p.Seed,
		MaxSteps:      p.MaxSteps,
		RandomPreempt: p.RandomPreempt,
	})
	for ch, words := range s.g.Inputs {
		m.SetInput(ch, words)
	}
	return m
}

// checkRun compares the architectural outcome of a VM run — stop
// reason, step counts, consumed inputs, outputs, thread structure —
// against the oracle.
func (s *scenario) checkRun(leg string, m *vm.Machine, res *vm.Result) {
	s.tb.Helper()
	w := s.want
	if uint8(res.Reason) != uint8(w.Reason) || res.Failed != w.Failed {
		s.failf(leg, "stop diverged: vm %v/failed=%v, oracle %v/failed=%v (%s)",
			res.Reason, res.Failed, w.Reason, w.Failed, res.FailMsg)
	}
	if res.Steps != w.Steps {
		s.failf(leg, "steps diverged: vm %d, oracle %d", res.Steps, w.Steps)
	}
	if m.InputsConsumed() != w.InputsConsumed {
		s.failf(leg, "inputs consumed diverged: vm %d, oracle %d",
			m.InputsConsumed(), w.InputsConsumed)
	}
	if got, want := fmt.Sprint(m.Output(ChOut)), fmt.Sprint(w.Outputs[ChOut]); got != want {
		s.failf(leg, "outputs diverged:\nvm     %s\noracle %s", got, want)
	}
	for tid := 0; tid < w.NumThreads; tid++ {
		th := m.Thread(tid)
		if th == nil {
			s.failf(leg, "vm is missing thread %d (oracle has %d)", tid, w.NumThreads)
		}
		if th.Steps != w.ThreadSteps[tid] {
			s.failf(leg, "thread %d steps diverged: vm %d, oracle %d",
				tid, th.Steps, w.ThreadSteps[tid])
		}
	}
	if m.Thread(w.NumThreads) != nil {
		s.failf(leg, "vm has more threads than the oracle's %d", w.NumThreads)
	}
}

// capSink copies sink callbacks with their event metadata; the
// engines fire it in global sequence order, inline and pipelined.
type capRec[L comparable] struct {
	Ch  int
	Seq uint64
	PC  int
	Val int64
	L   L
}

type capSink[L comparable] struct {
	outs []capRec[L]
	brs  []capRec[L]
}

func (c *capSink[L]) OnOutput(ev *vm.Event, l L) {
	c.outs = append(c.outs, capRec[L]{ev.Ch, ev.Seq, ev.PC, ev.IOVal, l})
}

func (c *capSink[L]) OnIndirectBranch(ev *vm.Event, l L) {
	c.brs = append(c.brs, capRec[L]{0, ev.Seq, ev.PC, 0, l})
}

// taintView is the read surface shared by dift.Engine and
// pipeline.Pipeline that the comparisons run against.
type taintView[L comparable] interface {
	RegTaint(tid, r int) L
	MemTaint(addr int64) L
	TaintedWords() int
}

// checkBool compares a boolean-domain engine to the oracle.
func (s *scenario) checkBool(leg string, v taintView[bool], sink *capSink[bool]) {
	s.tb.Helper()
	w := s.want
	if len(sink.outs) != len(w.Outs) {
		s.failf(leg, "output count diverged: engine %d, oracle %d", len(sink.outs), len(w.Outs))
	}
	for i, got := range sink.outs {
		o := w.Outs[i]
		if got.Ch != o.Ch || got.Seq != o.Seq || got.PC != o.PC || got.Val != o.Val || got.L != o.Bool {
			s.failf(leg, "output %d diverged: engine %+v, oracle %+v", i, got, o)
		}
	}
	if len(sink.brs) != len(w.Branches) {
		s.failf(leg, "branch sink count diverged: engine %d, oracle %d", len(sink.brs), len(w.Branches))
	}
	for tid := 0; tid < w.NumThreads; tid++ {
		for r := 0; r < len(w.RegsBool[tid]); r++ {
			if got := v.RegTaint(tid, r); got != w.RegsBool[tid][r] {
				s.failf(leg, "reg taint diverged at tid %d r%d: engine %v, oracle %v",
					tid, r, got, w.RegsBool[tid][r])
			}
		}
	}
	for addr := range w.MemBool {
		if !v.MemTaint(addr) {
			s.failf(leg, "mem taint lost at word %d", addr)
		}
	}
	if got := v.TaintedWords(); got != len(w.MemBool) {
		s.failf(leg, "tainted word count diverged: engine %d, oracle %d", got, len(w.MemBool))
	}
}

// checkPC compares a PC-domain engine to the oracle.
func (s *scenario) checkPC(leg string, v taintView[dift.PCLabel], sink *capSink[dift.PCLabel]) {
	s.tb.Helper()
	w := s.want
	if len(sink.outs) != len(w.Outs) {
		s.failf(leg, "output count diverged: engine %d, oracle %d", len(sink.outs), len(w.Outs))
	}
	for i, got := range sink.outs {
		o := w.Outs[i]
		if got.Ch != o.Ch || got.Seq != o.Seq || got.PC != o.PC || got.Val != o.Val || int32(got.L) != o.PCLabel {
			s.failf(leg, "output %d diverged: engine %+v, oracle %+v", i, got, o)
		}
	}
	for tid := 0; tid < w.NumThreads; tid++ {
		for r := 0; r < len(w.RegsPC[tid]); r++ {
			if got := int32(v.RegTaint(tid, r)); got != w.RegsPC[tid][r] {
				s.failf(leg, "PC taint diverged at tid %d r%d: engine %d, oracle %d",
					tid, r, got, w.RegsPC[tid][r])
			}
		}
	}
	for addr, want := range w.MemPC {
		if got := int32(v.MemTaint(addr)); got != want {
			s.failf(leg, "mem PC taint diverged at word %d: engine %d, oracle %d", addr, got, want)
		}
	}
	if got := v.TaintedWords(); got != len(w.MemPC) {
		s.failf(leg, "PC tainted word count diverged: engine %d, oracle %d", got, len(w.MemPC))
	}
}

// checkLineage compares a lineage-domain engine to the oracle; raw
// roBDD refs are manager-local, so sets are compared element-wise.
func (s *scenario) checkLineage(leg string, man *bdd.Manager, v taintView[bdd.Ref], rec *lineage.Recorder) {
	s.tb.Helper()
	w := s.want
	if len(rec.Outputs) != len(w.Outs) {
		s.failf(leg, "output count diverged: engine %d, oracle %d", len(rec.Outputs), len(w.Outs))
	}
	for i, got := range rec.Outputs {
		o := w.Outs[i]
		if got.Ch != o.Ch || got.Seq != o.Seq || got.PC != o.PC || got.Val != o.Val {
			s.failf(leg, "output %d metadata diverged: engine %+v, oracle %+v", i, got, o)
		}
		if els := man.Elements(got.Set, nil); !lineage.SortedEquals(els, o.Lineage) {
			s.failf(leg, "output %d lineage diverged:\nengine %v\noracle %v", i, els, o.Lineage)
		}
	}
	for tid := 0; tid < w.NumThreads; tid++ {
		for r := 0; r < len(w.RegsLineage[tid]); r++ {
			els := man.Elements(v.RegTaint(tid, r), nil)
			if !lineage.SortedEquals(els, w.RegsLineage[tid][r]) {
				s.failf(leg, "lineage diverged at tid %d r%d:\nengine %v\noracle %v",
					tid, r, els, w.RegsLineage[tid][r])
			}
		}
	}
	for addr, want := range w.MemLineage {
		els := man.Elements(v.MemTaint(addr), nil)
		if !lineage.SortedEquals(els, want) {
			s.failf(leg, "mem lineage diverged at word %d:\nengine %v\noracle %v", addr, els, want)
		}
	}
	if got := v.TaintedWords(); got != len(w.MemLineage) {
		s.failf(leg, "lineage tainted word count diverged: engine %d, oracle %d",
			got, len(w.MemLineage))
	}
}

// inline runs one machine with all three inline engines attached.
func (s *scenario) inline() {
	s.tb.Helper()
	m := s.newMachine()
	be := dift.NewEngine[bool](dift.Bool{}, dift.DefaultPolicy())
	bs := &capSink[bool]{}
	be.AddSink(bs)
	pe := dift.NewEngine[dift.PCLabel](dift.PC{}, dift.DefaultPolicy())
	ps := &capSink[dift.PCLabel]{}
	pe.AddSink(ps)
	ld := lineage.NewDomain(s.bits)
	le := lineage.NewEngine(ld, dift.DefaultPolicy())
	lr := lineage.NewRecorder(ld)
	le.AddSink(lr)
	m.AttachTool(be)
	m.AttachTool(pe)
	m.AttachTool(le)
	s.checkRun("inline", m, m.Run())
	s.checkBool("inline", be, bs)
	s.checkPC("inline", pe, ps)
	s.checkLineage("inline", ld.Manager(), le, lr)
}

// pipelines runs the batched pipeline once per domain, each on a
// fresh machine with the identical schedule.
func (s *scenario) pipelines() {
	s.tb.Helper()
	popt := pipeline.Options{Workers: 2, BatchEvents: 48, WindowBatches: 4}

	m := s.newMachine()
	bp := pipeline.New[bool](dift.Bool{}, dift.DefaultPolicy(), popt)
	bs := &capSink[bool]{}
	bp.AddSink(bs)
	s.checkRun("pipeline-bool", m, pipeline.Run(m, bp))
	s.checkBool("pipeline-bool", bp, bs)

	m = s.newMachine()
	pp := pipeline.New[dift.PCLabel](dift.PC{}, dift.DefaultPolicy(), popt)
	ps := &capSink[dift.PCLabel]{}
	pp.AddSink(ps)
	s.checkRun("pipeline-pc", m, pipeline.Run(m, pp))
	s.checkPC("pipeline-pc", pp, ps)

	m = s.newMachine()
	ld := lineage.NewLockedDomain(s.bits)
	lp := pipeline.New[bdd.Ref](ld, dift.DefaultPolicy(), popt)
	lr := lineage.NewRecorder(ld.Domain)
	lp.AddSink(lr)
	s.checkRun("pipeline-lineage", m, pipeline.Run(m, lp))
	s.checkLineage("pipeline-lineage", ld.Manager(), lp, lr)
}

// graphSource is the read surface shared by ontrac.Reader,
// store.Reader, and every other ddg.Source the graph legs compare.
type graphSource interface {
	ddg.Source
}

// checkGraph compares a recorded dependence graph — thread windows,
// node PCs, and backward/forward slices from each thread's window
// edges — against the oracle's brute-force closures. workers > 0
// selects the parallel slicers.
func (s *scenario) checkGraph(leg string, src graphSource, workers int) {
	s.tb.Helper()
	w := s.want
	wantTIDs := w.RecordedThreads()
	gotTIDs := append([]int(nil), src.Threads()...)
	sort.Ints(gotTIDs)
	if fmt.Sprint(gotTIDs) != fmt.Sprint(wantTIDs) {
		s.failf(leg, "recorded threads diverged: engine %v, oracle %v", gotTIDs, wantTIDs)
	}
	checked := 0
	for _, tid := range wantTIDs {
		lo, hi := w.RecordedWindow(tid)
		if glo, ghi := src.Window(tid); glo != lo || ghi != hi {
			s.failf(leg, "tid %d window diverged: engine [%d,%d], oracle [%d,%d]",
				tid, glo, ghi, lo, hi)
		}
		wantPC, _ := w.NodePC(tid, hi)
		if gotPC, ok := src.NodePC(ddg.MakeID(tid, hi)); !ok || gotPC != wantPC {
			s.failf(leg, "tid %d node PC at n=%d diverged: engine %d (ok=%v), oracle %d",
				tid, hi, gotPC, ok, wantPC)
		}

		crit := []slicing.Criterion{{ID: ddg.MakeID(tid, hi), PC: wantPC}}
		var back *slicing.Slice
		if workers > 0 {
			back = slicing.ParallelBackward(src, s.g.Prog, crit, slicing.Options{}, workers)
		} else {
			back = slicing.Backward(src, s.g.Prog, crit, slicing.Options{})
		}
		// No TruncatedAtWindow assertion: a thread's stored window
		// starts at its first dep-having instance, so edges to earlier
		// dep-free defs legitimately raise the (pessimistic) flag even
		// with an unbounded buffer; the PC set stays complete because
		// such defs have nothing to expand.
		s.checkPCSet(leg+"/backward", tid, back.PCs, w.BackwardPCs(tid, hi))

		start := []ddg.ID{ddg.MakeID(tid, lo)}
		var fwd *slicing.Slice
		if workers > 0 {
			fwd = slicing.ParallelForward(src, s.g.Prog, start, slicing.Options{}, workers)
		} else {
			fwd = slicing.Forward(src, s.g.Prog, start, slicing.Options{})
		}
		s.checkPCSet(leg+"/forward", tid, fwd.PCs, w.ForwardPCs(tid, lo))
		checked++
	}
	if checked == 0 {
		s.failf(leg, "no thread recorded any dependence — vacuous comparison")
	}
}

func (s *scenario) checkPCSet(leg string, tid int, got, want map[int32]bool) {
	s.tb.Helper()
	if fmt.Sprint(sortPCSet(got)) != fmt.Sprint(sortPCSet(want)) {
		s.failf(leg, "tid %d slice PCs diverged:\nengine %v\noracle %v",
			tid, sortPCSet(got), sortPCSet(want))
	}
}

func sortPCSet(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for pc, in := range m {
		if in {
			out = append(out, pc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// recordSink tees the chunk stream to the real writer while keeping a
// copy, so later legs can replay the identical recording through
// differently-configured stores.
type recordSink struct {
	mu     sync.Mutex
	next   ddg.ChunkSink
	chunks []ddg.RawChunk
}

func (rs *recordSink) SpillChunk(ch ddg.RawChunk) {
	rs.mu.Lock()
	rs.chunks = append(rs.chunks, ch)
	rs.mu.Unlock()
	rs.next.SpillChunk(ch)
}

// offloaded runs ONTRAC offloaded with an exact (unelided) recording
// spilled to disk, then compares five views of the same graph: the
// in-memory shards, the reopened store.Reader (parallel slicers), the
// query service over real HTTP, an elided O1+O3 recording sliced
// through reconstruction, and a replay into a retention-budgeted
// store trimmed mid-run.
func (s *scenario) offloaded() {
	s.tb.Helper()
	root := s.tb.TempDir()
	dir := filepath.Join(root, fmt.Sprintf("trace-%d", s.g.Seed))
	wr, err := store.Create(store.Options{Dir: dir, SegmentBytes: 8 << 10, Async: true})
	if err != nil {
		s.tb.Fatal(err)
	}
	m := s.newMachine()
	off := ontrac.NewOffloaded(s.g.Prog, ontrac.Options{}, pipeline.Options{Workers: 2})
	rec := &recordSink{next: wr}
	off.SpillTo(rec)
	s.checkRun("ontrac", m, ontrac.Trace(m, off))
	if err := wr.Close(); err != nil {
		s.tb.Fatal(err)
	}
	s.checkGraph("ontrac", off.Reader(), 0)

	r, err := store.Open(dir, store.ReaderOptions{CacheChunks: 4})
	if err != nil {
		s.tb.Fatal(err)
	}
	s.checkGraph("store", r, 2)
	r.Close()

	s.served(root, dir)
	s.elided()
	s.liveAttached()
	s.trimmed(rec.chunks)
}

// served registers the spilled trace and holds the HTTP query service
// to the oracle's slices and provenance.
func (s *scenario) served(root, dir string) {
	s.tb.Helper()
	w := s.want
	reg := query.NewRegistry([]string{root}, query.RegistryOptions{CacheChunks: 4})
	added, err := reg.Refresh()
	if err != nil {
		s.tb.Fatal(err)
	}
	if len(added) != 1 {
		s.failf("http", "registry found %d traces, want 1", len(added))
	}
	id := filepath.Base(dir)
	if err := reg.AttachProgram(id, s.g.Prog, ontrac.Options{}); err != nil {
		s.tb.Fatal(err)
	}
	srv := httptest.NewServer(query.NewServer(reg, query.ServerOptions{MaxConcurrent: 2, Workers: 2}).Handler())
	defer srv.Close()
	cl := query.NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	var provCrits []query.Criterion
	wantInputs := map[int32]bool{}
	for _, tid := range w.RecordedThreads() {
		lo, hi := w.RecordedWindow(tid)
		resp, err := cl.Slice(ctx, &query.SliceRequest{
			Trace: id, Direction: query.DirBackward,
			Criteria: []query.Criterion{{TID: tid, N: hi}},
		})
		if err != nil {
			s.tb.Fatal(err)
		}
		back := w.BackwardPCs(tid, hi)
		if fmt.Sprint(resp.PCs) != fmt.Sprint(sortPCSet(back)) {
			s.failf("http", "tid %d served backward PCs diverged:\nserved %v\noracle %v",
				tid, resp.PCs, sortPCSet(back))
		}
		fresp, err := cl.Slice(ctx, &query.SliceRequest{
			Trace: id, Direction: query.DirForward,
			Criteria: []query.Criterion{{TID: tid, N: lo}},
		})
		if err != nil {
			s.tb.Fatal(err)
		}
		if fwd := w.ForwardPCs(tid, lo); fmt.Sprint(fresp.PCs) != fmt.Sprint(sortPCSet(fwd)) {
			s.failf("http", "tid %d served forward PCs diverged:\nserved %v\noracle %v",
				tid, fresp.PCs, sortPCSet(fwd))
		}

		provCrits = append(provCrits, query.Criterion{TID: tid, N: hi})
		for pc := range back {
			if int(pc) < len(s.g.Prog.Instrs) && s.g.Prog.Instrs[pc].Op == isa.IN {
				wantInputs[pc] = true
			}
		}
	}

	prov, err := cl.Provenance(ctx, &query.ProvenanceRequest{Trace: id, Criteria: provCrits})
	if err != nil {
		s.tb.Fatal(err)
	}
	if fmt.Sprint(prov.InputPCs) != fmt.Sprint(sortPCSet(wantInputs)) {
		s.failf("http", "served provenance diverged:\nserved %v\noracle %v",
			prov.InputPCs, sortPCSet(wantInputs))
	}
}

// elided re-records with O1+O3 elision and checks backward data
// slices reconstructed through the elided reader for soundness
// against ground truth. Two deliberate asymmetries versus the exact
// legs: reconstruction re-infers statically resolved in-block
// dependences, which can add edges whose dynamic taint never flowed
// (an over-approximation that only grows the slice); and an elided
// trace's stored window starts at the thread's first *stored* record,
// so the slicer truncates below it exactly as it would at a real
// buffer eviction. The oracle mirrors the truncation rule
// (BackwardPCsBounded over the elided reader's own windows); within
// it, reconstruction must never lose a statement.
func (s *scenario) elided() {
	s.tb.Helper()
	w := s.want
	m := s.newMachine()
	off := ontrac.NewOffloaded(s.g.Prog, ontrac.StaticOptions(), pipeline.Options{Workers: 2})
	s.checkRun("ontrac-elided", m, ontrac.Trace(m, off))
	r := off.Reader()
	lows := make(map[int]uint64)
	for _, tid := range r.Threads() {
		lows[tid], _ = r.Window(tid)
	}
	for _, tid := range w.RecordedThreads() {
		_, hi := w.RecordedWindow(tid)
		pc, _ := w.NodePC(tid, hi)
		back := slicing.Backward(r, s.g.Prog,
			[]slicing.Criterion{{ID: ddg.MakeID(tid, hi), PC: pc}}, slicing.Options{})
		want := w.BackwardPCsBounded(tid, hi, lows, nil)
		for wantPC := range want {
			if !back.PCs[wantPC] {
				s.failf("elided/backward", "tid %d: reconstruction lost pc %d:\nengine %v\noracle %v",
					tid, wantPC, sortPCSet(back.PCs), sortPCSet(want))
			}
		}
	}
}

// trimmed replays the exact recording into a store holding a live
// retention byte budget over tiny segments, so sealing plans,
// journals, and applies trims mid-run. Slices from each thread's
// newest recorded instance over the reopened trimmed store must match
// the oracle's BackwardPCsBounded closure over the surviving window —
// a dependence reaching below a thread's trimmed floor contributes
// its PC and stops, exactly like the old ring's eviction truncation.
// Then the served path registers the same store: a repeated identical
// query must come back from the result cache (hit flag and counter
// asserted), and a janitor trim's generation bump must invalidate it,
// with the recomputed answer matching the re-bounded oracle closure.
func (s *scenario) trimmed(chunks []ddg.RawChunk) {
	s.tb.Helper()
	w := s.want
	root := s.tb.TempDir()
	dir := filepath.Join(root, fmt.Sprintf("trim-%d", s.g.Seed))
	wr, err := store.Create(store.Options{Dir: dir, SegmentBytes: 2 << 10,
		Retain: store.Retention{MaxBytes: 8 << 10}})
	if err != nil {
		s.tb.Fatal(err)
	}
	for _, ch := range chunks {
		wr.SpillChunk(ch)
	}
	if err := wr.Close(); err != nil {
		s.tb.Fatal(err)
	}

	r, err := store.Open(dir, store.ReaderOptions{CacheChunks: 4})
	if err != nil {
		s.tb.Fatal(err)
	}
	defer r.Close()

	// The oracle's truncation bound per thread: the surviving window's
	// lo, or one past the newest instance when retention evicted the
	// whole thread (the slicer dead-ends at its criterion the same
	// way).
	oracleLows := func(r *store.Reader) map[int]uint64 {
		lows := make(map[int]uint64)
		for _, tid := range r.Threads() {
			lows[tid], _ = r.Window(tid)
		}
		for _, tid := range w.RecordedThreads() {
			if _, ok := lows[tid]; !ok {
				_, hi := w.RecordedWindow(tid)
				lows[tid] = hi + 1
			}
		}
		return lows
	}
	lows := oracleLows(r)
	for _, tid := range w.RecordedThreads() {
		_, hi := w.RecordedWindow(tid)
		pc, _ := w.NodePC(tid, hi)
		back := slicing.Backward(r, s.g.Prog,
			[]slicing.Criterion{{ID: ddg.MakeID(tid, hi), PC: pc}}, slicing.Options{})
		s.checkPCSet("trimmed/backward", tid, back.PCs, w.BackwardPCsBounded(tid, hi, lows, nil))
	}

	// Served: dashboard-style repeats hit the result cache; the next
	// trim's generation bump invalidates it naturally.
	reg := query.NewRegistry([]string{root}, query.RegistryOptions{CacheChunks: 4})
	if _, err := reg.Refresh(); err != nil {
		s.tb.Fatal(err)
	}
	defer reg.Close()
	id := filepath.Base(dir)
	srv := httptest.NewServer(query.NewServer(reg, query.ServerOptions{MaxConcurrent: 2, Workers: 2}).Handler())
	defer srv.Close()
	cl := query.NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	tid := w.RecordedThreads()[0]
	_, hi := w.RecordedWindow(tid)
	if _, ok := lows[tid]; ok && lows[tid] > hi {
		// This thread was fully evicted; its frontier criterion cannot
		// resolve over the wire (N=0 has no window). Any surviving
		// thread serves the cache check equally well.
		for _, cand := range r.Threads() {
			tid = cand
			_, hi = w.RecordedWindow(tid)
			break
		}
	}
	req := &query.SliceRequest{Trace: id, Direction: query.DirBackward,
		Criteria: []query.Criterion{{TID: tid, N: hi}}}
	resp1, err := cl.Slice(ctx, req)
	if err != nil {
		s.tb.Fatal(err)
	}
	if resp1.Cached {
		s.failf("trimmed/http", "first served query claims a cache hit")
	}
	if want := w.BackwardPCsBounded(tid, hi, lows, nil); fmt.Sprint(resp1.PCs) != fmt.Sprint(sortPCSet(want)) {
		s.failf("trimmed/http", "tid %d served trimmed PCs diverged:\nserved %v\noracle %v",
			tid, resp1.PCs, sortPCSet(want))
	}
	resp2, err := cl.Slice(ctx, req)
	if err != nil {
		s.tb.Fatal(err)
	}
	if !resp2.Cached {
		s.failf("trimmed/http", "repeated identical query missed the result cache")
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		s.tb.Fatal(err)
	}
	if st.ResultCacheHits < 1 {
		s.failf("trimmed/http", "stats report %d result-cache hits after a served hit", st.ResultCacheHits)
	}

	// A janitor trim under a tighter budget: any removal must bump the
	// generation and drop the cached answer; the recomputation is held
	// to the re-bounded oracle closure.
	tr, _ := reg.Get(id)
	genBefore := tr.Generation()
	removed, err := reg.TrimTrace(id, store.Retention{MaxBytes: 4 << 10})
	if err != nil {
		s.tb.Fatal(err)
	}
	if removed > 0 {
		if tr.Generation() <= genBefore {
			s.failf("trimmed/http", "trim removed %d segments without bumping the generation", removed)
		}
		// A closed-store reader never re-reads the manifest; bound the
		// oracle against a fresh reader that sees the janitor's trim.
		r2, err := store.Open(dir, store.ReaderOptions{CacheChunks: 4})
		if err != nil {
			s.tb.Fatal(err)
		}
		defer r2.Close()
		lows = oracleLows(r2)
		if _, ok := lows[tid]; ok && lows[tid] > hi {
			return // the cached thread itself is gone; nothing left to re-serve
		}
		resp3, err := cl.Slice(ctx, req)
		if err != nil {
			s.tb.Fatal(err)
		}
		if resp3.Cached {
			s.failf("trimmed/http", "generation bump did not invalidate the result cache")
		}
		if want := w.BackwardPCsBounded(tid, hi, lows, nil); fmt.Sprint(resp3.PCs) != fmt.Sprint(sortPCSet(want)) {
			s.failf("trimmed/http", "tid %d post-trim served PCs diverged:\nserved %v\noracle %v",
				tid, resp3.PCs, sortPCSet(want))
		}
	}
}

// gatedSink buffers sealed chunks in arrival order and forwards them
// to the real store writer only when released. Arrival order is seal
// order per thread, so releasing any prefix hands the writer a
// stream some slower recording could genuinely have produced — the
// store is mid-recording, not corrupt.
type gatedSink struct {
	mu   sync.Mutex
	wr   *store.Writer
	held []ddg.RawChunk
}

func (g *gatedSink) SpillChunk(ch ddg.RawChunk) {
	g.mu.Lock()
	g.held = append(g.held, ch)
	g.mu.Unlock()
}

func (g *gatedSink) heldCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.held)
}

// release forwards up to n held chunks to the writer.
func (g *gatedSink) release(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n > len(g.held) {
		n = len(g.held)
	}
	for _, ch := range g.held[:n] {
		g.wr.SpillChunk(ch)
	}
	g.held = g.held[n:]
}

// liveAttached replays the exact recording into a fresh store through
// a gate that withholds chunks, so the store is still recording when
// a follower and the live query service attach. Half the stream
// lands: direct slices over the follower and served slices over real
// HTTP (live: true, frontier on the wire) must both equal the
// oracle's frontier-bounded closure — a dependence reaching past the
// frontier contributes its PC but is a dead end, exactly like window
// truncation. Then the rest lands, the writer closes, and the same
// trace must flip to served-complete with the unbounded closures and
// no live fields.
func (s *scenario) liveAttached() {
	s.tb.Helper()
	w := s.want
	root := s.tb.TempDir()
	dir := filepath.Join(root, fmt.Sprintf("live-%d", s.g.Seed))
	wr, err := store.Create(store.Options{Dir: dir, SegmentBytes: 4 << 10})
	if err != nil {
		s.tb.Fatal(err)
	}
	gate := &gatedSink{wr: wr}
	m := s.newMachine()
	off := ontrac.NewOffloaded(s.g.Prog, ontrac.Options{}, pipeline.Options{Workers: 2})
	off.SpillTo(gate)
	s.checkRun("live", m, ontrac.Trace(m, off))

	// The run is over but the store is mid-recording: only the first
	// half of the chunk stream has landed.
	total := gate.heldCount()
	gate.release((total + 1) / 2)

	r, err := store.Open(dir, store.ReaderOptions{Follow: true, CacheChunks: 4})
	if err != nil {
		s.tb.Fatal(err)
	}
	defer r.Close()
	if !r.Live() {
		s.failf("live", "follower of a mid-recording store not live")
	}
	highs := make(map[int]uint64)
	for _, tid := range r.Threads() {
		if _, hi := r.Window(tid); hi > 0 {
			highs[tid] = hi
		}
	}

	// Direct slices at each thread's frontier...
	for tid, hi := range highs {
		pc, ok := w.NodePC(tid, hi)
		if !ok {
			s.failf("live", "frontier instance (%d,%d) unknown to the oracle", tid, hi)
		}
		back := slicing.Backward(r, s.g.Prog,
			[]slicing.Criterion{{ID: ddg.MakeID(tid, hi), PC: pc}}, slicing.Options{})
		s.checkPCSet("live/backward", tid, back.PCs, w.BackwardPCsBounded(tid, hi, nil, highs))
	}

	// ...and served slices from a live registry over real HTTP.
	reg := query.NewRegistry([]string{root}, query.RegistryOptions{CacheChunks: 4, Live: true})
	added, err := reg.Refresh()
	if err != nil {
		s.tb.Fatal(err)
	}
	defer reg.Close()
	id := filepath.Base(dir)
	if len(added) != 1 || added[0] != id {
		s.failf("live/http", "mid-recording store not registered: %v", added)
	}
	if err := reg.AttachProgram(id, s.g.Prog, ontrac.Options{}); err != nil {
		s.tb.Fatal(err)
	}
	srv := httptest.NewServer(query.NewServer(reg, query.ServerOptions{MaxConcurrent: 2, Workers: 2}).Handler())
	defer srv.Close()
	cl := query.NewClient(srv.URL, srv.Client())
	ctx := context.Background()
	for tid, hi := range highs {
		resp, err := cl.Slice(ctx, &query.SliceRequest{
			Trace: id, Direction: query.DirBackward,
			Criteria: []query.Criterion{{TID: tid, N: hi}},
		})
		if err != nil {
			s.tb.Fatal(err)
		}
		if !resp.Live {
			s.failf("live/http", "tid %d slice of a recording trace not marked live", tid)
		}
		served := make(map[int]uint64)
		for _, fw := range resp.Frontier {
			served[fw.TID] = fw.Hi
		}
		if fmt.Sprint(served) != fmt.Sprint(highs) {
			s.failf("live/http", "served frontier %v, follower frontier %v", served, highs)
		}
		if want := w.BackwardPCsBounded(tid, hi, nil, highs); fmt.Sprint(resp.PCs) != fmt.Sprint(sortPCSet(want)) {
			s.failf("live/http", "tid %d live served backward PCs diverged:\nserved %v\noracle %v",
				tid, resp.PCs, sortPCSet(want))
		}
	}

	// The rest of the stream lands and the writer closes: the follower
	// observes the transition and hands over the complete graph...
	gate.release(total)
	if err := wr.Close(); err != nil {
		s.tb.Fatal(err)
	}
	if _, err := r.Poll(); err != nil {
		s.tb.Fatal(err)
	}
	if r.Live() {
		s.failf("live", "follower still live after the writer closed")
	}
	s.checkGraph("live/final", r, 0)

	// ...and the service flips the same id to served-complete: full
	// unbounded closures, no live fields on the wire.
	closed, err := reg.PollLive()
	if err != nil {
		s.tb.Fatal(err)
	}
	if len(closed) != 1 || closed[0] != id {
		s.failf("live/http", "close transition reported %v, want [%s]", closed, id)
	}
	for _, tid := range w.RecordedThreads() {
		_, hi := w.RecordedWindow(tid)
		resp, err := cl.Slice(ctx, &query.SliceRequest{
			Trace: id, Direction: query.DirBackward,
			Criteria: []query.Criterion{{TID: tid, N: hi}},
		})
		if err != nil {
			s.tb.Fatal(err)
		}
		if resp.Live || resp.Frontier != nil {
			s.failf("live/http", "tid %d closed-trace slice still carries live fields", tid)
		}
		if back := w.BackwardPCs(tid, hi); fmt.Sprint(resp.PCs) != fmt.Sprint(sortPCSet(back)) {
			s.failf("live/http", "tid %d post-close served PCs diverged:\nserved %v\noracle %v",
				tid, resp.PCs, sortPCSet(back))
		}
	}
}

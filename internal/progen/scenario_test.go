package progen

import (
	"os"
	"strconv"
	"testing"
)

// corpusSize returns how many seeds the always-on corpus sweeps.
// The default meets the subsystem's bar of 500 generated programs per
// plain `go test ./internal/progen`; -short trims it for the race
// detector's heavyweight instrumentation, and PROGEN_SOAK overrides
// it upward for the nightly soak job.
func corpusSize(tb testing.TB) int {
	if v := os.Getenv("PROGEN_SOAK"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			tb.Fatalf("bad PROGEN_SOAK value %q", v)
		}
		return n
	}
	if testing.Short() {
		return 60
	}
	return 500
}

// TestScenarioCorpus is the subsystem's reason to exist: every seed
// is one generated concurrent program run through the inline engine
// (three taint domains), the batched pipeline (three domains),
// offloaded ONTRAC spilled to a real on-disk store, slicing over the
// reopened store.Reader, the query service over real HTTP, and an
// elided O1+O3 recording — each checked against the brute-force
// oracle down to individual register labels, memory words, output
// lineage sets, thread windows, and slice PC sets.
func TestScenarioCorpus(t *testing.T) {
	cfg := DefaultGenConfig()
	n := corpusSize(t)
	for seed := 0; seed < n; seed++ {
		Scenario(t, uint64(seed), cfg)
	}
}

// TestScenarioShapes sweeps a few deliberately skewed generator
// configurations so degenerate shapes (single-threaded, no sync
// features, deep loops) stay covered even if the default mix drifts.
func TestScenarioShapes(t *testing.T) {
	shapes := []struct {
		name string
		cfg  GenConfig
	}{
		{"single-thread", GenConfig{
			MaxWorkers: 0, MaxBodyOps: 12, MaxPhases: 1, MaxLoopDepth: 2,
			MaxTrip: 3, SharedWords: 16, PrivWords: 8,
			Locks: true, Flags: true, CAS: true, Calls: true,
		}},
		{"no-sync", GenConfig{
			MaxWorkers: 2, MaxBodyOps: 8, MaxPhases: 1, MaxLoopDepth: 1,
			MaxTrip: 2, SharedWords: 8, PrivWords: 4,
		}},
		{"loop-heavy", GenConfig{
			MaxWorkers: 1, MaxBodyOps: 6, MaxPhases: 2, MaxLoopDepth: 2,
			MaxTrip: 4, SharedWords: 32, PrivWords: 16,
			Locks: true, CAS: true,
		}},
	}
	per := 12
	if testing.Short() {
		per = 4
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			for seed := 0; seed < per; seed++ {
				Scenario(t, uint64(seed)+1000, sh.cfg)
			}
		})
	}
}

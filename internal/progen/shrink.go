package progen

import "scaldift/internal/isa"

// Property reports whether a candidate program still exhibits the
// behavior being preserved (typically "reproduces this failure").
// It must be deterministic: Shrink may evaluate it many times.
type Property func(*isa.Program) bool

// ShrinkOptions tunes Shrink.
type ShrinkOptions struct {
	// OnAccept, if non-nil, is invoked with every accepted candidate
	// (each is validated and still satisfies the property). Tests use
	// it to audit shrinker soundness step by step.
	OnAccept func(*isa.Program)
}

// Shrink greedily minimizes p while keep keeps holding, using
// ddmin-style contiguous-range removal: it tries dropping chunks of
// instructions from half the program down to single instructions,
// remapping control-flow targets across the gap, and restarts at
// coarse granularity whenever any removal sticks. Every intermediate
// candidate passes isa.Validate before keep is consulted, so keep
// never sees a malformed program. If keep(p) is false to begin with,
// a clone of p is returned unchanged.
func Shrink(p *isa.Program, keep Property, opts ShrinkOptions) *isa.Program {
	cur := p.Clone()
	if !keep(cur) {
		return cur
	}
	for {
		shrunk := false
		chunk := len(cur.Instrs) / 2
		if chunk < 1 {
			chunk = 1
		}
		for ; chunk >= 1; chunk /= 2 {
			i := 0
			for i+chunk <= len(cur.Instrs) && len(cur.Instrs) > chunk {
				cand := removeRange(cur, i, i+chunk)
				if cand.Validate() == nil && keep(cand) {
					cur = cand
					shrunk = true
					if opts.OnAccept != nil {
						opts.OnAccept(cur)
					}
					// Do not advance i: the next chunk slid into place.
				} else {
					i++
				}
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// removeRange returns a copy of p with instructions [i,j) removed and
// all control-transfer targets, labels, and function ranges remapped
// across the gap. Targets that pointed into the removed range are
// redirected to the first surviving instruction after it; if that
// lands past the end the candidate fails Validate and is discarded by
// the caller.
func removeRange(p *isa.Program, i, j int) *isa.Program {
	q := p.Clone()
	n := j - i
	q.Instrs = append(q.Instrs[:i], q.Instrs[j:]...)
	remap := func(t int) int {
		switch {
		case t >= j:
			return t - n
		case t >= i:
			return i
		default:
			return t
		}
	}
	for k := range q.Instrs {
		if q.Instrs[k].Op.HasTarget() {
			q.Instrs[k].Target = remap(q.Instrs[k].Target)
		}
	}
	for name, idx := range q.Labels {
		q.Labels[name] = remap(idx)
	}
	for name, fr := range q.Funcs {
		fr.Start, fr.End = remap(fr.Start), remap(fr.End)
		if fr.End < fr.Start {
			fr.End = fr.Start
		}
		q.Funcs[name] = fr
	}
	return q
}
